#include "cluster/cluster.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/invariants.hpp"

namespace greenhpc::cluster {

using util::ensure;
using util::require;

int Allocation::total_gpus() const {
  int total = 0;
  for (const auto& s : slices) total += s.gpus;
  return total;
}

Cluster::Cluster(ClusterSpec spec)
    : spec_(spec), gpu_model_(spec.gpu), nodes_(static_cast<std::size_t>(spec.node_count)),
      power_cap_(spec.gpu.tdp), enabled_nodes_(spec.node_count) {
  require(spec_.node_count >= 1, "Cluster: need at least one node");
  require(spec_.gpus_per_node >= 1, "Cluster: need at least one GPU per node");
  require(spec_.node_base.watts() >= 0.0, "Cluster: negative node base power");
  require(spec_.fixed_infrastructure.watts() >= 0.0, "Cluster: negative fixed power");
}

int Cluster::total_gpus() const { return enabled_nodes_ * spec_.gpus_per_node; }

int Cluster::busy_gpus() const { return busy_total_; }

int Cluster::free_gpus() const { return total_gpus() - busy_gpus(); }

double Cluster::utilization() const {
  const int total = total_gpus();
  return total == 0 ? 0.0 : static_cast<double>(busy_gpus()) / static_cast<double>(total);
}

std::optional<Allocation> Cluster::allocate(JobId job, int gpus) {
  require(gpus >= 1, "Cluster::allocate: must request at least one GPU");
  require(!allocation_of(job).has_value(), "Cluster::allocate: job already holds GPUs");
  if (gpus > free_gpus()) return std::nullopt;

  Allocation alloc;
  alloc.job = job;
  int remaining = gpus;
  // First-fit across enabled nodes; jobs may span nodes (distributed runs).
  for (int n = 0; n < enabled_nodes_ && remaining > 0; ++n) {
    auto& node = nodes_[static_cast<std::size_t>(n)];
    const int here = std::min(remaining, spec_.gpus_per_node - node.busy);
    if (here <= 0) continue;
    node.busy += here;
    alloc.slices.push_back({n, here});
    remaining -= here;
  }
  ensure(remaining == 0, "Cluster::allocate: accounting error");
  allocations_.push_back(alloc);
  busy_total_ += gpus;
  touch_power();
  return alloc;
}

void Cluster::release(JobId job) {
  if (job_caps_.erase(job) > 0) touch_power();
  const auto it = std::find_if(allocations_.begin(), allocations_.end(),
                               [&](const Allocation& a) { return a.job == job; });
  if (it == allocations_.end()) return;
  for (const auto& slice : it->slices) {
    auto& node = nodes_[static_cast<std::size_t>(slice.node)];
    ensure(node.busy >= slice.gpus, "Cluster::release: accounting error");
    node.busy -= slice.gpus;
    busy_total_ -= slice.gpus;
  }
  allocations_.erase(it);
  touch_power();
}

std::optional<Allocation> Cluster::allocation_of(JobId job) const {
  for (const auto& a : allocations_)
    if (a.job == job) return a;
  return std::nullopt;
}

void Cluster::set_power_cap(util::Power cap) {
  const util::Power clamped = std::clamp(cap, spec_.gpu.min_cap, spec_.gpu.tdp);
  if (clamped.watts() != power_cap_.watts()) touch_power();
  power_cap_ = clamped;
}

void Cluster::set_job_cap(JobId job, util::Power cap) {
  job_caps_[job] = std::clamp(cap, spec_.gpu.min_cap, spec_.gpu.tdp);
  touch_power();
}

util::Power Cluster::effective_cap(JobId job) const {
  const auto it = job_caps_.find(job);
  return it == job_caps_.end() ? power_cap_ : std::min(power_cap_, it->second);
}

double Cluster::job_throughput_factor(JobId job) const {
  return gpu_model_.throughput_factor(effective_cap(job));
}

util::Power Cluster::job_gpu_power(JobId job) const {
  return gpu_model_.active_power(effective_cap(job));
}

void Cluster::set_enabled_nodes(int count) {
  require(count >= 0, "Cluster::set_enabled_nodes: count must be >= 0");
  count = std::min(count, spec_.node_count);
  // Refuse to power off nodes that still hold allocations.
  for (int n = count; n < spec_.node_count; ++n) {
    require(nodes_[static_cast<std::size_t>(n)].busy == 0,
            "Cluster::set_enabled_nodes: node still holds allocations");
  }
  enabled_nodes_ = count;
  touch_power();
}

util::Power Cluster::it_power() const {
  if (it_power_valid_) return it_power_cache_;
  const int idle = free_gpus();
  util::Power p = spec_.fixed_infrastructure;
  p += spec_.node_base * static_cast<double>(enabled_nodes_);
  // Busy GPUs draw per their owning job's effective cap.
  for (const Allocation& alloc : allocations_)
    p += job_gpu_power(alloc.job) * static_cast<double>(alloc.total_gpus());
  p += spec_.gpu.idle * static_cast<double>(idle);
  it_power_cache_ = p;
  it_power_valid_ = true;
  return p;
}

util::Power Cluster::busy_gpu_power() const { return gpu_model_.active_power(power_cap_); }

double Cluster::throughput_factor() const { return gpu_model_.throughput_factor(power_cap_); }

#ifdef GREENHPC_CHECK_INVARIANTS
void Cluster::check_invariants() const {
  int node_busy = 0;
  for (const Node& node : nodes_) node_busy += node.busy;
  int alloc_busy = 0;
  for (const Allocation& alloc : allocations_) alloc_busy += alloc.total_gpus();
  util::check_invariant(
      busy_total_ == node_busy && busy_total_ == alloc_busy, "cluster.busy_recount",
      "busy counter " + std::to_string(busy_total_) + ", node recount " +
          std::to_string(node_busy) + ", allocation recount " + std::to_string(alloc_busy));
  util::check_invariant(free_gpus() + busy_gpus() == total_gpus(), "cluster.free_busy_total",
                        "free " + std::to_string(free_gpus()) + " + busy " +
                            std::to_string(busy_gpus()) + " != total " +
                            std::to_string(total_gpus()));
  util::check_invariant(enabled_nodes_ >= 0 && enabled_nodes_ <= spec_.node_count,
                        "cluster.enabled_bounds",
                        "enabled nodes " + std::to_string(enabled_nodes_) + " outside [0, " +
                            std::to_string(spec_.node_count) + "]");
  for (int n = enabled_nodes_; n < spec_.node_count; ++n) {
    util::check_invariant(nodes_[static_cast<std::size_t>(n)].busy == 0,
                          "cluster.disabled_idle",
                          "disabled node " + std::to_string(n) + " holds " +
                              std::to_string(nodes_[static_cast<std::size_t>(n)].busy) +
                              " GPUs");
  }
}
#endif

void Cluster::register_metrics(obs::MetricsRegistry& registry, const std::string& prefix) const {
  registry.gauge(prefix + "free_gpus", [this] { return static_cast<double>(free_gpus()); });
  registry.gauge(prefix + "busy_gpus", [this] { return static_cast<double>(busy_gpus()); });
  registry.gauge(prefix + "running_jobs",
                 [this] { return static_cast<double>(allocations_.size()); });
  registry.gauge(prefix + "utilization", [this] { return utilization(); });
  registry.gauge(prefix + "it_power_kw", [this] { return it_power().kilowatts(); });
  registry.gauge(prefix + "power_cap_w", [this] { return power_cap_.watts(); });
}

}  // namespace greenhpc::cluster
