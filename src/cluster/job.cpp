#include "cluster/job.hpp"

#include "util/error.hpp"

namespace greenhpc::cluster {

using util::ensure;
using util::require;

const char* job_class_name(JobClass c) {
  switch (c) {
    case JobClass::kDebug: return "debug";
    case JobClass::kTraining: return "training";
    case JobClass::kHyperparamSweep: return "hp_sweep";
    case JobClass::kInference: return "inference";
    case JobClass::kAnalysis: return "analysis";
  }
  return "unknown";
}

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

Job::Job(JobId id, JobRequest request, util::TimePoint submit_time)
    : id_(id), request_(request), submit_time_(submit_time) {
  require(request_.gpus >= 1, "Job: must request at least one GPU");
  require(request_.work_gpu_seconds > 0.0, "Job: work must be positive");
  require(request_.estimate_factor >= 1.0, "Job: estimate factor must be >= 1");
  if (request_.deadline) {
    require(*request_.deadline > submit_time, "Job: deadline must be after submission");
  }
}

util::Duration Job::estimated_runtime(double throughput_factor) const {
  require(throughput_factor > 0.0, "Job::estimated_runtime: throughput must be positive");
  return util::seconds(work_remaining() /
                       (static_cast<double>(request_.gpus) * throughput_factor));
}

util::Duration Job::user_estimate(double throughput_factor) const {
  return estimated_runtime(throughput_factor) * request_.estimate_factor;
}

util::Duration Job::queue_wait() const {
  switch (state_) {
    case JobState::kQueued: return util::seconds(0);  // still unknown
    case JobState::kCancelled: return finish_time_ - submit_time_;
    default: return start_time_ - submit_time_;
  }
}

util::Duration Job::turnaround() const {
  require(state_ == JobState::kCompleted, "Job::turnaround: job not completed");
  return finish_time_ - submit_time_;
}

void Job::start(util::TimePoint now) {
  require(state_ == JobState::kQueued, "Job::start: job not queued");
  require(now >= submit_time_, "Job::start: cannot start before submission");
  state_ = JobState::kRunning;
  start_time_ = now;
}

void Job::progress(double gpu_seconds_equivalent, util::Energy energy) {
  require(state_ == JobState::kRunning, "Job::progress: job not running");
  require(gpu_seconds_equivalent >= 0.0, "Job::progress: negative work");
  work_done_ += gpu_seconds_equivalent;
  energy_ += energy;
}

void Job::complete(util::TimePoint now) {
  require(state_ == JobState::kRunning, "Job::complete: job not running");
  state_ = JobState::kCompleted;
  finish_time_ = now;
}

void Job::cancel(util::TimePoint now) {
  require(state_ == JobState::kQueued || state_ == JobState::kRunning,
          "Job::cancel: job already finished");
  state_ = JobState::kCancelled;
  finish_time_ = now;
}

JobId JobRegistry::submit(JobRequest request, util::TimePoint now) {
  const JobId id = next_id_++;
  index_[id] = jobs_.size();
  jobs_.emplace_back(id, request, now);
  order_.push_back(id);
  return id;
}

Job& JobRegistry::get(JobId id) {
  const auto it = index_.find(id);
  require(it != index_.end(), "JobRegistry::get: unknown job id");
  return jobs_[it->second];
}

const Job& JobRegistry::get(JobId id) const {
  const auto it = index_.find(id);
  require(it != index_.end(), "JobRegistry::get: unknown job id");
  return jobs_[it->second];
}

std::vector<JobId> JobRegistry::in_state(JobState s) const {
  std::vector<JobId> out;
  for (const Job& j : jobs_)
    if (j.state() == s) out.push_back(j.id());
  return out;
}

}  // namespace greenhpc::cluster
