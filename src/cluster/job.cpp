#include "cluster/job.hpp"

#include <stdexcept>
#include <string>

#include "util/error.hpp"

namespace greenhpc::cluster {

using util::ensure;
using util::require;

const char* job_class_name(JobClass c) {
  switch (c) {
    case JobClass::kDebug: return "debug";
    case JobClass::kTraining: return "training";
    case JobClass::kHyperparamSweep: return "hp_sweep";
    case JobClass::kInference: return "inference";
    case JobClass::kAnalysis: return "analysis";
  }
  return "unknown";
}

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kMigrated: return "migrated";
  }
  return "unknown";
}

void validate_request(const JobRequest& request, util::TimePoint submit_time) {
  // Hot path (every submission): build the value-naming messages only on
  // failure, never on the millions of requests that pass.
  if (request.gpus < 1) {
    throw std::invalid_argument("JobRequest: gpus must be >= 1 (got " +
                                std::to_string(request.gpus) + ")");
  }
  if (!(request.work_gpu_seconds > 0.0)) {
    throw std::invalid_argument("JobRequest: work_gpu_seconds must be positive (got " +
                                std::to_string(request.work_gpu_seconds) + ")");
  }
  if (!(request.estimate_factor >= 1.0)) {
    throw std::invalid_argument("JobRequest: estimate_factor must be >= 1 (got " +
                                std::to_string(request.estimate_factor) + ")");
  }
  if (request.deadline && !(*request.deadline > submit_time)) {
    throw std::invalid_argument(
        "JobRequest: deadline (" + std::to_string(request.deadline->seconds_since_epoch()) +
        " s) must be after submission (" + std::to_string(submit_time.seconds_since_epoch()) +
        " s)");
  }
}

Job::Job(JobId id, JobRequest request, util::TimePoint submit_time)
    : id_(id), request_(request), submit_time_(submit_time) {
  validate_request(request_, submit_time);
}

util::Duration Job::estimated_runtime(double throughput_factor) const {
  require(throughput_factor > 0.0, "Job::estimated_runtime: throughput must be positive");
  return util::seconds(work_remaining() /
                       (static_cast<double>(request_.gpus) * throughput_factor));
}

util::Duration Job::user_estimate(double throughput_factor) const {
  return estimated_runtime(throughput_factor) * request_.estimate_factor;
}

util::Duration Job::queue_wait() const {
  switch (state_) {
    case JobState::kQueued: return util::seconds(0);  // still unknown
    case JobState::kCancelled: return finish_time_ - submit_time_;
    default: return start_time_ - submit_time_;
  }
}

util::Duration Job::turnaround() const {
  require(state_ == JobState::kCompleted, "Job::turnaround: job not completed");
  return finish_time_ - submit_time_;
}

void Job::start(util::TimePoint now) {
  require(state_ == JobState::kQueued, "Job::start: job not queued");
  require(now >= submit_time_, "Job::start: cannot start before submission");
  state_ = JobState::kRunning;
  start_time_ = now;
}

void Job::progress(double gpu_seconds_equivalent, util::Energy energy) {
  require(state_ == JobState::kRunning, "Job::progress: job not running");
  require(gpu_seconds_equivalent >= 0.0, "Job::progress: negative work");
  work_done_ += gpu_seconds_equivalent;
  energy_ += energy;
}

void Job::complete(util::TimePoint now) {
  require(state_ == JobState::kRunning, "Job::complete: job not running");
  state_ = JobState::kCompleted;
  finish_time_ = now;
}

void Job::cancel(util::TimePoint now) {
  require(state_ == JobState::kQueued || state_ == JobState::kRunning,
          "Job::cancel: job already finished");
  state_ = JobState::kCancelled;
  finish_time_ = now;
}

void Job::migrate_out(util::TimePoint now) {
  require(state_ == JobState::kRunning, "Job::migrate_out: job not running");
  state_ = JobState::kMigrated;
  finish_time_ = now;
}

JobId JobRegistry::submit(JobRequest request, util::TimePoint now) {
  // The Job constructor validates; emplace it first (deque::emplace_back has
  // no effect when the element constructor throws), so a rejected request
  // leaves the registry exactly as it was — no burned id, no dangling index
  // entry — without validating twice.
  const JobId id = next_id_;
  jobs_.emplace_back(id, request, now);
  ++next_id_;
  index_[id] = jobs_.size() - 1;
  order_.push_back(id);
  return id;
}

Job& JobRegistry::get(JobId id) {
  const auto it = index_.find(id);
  require(it != index_.end(), "JobRegistry::get: unknown job id");
  return jobs_[it->second];
}

const Job& JobRegistry::get(JobId id) const {
  const auto it = index_.find(id);
  require(it != index_.end(), "JobRegistry::get: unknown job id");
  return jobs_[it->second];
}

std::vector<JobId> JobRegistry::in_state(JobState s) const {
  std::vector<JobId> out;
  for (const Job& j : jobs_)
    if (j.state() == s) out.push_back(j.id());
  return out;
}

}  // namespace greenhpc::cluster
