#pragma once
// Cluster hardware model: nodes, GPUs, allocation, and IT power.
//
// Scaled to the system the paper's telemetry comes from: the MIT SuperCloud
// E1/TX-GAIA-class GPU partition (224 nodes x 2 V100). The cluster tracks
// which GPUs belong to which running job, computes instantaneous IT power
// from per-GPU state via power::GpuPowerModel, and exposes the "supply"
// knobs of Eq. 1 (q_s: how many nodes are enabled; c: the cluster-wide power
// cap).

#include <optional>
#include <unordered_map>
#include <vector>

#include <string>

#include "cluster/job.hpp"
#include "power/gpu_power.hpp"
#include "util/units.hpp"

namespace greenhpc::obs {
class MetricsRegistry;
}

namespace greenhpc::cluster {

struct ClusterSpec {
  int node_count = 224;
  int gpus_per_node = 2;
  /// Node power excluding GPUs (CPUs, DRAM, NIC, fans), drawn whenever the
  /// node is enabled.
  util::Power node_base = util::watts(450.0);
  /// Always-on shared infrastructure (storage, network fabric, head nodes).
  util::Power fixed_infrastructure = util::kilowatts(60.0);
  power::GpuSpec gpu;
};

/// GPUs granted to one job on one node.
struct AllocationSlice {
  int node = 0;
  int gpus = 0;
};

/// A job's full GPU grant (may span nodes, as distributed training does).
struct Allocation {
  JobId job = 0;
  std::vector<AllocationSlice> slices;
  [[nodiscard]] int total_gpus() const;
};

class Cluster {
 public:
  Cluster() : Cluster(ClusterSpec{}) {}
  explicit Cluster(ClusterSpec spec);

  [[nodiscard]] const ClusterSpec& spec() const { return spec_; }
  [[nodiscard]] const power::GpuPowerModel& gpu_model() const { return gpu_model_; }

  [[nodiscard]] int total_gpus() const;
  [[nodiscard]] int free_gpus() const;
  [[nodiscard]] int busy_gpus() const;
  /// Busy / total among *enabled* nodes.
  [[nodiscard]] double utilization() const;

  /// Tries to grant `gpus` to `job`, packing nodes first-fit; fails (nullopt)
  /// when not enough free GPUs exist on enabled nodes.
  [[nodiscard]] std::optional<Allocation> allocate(JobId job, int gpus);

  /// Releases everything held by `job` (no-op if it holds nothing).
  void release(JobId job);

  /// Running allocations (one per active job).
  [[nodiscard]] const std::vector<Allocation>& allocations() const { return allocations_; }
  [[nodiscard]] std::optional<Allocation> allocation_of(JobId job) const;

  // --- Eq. 1 control knobs -------------------------------------------------

  /// Sets the cluster-wide GPU power cap (clamped to the settable range).
  void set_power_cap(util::Power cap);
  [[nodiscard]] util::Power power_cap() const { return power_cap_; }

  /// Per-job cap override (Eq. 2's tailored intervention): the job's GPUs
  /// run at min(cluster cap, job cap). Cleared automatically on release.
  void set_job_cap(JobId job, util::Power cap);
  /// Effective cap for a job's GPUs under both knobs.
  [[nodiscard]] util::Power effective_cap(JobId job) const;
  /// Throughput factor for one job under its effective cap.
  [[nodiscard]] double job_throughput_factor(JobId job) const;
  /// Busy board power for one of the job's GPUs under its effective cap.
  [[nodiscard]] util::Power job_gpu_power(JobId job) const;

  /// Enables only the first `count` nodes (q_s supply knob and the fault
  /// layer's node-loss seam). Counts above the node total clamp to it;
  /// negative counts throw. Nodes holding allocations cannot be disabled;
  /// throws if asked to — preempt their jobs first.
  void set_enabled_nodes(int count);
  [[nodiscard]] int enabled_nodes() const { return enabled_nodes_; }

  // --- Power ---------------------------------------------------------------

  /// Instantaneous IT power: fixed infrastructure + enabled-node base +
  /// per-GPU draw (busy GPUs at the cap's active power, free GPUs at idle).
  [[nodiscard]] util::Power it_power() const;

  /// Per-GPU board power for a busy GPU under the current cap.
  [[nodiscard]] util::Power busy_gpu_power() const;

  /// Effective throughput factor under the current cap.
  [[nodiscard]] double throughput_factor() const;

  // --- Observability --------------------------------------------------------

  /// Registers pull-model gauges (free/busy GPUs, utilization, IT power,
  /// power cap) under `prefix` (e.g. "r0.cluster."). The cluster must
  /// outlive sampling; gauges only read state.
  void register_metrics(obs::MetricsRegistry& registry, const std::string& prefix) const;

#ifdef GREENHPC_CHECK_INVARIANTS
  // --- Debug invariant layer (compiled out of release builds) ---------------

  /// Deep accounting checks, throwing util::InvariantViolation on failure:
  ///   cluster.busy_recount     busy_total_ == per-node recount == sum of
  ///                            allocation slices
  ///   cluster.free_busy_total  free + busy == total among enabled nodes
  ///   cluster.enabled_bounds   enabled node count within [0, node_count]
  ///   cluster.disabled_idle    disabled nodes hold no GPUs
  void check_invariants() const;

  /// Test seam: skews the incremental busy counter so cluster.busy_recount
  /// trips on the next check (the exact bug class the mirror guards).
  void debug_corrupt_busy_total(int delta) { busy_total_ += delta; }
#endif

 private:
  struct Node {
    int busy = 0;  ///< GPUs in use on this node
  };

  /// Invalidates the cached it_power() (any mutation that can change draw).
  void touch_power() const { it_power_valid_ = false; }

  ClusterSpec spec_;
  power::GpuPowerModel gpu_model_;
  std::vector<Node> nodes_;
  int busy_total_ = 0;  ///< sum of nodes_[i].busy, maintained incrementally

  // it_power() is queried several times per simulation step between
  // mutations; the recompute is O(running jobs), so cache the last value
  // and invalidate on every state change that can move it (allocate,
  // release, cap changes, node enablement). Purely a recompute-avoidance
  // cache: the cached value is the loop's own output, bit for bit.
  mutable bool it_power_valid_ = false;
  mutable util::Power it_power_cache_;
  std::vector<Allocation> allocations_;
  std::unordered_map<JobId, util::Power> job_caps_;
  util::Power power_cap_;
  int enabled_nodes_;
};

}  // namespace greenhpc::cluster
