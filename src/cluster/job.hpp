#pragma once
// Job model and registry.
//
// A job asks for a number of GPUs and carries an amount of work measured in
// GPU-seconds at full (uncapped) throughput. Running under a power cap
// stretches wall-clock time by the cap's throughput factor; the per-job
// energy ledger is what the paper's Eq. 2 decomposition (per-user e_i, a_i)
// and the Sec. IV reporting tools consume.

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/calendar.hpp"
#include "util/units.hpp"

namespace greenhpc::cluster {

using JobId = std::uint64_t;
using UserId = std::uint32_t;

/// Workload classes from the paper's discussion: interactive debugging,
/// full training runs, hyper-parameter sweeps (Sec. IV-A "inevitably
/// redundant runs"), inference serving (Sec. IV-B), and generic analysis.
enum class JobClass : std::uint8_t {
  kDebug = 0,
  kTraining,
  kHyperparamSweep,
  kInference,
  kAnalysis,
};

[[nodiscard]] const char* job_class_name(JobClass c);

/// Research-domain tag carried by jobs. The cluster layer treats it as an
/// opaque label; workload:: assigns it from the conference calendar (the
/// paper's future-work ask: "breakdown of activity and energy use by
/// domain (e.g. NLP)"). 255 = untagged.
using DomainTag = std::uint8_t;
inline constexpr DomainTag kNoDomain = 255;

/// What a user submits.
struct JobRequest {
  UserId user = 0;
  JobClass job_class = JobClass::kTraining;
  DomainTag domain = kNoDomain;
  int gpus = 1;
  /// GPU-seconds of work at throughput factor 1.0 (so wall-clock at full
  /// speed = work_gpu_seconds / gpus).
  double work_gpu_seconds = 3600.0;
  /// Jobs with a deadline must finish by it; flexible jobs may be deferred
  /// by carbon/price-aware policies until slack runs out.
  std::optional<util::TimePoint> deadline;
  bool flexible = false;
  /// User-stated run-time estimate factor vs. truth (backfill uses estimates;
  /// 1.0 = perfect, >1 = padded).
  double estimate_factor = 1.0;
};

/// kMigrated is terminal *at this site*: the job was checkpointed and handed
/// to another region's twin, which resumes the remaining work as a fresh
/// submission (progress preserved in GPU-seconds by the migrate:: layer).
enum class JobState : std::uint8_t { kQueued = 0, kRunning, kCompleted, kCancelled, kMigrated };

[[nodiscard]] const char* job_state_name(JobState s);

/// Submission-time validation shared by every intake surface (registry,
/// sweep configs, migration resumes): rejects non-positive gpus /
/// work_gpu_seconds, estimate_factor below 1, and deadlines at or before
/// `submit_time`, with errors that name the offending value so a malformed
/// sweep config fails fast instead of corrupting ledgers downstream.
void validate_request(const JobRequest& request, util::TimePoint submit_time);

class Job {
 public:
  Job(JobId id, JobRequest request, util::TimePoint submit_time);

  [[nodiscard]] JobId id() const { return id_; }
  [[nodiscard]] const JobRequest& request() const { return request_; }
  [[nodiscard]] JobState state() const { return state_; }
  [[nodiscard]] util::TimePoint submit_time() const { return submit_time_; }
  [[nodiscard]] util::TimePoint start_time() const { return start_time_; }
  [[nodiscard]] util::TimePoint finish_time() const { return finish_time_; }

  [[nodiscard]] double work_done() const { return work_done_; }
  [[nodiscard]] double work_remaining() const { return request_.work_gpu_seconds - work_done_; }
  [[nodiscard]] util::Energy energy() const { return energy_; }

  /// Wall-clock estimate at a given effective per-GPU throughput.
  [[nodiscard]] util::Duration estimated_runtime(double throughput_factor) const;
  /// The user's (possibly padded) estimate, used by backfill.
  [[nodiscard]] util::Duration user_estimate(double throughput_factor) const;

  [[nodiscard]] util::Duration queue_wait() const;
  [[nodiscard]] util::Duration turnaround() const;

  // --- State transitions (enforced; misuse throws) ------------------------
  void start(util::TimePoint now);
  /// Advances progress by `gpu_seconds_equivalent` and charges `energy`.
  void progress(double gpu_seconds_equivalent, util::Energy energy);
  void complete(util::TimePoint now);
  void cancel(util::TimePoint now);
  /// Checkpoint-and-leave: the running job's state was snapshotted for
  /// migration to another site. Terminal here; the destination twin resumes
  /// the remaining work as its own submission.
  void migrate_out(util::TimePoint now);

 private:
  JobId id_;
  JobRequest request_;
  JobState state_ = JobState::kQueued;
  util::TimePoint submit_time_;
  util::TimePoint start_time_;
  util::TimePoint finish_time_;
  double work_done_ = 0.0;
  util::Energy energy_;
};

/// Owns all jobs ever submitted in a run; stable addresses, id lookup.
class JobRegistry {
 public:
  /// Creates a job in the queued state and returns its id.
  JobId submit(JobRequest request, util::TimePoint now);

  [[nodiscard]] Job& get(JobId id);
  [[nodiscard]] const Job& get(JobId id) const;
  [[nodiscard]] bool contains(JobId id) const { return index_.contains(id); }
  [[nodiscard]] std::size_t size() const { return jobs_.size(); }

  /// All ids in submission order.
  [[nodiscard]] const std::vector<JobId>& all() const { return order_; }

  /// Ids currently in the given state (linear scan; fine at our scales).
  [[nodiscard]] std::vector<JobId> in_state(JobState s) const;

 private:
  std::deque<Job> jobs_;  // deque: stable references across submissions
  std::vector<JobId> order_;
  std::unordered_map<JobId, std::size_t> index_;
  JobId next_id_ = 1;
};

}  // namespace greenhpc::cluster
