#pragma once
// Fixed-width-bin histogram, used for utilization and queue-wait
// distributions in the telemetry reports and mechanism analyses.

#include <span>
#include <string>
#include <vector>

namespace greenhpc::stats {

class Histogram {
 public:
  /// Bins [lo, hi) split into `bin_count` equal bins, with underflow and
  /// overflow tracked separately.
  Histogram(double lo, double hi, std::size_t bin_count);

  void add(double value);
  void add_all(std::span<const double> values);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t total() const { return total_; }

  /// [lo, hi) bounds of a bin.
  [[nodiscard]] std::pair<double, double> bin_range(std::size_t bin) const;

  /// Fraction of all added samples landing in `bin` (0 when empty).
  [[nodiscard]] double fraction(std::size_t bin) const;

  /// Compact ASCII rendering ("[0.0,0.1) ####... 12%") for reports.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace greenhpc::stats
