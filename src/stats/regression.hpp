#pragma once
// Least-squares regression.
//
// Used three ways in the reproduction:
//  1. Fig. 1: log-linear fits of compute-vs-time give the two-era doubling
//     times (~24 months pre-2012, ~3.4 months after).
//  2. Fig. 4: the slope of monthly power on temperature quantifies the
//     "near one-to-one" cooling relationship.
//  3. forecast/: AR(p) models are fit by OLS on lagged design matrices.

#include <span>
#include <vector>

namespace greenhpc::stats {

/// y = intercept + slope * x fit, with fit quality diagnostics.
struct SimpleFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
  double residual_stddev = 0.0;

  [[nodiscard]] double predict(double x) const { return intercept + slope * x; }
};

[[nodiscard]] SimpleFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Multiple linear regression y = X beta (+ optional intercept prepended by
/// the caller as a column of ones). Solved by Gaussian elimination with
/// partial pivoting on the normal equations — ample for the small design
/// matrices greenhpc fits (p <= ~12 seasonal/lag terms).
struct MultiFit {
  std::vector<double> coefficients;
  double r_squared = 0.0;
  double residual_stddev = 0.0;

  [[nodiscard]] double predict(std::span<const double> row) const;
};

/// `rows` is the design matrix, row-major; every row must have the same
/// length, and rows.size() must be >= the number of predictors.
[[nodiscard]] MultiFit multiple_fit(const std::vector<std::vector<double>>& rows,
                                    std::span<const double> ys);

/// Fits exponential growth y = a * 2^(t / doubling_time) by regressing
/// log2(y) on t. Returns doubling time in the units of `t`. Requires y > 0.
struct DoublingFit {
  double doubling_time = 0.0;   ///< time units per factor-of-two growth
  double log2_intercept = 0.0;  ///< log2(y) at t = 0
  double r_squared = 0.0;

  [[nodiscard]] double predict(double t) const;
};

[[nodiscard]] DoublingFit doubling_fit(std::span<const double> ts, std::span<const double> ys);

/// Solves the dense linear system A x = b in-place via partial-pivot Gaussian
/// elimination. Exposed for reuse by forecast::. Throws on singular systems.
[[nodiscard]] std::vector<double> solve_linear_system(std::vector<std::vector<double>> a,
                                                      std::vector<double> b);

/// Maintained Cholesky factor of a symmetric positive-definite matrix, with
/// O(n^2) rank-1 update/downdate — the solver behind AR(p) incremental
/// refits, where the normal equations change by a handful of rank-1 terms
/// per window slide but were previously re-solved by O(n^3) elimination.
///
/// Storage is a flat row-major lower triangle L with A = L L^T. factor()
/// reads the upper-triangle-filled symmetric input the AR accumulator keeps
/// (A(i,j) at a[min*n + max]).
class CholeskySolver {
 public:
  /// Factors `a` (n x n, symmetric, upper triangle filled). Returns false —
  /// and invalidates the solver — when the matrix is not positive definite.
  bool factor(const std::vector<double>& a, std::size_t n);

  /// Rank-1 update: A <- A + x x^T in O(n^2).
  void update(std::span<const double> x);

  /// Rank-1 downdate: A <- A - x x^T. Returns false — and invalidates the
  /// solver — when the downdate would lose positive definiteness.
  bool downdate(std::span<const double> x);

  /// Solves A out = b by forward/back substitution. Requires valid().
  void solve_into(std::span<const double> b, std::vector<double>& out) const;

  [[nodiscard]] bool valid() const { return valid_; }
  [[nodiscard]] std::size_t dim() const { return n_; }

 private:
  std::vector<double> l_;        ///< row-major lower triangle, n_ x n_
  std::vector<double> scratch_;  ///< mutable copy of x for update/downdate
  std::size_t n_ = 0;
  bool valid_ = false;
};

}  // namespace greenhpc::stats
