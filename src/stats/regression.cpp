#include "stats/regression.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace greenhpc::stats {

using util::ensure;
using util::require;

SimpleFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  require(xs.size() == ys.size(), "linear_fit: length mismatch");
  require(xs.size() >= 2, "linear_fit: need at least two samples");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
  }
  require(sxx > 0.0, "linear_fit: zero variance in x");

  SimpleFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;

  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double resid = ys[i] - fit.predict(xs[i]);
    ss_res += resid * resid;
    ss_tot += (ys[i] - my) * (ys[i] - my);
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  fit.residual_stddev =
      xs.size() > 2 ? std::sqrt(ss_res / static_cast<double>(xs.size() - 2)) : 0.0;
  return fit;
}

std::vector<double> solve_linear_system(std::vector<std::vector<double>> a, std::vector<double> b) {
  const std::size_t n = b.size();
  require(a.size() == n, "solve_linear_system: dimension mismatch");
  for (const auto& row : a) require(row.size() == n, "solve_linear_system: non-square matrix");

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row)
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    require(std::abs(a[pivot][col]) > 1e-12, "solve_linear_system: singular system");
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);

    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / a[col][col];
      for (std::size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }

  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double accum = b[i];
    for (std::size_t k = i + 1; k < n; ++k) accum -= a[i][k] * x[k];
    x[i] = accum / a[i][i];
  }
  return x;
}

double MultiFit::predict(std::span<const double> row) const {
  require(row.size() == coefficients.size(), "MultiFit::predict: arity mismatch");
  double y = 0.0;
  for (std::size_t i = 0; i < row.size(); ++i) y += coefficients[i] * row[i];
  return y;
}

MultiFit multiple_fit(const std::vector<std::vector<double>>& rows, std::span<const double> ys) {
  require(rows.size() == ys.size(), "multiple_fit: row/target count mismatch");
  require(!rows.empty(), "multiple_fit: empty design matrix");
  const std::size_t p = rows.front().size();
  require(p >= 1, "multiple_fit: need at least one predictor");
  require(rows.size() >= p, "multiple_fit: fewer rows than predictors");
  for (const auto& row : rows) require(row.size() == p, "multiple_fit: ragged design matrix");

  // Normal equations: (X'X) beta = X'y.
  std::vector<std::vector<double>> xtx(p, std::vector<double>(p, 0.0));
  std::vector<double> xty(p, 0.0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t i = 0; i < p; ++i) {
      xty[i] += rows[r][i] * ys[r];
      for (std::size_t j = i; j < p; ++j) xtx[i][j] += rows[r][i] * rows[r][j];
    }
  }
  for (std::size_t i = 0; i < p; ++i)
    for (std::size_t j = 0; j < i; ++j) xtx[i][j] = xtx[j][i];

  MultiFit fit;
  fit.coefficients = solve_linear_system(std::move(xtx), std::move(xty));

  const double my = mean(ys);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const double resid = ys[r] - fit.predict(rows[r]);
    ss_res += resid * resid;
    ss_tot += (ys[r] - my) * (ys[r] - my);
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  fit.residual_stddev = rows.size() > p
                            ? std::sqrt(ss_res / static_cast<double>(rows.size() - p))
                            : 0.0;
  return fit;
}

double DoublingFit::predict(double t) const {
  return std::exp2(log2_intercept + t / doubling_time);
}

DoublingFit doubling_fit(std::span<const double> ts, std::span<const double> ys) {
  require(ts.size() == ys.size(), "doubling_fit: length mismatch");
  std::vector<double> log2y;
  log2y.reserve(ys.size());
  for (double y : ys) {
    require(y > 0.0, "doubling_fit: y values must be positive");
    log2y.push_back(std::log2(y));
  }
  const SimpleFit fit = linear_fit(ts, log2y);
  ensure(fit.slope != 0.0, "doubling_fit: zero growth slope");
  return DoublingFit{1.0 / fit.slope, fit.intercept, fit.r_squared};
}

bool CholeskySolver::factor(const std::vector<double>& a, std::size_t n) {
  require(a.size() >= n * n, "CholeskySolver::factor: matrix smaller than n x n");
  n_ = n;
  l_.assign(n * n, 0.0);
  valid_ = false;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      // Symmetric input with only the upper triangle filled: A(i,j) lives at
      // a[min*n + max].
      double sum = a[j * n + i];
      for (std::size_t k = 0; k < j; ++k) sum -= l_[i * n + k] * l_[j * n + k];
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) return false;
        l_[i * n + i] = std::sqrt(sum);
      } else {
        l_[i * n + j] = sum / l_[j * n + j];
      }
    }
  }
  valid_ = true;
  return true;
}

void CholeskySolver::update(std::span<const double> x) {
  require(valid_ && x.size() == n_, "CholeskySolver::update: invalid state or size");
  scratch_.assign(x.begin(), x.end());
  // Classic Givens-style rank-1 update (Golub & Van Loan): each column k
  // rotates x into L, O(n^2) total.
  for (std::size_t k = 0; k < n_; ++k) {
    const double lkk = l_[k * n_ + k];
    const double xk = scratch_[k];
    const double r = std::sqrt(lkk * lkk + xk * xk);
    const double c = r / lkk;
    const double s = xk / lkk;
    l_[k * n_ + k] = r;
    for (std::size_t i = k + 1; i < n_; ++i) {
      l_[i * n_ + k] = (l_[i * n_ + k] + s * scratch_[i]) / c;
      scratch_[i] = c * scratch_[i] - s * l_[i * n_ + k];
    }
  }
}

bool CholeskySolver::downdate(std::span<const double> x) {
  require(valid_ && x.size() == n_, "CholeskySolver::downdate: invalid state or size");
  scratch_.assign(x.begin(), x.end());
  for (std::size_t k = 0; k < n_; ++k) {
    const double lkk = l_[k * n_ + k];
    const double xk = scratch_[k];
    const double r2 = lkk * lkk - xk * xk;
    if (r2 <= 0.0 || !std::isfinite(r2)) {
      // The downdated matrix is no longer (numerically) positive definite;
      // the caller refactors from the exact normal equations instead.
      valid_ = false;
      return false;
    }
    const double r = std::sqrt(r2);
    const double c = r / lkk;
    const double s = xk / lkk;
    l_[k * n_ + k] = r;
    for (std::size_t i = k + 1; i < n_; ++i) {
      l_[i * n_ + k] = (l_[i * n_ + k] - s * scratch_[i]) / c;
      scratch_[i] = c * scratch_[i] - s * l_[i * n_ + k];
    }
  }
  return true;
}

void CholeskySolver::solve_into(std::span<const double> b, std::vector<double>& out) const {
  require(valid_ && b.size() == n_, "CholeskySolver::solve_into: invalid state or size");
  out.assign(b.begin(), b.end());
  // Forward substitution: L y = b.
  for (std::size_t i = 0; i < n_; ++i) {
    double sum = out[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l_[i * n_ + k] * out[k];
    out[i] = sum / l_[i * n_ + i];
  }
  // Back substitution: L^T x = y.
  for (std::size_t i = n_; i-- > 0;) {
    double sum = out[i];
    for (std::size_t k = i + 1; k < n_; ++k) sum -= l_[k * n_ + i] * out[k];
    out[i] = sum / l_[i * n_ + i];
  }
}

}  // namespace greenhpc::stats
