#include "stats/regression.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace greenhpc::stats {

using util::ensure;
using util::require;

SimpleFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  require(xs.size() == ys.size(), "linear_fit: length mismatch");
  require(xs.size() >= 2, "linear_fit: need at least two samples");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
  }
  require(sxx > 0.0, "linear_fit: zero variance in x");

  SimpleFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;

  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double resid = ys[i] - fit.predict(xs[i]);
    ss_res += resid * resid;
    ss_tot += (ys[i] - my) * (ys[i] - my);
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  fit.residual_stddev =
      xs.size() > 2 ? std::sqrt(ss_res / static_cast<double>(xs.size() - 2)) : 0.0;
  return fit;
}

std::vector<double> solve_linear_system(std::vector<std::vector<double>> a, std::vector<double> b) {
  const std::size_t n = b.size();
  require(a.size() == n, "solve_linear_system: dimension mismatch");
  for (const auto& row : a) require(row.size() == n, "solve_linear_system: non-square matrix");

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row)
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    require(std::abs(a[pivot][col]) > 1e-12, "solve_linear_system: singular system");
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);

    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / a[col][col];
      for (std::size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }

  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double accum = b[i];
    for (std::size_t k = i + 1; k < n; ++k) accum -= a[i][k] * x[k];
    x[i] = accum / a[i][i];
  }
  return x;
}

double MultiFit::predict(std::span<const double> row) const {
  require(row.size() == coefficients.size(), "MultiFit::predict: arity mismatch");
  double y = 0.0;
  for (std::size_t i = 0; i < row.size(); ++i) y += coefficients[i] * row[i];
  return y;
}

MultiFit multiple_fit(const std::vector<std::vector<double>>& rows, std::span<const double> ys) {
  require(rows.size() == ys.size(), "multiple_fit: row/target count mismatch");
  require(!rows.empty(), "multiple_fit: empty design matrix");
  const std::size_t p = rows.front().size();
  require(p >= 1, "multiple_fit: need at least one predictor");
  require(rows.size() >= p, "multiple_fit: fewer rows than predictors");
  for (const auto& row : rows) require(row.size() == p, "multiple_fit: ragged design matrix");

  // Normal equations: (X'X) beta = X'y.
  std::vector<std::vector<double>> xtx(p, std::vector<double>(p, 0.0));
  std::vector<double> xty(p, 0.0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t i = 0; i < p; ++i) {
      xty[i] += rows[r][i] * ys[r];
      for (std::size_t j = i; j < p; ++j) xtx[i][j] += rows[r][i] * rows[r][j];
    }
  }
  for (std::size_t i = 0; i < p; ++i)
    for (std::size_t j = 0; j < i; ++j) xtx[i][j] = xtx[j][i];

  MultiFit fit;
  fit.coefficients = solve_linear_system(std::move(xtx), std::move(xty));

  const double my = mean(ys);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const double resid = ys[r] - fit.predict(rows[r]);
    ss_res += resid * resid;
    ss_tot += (ys[r] - my) * (ys[r] - my);
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  fit.residual_stddev = rows.size() > p
                            ? std::sqrt(ss_res / static_cast<double>(rows.size() - p))
                            : 0.0;
  return fit;
}

double DoublingFit::predict(double t) const {
  return std::exp2(log2_intercept + t / doubling_time);
}

DoublingFit doubling_fit(std::span<const double> ts, std::span<const double> ys) {
  require(ts.size() == ys.size(), "doubling_fit: length mismatch");
  std::vector<double> log2y;
  log2y.reserve(ys.size());
  for (double y : ys) {
    require(y > 0.0, "doubling_fit: y values must be positive");
    log2y.push_back(std::log2(y));
  }
  const SimpleFit fit = linear_fit(ts, log2y);
  ensure(fit.slope != 0.0, "doubling_fit: zero growth slope");
  return DoublingFit{1.0 / fit.slope, fit.intercept, fit.r_squared};
}

}  // namespace greenhpc::stats
