#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace greenhpc::stats {

using util::require;

double sum(std::span<const double> xs) {
  // Kahan summation keeps year-long hourly accumulations exact enough for
  // the conservation tests (ledger == meter integral).
  double total = 0.0;
  double compensation = 0.0;
  for (double x : xs) {
    const double y = x - compensation;
    const double t = total + y;
    compensation = (t - total) - y;
    total = t;
  }
  return total;
}

double mean(std::span<const double> xs) {
  require(!xs.empty(), "mean: empty series");
  return sum(xs) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  require(xs.size() >= 2, "variance: need at least two samples");
  const double m = mean(xs);
  double accum = 0.0;
  for (double x : xs) accum += (x - m) * (x - m);
  return accum / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  require(!xs.empty(), "min: empty series");
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  require(!xs.empty(), "max: empty series");
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  require(!xs.empty(), "quantile: empty series");
  require(q >= 0.0 && q <= 1.0, "quantile: q must be within [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - std::floor(pos);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double coefficient_of_variation(std::span<const double> xs) {
  const double m = mean(xs);
  require(m != 0.0, "coefficient_of_variation: zero mean");
  return stddev(xs) / m;
}

Summary summarize(std::span<const double> xs) {
  require(!xs.empty(), "summarize: empty series");
  Summary s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.stddev = xs.size() >= 2 ? stddev(xs) : 0.0;
  s.min = min(xs);
  s.p25 = quantile(xs, 0.25);
  s.median = median(xs);
  s.p75 = quantile(xs, 0.75);
  s.max = max(xs);
  return s;
}

}  // namespace greenhpc::stats
