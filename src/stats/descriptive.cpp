#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace greenhpc::stats {

using util::require;

double sum(std::span<const double> xs) {
  // Kahan summation keeps year-long hourly accumulations exact enough for
  // the conservation tests (ledger == meter integral).
  double total = 0.0;
  double compensation = 0.0;
  for (double x : xs) {
    const double y = x - compensation;
    const double t = total + y;
    compensation = (t - total) - y;
    total = t;
  }
  return total;
}

double mean(std::span<const double> xs) {
  require(!xs.empty(), "mean: empty series");
  return sum(xs) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  require(xs.size() >= 2, "variance: need at least two samples");
  const double m = mean(xs);
  double accum = 0.0;
  for (double x : xs) accum += (x - m) * (x - m);
  return accum / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  require(!xs.empty(), "min: empty series");
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  require(!xs.empty(), "max: empty series");
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  require(!xs.empty(), "quantile: empty series");
  require(q >= 0.0 && q <= 1.0, "quantile: q must be within [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - std::floor(pos);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double coefficient_of_variation(std::span<const double> xs) {
  const double m = mean(xs);
  require(m != 0.0, "coefficient_of_variation: zero mean");
  return stddev(xs) / m;
}

double t_critical_975(std::size_t dof) {
  require(dof >= 1, "t_critical_975: dof must be >= 1");
  static constexpr double kTable[30] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (dof <= 30) return kTable[dof - 1];
  // Linear interpolation between the standard anchor rows.
  struct Anchor {
    double dof, value;
  };
  static constexpr Anchor kAnchors[] = {{30.0, 2.042}, {40.0, 2.021}, {60.0, 2.000},
                                        {120.0, 1.980}};
  const auto d = static_cast<double>(dof);
  for (std::size_t i = 0; i + 1 < std::size(kAnchors); ++i) {
    if (d <= kAnchors[i + 1].dof) {
      const double frac = (d - kAnchors[i].dof) / (kAnchors[i + 1].dof - kAnchors[i].dof);
      return kAnchors[i].value + frac * (kAnchors[i + 1].value - kAnchors[i].value);
    }
  }
  return 1.960;
}

double ci95_half_width(std::span<const double> xs) {
  require(!xs.empty(), "ci95_half_width: empty series");
  if (xs.size() == 1) return 0.0;
  const double s = stddev(xs);
  return t_critical_975(xs.size() - 1) * s / std::sqrt(static_cast<double>(xs.size()));
}

Summary summarize(std::span<const double> xs) {
  require(!xs.empty(), "summarize: empty series");
  Summary s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.stddev = xs.size() >= 2 ? stddev(xs) : 0.0;
  s.min = min(xs);
  s.p25 = quantile(xs, 0.25);
  s.median = median(xs);
  s.p75 = quantile(xs, 0.75);
  s.max = max(xs);
  return s;
}

}  // namespace greenhpc::stats
