#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace greenhpc::stats {

using util::require;

double pearson(std::span<const double> xs, std::span<const double> ys) {
  require(xs.size() == ys.size(), "pearson: length mismatch");
  require(xs.size() >= 2, "pearson: need at least two samples");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  require(sxx > 0.0 && syy > 0.0, "pearson: zero-variance series");
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });

  std::vector<double> out(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average rank for the tie group [i, j], 1-based.
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) out[order[k]] = avg_rank;
    i = j + 1;
  }
  return out;
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  require(xs.size() == ys.size(), "spearman: length mismatch");
  const auto rx = ranks(xs);
  const auto ry = ranks(ys);
  return pearson(rx, ry);
}

std::vector<LagCorrelation> cross_correlation(std::span<const double> xs, std::span<const double> ys,
                                              int max_lag) {
  require(xs.size() == ys.size(), "cross_correlation: length mismatch");
  require(max_lag >= 0, "cross_correlation: max_lag must be non-negative");
  const auto n = static_cast<int>(xs.size());
  require(n - max_lag >= 3, "cross_correlation: series too short for requested max_lag");

  std::vector<LagCorrelation> out;
  out.reserve(static_cast<std::size_t>(2 * max_lag + 1));
  for (int lag = -max_lag; lag <= max_lag; ++lag) {
    // Correlate x[t] with y[t + lag] over the overlapping window.
    const int start_x = std::max(0, -lag);
    const int count = n - std::abs(lag);
    std::vector<double> wx, wy;
    wx.reserve(static_cast<std::size_t>(count));
    wy.reserve(static_cast<std::size_t>(count));
    for (int t = 0; t < count; ++t) {
      wx.push_back(xs[static_cast<std::size_t>(start_x + t)]);
      wy.push_back(ys[static_cast<std::size_t>(start_x + t + lag)]);
    }
    out.push_back({lag, pearson(wx, wy)});
  }
  return out;
}

LagCorrelation best_lag(std::span<const double> xs, std::span<const double> ys, int max_lag) {
  const auto all = cross_correlation(xs, ys, max_lag);
  return *std::max_element(all.begin(), all.end(), [](const LagCorrelation& a, const LagCorrelation& b) {
    return a.correlation < b.correlation;
  });
}

double comonotonicity(std::span<const double> xs, std::span<const double> ys) {
  require(xs.size() == ys.size(), "comonotonicity: length mismatch");
  require(xs.size() >= 2, "comonotonicity: need at least two samples");
  std::size_t agree = 0;
  std::size_t total = 0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    const double dx = xs[i] - xs[i - 1];
    const double dy = ys[i] - ys[i - 1];
    if (dx == 0.0 && dy == 0.0) continue;  // joint plateau: uninformative
    ++total;
    if ((dx >= 0.0 && dy >= 0.0) || (dx <= 0.0 && dy <= 0.0)) ++agree;
  }
  return total == 0 ? 1.0 : static_cast<double>(agree) / static_cast<double>(total);
}

}  // namespace greenhpc::stats
