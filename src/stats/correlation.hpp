#pragma once
// Correlation measures.
//
// The paper's empirical claims are correlation-shaped:
//  - Fig. 2: power consumption is *inversely* related to renewable share,
//  - Fig. 3: prices tend to be lower when renewable share is higher,
//  - Fig. 4: a "near one-to-one" (rank-monotone) power/temperature relation,
//  - Fig. 5: energy use *leads* deadline concentrations (anticipatory ramp),
//    which we quantify with a lagged cross-correlation.
// The benches reproduce each claim by computing these statistics over the
// simulated monthly series and asserting the signs/lags.

#include <span>
#include <vector>

namespace greenhpc::stats {

/// Pearson product-moment correlation. Series must be equal-length, size>=2,
/// and have nonzero variance.
[[nodiscard]] double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation (average ranks for ties).
[[nodiscard]] double spearman(std::span<const double> xs, std::span<const double> ys);

/// Mid-ranks (1-based, ties averaged), the Spearman building block.
[[nodiscard]] std::vector<double> ranks(std::span<const double> xs);

/// Pearson correlation between x[t] and y[t+lag] for each lag in
/// [-max_lag, +max_lag]. A *positive* lag with high correlation means x leads
/// y (x moves first). Overlapping windows shrink with |lag|.
struct LagCorrelation {
  int lag = 0;
  double correlation = 0.0;
};
[[nodiscard]] std::vector<LagCorrelation> cross_correlation(std::span<const double> xs,
                                                            std::span<const double> ys, int max_lag);

/// The lag in [-max_lag, max_lag] with the highest correlation.
[[nodiscard]] LagCorrelation best_lag(std::span<const double> xs, std::span<const double> ys, int max_lag);

/// Fraction of adjacent pairs moving in the same direction in both series;
/// 1.0 means perfectly co-monotone ("near one-to-one" in the Fig. 4 sense).
[[nodiscard]] double comonotonicity(std::span<const double> xs, std::span<const double> ys);

}  // namespace greenhpc::stats
