#pragma once
// Descriptive statistics over contiguous double series.
//
// These are the primitives every analysis in the paper reduces to: monthly
// means of power (Figs. 2, 4, 5), ranges of prices (Fig. 3), and spread
// measures for the mechanism/stress ensembles.

#include <span>
#include <vector>

namespace greenhpc::stats {

[[nodiscard]] double sum(std::span<const double> xs);
[[nodiscard]] double mean(std::span<const double> xs);

/// Sample variance (n-1 denominator). Requires at least two samples.
[[nodiscard]] double variance(std::span<const double> xs);
[[nodiscard]] double stddev(std::span<const double> xs);

[[nodiscard]] double min(std::span<const double> xs);
[[nodiscard]] double max(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1]. q=0.5 is the median.
[[nodiscard]] double quantile(std::span<const double> xs, double q);
[[nodiscard]] double median(std::span<const double> xs);

/// Coefficient of variation (stddev / mean); requires nonzero mean.
[[nodiscard]] double coefficient_of_variation(std::span<const double> xs);

/// Two-sided 95% Student-t critical value for `dof` degrees of freedom
/// (exact table through dof 30, interpolated anchors to 120, 1.96 beyond).
/// This is what turns a replica ensemble's spread into a confidence claim.
[[nodiscard]] double t_critical_975(std::size_t dof);

/// Half-width of the 95% confidence interval on the mean:
/// t_{0.975, n-1} * s / sqrt(n). A single sample has no spread estimate, so
/// n == 1 returns 0 (a point estimate; callers should report n alongside).
[[nodiscard]] double ci95_half_width(std::span<const double> xs);

/// Summary bundle used in reports.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> xs);

}  // namespace greenhpc::stats
