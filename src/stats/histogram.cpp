#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/table.hpp"

namespace greenhpc::stats {

using util::require;

Histogram::Histogram(double lo, double hi, std::size_t bin_count)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bin_count)),
      counts_(bin_count, 0) {
  require(hi > lo, "Histogram: hi must exceed lo");
  require(bin_count >= 1, "Histogram: need at least one bin");
}

void Histogram::add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((value - lo_) / bin_width_);
  bin = std::min(bin, counts_.size() - 1);  // guard float edge at hi_
  ++counts_[bin];
}

void Histogram::add_all(std::span<const double> values) {
  for (double v : values) add(v);
}

std::pair<double, double> Histogram::bin_range(std::size_t bin) const {
  require(bin < counts_.size(), "Histogram::bin_range: bin out of range");
  const double lo = lo_ + bin_width_ * static_cast<double>(bin);
  return {lo, lo + bin_width_};
}

double Histogram::fraction(std::size_t bin) const {
  require(bin < counts_.size(), "Histogram::fraction: bin out of range");
  return total_ == 0 ? 0.0 : static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t width) const {
  std::string out;
  const std::size_t peak = counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto [lo, hi] = bin_range(b);
    const std::size_t bar =
        peak == 0 ? 0 : counts_[b] * width / std::max<std::size_t>(peak, 1);
    out += "[" + util::fmt_fixed(lo, 2) + ", " + util::fmt_fixed(hi, 2) + ") ";
    out += std::string(bar, '#');
    out += " " + util::fmt_fixed(100.0 * fraction(b), 1) + "%\n";
  }
  if (underflow_ > 0) out += "underflow: " + std::to_string(underflow_) + "\n";
  if (overflow_ > 0) out += "overflow: " + std::to_string(overflow_) + "\n";
  return out;
}

}  // namespace greenhpc::stats
