#pragma once
// ReplicaRunner: N independently-seeded replicas of a scenario, in parallel.
//
// The paper's claims are trade-off curves measured on a stochastic simulator,
// so any single-seed number is a point estimate with unknown variance. The
// runner turns one ScenarioSpec into a Monte-Carlo ensemble: replica k's seed
// is derived from the base seed by a SplitMix64 mix that depends only on
// (base_seed, k) — never on thread count or execution order — so replica k is
// bit-identical whether the ensemble runs serially, on 2 workers, or on 64.
// Each replica builds its own twin (core::reseed() derives the per-subsystem
// environment seeds), so nothing is shared across replicas but the pool.

#include <cstdint>
#include <memory>
#include <vector>

#include "experiment/scenario.hpp"
#include "util/thread_pool.hpp"

namespace greenhpc::experiment {

/// One replica's outcome, tagged with its index and derived seed.
struct ReplicaResult {
  std::size_t replica = 0;
  std::uint64_t seed = 0;
  core::RunSummary run;
};

/// Deterministic per-replica seed: a SplitMix64 expansion of (base_seed, k).
/// Pure function of its arguments — the contract the golden determinism
/// tests pin down.
[[nodiscard]] std::uint64_t replica_seed(std::uint64_t base_seed, std::size_t replica);

struct RunnerOptions {
  std::size_t replicas = 8;
  std::uint64_t base_seed = 42;
  /// Worker threads; 0 uses the process-wide shared pool (hardware-sized).
  std::size_t jobs = 0;
};

class ReplicaRunner {
 public:
  explicit ReplicaRunner(RunnerOptions options);

  [[nodiscard]] const RunnerOptions& options() const { return options_; }

  /// Runs options().replicas replicas of `spec` on this runner's pool.
  /// results[k] is always replica k (index-addressed writes, no reordering);
  /// exceptions from any replica propagate.
  [[nodiscard]] std::vector<ReplicaResult> run(const ScenarioSpec& spec) const;

  /// As above on a caller-supplied pool (the throughput bench's entry).
  [[nodiscard]] std::vector<ReplicaResult> run(const ScenarioSpec& spec,
                                               util::ThreadPool& pool) const;

 private:
  RunnerOptions options_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< owned when options_.jobs > 0
};

}  // namespace greenhpc::experiment
