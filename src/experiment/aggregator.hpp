#pragma once
// Aggregator: replica ensembles -> mean / stddev / 95% CI verdicts.
//
// Folds per-replica RunSummarys into per-metric distribution statistics via
// src/stats (sample stddev, Student-t 95% interval on the mean), producing
// the telemetry::MetricStats the CI-annotated tables and CSV/JSON exports
// render. Benches with custom per-replica metrics (e.g. attributed job
// carbon) use fold() directly on their raw value series.

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "experiment/runner.hpp"
#include "telemetry/experiment.hpp"

namespace greenhpc::experiment {

class Aggregator {
 public:
  /// A named scalar extracted from each replica's summary.
  struct Metric {
    std::string name;
    std::function<double(const core::RunSummary&)> get;
  };

  /// The RunSummary metrics every experiment reports: job counts, activity,
  /// waits, utilization, PUE, and the full Eq. 1 ledger (energy MWh, cost $,
  /// CO2 kg, water m^3), plus throttle hours.
  [[nodiscard]] static const std::vector<Metric>& default_metrics();

  /// One metric's stats over a raw value series (n >= 1; n == 1 reports a
  /// point estimate with zero spread).
  [[nodiscard]] static telemetry::MetricStats fold(std::string name,
                                                   std::span<const double> values);

  /// Folds an ensemble into per-metric stats, one entry per metric, in
  /// metric order.
  [[nodiscard]] static std::vector<telemetry::MetricStats> aggregate(
      std::span<const ReplicaResult> replicas,
      const std::vector<Metric>& metrics = default_metrics());
};

}  // namespace greenhpc::experiment
