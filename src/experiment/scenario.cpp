#include "experiment/scenario.hpp"

#include <algorithm>

#include "fleet/region.hpp"
#include "fleet/routing.hpp"
#include "forecast/rolling.hpp"
#include "grid/battery.hpp"
#include "migrate/planner.hpp"
#include "sched/forecast_carbon.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "workload/arrivals.hpp"
#include "workload/conferences.hpp"

namespace greenhpc::experiment {

using util::require;

namespace {

/// Backfill-or-whatever with a fixed cluster-wide ceiling (the power-cap
/// axis; min-composed so carbon/power-aware policies can still cap lower).
class CappedScheduler final : public sched::Scheduler {
 public:
  CappedScheduler(std::unique_ptr<sched::Scheduler> inner, util::Power cap)
      : inner_(std::move(inner)), cap_(cap) {}
  [[nodiscard]] const char* name() const override { return inner_->name(); }
  [[nodiscard]] std::vector<cluster::JobId> select(const sched::SchedulerContext& ctx) override {
    return inner_->select(ctx);
  }
  [[nodiscard]] util::Power choose_cap(const sched::SchedulerContext& ctx) override {
    return std::min(cap_, inner_->choose_cap(ctx));
  }
  [[nodiscard]] const sched::Scheduler& inner() const { return *inner_; }

 private:
  std::unique_ptr<sched::Scheduler> inner_;
  util::Power cap_;
};

void scale_flexibility(std::vector<workload::ClassProfile>& mix, double scale) {
  for (workload::ClassProfile& p : mix) p.flexible_probability *= scale;
}

}  // namespace

std::string ScenarioSpec::label() const {
  std::string out;
  if (mode == Mode::kSingleSite) {
    out = core::policy_name(scheduler);
    if (power_cap_w) out += "/cap" + util::fmt_fixed(*power_cap_w, 0);
    if (battery_kwh) out += "/bat" + util::fmt_fixed(*battery_kwh, 0);
  } else {
    out = "fleet-" + router + "/r" + std::to_string(region_count);
    if (transfer_kwh_per_job > 0.0) out += "/xfer" + util::fmt_fixed(transfer_kwh_per_job, 0);
    if (migration_policy != "off") {
      out += "/mig-" + migration_policy;
      if (checkpoint_cost != 1.0) out += "/ckpt" + util::fmt_fixed(checkpoint_cost, 1);
      if (max_in_flight != 4) out += "/pipe" + std::to_string(max_in_flight);
    }
    if (faults != "off") {
      out += "/faults-" + faults;
      if (fault_intensity != 1.0) out += "/fi" + util::fmt_fixed(fault_intensity, 2);
    }
  }
  if (flexible_scale != 1.0) out += "/flex" + util::fmt_fixed(flexible_scale, 1);
  // Forecast controls only shape predictive points (forecast scheduler,
  // forecast routers, or a migration planner — its stay-vs-move scoring runs
  // on the same forecasters); non-default settings must keep two such points
  // distinguishable in tables.
  const bool predictive =
      scheduler == core::PolicyKind::kForecastCarbon ||
      (mode == Mode::kFleet &&
       (router.find("_forecast") != std::string::npos || migration_policy != "off"));
  if (predictive) {
    if (forecast_model != "climatology") out += "/" + forecast_model;
    if (forecast_horizon_hours != 24) out += "/h" + std::to_string(forecast_horizon_hours);
  }
  return out;
}

void ScenarioSpec::validate() const {
  require(days >= 0, "ScenarioSpec: days must be >= 0");
  require(days > 0 || months >= 1, "ScenarioSpec: window must cover at least one month or day");
  require(warmup_days >= 0, "ScenarioSpec: warmup_days must be >= 0");
  require(start.month >= 1 && start.month <= 12, "ScenarioSpec: start month out of range");
  require(flexible_scale >= 0.0, "ScenarioSpec: flexible_scale must be >= 0");
  require(forecast::model_known(forecast_model), "ScenarioSpec: unknown forecast model");
  require(forecast_horizon_hours >= 1 && forecast_horizon_hours <= 168,
          "ScenarioSpec: forecast horizon must be 1..168 hours");
  require(migrate::migration_objective_from_name(migration_policy).has_value(),
          "ScenarioSpec: unknown migration policy (" +
              std::string(migrate::migration_policy_names()) + ")");
  require(checkpoint_cost > 0.0, "ScenarioSpec: checkpoint_cost must be positive");
  require(max_in_flight >= 1, "ScenarioSpec: max_in_flight must be >= 1");
  require(fault::fault_plan_from_name(faults).has_value(),
          "ScenarioSpec: unknown fault plan (" + std::string(fault::fault_plan_names()) + ")");
  require(fault_intensity >= 0.0, "ScenarioSpec: fault_intensity must be >= 0");
  if (mode == Mode::kSingleSite) {
    require(!power_cap_w || *power_cap_w > 0.0, "ScenarioSpec: power cap must be positive");
    require(!battery_kwh || *battery_kwh > 0.0, "ScenarioSpec: battery must be positive");
    require(migration_policy == "off",
            "ScenarioSpec: migration needs a fleet (single-site jobs have nowhere to go)");
    require(faults == "off",
            "ScenarioSpec: fault injection targets the fleet step loop (use fleet mode)");
  } else {
    require(region_count >= 1 && region_count <= 512,
            "ScenarioSpec: region_count must be 1..512");
    require(fleet::make_router(router) != nullptr, "ScenarioSpec: unknown router name");
    require(transfer_kwh_per_job >= 0.0, "ScenarioSpec: transfer penalty must be >= 0");
  }
}

util::TimePoint ScenarioSpec::window_start() const { return util::month_span(start).start; }

util::TimePoint ScenarioSpec::window_end() const {
  if (days > 0) return window_start() + util::days(days);
  const util::MonthKey last = util::MonthKey::from_index(start.index_from_epoch() + months - 1);
  return util::month_span(last).end;
}

std::unique_ptr<core::Datacenter> make_single_site(const ScenarioSpec& spec, std::uint64_t seed) {
  require(spec.mode == Mode::kSingleSite, "make_single_site: spec is fleet mode");
  spec.validate();

  core::DatacenterConfig config;
  config.reseed(seed);
  config.start = spec.window_start() - util::days(spec.warmup_days);
  if (spec.battery_kwh) {
    grid::BatteryConfig battery;
    battery.capacity = util::kilowatt_hours(*spec.battery_kwh);
    battery.max_charge = util::kilowatts(*spec.battery_kwh / 4.0);
    battery.max_discharge = util::kilowatts(*spec.battery_kwh / 4.0);
    config.battery = battery;
  }

  std::unique_ptr<sched::Scheduler> scheduler = core::make_scheduler(
      spec.scheduler, {spec.forecast_model, util::hours(spec.forecast_horizon_hours)});
  if (spec.power_cap_w) {
    scheduler = std::make_unique<CappedScheduler>(std::move(scheduler),
                                                  util::watts(*spec.power_cap_w));
  }
  auto dc = std::make_unique<core::Datacenter>(config, std::move(scheduler));

  workload::ArrivalConfig arrivals;
  if (spec.rate_per_hour > 0.0) arrivals.base_rate_per_hour = spec.rate_per_hour;
  scale_flexibility(arrivals.mix, spec.flexible_scale);
  dc->attach_arrivals(arrivals, workload::DeadlineCalendar::standard());
  if (spec.battery_kwh) {
    dc->attach_battery_policy(std::make_unique<grid::ThresholdArbitragePolicy>());
  }
  return dc;
}

const sched::ForecastCarbonScheduler* forecast_scheduler_of(const core::Datacenter& dc) {
  const sched::Scheduler* scheduler = &dc.scheduler();
  if (const auto* capped = dynamic_cast<const CappedScheduler*>(scheduler)) {
    scheduler = &capped->inner();
  }
  return dynamic_cast<const sched::ForecastCarbonScheduler*>(scheduler);
}

std::unique_ptr<fleet::FleetCoordinator> make_fleet(const ScenarioSpec& spec,
                                                    std::uint64_t seed) {
  require(spec.mode == Mode::kFleet, "make_fleet: spec is single-site mode");
  spec.validate();

  std::vector<fleet::RegionProfile> profiles = fleet::make_synthetic_fleet(spec.region_count);

  fleet::FleetConfig config;
  config.seed = seed;
  config.start = spec.window_start() - util::days(spec.warmup_days);
  config.step_jobs = spec.step_jobs;
  // rate_per_hour is quoted per reference site's worth of GPUs, like the CLI.
  config.arrivals.base_rate_per_hour =
      spec.rate_per_hour > 0.0 ? fleet::scaled_fleet_rate(profiles, spec.rate_per_hour)
                               : fleet::scaled_fleet_rate(profiles);
  scale_flexibility(config.arrivals.mix, spec.flexible_scale);
  config.transfer_energy_per_job = util::kilowatt_hours(spec.transfer_kwh_per_job);
  config.migration.objective = *migrate::migration_objective_from_name(spec.migration_policy);
  config.migration.checkpoint.cost_scale = spec.checkpoint_cost;
  config.migration.max_in_flight = static_cast<std::size_t>(spec.max_in_flight);
  config.migration.forecaster.model = spec.forecast_model;
  config.migration.forecaster.horizon = util::hours(spec.forecast_horizon_hours);
  config.faults = fault::fault_plan_from_name(spec.faults)->scaled(spec.fault_intensity);

  const core::PolicyKind policy = spec.scheduler;
  const core::ForecastControls forecast{spec.forecast_model,
                                        util::hours(spec.forecast_horizon_hours)};
  return std::make_unique<fleet::FleetCoordinator>(
      config, std::move(profiles),
      fleet::make_router(spec.router, spec.forecast_model, forecast.horizon),
      [policy, forecast] { return core::make_scheduler(policy, forecast); });
}

core::RunSummary run_scenario(const ScenarioSpec& spec, std::uint64_t seed) {
  if (spec.mode == Mode::kSingleSite) {
    const std::unique_ptr<core::Datacenter> dc = make_single_site(spec, seed);
    dc->run_until(spec.window_start());  // warm-up
    dc->run_until(spec.window_end());
    return dc->summary();
  }
  const std::unique_ptr<fleet::FleetCoordinator> fleet = make_fleet(spec, seed);
  fleet->run_until(spec.window_start());
  fleet->run_until(spec.window_end());
  // Checkpoints still on the pipe when the window shuts would strand their
  // lineage's banked progress; drain them so delivered work is conserved
  // (no-op whenever migration is off).
  fleet->drain_migrations();
  const telemetry::FleetRunSummary summary = fleet->summary();
  core::RunSummary total = summary.total;
  total.grid_totals = summary.footprint();  // transfer penalty is never free
  return total;
}

const std::vector<ScenarioSpec>& scenario_library() {
  static const std::vector<ScenarioSpec> library = [] {
    std::vector<ScenarioSpec> specs;

    ScenarioSpec reference;
    reference.name = "reference";
    reference.months = 3;
    specs.push_back(reference);

    ScenarioSpec carbon_sched;
    carbon_sched.name = "carbon_sched";
    carbon_sched.scheduler = core::PolicyKind::kCarbonAware;
    carbon_sched.start = {2021, 4};
    carbon_sched.months = 3;
    carbon_sched.rate_per_hour = 9.0;  // headroom so time-shifting can act
    specs.push_back(carbon_sched);

    ScenarioSpec powercap;
    powercap.name = "powercap200";
    powercap.start = {2021, 7};
    powercap.power_cap_w = 200.0;
    specs.push_back(powercap);

    ScenarioSpec fleet_rr;
    fleet_rr.name = "fleet_rr";
    fleet_rr.mode = Mode::kFleet;
    fleet_rr.router = "round_robin";
    fleet_rr.months = 2;
    specs.push_back(fleet_rr);

    ScenarioSpec fleet_carbon = fleet_rr;
    fleet_carbon.name = "fleet_carbon";
    fleet_carbon.router = "carbon_greedy";
    specs.push_back(fleet_carbon);

    ScenarioSpec forecast_sched = carbon_sched;
    forecast_sched.name = "forecast_sched";
    forecast_sched.scheduler = core::PolicyKind::kForecastCarbon;
    specs.push_back(forecast_sched);

    ScenarioSpec fleet_forecast = fleet_rr;
    fleet_forecast.name = "fleet_forecast";
    fleet_forecast.router = "carbon_forecast";
    specs.push_back(fleet_forecast);

    // Mid-run relocation on top of the strongest admission router: hot
    // summer fleet so jobs routinely start on a dirty grid and have hours of
    // runtime left when cleaner capacity frees up.
    ScenarioSpec migration;
    migration.name = "migration";
    migration.mode = Mode::kFleet;
    migration.router = "carbon_forecast";
    migration.migration_policy = "carbon";
    migration.start = {2021, 7};
    migration.rate_per_hour = 14.0;
    migration.months = 2;
    specs.push_back(migration);

    ScenarioSpec fleet_quick;
    fleet_quick.name = "fleet_quick";
    fleet_quick.mode = Mode::kFleet;
    fleet_quick.region_count = 3;
    fleet_quick.days = 14;
    fleet_quick.warmup_days = 2;
    specs.push_back(fleet_quick);

    for (const ScenarioSpec& spec : specs) spec.validate();
    return specs;
  }();
  return library;
}

const ScenarioSpec* find_scenario(const std::string& name) {
  for (const ScenarioSpec& spec : scenario_library()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::string scenario_names() {
  std::string out;
  for (const ScenarioSpec& spec : scenario_library()) {
    if (!out.empty()) out += " | ";
    out += spec.name;
  }
  return out;
}

std::vector<ScenarioSpec> expand_grid(const ScenarioSpec& base, const GridAxes& axes) {
  // Axes the base mode never reads would expand into identical points with
  // identical labels — reject them instead of silently multiplying the grid.
  if (base.mode == Mode::kSingleSite) {
    require(axes.routers.empty() && axes.region_counts.empty() && axes.transfer_kwh.empty() &&
                axes.migration_policies.empty(),
            "expand_grid: router/region/transfer/migration axes need a fleet-mode base");
  } else {
    require(axes.power_caps_w.empty(), "expand_grid: power-cap axis needs a single-site base");
  }
  // Empty axes pin the base value; the expansion is the cartesian product of
  // the rest. Axis order fixes point order (outermost = scheduler).
  const std::vector<core::PolicyKind> schedulers =
      axes.schedulers.empty() ? std::vector<core::PolicyKind>{base.scheduler} : axes.schedulers;
  const std::vector<std::string> routers =
      axes.routers.empty() ? std::vector<std::string>{base.router} : axes.routers;
  const std::vector<std::size_t> region_counts =
      axes.region_counts.empty() ? std::vector<std::size_t>{base.region_count}
                                 : axes.region_counts;
  std::vector<std::optional<double>> caps;
  if (axes.power_caps_w.empty()) {
    caps.push_back(base.power_cap_w);
  } else {
    for (double w : axes.power_caps_w) caps.emplace_back(w);
  }
  const std::vector<double> transfers =
      axes.transfer_kwh.empty() ? std::vector<double>{base.transfer_kwh_per_job}
                                : axes.transfer_kwh;
  const std::vector<std::string> migrations =
      axes.migration_policies.empty() ? std::vector<std::string>{base.migration_policy}
                                      : axes.migration_policies;

  std::vector<ScenarioSpec> points;
  for (const core::PolicyKind scheduler : schedulers) {
    for (const std::string& router : routers) {
      for (const std::size_t regions : region_counts) {
        for (const std::optional<double>& cap : caps) {
          for (const double transfer : transfers) {
            for (const std::string& migration : migrations) {
              ScenarioSpec point = base;
              point.scheduler = scheduler;
              point.router = router;
              point.region_count = regions;
              point.power_cap_w = cap;
              point.transfer_kwh_per_job = transfer;
              point.migration_policy = migration;
              point.validate();
              points.push_back(std::move(point));
            }
          }
        }
      }
    }
  }
  return points;
}

const std::vector<SweepSpec>& sweep_library() {
  static const std::vector<SweepSpec> library = [] {
    std::vector<SweepSpec> sweeps;

    {
      ScenarioSpec base;
      base.name = "scheduler";
      base.start = {2021, 4};
      base.rate_per_hour = 9.0;
      GridAxes axes;
      axes.schedulers = {core::PolicyKind::kFcfs, core::PolicyKind::kBackfill,
                         core::PolicyKind::kCarbonAware, core::PolicyKind::kPowerAware,
                         core::PolicyKind::kForecastCarbon};
      sweeps.push_back({"scheduler", "single-site scheduling policies (Apr 2021)",
                       expand_grid(base, axes)});
    }
    {
      ScenarioSpec base;
      base.name = "router";
      base.mode = Mode::kFleet;
      GridAxes axes;
      axes.routers = {"round_robin", "least_loaded", "cost_greedy", "carbon_greedy",
                      "cost_forecast", "carbon_forecast"};
      sweeps.push_back({"router", "fleet routing policies, 4 regions (Jan 2021)",
                       expand_grid(base, axes)});
    }
    {
      // The reactive-vs-predictive scheduling comparison: the same window and
      // load, instantaneous-signal deferral vs forecast-planned deferral.
      ScenarioSpec base;
      base.name = "forecast_sched";
      base.start = {2021, 4};
      base.rate_per_hour = 9.0;
      GridAxes axes;
      axes.schedulers = {core::PolicyKind::kCarbonAware, core::PolicyKind::kForecastCarbon};
      sweeps.push_back({"forecast_sched",
                       "reactive vs forecast-driven carbon scheduling (Apr 2021)",
                       expand_grid(base, axes)});
    }
    {
      // Same question in space: instantaneous greedy routing vs routing on
      // the forecast integrated over each job's expected runtime. Run hot
      // (reference-site pressure on every region) — the forecast's spatial
      // edge lives in backlog placement, which light load never exercises.
      ScenarioSpec base;
      base.name = "forecast_router";
      base.mode = Mode::kFleet;
      base.start = {2021, 7};
      base.rate_per_hour = 16.0;
      GridAxes axes;
      axes.routers = {"carbon_greedy", "carbon_forecast", "cost_greedy", "cost_forecast"};
      sweeps.push_back({"forecast_router",
                       "reactive vs forecast-integrated fleet routing, hot fleet (Jul 2021)",
                       expand_grid(base, axes)});
    }
    {
      // Admission-only vs mid-run relocation, on the same hot-summer window
      // the migration scenario uses: does following the wind after placement
      // still pay once checkpoints cost real energy?
      ScenarioSpec base;
      base.name = "migration";
      base.mode = Mode::kFleet;
      base.router = "carbon_forecast";
      base.start = {2021, 7};
      base.rate_per_hour = 14.0;
      GridAxes axes;
      axes.migration_policies = {"off", "carbon", "cost"};
      sweeps.push_back({"migration",
                       "admission-only vs mid-run checkpoint migration, hot fleet (Jul 2021)",
                       expand_grid(base, axes)});
    }
    {
      ScenarioSpec base;
      base.name = "regions";
      base.mode = Mode::kFleet;
      GridAxes axes;
      axes.region_counts = {1, 2, 3, 4};
      sweeps.push_back({"regions", "carbon_greedy fleet vs region count (Jan 2021)",
                       expand_grid(base, axes)});
    }
    {
      ScenarioSpec base;
      base.name = "powercap";
      base.start = {2021, 7};
      GridAxes axes;
      axes.power_caps_w = {250.0, 225.0, 200.0, 175.0, 150.0};
      sweeps.push_back({"powercap", "fixed cluster-wide GPU power caps (Jul 2021)",
                       expand_grid(base, axes)});
    }
    {
      ScenarioSpec base;
      base.name = "transfer";
      base.mode = Mode::kFleet;
      GridAxes axes;
      axes.transfer_kwh = {0.0, 5.0, 25.0, 100.0};
      sweeps.push_back({"transfer",
                       "carbon_greedy fleet vs network-transfer penalty (Jan 2021)",
                       expand_grid(base, axes)});
    }
    return sweeps;
  }();
  return library;
}

const SweepSpec* find_sweep(const std::string& name) {
  for (const SweepSpec& sweep : sweep_library()) {
    if (sweep.name == name) return &sweep;
  }
  return nullptr;
}

std::string sweep_names() {
  std::string out;
  for (const SweepSpec& sweep : sweep_library()) {
    if (!out.empty()) out += " | ";
    out += sweep.name;
  }
  return out;
}

}  // namespace greenhpc::experiment
