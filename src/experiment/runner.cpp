#include "experiment/runner.hpp"

#include "util/rng.hpp"

namespace greenhpc::experiment {

std::uint64_t replica_seed(std::uint64_t base_seed, std::size_t replica) {
  // Two SplitMix64 steps decorrelate adjacent replicas even for adjacent
  // base seeds (a single step would leave k and k+1 one increment apart).
  util::SplitMix64 sm(base_seed ^ (0x9E3779B97F4A7C15ULL * (replica + 1)));
  sm.next();
  return sm.next();
}

ReplicaRunner::ReplicaRunner(RunnerOptions options)
    : options_(options),
      pool_(options.jobs > 0 ? std::make_unique<util::ThreadPool>(options.jobs) : nullptr) {}

std::vector<ReplicaResult> ReplicaRunner::run(const ScenarioSpec& spec) const {
  return run(spec, pool_ ? *pool_ : util::shared_pool());
}

std::vector<ReplicaResult> ReplicaRunner::run(const ScenarioSpec& spec,
                                              util::ThreadPool& pool) const {
  spec.validate();
  std::vector<ReplicaResult> results(options_.replicas);
  util::parallel_for(pool, options_.replicas, [&](std::size_t k) {
    const std::uint64_t seed = replica_seed(options_.base_seed, k);
    results[k] = ReplicaResult{k, seed, run_scenario(spec, seed)};
  });
  return results;
}

}  // namespace greenhpc::experiment
