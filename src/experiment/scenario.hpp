#pragma once
// ScenarioSpec: one fully-specified simulation an experiment replica runs.
//
// Every bench in this repo used to hand-assemble its twin (window, scheduler,
// cap, fleet, router) inline, which made multi-seed replication ad hoc. A
// ScenarioSpec names that assembly once: the named library covers the
// standard configurations, and parameter grids (expand_grid / the sweep
// library) enumerate the paper's control axes — scheduler, router, region
// count, power cap, network-transfer penalty — as first-class experiment
// points. run_scenario(spec, seed) is the single entry every replica, bench,
// and CLI surface shares, so "same spec + same seed = same bits" holds
// everywhere by construction.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/datacenter.hpp"
#include "core/optimization.hpp"
#include "fleet/coordinator.hpp"

namespace greenhpc::sched {
class ForecastCarbonScheduler;
}

namespace greenhpc::experiment {

enum class Mode : std::uint8_t { kSingleSite = 0, kFleet };

struct ScenarioSpec {
  std::string name = "reference";
  Mode mode = Mode::kSingleSite;

  // --- window ---------------------------------------------------------------
  util::MonthKey start{2021, 1};
  int months = 1;       ///< whole simulated months (ignored when days > 0)
  int days = 0;         ///< >0: run this many days from the 1st of `start`
  int warmup_days = 7;  ///< spin-up before the measured window

  // --- workload -------------------------------------------------------------
  /// Submissions per hour; <= 0 selects the mode default (12 for a single
  /// site, capacity-scaled fleet pressure for a fleet).
  double rate_per_hour = 0.0;
  /// Multiplier on every class's flexible_probability (the carbon-aware
  /// ablation's knob; 1.0 = the default mix).
  double flexible_scale = 1.0;

  // --- single-site controls -------------------------------------------------
  core::PolicyKind scheduler = core::PolicyKind::kBackfill;
  std::optional<double> power_cap_w;   ///< fixed cluster-wide GPU cap
  std::optional<double> battery_kwh;   ///< attach threshold-arbitrage storage

  // --- fleet controls -------------------------------------------------------
  std::string router = "carbon_greedy";
  /// Fleet size (1..512). The first four regions are the exact reference
  /// profiles; beyond four the fleet pads with deterministic synthetic
  /// variants (fleet::make_synthetic_fleet).
  std::size_t region_count = 4;
  double transfer_kwh_per_job = 0.0;
  /// Region-parallel stepping width (FleetConfig::step_jobs): 0 = auto,
  /// 1 = serial. Bit-identical output at any value — a wall-clock knob only.
  std::size_t step_jobs = 0;

  // --- migration controls (fleet mode only) ---------------------------------
  /// Mid-run checkpoint-and-migrate policy: off | carbon | cost.
  std::string migration_policy = "off";
  /// Multiplier on the checkpoint size (and thus every snapshot/ship/restore
  /// time and energy cost); 1.0 = the reference 12 GB/GPU model.
  double checkpoint_cost = 1.0;
  /// Transfer-pipe width (MigrationConfig::max_in_flight): how many
  /// checkpoints may be in flight (including ones waiting out a retry
  /// backoff) at once.
  int max_in_flight = 4;

  // --- fault injection (fleet mode only) -------------------------------------
  /// fault::fault_plan_from_name name: "off" (default) or "default". The
  /// zero-fault path constructs no injector and stays bit-identical.
  std::string faults = "off";
  /// Multiplier on every fault rate/probability in the named plan (the
  /// resilience sweep's intensity axis); 1.0 = the plan as named.
  double fault_intensity = 1.0;

  // --- forecast controls (predictive scheduler/routers only) ----------------
  /// forecast::make_model name driving forecast_carbon / *_forecast policies.
  std::string forecast_model = "climatology";
  int forecast_horizon_hours = 24;

  /// Compact identity for tables: "fleet/carbon_greedy/r4" style.
  [[nodiscard]] std::string label() const;

  /// Throws std::invalid_argument on inconsistent settings (bad router name,
  /// region_count out of range, non-positive window...).
  void validate() const;

  /// The measured window on the simulation clock (warm-up excluded).
  [[nodiscard]] util::TimePoint window_start() const;
  [[nodiscard]] util::TimePoint window_end() const;
};

/// Builds the single-site twin for one replica, positioned warmup_days
/// before the measured window (caller drives run_until). Requires
/// mode == kSingleSite.
[[nodiscard]] std::unique_ptr<core::Datacenter> make_single_site(const ScenarioSpec& spec,
                                                                 std::uint64_t seed);

/// Builds the fleet for one replica (mode == kFleet), same positioning.
[[nodiscard]] std::unique_ptr<fleet::FleetCoordinator> make_fleet(const ScenarioSpec& spec,
                                                                  std::uint64_t seed);

/// The forecast-carbon scheduler driving `dc`, if any — looks through the
/// power-cap decorator make_single_site may have wrapped it in. For
/// telemetry surfaces (realized forecast-skill tables); nullptr when the
/// twin runs another policy.
[[nodiscard]] const sched::ForecastCarbonScheduler* forecast_scheduler_of(
    const core::Datacenter& dc);

/// Runs one replica end to end (warm-up then the measured window) and
/// returns its summary. Fleet mode returns the aggregate with the
/// network-transfer penalty folded into grid_totals (the fleet footprint),
/// so transfer-heavy routing is never free in experiment metrics.
[[nodiscard]] core::RunSummary run_scenario(const ScenarioSpec& spec, std::uint64_t seed);

/// Named scenarios every surface can refer to by string.
[[nodiscard]] const std::vector<ScenarioSpec>& scenario_library();
[[nodiscard]] const ScenarioSpec* find_scenario(const std::string& name);
[[nodiscard]] std::string scenario_names();

// --- parameter grids ---------------------------------------------------------

/// Axes of the paper's control space. Empty axes keep the base value; the
/// expansion is the cartesian product of the non-empty ones.
struct GridAxes {
  std::vector<core::PolicyKind> schedulers;
  std::vector<std::string> routers;             ///< fleet mode only
  std::vector<std::size_t> region_counts;       ///< fleet mode only
  std::vector<double> power_caps_w;             ///< single-site only
  std::vector<double> transfer_kwh;             ///< fleet mode only
  std::vector<std::string> migration_policies;  ///< fleet mode only
};

/// Cartesian-product expansion of `axes` applied to `base`; every point is
/// validated and labeled.
[[nodiscard]] std::vector<ScenarioSpec> expand_grid(const ScenarioSpec& base,
                                                    const GridAxes& axes);

/// A named sweep: a list of scenario points compared side by side.
struct SweepSpec {
  std::string name;
  std::string description;
  std::vector<ScenarioSpec> points;
};

/// Built-in sweeps over the five control axes (scheduler, router, regions,
/// powercap, transfer).
[[nodiscard]] const std::vector<SweepSpec>& sweep_library();
[[nodiscard]] const SweepSpec* find_sweep(const std::string& name);
[[nodiscard]] std::string sweep_names();

}  // namespace greenhpc::experiment
