#include "experiment/aggregator.hpp"

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace greenhpc::experiment {

const std::vector<Aggregator::Metric>& Aggregator::default_metrics() {
  static const std::vector<Metric> metrics = {
      {"jobs_submitted",
       [](const core::RunSummary& s) { return static_cast<double>(s.jobs_submitted); }},
      {"jobs_completed",
       [](const core::RunSummary& s) { return static_cast<double>(s.jobs_completed); }},
      {"completed_gpu_hours", [](const core::RunSummary& s) { return s.completed_gpu_hours; }},
      {"mean_utilization", [](const core::RunSummary& s) { return s.mean_utilization; }},
      {"mean_queue_wait_hours",
       [](const core::RunSummary& s) { return s.mean_queue_wait_hours; }},
      {"p95_queue_wait_hours",
       [](const core::RunSummary& s) { return s.p95_queue_wait_hours; }},
      {"mean_pue", [](const core::RunSummary& s) { return s.mean_pue; }},
      {"energy_mwh",
       [](const core::RunSummary& s) { return s.grid_totals.energy.megawatt_hours(); }},
      {"cost_usd", [](const core::RunSummary& s) { return s.grid_totals.cost.dollars(); }},
      {"co2_kg", [](const core::RunSummary& s) { return s.grid_totals.carbon.kilograms(); }},
      {"water_m3", [](const core::RunSummary& s) { return s.grid_totals.water.cubic_meters(); }},
      {"throttle_hours", [](const core::RunSummary& s) { return s.throttle_hours; }},
  };
  return metrics;
}

telemetry::MetricStats Aggregator::fold(std::string name, std::span<const double> values) {
  util::require(!values.empty(), "Aggregator::fold: empty value series");
  telemetry::MetricStats out;
  out.name = std::move(name);
  out.replicas = values.size();
  out.mean = stats::mean(values);
  out.stddev = values.size() >= 2 ? stats::stddev(values) : 0.0;
  out.ci95_half = stats::ci95_half_width(values);
  out.min = stats::min(values);
  out.max = stats::max(values);
  // Retain the raw seed-ordered series so exports can feed paired diffs.
  out.values.assign(values.begin(), values.end());
  return out;
}

std::vector<telemetry::MetricStats> Aggregator::aggregate(
    std::span<const ReplicaResult> replicas, const std::vector<Metric>& metrics) {
  util::require(!replicas.empty(), "Aggregator::aggregate: empty ensemble");
  std::vector<telemetry::MetricStats> out;
  out.reserve(metrics.size());
  std::vector<double> values(replicas.size());
  for (const Metric& metric : metrics) {
    for (std::size_t i = 0; i < replicas.size(); ++i) values[i] = metric.get(replicas[i].run);
    out.push_back(fold(metric.name, values));
  }
  return out;
}

}  // namespace greenhpc::experiment
