#pragma once
// Decision-record scratch structs: the *why* behind router and scheduler
// choices, filled by the policy at decision time and emitted into the trace
// by whoever owns the recorder (the coordinator / the datacenter).
//
// Policies receive a pointer to one of these through their context structs
// (RoutingContext::explain, SchedulerContext::explain). A null pointer —
// the always case when no recorder is attached or tracing is off — costs a
// single branch; a non-null pointer asks the policy to record what it
// compared, not just what it picked: forecast-integrated vs instantaneous
// scores per region, override-margin and skill-gate outcomes, deferral
// slack. The structs are reused scratch (cleared per decision), never
// retained by the policy.

#include <cstdint>
#include <vector>

#include "cluster/job.hpp"

namespace greenhpc::obs {

/// One candidate region's score in a routing decision.
struct RegionScore {
  std::size_t region = 0;
  /// Forecast-integrated score over the job's expected runtime (equals
  /// `instantaneous` for reactive routers).
  double integrated = 0.0;
  /// Score at the arrival tick's signals.
  double instantaneous = 0.0;
  bool fits = false;  ///< could the region start the job this step?
};

/// Filled by RoutingPolicy::route when requested.
struct RouteExplain {
  std::vector<RegionScore> scores;
  std::size_t picked = 0;
  /// The instantaneous (persistence) argmin — differs from `picked` only
  /// when the forecast overrode it.
  std::size_t instantaneous_pick = 0;
  /// The forecast pick beat the persistence pick by more than the override
  /// margin (forecast routers only).
  bool forecast_override = false;
  /// No region could start the job; it was placed by backlog pressure.
  bool fallback_pressure = false;
  const char* note = "";

  void clear() {
    scores.clear();
    picked = 0;
    instantaneous_pick = 0;
    forecast_override = false;
    fallback_pressure = false;
    note = "";
  }
};

/// One per-job scheduling decision (start or defer) with its reason.
struct SchedDecision {
  cluster::JobId job = 0;
  bool started = false;
  /// Current signal (carbon intensity for the carbon schedulers).
  double now_signal = 0.0;
  /// Greenest forecast value reachable inside the job's slack (0 if n/a).
  double best_window_signal = 0.0;
  double slack_hours = 0.0;
  bool forecast_reliable = false;
  /// "must_start" | "green_now" | "no_better_window" | "greener_window_ahead"
  /// | "reactive_hold" ...
  const char* reason = "";
};

/// Filled by Scheduler::select when requested (per step, reused).
struct SchedExplain {
  std::vector<SchedDecision> decisions;

  void clear() { decisions.clear(); }
};

}  // namespace greenhpc::obs
