#pragma once
// FlightRecorder: the single attach point for simulator-wide observability.
//
// One recorder per run owns the three instruments the PR's tentpole asks
// for — the metrics pipeline (MetricsRegistry + TimeSeriesStore), the
// decision trace (TraceWriter), and the step-phase profiler (PhaseProfiler).
// Subsystems receive a `FlightRecorder*` (nullable) and guard every touch
// with the cheap `tracing()` / `metrics_on()` predicates, so an unattached
// or disabled recorder costs one pointer/flag check on the hot path and the
// simulated output stays bit-identical (pinned by the obs tests).
//
// Timestamp policy (see trace.hpp): everything that describes simulated
// behaviour uses sim_us(t) — simulated microseconds, deterministic. Only the
// phase-profiler lane (pid TraceWriter::kProfilerPid) uses wall_us(), and
// nothing downstream of it feeds a decision.

#include <cstdint>
#include <chrono>
#include <string>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "util/calendar.hpp"

namespace greenhpc::obs {

struct FlightRecorderConfig {
  bool metrics = false;      ///< sample the registry into the time series
  bool trace = false;        ///< buffer trace events
  bool profile = false;      ///< time step-loop phases (implied by trace)
  std::size_t metrics_interval = 1;   ///< sample every Nth coordinator step
  std::size_t metrics_capacity = 4096;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config);

  [[nodiscard]] bool metrics_on() const { return config_.metrics; }
  [[nodiscard]] bool tracing() const { return config_.trace; }
  [[nodiscard]] bool profiling() const { return config_.profile || config_.trace; }

  [[nodiscard]] MetricsRegistry& registry() { return registry_; }
  [[nodiscard]] TraceWriter& trace() { return trace_; }
  [[nodiscard]] const TraceWriter& trace() const { return trace_; }
  [[nodiscard]] PhaseProfiler& profiler() { return profiler_; }
  [[nodiscard]] const PhaseProfiler& profiler() const { return profiler_; }
  [[nodiscard]] const TimeSeriesStore& series() const { return series_; }

  /// Offers one coordinator step's metrics sample (no-op when metrics off).
  void sample(util::TimePoint t);

  /// Simulated microseconds — the deterministic trace timestamp domain.
  [[nodiscard]] static double sim_us(util::TimePoint t) {
    return t.seconds_since_epoch() * 1e6;
  }
  /// Host microseconds since this recorder was constructed (profiler lane).
  [[nodiscard]] double wall_us() const;

  /// Records one finished phase scope: always into the profiler, and onto
  /// the wall-clock trace lane when tracing.
  void record_phase(Phase p, double start_wall_us, double end_wall_us);

  [[nodiscard]] std::string metrics_csv() const { return series_.to_csv(registry_); }
  [[nodiscard]] std::string metrics_jsonl() const { return series_.to_jsonl(registry_); }

 private:
  FlightRecorderConfig config_;
  MetricsRegistry registry_;
  TimeSeriesStore series_;
  TraceWriter trace_;
  PhaseProfiler profiler_;
  std::chrono::steady_clock::time_point wall_start_;
};

/// RAII scope timing one step-loop phase. Null-safe: with no recorder (or
/// profiling off) construction and destruction are a pointer check each.
class PhaseScope {
 public:
  PhaseScope(FlightRecorder* recorder, Phase phase)
      : recorder_((recorder != nullptr && recorder->profiling()) ? recorder : nullptr),
        phase_(phase) {
    if (recorder_ != nullptr) start_us_ = recorder_->wall_us();
  }
  ~PhaseScope() {
    if (recorder_ != nullptr) recorder_->record_phase(phase_, start_us_, recorder_->wall_us());
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  FlightRecorder* recorder_;
  Phase phase_;
  double start_us_ = 0.0;
};

}  // namespace greenhpc::obs
