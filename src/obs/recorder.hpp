#pragma once
// FlightRecorder: the single attach point for simulator-wide observability.
//
// One recorder per run owns the three instruments the PR's tentpole asks
// for — the metrics pipeline (MetricsRegistry + TimeSeriesStore), the
// decision trace (TraceWriter), and the step-phase profiler (PhaseProfiler).
// Subsystems receive a `FlightRecorder*` (nullable) and guard every touch
// with the cheap `tracing()` / `metrics_on()` predicates, so an unattached
// or disabled recorder costs one pointer/flag check on the hot path and the
// simulated output stays bit-identical (pinned by the obs tests).
//
// Timestamp policy (see trace.hpp): everything that describes simulated
// behaviour uses sim_us(t) — simulated microseconds, deterministic. Only the
// phase-profiler lane (pid TraceWriter::kProfilerPid) uses wall_us(), and
// nothing downstream of it feeds a decision.

#include <cstdint>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "util/calendar.hpp"

namespace greenhpc::obs {

/// How much of the per-step scheduler rationale lands in the trace.
///   kFull     every queued job's sched.decision instant, every step (the
///             pre-PR-7 behaviour; ~63% of flagship trace events).
///   kChanges  a job's deferral instant is re-emitted only when its reason
///             changes (starts always emit) — month-scale traces shrink an
///             order of magnitude with no information loss.
enum class TraceDetail : std::uint8_t { kFull, kChanges };

struct FlightRecorderConfig {
  bool metrics = false;      ///< sample the registry into the time series
  bool trace = false;        ///< buffer trace events
  bool profile = false;      ///< time step-loop phases (implied by trace)
  bool attribution = false;  ///< per-job energy/CO2/cost attribution ledger
  std::size_t metrics_interval = 1;   ///< sample every Nth coordinator step
  std::size_t metrics_capacity = 4096;
  TraceDetail trace_detail = TraceDetail::kChanges;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config);

  [[nodiscard]] bool metrics_on() const { return config_.metrics; }
  [[nodiscard]] bool tracing() const { return config_.trace; }
  [[nodiscard]] bool attribution_on() const { return attribution_ != nullptr; }
  [[nodiscard]] bool profiling() const { return config_.profile || config_.trace; }
  [[nodiscard]] TraceDetail trace_detail() const { return config_.trace_detail; }

  [[nodiscard]] MetricsRegistry& registry() { return registry_; }
  [[nodiscard]] TraceWriter& trace() { return trace_; }
  [[nodiscard]] const TraceWriter& trace() const { return trace_; }
  [[nodiscard]] PhaseProfiler& profiler() { return profiler_; }
  [[nodiscard]] const PhaseProfiler& profiler() const { return profiler_; }
  [[nodiscard]] const TimeSeriesStore& series() const { return series_; }

  /// Offers one coordinator step's metrics sample (no-op when metrics off).
  void sample(util::TimePoint t);

  /// Simulated microseconds — the deterministic trace timestamp domain.
  [[nodiscard]] static double sim_us(util::TimePoint t) {
    return t.seconds_since_epoch() * 1e6;
  }
  /// Host microseconds since this recorder was constructed (profiler lane).
  [[nodiscard]] double wall_us() const;

  /// Records one finished phase scope: always into the profiler, and onto
  /// the wall-clock trace lane when tracing. `sink` overrides which writer
  /// receives the trace event (a region shard during parallel stepping);
  /// null means the main trace.
  void record_phase(Phase p, double start_wall_us, double end_wall_us,
                    TraceWriter* sink = nullptr);

  /// Allocates `count` per-region trace shards (idempotent; grows only).
  /// Sharding is enabled in serial AND parallel fleet runs, so the merged
  /// event stream — shards drained in region-index order at each step
  /// barrier — is byte-identical across stepping modes.
  void enable_trace_shards(std::size_t count);
  /// The shard writer for `region`, or the main trace when shards are not
  /// enabled (single-site runs) or the index is out of range.
  [[nodiscard]] TraceWriter& region_trace(std::size_t region);
  /// Drains every shard into the main trace in region-index order.
  void merge_trace_shards();
  [[nodiscard]] bool trace_shards_enabled() const { return !trace_shards_.empty(); }

  /// The attribution ledger (only when config.attribution; see
  /// obs/attribution.hpp for the threading contract). Consumers must check
  /// attribution_on() first — like every other instrument, a detached or
  /// attribution-less recorder costs subsystems one pointer/flag check.
  [[nodiscard]] AttributionLedger& attribution() { return *attribution_; }
  [[nodiscard]] const AttributionLedger& attribution() const { return *attribution_; }

  [[nodiscard]] std::string metrics_csv() const { return series_.to_csv(registry_); }
  [[nodiscard]] std::string metrics_jsonl() const { return series_.to_jsonl(registry_); }

 private:
  FlightRecorderConfig config_;
  MetricsRegistry registry_;
  TimeSeriesStore series_;
  TraceWriter trace_;
  std::vector<std::unique_ptr<TraceWriter>> trace_shards_;
  std::unique_ptr<AttributionLedger> attribution_;  ///< null unless configured
  PhaseProfiler profiler_;
  std::chrono::steady_clock::time_point wall_start_;  // det_lint: allow(wall-clock)
};

/// RAII scope timing one step-loop phase. Null-safe: with no recorder (or
/// profiling off) construction and destruction are a pointer check each.
class PhaseScope {
 public:
  /// `sink` routes the phase's trace event to a specific writer (a region
  /// shard during parallel stepping); null keeps the main trace.
  PhaseScope(FlightRecorder* recorder, Phase phase, TraceWriter* sink = nullptr)
      : recorder_((recorder != nullptr && recorder->profiling()) ? recorder : nullptr),
        sink_(sink),
        phase_(phase) {
    if (recorder_ != nullptr) start_us_ = recorder_->wall_us();
  }
  ~PhaseScope() {
    if (recorder_ != nullptr) {
      recorder_->record_phase(phase_, start_us_, recorder_->wall_us(), sink_);
    }
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  FlightRecorder* recorder_;
  TraceWriter* sink_;
  Phase phase_;
  double start_us_ = 0.0;
};

}  // namespace greenhpc::obs
