#include "obs/attribution.hpp"

#include <algorithm>
#include <sstream>

#include "obs/manifest.hpp"

namespace greenhpc::obs {

namespace {

std::string num(double v) {
  std::ostringstream os;
  os.precision(17);  // round-trip exact: artifacts feed byte-equality pins
  os << v;
  return os.str();
}

void append_ledger_fields(std::ostringstream& os, const std::string& prefix,
                          const grid::EnergyLedger& l) {
  os << "\"" << prefix << "energy_j\": " << num(l.energy.joules()) << ", \"" << prefix
     << "cost_usd\": " << num(l.cost.dollars()) << ", \"" << prefix
     << "co2_kg\": " << num(l.carbon.kilograms()) << ", \"" << prefix
     << "water_l\": " << num(l.water.liters());
}

void append_ledger_csv(std::ostringstream& os, const grid::EnergyLedger& l) {
  os << num(l.energy.joules()) << "," << num(l.cost.dollars()) << ","
     << num(l.carbon.kilograms()) << "," << num(l.water.liters());
}

}  // namespace

// --- RegionAttributionSink ---------------------------------------------------

void RegionAttributionSink::begin_step() {
  step_slots_.clear();
  step_direct_ = grid::EnergyLedger{};
}

void RegionAttributionSink::charge(const cluster::Job& job, util::Energy it_energy, double pue,
                                   util::EnergyPrice price, util::CarbonIntensity intensity,
                                   double water_l, double gpu_hours) {
  const cluster::JobId id = job.id();
  if (id >= slot_by_id_.size()) {
    slot_by_id_.resize(std::max<std::size_t>(id + 1, slot_by_id_.size() * 2), 0);
  }
  std::uint32_t slot = slot_by_id_[id];
  if (slot == 0) {
    records_.emplace_back();
    slot = static_cast<std::uint32_t>(records_.size());
    slot_by_id_[id] = slot;
    AttributionRecord& fresh = records_.back();
    fresh.key = attribution_key(region_, id);
    fresh.user = job.request().user;
    fresh.job_class = job.request().job_class;
  }
  AttributionRecord& rec = records_[slot - 1];
  // The exact accountant arithmetic, so the per-region direct totals equal
  // the accountants' totals bit-for-bit (same products, same addition order).
  const util::Energy facility = it_energy * pue;
  const util::Money cost = facility * price;
  const util::MassCo2 carbon = facility * intensity;
  const util::WaterVolume water = util::liters(water_l);
  rec.it_energy += it_energy;
  rec.direct.energy += facility;
  rec.direct.cost += cost;
  rec.direct.carbon += carbon;
  rec.direct.water += water;
  rec.gpu_hours += gpu_hours;
  direct_total_.energy += facility;
  direct_total_.cost += cost;
  direct_total_.carbon += carbon;
  direct_total_.water += water;
  step_direct_.energy += facility;
  step_direct_.cost += cost;
  step_direct_.carbon += carbon;
  step_direct_.water += water;
  step_slots_.emplace_back(slot - 1, facility.joules());
}

void RegionAttributionSink::settle_step(const grid::EnergyLedger& draw) {
  grid::EnergyLedger residual;
  residual.energy = draw.energy - step_direct_.energy;
  residual.cost = draw.cost - step_direct_.cost;
  residual.carbon = draw.carbon - step_direct_.carbon;
  residual.water = draw.water - step_direct_.water;
  const double total_j = step_direct_.energy.joules();
  if (step_slots_.empty() || total_j <= 0.0) {
    unattributed_ += residual;
  } else {
    for (const auto& [slot, facility_j] : step_slots_) {
      const double share = facility_j / total_j;
      AttributionRecord& rec = records_[slot];
      const util::Energy e = residual.energy * share;
      const util::Money c = residual.cost * share;
      const util::MassCo2 co2 = residual.carbon * share;
      const util::WaterVolume w = residual.water * share;
      rec.amortized.energy += e;
      rec.amortized.cost += c;
      rec.amortized.carbon += co2;
      rec.amortized.water += w;
      amortized_total_.energy += e;
      amortized_total_.cost += c;
      amortized_total_.carbon += co2;
      amortized_total_.water += w;
    }
  }
  step_slots_.clear();
  step_direct_ = grid::EnergyLedger{};
}

// --- AttributionLedger -------------------------------------------------------

void AttributionLedger::ensure_sinks(std::size_t count) {
  while (sinks_.size() < count) {
    sinks_.push_back(std::make_unique<RegionAttributionSink>(sinks_.size()));
    overhead_by_region_.emplace_back();
  }
}

std::uint64_t AttributionLedger::resolve(std::uint64_t key) const {
  const auto it = alias_.find(key);
  return it == alias_.end() ? key : it->second;
}

void AttributionLedger::bill(std::uint64_t key, std::size_t region, cluster::UserId user,
                             const grid::EnergyLedger& increment, int migration_delta) {
  // A zero increment with nothing to count (e.g. admission transfers when
  // transfer_energy_per_job is zero) would only mint empty report rows.
  if (migration_delta == 0 && increment.energy.joules() == 0.0 &&
      increment.cost.dollars() == 0.0 && increment.carbon.kilograms() == 0.0 &&
      increment.water.liters() == 0.0) {
    return;
  }
  if (region >= overhead_by_region_.size()) ensure_sinks(region + 1);
  OverheadEntry& entry = overhead_[key];
  entry.user = user;
  entry.migrations += migration_delta;
  entry.ledger += increment;
  overhead_by_region_[region] += increment;
  overhead_total_ += increment;
}

void AttributionLedger::bill_admission(std::uint64_t key, std::size_t region,
                                       cluster::UserId user,
                                       const grid::EnergyLedger& increment) {
  bill(key, region, user, increment, 0);
}

void AttributionLedger::bill_snapshot(std::uint64_t root, std::size_t region,
                                      cluster::UserId user,
                                      const grid::EnergyLedger& increment) {
  bill(root, region, user, increment, 1);
}

void AttributionLedger::bill_delivery(std::uint64_t root, std::size_t region,
                                      cluster::UserId user,
                                      const grid::EnergyLedger& increment) {
  bill(root, region, user, increment, 0);
}

AttributionReport AttributionLedger::report() const {
  AttributionReport out;
  std::map<std::uint64_t, AttributionJobRow> rows;
  for (const auto& sink : sinks_) {
    AttributionRegionRow region_row;
    region_row.region = sink->region();
    region_row.direct = sink->direct_total();
    region_row.amortized = sink->amortized_total();
    region_row.unattributed = sink->unattributed();
    region_row.overhead = overhead_by_region_[sink->region()];
    out.regions.push_back(region_row);
    for (const AttributionRecord& rec : sink->records()) {
      const std::uint64_t root = resolve(rec.key);
      AttributionJobRow& row = rows[root];
      if (row.segments == 0) {
        row.key = root;
        row.region = static_cast<std::size_t>(root >> 40);
        row.user = rec.user;
        row.job_class = rec.job_class;
      }
      ++row.segments;
      row.it_energy += rec.it_energy;
      row.direct += rec.direct;
      row.amortized += rec.amortized;
      row.gpu_hours += rec.gpu_hours;
    }
  }
  for (const auto& [root, entry] : overhead_) {
    AttributionJobRow& row = rows[root];
    if (row.segments == 0) {
      // Billed but never charged at any site (e.g. still queued at run end,
      // or a checkpoint still on the pipe).
      row.key = root;
      row.region = static_cast<std::size_t>(root >> 40);
      row.user = entry.user;
    }
    row.migrations += entry.migrations;
    row.overhead += entry.ledger;
  }
  out.jobs.reserve(rows.size());
  std::map<cluster::UserId, AttributionUserRow> users;
  for (const auto& [key, row] : rows) {
    out.jobs.push_back(row);
    AttributionUserRow& u = users[row.user];
    u.user = row.user;
    ++u.jobs;
    u.gpu_hours += row.gpu_hours;
    u.direct += row.direct;
    u.overhead += row.overhead;
    u.amortized += row.amortized;
  }
  out.users.reserve(users.size());
  for (const auto& [id, u] : users) out.users.push_back(u);
  for (const AttributionRegionRow& r : out.regions) {
    out.direct_total += r.direct;
    out.overhead_total += r.overhead;
    out.amortized_total += r.amortized;
    out.unattributed_total += r.unattributed;
  }
  return out;
}

// --- exports -----------------------------------------------------------------

std::string attribution_csv(const AttributionReport& report, const RunManifest* manifest) {
  std::ostringstream os;
  if (manifest != nullptr) os << "# manifest: " << manifest->to_json() << "\n";
  os << "key,region,user,job_class,segments,migrations,it_energy_j,gpu_hours,"
        "direct_energy_j,direct_cost_usd,direct_co2_kg,direct_water_l,"
        "overhead_energy_j,overhead_cost_usd,overhead_co2_kg,overhead_water_l,"
        "amortized_energy_j,amortized_cost_usd,amortized_co2_kg,amortized_water_l\n";
  for (const AttributionJobRow& row : report.jobs) {
    os << row.key << "," << row.region << "," << row.user << ","
       << static_cast<int>(row.job_class) << "," << row.segments << "," << row.migrations
       << "," << num(row.it_energy.joules()) << "," << num(row.gpu_hours) << ",";
    append_ledger_csv(os, row.direct);
    os << ",";
    append_ledger_csv(os, row.overhead);
    os << ",";
    append_ledger_csv(os, row.amortized);
    os << "\n";
  }
  return os.str();
}

std::string attribution_json(const AttributionReport& report,
                             const AttributionReference& reference,
                             const RunManifest* manifest, std::size_t top_jobs) {
  std::ostringstream os;
  if (manifest != nullptr) os << "{\"manifest\": " << manifest->to_json() << "}\n";
  const std::size_t top = std::min(top_jobs, report.jobs.size());
  os << "{\"kind\": \"attribution\", \"schema_version\": " << kSchemaVersion
     << ", \"lineages\": " << report.jobs.size() << ", \"users\": " << report.users.size()
     << ", \"regions\": " << report.regions.size() << ", \"top_jobs\": " << top << "}\n";

  const auto reference_line = [&os](const char* name, const grid::EnergyLedger& l) {
    os << "{\"reference\": \"" << name << "\", ";
    append_ledger_fields(os, "", l);
    os << "}\n";
  };
  reference_line("accountant", reference.accountant);
  reference_line("transfer", reference.transfer);
  reference_line("grid", reference.grid);

  const auto total_line = [&os](const char* name, const grid::EnergyLedger& l) {
    os << "{\"total\": \"" << name << "\", ";
    append_ledger_fields(os, "", l);
    os << "}\n";
  };
  total_line("direct", report.direct_total);
  total_line("overhead", report.overhead_total);
  total_line("amortized", report.amortized_total);
  total_line("unattributed", report.unattributed_total);

  for (const AttributionUserRow& u : report.users) {
    os << "{\"user\": " << u.user << ", \"jobs\": " << u.jobs
       << ", \"gpu_hours\": " << num(u.gpu_hours) << ", ";
    append_ledger_fields(os, "direct_", u.direct);
    os << ", ";
    append_ledger_fields(os, "overhead_", u.overhead);
    os << ", ";
    append_ledger_fields(os, "amortized_", u.amortized);
    os << "}\n";
  }
  for (const AttributionRegionRow& r : report.regions) {
    os << "{\"region\": " << r.region << ", ";
    append_ledger_fields(os, "direct_", r.direct);
    os << ", ";
    append_ledger_fields(os, "overhead_", r.overhead);
    os << ", ";
    append_ledger_fields(os, "amortized_", r.amortized);
    os << ", ";
    append_ledger_fields(os, "unattributed_", r.unattributed);
    os << "}\n";
  }

  // Top lineages by attributed (direct + overhead) energy; key breaks ties
  // so the selection is total-ordered. The full table lives in the CSV
  // export — this is a preview, sized by the `top_jobs` header field.
  std::vector<const AttributionJobRow*> ranked;
  ranked.reserve(report.jobs.size());
  for (const AttributionJobRow& row : report.jobs) ranked.push_back(&row);
  std::sort(ranked.begin(), ranked.end(),
            [](const AttributionJobRow* a, const AttributionJobRow* b) {
              const double ea = a->direct.energy.joules() + a->overhead.energy.joules();
              const double eb = b->direct.energy.joules() + b->overhead.energy.joules();
              if (ea != eb) return ea > eb;
              return a->key < b->key;
            });
  for (std::size_t i = 0; i < top; ++i) {
    const AttributionJobRow& row = *ranked[i];
    os << "{\"job\": " << row.key << ", \"region\": " << row.region
       << ", \"user\": " << row.user << ", \"segments\": " << row.segments
       << ", \"migrations\": " << row.migrations << ", \"gpu_hours\": " << num(row.gpu_hours)
       << ", ";
    append_ledger_fields(os, "direct_", row.direct);
    os << ", ";
    append_ledger_fields(os, "overhead_", row.overhead);
    os << ", ";
    append_ledger_fields(os, "amortized_", row.amortized);
    os << "}\n";
  }
  return os.str();
}

}  // namespace greenhpc::obs
