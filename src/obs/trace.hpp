#pragma once
// Chrome trace-event writer: the qualitative half of the flight recorder.
//
// Decision traces and lifecycle spans are emitted in the Chrome trace-event
// format so a run opens directly in Perfetto (ui.perfetto.dev) or
// chrome://tracing — no custom viewer to maintain. The writer buffers typed
// events in memory (the simulator is single-threaded per run and events are
// appended in simulation order) and serializes them as a JSON array with one
// event object per line: line-oriented enough for `tools/trace_report` and
// grep, and strictly valid JSON for the standard viewers.
//
// Two timestamp domains share one file, kept apart by process id:
//   pid 0..N   simulation-time lanes (ts = simulated microseconds): job
//              lifecycle spans, router/scheduler/migration decision records.
//              Deterministic — two same-seed runs emit identical events.
//   kProfilerPid  wall-clock lane (ts = host microseconds since recording
//              started): the step-loop phase profile. Never feeds decisions,
//              so its nondeterminism cannot leak into simulated state.
//
// Event vocabulary used here (Chrome "ph" values): "X" complete spans,
// "i" instants, "b"/"e" async span begin/end (tolerate overlapping spans —
// the job-lifecycle and migration-pipeline tracks), "M" metadata (process
// and thread names).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace greenhpc::obs {

/// One event argument: a key with either a numeric or a string value.
struct TraceArg {
  std::string key;
  std::string str;
  double num = 0.0;
  bool is_num = false;
};

[[nodiscard]] inline TraceArg arg(std::string key, double value) {
  return {std::move(key), {}, value, true};
}
[[nodiscard]] inline TraceArg arg(std::string key, std::string value) {
  return {std::move(key), std::move(value), 0.0, false};
}

class TraceWriter {
 public:
  /// The wall-clock profiler lane (see header comment).
  static constexpr int kProfilerPid = 99;

  using Args = std::vector<TraceArg>;

  /// Complete span ("X"): [ts_us, ts_us + dur_us] on one pid/tid lane.
  void complete(std::string name, std::string cat, int pid, int tid, double ts_us,
                double dur_us, Args args = {});
  /// Instant event ("i", thread scope).
  void instant(std::string name, std::string cat, int pid, int tid, double ts_us,
               Args args = {});
  /// Async span begin/end ("b"/"e"): spans that may overlap on one lane,
  /// matched by (cat, id). Nested pairs with the same (cat, id) render as
  /// nested slices in Perfetto.
  void async_begin(std::string name, std::string cat, int pid, std::uint64_t id, double ts_us,
                   Args args = {});
  void async_end(std::string name, std::string cat, int pid, std::uint64_t id, double ts_us,
                 Args args = {});
  /// Metadata: human names for the pid/tid lanes.
  void process_name(int pid, std::string name);
  void thread_name(int pid, int tid, std::string name);

  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Moves every buffered event onto the end of `dst`'s buffer and clears
  /// this writer. The region-parallel merge: each pool worker appends to its
  /// own shard writer race-free, then the coordinator drains the shards into
  /// the main trace in region-index order at the step barrier, so the merged
  /// event stream is identical to a serial run's.
  void drain_into(TraceWriter& dst);

  /// Serializes every buffered event: a JSON array, one event per line.
  void write(std::ostream& out) const;

 private:
  struct Event {
    char ph = 'i';
    std::string name;
    std::string cat;
    int pid = 0;
    int tid = 0;
    std::uint64_t id = 0;
    bool has_id = false;
    double ts_us = 0.0;
    double dur_us = 0.0;
    Args args;
  };

  std::vector<Event> events_;
};

/// Escapes a string for embedding in a JSON string literal.
[[nodiscard]] std::string json_escape(const std::string& raw);

}  // namespace greenhpc::obs
