#include "obs/trace_report.hpp"

#include <cctype>
#include <cstdlib>
#include <istream>
#include <sstream>
#include <unordered_map>

namespace greenhpc::obs {

namespace {

/// Minimal scanner over one JSON object line. Understands strings, numbers,
/// null/true/false, and skips nested objects/arrays; enough for the flat
/// events TraceWriter emits.
class LineScanner {
 public:
  explicit LineScanner(const std::string& line) : s_(line) {}

  [[nodiscard]] bool failed() const { return failed_; }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool at(char c) {
    skip_ws();
    return pos_ < s_.size() && s_[pos_] == c;
  }

  /// Parses a quoted string (with escapes) into `out`.
  bool parse_string(std::string& out) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != '"') return fail();
    ++pos_;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return fail();
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) return fail();
            // Flat events never need non-ASCII round-tripping; decode the
            // low byte and move on.
            out += static_cast<char>(std::strtol(s_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            break;
          default: return fail();
        }
      } else {
        out += c;
      }
    }
    return fail();
  }

  bool parse_number(double& out) {
    skip_ws();
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    out = std::strtod(start, &end);
    if (end == start) return fail();
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  /// Skips one value of any kind (for args objects and unknown fields).
  bool skip_value() {
    skip_ws();
    if (pos_ >= s_.size()) return fail();
    const char c = s_[pos_];
    if (c == '"') {
      std::string dump;
      return parse_string(dump);
    }
    if (c == '{' || c == '[') {
      const char close = (c == '{') ? '}' : ']';
      ++pos_;
      int depth = 1;
      while (pos_ < s_.size() && depth > 0) {
        const char k = s_[pos_];
        if (k == '"') {
          std::string dump;
          if (!parse_string(dump)) return false;
          continue;
        }
        if (k == '{' || k == '[') ++depth;
        if (k == '}' || k == ']') --depth;
        ++pos_;
      }
      return depth == 0 ? true : fail();
      (void)close;
    }
    if (s_.compare(pos_, 4, "null") == 0 || s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return true;
    }
    double num = 0.0;
    return parse_number(num);
  }

 private:
  bool fail() {
    failed_ = true;
    return false;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// Parses one event-object line into `event`; returns false (with a
/// message) on malformed input.
bool parse_event_line(const std::string& line, ParsedEvent& event, std::string& error) {
  LineScanner scan(line);
  if (!scan.consume('{')) {
    error = "line does not start a JSON object";
    return false;
  }
  bool have_name = false;
  bool have_ph = false;
  if (!scan.at('}')) {
    do {
      std::string key;
      if (!scan.parse_string(key) || !scan.consume(':')) {
        error = "malformed key";
        return false;
      }
      if (key == "name") {
        have_name = scan.parse_string(event.name);
        if (!have_name) {
          error = "\"name\" is not a string";
          return false;
        }
      } else if (key == "ph") {
        std::string ph;
        if (!scan.parse_string(ph) || ph.size() != 1) {
          error = "\"ph\" is not a one-character string";
          return false;
        }
        event.ph = ph[0];
        have_ph = true;
      } else if (key == "cat") {
        if (!scan.parse_string(event.cat)) {
          error = "\"cat\" is not a string";
          return false;
        }
      } else if (key == "id") {
        if (!scan.parse_string(event.id)) {
          error = "\"id\" is not a string";
          return false;
        }
      } else if (key == "pid" || key == "tid" || key == "ts" || key == "dur") {
        double num = 0.0;
        if (!scan.parse_number(num)) {
          error = "\"" + key + "\" is not a number";
          return false;
        }
        if (key == "pid") event.pid = static_cast<int>(num);
        if (key == "tid") event.tid = static_cast<int>(num);
        if (key == "ts") event.ts_us = num;
        if (key == "dur") event.dur_us = num;
      } else {
        if (!scan.skip_value()) {
          error = "malformed value for \"" + key + "\"";
          return false;
        }
      }
    } while (scan.consume(','));
  }
  if (!scan.consume('}')) {
    error = "object not closed";
    return false;
  }
  if (!have_name || !have_ph) {
    error = "missing required field (name, ph)";
    return false;
  }
  return true;
}

}  // namespace

TraceParseResult summarize_trace(std::istream& in) {
  TraceParseResult result;
  // Open async spans keyed by cat + '\0' + id -> begin ts.
  std::unordered_map<std::string, double> open_async;

  std::string line;
  std::size_t line_no = 0;
  bool saw_open_bracket = false;
  while (std::getline(in, line)) {
    ++line_no;
    // Trim whitespace and the inter-event comma TraceWriter emits.
    std::size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    std::size_t end = line.find_last_not_of(" \t\r");
    std::string trimmed = line.substr(begin, end - begin + 1);
    if (!trimmed.empty() && trimmed.back() == ',') trimmed.pop_back();
    if (trimmed.empty()) continue;
    if (trimmed == "[") {
      saw_open_bracket = true;
      continue;
    }
    if (trimmed == "]") continue;
    if (trimmed.front() == '[') {
      // Whole-array-on-one-line input is out of scope for the line parser.
      result.errors.push_back("line " + std::to_string(line_no) +
                              ": expected one event object per line");
      continue;
    }

    ParsedEvent event;
    std::string error;
    if (!parse_event_line(trimmed, event, error)) {
      result.errors.push_back("line " + std::to_string(line_no) + ": " + error);
      continue;
    }

    result.count_by_ph[event.ph] += 1;
    if (!event.cat.empty()) result.count_by_cat[event.cat] += 1;

    switch (event.ph) {
      case 'X': {
        if (event.dur_us < 0.0) {
          result.errors.push_back("line " + std::to_string(line_no) + ": negative duration on \"" +
                                  event.name + "\"");
          break;
        }
        SpanStats& stats = result.complete_spans[event.name];
        stats.count += 1;
        stats.total_us += event.dur_us;
        if (event.dur_us > stats.max_us) stats.max_us = event.dur_us;
        break;
      }
      case 'b': {
        const std::string key = event.cat + '\0' + event.id;
        if (open_async.count(key) > 0) {
          result.errors.push_back("line " + std::to_string(line_no) +
                                  ": async begin with an already-open (cat, id) in \"" +
                                  event.cat + "\"");
        }
        open_async[key] = event.ts_us;
        break;
      }
      case 'e': {
        const std::string key = event.cat + '\0' + event.id;
        const auto it = open_async.find(key);
        if (it == open_async.end()) {
          result.errors.push_back("line " + std::to_string(line_no) +
                                  ": async end with no matching begin in \"" + event.cat + "\"");
          break;
        }
        const double dur = event.ts_us - it->second;
        open_async.erase(it);
        if (dur < 0.0) {
          result.errors.push_back("line " + std::to_string(line_no) +
                                  ": async span ends before it begins in \"" + event.cat + "\"");
          break;
        }
        SpanStats& stats = result.async_spans[event.cat];
        stats.count += 1;
        stats.total_us += dur;
        if (dur > stats.max_us) stats.max_us = dur;
        break;
      }
      case 'i':
      case 'M':
        break;
      default:
        result.errors.push_back("line " + std::to_string(line_no) + ": unknown ph '" +
                                std::string(1, event.ph) + "'");
        break;
    }

    result.events.push_back(std::move(event));
  }

  if (!result.events.empty() && !saw_open_bracket) {
    result.errors.push_back("file never opened a JSON array");
  }
  // Order-independent: per-category counts commute under addition.
  // det_lint: allow(unordered-iter)
  for (const auto& [key, ts] : open_async) {
    const std::string cat = key.substr(0, key.find('\0'));
    result.unmatched_async[cat] += 1;
    (void)ts;
  }
  return result;
}

std::string render_trace_report(const TraceParseResult& result) {
  std::ostringstream out;
  out.precision(6);
  out << "events: " << result.events.size() << "\n";
  out << "by phase:";
  for (const auto& [ph, count] : result.count_by_ph) out << " " << ph << "=" << count;
  out << "\n";
  if (!result.count_by_cat.empty()) {
    out << "by category:\n";
    for (const auto& [cat, count] : result.count_by_cat) {
      out << "  " << cat << ": " << count << "\n";
    }
  }
  if (!result.complete_spans.empty()) {
    out << "complete spans (wall-clock lane):\n";
    for (const auto& [name, stats] : result.complete_spans) {
      out << "  " << name << ": n=" << stats.count << " total=" << stats.total_us / 1e6
          << "s mean=" << stats.mean_us() << "us max=" << stats.max_us << "us\n";
    }
  }
  if (!result.async_spans.empty()) {
    out << "async spans (sim-time lanes):\n";
    for (const auto& [cat, stats] : result.async_spans) {
      out << "  " << cat << ": n=" << stats.count
          << " mean=" << stats.mean_us() / 3.6e9 << "h max=" << stats.max_us / 3.6e9 << "h\n";
    }
  }
  for (const auto& [cat, count] : result.unmatched_async) {
    out << "open at end-of-trace: " << cat << " x" << count
        << " (jobs still queued/running when the run stopped)\n";
  }
  if (!result.errors.empty()) {
    out << "schema errors (" << result.errors.size() << "):\n";
    for (const std::string& error : result.errors) out << "  " << error << "\n";
  }
  return out.str();
}

std::vector<std::string> validate_metrics_jsonl(std::istream& in) {
  std::vector<std::string> errors;
  std::vector<std::string> first_keys;
  std::string line;
  std::size_t line_no = 0;
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    LineScanner scan(line);
    if (!scan.consume('{')) {
      errors.push_back("line " + std::to_string(line_no) + ": not a JSON object");
      continue;
    }
    std::vector<std::string> keys;
    bool bad = false;
    if (!scan.at('}')) {
      do {
        std::string key;
        if (!scan.parse_string(key) || !scan.consume(':')) {
          errors.push_back("line " + std::to_string(line_no) + ": malformed key");
          bad = true;
          break;
        }
        // Values must be numbers or null (the store never emits strings).
        if (scan.at('n')) {
          if (!scan.skip_value()) {
            errors.push_back("line " + std::to_string(line_no) + ": malformed value");
            bad = true;
            break;
          }
        } else {
          double num = 0.0;
          if (!scan.parse_number(num)) {
            errors.push_back("line " + std::to_string(line_no) + ": value for \"" + key +
                             "\" is not a number or null");
            bad = true;
            break;
          }
        }
        keys.push_back(std::move(key));
      } while (scan.consume(','));
    }
    if (bad) continue;
    if (!scan.consume('}')) {
      errors.push_back("line " + std::to_string(line_no) + ": object not closed");
      continue;
    }
    ++rows;
    if (first_keys.empty()) {
      first_keys = keys;
      bool has_time = false;
      for (const std::string& key : first_keys) {
        if (key == "t_seconds") has_time = true;
      }
      if (!has_time) {
        errors.push_back("line " + std::to_string(line_no) + ": missing \"t_seconds\" column");
      }
    } else if (keys != first_keys) {
      errors.push_back("line " + std::to_string(line_no) +
                       ": key set differs from the first row");
    }
  }
  if (rows == 0) errors.push_back("no metric rows found");
  return errors;
}

}  // namespace greenhpc::obs
