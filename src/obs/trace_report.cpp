#include "obs/trace_report.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <sstream>
#include <unordered_map>

#include "obs/manifest.hpp"
#include "obs/run_compare.hpp"

namespace greenhpc::obs {

namespace {

/// Minimal scanner over one JSON object line. Understands strings, numbers,
/// null/true/false, and skips nested objects/arrays; enough for the flat
/// events TraceWriter emits.
class LineScanner {
 public:
  explicit LineScanner(const std::string& line) : s_(line) {}

  [[nodiscard]] bool failed() const { return failed_; }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool at(char c) {
    skip_ws();
    return pos_ < s_.size() && s_[pos_] == c;
  }

  /// Parses a quoted string (with escapes) into `out`.
  bool parse_string(std::string& out) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != '"') return fail();
    ++pos_;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return fail();
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) return fail();
            // Flat events never need non-ASCII round-tripping; decode the
            // low byte and move on.
            out += static_cast<char>(std::strtol(s_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            break;
          default: return fail();
        }
      } else {
        out += c;
      }
    }
    return fail();
  }

  bool parse_number(double& out) {
    skip_ws();
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    out = std::strtod(start, &end);
    if (end == start) return fail();
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  /// Skips one value of any kind (for args objects and unknown fields).
  bool skip_value() {
    skip_ws();
    if (pos_ >= s_.size()) return fail();
    const char c = s_[pos_];
    if (c == '"') {
      std::string dump;
      return parse_string(dump);
    }
    if (c == '{' || c == '[') {
      const char close = (c == '{') ? '}' : ']';
      ++pos_;
      int depth = 1;
      while (pos_ < s_.size() && depth > 0) {
        const char k = s_[pos_];
        if (k == '"') {
          std::string dump;
          if (!parse_string(dump)) return false;
          continue;
        }
        if (k == '{' || k == '[') ++depth;
        if (k == '}' || k == ']') --depth;
        ++pos_;
      }
      return depth == 0 ? true : fail();
      (void)close;
    }
    if (s_.compare(pos_, 4, "null") == 0 || s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return true;
    }
    double num = 0.0;
    return parse_number(num);
  }

 private:
  bool fail() {
    failed_ = true;
    return false;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// Parses one event-object line into `event`; returns false (with a
/// message) on malformed input.
bool parse_event_line(const std::string& line, ParsedEvent& event, std::string& error) {
  LineScanner scan(line);
  if (!scan.consume('{')) {
    error = "line does not start a JSON object";
    return false;
  }
  bool have_name = false;
  bool have_ph = false;
  if (!scan.at('}')) {
    do {
      std::string key;
      if (!scan.parse_string(key) || !scan.consume(':')) {
        error = "malformed key";
        return false;
      }
      if (key == "name") {
        have_name = scan.parse_string(event.name);
        if (!have_name) {
          error = "\"name\" is not a string";
          return false;
        }
      } else if (key == "ph") {
        std::string ph;
        if (!scan.parse_string(ph) || ph.size() != 1) {
          error = "\"ph\" is not a one-character string";
          return false;
        }
        event.ph = ph[0];
        have_ph = true;
      } else if (key == "cat") {
        if (!scan.parse_string(event.cat)) {
          error = "\"cat\" is not a string";
          return false;
        }
      } else if (key == "id") {
        if (!scan.parse_string(event.id)) {
          error = "\"id\" is not a string";
          return false;
        }
      } else if (key == "pid" || key == "tid" || key == "ts" || key == "dur") {
        double num = 0.0;
        if (!scan.parse_number(num)) {
          error = "\"" + key + "\" is not a number";
          return false;
        }
        if (key == "pid") event.pid = static_cast<int>(num);
        if (key == "tid") event.tid = static_cast<int>(num);
        if (key == "ts") event.ts_us = num;
        if (key == "dur") event.dur_us = num;
      } else {
        if (!scan.skip_value()) {
          error = "malformed value for \"" + key + "\"";
          return false;
        }
      }
    } while (scan.consume(','));
  }
  if (!scan.consume('}')) {
    error = "object not closed";
    return false;
  }
  if (!have_name || !have_ph) {
    error = "missing required field (name, ph)";
    return false;
  }
  return true;
}

}  // namespace

TraceParseResult summarize_trace(std::istream& in) {
  TraceParseResult result;
  // Open async spans keyed by cat + '\0' + id -> begin ts.
  std::unordered_map<std::string, double> open_async;

  std::string line;
  std::size_t line_no = 0;
  bool saw_open_bracket = false;
  while (std::getline(in, line)) {
    ++line_no;
    // Trim whitespace and the inter-event comma TraceWriter emits.
    std::size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    std::size_t end = line.find_last_not_of(" \t\r");
    std::string trimmed = line.substr(begin, end - begin + 1);
    if (!trimmed.empty() && trimmed.back() == ',') trimmed.pop_back();
    if (trimmed.empty()) continue;
    if (trimmed == "[") {
      saw_open_bracket = true;
      continue;
    }
    if (trimmed == "]") continue;
    if (trimmed.front() == '[') {
      // Whole-array-on-one-line input is out of scope for the line parser.
      result.errors.push_back("line " + std::to_string(line_no) +
                              ": expected one event object per line");
      continue;
    }

    ParsedEvent event;
    std::string error;
    if (!parse_event_line(trimmed, event, error)) {
      result.errors.push_back("line " + std::to_string(line_no) + ": " + error);
      continue;
    }

    result.count_by_ph[event.ph] += 1;
    if (!event.cat.empty()) result.count_by_cat[event.cat] += 1;

    switch (event.ph) {
      case 'X': {
        if (event.dur_us < 0.0) {
          result.errors.push_back("line " + std::to_string(line_no) + ": negative duration on \"" +
                                  event.name + "\"");
          break;
        }
        SpanStats& stats = result.complete_spans[event.name];
        stats.count += 1;
        stats.total_us += event.dur_us;
        if (event.dur_us > stats.max_us) stats.max_us = event.dur_us;
        break;
      }
      case 'b': {
        const std::string key = event.cat + '\0' + event.id;
        if (open_async.count(key) > 0) {
          result.errors.push_back("line " + std::to_string(line_no) +
                                  ": async begin with an already-open (cat, id) in \"" +
                                  event.cat + "\"");
        }
        open_async[key] = event.ts_us;
        break;
      }
      case 'e': {
        const std::string key = event.cat + '\0' + event.id;
        const auto it = open_async.find(key);
        if (it == open_async.end()) {
          result.errors.push_back("line " + std::to_string(line_no) +
                                  ": async end with no matching begin in \"" + event.cat + "\"");
          break;
        }
        const double dur = event.ts_us - it->second;
        open_async.erase(it);
        if (dur < 0.0) {
          result.errors.push_back("line " + std::to_string(line_no) +
                                  ": async span ends before it begins in \"" + event.cat + "\"");
          break;
        }
        SpanStats& stats = result.async_spans[event.cat];
        stats.count += 1;
        stats.total_us += dur;
        if (dur > stats.max_us) stats.max_us = dur;
        break;
      }
      case 'i':
      case 'M':
        break;
      default:
        result.errors.push_back("line " + std::to_string(line_no) + ": unknown ph '" +
                                std::string(1, event.ph) + "'");
        break;
    }

    result.events.push_back(std::move(event));
  }

  if (!result.events.empty() && !saw_open_bracket) {
    result.errors.push_back("file never opened a JSON array");
  }
  // Order-independent: per-category counts commute under addition.
  // det_lint: allow(unordered-iter)
  for (const auto& [key, ts] : open_async) {
    const std::string cat = key.substr(0, key.find('\0'));
    result.unmatched_async[cat] += 1;
    (void)ts;
  }
  return result;
}

std::string render_trace_report(const TraceParseResult& result) {
  std::ostringstream out;
  out.precision(6);
  out << "events: " << result.events.size() << "\n";
  out << "by phase:";
  for (const auto& [ph, count] : result.count_by_ph) out << " " << ph << "=" << count;
  out << "\n";
  if (!result.count_by_cat.empty()) {
    out << "by category:\n";
    for (const auto& [cat, count] : result.count_by_cat) {
      out << "  " << cat << ": " << count << "\n";
    }
  }
  if (!result.complete_spans.empty()) {
    out << "complete spans (wall-clock lane):\n";
    for (const auto& [name, stats] : result.complete_spans) {
      out << "  " << name << ": n=" << stats.count << " total=" << stats.total_us / 1e6
          << "s mean=" << stats.mean_us() << "us max=" << stats.max_us << "us\n";
    }
  }
  if (!result.async_spans.empty()) {
    out << "async spans (sim-time lanes):\n";
    for (const auto& [cat, stats] : result.async_spans) {
      out << "  " << cat << ": n=" << stats.count
          << " mean=" << stats.mean_us() / 3.6e9 << "h max=" << stats.max_us / 3.6e9 << "h\n";
    }
  }
  for (const auto& [cat, count] : result.unmatched_async) {
    out << "open at end-of-trace: " << cat << " x" << count
        << " (jobs still queued/running when the run stopped)\n";
  }
  if (!result.errors.empty()) {
    out << "schema errors (" << result.errors.size() << "):\n";
    for (const std::string& error : result.errors) out << "  " << error << "\n";
  }
  return out.str();
}

namespace {

/// If `line` is a pure {"manifest": {...}} wrapper, validates the inner
/// manifest into `errors` and returns true (line consumed).
bool consume_manifest_header(const std::string& line, std::size_t line_no,
                             std::vector<std::string>& errors) {
  std::optional<JsonValue> parsed = parse_json(line, nullptr);
  if (!parsed.has_value() || !parsed->is_object() || parsed->object.size() != 1 ||
      parsed->object.front().first != "manifest") {
    return false;
  }
  for (std::string& e : validate_manifest_text(extract_manifest_text(line))) {
    errors.push_back("line " + std::to_string(line_no) + ": " + std::move(e));
  }
  return true;
}

/// Four ledger fields read off one attribution line under a prefix
/// ("direct_", or "" for reference lines).
struct LedgerFields {
  double energy = 0.0;
  double cost = 0.0;
  double co2 = 0.0;
  double water = 0.0;
  bool complete = false;

  LedgerFields& operator+=(const LedgerFields& other) {
    energy += other.energy;
    cost += other.cost;
    co2 += other.co2;
    water += other.water;
    complete = complete && other.complete;
    return *this;
  }
};

LedgerFields read_ledger_fields(const JsonValue& line, const std::string& prefix) {
  LedgerFields out;
  const JsonValue* energy = line.find(prefix + "energy_j");
  const JsonValue* cost = line.find(prefix + "cost_usd");
  const JsonValue* co2 = line.find(prefix + "co2_kg");
  const JsonValue* water = line.find(prefix + "water_l");
  if (energy == nullptr || cost == nullptr || co2 == nullptr || water == nullptr ||
      !energy->is_number() || !cost->is_number() || !co2->is_number() ||
      !water->is_number()) {
    return out;
  }
  out.energy = energy->number;
  out.cost = cost->number;
  out.co2 = co2->number;
  out.water = water->number;
  out.complete = true;
  return out;
}

/// The invariant tolerance (util::check_invariant_close), re-applied from the
/// artifact alone: 1e-9 relative with an absolute floor of 1e-9.
void check_conserved(double a, double b, const std::string& what,
                     std::vector<std::string>& errors) {
  const double tol = 1e-9 * std::max({1.0, std::abs(a), std::abs(b)});
  if (std::abs(a - b) > tol) {
    std::ostringstream os;
    os.precision(17);
    os << "conservation violated: " << what << " (" << a << " vs " << b << ")";
    errors.push_back(os.str());
  }
}

}  // namespace

std::string extract_manifest_text(const std::string& text) {
  std::size_t start = text.find("\"manifest\"");
  std::size_t after = start == std::string::npos ? start : start + 10;
  if (start == std::string::npos) {
    start = text.find("# manifest:");
    if (start == std::string::npos) return "";
    after = start + 11;
  }
  std::size_t pos = after;
  while (pos < text.size() &&
         (std::isspace(static_cast<unsigned char>(text[pos])) != 0 || text[pos] == ':')) {
    ++pos;
  }
  if (pos >= text.size() || text[pos] != '{') return "";
  const std::size_t open = pos;
  int depth = 0;
  bool in_string = false;
  for (; pos < text.size(); ++pos) {
    const char c = text[pos];
    if (in_string) {
      if (c == '\\') ++pos;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++depth;
    if (c == '}' && --depth == 0) return text.substr(open, pos - open + 1);
  }
  return "";
}

std::vector<std::string> validate_manifest_text(const std::string& text) {
  std::vector<std::string> errors;
  std::string parse_error;
  std::optional<JsonValue> doc = parse_json(text, &parse_error);
  if (!doc.has_value() || !doc->is_object()) {
    errors.push_back("manifest is not a JSON object" +
                     (parse_error.empty() ? "" : " (" + parse_error + ")"));
    return errors;
  }
  const auto require_number = [&](const char* key) -> const JsonValue* {
    const JsonValue* v = doc->find(key);
    if (v == nullptr || !v->is_number()) {
      errors.push_back(std::string("manifest missing numeric \"") + key + "\"");
      return nullptr;
    }
    return v;
  };
  const auto require_string = [&](const char* key) {
    const JsonValue* v = doc->find(key);
    if (v == nullptr || v->kind != JsonValue::Kind::String) {
      errors.push_back(std::string("manifest missing string \"") + key + "\"");
    }
  };
  if (const JsonValue* version = require_number("schema_version"); version != nullptr) {
    if (version->number != static_cast<double>(kSchemaVersion)) {
      std::ostringstream os;
      os << "manifest schema_version " << version->number << " != supported "
         << kSchemaVersion;
      errors.push_back(os.str());
    }
  }
  require_string("tool");
  require_string("scenario");
  require_number("seed");
  require_number("regions");
  require_string("git_describe");
  require_string("build_flags");
  require_number("wall_seconds");
  if (const JsonValue* names = doc->find("region_names");
      names == nullptr || names->kind != JsonValue::Kind::Array) {
    errors.push_back("manifest missing array \"region_names\"");
  }
  return errors;
}

std::vector<std::string> validate_metrics_jsonl(std::istream& in) {
  return validate_metrics_jsonl(in, nullptr);
}

std::vector<std::string> validate_metrics_jsonl(std::istream& in,
                                                std::vector<std::string>* warnings) {
  std::vector<std::string> errors;
  std::vector<std::string> first_keys;
  std::string line;
  std::size_t line_no = 0;
  std::size_t rows = 0;
  bool first_content = true;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (first_content) {
      first_content = false;
      if (consume_manifest_header(line, line_no, errors)) continue;
      if (warnings != nullptr) {
        warnings->push_back("no manifest header (pre-provenance artifact?)");
      }
    }
    LineScanner scan(line);
    if (!scan.consume('{')) {
      errors.push_back("line " + std::to_string(line_no) + ": not a JSON object");
      continue;
    }
    std::vector<std::string> keys;
    bool bad = false;
    if (!scan.at('}')) {
      do {
        std::string key;
        if (!scan.parse_string(key) || !scan.consume(':')) {
          errors.push_back("line " + std::to_string(line_no) + ": malformed key");
          bad = true;
          break;
        }
        // Values must be numbers or null (the store never emits strings).
        if (scan.at('n')) {
          if (!scan.skip_value()) {
            errors.push_back("line " + std::to_string(line_no) + ": malformed value");
            bad = true;
            break;
          }
        } else {
          double num = 0.0;
          if (!scan.parse_number(num)) {
            errors.push_back("line " + std::to_string(line_no) + ": value for \"" + key +
                             "\" is not a number or null");
            bad = true;
            break;
          }
        }
        keys.push_back(std::move(key));
      } while (scan.consume(','));
    }
    if (bad) continue;
    if (!scan.consume('}')) {
      errors.push_back("line " + std::to_string(line_no) + ": object not closed");
      continue;
    }
    ++rows;
    if (first_keys.empty()) {
      first_keys = keys;
      bool has_time = false;
      for (const std::string& key : first_keys) {
        if (key == "t_seconds") has_time = true;
      }
      if (!has_time) {
        errors.push_back("line " + std::to_string(line_no) + ": missing \"t_seconds\" column");
      }
    } else if (keys != first_keys) {
      errors.push_back("line " + std::to_string(line_no) +
                       ": key set differs from the first row");
    }
  }
  if (rows == 0) errors.push_back("no metric rows found");
  return errors;
}

std::vector<std::string> validate_attribution_jsonl(std::istream& in,
                                                    std::vector<std::string>* warnings) {
  std::vector<std::string> errors;
  std::string line;
  std::size_t line_no = 0;
  bool first_content = true;
  bool header_seen = false;
  double expect_users = -1.0;
  double expect_regions = -1.0;
  double expect_top = -1.0;
  std::map<std::string, LedgerFields> references;
  std::map<std::string, LedgerFields> totals;
  std::map<std::string, LedgerFields> region_sums;  // bucket -> sum over rows
  std::map<std::string, LedgerFields> user_sums;
  std::size_t region_rows = 0;
  std::size_t user_rows = 0;
  std::size_t job_rows = 0;

  const auto line_error = [&errors, &line_no](const std::string& message) {
    errors.push_back("line " + std::to_string(line_no) + ": " + message);
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (first_content) {
      first_content = false;
      if (consume_manifest_header(line, line_no, errors)) continue;
      if (warnings != nullptr) {
        warnings->push_back("no manifest header (pre-provenance artifact?)");
      }
    }
    std::string parse_error;
    std::optional<JsonValue> parsed = parse_json(line, &parse_error);
    if (!parsed.has_value() || !parsed->is_object()) {
      line_error(parse_error.empty() ? "not a JSON object" : parse_error);
      continue;
    }
    if (const JsonValue* kind = parsed->find("kind"); kind != nullptr) {
      if (kind->kind != JsonValue::Kind::String || kind->text != "attribution") {
        line_error("header kind is not \"attribution\"");
        continue;
      }
      if (header_seen) {
        line_error("duplicate attribution header");
        continue;
      }
      header_seen = true;
      const JsonValue* version = parsed->find("schema_version");
      if (version == nullptr || !version->is_number()) {
        line_error("header missing numeric \"schema_version\"");
      } else if (version->number != static_cast<double>(kSchemaVersion)) {
        std::ostringstream os;
        os << "schema_version " << version->number << " != supported " << kSchemaVersion;
        line_error(os.str());
      }
      const auto read_count = [&](const char* key, double& out) {
        const JsonValue* v = parsed->find(key);
        if (v == nullptr || !v->is_number()) {
          line_error(std::string("header missing numeric \"") + key + "\"");
        } else {
          out = v->number;
        }
      };
      double lineages = -1.0;
      read_count("lineages", lineages);
      read_count("users", expect_users);
      read_count("regions", expect_regions);
      read_count("top_jobs", expect_top);
      continue;
    }
    if (!header_seen) {
      line_error("row before the attribution header");
      continue;
    }
    if (const JsonValue* ref = parsed->find("reference");
        ref != nullptr && ref->kind == JsonValue::Kind::String) {
      const LedgerFields fields = read_ledger_fields(*parsed, "");
      if (!fields.complete) line_error("reference row missing ledger fields");
      references[ref->text] = fields;
      continue;
    }
    if (const JsonValue* total = parsed->find("total");
        total != nullptr && total->kind == JsonValue::Kind::String) {
      const LedgerFields fields = read_ledger_fields(*parsed, "");
      if (!fields.complete) line_error("total row missing ledger fields");
      totals[total->text] = fields;
      continue;
    }
    // Job rows carry "user"/"region" identity keys too: classify them first.
    if (const JsonValue* job = parsed->find("job"); job != nullptr && job->is_number()) {
      ++job_rows;
      for (const char* bucket : {"direct_", "overhead_", "amortized_"}) {
        if (!read_ledger_fields(*parsed, bucket).complete) {
          line_error(std::string("job row missing ") + bucket + "ledger fields");
        }
      }
      continue;
    }
    if (const JsonValue* user = parsed->find("user"); user != nullptr && user->is_number()) {
      ++user_rows;
      for (const char* bucket : {"direct_", "overhead_", "amortized_"}) {
        const LedgerFields fields = read_ledger_fields(*parsed, bucket);
        if (!fields.complete) {
          line_error(std::string("user row missing ") + bucket + "ledger fields");
        }
        user_sums[bucket] += fields;
      }
      continue;
    }
    if (const JsonValue* region = parsed->find("region");
        region != nullptr && region->is_number()) {
      ++region_rows;
      for (const char* bucket : {"direct_", "overhead_", "amortized_", "unattributed_"}) {
        const LedgerFields fields = read_ledger_fields(*parsed, bucket);
        if (!fields.complete) {
          line_error(std::string("region row missing ") + bucket + "ledger fields");
        }
        region_sums[bucket] += fields;
      }
      continue;
    }
    line_error("unrecognized attribution row shape");
  }

  if (!header_seen) {
    errors.push_back("missing attribution header line");
    return errors;
  }
  const auto check_count = [&errors](const char* what, std::size_t got, double expect) {
    if (expect >= 0.0 && static_cast<double>(got) != expect) {
      std::ostringstream os;
      os << what << " row count " << got << " != header " << expect;
      errors.push_back(os.str());
    }
  };
  check_count("user", user_rows, expect_users);
  check_count("region", region_rows, expect_regions);
  check_count("job", job_rows, expect_top);
  for (const char* name : {"accountant", "transfer", "grid"}) {
    if (references.count(name) == 0) {
      errors.push_back(std::string("missing reference row \"") + name + "\"");
    }
  }
  for (const char* name : {"direct", "overhead", "amortized", "unattributed"}) {
    if (totals.count(name) == 0) {
      errors.push_back(std::string("missing total row \"") + name + "\"");
    }
  }
  if (!errors.empty()) return errors;

  // The conservation identities, re-established from the artifact alone.
  const auto check_ledgers = [&errors](const LedgerFields& a, const LedgerFields& b,
                                       const std::string& what) {
    check_conserved(a.energy, b.energy, what + " energy_j", errors);
    check_conserved(a.cost, b.cost, what + " cost_usd", errors);
    check_conserved(a.co2, b.co2, what + " co2_kg", errors);
    check_conserved(a.water, b.water, what + " water_l", errors);
  };
  check_ledgers(totals["direct"], references["accountant"], "direct vs accountant");
  check_ledgers(totals["overhead"], references["transfer"], "overhead vs transfer");
  LedgerFields grid_side = totals["direct"];
  grid_side += totals["amortized"];
  grid_side += totals["unattributed"];
  grid_side.complete = true;
  check_ledgers(grid_side, references["grid"], "direct+amortized+unattributed vs grid");
  if (region_rows > 0) {
    check_ledgers(region_sums["direct_"], totals["direct"], "region direct vs total");
    check_ledgers(region_sums["overhead_"], totals["overhead"], "region overhead vs total");
    check_ledgers(region_sums["amortized_"], totals["amortized"], "region amortized vs total");
    check_ledgers(region_sums["unattributed_"], totals["unattributed"],
                  "region unattributed vs total");
  }
  if (user_rows > 0) {
    check_ledgers(user_sums["direct_"], totals["direct"], "user direct vs total");
    check_ledgers(user_sums["overhead_"], totals["overhead"], "user overhead vs total");
    check_ledgers(user_sums["amortized_"], totals["amortized"], "user amortized vs total");
  }
  return errors;
}

}  // namespace greenhpc::obs
