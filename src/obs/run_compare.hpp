#pragma once
// Cross-run comparison: loads two run artifacts (experiment JSON, attribution
// JSONL, metrics JSONL, or a flat BENCH_PERF.json), matches series by name,
// and renders per-metric deltas with a regression verdict.
//
// This is the library half of `tools/run_diff`, the CI regression sentry:
// a golden artifact committed to the repo is compared against a freshly
// produced one, and any relative drift beyond the configured tolerance fails
// the build. Where both artifacts carry per-replica series (the "values"
// arrays experiment exports emit), the diff is seed-paired: replica i of the
// base is matched with replica i of the candidate, and the paired-difference
// mean ships with a 95% CI (stats::t_critical_975), so a drift verdict can
// distinguish noise from signal.
//
// The JSON reader here is a deliberately small DOM parser — just enough to
// round-trip this repo's own writers (all plain ASCII, no exponents beyond
// strtod's reach, no unicode escapes). It is not a general-purpose parser.

#include <cstddef>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace greenhpc::obs {

/// Minimal JSON DOM value. Object members keep insertion order (exports are
/// deterministic, so order is meaningful when re-rendering).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First member with `key`, or nullptr (objects only).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  [[nodiscard]] bool is_number() const { return kind == Kind::Number; }
  [[nodiscard]] bool is_object() const { return kind == Kind::Object; }
};

/// Parses one JSON document. On failure returns nullopt and, when `error` is
/// non-null, stores a message with the byte offset of the problem.
[[nodiscard]] std::optional<JsonValue> parse_json(std::string_view text, std::string* error);

/// One named numeric series extracted from an artifact: a single value
/// (scalars, totals) or a per-replica/per-sample column.
struct ArtifactSeries {
  std::string name;
  std::vector<double> values;
};

/// A loaded artifact, reduced to comparable series.
struct ArtifactData {
  /// "experiment" | "attribution" | "metrics" | "perf" | "unknown".
  std::string kind;
  /// The embedded provenance manifest, when the artifact carries one.
  std::optional<JsonValue> manifest;
  /// Series in artifact order; names are unique.
  std::vector<ArtifactSeries> series;
  /// Parse problems (empty == clean load).
  std::vector<std::string> errors;

  [[nodiscard]] bool ok() const { return errors.empty(); }
};

/// Reads an artifact stream, detects its kind, and extracts series.
[[nodiscard]] ArtifactData load_artifact(std::istream& in);

struct DiffOptions {
  /// Symmetric relative tolerance: |cand-base| / max(|base|,|cand|) above
  /// this flags the metric (unless the paired CI absolves it).
  double rel_tol = 1e-6;
  /// Per-metric overrides (exact series-name match), e.g. wall-clock rates.
  std::map<std::string, double> per_metric;
  /// When true (default), a series present on only one side is a failure —
  /// schema drift must be acknowledged by regenerating the golden.
  bool fail_on_missing = true;
};

/// One matched metric's delta.
struct MetricDelta {
  std::string name;
  double base_mean = 0.0;
  double cand_mean = 0.0;
  double abs_delta = 0.0;  ///< cand_mean - base_mean
  double rel_delta = 0.0;  ///< |abs_delta| / max(|base_mean|, |cand_mean|)
  double tolerance = 0.0;  ///< the rel tolerance this metric was held to
  /// True when both sides carried an equal-length series of >= 2 replicas.
  bool paired = false;
  std::size_t pairs = 0;
  double paired_ci95_half = 0.0;  ///< 95% CI half-width on the paired mean
  /// Beyond tolerance — and, when paired, the CI excludes zero too.
  bool flagged = false;
};

struct DiffReport {
  std::string base_kind;
  std::string cand_kind;
  std::vector<MetricDelta> deltas;
  std::vector<std::string> only_base;  ///< series missing from the candidate
  std::vector<std::string> only_cand;  ///< series missing from the base
  /// Load/shape problems (kind mismatch, schema-version mismatch...).
  std::vector<std::string> errors;
  bool fail_on_missing = true;

  /// The sentry verdict: any flagged metric, missing series (when enforced),
  /// or structural error.
  [[nodiscard]] bool regression() const;
};

/// Matches series by name and computes deltas. Kind mismatch between the two
/// artifacts is an error (comparing a trace to a perf file is operator
/// error, not drift).
[[nodiscard]] DiffReport diff_artifacts(const ArtifactData& base, const ArtifactData& cand,
                                        const DiffOptions& options);

/// Human-readable markdown: verdict line, flagged metrics first, then a
/// table of all deltas.
[[nodiscard]] std::string render_diff_markdown(const DiffReport& report);

/// Machine-readable JSON document mirroring the markdown contents.
[[nodiscard]] std::string render_diff_json(const DiffReport& report);

}  // namespace greenhpc::obs
