#include "obs/recorder.hpp"

namespace greenhpc::obs {

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(config),
      series_(TimeSeriesConfig{config.metrics_interval == 0 ? 1 : config.metrics_interval,
                               config.metrics_capacity}),
      wall_start_(std::chrono::steady_clock::now()) {
  if (profiling()) {
    trace_.process_name(TraceWriter::kProfilerPid, "step-loop profiler (wall clock)");
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      trace_.thread_name(TraceWriter::kProfilerPid, static_cast<int>(i),
                         phase_name(static_cast<Phase>(i)));
    }
  }
}

void FlightRecorder::sample(util::TimePoint t) {
  if (config_.metrics) series_.sample(t, registry_);
}

double FlightRecorder::wall_us() const {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   wall_start_)
      .count();
}

void FlightRecorder::record_phase(Phase p, double start_wall_us, double end_wall_us) {
  profiler_.record(p, (end_wall_us - start_wall_us) * 1e-6);
  if (config_.trace) {
    trace_.complete(phase_name(p), "phase", TraceWriter::kProfilerPid,
                    static_cast<int>(p), start_wall_us, end_wall_us - start_wall_us);
  }
}

}  // namespace greenhpc::obs
