#include "obs/recorder.hpp"

namespace greenhpc::obs {

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(config),
      series_(TimeSeriesConfig{config.metrics_interval == 0 ? 1 : config.metrics_interval,
                               config.metrics_capacity}),
      // Wall clock by design: the phase profiler (pid 99) measures host
      // execution time, never sim time.  det_lint: allow(wall-clock)
      wall_start_(std::chrono::steady_clock::now()) {
  if (config_.attribution) attribution_ = std::make_unique<AttributionLedger>();
  if (profiling()) {
    trace_.process_name(TraceWriter::kProfilerPid, "step-loop profiler (wall clock)");
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      trace_.thread_name(TraceWriter::kProfilerPid, static_cast<int>(i),
                         phase_name(static_cast<Phase>(i)));
    }
  }
}

void FlightRecorder::sample(util::TimePoint t) {
  if (config_.metrics) series_.sample(t, registry_);
}

double FlightRecorder::wall_us() const {
  // Wall clock by design: feeds only the pid-99 profiler track.
  // det_lint: allow(wall-clock)
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   wall_start_)
      .count();
}

void FlightRecorder::record_phase(Phase p, double start_wall_us, double end_wall_us,
                                  TraceWriter* sink) {
  profiler_.record(p, (end_wall_us - start_wall_us) * 1e-6);
  if (config_.trace) {
    TraceWriter& out = sink != nullptr ? *sink : trace_;
    out.complete(phase_name(p), "phase", TraceWriter::kProfilerPid,
                 static_cast<int>(p), start_wall_us, end_wall_us - start_wall_us);
  }
}

void FlightRecorder::enable_trace_shards(std::size_t count) {
  while (trace_shards_.size() < count) {
    trace_shards_.push_back(std::make_unique<TraceWriter>());
  }
}

TraceWriter& FlightRecorder::region_trace(std::size_t region) {
  if (region < trace_shards_.size()) return *trace_shards_[region];
  return trace_;
}

void FlightRecorder::merge_trace_shards() {
  for (auto& shard : trace_shards_) shard->drain_into(trace_);
}

}  // namespace greenhpc::obs
