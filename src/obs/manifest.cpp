#include "obs/manifest.hpp"

#include <sstream>

#include "obs/trace.hpp"  // json_escape

namespace greenhpc::obs {

namespace {

std::string json_number(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

std::string RunManifest::to_json() const {
  std::ostringstream os;
  os << "{\"schema_version\": " << schema_version << ", \"tool\": \"" << json_escape(tool)
     << "\", \"scenario\": \"" << json_escape(scenario) << "\", \"seed\": " << seed
     << ", \"regions\": " << regions << ", \"region_names\": [";
  for (std::size_t i = 0; i < region_names.size(); ++i) {
    if (i > 0) os << ", ";
    os << "\"" << json_escape(region_names[i]) << "\"";
  }
  os << "], \"git_describe\": \"" << json_escape(git_describe) << "\", \"build_flags\": \""
     << json_escape(build_flags) << "\", \"wall_seconds\": " << json_number(wall_seconds) << "}";
  return os.str();
}

RunManifest make_manifest(std::string tool) {
  RunManifest m;
  m.tool = std::move(tool);
#ifdef GREENHPC_GIT_DESCRIBE
  m.git_describe = GREENHPC_GIT_DESCRIBE;
#else
  m.git_describe = "unknown";
#endif
#ifdef GREENHPC_BUILD_TYPE
  m.build_flags = GREENHPC_BUILD_TYPE;
#else
  m.build_flags = "unknown";
#endif
#ifdef GREENHPC_CHECK_INVARIANTS
  m.build_flags += "+invariants";
#endif
  return m;
}

}  // namespace greenhpc::obs
