#pragma once
// Step-loop phase profiler: scoped wall-clock timers around the coordinator
// step's phases, so perf work cites an in-tree breakdown instead of ad-hoc
// external profiling (the gap PR 5 had to work around).
//
// The five phases partition one coordinator step:
//   observe_refit        region snapshot + forecaster observe/refit/skill
//   routing              admission routing of the step's arrivals
//   migration            checkpoint delivery + migration planning
//   scheduling           per-region scheduler select/dispatch
//   progress_accounting  arrivals sampling, job progress, energy accounting,
//                        grid/battery draw, monthly instrumentation
//
// Wall time only: phase durations never feed simulated state, so the
// profiler cannot perturb determinism (the obs tests pin instrumented ==
// uninstrumented bits). When no recorder is attached the scoped timer
// compiles down to two null checks — no clock reads.

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace greenhpc::obs {

enum class Phase : std::uint8_t {
  kObserveRefit = 0,
  kRouting,
  kMigration,
  kScheduling,
  kProgressAccounting,
};
inline constexpr std::size_t kPhaseCount = 5;

[[nodiscard]] const char* phase_name(Phase p);

class PhaseProfiler {
 public:
  struct PhaseStats {
    double wall_seconds = 0.0;
    std::uint64_t calls = 0;
  };

  // Locked: region-parallel stepping records the scheduling and progress
  // phases from pool workers concurrently. This is the wall-clock lane —
  // aggregate timings are inherently nondeterministic, only the accumulation
  // itself must be race-free.
  void record(Phase p, double seconds) {
    const std::scoped_lock lock(mutex_);
    PhaseStats& s = stats_[static_cast<std::size_t>(p)];
    s.wall_seconds += seconds;
    s.calls += 1;
  }

  [[nodiscard]] const PhaseStats& stats(Phase p) const {
    return stats_[static_cast<std::size_t>(p)];
  }
  /// Sum of all phases' wall seconds.
  [[nodiscard]] double total_seconds() const;

  /// Two-column text rendering (phase, seconds, share) for CLI surfaces.
  [[nodiscard]] std::string render() const;

 private:
  mutable std::mutex mutex_;
  std::array<PhaseStats, kPhaseCount> stats_{};
};

}  // namespace greenhpc::obs
