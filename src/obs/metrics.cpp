#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace greenhpc::obs {

using util::require;

// --- MetricHistogram ---------------------------------------------------------

MetricHistogram::MetricHistogram(double lo, double hi, std::size_t bin_count)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bin_count)) {
  require(hi > lo, "MetricHistogram: hi must exceed lo");
  require(bin_count > 0, "MetricHistogram: bin_count must be positive");
  counts_.assign(bin_count, 0);
}

void MetricHistogram::add(double value) {
  if (value < lo_) {
    ++underflow_;
  } else if (value >= hi_) {
    ++overflow_;
  } else {
    auto bin = static_cast<std::size_t>((value - lo_) / bin_width_);
    if (bin >= counts_.size()) bin = counts_.size() - 1;  // FP edge at hi
    ++counts_[bin];
  }
  ++total_;
  sum_ += value;
}

void MetricHistogram::merge(const MetricHistogram& other) {
  require(other.lo_ == lo_ && other.hi_ == hi_ && other.counts_.size() == counts_.size(),
          "MetricHistogram::merge: bin layouts differ");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
  sum_ += other.sum_;
}

double MetricHistogram::mean() const {
  return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0;
}

double MetricHistogram::quantile(double q) const {
  require(q >= 0.0 && q <= 1.0, "MetricHistogram::quantile: q must be in [0,1]");
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  if (target <= cumulative) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double within = (target - cumulative) / static_cast<double>(counts_[i]);
      return lo_ + bin_width_ * (static_cast<double>(i) + within);
    }
    cumulative = next;
  }
  return hi_;  // target lands in the overflow mass
}

// --- MetricsRegistry ---------------------------------------------------------

Counter* MetricsRegistry::counter(const std::string& name) {
  for (const Entry& e : order_) {
    if (e.name != name) continue;
    require(e.kind == Kind::kCounter, "MetricsRegistry: '" + name + "' is not a counter");
    return counters_[e.index].get();
  }
  counters_.push_back(std::make_unique<Counter>());
  order_.push_back({Kind::kCounter, name, counters_.size() - 1});
  return counters_.back().get();
}

void MetricsRegistry::gauge(const std::string& name, GaugeFn fn) {
  require(fn != nullptr, "MetricsRegistry: null gauge callback");
  for (const Entry& e : order_) {
    require(e.name != name, "MetricsRegistry: duplicate gauge '" + name + "'");
  }
  gauges_.push_back(std::move(fn));
  order_.push_back({Kind::kGauge, name, gauges_.size() - 1});
}

MetricHistogram* MetricsRegistry::histogram(const std::string& name, double lo, double hi,
                                            std::size_t bin_count) {
  for (const Entry& e : order_) {
    if (e.name != name) continue;
    require(e.kind == Kind::kHistogram, "MetricsRegistry: '" + name + "' is not a histogram");
    MetricHistogram* h = histograms_[e.index].get();
    require(h->lo() == lo && h->hi() == hi && h->bin_count() == bin_count,
            "MetricsRegistry: histogram '" + name + "' re-registered with a different layout");
    return h;
  }
  histograms_.push_back(std::make_unique<MetricHistogram>(lo, hi, bin_count));
  order_.push_back({Kind::kHistogram, name, histograms_.size() - 1});
  return histograms_.back().get();
}

std::vector<std::string> MetricsRegistry::column_names() const {
  std::vector<std::string> names;
  names.reserve(order_.size());
  for (const Entry& e : order_) {
    if (e.kind == Kind::kHistogram) {
      names.push_back(e.name + ".count");
      names.push_back(e.name + ".mean");
      names.push_back(e.name + ".p50");
      names.push_back(e.name + ".p95");
    } else {
      names.push_back(e.name);
    }
  }
  return names;
}

void MetricsRegistry::sample_into(std::vector<double>& row) const {
  row.clear();
  for (const Entry& e : order_) {
    switch (e.kind) {
      case Kind::kCounter:
        row.push_back(counters_[e.index]->value());
        break;
      case Kind::kGauge:
        row.push_back(gauges_[e.index]());
        break;
      case Kind::kHistogram: {
        const MetricHistogram& h = *histograms_[e.index];
        row.push_back(static_cast<double>(h.total()));
        row.push_back(h.mean());
        row.push_back(h.quantile(0.50));
        row.push_back(h.quantile(0.95));
        break;
      }
    }
  }
}

// --- TimeSeriesStore ---------------------------------------------------------

TimeSeriesStore::TimeSeriesStore(TimeSeriesConfig config)
    : config_(config), effective_interval_(std::max<std::size_t>(1, config.interval_steps)) {
  require(config_.capacity >= 2, "TimeSeriesStore: capacity must be at least 2");
}

void TimeSeriesStore::sample(util::TimePoint t, const MetricsRegistry& registry) {
  const std::size_t step = step_counter_++;
  if (step % effective_interval_ != 0) return;

  registry.sample_into(row_scratch_);
  if (columns_ == 0) columns_ = row_scratch_.size();
  // A registry that grows columns after the first retained sample would skew
  // the table; instruments must register before sampling starts.
  require(row_scratch_.size() == columns_,
          "TimeSeriesStore: instrument registered after sampling started");

  times_.push_back(t);
  values_.insert(values_.end(), row_scratch_.begin(), row_scratch_.end());
  if (times_.size() >= config_.capacity) downsample();
}

void TimeSeriesStore::downsample() {
  // Keep every other retained row (the even-indexed ones, so the oldest
  // sample survives) and double the keep interval going forward.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < times_.size(); i += 2, ++kept) {
    times_[kept] = times_[i];
    if (kept != i) {
      std::copy_n(values_.begin() + static_cast<std::ptrdiff_t>(i * columns_), columns_,
                  values_.begin() + static_cast<std::ptrdiff_t>(kept * columns_));
    }
  }
  times_.resize(kept);
  values_.resize(kept * columns_);
  effective_interval_ *= 2;
}

namespace {

void append_number(std::ostringstream& out, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    out << static_cast<long long>(v);
  } else {
    out << v;
  }
}

}  // namespace

std::string TimeSeriesStore::to_csv(const MetricsRegistry& registry) const {
  std::ostringstream out;
  out.precision(12);
  out << "t_seconds";
  for (const std::string& name : registry.column_names()) out << ',' << name;
  out << '\n';
  for (std::size_t r = 0; r < rows(); ++r) {
    append_number(out, times_[r].seconds_since_epoch());
    for (std::size_t c = 0; c < columns_; ++c) {
      out << ',';
      append_number(out, value(r, c));
    }
    out << '\n';
  }
  return out.str();
}

std::string TimeSeriesStore::to_jsonl(const MetricsRegistry& registry) const {
  const std::vector<std::string> names = registry.column_names();
  std::ostringstream out;
  out.precision(12);
  for (std::size_t r = 0; r < rows(); ++r) {
    out << "{\"t_seconds\": ";
    append_number(out, times_[r].seconds_since_epoch());
    for (std::size_t c = 0; c < columns_; ++c) {
      out << ", \"" << names[c] << "\": ";
      const double v = value(r, c);
      if (std::isfinite(v)) {
        append_number(out, v);
      } else {
        out << "null";  // JSON has no NaN/Inf; keep the line parseable
      }
    }
    out << "}\n";
  }
  return out.str();
}

}  // namespace greenhpc::obs
