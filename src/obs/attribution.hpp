#pragma once
// AttributionLedger: time-resolved per-job energy/CO2/cost attribution.
//
// The accountant (telemetry/) answers "what did each job's own GPUs burn,
// grossed up by PUE" — Eq. 2's direct decomposition. This module answers the
// paper's full reporting question: where did *every* metered joule go? Three
// buckets per job lineage, each priced at the instant it was incurred:
//
//   direct     the accountant's facility-level charge, mirrored increment-
//              for-increment (same doubles, same order) so the per-region
//              direct totals equal the accountants' totals bit-for-bit.
//   overhead   network/checkpoint energy billed by the fleet coordinator:
//              admission transfers, migration snapshot (source) and
//              ship+restore (destination) — billed to the *owning lineage*,
//              so a job's footprint survives migration intact.
//   amortized  each step's residual grid draw (idle base power of
//              unallocated GPUs, cooling beyond the PUE gross-up, battery
//              round-trip losses) distributed over that step's running jobs
//              proportional to their facility share. Steps with no running
//              jobs park the residual in the region's unattributed bucket.
//              Battery discharge can make a step's residual negative; the
//              bucket is a signed correction, not a meter.
//
// Conservation invariants (GREENHPC_CHECK_INVARIANTS wires them in-run):
//   attribution.direct_identity   per region: sink direct total == accountant
//                                 totals (same additions, same order)
//   attribution.overhead_identity fleet: overhead total == transfer ledger
//   attribution.conservation      fleet: direct + overhead == accountant +
//                                 transfer totals (the headline identity)
//   attribution.residual_identity per region: amortized + unattributed ==
//                                 grid totals - accountant totals
//
// Threading contract (region-parallel stepping): each region's Datacenter
// touches only its own RegionAttributionSink between the coordinator's step
// barriers; lineage/overhead billing happens only in the coordinator's
// serial phases. Reports iterate sinks in region-index order (the PR 7
// trace-shard pattern), so sharded and serial runs render byte-identical
// attribution output.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "cluster/job.hpp"
#include "grid/connection.hpp"
#include "util/units.hpp"

namespace greenhpc::obs {

struct RunManifest;

/// Fleet-unique lineage key for a job at a region (the trace span_id scheme).
[[nodiscard]] constexpr std::uint64_t attribution_key(std::size_t region, cluster::JobId id) {
  return (static_cast<std::uint64_t>(region) << 40) | id;
}

/// One job's accrual at one region (a migrated lineage owns one record per
/// region it ran at; reports fold them into the root lineage).
struct AttributionRecord {
  std::uint64_t key = 0;
  cluster::UserId user = 0;
  cluster::JobClass job_class = cluster::JobClass::kTraining;
  util::Energy it_energy;
  grid::EnergyLedger direct;     ///< facility-level, accountant arithmetic
  grid::EnergyLedger amortized;  ///< share of the step residuals (signed)
  double gpu_hours = 0.0;
};

/// Per-region accrual sink. Owned by the AttributionLedger; during region-
/// parallel stepping only the owning region's thread touches it.
class RegionAttributionSink {
 public:
  explicit RegionAttributionSink(std::size_t region) : region_(region) {}

  /// Opens a step: resets the per-step facility-share scratch.
  void begin_step();

  /// Mirrors one accountant charge (identical argument values, called right
  /// next to EnergyAccountant::charge so the doubles match bit-for-bit).
  void charge(const cluster::Job& job, util::Energy it_energy, double pue,
              util::EnergyPrice price, util::CarbonIntensity intensity, double water_l,
              double gpu_hours);

  /// Closes a step against the grid meter's increment for the same step:
  /// the residual (draw minus this step's direct facility charges) is
  /// distributed over the step's charged jobs by facility share, or parked
  /// in the unattributed bucket when nothing ran.
  void settle_step(const grid::EnergyLedger& draw);

  [[nodiscard]] std::size_t region() const { return region_; }
  [[nodiscard]] const std::deque<AttributionRecord>& records() const { return records_; }
  [[nodiscard]] const grid::EnergyLedger& direct_total() const { return direct_total_; }
  [[nodiscard]] const grid::EnergyLedger& amortized_total() const { return amortized_total_; }
  [[nodiscard]] const grid::EnergyLedger& unattributed() const { return unattributed_; }

#ifdef GREENHPC_CHECK_INVARIANTS
  /// Test seam: skews the direct total so attribution.direct_identity (and
  /// the fleet conservation check) trips on the next deep check.
  void debug_skew_direct(util::Energy skew) { direct_total_.energy += skew; }
#endif

 private:
  std::size_t region_;
  // Same layout rationale as EnergyAccountant: JobIds are dense per-site, so
  // a slot vector replaces the hash lookup on the hottest telemetry path;
  // the deque keeps record addresses stable and charge order deterministic.
  std::deque<AttributionRecord> records_;
  std::vector<std::uint32_t> slot_by_id_;  ///< JobId -> slot + 1 (0 = none)
  /// (slot, facility joules) charged this step — the amortization weights.
  std::vector<std::pair<std::uint32_t, double>> step_slots_;
  grid::EnergyLedger step_direct_;  ///< facility charges within the open step
  grid::EnergyLedger direct_total_;
  grid::EnergyLedger amortized_total_;
  grid::EnergyLedger unattributed_;
};

// --- report -----------------------------------------------------------------

/// One job lineage, folded across every region it ran at.
struct AttributionJobRow {
  std::uint64_t key = 0;     ///< root lineage key (origin region | origin id)
  std::size_t region = 0;    ///< origin region (key >> 40)
  cluster::UserId user = 0;
  cluster::JobClass job_class = cluster::JobClass::kTraining;
  int segments = 0;    ///< per-region records folded in (1 = never migrated)
  int migrations = 0;  ///< checkpoint moves billed to this lineage
  util::Energy it_energy;
  grid::EnergyLedger direct;
  grid::EnergyLedger overhead;
  grid::EnergyLedger amortized;
  double gpu_hours = 0.0;
};

struct AttributionUserRow {
  cluster::UserId user = 0;
  std::size_t jobs = 0;
  double gpu_hours = 0.0;
  grid::EnergyLedger direct;
  grid::EnergyLedger overhead;
  grid::EnergyLedger amortized;
};

struct AttributionRegionRow {
  std::size_t region = 0;
  grid::EnergyLedger direct;
  grid::EnergyLedger overhead;  ///< transfer energy billed at this region
  grid::EnergyLedger amortized;
  grid::EnergyLedger unattributed;
};

struct AttributionReport {
  std::vector<AttributionJobRow> jobs;      ///< sorted by lineage key
  std::vector<AttributionUserRow> users;    ///< sorted by user id
  std::vector<AttributionRegionRow> regions;  ///< region-index order
  grid::EnergyLedger direct_total;
  grid::EnergyLedger overhead_total;
  grid::EnergyLedger amortized_total;
  grid::EnergyLedger unattributed_total;
};

/// The ledgers the conservation re-check compares the report against,
/// embedded in the JSON export so the artifact is self-checking.
struct AttributionReference {
  grid::EnergyLedger accountant;  ///< sum of the regions' accountant totals
  grid::EnergyLedger transfer;    ///< the fleet transfer ledger
  grid::EnergyLedger grid;        ///< sum of the regions' grid meter totals
};

class AttributionLedger {
 public:
  AttributionLedger() { ensure_sinks(1); }

  /// Grows the per-region sink set (idempotent; sink addresses are stable).
  void ensure_sinks(std::size_t count);
  [[nodiscard]] std::size_t sink_count() const { return sinks_.size(); }
  [[nodiscard]] RegionAttributionSink* sink(std::size_t region) {
    return region < sinks_.size() ? sinks_[region].get() : nullptr;
  }
  [[nodiscard]] const RegionAttributionSink* sink(std::size_t region) const {
    return region < sinks_.size() ? sinks_[region].get() : nullptr;
  }

  // --- lineage/overhead API (coordinator serial phases only) ----------------

  /// The root lineage key `key` currently belongs to (identity for jobs that
  /// never migrated).
  [[nodiscard]] std::uint64_t resolve(std::uint64_t key) const;

  /// Records that the job behind `child` is a migrated continuation of the
  /// lineage rooted at `root` (called when a checkpoint resumes).
  void link(std::uint64_t child, std::uint64_t root) { alias_[child] = root; }

  /// Bills an admission-transfer increment (network energy for routing a job
  /// off the home region) to the routed job, at the billing region.
  void bill_admission(std::uint64_t key, std::size_t region, cluster::UserId user,
                      const grid::EnergyLedger& increment);

  /// Bills a migration snapshot (source side; counts one migration against
  /// the lineage) — `key` must already be resolved to the lineage root.
  void bill_snapshot(std::uint64_t root, std::size_t region, cluster::UserId user,
                     const grid::EnergyLedger& increment);

  /// Bills a migration delivery (ship + restore at the destination).
  void bill_delivery(std::uint64_t root, std::size_t region, cluster::UserId user,
                     const grid::EnergyLedger& increment);

  [[nodiscard]] const grid::EnergyLedger& overhead_total() const { return overhead_total_; }
  [[nodiscard]] const grid::EnergyLedger& region_overhead(std::size_t region) const {
    return overhead_by_region_.at(region);
  }

  /// Folds every sink (region-index order) and the overhead map into the
  /// per-lineage / per-user / per-region report. Deterministic: sinks are
  /// scanned in region order, records in charge order, maps in key order.
  [[nodiscard]] AttributionReport report() const;

 private:
  struct OverheadEntry {
    cluster::UserId user = 0;
    int migrations = 0;
    grid::EnergyLedger ledger;
  };
  void bill(std::uint64_t key, std::size_t region, cluster::UserId user,
            const grid::EnergyLedger& increment, int migration_delta);

  std::vector<std::unique_ptr<RegionAttributionSink>> sinks_;
  /// Migrated continuation -> lineage root (resolve() follows one hop: roots
  /// are always fully resolved before linking, so chains never form).
  std::map<std::uint64_t, std::uint64_t> alias_;
  std::map<std::uint64_t, OverheadEntry> overhead_;  ///< by lineage root key
  std::vector<grid::EnergyLedger> overhead_by_region_;
  grid::EnergyLedger overhead_total_;
};

// --- exports ----------------------------------------------------------------

/// Full per-lineage table as CSV (17-significant-digit raw units so sharded
/// vs serial byte-equality is checkable on the artifact). `manifest` non-null
/// prepends a `# manifest: {...}` comment line.
[[nodiscard]] std::string attribution_csv(const AttributionReport& report,
                                          const RunManifest* manifest = nullptr);

/// Line-disciplined JSON export (one object per line: manifest, header,
/// reference ledgers, totals, per-user rows, per-region rows, top lineages
/// by energy). Self-checking: trace_report --attrib re-derives the
/// conservation identities from the embedded reference lines alone.
[[nodiscard]] std::string attribution_json(const AttributionReport& report,
                                           const AttributionReference& reference,
                                           const RunManifest* manifest = nullptr,
                                           std::size_t top_jobs = 20);

}  // namespace greenhpc::obs
