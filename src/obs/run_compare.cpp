#include "obs/run_compare.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <sstream>

#include "stats/descriptive.hpp"

namespace greenhpc::obs {

// --- JSON parser -------------------------------------------------------------

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    std::optional<JsonValue> value = parse_value();
    if (value.has_value()) {
      skip_ws();
      if (pos_ != text_.size()) fail("trailing content after document");
    }
    if (!error_.empty()) {
      if (error != nullptr) *error = error_ + " at byte " + std::to_string(pos_);
      return std::nullopt;
    }
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  void fail(const std::string& message) {
    if (error_.empty()) error_ = message;
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't': return parse_literal("true", [] (JsonValue& v) {
        v.kind = JsonValue::Kind::Bool;
        v.boolean = true;
      });
      case 'f': return parse_literal("false", [] (JsonValue& v) {
        v.kind = JsonValue::Kind::Bool;
        v.boolean = false;
      });
      case 'n': return parse_literal("null", [] (JsonValue& v) {
        v.kind = JsonValue::Kind::Null;
      });
      default: return parse_number();
    }
  }

  template <typename Init>
  std::optional<JsonValue> parse_literal(std::string_view word, Init init) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("invalid literal");
      return std::nullopt;
    }
    pos_ += word.size();
    JsonValue v;
    init(v);
    return v;
  }

  std::optional<JsonValue> parse_number() {
    const char* start = text_.data() + pos_;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start) {
      fail("invalid number");
      return std::nullopt;
    }
    pos_ += static_cast<std::size_t>(end - start);
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = value;
    return v;
  }

  std::optional<JsonValue> parse_string() {
    ++pos_;  // opening quote
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': v.text += '"'; break;
          case '\\': v.text += '\\'; break;
          case '/': v.text += '/'; break;
          case 'n': v.text += '\n'; break;
          case 't': v.text += '\t'; break;
          case 'r': v.text += '\r'; break;
          default:
            // \uXXXX and friends never appear in this repo's writers.
            fail("unsupported escape");
            return std::nullopt;
        }
      } else {
        v.text += c;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> parse_array() {
    ++pos_;  // '['
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      std::optional<JsonValue> element = parse_value();
      if (!element.has_value()) return std::nullopt;
      v.array.push_back(std::move(*element));
      skip_ws();
      if (pos_ >= text_.size()) {
        fail("unterminated array");
        return std::nullopt;
      }
      const char c = text_[pos_++];
      if (c == ']') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
        return std::nullopt;
      }
    }
  }

  std::optional<JsonValue> parse_object() {
    ++pos_;  // '{'
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected object key");
        return std::nullopt;
      }
      std::optional<JsonValue> key = parse_string();
      if (!key.has_value()) return std::nullopt;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        fail("expected ':'");
        return std::nullopt;
      }
      ++pos_;
      std::optional<JsonValue> value = parse_value();
      if (!value.has_value()) return std::nullopt;
      v.object.emplace_back(std::move(key->text), std::move(*value));
      skip_ws();
      if (pos_ >= text_.size()) {
        fail("unterminated object");
        return std::nullopt;
      }
      const char c = text_[pos_++];
      if (c == '}') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
        return std::nullopt;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

std::string fmt_integer(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Appends every numeric member of `line` as `<prefix><key>` (skipping the
/// keys named in `skip`, which identify the row rather than measure it).
void append_numeric_fields(const JsonValue& line, const std::string& prefix,
                           std::initializer_list<std::string_view> skip,
                           std::vector<ArtifactSeries>& out) {
  for (const auto& [key, value] : line.object) {
    if (!value.is_number()) continue;
    if (std::find(skip.begin(), skip.end(), key) != skip.end()) continue;
    out.push_back({prefix + key, {value.number}});
  }
}

void extract_experiment(const JsonValue& doc, ArtifactData& out) {
  out.kind = "experiment";
  const JsonValue* metrics = doc.find("metrics");
  if (metrics == nullptr || metrics->kind != JsonValue::Kind::Array) {
    out.errors.push_back("experiment document has no metrics array");
    return;
  }
  for (const JsonValue& metric : metrics->array) {
    const JsonValue* name = metric.find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::String) {
      out.errors.push_back("experiment metric entry without a name");
      continue;
    }
    ArtifactSeries series;
    series.name = name->text;
    if (const JsonValue* values = metric.find("values");
        values != nullptr && values->kind == JsonValue::Kind::Array &&
        !values->array.empty()) {
      for (const JsonValue& v : values->array) {
        if (v.is_number()) series.values.push_back(v.number);
      }
    }
    if (series.values.empty()) {
      const JsonValue* mean = metric.find("mean");
      if (mean != nullptr && mean->is_number()) series.values.push_back(mean->number);
    }
    if (series.values.empty()) {
      out.errors.push_back("experiment metric '" + series.name + "' has no values");
      continue;
    }
    out.series.push_back(std::move(series));
  }
}

void extract_perf(const JsonValue& doc, ArtifactData& out) {
  out.kind = "perf";
  for (const auto& [key, value] : doc.object) {
    if (key == "manifest") continue;
    if (value.is_number()) out.series.push_back({key, {value.number}});
  }
}

void extract_attribution_line(const JsonValue& line, ArtifactData& out) {
  if (const JsonValue* kind = line.find("kind"); kind != nullptr) {
    append_numeric_fields(line, "attribution.", {"schema_version"}, out.series);
    return;
  }
  if (const JsonValue* ref = line.find("reference");
      ref != nullptr && ref->kind == JsonValue::Kind::String) {
    append_numeric_fields(line, "reference." + ref->text + ".", {}, out.series);
    return;
  }
  if (const JsonValue* total = line.find("total");
      total != nullptr && total->kind == JsonValue::Kind::String) {
    append_numeric_fields(line, "total." + total->text + ".", {}, out.series);
    return;
  }
  // Job rows also carry "user" and "region" identity keys, so they must be
  // classified before the narrower row kinds.
  if (const JsonValue* job = line.find("job"); job != nullptr && job->is_number()) {
    append_numeric_fields(line, "job." + fmt_integer(job->number) + ".",
                          {"job", "user", "region"}, out.series);
    return;
  }
  if (const JsonValue* user = line.find("user"); user != nullptr && user->is_number()) {
    append_numeric_fields(line, "user." + fmt_integer(user->number) + ".", {"user"},
                          out.series);
    return;
  }
  if (const JsonValue* region = line.find("region");
      region != nullptr && region->is_number()) {
    append_numeric_fields(line, "region." + fmt_integer(region->number) + ".", {"region"},
                          out.series);
    return;
  }
  out.errors.push_back("unrecognized attribution line shape");
}

void extract_metrics_line(const JsonValue& line,
                          std::vector<ArtifactSeries>& columns,
                          std::map<std::string, std::size_t>& index) {
  for (const auto& [key, value] : line.object) {
    if (!value.is_number()) continue;  // nulls: gaps simply shorten a column
    const auto [it, inserted] = index.emplace(key, columns.size());
    if (inserted) columns.push_back({key, {}});
    columns[it->second].values.push_back(value.number);
  }
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  return JsonParser(text).parse(error);
}

ArtifactData load_artifact(std::istream& in) {
  ArtifactData out;
  out.kind = "unknown";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  // Single-document artifacts (experiment JSON, BENCH_PERF.json) parse whole;
  // everything else is JSON-object-per-line.
  if (std::optional<JsonValue> doc = parse_json(text, nullptr);
      doc.has_value() && doc->is_object()) {
    if (const JsonValue* manifest = doc->find("manifest");
        manifest != nullptr && manifest->is_object()) {
      out.manifest = *manifest;
    }
    if (doc->find("metrics") != nullptr) {
      extract_experiment(*doc, out);
    } else {
      extract_perf(*doc, out);
    }
    return out;
  }

  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  bool header_seen = false;
  std::vector<ArtifactSeries> columns;
  std::map<std::string, std::size_t> column_index;
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string error;
    std::optional<JsonValue> parsed = parse_json(line, &error);
    if (!parsed.has_value() || !parsed->is_object()) {
      out.errors.push_back("line " + std::to_string(line_no) + ": " +
                           (error.empty() ? "not a JSON object" : error));
      continue;
    }
    if (const JsonValue* manifest = parsed->find("manifest");
        manifest != nullptr && manifest->is_object() && parsed->object.size() == 1) {
      out.manifest = *manifest;
      continue;
    }
    if (!header_seen) {
      header_seen = true;
      if (const JsonValue* kind = parsed->find("kind");
          kind != nullptr && kind->kind == JsonValue::Kind::String) {
        out.kind = kind->text;
      } else if (parsed->find("t_seconds") != nullptr) {
        out.kind = "metrics";
      }
    }
    if (out.kind == "attribution") {
      extract_attribution_line(*parsed, out);
    } else if (out.kind == "metrics") {
      extract_metrics_line(*parsed, columns, column_index);
    } else {
      out.errors.push_back("line " + std::to_string(line_no) +
                           ": unrecognized artifact line");
    }
  }
  if (out.kind == "metrics") out.series = std::move(columns);
  if (!header_seen && out.errors.empty()) out.errors.push_back("empty artifact");
  return out;
}

// --- diff --------------------------------------------------------------------

bool DiffReport::regression() const {
  if (!errors.empty()) return true;
  if (fail_on_missing && (!only_base.empty() || !only_cand.empty())) return true;
  return std::any_of(deltas.begin(), deltas.end(),
                     [](const MetricDelta& d) { return d.flagged; });
}

DiffReport diff_artifacts(const ArtifactData& base, const ArtifactData& cand,
                          const DiffOptions& options) {
  DiffReport report;
  report.base_kind = base.kind;
  report.cand_kind = cand.kind;
  report.fail_on_missing = options.fail_on_missing;
  for (const std::string& e : base.errors) report.errors.push_back("base: " + e);
  for (const std::string& e : cand.errors) report.errors.push_back("candidate: " + e);
  if (base.kind != cand.kind) {
    report.errors.push_back("artifact kind mismatch: base is '" + base.kind +
                            "', candidate is '" + cand.kind + "'");
    return report;
  }
  if (base.manifest.has_value() && cand.manifest.has_value()) {
    const JsonValue* bv = base.manifest->find("schema_version");
    const JsonValue* cv = cand.manifest->find("schema_version");
    if (bv != nullptr && cv != nullptr && bv->is_number() && cv->is_number() &&
        bv->number != cv->number) {
      report.errors.push_back("manifest schema_version mismatch: base " +
                              fmt_integer(bv->number) + " vs candidate " +
                              fmt_integer(cv->number));
    }
  }

  std::map<std::string, const ArtifactSeries*> cand_by_name;
  for (const ArtifactSeries& s : cand.series) cand_by_name.emplace(s.name, &s);

  for (const ArtifactSeries& b : base.series) {
    const auto it = cand_by_name.find(b.name);
    if (it == cand_by_name.end()) {
      report.only_base.push_back(b.name);
      continue;
    }
    const ArtifactSeries& c = *it->second;
    cand_by_name.erase(it);

    MetricDelta d;
    d.name = b.name;
    d.base_mean = stats::mean(b.values);
    d.cand_mean = stats::mean(c.values);
    d.abs_delta = d.cand_mean - d.base_mean;
    const double denom = std::max(std::abs(d.base_mean), std::abs(d.cand_mean));
    d.rel_delta = denom > 0.0 ? std::abs(d.abs_delta) / denom : 0.0;
    const auto tol = options.per_metric.find(b.name);
    d.tolerance = tol != options.per_metric.end() ? tol->second : options.rel_tol;
    if (b.values.size() == c.values.size() && b.values.size() >= 2) {
      // Seed-paired: replica i vs replica i. The mean of the pairwise
      // differences equals abs_delta; the CI is what pairing buys us.
      std::vector<double> diffs(b.values.size());
      for (std::size_t i = 0; i < diffs.size(); ++i) diffs[i] = c.values[i] - b.values[i];
      d.paired = true;
      d.pairs = diffs.size();
      d.paired_ci95_half = stats::ci95_half_width(diffs);
    }
    d.flagged = d.rel_delta > d.tolerance &&
                (!d.paired || std::abs(d.abs_delta) > d.paired_ci95_half);
    report.deltas.push_back(std::move(d));
  }
  for (const ArtifactSeries& c : cand.series) {
    if (cand_by_name.count(c.name) != 0) report.only_cand.push_back(c.name);
  }
  return report;
}

// --- rendering ---------------------------------------------------------------

namespace {

std::string fmt_compact(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string num17(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void append_delta_row(std::ostringstream& os, const MetricDelta& d) {
  os << "| " << d.name << " | " << fmt_compact(d.base_mean) << " | "
     << fmt_compact(d.cand_mean) << " | " << fmt_compact(d.abs_delta) << " | "
     << fmt_compact(d.rel_delta) << " | " << fmt_compact(d.tolerance) << " | ";
  if (d.paired) {
    os << "±" << fmt_compact(d.paired_ci95_half) << " (n=" << d.pairs << ")";
  } else {
    os << "-";
  }
  os << " |\n";
}

}  // namespace

std::string render_diff_markdown(const DiffReport& report) {
  std::ostringstream os;
  os << "# run_diff: " << (report.regression() ? "REGRESSION" : "PASS") << "\n\n";
  os << "base: " << report.base_kind << ", candidate: " << report.cand_kind << ", metrics: "
     << report.deltas.size() << "\n";
  if (!report.errors.empty()) {
    os << "\n## Errors\n\n";
    for (const std::string& e : report.errors) os << "- " << e << "\n";
  }
  std::vector<const MetricDelta*> flagged;
  for (const MetricDelta& d : report.deltas) {
    if (d.flagged) flagged.push_back(&d);
  }
  const char* header =
      "| metric | base | candidate | delta | rel | tol | paired CI95 |\n"
      "|---|---|---|---|---|---|---|\n";
  if (!flagged.empty()) {
    os << "\n## Flagged (" << flagged.size() << ")\n\n" << header;
    for (const MetricDelta* d : flagged) append_delta_row(os, *d);
  }
  if (!report.only_base.empty() || !report.only_cand.empty()) {
    os << "\n## Series mismatch"
       << (report.fail_on_missing ? "" : " (informational)") << "\n\n";
    for (const std::string& name : report.only_base)
      os << "- missing from candidate: " << name << "\n";
    for (const std::string& name : report.only_cand)
      os << "- missing from base: " << name << "\n";
  }
  os << "\n## All deltas\n\n" << header;
  for (const MetricDelta& d : report.deltas) append_delta_row(os, d);
  return os.str();
}

std::string render_diff_json(const DiffReport& report) {
  std::ostringstream os;
  os << "{\"regression\": " << (report.regression() ? "true" : "false")
     << ", \"base_kind\": \"" << json_escape(report.base_kind)
     << "\", \"cand_kind\": \"" << json_escape(report.cand_kind) << "\", \"errors\": [";
  for (std::size_t i = 0; i < report.errors.size(); ++i) {
    if (i > 0) os << ", ";
    os << "\"" << json_escape(report.errors[i]) << "\"";
  }
  os << "], \"only_base\": [";
  for (std::size_t i = 0; i < report.only_base.size(); ++i) {
    if (i > 0) os << ", ";
    os << "\"" << json_escape(report.only_base[i]) << "\"";
  }
  os << "], \"only_cand\": [";
  for (std::size_t i = 0; i < report.only_cand.size(); ++i) {
    if (i > 0) os << ", ";
    os << "\"" << json_escape(report.only_cand[i]) << "\"";
  }
  os << "], \"deltas\": [";
  for (std::size_t i = 0; i < report.deltas.size(); ++i) {
    const MetricDelta& d = report.deltas[i];
    if (i > 0) os << ", ";
    os << "{\"name\": \"" << json_escape(d.name) << "\", \"base_mean\": "
       << num17(d.base_mean) << ", \"cand_mean\": " << num17(d.cand_mean)
       << ", \"abs_delta\": " << num17(d.abs_delta) << ", \"rel_delta\": "
       << num17(d.rel_delta) << ", \"tolerance\": " << num17(d.tolerance)
       << ", \"paired\": " << (d.paired ? "true" : "false") << ", \"pairs\": " << d.pairs
       << ", \"paired_ci95_half\": " << num17(d.paired_ci95_half) << ", \"flagged\": "
       << (d.flagged ? "true" : "false") << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace greenhpc::obs
