#include "obs/trace.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace greenhpc::obs {

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void TraceWriter::complete(std::string name, std::string cat, int pid, int tid, double ts_us,
                           double dur_us, Args args) {
  Event e;
  e.ph = 'X';
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.pid = pid;
  e.tid = tid;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceWriter::instant(std::string name, std::string cat, int pid, int tid, double ts_us,
                          Args args) {
  Event e;
  e.ph = 'i';
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.pid = pid;
  e.tid = tid;
  e.ts_us = ts_us;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceWriter::async_begin(std::string name, std::string cat, int pid, std::uint64_t id,
                              double ts_us, Args args) {
  Event e;
  e.ph = 'b';
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.pid = pid;
  e.id = id;
  e.has_id = true;
  e.ts_us = ts_us;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceWriter::async_end(std::string name, std::string cat, int pid, std::uint64_t id,
                            double ts_us, Args args) {
  Event e;
  e.ph = 'e';
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.pid = pid;
  e.id = id;
  e.has_id = true;
  e.ts_us = ts_us;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceWriter::process_name(int pid, std::string name) {
  Event e;
  e.ph = 'M';
  e.name = "process_name";
  e.pid = pid;
  e.args.push_back(arg("name", std::move(name)));
  events_.push_back(std::move(e));
}

void TraceWriter::thread_name(int pid, int tid, std::string name) {
  Event e;
  e.ph = 'M';
  e.name = "thread_name";
  e.pid = pid;
  e.tid = tid;
  e.args.push_back(arg("name", std::move(name)));
  events_.push_back(std::move(e));
}

namespace {

void write_number(std::ostream& out, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    out << static_cast<long long>(v);
  } else {
    out << v;
  }
}

}  // namespace

void TraceWriter::drain_into(TraceWriter& dst) {
  if (events_.empty()) return;
  if (dst.events_.empty()) {
    dst.events_ = std::move(events_);
  } else {
    dst.events_.reserve(dst.events_.size() + events_.size());
    for (Event& e : events_) dst.events_.push_back(std::move(e));
  }
  events_.clear();
}

void TraceWriter::write(std::ostream& out) const {
  out.precision(12);
  out << "[\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    out << "{\"name\": \"" << json_escape(e.name) << "\", \"ph\": \"" << e.ph << "\"";
    if (!e.cat.empty()) out << ", \"cat\": \"" << json_escape(e.cat) << "\"";
    out << ", \"pid\": " << e.pid << ", \"tid\": " << e.tid;
    if (e.ph != 'M') {
      out << ", \"ts\": ";
      write_number(out, e.ts_us);
    }
    if (e.ph == 'X') {
      out << ", \"dur\": ";
      write_number(out, e.dur_us);
    }
    if (e.has_id) out << ", \"id\": \"" << e.id << "\"";
    if (e.ph == 'i') out << ", \"s\": \"t\"";
    if (!e.args.empty()) {
      out << ", \"args\": {";
      for (std::size_t a = 0; a < e.args.size(); ++a) {
        if (a > 0) out << ", ";
        const TraceArg& ta = e.args[a];
        out << "\"" << json_escape(ta.key) << "\": ";
        if (ta.is_num) {
          if (std::isfinite(ta.num)) {
            write_number(out, ta.num);
          } else {
            out << "null";
          }
        } else {
          out << "\"" << json_escape(ta.str) << "\"";
        }
      }
      out << "}";
    }
    out << "}";
    if (i + 1 < events_.size()) out << ",";
    out << "\n";
  }
  out << "]\n";
}

}  // namespace greenhpc::obs
