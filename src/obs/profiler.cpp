#include "obs/profiler.hpp"

#include <sstream>

namespace greenhpc::obs {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kObserveRefit: return "observe_refit";
    case Phase::kRouting: return "routing";
    case Phase::kMigration: return "migration";
    case Phase::kScheduling: return "scheduling";
    case Phase::kProgressAccounting: return "progress_accounting";
  }
  return "unknown";
}

double PhaseProfiler::total_seconds() const {
  double total = 0.0;
  for (const PhaseStats& s : stats_) total += s.wall_seconds;
  return total;
}

std::string PhaseProfiler::render() const {
  const double total = total_seconds();
  std::ostringstream out;
  out.precision(4);
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const PhaseStats& s = stats_[i];
    out << phase_name(static_cast<Phase>(i)) << ": " << s.wall_seconds << " s ("
        << (total > 0.0 ? 100.0 * s.wall_seconds / total : 0.0) << "%, " << s.calls
        << " scopes)\n";
  }
  return out.str();
}

}  // namespace greenhpc::obs
