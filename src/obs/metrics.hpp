#pragma once
// Metrics pipeline: the per-step quantitative half of the flight recorder.
//
// Sec. IV-B of the paper asks facilities to ship "analytical tools /
// instrumentation / logging" so reporting is a byproduct of running, not an
// afterthought; Green AI makes the same ask from the measurement side
// (efficiency claims need continuously reported cost curves, not one summary
// number). The MetricsRegistry is where every subsystem — Datacenter,
// Cluster, schedulers, routers, the MigrationPlanner, the ForecasterHub —
// registers named instruments once at attach time:
//
//   counters    push-model monotonic accumulators (jobs started, checkpoints
//               shipped), bumped on the event path only when a recorder is
//               attached;
//   gauges      pull-model callbacks evaluated at sample time (queue depth,
//               free GPUs, instantaneous carbon intensity) — registration
//               costs one closure, sampling costs one call;
//   histograms  fixed-bin distributions (queue waits, job runtimes) with
//               exact running mean and bin-approximate quantiles, mergeable
//               across instances with identical layouts.
//
// A TimeSeriesStore samples every instrument each coordinator step (at a
// configurable step interval) into a bounded ring: when the retained rows
// hit capacity the store halves its resolution — drops every other retained
// row and doubles the keep interval — so an arbitrarily long run fits a
// fixed budget while the retained rows stay evenly spaced. Export is CSV
// (one row per retained sample) or JSONL (one object per sample, the format
// the CI schema check validates).
//
// Everything here is observational: instruments read simulator state and
// never mutate it, so an instrumented run's simulated output is bit-identical
// to an uninstrumented one (pinned by the obs tests).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/calendar.hpp"

namespace greenhpc::obs {

/// Push-model monotonic accumulator. Stable address once registered.
class Counter {
 public:
  void add(double delta = 1.0) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bin histogram with exact running mean and bin-approximate
/// quantiles. Two instances with identical [lo, hi) x bin_count layouts can
/// be merged (per-region distributions folding into a fleet view).
class MetricHistogram {
 public:
  MetricHistogram(double lo, double hi, std::size_t bin_count);

  void add(double value);
  /// Folds `other` into this histogram; throws on a layout mismatch.
  void merge(const MetricHistogram& other);

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Exact mean of every added value (0 when empty).
  [[nodiscard]] double mean() const;
  /// Bin-approximate quantile (linear within the landing bin; underflow
  /// maps to lo, overflow to hi; 0 when empty). q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

/// Named instruments, registered once, sampled every step. Registration
/// order fixes the export column order (deterministic output).
class MetricsRegistry {
 public:
  using GaugeFn = std::function<double()>;

  /// Registers (or re-fetches — counters may be shared by name) a counter.
  Counter* counter(const std::string& name);
  /// Registers a gauge callback; duplicate names throw (two subsystems
  /// silently fighting over one column is a bug).
  void gauge(const std::string& name, GaugeFn fn);
  /// Registers (or re-fetches, layouts must match) a histogram. Histograms
  /// expand to four sampled columns: .count, .mean, .p50, .p95.
  MetricHistogram* histogram(const std::string& name, double lo, double hi,
                             std::size_t bin_count);

  [[nodiscard]] std::size_t instrument_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Sampled column names, in registration order.
  [[nodiscard]] std::vector<std::string> column_names() const;
  /// Evaluates every instrument into `row` (resized to the column count).
  void sample_into(std::vector<double>& row) const;

 private:
  /// One registered instrument in registration order (indexes into the
  /// per-kind stores; deques would also work but the stores are
  /// pointer-stable unique_ptrs for the handle-returning API).
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;
    std::size_t index;
  };

  std::vector<Entry> order_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<GaugeFn> gauges_;
  std::vector<std::unique_ptr<MetricHistogram>> histograms_;
};

/// Bounded per-step time series of every registered instrument.
struct TimeSeriesConfig {
  /// Sample every Nth step (the CLI's --metrics-interval).
  std::size_t interval_steps = 1;
  /// Retained-row budget; on overflow the store drops every other row and
  /// doubles its effective interval (downsampling, oldest spacing preserved).
  std::size_t capacity = 4096;
};

class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(TimeSeriesConfig config = {});

  /// Offers one step's sample; the store keeps it when the step counter
  /// lands on the current effective interval.
  void sample(util::TimePoint t, const MetricsRegistry& registry);

  [[nodiscard]] std::size_t rows() const { return times_.size(); }
  [[nodiscard]] std::size_t columns() const { return columns_; }
  /// Effective sampling interval in steps (grows by doubling on overflow).
  [[nodiscard]] std::size_t effective_interval() const { return effective_interval_; }
  [[nodiscard]] util::TimePoint time(std::size_t row) const { return times_.at(row); }
  [[nodiscard]] double value(std::size_t row, std::size_t col) const {
    return values_.at(row * columns_ + col);
  }

  /// CSV: "t_seconds,<col>,..." header then one row per retained sample.
  [[nodiscard]] std::string to_csv(const MetricsRegistry& registry) const;
  /// JSONL: one {"t_seconds": ..., "<col>": ...} object per line.
  [[nodiscard]] std::string to_jsonl(const MetricsRegistry& registry) const;

 private:
  void downsample();

  TimeSeriesConfig config_;
  std::size_t columns_ = 0;
  std::size_t step_counter_ = 0;
  std::size_t effective_interval_;
  std::vector<util::TimePoint> times_;
  std::vector<double> values_;  ///< row-major, rows() x columns()
  std::vector<double> row_scratch_;
};

}  // namespace greenhpc::obs
