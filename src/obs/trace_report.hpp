#pragma once
// Trace-report library: parses and summarizes the flight recorder's output
// files, shared by the `tools/trace_report` CLI and the obs round-trip
// tests.
//
// The parser is deliberately minimal: one tolerant JSON-object-per-line
// reader that understands the flat fields TraceWriter emits (name, ph, cat,
// pid, tid, ts, dur, id) and skips the nested args object. It is not a
// general JSON parser — it only needs to round-trip this repo's own writer
// and to flag schema violations in CI.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace greenhpc::obs {

/// One parsed trace event (flat fields only; args are not retained).
struct ParsedEvent {
  char ph = '?';
  std::string name;
  std::string cat;
  int pid = 0;
  int tid = 0;
  std::string id;
  double ts_us = 0.0;
  double dur_us = 0.0;
};

/// Aggregated duration statistics for one event name.
struct SpanStats {
  std::uint64_t count = 0;
  double total_us = 0.0;
  double max_us = 0.0;
  double mean_us() const { return count > 0 ? total_us / static_cast<double>(count) : 0.0; }
};

struct TraceParseResult {
  std::vector<ParsedEvent> events;
  std::map<char, std::uint64_t> count_by_ph;
  std::map<std::string, std::uint64_t> count_by_cat;
  /// Complete-span ("X") stats keyed by event name.
  std::map<std::string, SpanStats> complete_spans;
  /// Async ("b"/"e") span stats keyed by category; only matched pairs count.
  std::map<std::string, SpanStats> async_spans;
  /// Async begins that never saw a matching end, per category.
  std::map<std::string, std::uint64_t> unmatched_async;
  /// Schema violations (bad JSON line, missing required field, async end
  /// with no begin, negative duration...), one message per problem.
  std::vector<std::string> errors;

  [[nodiscard]] bool ok() const { return errors.empty(); }
};

/// Parses a trace file (the JSON-array-one-event-per-line format
/// TraceWriter emits) and aggregates it. Never throws on malformed input —
/// problems land in `errors`.
[[nodiscard]] TraceParseResult summarize_trace(std::istream& in);

/// Human-readable multi-line report of a parse result.
[[nodiscard]] std::string render_trace_report(const TraceParseResult& result);

/// Validates a metrics JSONL file: every line a flat JSON object, all lines
/// sharing the first line's key set, every value a number or null, and a
/// "t_seconds" key present. Returns problems (empty == valid).
[[nodiscard]] std::vector<std::string> validate_metrics_jsonl(std::istream& in);

/// As above, with provenance awareness: a leading {"manifest": {...}} header
/// line is validated (schema version, required keys) instead of tripping the
/// flat-object rule, and a *missing* manifest is appended to `warnings`
/// (pre-manifest artifacts stay valid) rather than failing.
[[nodiscard]] std::vector<std::string> validate_metrics_jsonl(
    std::istream& in, std::vector<std::string>* warnings);

/// Validates an attribution JSONL export (`--attrib`): manifest header (via
/// `warnings`, like metrics), schema version, line shapes, row counts against
/// the header, and the conservation identities re-checked from the artifact
/// alone (direct == accountant reference, overhead == transfer reference,
/// direct + amortized + unattributed == grid reference, and per-region /
/// per-user rollups == totals), each within the invariant tolerance (1e-9
/// relative). Returns problems (empty == valid).
[[nodiscard]] std::vector<std::string> validate_attribution_jsonl(
    std::istream& in, std::vector<std::string>* warnings = nullptr);

/// Validates one rendered manifest JSON object (a RunManifest::to_json()
/// string): required keys with the right types, and schema_version ==
/// kSchemaVersion (an old reader must refuse a newer format, not misread it).
[[nodiscard]] std::vector<std::string> validate_manifest_text(const std::string& text);

/// Extracts the first embedded manifest object from raw artifact text — a
/// `"manifest": {...}` key (JSONL headers, experiment JSON, the trace's
/// run_manifest metadata line, BENCH_PERF.json) or a `# manifest: {...}` CSV
/// comment. Returns the object's text, or "" when the artifact carries none.
[[nodiscard]] std::string extract_manifest_text(const std::string& text);

}  // namespace greenhpc::obs
