#pragma once
// Run provenance manifests: the self-description header every export carries.
//
// The paper's Sec. IV-B ask is shareable, analysis-ready reporting; an
// artifact nobody can re-run is neither. A RunManifest stamps each export
// (--metrics, --trace, --attrib, experiment JSON, BENCH_PERF.json) with what
// produced it: the scenario/config label, seed, region set, the build's git
// describe and flags, the export schema version, and — stamped after the run
// completes — the wall-clock duration. Report tools (trace_report, run_diff)
// read the header back to refuse schema mismatches and to label comparisons.
//
// kSchemaVersion is the single source of truth for the export format: every
// writer embeds it and both report tools check it, so a format change that
// forgets to bump it is caught by the round-trip tests, and a bumped version
// is caught by --validate on old readers.

#include <cstdint>
#include <string>
#include <vector>

namespace greenhpc::obs {

/// Version of every flight-recorder export format (metrics JSONL, trace,
/// attribution, experiment JSON manifests). Bump when a reader of the old
/// format would misread the new one.
inline constexpr int kSchemaVersion = 1;

struct RunManifest {
  int schema_version = kSchemaVersion;
  std::string tool;      ///< surface that produced the artifact ("greenhpc_sim")
  std::string scenario;  ///< scenario/config label ("fleet/carbon_forecast/r4")
  std::uint64_t seed = 0;
  std::size_t regions = 0;  ///< 0 = single-site
  std::vector<std::string> region_names;
  std::string git_describe;  ///< stamped at CMake configure time
  std::string build_flags;   ///< build type + invariant/sanitizer knobs
  /// Host wall-clock duration of the run, stamped post-run by the export
  /// code. Negative = not stamped (library serializers never see wall time).
  double wall_seconds = -1.0;

  /// One-line JSON object (no trailing newline) — embeddable as a JSONL
  /// header line, a `# manifest:` CSV comment, or a top-level JSON key.
  [[nodiscard]] std::string to_json() const;
};

/// A manifest pre-filled with this build's provenance (git describe, build
/// flags, schema version). Callers fill scenario/seed/regions/wall_seconds.
[[nodiscard]] RunManifest make_manifest(std::string tool);

}  // namespace greenhpc::obs
