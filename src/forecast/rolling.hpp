#pragma once
// RollingForecaster: an online wrapper turning the batch models of
// forecast/models.hpp into a decision-grade signal feed.
//
// Sec. II-C argues that "models that help forecast and relate energy prices,
// fuel mix, as well as energy expenditure" are what turn reactive savings
// into planned ones. The schedulers and routers that act on those forecasts
// see one observation per control step, not a prepared series — so this
// class maintains a ring-buffer history per signal (carbon intensity, LMP,
// renewable share), refits the underlying model periodically, and exposes
// predict(horizon) online. It also scores its own past forecasts against the
// actuals that later arrive (realized MAPE), so consumers can fall back to
// reactive behavior when forecast skill is poor — a forecast-driven policy
// must never be worse than its reactive counterpart just because the model
// lost the plot.
//
// The history lives in a fixed-capacity ring (not a deque), so a refit fits
// straight off the buffer's two chunks via Forecaster::fit(SeriesView) —
// no per-refit window copy — and models with an incremental path
// (Forecaster::track/refit) skip the batch pass entirely.

#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "forecast/models.hpp"
#include "util/calendar.hpp"
#include "util/units.hpp"

namespace greenhpc::forecast {

/// Instantiates a named model: seasonal_naive | climatology | ar |
/// holt_winters. `period` is the seasonal cycle in samples (one day for grid
/// signals); ar uses it as the lag order so a full cycle of lags is
/// available. Throws on unknown names.
[[nodiscard]] std::unique_ptr<Forecaster> make_model(const std::string& name, std::size_t period);

/// True when make_model accepts `name`.
[[nodiscard]] bool model_known(const std::string& name);

/// All names make_model accepts, for --help text.
[[nodiscard]] const char* model_names();

struct RollingForecasterConfig {
  std::string model = "climatology";
  /// Decision lookahead: how far ahead consumers may ask predict() to see.
  util::Duration horizon = util::hours(24);
  /// Ring-buffer span the model refits on.
  util::Duration history = util::days(7);
  util::Duration refit_every = util::hours(6);
  /// Reliability gate: reliable() turns false once the realized MAPE of past
  /// horizon-ahead forecasts exceeds this (percent).
  double mape_gate_pct = 25.0;
  /// Scored forecasts required before the gate can bind (until then the
  /// forecaster is trusted as soon as it is fitted).
  std::size_t min_scored = 4;
};

/// Full-config equality — the forecaster hub refuses to share a bank between
/// consumers whose configs differ (silent drift is the failure mode the hub
/// exists to close).
[[nodiscard]] inline bool operator==(const RollingForecasterConfig& a,
                                     const RollingForecasterConfig& b) {
  return a.model == b.model && a.horizon.seconds() == b.horizon.seconds() &&
         a.history.seconds() == b.history.seconds() &&
         a.refit_every.seconds() == b.refit_every.seconds() &&
         a.mape_gate_pct == b.mape_gate_pct && a.min_scored == b.min_scored;
}

/// Realized-skill snapshot for telemetry (rendered by telemetry/forecast).
struct SkillReport {
  std::string signal;  ///< what was forecast ("carbon", "price", ...)
  std::string model;
  std::size_t samples = 0;  ///< observations in the ring buffer
  std::size_t scored = 0;   ///< past forecasts scored against actuals
  double mape_pct = 0.0;    ///< realized MAPE of horizon-ahead forecasts
  bool reliable = true;
};

class RollingForecaster {
 public:
  RollingForecaster() : RollingForecaster(RollingForecasterConfig{}) {}
  explicit RollingForecaster(RollingForecasterConfig config);

  /// Feeds one observation. The sample cadence is inferred from the first
  /// two distinct timestamps; repeated timestamps are ignored (several
  /// consumers may observe the same control step).
  void observe(util::TimePoint now, double value);

  /// Forecast for the next `steps` samples after the last observation (the
  /// model's parameters refit periodically, but its origin advances with
  /// every observation via Forecaster::update, so predictions always
  /// condition on the live state — a persistent wind surge or price spike is
  /// carried forward, not averaged away). Requires ready(); `steps` is
  /// clamped to horizon_steps().
  [[nodiscard]] std::vector<double> predict(std::size_t steps) const;

  /// predict(steps) into a reused buffer (no fresh allocation on the hot
  /// per-step path).
  void predict_into(std::size_t steps, std::vector<double>& out) const;

  /// Enough history accumulated and a model fitted.
  [[nodiscard]] bool ready() const { return fitted_; }

  /// ready() and the realized-MAPE gate has not tripped. Consumers should
  /// fall back to reactive behavior when this is false.
  [[nodiscard]] bool reliable() const;

  /// Realized MAPE (%) of horizon-ahead forecasts over the recent scoring
  /// window; 0 until anything has been scored.
  [[nodiscard]] double realized_mape_pct() const;

  [[nodiscard]] std::size_t scored() const { return scored_; }
  [[nodiscard]] std::size_t samples() const { return ring_.size(); }
  /// Total observations accepted so far (monotonic; the ring saturates but
  /// this does not) — consumers key prediction caches on it.
  [[nodiscard]] std::uint64_t observations() const { return next_index_; }
  /// Inferred sample cadence (zero until two distinct timestamps were seen).
  [[nodiscard]] util::Duration cadence() const { return cadence_; }
  /// The configured horizon in samples (0 until the cadence is known).
  [[nodiscard]] std::size_t horizon_steps() const;
  [[nodiscard]] const RollingForecasterConfig& config() const { return config_; }
  /// The fitted model (nullptr before enough history) — for equivalence
  /// tests that compare parameters against a fresh batch fit.
  [[nodiscard]] const Forecaster* model() const { return model_.get(); }
  /// The current history window, oldest first (materialized; test surface).
  [[nodiscard]] std::vector<double> window() const { return window_view().materialize(); }

  [[nodiscard]] SkillReport skill(std::string signal_name) const;

 private:
  void refit_or_update(double value, const double* evicted);
  void record_pending_forecast();
  [[nodiscard]] SeriesView window_view() const;
  /// Appends to the ring; returns true and sets `evicted` when a sample
  /// left the window.
  bool ring_push(double value, double* evicted);

  RollingForecasterConfig config_;
  std::unique_ptr<Forecaster> model_;
  bool fitted_ = false;

  // Fixed-capacity ring once the cadence is known (at most two elements
  // before that); oldest element at ring_head_ when saturated.
  std::vector<double> ring_;
  std::size_t ring_head_ = 0;
  std::size_t capacity_ = 0;  ///< 0 until the cadence is inferred

  util::TimePoint last_time_;
  bool have_last_ = false;
  util::Duration cadence_;      ///< zero until inferred
  std::size_t next_index_ = 0;  ///< index of the next observation
  std::size_t steps_since_fit_ = 0;

  /// Forecasts awaiting their actual: (target observation index, predicted).
  std::deque<std::pair<std::size_t, double>> pending_;
  std::deque<double> abs_pct_errors_;  ///< rolling scoring window
  double error_sum_ = 0.0;
  std::size_t scored_ = 0;
};

}  // namespace greenhpc::forecast
