#include "forecast/bank.hpp"

#include <algorithm>
#include <cmath>

namespace greenhpc::forecast {

ForecasterBank::ForecasterBank(RollingForecasterConfig config) : config_(std::move(config)) {
  (void)RollingForecaster(config_);  // surface config mistakes now
}

void ForecasterBank::observe(util::TimePoint now, std::size_t index, double value,
                             std::string_view name) {
  while (forecasters_.size() <= index) {
    forecasters_.emplace_back(config_);
    names_.emplace_back();
  }
  forecasters_[index].observe(now, value);
  if (!name.empty()) names_[index] = name;
}

double ForecasterBank::integrated_signal(std::size_t index, util::Duration runtime,
                                         double instantaneous) const {
  if (index >= forecasters_.size()) return instantaneous;
  const RollingForecaster& fc = forecasters_[index];
  if (!fc.reliable()) return instantaneous;
  const auto steps = static_cast<std::size_t>(
      std::clamp<double>(std::ceil(runtime / fc.cadence()), 1.0,
                         static_cast<double>(fc.horizon_steps())));
  const std::vector<double> predicted = fc.predict(steps);
  double total = 0.0;
  for (double v : predicted) total += v;
  return total / static_cast<double>(predicted.size());
}

std::vector<SkillReport> ForecasterBank::skills() const {
  std::vector<SkillReport> out;
  out.reserve(forecasters_.size());
  for (std::size_t i = 0; i < forecasters_.size(); ++i) {
    out.push_back(forecasters_[i].skill(names_[i].empty() ? "region" + std::to_string(i)
                                                          : names_[i]));
  }
  return out;
}

}  // namespace greenhpc::forecast
