#include "forecast/bank.hpp"

#include <algorithm>
#include <cmath>

#include "util/invariants.hpp"

namespace greenhpc::forecast {

ForecasterBank::ForecasterBank(RollingForecasterConfig config) : config_(std::move(config)) {
  (void)RollingForecaster(config_);  // surface config mistakes now
}

void ForecasterBank::observe(util::TimePoint now, std::size_t index, double value,
                             std::string_view name) {
  while (forecasters_.size() <= index) {
    forecasters_.emplace_back(config_);
    names_.emplace_back();
    cache_.emplace_back();
  }
  forecasters_[index].observe(now, value);
  if (!name.empty()) names_[index] = name;
}

double ForecasterBank::integrated_signal(std::size_t index, util::Duration runtime,
                                         double instantaneous) const {
  if (index >= forecasters_.size()) return instantaneous;
  const RollingForecaster& fc = forecasters_[index];
  if (!fc.reliable()) return instantaneous;
  const std::size_t horizon = fc.horizon_steps();
  const auto steps = static_cast<std::size_t>(
      std::clamp<double>(std::ceil(runtime / fc.cadence()), 1.0,
                         static_cast<double>(horizon)));

  IntegralCache& cache = cache_[index];
  if (!cache.valid || cache.revision != fc.observations()) {
    // One full-horizon forecast per source per step answers every window
    // this step asks about; the running total below is the same
    // left-to-right sum the per-query loop used to compute.
    fc.predict_into(horizon, cache.prediction);
    cache.prefix.resize(cache.prediction.size() + 1);
    cache.prefix[0] = 0.0;
    double total = 0.0;
    for (std::size_t i = 0; i < cache.prediction.size(); ++i) {
      total += cache.prediction[i];
      cache.prefix[i + 1] = total;
    }
    cache.revision = fc.observations();
    cache.valid = true;
  }
  const std::size_t k = std::min(steps, cache.prefix.size() - 1);
  return cache.prefix[k] / static_cast<double>(k);
}

#ifdef GREENHPC_CHECK_INVARIANTS
void ForecasterBank::check_invariants() const {
  std::vector<double> fresh;
  for (std::size_t i = 0; i < forecasters_.size(); ++i) {
    const IntegralCache& cache = cache_[i];
    const RollingForecaster& fc = forecasters_[i];
    // Only live caches are checked: a stale cache is rebuilt (not served) on
    // the next integrated_signal call, so it cannot feed a decision.
    if (!cache.valid || cache.revision != fc.observations()) continue;
    fc.predict_into(cache.prediction.size(), fresh);
    util::check_invariant(fresh == cache.prediction, "forecaster_bank.prefix_integral",
                          "cached prediction for source " + std::to_string(i) +
                              " diverged from a fresh forecast");
    double total = 0.0;
    for (std::size_t k = 0; k < fresh.size(); ++k) {
      total += fresh[k];
      util::check_invariant(cache.prefix[k + 1] == total, "forecaster_bank.prefix_integral",
                            "prefix sum for source " + std::to_string(i) + " at step " +
                                std::to_string(k + 1) +
                                " diverged from the direct running total");
    }
  }
}
#endif

std::vector<SkillReport> ForecasterBank::skills() const {
  std::vector<SkillReport> out;
  out.reserve(forecasters_.size());
  for (std::size_t i = 0; i < forecasters_.size(); ++i) {
    out.push_back(forecasters_[i].skill(names_[i].empty() ? "region" + std::to_string(i)
                                                          : names_[i]));
  }
  return out;
}

}  // namespace greenhpc::forecast
