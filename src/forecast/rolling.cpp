#include "forecast/rolling.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace greenhpc::forecast {

using util::require;

namespace {

/// Scoring-window length for the realized-MAPE gate: long enough to smooth
/// single bad folds, short enough that a model drifting off still trips the
/// gate within a couple of days of 15-minute samples.
constexpr std::size_t kScoreWindow = 192;

}  // namespace

std::unique_ptr<Forecaster> make_model(const std::string& name, std::size_t period) {
  if (name == "seasonal_naive") return std::make_unique<SeasonalNaive>(period);
  if (name == "climatology") return std::make_unique<SeasonalClimatology>(period);
  if (name == "ar") return std::make_unique<ArModel>(std::max<std::size_t>(1, period));
  if (name == "holt_winters") return std::make_unique<HoltWinters>(std::max<std::size_t>(2, period));
  throw std::invalid_argument("make_model: unknown forecast model '" + name + "'");
}

bool model_known(const std::string& name) {
  return name == "seasonal_naive" || name == "climatology" || name == "ar" ||
         name == "holt_winters";
}

const char* model_names() { return "seasonal_naive | climatology | ar | holt_winters"; }

RollingForecaster::RollingForecaster(RollingForecasterConfig config)
    : config_(std::move(config)) {
  require(model_known(config_.model), "RollingForecaster: unknown model name");
  require(config_.horizon.seconds() > 0.0, "RollingForecaster: horizon must be positive");
  require(config_.history.seconds() > 0.0, "RollingForecaster: history must be positive");
  require(config_.refit_every.seconds() > 0.0, "RollingForecaster: refit period must be positive");
  require(config_.mape_gate_pct > 0.0, "RollingForecaster: MAPE gate must be positive");
}

std::size_t RollingForecaster::horizon_steps() const {
  if (cadence_.seconds() <= 0.0) return 0;
  return std::max<std::size_t>(1, static_cast<std::size_t>(
                                      std::llround(config_.horizon / cadence_)));
}

SeriesView RollingForecaster::window_view() const {
  if (ring_.size() < capacity_ || ring_head_ == 0 || capacity_ == 0) {
    return SeriesView{std::span<const double>(ring_), {}};
  }
  return SeriesView{std::span<const double>(ring_.data() + ring_head_, ring_.size() - ring_head_),
                    std::span<const double>(ring_.data(), ring_head_)};
}

bool RollingForecaster::ring_push(double value, double* evicted) {
  if (capacity_ == 0 || ring_.size() < capacity_) {
    ring_.push_back(value);
    return false;
  }
  *evicted = ring_[ring_head_];
  ring_[ring_head_] = value;
  ring_head_ = (ring_head_ + 1) % capacity_;
  return true;
}

void RollingForecaster::observe(util::TimePoint now, double value) {
  if (have_last_) {
    if (!(last_time_ < now)) return;  // same control step seen twice (or clock misuse)
    if (cadence_.seconds() <= 0.0) {
      cadence_ = now - last_time_;
      capacity_ = std::max<std::size_t>(
          2, static_cast<std::size_t>(std::llround(config_.history / cadence_)));
      ring_.reserve(capacity_);
    }
  }
  last_time_ = now;
  have_last_ = true;

  // Score forecasts whose target has arrived (MAPE is undefined at zero
  // truth, so those folds are skipped rather than scored as infinite).
  while (!pending_.empty() && pending_.front().first <= next_index_) {
    if (pending_.front().first == next_index_ && std::abs(value) > 1e-12) {
      const double err = 100.0 * std::abs(pending_.front().second - value) / std::abs(value);
      abs_pct_errors_.push_back(err);
      error_sum_ += err;
      ++scored_;
      while (abs_pct_errors_.size() > kScoreWindow) {
        error_sum_ -= abs_pct_errors_.front();
        abs_pct_errors_.pop_front();
      }
    }
    pending_.pop_front();
  }

  double evicted_value = 0.0;
  const bool evicted = ring_push(value, &evicted_value);
  ++next_index_;

  refit_or_update(value, evicted ? &evicted_value : nullptr);
  record_pending_forecast();
}

void RollingForecaster::refit_or_update(double value, const double* evicted) {
  if (cadence_.seconds() <= 0.0) return;
  const auto refit_steps = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(config_.refit_every / cadence_)));
  ++steps_since_fit_;
  // Sufficient statistics advance with every sample once a model is fitted,
  // refit steps included — that is what makes the incremental refit cheap.
  if (fitted_) model_->track(value, evicted);
  if (fitted_ && steps_since_fit_ < refit_steps) {
    // Between refits the parameters stay put, but the forecast origin
    // advances with the stream so predictions condition on the live state.
    model_->update(value);
    return;
  }

  if (!model_) {
    // One seasonal cycle = one day of samples at the observed cadence.
    const auto period = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::llround(util::days(1) / cadence_)));
    model_ = make_model(config_.model, period);
  }
  if (ring_.size() < model_->min_history()) return;

  // Incremental path first (exactly reproduces the batch parameters, see
  // the per-model notes in models.hpp); zero-copy batch fit otherwise.
  const SeriesView view = window_view();
  if (!(fitted_ && model_->refit(view))) model_->fit(view);
  fitted_ = true;
  steps_since_fit_ = 0;
}

void RollingForecaster::record_pending_forecast() {
  if (!fitted_) return;
  const std::size_t h = horizon_steps();
  if (h == 0) return;
  // The skill we report is exactly the skill consumers rely on: the
  // horizon-ahead prediction, scored when its actual arrives.
  pending_.emplace_back(next_index_ + h - 1, model_->predict_point(h));
}

std::vector<double> RollingForecaster::predict(std::size_t steps) const {
  require(fitted_, "RollingForecaster: predict before enough history accumulated");
  return model_->predict(std::clamp<std::size_t>(steps, 1, horizon_steps()));
}

void RollingForecaster::predict_into(std::size_t steps, std::vector<double>& out) const {
  require(fitted_, "RollingForecaster: predict before enough history accumulated");
  model_->predict_into(std::clamp<std::size_t>(steps, 1, horizon_steps()), out);
}

double RollingForecaster::realized_mape_pct() const {
  if (abs_pct_errors_.empty()) return 0.0;
  return error_sum_ / static_cast<double>(abs_pct_errors_.size());
}

bool RollingForecaster::reliable() const {
  if (!fitted_) return false;
  if (scored_ < config_.min_scored) return true;
  return realized_mape_pct() <= config_.mape_gate_pct;
}

SkillReport RollingForecaster::skill(std::string signal_name) const {
  SkillReport report;
  report.signal = std::move(signal_name);
  report.model = config_.model;
  report.samples = samples();
  report.scored = scored_;
  report.mape_pct = realized_mape_pct();
  report.reliable = reliable();
  return report;
}

}  // namespace greenhpc::forecast
