#pragma once
// Forecasting models.
//
// Sec. II-C: "Models that help forecast and relate energy prices, fuel mix,
// as well as energy expenditure to one another can provide significant
// support in the decision-making process for optimizing energy purchases and
// consumption." These are the classical models that do that job: seasonal
// naive (baseline), autoregressive (OLS-fit), and additive Holt-Winters
// (level/trend/seasonality). Sec. IV-C's wind-forecasting example (DeepMind's
// 36-hour-ahead wind commitment) is reproduced with these in
// examples/wind_forecast.cpp.

#include <memory>
#include <span>
#include <vector>

#include "stats/regression.hpp"

namespace greenhpc::forecast {

class Forecaster {
 public:
  virtual ~Forecaster() = default;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Fits on a history (chronological). Throws if the series is too short.
  virtual void fit(std::span<const double> series) = 0;

  /// Advances the forecast origin by one observation WITHOUT refitting
  /// model parameters — online state tracking between periodic refits
  /// (rolling the AR lag window, one Holt-Winters smoothing step, sliding
  /// the naive season). Default: no-op (predictions then stay anchored at
  /// the last fit). Only meaningful after fit().
  virtual void update(double /*value*/) {}

  /// Forecasts the next `horizon` values after the fitted history (plus any
  /// update() observations since).
  [[nodiscard]] virtual std::vector<double> predict(std::size_t horizon) const = 0;

  /// Minimum history length fit() accepts.
  [[nodiscard]] virtual std::size_t min_history() const = 0;
};

/// y_hat(t+h) = y(t + h - period) — the standard seasonal baseline.
class SeasonalNaive final : public Forecaster {
 public:
  explicit SeasonalNaive(std::size_t period);

  [[nodiscard]] const char* name() const override { return "seasonal_naive"; }
  void fit(std::span<const double> series) override;
  void update(double value) override;
  [[nodiscard]] std::vector<double> predict(std::size_t horizon) const override;
  [[nodiscard]] std::size_t min_history() const override { return period_; }

 private:
  std::size_t period_;
  std::vector<double> last_season_;
};

/// Climatology plus AR(1) anomaly persistence:
///   y_hat(t+h) = clim(t+h) + rho^h * (y(t) - clim(t))
/// where clim is the per-slot seasonal mean of the fitted history and rho the
/// lag-1 autocorrelation of the anomalies. Phase-locked structure (solar
/// ramps, demand peaks) survives the slot averaging while uncorrelated
/// weather noise cancels; the rho term carries the *current* anomaly (a wind
/// surge, a price spike) forward on the decorrelation timescale the history
/// exhibits. Short horizons therefore degrade gracefully to persistence and
/// long ones to the seasonal mean — the two baselines any skilled grid
/// forecast must beat.
class SeasonalClimatology final : public Forecaster {
 public:
  explicit SeasonalClimatology(std::size_t period);

  [[nodiscard]] const char* name() const override { return "climatology"; }
  void fit(std::span<const double> series) override;
  void update(double value) override;
  [[nodiscard]] std::vector<double> predict(std::size_t horizon) const override;
  [[nodiscard]] std::size_t min_history() const override { return period_; }

  [[nodiscard]] double anomaly_rho() const { return rho_; }
  [[nodiscard]] const std::vector<double>& slot_means() const { return slot_means_; }

 private:
  std::size_t period_;
  std::vector<double> slot_means_;
  double rho_ = 0.0;
  double last_anomaly_ = 0.0;
  std::size_t fitted_length_ = 0;
};

/// AR(p) with intercept, fit by OLS on the lag design matrix; multi-step
/// forecasts feed predictions back recursively.
class ArModel final : public Forecaster {
 public:
  explicit ArModel(std::size_t order);

  [[nodiscard]] const char* name() const override { return "ar"; }
  void fit(std::span<const double> series) override;
  void update(double value) override;
  [[nodiscard]] std::vector<double> predict(std::size_t horizon) const override;
  [[nodiscard]] std::size_t min_history() const override { return order_ * 3 + 1; }

  [[nodiscard]] std::size_t order() const { return order_; }
  /// [intercept, phi_1 .. phi_p]; valid after fit().
  [[nodiscard]] const std::vector<double>& coefficients() const { return coefficients_; }

 private:
  std::size_t order_;
  std::vector<double> coefficients_;
  std::vector<double> tail_;  ///< last `order_` observations, oldest first
};

/// Additive Holt-Winters (triple exponential smoothing).
class HoltWinters final : public Forecaster {
 public:
  struct Params {
    double alpha = 0.3;  ///< level smoothing
    double beta = 0.05;  ///< trend smoothing
    double gamma = 0.2;  ///< seasonal smoothing
  };
  HoltWinters(std::size_t period, Params params);
  explicit HoltWinters(std::size_t period) : HoltWinters(period, Params{}) {}

  [[nodiscard]] const char* name() const override { return "holt_winters"; }
  void fit(std::span<const double> series) override;
  void update(double value) override;
  [[nodiscard]] std::vector<double> predict(std::size_t horizon) const override;
  [[nodiscard]] std::size_t min_history() const override { return period_ * 2; }

  [[nodiscard]] double level() const { return level_; }
  [[nodiscard]] double trend() const { return trend_; }
  [[nodiscard]] const std::vector<double>& seasonal() const { return seasonal_; }

 private:
  /// One triple-smoothing recursion at season slot `s`.
  void smooth_step(double value, std::size_t s);

  std::size_t period_;
  Params params_;
  double level_ = 0.0;
  double trend_ = 0.0;
  std::vector<double> seasonal_;
  std::size_t fitted_length_ = 0;
};

}  // namespace greenhpc::forecast
