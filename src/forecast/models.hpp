#pragma once
// Forecasting models.
//
// Sec. II-C: "Models that help forecast and relate energy prices, fuel mix,
// as well as energy expenditure to one another can provide significant
// support in the decision-making process for optimizing energy purchases and
// consumption." These are the classical models that do that job: seasonal
// naive (baseline), autoregressive (OLS-fit), and additive Holt-Winters
// (level/trend/seasonality). Sec. IV-C's wind-forecasting example (DeepMind's
// 36-hour-ahead wind commitment) is reproduced with these in
// examples/wind_forecast.cpp.
//
// Rolling-window consumers (forecast/rolling.hpp) refit these models every
// few hours on a sliding history. Two extensions keep that loop cheap
// without changing a single predicted bit:
//   - fit(SeriesView) fits straight off a ring buffer's two chunks (no
//     window copy);
//   - track()/refit() maintain per-model sufficient statistics online (the
//     seasonal tail, per-slot climatology sums, AR normal equations) so a
//     refit costs O(period) instead of O(window) where an exact incremental
//     path exists.

#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "stats/regression.hpp"

namespace greenhpc::forecast {

/// A chronological series stored in up to two contiguous chunks — the view a
/// ring buffer exposes without copying. `first` holds the older samples.
struct SeriesView {
  std::span<const double> first;
  std::span<const double> second;

  [[nodiscard]] std::size_t size() const { return first.size() + second.size(); }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] double operator[](std::size_t i) const {
    return i < first.size() ? first[i] : second[i - first.size()];
  }
  [[nodiscard]] double back() const {
    return second.empty() ? first.back() : second.back();
  }
  [[nodiscard]] std::vector<double> materialize() const {
    std::vector<double> out;
    out.reserve(size());
    out.insert(out.end(), first.begin(), first.end());
    out.insert(out.end(), second.begin(), second.end());
    return out;
  }
};

class Forecaster {
 public:
  virtual ~Forecaster() = default;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Fits on a history (chronological). Throws if the series is too short.
  virtual void fit(std::span<const double> series) = 0;

  /// Zero-copy fit over a ring-buffer view; arithmetic is identical to
  /// fit(span) on the materialized series. Default: materializes.
  virtual void fit(const SeriesView& view) { fit(std::span<const double>(view.materialize())); }

  /// Advances the forecast origin by one observation WITHOUT refitting
  /// model parameters — online state tracking between periodic refits
  /// (rolling the AR lag window, one Holt-Winters smoothing step, sliding
  /// the naive season). Default: no-op (predictions then stay anchored at
  /// the last fit). Only meaningful after fit().
  virtual void update(double /*value*/) {}

  /// Maintains rolling-window sufficient statistics for refit(): `value`
  /// entered the window and, when `evicted` is non-null, `*evicted` left it.
  /// Called once per observation after the first fit — including on refit
  /// steps, where update() is not (the refit replaces the origin advance).
  /// Default: no statistics kept.
  virtual void track(double /*value*/, const double* /*evicted*/) {}

  /// Incremental refit: brings the parameters to what fit(window) would
  /// produce, from the statistics maintained by track(). Returns false when
  /// the model has no incremental path or its statistics do not cover
  /// `window` (the caller then falls back to the batch fit).
  virtual bool refit(const SeriesView& /*window*/) { return false; }

  /// Forecasts the next `horizon` values after the fitted history (plus any
  /// update() observations since).
  [[nodiscard]] virtual std::vector<double> predict(std::size_t horizon) const = 0;

  /// Writes predict(horizon) into `out` (reused capacity; no fresh vector).
  virtual void predict_into(std::size_t horizon, std::vector<double>& out) const {
    out = predict(horizon);
  }

  /// The single value predict(horizon).back() would produce, bit for bit,
  /// without materializing the curve. Default: materializes.
  [[nodiscard]] virtual double predict_point(std::size_t horizon) const {
    return predict(horizon).back();
  }

  /// Minimum history length fit() accepts.
  [[nodiscard]] virtual std::size_t min_history() const = 0;
};

/// y_hat(t+h) = y(t + h - period) — the standard seasonal baseline.
class SeasonalNaive final : public Forecaster {
 public:
  explicit SeasonalNaive(std::size_t period);

  [[nodiscard]] const char* name() const override { return "seasonal_naive"; }
  void fit(std::span<const double> series) override;
  void fit(const SeriesView& view) override;
  void update(double value) override;
  /// The refit of a naive model is just the window tail — O(period), exact.
  bool refit(const SeriesView& window) override;
  [[nodiscard]] std::vector<double> predict(std::size_t horizon) const override;
  void predict_into(std::size_t horizon, std::vector<double>& out) const override;
  [[nodiscard]] double predict_point(std::size_t horizon) const override;
  [[nodiscard]] std::size_t min_history() const override { return period_; }

 private:
  std::size_t period_;
  std::vector<double> last_season_;
};

/// Climatology plus AR(1) anomaly persistence:
///   y_hat(t+h) = clim(t+h) + rho^h * (y(t) - clim(t))
/// where clim is the per-slot seasonal mean of the fitted history and rho the
/// lag-1 autocorrelation of the anomalies. Phase-locked structure (solar
/// ramps, demand peaks) survives the slot averaging while uncorrelated
/// weather noise cancels; the rho term carries the *current* anomaly (a wind
/// surge, a price spike) forward on the decorrelation timescale the history
/// exhibits. Short horizons therefore degrade gracefully to persistence and
/// long ones to the seasonal mean — the two baselines any skilled grid
/// forecast must beat.
class SeasonalClimatology final : public Forecaster {
 public:
  explicit SeasonalClimatology(std::size_t period);

  [[nodiscard]] const char* name() const override { return "climatology"; }
  void fit(std::span<const double> series) override;
  void fit(const SeriesView& view) override;
  void update(double value) override;
  void track(double value, const double* evicted) override;
  /// Exact incremental refit from per-slot sufficient statistics: each slot
  /// keeps its window values and their left-to-right sum, re-summed only
  /// when that slot's membership changed, so the means cost O(period)
  /// instead of O(window). The anomaly-autocorrelation pass stays O(window)
  /// — rho is defined against the *new* means, so it cannot be carried
  /// across refits without changing the fitted bits — but runs zero-copy
  /// and zero-allocation over the ring view.
  bool refit(const SeriesView& window) override;
  [[nodiscard]] std::vector<double> predict(std::size_t horizon) const override;
  void predict_into(std::size_t horizon, std::vector<double>& out) const override;
  [[nodiscard]] double predict_point(std::size_t horizon) const override;
  [[nodiscard]] std::size_t min_history() const override { return period_; }

  [[nodiscard]] double anomaly_rho() const { return rho_; }
  [[nodiscard]] const std::vector<double>& slot_means() const { return slot_means_; }

 private:
  /// Recomputes dirty slot sums and derives slot_means_ for a window whose
  /// oldest element has absolute index `window_start`.
  void means_from_stats(std::size_t window_start);

  std::size_t period_;
  std::vector<double> slot_means_;
  double rho_ = 0.0;
  double last_anomaly_ = 0.0;
  std::size_t fitted_length_ = 0;

  // Sufficient statistics, keyed by absolute slot (observation index mod
  // period, counted from the last batch fit's window start).
  std::vector<std::deque<double>> slot_values_;  ///< per-slot window values
  std::vector<double> slot_sums_;                ///< left-assoc sums of slot_values_
  std::vector<char> slot_dirty_;                 ///< sums needing a re-sum
  std::size_t first_abs_ = 0;                    ///< abs index of the oldest element
  std::size_t next_abs_ = 0;                     ///< abs index of the next element
};

/// AR(p) with intercept, fit by OLS on the lag design matrix; multi-step
/// forecasts feed predictions back recursively.
class ArModel final : public Forecaster {
 public:
  explicit ArModel(std::size_t order);

  [[nodiscard]] const char* name() const override { return "ar"; }
  void fit(std::span<const double> series) override;
  void fit(const SeriesView& view) override;
  void update(double value) override;
  void track(double value, const double* evicted) override;
  /// Incremental refit from online normal equations: track() rank-1 updates
  /// X'X and X'y — and a maintained Cholesky factor of X'X — as rows enter
  /// and leave the window, so a refit back-substitutes the (p+1)-dim system
  /// in O(p^2) instead of re-eliminating it in O(p^3) (the profiler-found
  /// hot spot at p = 97). The factor is re-derived from the exact
  /// accumulated X'X every kRefactorInterval refits (and whenever a
  /// downdate loses positive definiteness), bounding rank-1 drift; the
  /// original Gaussian solve remains as the fallback and as an optional
  /// debug cross-check. Near-exact rather than bit-exact: evicting a row
  /// subtracts from the accumulated sums, which reassociates the
  /// floating-point reduction (agreement with the batch fit is at the
  /// 1e-9-relative level, pinned by the equivalence tests).
  bool refit(const SeriesView& window) override;

  /// Debug: every Cholesky-solved refit also runs the batch Gaussian solve
  /// and throws if the two disagree beyond 1e-6 relative.
  void set_debug_cross_check(bool on) { debug_cross_check_ = on; }
  [[nodiscard]] std::vector<double> predict(std::size_t horizon) const override;
  void predict_into(std::size_t horizon, std::vector<double>& out) const override;
  /// The multi-step recursion into a reused scratch, returning only its
  /// last value — same bits as predict(horizon).back(), no fresh vectors.
  [[nodiscard]] double predict_point(std::size_t horizon) const override;
  [[nodiscard]] std::size_t min_history() const override { return order_ * 3 + 1; }

  [[nodiscard]] std::size_t order() const { return order_; }
  /// [intercept, phi_1 .. phi_p]; valid after fit().
  [[nodiscard]] const std::vector<double>& coefficients() const { return coefficients_; }

 private:
  /// Adds (sign=+1) or removes (sign=-1) one design row whose target is
  /// `window[t]` (lags window[t-1..t-p]) from the normal equations.
  void accumulate_row(const std::deque<double>& window, std::size_t t, double sign);
  void rebuild_stats(const SeriesView& view);

  std::size_t order_;
  std::vector<double> coefficients_;
  std::vector<double> tail_;  ///< last `order_` observations, oldest first

  // Sufficient statistics for the incremental refit.
  std::deque<double> window_;    ///< the model's own copy of the fit window
  std::vector<double> xtx_;      ///< (p+1)^2 row-major, symmetric
  std::vector<double> xty_;      ///< p+1
  bool stats_valid_ = false;

  /// Refits between exact refactorizations of chol_ from xtx_ — bounds how
  /// far rank-1 update/downdate drift can accumulate in the factor.
  static constexpr std::size_t kRefactorInterval = 16;
  /// Builds the design row [1, window[t-1..t-order]] into row_scratch_.
  void build_row(const std::deque<double>& window, std::size_t t);
  stats::CholeskySolver chol_;  ///< maintained factor of xtx_
  bool chol_valid_ = false;
  std::size_t refits_since_factor_ = 0;
  bool debug_cross_check_ = false;
  std::vector<double> row_scratch_;  ///< one design row for rank-1 chol ops

  mutable std::vector<double> point_scratch_;  ///< predict_point recursion buffer
};

/// Additive Holt-Winters (triple exponential smoothing). Its smoothing state
/// (level/trend/seasonal) is already maintained online by update(); the
/// periodic batch refit deliberately re-anchors that state to the current
/// window's head, which no sufficient statistic can reproduce — so the model
/// has no refit() path and the rolling wrapper batch-fits it zero-copy.
class HoltWinters final : public Forecaster {
 public:
  struct Params {
    double alpha = 0.3;  ///< level smoothing
    double beta = 0.05;  ///< trend smoothing
    double gamma = 0.2;  ///< seasonal smoothing
  };
  HoltWinters(std::size_t period, Params params);
  explicit HoltWinters(std::size_t period) : HoltWinters(period, Params{}) {}

  [[nodiscard]] const char* name() const override { return "holt_winters"; }
  void fit(std::span<const double> series) override;
  void fit(const SeriesView& view) override;
  void update(double value) override;
  [[nodiscard]] std::vector<double> predict(std::size_t horizon) const override;
  void predict_into(std::size_t horizon, std::vector<double>& out) const override;
  [[nodiscard]] double predict_point(std::size_t horizon) const override;
  [[nodiscard]] std::size_t min_history() const override { return period_ * 2; }

  [[nodiscard]] double level() const { return level_; }
  [[nodiscard]] double trend() const { return trend_; }
  [[nodiscard]] const std::vector<double>& seasonal() const { return seasonal_; }

 private:
  /// One triple-smoothing recursion at season slot `s`.
  void smooth_step(double value, std::size_t s);

  std::size_t period_;
  Params params_;
  double level_ = 0.0;
  double trend_ = 0.0;
  std::vector<double> seasonal_;
  std::size_t fitted_length_ = 0;
};

}  // namespace greenhpc::forecast
