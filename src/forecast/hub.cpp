#include "forecast/hub.hpp"

#include <string>

#include "obs/metrics.hpp"

namespace greenhpc::forecast {

namespace {

const char* signal_name(SignalKind signal) {
  return signal == SignalKind::kCarbon ? "carbon" : "price";
}

}  // namespace

ForecasterHub::ForecasterHub(RollingForecasterConfig config) : config_(std::move(config)) {
  (void)RollingForecaster(config_);  // surface config mistakes at construction
}

std::shared_ptr<ForecasterBank> ForecasterHub::attach(SignalKind signal,
                                                      const RollingForecasterConfig& config) {
  if (!(config == config_)) return nullptr;
  std::shared_ptr<ForecasterBank>& bank = banks_[static_cast<std::size_t>(signal)];
  if (!bank) bank = std::make_shared<ForecasterBank>(config_);
  return bank;
}

std::size_t ForecasterHub::banks_created() const {
  std::size_t count = 0;
  for (const auto& bank : banks_) count += bank != nullptr;
  return count;
}

void ForecasterHub::register_metrics(obs::MetricsRegistry& registry, const std::string& prefix,
                                     std::size_t region_count) const {
  for (std::size_t s = 0; s < kSignalKindCount; ++s) {
    const auto kind = static_cast<SignalKind>(s);
    for (std::size_t r = 0; r < region_count; ++r) {
      const std::string base =
          prefix + signal_name(kind) + ".r" + std::to_string(r) + ".";
      // Capture `this`, not the bank: banks are created lazily on attach,
      // possibly after registration.
      registry.gauge(base + "mape_pct", [this, kind, r] {
        const ForecasterBank* bank = this->bank(kind);
        const RollingForecaster* f = bank != nullptr ? bank->forecaster(r) : nullptr;
        return f != nullptr ? f->realized_mape_pct() : 0.0;
      });
      registry.gauge(base + "reliable", [this, kind, r] {
        const ForecasterBank* bank = this->bank(kind);
        const RollingForecaster* f = bank != nullptr ? bank->forecaster(r) : nullptr;
        return f != nullptr && f->reliable() ? 1.0 : 0.0;
      });
    }
  }
}

}  // namespace greenhpc::forecast
