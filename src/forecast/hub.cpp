#include "forecast/hub.hpp"

namespace greenhpc::forecast {

ForecasterHub::ForecasterHub(RollingForecasterConfig config) : config_(std::move(config)) {
  (void)RollingForecaster(config_);  // surface config mistakes at construction
}

std::shared_ptr<ForecasterBank> ForecasterHub::attach(SignalKind signal,
                                                      const RollingForecasterConfig& config) {
  if (!(config == config_)) return nullptr;
  std::shared_ptr<ForecasterBank>& bank = banks_[static_cast<std::size_t>(signal)];
  if (!bank) bank = std::make_shared<ForecasterBank>(config_);
  return bank;
}

std::size_t ForecasterHub::banks_created() const {
  std::size_t count = 0;
  for (const auto& bank : banks_) count += bank != nullptr;
  return count;
}

}  // namespace greenhpc::forecast
