#pragma once
// ForecasterBank: one RollingForecaster per signal source, grown on demand.
//
// Both decision layers that forecast per-region grid signals — the fleet's
// forecast routers and the migration planner — need the same machinery: a
// bank of forecasters indexed by region, fed one observation per control
// step, queried for the mean predicted signal over a job's runtime window,
// and reporting realized skill per region. This class is that machinery,
// extracted so the two consumers cannot drift apart in how they score the
// same forecast (and so a third consumer never copies it again). It is
// signal-agnostic: callers pass the index and the value; nothing here knows
// what a region is.

#include <string>
#include <string_view>
#include <vector>

#include "forecast/rolling.hpp"

namespace greenhpc::forecast {

class ForecasterBank {
 public:
  ForecasterBank() : ForecasterBank(RollingForecasterConfig{}) {}
  /// Validates the config eagerly (a throwaway forecaster is constructed),
  /// so a bad model name fails at construction, not at the first observe.
  explicit ForecasterBank(RollingForecasterConfig config);

  [[nodiscard]] const RollingForecasterConfig& config() const { return config_; }
  [[nodiscard]] std::size_t size() const { return forecasters_.size(); }

  /// Feeds one observation for source `index` (the bank grows to fit).
  /// Repeated timestamps are deduplicated by the underlying forecaster, so
  /// several consumers may observe the same control step.
  void observe(util::TimePoint now, std::size_t index, double value, std::string_view name);

  /// Mean predicted signal over the next `runtime` for source `index`;
  /// falls back to `instantaneous` while that source is unknown, unfitted,
  /// or has tripped its realized-MAPE reliability gate.
  [[nodiscard]] double integrated_signal(std::size_t index, util::Duration runtime,
                                         double instantaneous) const;

  /// Realized skill per source observed so far, in index order. Sources
  /// that never reported a name fall back to "region<index>".
  [[nodiscard]] std::vector<SkillReport> skills() const;

 private:
  RollingForecasterConfig config_;
  std::vector<RollingForecaster> forecasters_;  ///< by source index
  std::vector<std::string> names_;              ///< for skill reports
};

}  // namespace greenhpc::forecast
