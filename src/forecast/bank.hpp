#pragma once
// ForecasterBank: one RollingForecaster per signal source, grown on demand.
//
// Both decision layers that forecast per-region grid signals — the fleet's
// forecast routers and the migration planner — need the same machinery: a
// bank of forecasters indexed by region, fed one observation per control
// step, queried for the mean predicted signal over a job's runtime window,
// and reporting realized skill per region. This class is that machinery,
// extracted so the two consumers cannot drift apart in how they score the
// same forecast (and so a third consumer never copies it again). It is
// signal-agnostic: callers pass the index and the value; nothing here knows
// what a region is. ForecasterHub (hub.hpp) shares one instance between
// consumers of the same signal.
//
// integrated_signal answers any [now, now + runtime] window in O(1): the
// first query after an observation materializes one full-horizon forecast
// per source and its cumulative prefix sums (into reused buffers), and every
// further query that step — the routers and the migration planner ask once
// per job per candidate region — is a prefix-sum lookup. The answers are
// bit-identical to predicting and averaging per query, because a prefix sum
// carries exactly the left-to-right partial sums the direct loop computes.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "forecast/rolling.hpp"

namespace greenhpc::forecast {

class ForecasterBank {
 public:
  ForecasterBank() : ForecasterBank(RollingForecasterConfig{}) {}
  /// Validates the config eagerly (a throwaway forecaster is constructed),
  /// so a bad model name fails at construction, not at the first observe.
  explicit ForecasterBank(RollingForecasterConfig config);

  [[nodiscard]] const RollingForecasterConfig& config() const { return config_; }
  [[nodiscard]] std::size_t size() const { return forecasters_.size(); }

  /// Feeds one observation for source `index` (the bank grows to fit).
  /// Repeated timestamps are deduplicated by the underlying forecaster, so
  /// several consumers may observe the same control step.
  void observe(util::TimePoint now, std::size_t index, double value, std::string_view name);

  /// Mean predicted signal over the next `runtime` for source `index`;
  /// falls back to `instantaneous` while that source is unknown, unfitted,
  /// or has tripped its realized-MAPE reliability gate. O(1) after the
  /// first query per source per observation.
  [[nodiscard]] double integrated_signal(std::size_t index, util::Duration runtime,
                                         double instantaneous) const;

  /// Realized skill per source observed so far, in index order. Sources
  /// that never reported a name fall back to "region<index>".
  [[nodiscard]] std::vector<SkillReport> skills() const;

  /// One source's forecaster (nullptr until the bank has grown to `index`).
  /// Cheap state reads for per-sample metric gauges — skills() builds a
  /// full report vector, far too heavy for every sampling tick.
  [[nodiscard]] const RollingForecaster* forecaster(std::size_t index) const {
    return index < forecasters_.size() ? &forecasters_[index] : nullptr;
  }

#ifdef GREENHPC_CHECK_INVARIANTS
  // --- Debug invariant layer (compiled out of release builds) ---------------

  /// Spot-checks every source whose integral cache is live at the current
  /// observation revision: the cached full-horizon prediction must equal a
  /// fresh predict_into bit for bit, and the cached prefix sums must equal
  /// the direct left-to-right running totals bit for bit (the PR 5 O(1)
  /// integral contract). Throws util::InvariantViolation
  /// ("forecaster_bank.prefix_integral") on any mismatch.
  void check_invariants() const;

  /// Test seam: skews source `index`'s served prefix sums (the real state
  /// integrated_signal answers from) so the check trips.
  void debug_corrupt_prefix(std::size_t index) {
    if (index < cache_.size() && !cache_[index].prefix.empty()) {
      cache_[index].prefix.back() += 1.0;
    }
  }
#endif

 private:
  /// Per-source forecast curve + prefix sums, rebuilt lazily when the
  /// source's observation count moves past the cached revision.
  struct IntegralCache {
    std::uint64_t revision = 0;  ///< observations() the cache was built at
    bool valid = false;
    std::vector<double> prediction;  ///< full-horizon forecast (reused)
    std::vector<double> prefix;      ///< prefix[k] = sum of first k values
  };

  RollingForecasterConfig config_;
  std::vector<RollingForecaster> forecasters_;  ///< by source index
  std::vector<std::string> names_;              ///< for skill reports
  mutable std::vector<IntegralCache> cache_;    ///< by source index
};

}  // namespace greenhpc::forecast
