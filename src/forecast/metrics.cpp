#include "forecast/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace greenhpc::forecast {

using util::require;

double mae(std::span<const double> truth, std::span<const double> predicted) {
  require(truth.size() == predicted.size() && !truth.empty(), "mae: size mismatch or empty");
  double total = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) total += std::abs(truth[i] - predicted[i]);
  return total / static_cast<double>(truth.size());
}

double rmse(std::span<const double> truth, std::span<const double> predicted) {
  require(truth.size() == predicted.size() && !truth.empty(), "rmse: size mismatch or empty");
  double total = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - predicted[i];
    total += d * d;
  }
  return std::sqrt(total / static_cast<double>(truth.size()));
}

double mape(std::span<const double> truth, std::span<const double> predicted) {
  require(truth.size() == predicted.size() && !truth.empty(), "mape: size mismatch or empty");
  double total = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    require(truth[i] != 0.0, "mape: zero truth value");
    total += std::abs((truth[i] - predicted[i]) / truth[i]);
  }
  return 100.0 * total / static_cast<double>(truth.size());
}

BacktestResult backtest(Forecaster& model, std::span<const double> series, std::size_t min_train,
                        std::size_t horizon, std::size_t stride) {
  require(horizon >= 1, "backtest: horizon must be >= 1");
  require(stride >= 1, "backtest: stride must be >= 1");
  const std::size_t start = std::max(min_train, model.min_history());
  require(series.size() > start + horizon, "backtest: series too short for configuration");

  double mae_total = 0.0, mse_total = 0.0, mape_total = 0.0;
  std::size_t folds = 0;
  for (std::size_t origin = start; origin + horizon <= series.size(); origin += stride) {
    model.fit(series.subspan(0, origin));
    const std::vector<double> predicted = model.predict(horizon);
    const auto truth = series.subspan(origin, horizon);
    mae_total += mae(truth, predicted);
    const double r = rmse(truth, predicted);
    mse_total += r * r;
    bool mape_ok = true;
    for (double v : truth)
      if (v == 0.0) mape_ok = false;
    if (mape_ok) mape_total += mape(truth, predicted);
    ++folds;
  }
  BacktestResult out;
  out.folds = folds;
  out.mae = mae_total / static_cast<double>(folds);
  out.rmse = std::sqrt(mse_total / static_cast<double>(folds));
  out.mape = mape_total / static_cast<double>(folds);
  return out;
}

BacktestResult with_skill(BacktestResult candidate, const BacktestResult& baseline) {
  candidate.skill = baseline.rmse > 0.0 ? 1.0 - candidate.rmse / baseline.rmse : 0.0;
  return candidate;
}

}  // namespace greenhpc::forecast
