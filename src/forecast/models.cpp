#include "forecast/models.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace greenhpc::forecast {

using util::require;

// --- SeasonalNaive ----------------------------------------------------------

SeasonalNaive::SeasonalNaive(std::size_t period) : period_(period) {
  require(period >= 1, "SeasonalNaive: period must be >= 1");
}

void SeasonalNaive::fit(std::span<const double> series) {
  require(series.size() >= period_, "SeasonalNaive: history shorter than one period");
  last_season_.assign(series.end() - static_cast<std::ptrdiff_t>(period_), series.end());
}

void SeasonalNaive::update(double value) {
  require(!last_season_.empty(), "SeasonalNaive: update before fit");
  last_season_.erase(last_season_.begin());
  last_season_.push_back(value);
}

std::vector<double> SeasonalNaive::predict(std::size_t horizon) const {
  require(!last_season_.empty(), "SeasonalNaive: predict before fit");
  std::vector<double> out(horizon);
  for (std::size_t h = 0; h < horizon; ++h) out[h] = last_season_[h % period_];
  return out;
}

// --- SeasonalClimatology ----------------------------------------------------

SeasonalClimatology::SeasonalClimatology(std::size_t period) : period_(period) {
  require(period >= 1, "SeasonalClimatology: period must be >= 1");
}

void SeasonalClimatology::fit(std::span<const double> series) {
  require(series.size() >= period_, "SeasonalClimatology: history shorter than one period");
  slot_means_.assign(period_, 0.0);
  std::vector<std::size_t> counts(period_, 0);
  for (std::size_t t = 0; t < series.size(); ++t) {
    slot_means_[t % period_] += series[t];
    ++counts[t % period_];
  }
  for (std::size_t s = 0; s < period_; ++s)
    slot_means_[s] /= static_cast<double>(counts[s]);

  // Lag-1 autocorrelation of the anomalies: how fast deviations from the
  // seasonal mean decay in this history.
  double num = 0.0, den = 0.0;
  double prev = series[0] - slot_means_[0];
  for (std::size_t t = 1; t < series.size(); ++t) {
    const double a = series[t] - slot_means_[t % period_];
    num += a * prev;
    den += prev * prev;
    prev = a;
  }
  rho_ = den > 0.0 ? std::clamp(num / den, 0.0, 0.999) : 0.0;
  last_anomaly_ = prev;
  fitted_length_ = series.size();
}

void SeasonalClimatology::update(double value) {
  require(fitted_length_ > 0, "SeasonalClimatology: update before fit");
  // Exponential per-slot mean with roughly a one-week memory, matching the
  // window the periodic refit averages over.
  const std::size_t s = fitted_length_ % period_;
  slot_means_[s] += (value - slot_means_[s]) / 7.0;
  last_anomaly_ = value - slot_means_[s];
  ++fitted_length_;
}

std::vector<double> SeasonalClimatology::predict(std::size_t horizon) const {
  require(fitted_length_ > 0, "SeasonalClimatology: predict before fit");
  std::vector<double> out;
  out.reserve(horizon);
  double carry = last_anomaly_;
  for (std::size_t h = 1; h <= horizon; ++h) {
    carry *= rho_;
    out.push_back(slot_means_[(fitted_length_ + h - 1) % period_] + carry);
  }
  return out;
}

// --- ArModel ------------------------------------------------------------------

ArModel::ArModel(std::size_t order) : order_(order) {
  require(order >= 1, "ArModel: order must be >= 1");
}

void ArModel::fit(std::span<const double> series) {
  require(series.size() >= min_history(), "ArModel: history too short for order");
  const std::size_t n = series.size();

  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  rows.reserve(n - order_);
  for (std::size_t t = order_; t < n; ++t) {
    std::vector<double> row;
    row.reserve(order_ + 1);
    row.push_back(1.0);  // intercept
    for (std::size_t lag = 1; lag <= order_; ++lag) row.push_back(series[t - lag]);
    rows.push_back(std::move(row));
    targets.push_back(series[t]);
  }
  coefficients_ = stats::multiple_fit(rows, targets).coefficients;
  tail_.assign(series.end() - static_cast<std::ptrdiff_t>(order_), series.end());
}

void ArModel::update(double value) {
  require(!coefficients_.empty(), "ArModel: update before fit");
  tail_.erase(tail_.begin());
  tail_.push_back(value);
}

std::vector<double> ArModel::predict(std::size_t horizon) const {
  require(!coefficients_.empty(), "ArModel: predict before fit");
  std::vector<double> window = tail_;  // oldest-first
  std::vector<double> out;
  out.reserve(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    double y = coefficients_[0];
    for (std::size_t lag = 1; lag <= order_; ++lag)
      y += coefficients_[lag] * window[window.size() - lag];
    out.push_back(y);
    window.push_back(y);
  }
  return out;
}

// --- HoltWinters ---------------------------------------------------------------

HoltWinters::HoltWinters(std::size_t period, Params params) : period_(period), params_(params) {
  require(period >= 2, "HoltWinters: period must be >= 2");
  for (double p : {params.alpha, params.beta, params.gamma})
    require(p > 0.0 && p < 1.0, "HoltWinters: smoothing parameters must be in (0,1)");
}

void HoltWinters::fit(std::span<const double> series) {
  require(series.size() >= min_history(), "HoltWinters: need at least two full seasons");

  // Classical initialization from the first two seasons.
  double mean1 = 0.0, mean2 = 0.0;
  for (std::size_t i = 0; i < period_; ++i) {
    mean1 += series[i];
    mean2 += series[period_ + i];
  }
  mean1 /= static_cast<double>(period_);
  mean2 /= static_cast<double>(period_);
  level_ = mean1;
  trend_ = (mean2 - mean1) / static_cast<double>(period_);
  seasonal_.assign(period_, 0.0);
  for (std::size_t i = 0; i < period_; ++i) seasonal_[i] = series[i] - mean1;

  // Smooth through the full history.
  fitted_length_ = 0;
  for (std::size_t t = 0; t < series.size(); ++t) smooth_step(series[t], t % period_);
}

void HoltWinters::smooth_step(double value, std::size_t s) {
  const double prev_level = level_;
  level_ = params_.alpha * (value - seasonal_[s]) + (1.0 - params_.alpha) * (level_ + trend_);
  trend_ = params_.beta * (level_ - prev_level) + (1.0 - params_.beta) * trend_;
  seasonal_[s] = params_.gamma * (value - level_) + (1.0 - params_.gamma) * seasonal_[s];
  ++fitted_length_;
}

void HoltWinters::update(double value) {
  require(fitted_length_ > 0, "HoltWinters: update before fit");
  smooth_step(value, fitted_length_ % period_);
}

std::vector<double> HoltWinters::predict(std::size_t horizon) const {
  require(fitted_length_ > 0, "HoltWinters: predict before fit");
  std::vector<double> out;
  out.reserve(horizon);
  for (std::size_t h = 1; h <= horizon; ++h) {
    const std::size_t s = (fitted_length_ + h - 1) % period_;
    out.push_back(level_ + static_cast<double>(h) * trend_ + seasonal_[s]);
  }
  return out;
}

}  // namespace greenhpc::forecast
