#include "forecast/models.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace greenhpc::forecast {

using util::require;

// --- SeasonalNaive ----------------------------------------------------------

SeasonalNaive::SeasonalNaive(std::size_t period) : period_(period) {
  require(period >= 1, "SeasonalNaive: period must be >= 1");
}

void SeasonalNaive::fit(std::span<const double> series) {
  fit(SeriesView{series, {}});
}

void SeasonalNaive::fit(const SeriesView& view) {
  require(view.size() >= period_, "SeasonalNaive: history shorter than one period");
  last_season_.resize(period_);
  const std::size_t start = view.size() - period_;
  for (std::size_t i = 0; i < period_; ++i) last_season_[i] = view[start + i];
}

void SeasonalNaive::update(double value) {
  require(!last_season_.empty(), "SeasonalNaive: update before fit");
  last_season_.erase(last_season_.begin());
  last_season_.push_back(value);
}

bool SeasonalNaive::refit(const SeriesView& window) {
  if (window.size() < period_) return false;
  fit(window);  // the whole fit is an O(period) tail copy
  return true;
}

std::vector<double> SeasonalNaive::predict(std::size_t horizon) const {
  std::vector<double> out;
  predict_into(horizon, out);
  return out;
}

void SeasonalNaive::predict_into(std::size_t horizon, std::vector<double>& out) const {
  require(!last_season_.empty(), "SeasonalNaive: predict before fit");
  out.resize(horizon);
  for (std::size_t h = 0; h < horizon; ++h) out[h] = last_season_[h % period_];
}

double SeasonalNaive::predict_point(std::size_t horizon) const {
  require(!last_season_.empty(), "SeasonalNaive: predict before fit");
  require(horizon >= 1, "SeasonalNaive: horizon must be >= 1");
  return last_season_[(horizon - 1) % period_];
}

// --- SeasonalClimatology ----------------------------------------------------

SeasonalClimatology::SeasonalClimatology(std::size_t period) : period_(period) {
  require(period >= 1, "SeasonalClimatology: period must be >= 1");
}

void SeasonalClimatology::fit(std::span<const double> series) {
  fit(SeriesView{series, {}});
}

void SeasonalClimatology::fit(const SeriesView& view) {
  require(view.size() >= period_, "SeasonalClimatology: history shorter than one period");
  const std::size_t n = view.size();

  // Rebuild the per-slot sufficient statistics alongside the means: slot s
  // collects the window values at indices congruent to s, in order, and the
  // running sum below is exactly the left-to-right sum refit() re-derives.
  slot_values_.assign(period_, {});
  slot_sums_.assign(period_, 0.0);
  slot_dirty_.assign(period_, 0);
  first_abs_ = 0;
  next_abs_ = n;

  slot_means_.assign(period_, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    const double v = view[t];
    slot_means_[t % period_] += v;
    slot_values_[t % period_].push_back(v);
  }
  for (std::size_t s = 0; s < period_; ++s) {
    slot_sums_[s] = slot_means_[s];
    slot_means_[s] /= static_cast<double>(slot_values_[s].size());
  }

  // Lag-1 autocorrelation of the anomalies: how fast deviations from the
  // seasonal mean decay in this history.
  double num = 0.0, den = 0.0;
  double prev = view[0] - slot_means_[0];
  for (std::size_t t = 1; t < n; ++t) {
    const double a = view[t] - slot_means_[t % period_];
    num += a * prev;
    den += prev * prev;
    prev = a;
  }
  rho_ = den > 0.0 ? std::clamp(num / den, 0.0, 0.999) : 0.0;
  last_anomaly_ = prev;
  fitted_length_ = n;
}

void SeasonalClimatology::update(double value) {
  require(fitted_length_ > 0, "SeasonalClimatology: update before fit");
  // Exponential per-slot mean with roughly a one-week memory, matching the
  // window the periodic refit averages over.
  const std::size_t s = fitted_length_ % period_;
  slot_means_[s] += (value - slot_means_[s]) / 7.0;
  last_anomaly_ = value - slot_means_[s];
  ++fitted_length_;
}

void SeasonalClimatology::track(double value, const double* evicted) {
  if (slot_values_.empty()) return;  // statistics start at the first fit
  if (evicted != nullptr) {
    std::deque<double>& slot = slot_values_[first_abs_ % period_];
    if (slot.empty() || slot.front() != *evicted) {
      // Statistics fell out of sync with the caller's window (e.g. a fit on
      // a foreign series in between); refit() will detect the size mismatch
      // and fall back to the batch path.
      slot_values_.clear();
      return;
    }
    slot.pop_front();
    slot_dirty_[first_abs_ % period_] = 1;
    ++first_abs_;
  }
  slot_values_[next_abs_ % period_].push_back(value);
  slot_dirty_[next_abs_ % period_] = 1;
  ++next_abs_;
}

void SeasonalClimatology::means_from_stats(std::size_t window_start) {
  slot_means_.assign(period_, 0.0);
  for (std::size_t q = 0; q < period_; ++q) {
    if (slot_dirty_[q]) {
      // Left-to-right over the slot's values, the same association the
      // batch pass produces (it adds each slot's values in window order).
      double sum = 0.0;
      for (const double v : slot_values_[q]) sum += v;
      slot_sums_[q] = sum;
      slot_dirty_[q] = 0;
    }
  }
  // Window-relative slot s holds the values whose absolute slot is
  // (window_start + s) mod period.
  for (std::size_t s = 0; s < period_; ++s) {
    const std::size_t q = (window_start + s) % period_;
    slot_means_[s] = slot_sums_[q] / static_cast<double>(slot_values_[q].size());
  }
}

bool SeasonalClimatology::refit(const SeriesView& window) {
  const std::size_t n = window.size();
  if (n < period_ || slot_values_.size() != period_) return false;
  if (next_abs_ - first_abs_ != n) return false;  // statistics drifted; batch-fit
  for (std::size_t q = 0; q < period_; ++q) {
    if (slot_values_[q].empty()) return false;
  }

  means_from_stats(first_abs_);

  // The anomaly pass is identical arithmetic to fit()'s second loop.
  double num = 0.0, den = 0.0;
  double prev = window[0] - slot_means_[0];
  for (std::size_t t = 1; t < n; ++t) {
    const double a = window[t] - slot_means_[t % period_];
    num += a * prev;
    den += prev * prev;
    prev = a;
  }
  rho_ = den > 0.0 ? std::clamp(num / den, 0.0, 0.999) : 0.0;
  last_anomaly_ = prev;
  fitted_length_ = n;
  return true;
}

std::vector<double> SeasonalClimatology::predict(std::size_t horizon) const {
  std::vector<double> out;
  predict_into(horizon, out);
  return out;
}

void SeasonalClimatology::predict_into(std::size_t horizon, std::vector<double>& out) const {
  require(fitted_length_ > 0, "SeasonalClimatology: predict before fit");
  out.clear();
  out.reserve(horizon);
  double carry = last_anomaly_;
  for (std::size_t h = 1; h <= horizon; ++h) {
    carry *= rho_;
    out.push_back(slot_means_[(fitted_length_ + h - 1) % period_] + carry);
  }
}

double SeasonalClimatology::predict_point(std::size_t horizon) const {
  require(fitted_length_ > 0, "SeasonalClimatology: predict before fit");
  require(horizon >= 1, "SeasonalClimatology: horizon must be >= 1");
  double carry = last_anomaly_;
  for (std::size_t h = 1; h <= horizon; ++h) carry *= rho_;
  return slot_means_[(fitted_length_ + horizon - 1) % period_] + carry;
}

// --- ArModel ----------------------------------------------------------------

ArModel::ArModel(std::size_t order) : order_(order) {
  require(order >= 1, "ArModel: order must be >= 1");
}

void ArModel::fit(std::span<const double> series) {
  fit(SeriesView{series, {}});
}

void ArModel::fit(const SeriesView& view) {
  require(view.size() >= min_history(), "ArModel: history too short for order");
  const std::size_t n = view.size();
  const std::size_t p = order_ + 1;  // intercept + lags

  // Normal equations (X'X) beta = X'y accumulated row by row in the same
  // i,j order stats::multiple_fit uses, without materializing the design
  // matrix — the accumulated sums (and hence the coefficients) are
  // bit-identical to the rows-then-multiple_fit path this replaces. The
  // accumulators double as the sufficient statistics track() maintains.
  xtx_.assign(p * p, 0.0);
  xty_.assign(p, 0.0);
  window_.assign(view.first.begin(), view.first.end());
  window_.insert(window_.end(), view.second.begin(), view.second.end());
  for (std::size_t t = order_; t < n; ++t) accumulate_row(window_, t, 1.0);
  stats_valid_ = true;
  // Prime the maintained Cholesky factor from the exact accumulated normal
  // equations; the batch solve below stays on the Gaussian path so fit()'s
  // coefficients keep their historical bits.
  chol_valid_ = chol_.factor(xtx_, p);
  refits_since_factor_ = 0;

  std::vector<std::vector<double>> a(p, std::vector<double>(p));
  std::vector<double> b(xty_);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = i; j < p; ++j) a[i][j] = xtx_[i * p + j];
    for (std::size_t j = 0; j < i; ++j) a[i][j] = xtx_[j * p + i];
  }
  coefficients_ = stats::solve_linear_system(std::move(a), std::move(b));

  tail_.resize(order_);
  for (std::size_t i = 0; i < order_; ++i) tail_[i] = view[n - order_ + i];
}

void ArModel::accumulate_row(const std::deque<double>& window, std::size_t t, double sign) {
  // Row for target window[t]: [1, window[t-1], ..., window[t-order]].
  const std::size_t p = order_ + 1;
  const double y = window[t];
  for (std::size_t i = 0; i < p; ++i) {
    const double xi = i == 0 ? 1.0 : window[t - i];
    xty_[i] += sign * xi * y;
    for (std::size_t j = i; j < p; ++j) {
      const double xj = j == 0 ? 1.0 : window[t - j];
      xtx_[i * p + j] += sign * xi * xj;
    }
  }
}

void ArModel::update(double value) {
  require(!coefficients_.empty(), "ArModel: update before fit");
  tail_.erase(tail_.begin());
  tail_.push_back(value);
}

void ArModel::build_row(const std::deque<double>& window, std::size_t t) {
  const std::size_t p = order_ + 1;
  row_scratch_.resize(p);
  row_scratch_[0] = 1.0;
  for (std::size_t i = 1; i < p; ++i) row_scratch_[i] = window[t - i];
}

void ArModel::track(double value, const double* evicted) {
  if (!stats_valid_) return;
  if (evicted != nullptr) {
    if (window_.empty() || window_.front() != *evicted) {
      stats_valid_ = false;  // window drifted from the caller's; batch-fit next
      chol_valid_ = false;
      return;
    }
    // The row leaving the window is the oldest one: target window_[order_]
    // with lags window_[order_-1 .. 0].
    if (window_.size() > order_) {
      if (chol_valid_) {
        build_row(window_, order_);
        chol_valid_ = chol_.downdate(row_scratch_);  // refactored on next refit
      }
      accumulate_row(window_, order_, -1.0);
    }
    window_.pop_front();
  }
  window_.push_back(value);
  if (window_.size() > order_) {
    accumulate_row(window_, window_.size() - 1, 1.0);
    if (chol_valid_) {
      build_row(window_, window_.size() - 1);
      chol_.update(row_scratch_);
    }
  }
}

bool ArModel::refit(const SeriesView& window) {
  const std::size_t n = window.size();
  if (!stats_valid_ || n < min_history() || window_.size() != n) return false;
  const std::size_t p = order_ + 1;

  // Fast path: back-substitute through the maintained Cholesky factor —
  // O(p^2), versus the O(p^3) elimination this refit used to run. The factor
  // is re-derived from the exact accumulated X'X periodically so rank-1
  // drift stays far below the documented ~1e-9-relative batch agreement.
  if (chol_valid_ && refits_since_factor_ >= kRefactorInterval) chol_valid_ = false;
  if (!chol_valid_) {
    chol_valid_ = chol_.factor(xtx_, p);
    refits_since_factor_ = 0;
  }
  if (chol_valid_) {
    chol_.solve_into(xty_, coefficients_);
    ++refits_since_factor_;
    if (debug_cross_check_) {
      std::vector<std::vector<double>> a(p, std::vector<double>(p));
      std::vector<double> b(xty_);
      for (std::size_t i = 0; i < p; ++i) {
        for (std::size_t j = i; j < p; ++j) a[i][j] = xtx_[i * p + j];
        for (std::size_t j = 0; j < i; ++j) a[i][j] = xtx_[j * p + i];
      }
      const std::vector<double> gauss = stats::solve_linear_system(std::move(a), std::move(b));
      for (std::size_t i = 0; i < p; ++i) {
        require(std::abs(coefficients_[i] - gauss[i]) <=
                    1e-6 * std::max(1.0, std::abs(gauss[i])),
                "ArModel: Cholesky refit diverged from the batch Gaussian solve");
      }
    }
    tail_.resize(order_);
    for (std::size_t i = 0; i < order_; ++i) tail_[i] = window[n - order_ + i];
    return true;
  }

  // Fallback: the original Gaussian elimination on the accumulated normal
  // equations (also the debug reference above).
  std::vector<std::vector<double>> a(p, std::vector<double>(p));
  std::vector<double> b(xty_);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = i; j < p; ++j) a[i][j] = xtx_[i * p + j];
    for (std::size_t j = 0; j < i; ++j) a[i][j] = xtx_[j * p + i];
  }
  try {
    coefficients_ = stats::solve_linear_system(std::move(a), std::move(b));
  } catch (const std::exception&) {
    return false;  // singular under this window; let the batch path decide
  }
  tail_.resize(order_);
  for (std::size_t i = 0; i < order_; ++i) tail_[i] = window[n - order_ + i];
  return true;
}

std::vector<double> ArModel::predict(std::size_t horizon) const {
  std::vector<double> out;
  predict_into(horizon, out);
  return out;
}

void ArModel::predict_into(std::size_t horizon, std::vector<double>& out) const {
  require(!coefficients_.empty(), "ArModel: predict before fit");
  std::vector<double> window = tail_;  // oldest-first
  window.reserve(window.size() + horizon);
  out.clear();
  out.reserve(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    double y = coefficients_[0];
    for (std::size_t lag = 1; lag <= order_; ++lag)
      y += coefficients_[lag] * window[window.size() - lag];
    out.push_back(y);
    window.push_back(y);
  }
}

double ArModel::predict_point(std::size_t horizon) const {
  require(!coefficients_.empty(), "ArModel: predict before fit");
  require(horizon >= 1, "ArModel: horizon must be >= 1");
  std::vector<double>& window = point_scratch_;
  window.clear();
  window.reserve(tail_.size() + horizon);
  window.insert(window.end(), tail_.begin(), tail_.end());
  double y = 0.0;
  for (std::size_t h = 0; h < horizon; ++h) {
    y = coefficients_[0];
    for (std::size_t lag = 1; lag <= order_; ++lag)
      y += coefficients_[lag] * window[window.size() - lag];
    window.push_back(y);
  }
  return y;
}

// --- HoltWinters -------------------------------------------------------------

HoltWinters::HoltWinters(std::size_t period, Params params) : period_(period), params_(params) {
  require(period >= 2, "HoltWinters: period must be >= 2");
  for (double p : {params.alpha, params.beta, params.gamma})
    require(p > 0.0 && p < 1.0, "HoltWinters: smoothing parameters must be in (0,1)");
}

void HoltWinters::fit(std::span<const double> series) {
  fit(SeriesView{series, {}});
}

void HoltWinters::fit(const SeriesView& view) {
  require(view.size() >= min_history(), "HoltWinters: need at least two full seasons");

  // Classical initialization from the first two seasons.
  double mean1 = 0.0, mean2 = 0.0;
  for (std::size_t i = 0; i < period_; ++i) {
    mean1 += view[i];
    mean2 += view[period_ + i];
  }
  mean1 /= static_cast<double>(period_);
  mean2 /= static_cast<double>(period_);
  level_ = mean1;
  trend_ = (mean2 - mean1) / static_cast<double>(period_);
  seasonal_.assign(period_, 0.0);
  for (std::size_t i = 0; i < period_; ++i) seasonal_[i] = view[i] - mean1;

  // Smooth through the full history.
  fitted_length_ = 0;
  for (std::size_t t = 0; t < view.size(); ++t) smooth_step(view[t], t % period_);
}

void HoltWinters::smooth_step(double value, std::size_t s) {
  const double prev_level = level_;
  level_ = params_.alpha * (value - seasonal_[s]) + (1.0 - params_.alpha) * (level_ + trend_);
  trend_ = params_.beta * (level_ - prev_level) + (1.0 - params_.beta) * trend_;
  seasonal_[s] = params_.gamma * (value - level_) + (1.0 - params_.gamma) * seasonal_[s];
  ++fitted_length_;
}

void HoltWinters::update(double value) {
  require(fitted_length_ > 0, "HoltWinters: update before fit");
  smooth_step(value, fitted_length_ % period_);
}

std::vector<double> HoltWinters::predict(std::size_t horizon) const {
  std::vector<double> out;
  predict_into(horizon, out);
  return out;
}

void HoltWinters::predict_into(std::size_t horizon, std::vector<double>& out) const {
  require(fitted_length_ > 0, "HoltWinters: predict before fit");
  out.clear();
  out.reserve(horizon);
  for (std::size_t h = 1; h <= horizon; ++h) {
    const std::size_t s = (fitted_length_ + h - 1) % period_;
    out.push_back(level_ + static_cast<double>(h) * trend_ + seasonal_[s]);
  }
}

double HoltWinters::predict_point(std::size_t horizon) const {
  require(fitted_length_ > 0, "HoltWinters: predict before fit");
  require(horizon >= 1, "HoltWinters: horizon must be >= 1");
  const std::size_t s = (fitted_length_ + horizon - 1) % period_;
  return level_ + static_cast<double>(horizon) * trend_ + seasonal_[s];
}

}  // namespace greenhpc::forecast
