#include "forecast/models.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace greenhpc::forecast {

using util::require;

// --- SeasonalNaive ----------------------------------------------------------

SeasonalNaive::SeasonalNaive(std::size_t period) : period_(period) {
  require(period >= 1, "SeasonalNaive: period must be >= 1");
}

void SeasonalNaive::fit(std::span<const double> series) {
  require(series.size() >= period_, "SeasonalNaive: history shorter than one period");
  last_season_.assign(series.end() - static_cast<std::ptrdiff_t>(period_), series.end());
}

std::vector<double> SeasonalNaive::predict(std::size_t horizon) const {
  require(!last_season_.empty(), "SeasonalNaive: predict before fit");
  std::vector<double> out(horizon);
  for (std::size_t h = 0; h < horizon; ++h) out[h] = last_season_[h % period_];
  return out;
}

// --- ArModel ------------------------------------------------------------------

ArModel::ArModel(std::size_t order) : order_(order) {
  require(order >= 1, "ArModel: order must be >= 1");
}

void ArModel::fit(std::span<const double> series) {
  require(series.size() >= min_history(), "ArModel: history too short for order");
  const std::size_t n = series.size();

  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  rows.reserve(n - order_);
  for (std::size_t t = order_; t < n; ++t) {
    std::vector<double> row;
    row.reserve(order_ + 1);
    row.push_back(1.0);  // intercept
    for (std::size_t lag = 1; lag <= order_; ++lag) row.push_back(series[t - lag]);
    rows.push_back(std::move(row));
    targets.push_back(series[t]);
  }
  coefficients_ = stats::multiple_fit(rows, targets).coefficients;
  tail_.assign(series.end() - static_cast<std::ptrdiff_t>(order_), series.end());
}

std::vector<double> ArModel::predict(std::size_t horizon) const {
  require(!coefficients_.empty(), "ArModel: predict before fit");
  std::vector<double> window = tail_;  // oldest-first
  std::vector<double> out;
  out.reserve(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    double y = coefficients_[0];
    for (std::size_t lag = 1; lag <= order_; ++lag)
      y += coefficients_[lag] * window[window.size() - lag];
    out.push_back(y);
    window.push_back(y);
  }
  return out;
}

// --- HoltWinters ---------------------------------------------------------------

HoltWinters::HoltWinters(std::size_t period, Params params) : period_(period), params_(params) {
  require(period >= 2, "HoltWinters: period must be >= 2");
  for (double p : {params.alpha, params.beta, params.gamma})
    require(p > 0.0 && p < 1.0, "HoltWinters: smoothing parameters must be in (0,1)");
}

void HoltWinters::fit(std::span<const double> series) {
  require(series.size() >= min_history(), "HoltWinters: need at least two full seasons");

  // Classical initialization from the first two seasons.
  double mean1 = 0.0, mean2 = 0.0;
  for (std::size_t i = 0; i < period_; ++i) {
    mean1 += series[i];
    mean2 += series[period_ + i];
  }
  mean1 /= static_cast<double>(period_);
  mean2 /= static_cast<double>(period_);
  level_ = mean1;
  trend_ = (mean2 - mean1) / static_cast<double>(period_);
  seasonal_.assign(period_, 0.0);
  for (std::size_t i = 0; i < period_; ++i) seasonal_[i] = series[i] - mean1;

  // Smooth through the full history.
  for (std::size_t t = 0; t < series.size(); ++t) {
    const std::size_t s = t % period_;
    const double prev_level = level_;
    level_ = params_.alpha * (series[t] - seasonal_[s]) +
             (1.0 - params_.alpha) * (level_ + trend_);
    trend_ = params_.beta * (level_ - prev_level) + (1.0 - params_.beta) * trend_;
    seasonal_[s] = params_.gamma * (series[t] - level_) + (1.0 - params_.gamma) * seasonal_[s];
  }
  fitted_length_ = series.size();
}

std::vector<double> HoltWinters::predict(std::size_t horizon) const {
  require(fitted_length_ > 0, "HoltWinters: predict before fit");
  std::vector<double> out;
  out.reserve(horizon);
  for (std::size_t h = 1; h <= horizon; ++h) {
    const std::size_t s = (fitted_length_ + h - 1) % period_;
    out.push_back(level_ + static_cast<double>(h) * trend_ + seasonal_[s]);
  }
  return out;
}

}  // namespace greenhpc::forecast
