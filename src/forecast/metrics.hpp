#pragma once
// Forecast accuracy metrics and rolling-origin backtesting.

#include <span>
#include <vector>

#include "forecast/models.hpp"

namespace greenhpc::forecast {

[[nodiscard]] double mae(std::span<const double> truth, std::span<const double> predicted);
[[nodiscard]] double rmse(std::span<const double> truth, std::span<const double> predicted);
/// Mean absolute percentage error; truth values must be nonzero.
[[nodiscard]] double mape(std::span<const double> truth, std::span<const double> predicted);

struct BacktestResult {
  double mae = 0.0;
  double rmse = 0.0;
  double mape = 0.0;
  std::size_t folds = 0;
  /// Skill vs. the supplied baseline metric: 1 - rmse/baseline_rmse (filled
  /// by compare_backtests, 0 otherwise).
  double skill = 0.0;
};

/// Rolling-origin evaluation: fit on series[0..t), predict `horizon`, score
/// against series[t..t+horizon), advance by `stride`. The first origin is
/// max(min_train, model.min_history()).
[[nodiscard]] BacktestResult backtest(Forecaster& model, std::span<const double> series,
                                      std::size_t min_train, std::size_t horizon,
                                      std::size_t stride = 1);

/// Fills `candidate.skill` relative to `baseline`.
[[nodiscard]] BacktestResult with_skill(BacktestResult candidate, const BacktestResult& baseline);

}  // namespace greenhpc::forecast
