#pragma once
// ForecasterHub: the coordinator-owned home of the per-region forecasters.
//
// In the flagship configuration the forecast router and the migration
// planner both forecast the same per-region signal stream — historically
// with two private RollingForecaster stacks, doing the observe/refit/MAPE
// work twice per step and carrying two configs that could silently drift.
// The hub closes that: the fleet coordinator owns one hub, each consumer
// attaches for the signal it forecasts (carbon intensity or LMP price), and
// consumers of the same signal share one ForecasterBank — one observe, one
// refit, one skill score per region per step, and one config by
// construction. Sharing is refused (attach returns nullptr and the consumer
// keeps its private bank) when a consumer's forecaster config differs from
// the hub's, so an intentionally divergent setup degrades to the old
// behavior instead of silently adopting the wrong model.
//
// Shared state never changes a decision: RollingForecaster deduplicates
// repeated timestamps, so the second consumer's observe of the same control
// step is a no-op, and two private banks fed the identical stream hold
// bit-identical state anyway (pinned by the hub-equivalence test).

#include <array>
#include <memory>

#include "forecast/bank.hpp"

namespace greenhpc::obs {
class MetricsRegistry;
}

namespace greenhpc::forecast {

/// The grid signals the decision layers forecast per region.
enum class SignalKind : std::uint8_t { kCarbon = 0, kPrice = 1 };
inline constexpr std::size_t kSignalKindCount = 2;

class ForecasterHub {
 public:
  explicit ForecasterHub(RollingForecasterConfig config);

  [[nodiscard]] const RollingForecasterConfig& config() const { return config_; }

  /// The shared per-region bank for `signal`, created on first attach —
  /// nullptr when `config` differs from the hub's (the consumer must then
  /// keep its private bank rather than adopt a drifted configuration).
  [[nodiscard]] std::shared_ptr<ForecasterBank> attach(SignalKind signal,
                                                       const RollingForecasterConfig& config);

  /// Banks created so far (telemetry/tests: 1 means every consumer shares).
  [[nodiscard]] std::size_t banks_created() const;

  /// Registers per-signal, per-region forecaster-skill gauges (realized
  /// MAPE %, reliability gate) under `prefix` for `region_count` regions.
  /// Gauges read through forecaster() — a bank that has not grown to a
  /// region yet (or a signal nobody attached) samples as 0/1 defaults.
  void register_metrics(obs::MetricsRegistry& registry, const std::string& prefix,
                        std::size_t region_count) const;
  /// The bank for `signal` if any consumer attached for it.
  [[nodiscard]] const ForecasterBank* bank(SignalKind signal) const {
    return banks_[static_cast<std::size_t>(signal)].get();
  }

#ifdef GREENHPC_CHECK_INVARIANTS
  /// Test seam: mutable bank access so the invariants suite can corrupt a
  /// served prefix-sum cache (ForecasterBank::debug_corrupt_prefix).
  [[nodiscard]] ForecasterBank* debug_bank(SignalKind signal) {
    return banks_[static_cast<std::size_t>(signal)].get();
  }
#endif

 private:
  RollingForecasterConfig config_;
  std::array<std::shared_ptr<ForecasterBank>, kSignalKindCount> banks_;
};

}  // namespace greenhpc::forecast
