#pragma once
// Deterministic, seeded fault injection for the fleet step loop.
//
// The injector owns one SplitMix64-seeded stream per (region, fault kind)
// plus a fleet-wide stream for migration-link faults, all keyed off the run
// seed — so fault timelines are a pure function of (seed, plan) and are
// independent of routing policy, migration policy, and region-parallel
// stepping width. All draws happen from the coordinator's serial phases and
// advance with simulated time only; a run with `plan.enabled == false` never
// constructs an injector, keeping the zero-fault path bit-identical to a
// build without the fault layer.
//
// Window model: at most one open window per region per family. begin_step
// first closes windows that expired, then draws Bernoulli(rate * dt) for
// regions with no open window. The returned Events list is what changed this
// step; current state is queried via admit_ok / telemetry_ok / nodes_down /
// brownout_active.

#include <cstdint>
#include <vector>

#include "fault/plan.hpp"
#include "util/calendar.hpp"
#include "util/rng.hpp"

namespace greenhpc::fault {

/// Fault families, used to key the per-region RNG streams.
enum class FaultKind : std::uint8_t {
  kNodeFailure = 0,
  kBlackout,
  kBrownout,
  kTelemetryDropout,
  kLink,
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind);

/// Recovery bookkeeping across all families: the coordinator owns one of
/// these and feeds it from injector events plus the degradation paths.
struct FaultStats {
  std::size_t node_failures = 0;
  std::size_t blackouts = 0;
  std::size_t brownouts = 0;
  std::size_t dropouts = 0;
  std::size_t jobs_requeued = 0;       ///< kill-and-requeue restarts from node loss
  std::size_t link_stalls = 0;         ///< in-flight transfers delayed
  std::size_t link_failures = 0;       ///< in-flight transfers failed
  std::size_t migration_retries = 0;   ///< failed transfers relaunched
  std::size_t migrations_abandoned = 0;///< retry budget exhausted, resumed at source
  double capacity_gpu_hours_lost = 0.0;///< nodes_lost x GPUs x outage hours
  double repair_hours = 0.0;           ///< summed node-failure outage durations

  /// Mean time to repair across node-failure incidents, in hours.
  [[nodiscard]] double mttr_hours() const {
    return node_failures == 0 ? 0.0 : repair_hours / static_cast<double>(node_failures);
  }
};

class FaultInjector {
 public:
  struct NodeFailure {
    std::size_t region = 0;
    int nodes_lost = 0;
    util::TimePoint repair;
  };

  /// What changed during one begin_step call, in region-index order.
  struct Events {
    std::vector<NodeFailure> node_failures;
    std::vector<std::size_t> node_repairs;
    std::vector<std::size_t> blackout_begins;
    std::vector<std::size_t> blackout_ends;
    std::vector<std::size_t> brownout_begins;
    std::vector<std::size_t> brownout_ends;
    std::vector<std::size_t> dropout_begins;
    std::vector<std::size_t> dropout_ends;

    [[nodiscard]] bool empty() const {
      return node_failures.empty() && node_repairs.empty() && blackout_begins.empty() &&
             blackout_ends.empty() && brownout_begins.empty() && brownout_ends.empty() &&
             dropout_begins.empty() && dropout_ends.empty();
    }
  };

  /// `node_counts[i]` is region i's total node count (sizes node-loss draws).
  FaultInjector(FaultPlan plan, std::uint64_t seed, std::vector<int> node_counts);

  /// Advance fault windows across one lockstep step ending at t + dt.
  /// Serial-phase only; draws once per region per family at most.
  Events begin_step(util::TimePoint t, util::Duration dt);

  // -- current state, valid until the next begin_step ------------------------
  [[nodiscard]] bool admit_ok(std::size_t region) const;      ///< false during a blackout
  [[nodiscard]] bool telemetry_ok(std::size_t region) const;  ///< false during a dropout
  [[nodiscard]] bool brownout_active(std::size_t region) const;
  [[nodiscard]] int nodes_down(std::size_t region) const;
  [[nodiscard]] int total_nodes_down() const;
  [[nodiscard]] std::size_t regions_blacked_out() const;

  // -- migration-link draws: call once per in-flight transfer per step, in
  //    deque order, so the stream stays deterministic.
  [[nodiscard]] bool draw_link_stall() { return link_rng_.bernoulli(plan_.link_stall_prob); }
  [[nodiscard]] bool draw_link_fail() { return link_rng_.bernoulli(plan_.link_fail_prob); }

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] std::size_t region_count() const { return regions_.size(); }

 private:
  struct RegionState {
    int node_count = 0;
    int nodes_down = 0;
    util::TimePoint node_repair_at;
    bool blackout = false;
    util::TimePoint blackout_until;
    bool brownout = false;
    util::TimePoint brownout_until;
    bool dropout = false;
    util::TimePoint dropout_until;
    util::Rng node_rng{0};
    util::Rng blackout_rng{0};
    util::Rng brownout_rng{0};
    util::Rng dropout_rng{0};
  };

  FaultPlan plan_;
  std::vector<RegionState> regions_;
  util::Rng link_rng_{0};
};

}  // namespace greenhpc::fault
