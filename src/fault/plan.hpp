#pragma once
// Fault scenario description: which fault families fire, how often, and how
// long their windows last. A FaultPlan is pure configuration — the seeded
// draws happen in FaultInjector — so plans can be named, scaled by a single
// intensity knob for sweeps, and compared across runs.
//
// Rates are expressed per region-day (per transfer-step for link faults) and
// describe the *arrival* of a fault window; the matching duration field sets
// how long the window stays open. One window per region per family can be
// open at a time: real fleets batch concurrent node losses into one incident,
// and the single-window model keeps the seeded draw sequence trivially
// reproducible.

#include <optional>
#include <string>

#include "util/units.hpp"

namespace greenhpc::fault {

struct FaultPlan {
  bool enabled = false;

  // -- node failures: a region loses a slice of its nodes until repaired.
  double node_fail_per_region_day = 0.0;
  double node_fail_fraction = 0.10;  ///< fraction of the region's nodes lost per event
  util::Duration node_repair = util::hours(8);

  // -- blackouts: the region stops admitting work and is capped to idle power.
  double blackout_per_region_day = 0.0;
  util::Duration blackout_duration = util::hours(4);

  // -- brownouts: the region stays up but is power-capped.
  double brownout_per_region_day = 0.0;
  util::Duration brownout_duration = util::hours(6);
  double brownout_cap_fraction = 0.6;  ///< cap as a fraction of GPU TDP

  // -- migration-link faults: drawn per in-flight transfer per step.
  double link_stall_prob = 0.0;  ///< transfer arrival slips by link_stall
  double link_fail_prob = 0.0;   ///< transfer fails; retried with backoff
  util::Duration link_stall = util::minutes(45);

  // -- telemetry dropouts: carbon/price observations go dark for a window.
  double dropout_per_region_day = 0.0;
  util::Duration dropout_duration = util::hours(12);

  /// A copy with every rate/probability multiplied by `factor` (durations
  /// unchanged): the x-axis of the resilience sweep. factor == 0 keeps the
  /// injector attached but silent — useful for paired baselines.
  [[nodiscard]] FaultPlan scaled(double factor) const;

  /// Throws std::invalid_argument on out-of-range rates, probabilities, or
  /// windows.
  void validate() const;
};

/// Named plans for the CLI: "off" (disabled, the default) and "default"
/// (moderate rates across all four families). Returns nullopt for unknown
/// names.
[[nodiscard]] std::optional<FaultPlan> fault_plan_from_name(const std::string& name);

/// Comma-separated list of accepted plan names, for usage text.
[[nodiscard]] const char* fault_plan_names();

}  // namespace greenhpc::fault
