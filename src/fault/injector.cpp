#include "fault/injector.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace greenhpc::fault {
namespace {

/// Stream seed for (run seed, region, kind): a SplitMix64 scramble of the
/// tuple so neighboring regions and kinds land on unrelated streams.
std::uint64_t stream_seed(std::uint64_t seed, std::size_t region, FaultKind kind) {
  util::SplitMix64 mix(seed ^ (0xFA017BA5EULL + static_cast<std::uint64_t>(region) * 0x9E3779B97F4A7C15ULL +
                               static_cast<std::uint64_t>(kind) * 0x100000001B3ULL));
  return mix.next();
}

/// Per-step window-arrival probability for a per-region-day rate. Step sizes
/// are small (minutes) so the linear form is within rounding of 1 - e^-rt.
double step_probability(double per_day_rate, util::Duration dt) {
  return std::clamp(per_day_rate * (dt.seconds() / 86400.0), 0.0, 1.0);
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeFailure: return "node_failure";
    case FaultKind::kBlackout: return "blackout";
    case FaultKind::kBrownout: return "brownout";
    case FaultKind::kTelemetryDropout: return "telemetry_dropout";
    case FaultKind::kLink: return "link";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed, std::vector<int> node_counts)
    : plan_(plan) {
  plan_.validate();
  util::require(!node_counts.empty(), "FaultInjector: need at least one region");
  regions_.resize(node_counts.size());
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    util::require(node_counts[i] > 0, "FaultInjector: region node count must be positive");
    RegionState& r = regions_[i];
    r.node_count = node_counts[i];
    r.node_rng = util::Rng(stream_seed(seed, i, FaultKind::kNodeFailure));
    r.blackout_rng = util::Rng(stream_seed(seed, i, FaultKind::kBlackout));
    r.brownout_rng = util::Rng(stream_seed(seed, i, FaultKind::kBrownout));
    r.dropout_rng = util::Rng(stream_seed(seed, i, FaultKind::kTelemetryDropout));
  }
  link_rng_ = util::Rng(stream_seed(seed, regions_.size(), FaultKind::kLink));
}

FaultInjector::Events FaultInjector::begin_step(util::TimePoint t, util::Duration dt) {
  Events events;
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    RegionState& r = regions_[i];

    if (r.nodes_down > 0 && t >= r.node_repair_at) {
      r.nodes_down = 0;
      events.node_repairs.push_back(i);
    }
    if (r.nodes_down == 0 && r.node_count >= 2 &&
        r.node_rng.bernoulli(step_probability(plan_.node_fail_per_region_day, dt))) {
      const int lost = std::clamp(
          static_cast<int>(std::lround(plan_.node_fail_fraction * r.node_count)), 1,
          r.node_count - 1);  // never take the whole region down; blackouts model that
      r.nodes_down = lost;
      r.node_repair_at = t + plan_.node_repair;
      events.node_failures.push_back({i, lost, r.node_repair_at});
    }

    if (r.blackout && t >= r.blackout_until) {
      r.blackout = false;
      events.blackout_ends.push_back(i);
    }
    if (!r.blackout &&
        r.blackout_rng.bernoulli(step_probability(plan_.blackout_per_region_day, dt))) {
      r.blackout = true;
      r.blackout_until = t + plan_.blackout_duration;
      events.blackout_begins.push_back(i);
    }

    if (r.brownout && t >= r.brownout_until) {
      r.brownout = false;
      events.brownout_ends.push_back(i);
    }
    if (!r.brownout &&
        r.brownout_rng.bernoulli(step_probability(plan_.brownout_per_region_day, dt))) {
      r.brownout = true;
      r.brownout_until = t + plan_.brownout_duration;
      events.brownout_begins.push_back(i);
    }

    if (r.dropout && t >= r.dropout_until) {
      r.dropout = false;
      events.dropout_ends.push_back(i);
    }
    if (!r.dropout &&
        r.dropout_rng.bernoulli(step_probability(plan_.dropout_per_region_day, dt))) {
      r.dropout = true;
      r.dropout_until = t + plan_.dropout_duration;
      events.dropout_begins.push_back(i);
    }
  }
  return events;
}

bool FaultInjector::admit_ok(std::size_t region) const { return !regions_[region].blackout; }

bool FaultInjector::telemetry_ok(std::size_t region) const { return !regions_[region].dropout; }

bool FaultInjector::brownout_active(std::size_t region) const { return regions_[region].brownout; }

int FaultInjector::nodes_down(std::size_t region) const { return regions_[region].nodes_down; }

int FaultInjector::total_nodes_down() const {
  int down = 0;
  for (const RegionState& r : regions_) down += r.nodes_down;
  return down;
}

std::size_t FaultInjector::regions_blacked_out() const {
  std::size_t out = 0;
  for (const RegionState& r : regions_) out += r.blackout ? 1 : 0;
  return out;
}

}  // namespace greenhpc::fault
