#include "fault/plan.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace greenhpc::fault {

FaultPlan FaultPlan::scaled(double factor) const {
  util::require(factor >= 0.0, "FaultPlan::scaled: factor must be >= 0");
  FaultPlan out = *this;
  out.node_fail_per_region_day *= factor;
  out.blackout_per_region_day *= factor;
  out.brownout_per_region_day *= factor;
  out.link_stall_prob = std::min(1.0, out.link_stall_prob * factor);
  out.link_fail_prob = std::min(1.0, out.link_fail_prob * factor);
  out.dropout_per_region_day *= factor;
  return out;
}

void FaultPlan::validate() const {
  util::require(node_fail_per_region_day >= 0.0 && blackout_per_region_day >= 0.0 &&
                    brownout_per_region_day >= 0.0 && dropout_per_region_day >= 0.0,
                "FaultPlan: rates must be >= 0");
  util::require(node_fail_fraction >= 0.0 && node_fail_fraction <= 1.0,
                "FaultPlan: node_fail_fraction must be in [0, 1]");
  util::require(link_stall_prob >= 0.0 && link_stall_prob <= 1.0 && link_fail_prob >= 0.0 &&
                    link_fail_prob <= 1.0,
                "FaultPlan: link fault probabilities must be in [0, 1]");
  util::require(brownout_cap_fraction > 0.0 && brownout_cap_fraction <= 1.0,
                "FaultPlan: brownout_cap_fraction must be in (0, 1]");
  util::require(node_repair > util::seconds(0) && blackout_duration > util::seconds(0) &&
                    brownout_duration > util::seconds(0) && dropout_duration > util::seconds(0) &&
                    link_stall > util::seconds(0),
                "FaultPlan: fault windows must be positive");
}

std::optional<FaultPlan> fault_plan_from_name(const std::string& name) {
  if (name == "off") return FaultPlan{};
  if (name == "default") {
    // Moderate production-flavored rates: roughly one node incident per
    // region per week, a grid event per region per month, a telemetry gap
    // per region per week, and a few-percent chance per step that an
    // in-flight checkpoint transfer degrades.
    FaultPlan plan;
    plan.enabled = true;
    plan.node_fail_per_region_day = 0.15;
    plan.node_fail_fraction = 0.10;
    plan.node_repair = util::hours(8);
    plan.blackout_per_region_day = 0.03;
    plan.blackout_duration = util::hours(4);
    plan.brownout_per_region_day = 0.10;
    plan.brownout_duration = util::hours(6);
    plan.brownout_cap_fraction = 0.6;
    plan.link_stall_prob = 0.02;
    plan.link_fail_prob = 0.01;
    plan.link_stall = util::minutes(45);
    plan.dropout_per_region_day = 0.08;
    plan.dropout_duration = util::hours(12);
    return plan;
  }
  return std::nullopt;
}

const char* fault_plan_names() { return "off, default"; }

}  // namespace greenhpc::fault
