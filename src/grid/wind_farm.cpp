#include "grid/wind_farm.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace greenhpc::grid {

using util::require;

util::Power turbine_power(const TurbineSpec& spec, double wind_ms) {
  require(spec.cut_in_ms > 0.0 && spec.rated_ms > spec.cut_in_ms &&
              spec.cut_out_ms > spec.rated_ms,
          "turbine_power: cut-in < rated < cut-out must hold");
  require(wind_ms >= 0.0, "turbine_power: negative wind speed");
  if (wind_ms < spec.cut_in_ms || wind_ms >= spec.cut_out_ms) return util::watts(0.0);
  if (wind_ms >= spec.rated_ms) return spec.rated;
  // Cubic ramp between cut-in and rated (kinetic energy flux ~ v^3).
  const double ci3 = std::pow(spec.cut_in_ms, 3);
  const double r3 = std::pow(spec.rated_ms, 3);
  const double v3 = std::pow(wind_ms, 3);
  return spec.rated * ((v3 - ci3) / (r3 - ci3));
}

WindFarm::WindFarm(WindFarmConfig config)
    : config_(config), synoptic_(config.seed, config.synoptic_period) {
  require(config_.turbine_count >= 1, "WindFarm: need at least one turbine");
  require(config_.availability > 0.0 && config_.availability <= 1.0,
          "WindFarm: availability must be in (0,1]");
  for (double v : config_.mean_ms_by_month)
    require(v > 0.0, "WindFarm: monthly mean wind speeds must be positive");
}

double WindFarm::wind_speed_at(util::TimePoint t) const {
  const util::MonthKey mk = util::month_of(t);
  const double base = config_.mean_ms_by_month[static_cast<std::size_t>(mk.month - 1)];
  double v = base * (1.0 + config_.synoptic_amplitude * synoptic_.value(t));
  // Hub-height winds pick up in the afternoon.
  const double h = util::hour_of_day(t);
  v += config_.diurnal_ms * std::sin(2.0 * std::numbers::pi * (h - 9.0) / 24.0);
  return std::max(0.0, v);
}

util::Power WindFarm::output_at(util::TimePoint t) const {
  const util::Power per_turbine = turbine_power(config_.turbine, wind_speed_at(t));
  return per_turbine * (static_cast<double>(config_.turbine_count) * config_.availability);
}

util::Power WindFarm::capacity() const {
  return config_.turbine.rated * static_cast<double>(config_.turbine_count);
}

double WindFarm::capacity_factor(util::TimePoint start, util::TimePoint end) const {
  require(end > start, "WindFarm::capacity_factor: empty interval");
  double total_mw = 0.0;
  std::size_t samples = 0;
  for (util::TimePoint t = start; t < end; t += util::hours(1)) {
    total_mw += output_at(t).megawatts();
    ++samples;
  }
  return total_mw / (static_cast<double>(samples) * capacity().megawatts());
}

std::vector<double> WindFarm::hourly_output_mw(util::TimePoint start, int hours) const {
  require(hours >= 1, "WindFarm::hourly_output_mw: need at least one hour");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(hours));
  for (int h = 0; h < hours; ++h) out.push_back(output_at(start + util::hours(h)).megawatts());
  return out;
}

}  // namespace greenhpc::grid
