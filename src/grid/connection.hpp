#pragma once
// Metered grid connection.
//
// Every joule the datacenter pulls from the grid flows through this meter,
// which prices it (LMP model), attributes carbon (fuel-mix intensity), and
// attributes indirect water use (power-plant cooling — the Sec. I point that
// "50% of servers are at least partially supplied by power plants in water
// stressed areas"). Monthly ledgers feed Figs. 2-5 and the ablations.

#include "grid/carbon.hpp"
#include "grid/price.hpp"
#include "sim/recorder.hpp"
#include "util/units.hpp"

namespace greenhpc::grid {

/// Totals accumulated by a GridConnection (or any energy ledger).
struct EnergyLedger {
  util::Energy energy;
  util::Money cost;
  util::MassCo2 carbon;
  util::WaterVolume water;

  EnergyLedger& operator+=(const EnergyLedger& o) {
    energy += o.energy;
    cost += o.cost;
    carbon += o.carbon;
    water += o.water;
    return *this;
  }
};

struct GridConnectionConfig {
  /// Indirect water footprint of generation (thermoelectric average ~1.8 L/kWh).
  util::WaterIntensity generation_water = util::liters_per_kwh(1.8);
};

class GridConnection {
 public:
  /// Both models are borrowed and must outlive the connection.
  GridConnection(const LmpPriceModel* price_model, const CarbonIntensityModel* carbon_model,
                 GridConnectionConfig config = {});

  /// Meters `average_power` drawn over [t, t+dt): accumulates energy, cost
  /// at the instantaneous LMP, carbon at the instantaneous intensity, and
  /// indirect water. Returns the increment.
  EnergyLedger draw(util::TimePoint t, util::Power average_power, util::Duration dt);

  [[nodiscard]] const EnergyLedger& totals() const { return totals_; }

  /// Monthly mean drawn power (kW) — the Fig. 2 left axis.
  [[nodiscard]] const sim::MonthlyAccumulator& monthly_power() const { return monthly_power_; }
  /// Monthly energy cost ($) and carbon (kg).
  [[nodiscard]] const sim::MonthlyAccumulator& monthly_cost() const { return monthly_cost_; }
  [[nodiscard]] const sim::MonthlyAccumulator& monthly_carbon() const { return monthly_carbon_; }

  [[nodiscard]] const LmpPriceModel& price_model() const { return *price_model_; }
  [[nodiscard]] const CarbonIntensityModel& carbon_model() const { return *carbon_model_; }

 private:
  const LmpPriceModel* price_model_;
  const CarbonIntensityModel* carbon_model_;
  GridConnectionConfig config_;
  EnergyLedger totals_;
  sim::MonthlyAccumulator monthly_power_;   // value = kW
  sim::MonthlyAccumulator monthly_cost_;    // value = $/s (integral = $)
  sim::MonthlyAccumulator monthly_carbon_;  // value = kg/s (integral = kg)
};

}  // namespace greenhpc::grid
