#pragma once
// Grid fuel-mix model.
//
// Reproduces the substrate behind the paper's Figs. 2-3: the share of
// supplied energy generated from each fuel, hour by hour, for an ISO-NE-like
// grid serving south-eastern/central Massachusetts in 2020-21. Calibration:
// solar+wind share peaks in spring (~8-8.5% Mar-May) and bottoms out in
// mid-summer (~5% Jul-Aug), matching the right axes of Figs. 2 and 3.
// Solar follows a daylight diurnal curve; wind carries smooth stochastic
// variation; dispatchable gas absorbs the slack so shares always sum to 1.

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "util/calendar.hpp"
#include "util/noise.hpp"
#include "util/units.hpp"

namespace greenhpc::grid {

enum class Fuel : std::uint8_t {
  kSolar = 0,
  kWind,
  kHydro,
  kNuclear,
  kNaturalGas,
  kCoal,
  kOil,
  kOther,  // refuse, wood, net imports
};
inline constexpr std::size_t kFuelCount = 8;

[[nodiscard]] const char* fuel_name(Fuel f);

/// Fractional generation shares; invariant: each in [0,1], sum == 1.
class FuelMix {
 public:
  FuelMix() = default;
  /// Normalizes the given raw weights (must be non-negative, not all zero).
  static FuelMix normalized(const std::array<double, kFuelCount>& weights);

  [[nodiscard]] double share(Fuel f) const { return shares_[static_cast<std::size_t>(f)]; }
  [[nodiscard]] std::span<const double, kFuelCount> shares() const { return shares_; }

  /// Solar + wind: the quantity the paper plots as "% Total from Solar/Wind".
  [[nodiscard]] double renewable_share() const {
    return share(Fuel::kSolar) + share(Fuel::kWind);
  }
  /// Broader low-carbon share (adds hydro and nuclear).
  [[nodiscard]] double low_carbon_share() const {
    return renewable_share() + share(Fuel::kHydro) + share(Fuel::kNuclear);
  }

 private:
  std::array<double, kFuelCount> shares_ = {0, 0, 0, 0, 1.0, 0, 0, 0};
};

/// Configuration for the seasonal fuel-mix model; defaults are the ISO-NE
/// 2020-21 calibration described in DESIGN.md §3.
struct FuelMixConfig {
  /// Month-of-year (index 0 = January) mean shares for solar and wind, in
  /// percent of total supply.
  std::array<double, 12> solar_pct_by_month = {1.0, 1.5, 2.2, 2.8, 3.0, 3.0,
                                               2.8, 2.6, 2.2, 1.6, 1.2, 0.9};
  std::array<double, 12> wind_pct_by_month = {5.5, 6.0, 6.0, 5.7, 5.0, 3.5,
                                              2.4, 2.4, 3.3, 4.6, 5.6, 5.4};
  double hydro_pct = 8.0;
  double nuclear_pct = 26.0;
  double coal_pct = 0.8;
  double oil_pct = 0.7;
  double other_pct = 8.0;
  /// Relative amplitude of the smooth stochastic wind variation.
  double wind_noise_amplitude = 0.45;
  /// Knot spacing of the wind noise process (wind regimes last ~2 days).
  util::Duration wind_noise_period = util::hours(48);
  std::uint64_t seed = 20220101;
};

class FuelMixModel {
 public:
  explicit FuelMixModel(FuelMixConfig config = {});

  /// Instantaneous fuel mix at time t.
  [[nodiscard]] FuelMix mix_at(util::TimePoint t) const;

  /// Time-averaged mix over [start, end) sampled at `step` (default 1 h).
  [[nodiscard]] FuelMix average_mix(util::TimePoint start, util::TimePoint end,
                                    util::Duration step = util::hours(1)) const;

  /// Average renewable (solar+wind) share for a calendar month, in percent —
  /// directly comparable to the right axis of Figs. 2-3.
  [[nodiscard]] double monthly_renewable_pct(util::MonthKey month) const;

  [[nodiscard]] const FuelMixConfig& config() const { return config_; }

 private:
  /// Daylight-shaped multiplier with mean ~1 over a day.
  [[nodiscard]] double solar_diurnal_factor(util::TimePoint t) const;
  /// Smoothly interpolated month-of-year value (piecewise-linear on mid-months).
  [[nodiscard]] static double seasonal_value(const std::array<double, 12>& by_month,
                                             util::TimePoint t);
  [[nodiscard]] FuelMix compute_mix(util::TimePoint t) const;

  FuelMixConfig config_;
  util::FractalNoise wind_noise_;

  // Single-entry memo: the carbon model, the price coupling, and the
  // scheduler signals each ask for the same instant within one step. Pure
  // recompute avoidance.
  mutable bool memo_valid_ = false;
  mutable util::TimePoint memo_t_;
  mutable FuelMix memo_value_;
};

}  // namespace greenhpc::grid
