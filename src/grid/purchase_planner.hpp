#pragma once
// Opportunity-cost-aware energy purchase planning (Sec. II-A).
//
// "One strategy ... is to purchase more power during times when sustainable
// energy takes up a larger share of the fuel mix (e.g. March to May) and
// either (1) capitalize during that time period by encouraging more cluster
// utilization during those months or (2) store that energy to help offset
// energy consumption during times where the fuel mix is less sustainably
// sourced."
//
// The planner operates at monthly granularity. Given the baseline monthly
// demand and the grid's monthly price/green-share/intensity profile, it
// produces a revised purchase schedule under one of the two strategies and
// reports the fiscal and carbon opportunity-cost savings versus baseline.

#include <array>
#include <vector>

#include "grid/carbon.hpp"
#include "grid/fuel_mix.hpp"
#include "grid/price.hpp"
#include "util/units.hpp"

namespace greenhpc::grid {

/// One month of the plan.
struct MonthPlan {
  util::MonthKey month;
  util::Energy baseline_demand;   ///< what the cluster would draw untouched
  util::Energy purchased;         ///< what we actually buy this month
  util::Energy shifted_in;        ///< demand moved INTO this month (strategy 1)
  util::Energy shifted_out;       ///< demand moved OUT of this month
  util::Energy stored;            ///< bought for storage this month (strategy 2)
  util::Energy discharged;        ///< served from storage this month
  util::EnergyPrice price;        ///< monthly average LMP
  double renewable_pct = 0.0;     ///< monthly average solar+wind share (%)
  util::CarbonIntensity carbon;   ///< monthly average intensity
};

struct PlanSummary {
  std::vector<MonthPlan> months;
  util::Money baseline_cost;
  util::Money planned_cost;
  util::MassCo2 baseline_carbon;
  util::MassCo2 planned_carbon;

  [[nodiscard]] double cost_saving_pct() const;
  [[nodiscard]] double carbon_saving_pct() const;
};

class PurchasePlanner {
 public:
  /// Both models are borrowed and must outlive the planner.
  PurchasePlanner(const LmpPriceModel* price_model, const CarbonIntensityModel* carbon_model,
                  const FuelMixModel* mix_model);

  /// Strategy 1 — load shifting: move up to `deferrable_fraction` of each
  /// month's demand into greener months at most `max_shift_months` away
  /// (deadline tolerance); a receiving month can absorb at most
  /// `absorb_headroom` extra relative to its baseline (cluster capacity).
  [[nodiscard]] PlanSummary plan_load_shift(const std::vector<MonthPlan>& baseline,
                                            double deferrable_fraction, int max_shift_months,
                                            double absorb_headroom) const;

  /// Strategy 2 — storage: each month may bank up to `monthly_storage_cap`
  /// of green-month energy (round-trip efficiency applied) and draw it back
  /// in browner months within `max_shift_months`.
  [[nodiscard]] PlanSummary plan_storage(const std::vector<MonthPlan>& baseline,
                                         util::Energy monthly_storage_cap, int max_shift_months,
                                         double round_trip_efficiency) const;

  /// Builds the baseline months (prices/shares/intensities filled in) for a
  /// demand profile; demand[i] corresponds to `start` advanced i months.
  [[nodiscard]] std::vector<MonthPlan> make_baseline(util::MonthKey start,
                                                     const std::vector<util::Energy>& demand) const;

 private:
  [[nodiscard]] static PlanSummary summarize(std::vector<MonthPlan> months);

  const LmpPriceModel* price_model_;
  const CarbonIntensityModel* carbon_model_;
  const FuelMixModel* mix_model_;
};

}  // namespace greenhpc::grid
