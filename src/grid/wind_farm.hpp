#pragma once
// Wind farm model (Sec. IV-C).
//
// "wind farms provide inexpensive, carbon-free energy but can be
// unpredictable, making planning and energy delivery/storage difficult. In
// response, DeepMind has developed neural networks ... to forecast energy
// output 36 hours ahead." This module supplies the physical substrate for
// that experiment: a wind-speed process (seasonal + synoptic regimes +
// diurnal) driving a standard turbine power curve (cut-in / cubic ramp /
// rated / cut-out), aggregated over a farm. examples/wind_forecast.cpp runs
// the paper's forecasting-and-commitment story on this farm's output.

#include <cstdint>

#include "util/calendar.hpp"
#include "util/noise.hpp"
#include "util/units.hpp"

namespace greenhpc::grid {

/// A utility-scale turbine (GE 2.5 MW class by default).
struct TurbineSpec {
  double cut_in_ms = 3.0;    ///< below this, no generation
  double rated_ms = 12.0;    ///< at/above this, rated power
  double cut_out_ms = 25.0;  ///< above this, shutdown for protection
  util::Power rated = util::megawatts(2.5);
};

/// Power-curve evaluation: 0 below cut-in, cubic ramp to rated, flat at
/// rated, 0 above cut-out.
[[nodiscard]] util::Power turbine_power(const TurbineSpec& spec, double wind_ms);

struct WindFarmConfig {
  TurbineSpec turbine;
  int turbine_count = 60;
  /// Month-of-year mean wind speed at hub height (m/s); New England
  /// onshore-coastal shape: windy winter, calm mid-summer.
  std::array<double, 12> mean_ms_by_month = {8.6, 8.4, 8.2, 7.6, 6.8, 6.2,
                                             5.8, 5.9, 6.5, 7.3, 8.0, 8.5};
  /// Relative amplitude of synoptic (weather-regime) variation.
  double synoptic_amplitude = 0.45;
  util::Duration synoptic_period = util::hours(42);
  /// Diurnal amplitude (m/s): afternoons are windier at hub height.
  double diurnal_ms = 0.6;
  /// Fraction of turbines available (maintenance/derating).
  double availability = 0.95;
  std::uint64_t seed = 36524;
};

class WindFarm {
 public:
  WindFarm() : WindFarm(WindFarmConfig{}) {}
  explicit WindFarm(WindFarmConfig config);

  /// Hub-height wind speed at t (m/s, >= 0).
  [[nodiscard]] double wind_speed_at(util::TimePoint t) const;

  /// Farm electrical output at t.
  [[nodiscard]] util::Power output_at(util::TimePoint t) const;

  /// Nameplate capacity (count x rated).
  [[nodiscard]] util::Power capacity() const;

  /// Capacity factor over [start, end) (hourly sampling).
  [[nodiscard]] double capacity_factor(util::TimePoint start, util::TimePoint end) const;

  /// Hourly output series in MW for `hours` starting at `start` — the input
  /// the forecasting example trains on.
  [[nodiscard]] std::vector<double> hourly_output_mw(util::TimePoint start, int hours) const;

  [[nodiscard]] const WindFarmConfig& config() const { return config_; }

 private:
  WindFarmConfig config_;
  util::FractalNoise synoptic_;
};

}  // namespace greenhpc::grid
