#pragma once
// Carbon intensity of delivered electricity.
//
// The paper argues the *composition* of supplied power carries "an implicit
// environmental opportunity cost" (Sec. II-A): the same kWh is cheaper in
// carbon when the fuel mix is greener. This model turns a FuelMix into kg
// CO2 per kWh using published life-cycle emission factors, so schedulers and
// purchase planners can price that opportunity cost explicitly.

#include <array>

#include "grid/fuel_mix.hpp"
#include "util/units.hpp"

namespace greenhpc::grid {

/// Life-cycle emission factors (kg CO2e per kWh generated). Defaults follow
/// IPCC AR5 median values: coal 0.82, gas 0.49, oil 0.74, solar 0.045,
/// wind 0.011, hydro 0.024, nuclear 0.012, other (biomass/waste mix) 0.23.
struct EmissionFactors {
  std::array<double, kFuelCount> kg_per_kwh = {
      /*solar*/ 0.045, /*wind*/ 0.011, /*hydro*/ 0.024, /*nuclear*/ 0.012,
      /*gas*/ 0.49,    /*coal*/ 0.82,  /*oil*/ 0.74,    /*other*/ 0.23};

  [[nodiscard]] double factor(Fuel f) const { return kg_per_kwh[static_cast<std::size_t>(f)]; }
};

/// Maps the instantaneous fuel mix to a grid carbon intensity.
class CarbonIntensityModel {
 public:
  explicit CarbonIntensityModel(const FuelMixModel* mix_model, EmissionFactors factors = {});

  /// Intensity of the mix itself (share-weighted emission factors).
  [[nodiscard]] util::CarbonIntensity intensity_of(const FuelMix& mix) const;

  /// Intensity of delivered power at time t.
  [[nodiscard]] util::CarbonIntensity intensity_at(util::TimePoint t) const;

  /// Time-averaged intensity over a month (hourly sampling).
  [[nodiscard]] util::CarbonIntensity monthly_average(util::MonthKey month) const;

 private:
  const FuelMixModel* mix_model_;  // non-owning; outlives this model
  EmissionFactors factors_;

  // Single-entry memo (see LmpPriceModel): pure recompute avoidance for the
  // several same-instant queries one simulation step issues.
  mutable bool memo_valid_ = false;
  mutable util::TimePoint memo_t_;
  mutable util::CarbonIntensity memo_value_;
};

}  // namespace greenhpc::grid
