#pragma once
// Behind-the-meter battery storage and arbitrage policies.
//
// Sec. II-A strategy (2): "store that energy to help offset energy
// consumption during times where the fuel mix is less sustainably sourced."
// BatteryStorage models a lithium-ion bank with power limits and round-trip
// losses; the policies decide when to charge (cheap/green hours) and when to
// discharge (expensive/brown hours). The ABL-STOR bench sweeps capacity and
// compares a myopic threshold policy with a forecast-driven one.

#include <functional>
#include <vector>

#include "util/calendar.hpp"
#include "util/units.hpp"

namespace greenhpc::grid {

struct BatteryConfig {
  util::Energy capacity = util::kilowatt_hours(500.0);
  util::Power max_charge = util::kilowatts(125.0);
  util::Power max_discharge = util::kilowatts(125.0);
  /// One-way efficiencies; round-trip = charge_eff * discharge_eff (~0.90).
  double charge_efficiency = 0.95;
  double discharge_efficiency = 0.95;
  /// Initial state of charge as a fraction of capacity.
  double initial_soc_fraction = 0.5;
};

class BatteryStorage {
 public:
  explicit BatteryStorage(BatteryConfig config = {});

  /// Offers `power` from the grid for `dt`; stores what fits (after charge
  /// losses, rate- and capacity-limited). Returns the energy actually drawn
  /// FROM THE GRID (i.e. including losses).
  util::Energy charge(util::Power power, util::Duration dt);

  /// Requests `power` for `dt`; returns the energy actually DELIVERED to the
  /// load (after discharge losses, rate- and SoC-limited).
  util::Energy discharge(util::Power power, util::Duration dt);

  [[nodiscard]] util::Energy state_of_charge() const { return soc_; }
  [[nodiscard]] double soc_fraction() const { return soc_ / config_.capacity; }
  [[nodiscard]] const BatteryConfig& config() const { return config_; }

  /// Lifetime counters (for efficiency/degradation analyses).
  [[nodiscard]] util::Energy total_grid_energy_in() const { return grid_in_; }
  [[nodiscard]] util::Energy total_delivered_out() const { return delivered_out_; }
  [[nodiscard]] util::Energy total_losses() const;
  /// Equivalent full cycles (delivered energy / capacity).
  [[nodiscard]] double equivalent_cycles() const;

 private:
  BatteryConfig config_;
  util::Energy soc_;
  util::Energy grid_in_;
  util::Energy delivered_out_;
};

/// What an arbitrage policy wants the battery to do over the next step.
struct BatteryAction {
  enum class Kind { kIdle, kCharge, kDischarge } kind = Kind::kIdle;
  util::Power power;  ///< magnitude of the charge or discharge request
};

/// Market conditions handed to a policy each control step.
struct MarketView {
  util::TimePoint now;
  util::EnergyPrice price;
  util::CarbonIntensity carbon;
  double renewable_share = 0.0;  ///< solar+wind fraction of the fuel mix
  double soc_fraction = 0.0;
};

/// Pure decision rule: conditions in, action out.
class ArbitragePolicy {
 public:
  virtual ~ArbitragePolicy() = default;
  [[nodiscard]] virtual BatteryAction decide(const MarketView& view) const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Myopic rule: charge below the charge threshold (price) or above the
/// renewable-share threshold; discharge above the discharge price threshold.
class ThresholdArbitragePolicy final : public ArbitragePolicy {
 public:
  struct Params {
    util::EnergyPrice charge_below = util::usd_per_mwh(25.0);
    util::EnergyPrice discharge_above = util::usd_per_mwh(40.0);
    double charge_when_renewables_above = 0.085;
    util::Power rate = util::kilowatts(125.0);
  };
  ThresholdArbitragePolicy() : ThresholdArbitragePolicy(Params{}) {}
  /// Throws if charge_below >= discharge_above (an inverted band would
  /// charge and discharge on the same price).
  explicit ThresholdArbitragePolicy(Params params);

  [[nodiscard]] BatteryAction decide(const MarketView& view) const override;
  [[nodiscard]] const char* name() const override { return "threshold"; }

 private:
  Params params_;
};

/// Forecast-driven rule: charge when the current price sits in the bottom
/// quantile of the forecast window, discharge in the top quantile. The
/// forecast function returns expected hourly prices for the lookahead window
/// starting at `now` (supplied by forecast:: or by an oracle in tests).
class ForecastArbitragePolicy final : public ArbitragePolicy {
 public:
  using PriceForecastFn = std::function<std::vector<double>(util::TimePoint now)>;

  struct Params {
    double charge_quantile = 0.25;
    double discharge_quantile = 0.75;
    util::Power rate = util::kilowatts(125.0);
  };
  explicit ForecastArbitragePolicy(PriceForecastFn forecast)
      : ForecastArbitragePolicy(std::move(forecast), Params{}) {}
  ForecastArbitragePolicy(PriceForecastFn forecast, Params params);

  [[nodiscard]] BatteryAction decide(const MarketView& view) const override;
  [[nodiscard]] const char* name() const override { return "forecast"; }

 private:
  PriceForecastFn forecast_;
  Params params_;
};

}  // namespace greenhpc::grid
