#include "grid/battery.hpp"

#include <algorithm>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace greenhpc::grid {

using util::require;

BatteryStorage::BatteryStorage(BatteryConfig config) : config_(config) {
  require(config_.capacity.joules() > 0.0, "BatteryStorage: capacity must be positive");
  require(config_.max_charge.watts() > 0.0, "BatteryStorage: charge rate must be positive");
  require(config_.max_discharge.watts() > 0.0, "BatteryStorage: discharge rate must be positive");
  require(config_.charge_efficiency > 0.0 && config_.charge_efficiency <= 1.0,
          "BatteryStorage: charge efficiency must be in (0,1]");
  require(config_.discharge_efficiency > 0.0 && config_.discharge_efficiency <= 1.0,
          "BatteryStorage: discharge efficiency must be in (0,1]");
  require(config_.initial_soc_fraction >= 0.0 && config_.initial_soc_fraction <= 1.0,
          "BatteryStorage: initial SoC fraction must be in [0,1]");
  soc_ = config_.capacity * config_.initial_soc_fraction;
}

util::Energy BatteryStorage::charge(util::Power power, util::Duration dt) {
  require(power.watts() >= 0.0 && dt.seconds() >= 0.0, "BatteryStorage::charge: negative input");
  const util::Power rate = std::min(power, config_.max_charge);
  // Energy that would be stored after losses, capped by remaining headroom.
  util::Energy stored = (rate * dt) * config_.charge_efficiency;
  const util::Energy headroom = config_.capacity - soc_;
  stored = std::min(stored, headroom);
  soc_ += stored;
  const util::Energy from_grid = stored / config_.charge_efficiency;
  grid_in_ += from_grid;
  return from_grid;
}

util::Energy BatteryStorage::discharge(util::Power power, util::Duration dt) {
  require(power.watts() >= 0.0 && dt.seconds() >= 0.0, "BatteryStorage::discharge: negative input");
  const util::Power rate = std::min(power, config_.max_discharge);
  // Energy drawn from the cells to serve the request, capped by SoC.
  util::Energy from_cells = (rate * dt) / config_.discharge_efficiency;
  from_cells = std::min(from_cells, soc_);
  soc_ -= from_cells;
  const util::Energy delivered = from_cells * config_.discharge_efficiency;
  delivered_out_ += delivered;
  return delivered;
}

util::Energy BatteryStorage::total_losses() const {
  // grid_in = stored/eff_c; delivered = from_cells*eff_d. Losses are whatever
  // entered from the grid but was not (yet) delivered, excluding the residual
  // charge still in the cells relative to the initial SoC.
  const util::Energy initial = config_.capacity * config_.initial_soc_fraction;
  return grid_in_ + initial - delivered_out_ - soc_;
}

double BatteryStorage::equivalent_cycles() const { return delivered_out_ / config_.capacity; }

ThresholdArbitragePolicy::ThresholdArbitragePolicy(Params params) : params_(params) {
  require(params_.charge_below < params_.discharge_above,
          "ThresholdArbitragePolicy: charge price must be below discharge price");
  require(params_.rate.watts() > 0.0, "ThresholdArbitragePolicy: rate must be positive");
}

BatteryAction ThresholdArbitragePolicy::decide(const MarketView& view) const {
  if (view.price < params_.charge_below ||
      view.renewable_share > params_.charge_when_renewables_above) {
    if (view.soc_fraction < 0.999) return {BatteryAction::Kind::kCharge, params_.rate};
  }
  if (view.price > params_.discharge_above && view.soc_fraction > 0.001)
    return {BatteryAction::Kind::kDischarge, params_.rate};
  return {BatteryAction::Kind::kIdle, util::watts(0.0)};
}

ForecastArbitragePolicy::ForecastArbitragePolicy(PriceForecastFn forecast, Params params)
    : forecast_(std::move(forecast)), params_(params) {
  require(static_cast<bool>(forecast_), "ForecastArbitragePolicy: null forecast function");
  require(params_.charge_quantile < params_.discharge_quantile,
          "ForecastArbitragePolicy: charge quantile must be below discharge quantile");
}

BatteryAction ForecastArbitragePolicy::decide(const MarketView& view) const {
  const std::vector<double> window = forecast_(view.now);
  if (window.size() < 4) return {BatteryAction::Kind::kIdle, util::watts(0.0)};
  const double lo = stats::quantile(window, params_.charge_quantile);
  const double hi = stats::quantile(window, params_.discharge_quantile);
  const double now_price = view.price.usd_per_mwh();
  if (now_price <= lo && view.soc_fraction < 0.999)
    return {BatteryAction::Kind::kCharge, params_.rate};
  if (now_price >= hi && view.soc_fraction > 0.001)
    return {BatteryAction::Kind::kDischarge, params_.rate};
  return {BatteryAction::Kind::kIdle, util::watts(0.0)};
}

}  // namespace greenhpc::grid
