#include "grid/purchase_planner.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace greenhpc::grid {

using util::require;

double PlanSummary::cost_saving_pct() const {
  if (baseline_cost.dollars() <= 0.0) return 0.0;
  return 100.0 * (baseline_cost - planned_cost).dollars() / baseline_cost.dollars();
}

double PlanSummary::carbon_saving_pct() const {
  if (baseline_carbon.kilograms() <= 0.0) return 0.0;
  return 100.0 * (baseline_carbon - planned_carbon).kilograms() / baseline_carbon.kilograms();
}

PurchasePlanner::PurchasePlanner(const LmpPriceModel* price_model,
                                 const CarbonIntensityModel* carbon_model,
                                 const FuelMixModel* mix_model)
    : price_model_(price_model), carbon_model_(carbon_model), mix_model_(mix_model) {
  require(price_model != nullptr, "PurchasePlanner: null price model");
  require(carbon_model != nullptr, "PurchasePlanner: null carbon model");
  require(mix_model != nullptr, "PurchasePlanner: null fuel-mix model");
}

std::vector<MonthPlan> PurchasePlanner::make_baseline(
    util::MonthKey start, const std::vector<util::Energy>& demand) const {
  std::vector<MonthPlan> months;
  months.reserve(demand.size());
  util::MonthKey key = start;
  for (const util::Energy& d : demand) {
    MonthPlan m;
    m.month = key;
    m.baseline_demand = d;
    m.purchased = d;
    m.price = price_model_->monthly_average(key);
    m.renewable_pct = mix_model_->monthly_renewable_pct(key);
    m.carbon = carbon_model_->monthly_average(key);
    months.push_back(m);
    key = key.next();
  }
  return months;
}

PlanSummary PurchasePlanner::summarize(std::vector<MonthPlan> months) {
  PlanSummary s;
  for (const MonthPlan& m : months) {
    s.baseline_cost += m.baseline_demand * m.price;
    s.baseline_carbon += m.baseline_demand * m.carbon;
    s.planned_cost += m.purchased * m.price;
    s.planned_carbon += m.purchased * m.carbon;
  }
  s.months = std::move(months);
  return s;
}

PlanSummary PurchasePlanner::plan_load_shift(const std::vector<MonthPlan>& baseline,
                                             double deferrable_fraction, int max_shift_months,
                                             double absorb_headroom) const {
  require(deferrable_fraction >= 0.0 && deferrable_fraction <= 1.0,
          "plan_load_shift: deferrable fraction must be in [0,1]");
  require(max_shift_months >= 0, "plan_load_shift: negative shift window");
  require(absorb_headroom >= 0.0, "plan_load_shift: negative absorb headroom");

  std::vector<MonthPlan> plan = baseline;
  const std::size_t n = plan.size();

  // Donor months in descending carbon intensity: move the brownest demand
  // first, into the greenest reachable month with absorption headroom left.
  std::vector<std::size_t> donors(n);
  std::iota(donors.begin(), donors.end(), std::size_t{0});
  std::sort(donors.begin(), donors.end(), [&](std::size_t a, std::size_t b) {
    return plan[a].carbon.kg_per_kwh() > plan[b].carbon.kg_per_kwh();
  });

  std::vector<util::Energy> headroom(n);
  for (std::size_t i = 0; i < n; ++i) headroom[i] = plan[i].baseline_demand * absorb_headroom;

  for (std::size_t donor : donors) {
    util::Energy movable = plan[donor].baseline_demand * deferrable_fraction;

    // Candidate receivers within the window, greenest (lowest intensity) first.
    std::vector<std::size_t> receivers;
    for (std::size_t r = 0; r < n; ++r) {
      const int dist = std::abs(static_cast<int>(r) - static_cast<int>(donor));
      if (r != donor && dist <= max_shift_months) receivers.push_back(r);
    }
    std::sort(receivers.begin(), receivers.end(), [&](std::size_t a, std::size_t b) {
      return plan[a].carbon.kg_per_kwh() < plan[b].carbon.kg_per_kwh();
    });

    for (std::size_t recv : receivers) {
      if (movable.joules() <= 0.0) break;
      // Only shift toward strictly greener months.
      if (plan[recv].carbon.kg_per_kwh() >= plan[donor].carbon.kg_per_kwh()) break;
      const util::Energy amount = std::min(movable, headroom[recv]);
      if (amount.joules() <= 0.0) continue;
      plan[donor].purchased -= amount;
      plan[donor].shifted_out += amount;
      plan[recv].purchased += amount;
      plan[recv].shifted_in += amount;
      headroom[recv] -= amount;
      movable -= amount;
    }
  }
  return summarize(std::move(plan));
}

PlanSummary PurchasePlanner::plan_storage(const std::vector<MonthPlan>& baseline,
                                          util::Energy monthly_storage_cap, int max_shift_months,
                                          double round_trip_efficiency) const {
  require(monthly_storage_cap.joules() >= 0.0, "plan_storage: negative storage cap");
  require(max_shift_months >= 0, "plan_storage: negative shift window");
  require(round_trip_efficiency > 0.0 && round_trip_efficiency <= 1.0,
          "plan_storage: round-trip efficiency must be in (0,1]");

  std::vector<MonthPlan> plan = baseline;
  const std::size_t n = plan.size();

  // For each brown month (in descending intensity), find the greenest prior
  // month within the window and bank energy there. Storage only pays off in
  // carbon when intensity_green / efficiency < intensity_brown; check it.
  std::vector<std::size_t> brown(n);
  std::iota(brown.begin(), brown.end(), std::size_t{0});
  std::sort(brown.begin(), brown.end(), [&](std::size_t a, std::size_t b) {
    return plan[a].carbon.kg_per_kwh() > plan[b].carbon.kg_per_kwh();
  });

  std::vector<util::Energy> bank_used(n);  // grid energy banked in month i

  for (std::size_t b : brown) {
    util::Energy demand_left = plan[b].baseline_demand;
    // Greenest eligible earlier month first.
    std::vector<std::size_t> sources;
    for (std::size_t s = 0; s < n; ++s) {
      if (s < b && static_cast<int>(b - s) <= max_shift_months) sources.push_back(s);
    }
    std::sort(sources.begin(), sources.end(), [&](std::size_t x, std::size_t y) {
      return plan[x].carbon.kg_per_kwh() < plan[y].carbon.kg_per_kwh();
    });
    for (std::size_t s : sources) {
      if (demand_left.joules() <= 0.0) break;
      const double src_effective = plan[s].carbon.kg_per_kwh() / round_trip_efficiency;
      if (src_effective >= plan[b].carbon.kg_per_kwh()) continue;  // not worth the losses
      const util::Energy cap_left = monthly_storage_cap - bank_used[s];
      if (cap_left.joules() <= 0.0) continue;
      // Delivered energy is limited by both the remaining demand and cap.
      const util::Energy delivered =
          std::min(demand_left, cap_left * round_trip_efficiency);
      const util::Energy grid_buy = delivered / round_trip_efficiency;
      plan[s].purchased += grid_buy;
      plan[s].stored += grid_buy;
      bank_used[s] += grid_buy;
      plan[b].purchased -= delivered;
      plan[b].discharged += delivered;
      demand_left -= delivered;
    }
  }
  return summarize(std::move(plan));
}

}  // namespace greenhpc::grid
