#pragma once
// Locational marginal price (LMP) model.
//
// Reproduces the substrate behind Fig. 3: "monthly locational marginal prices
// from south eastern/central MA", 2020-21, ranging roughly $20-50/MWh with
// the spring months (Feb-May) cheapest — precisely when the renewable share
// of the fuel mix is highest. The model composes a monthly seasonal base,
// a weekday diurnal shape (morning ramp + evening peak), renewable-share
// coupling (more wind/solar on the margin pushes LMPs down), smooth noise,
// and rare scarcity spikes.

#include <cstdint>

#include "grid/fuel_mix.hpp"
#include "util/calendar.hpp"
#include "util/noise.hpp"
#include "util/units.hpp"

namespace greenhpc::grid {

struct PriceConfig {
  /// Month-of-year (index 0 = January) base LMP in $/MWh. Calibrated to the
  /// Fig. 3 band: winter peaks near $45-48, spring trough $21-25.
  std::array<double, 12> base_usd_per_mwh = {45.0, 25.0, 22.0, 21.0, 24.0, 30.0,
                                             36.0, 33.0, 31.0, 34.0, 38.0, 47.0};
  /// Strength of the (renewable share -> cheaper power) coupling: price is
  /// multiplied by (1 - coupling * (renewable_share - mean_share)).
  double renewable_coupling = 4.0;
  double mean_renewable_share = 0.066;
  /// Relative amplitude of smooth stochastic variation.
  double noise_amplitude = 0.10;
  util::Duration noise_period = util::hours(36);
  /// Scarcity spikes: expected events per year, multiplier, duration.
  double spikes_per_year = 10.0;
  double spike_multiplier = 4.0;
  util::Duration spike_length = util::hours(3);
  double floor_usd_per_mwh = 5.0;
  std::uint64_t seed = 20200301;
};

class LmpPriceModel {
 public:
  /// `mix_model` may be null, disabling the renewable coupling term.
  explicit LmpPriceModel(PriceConfig config = {}, const FuelMixModel* mix_model = nullptr);

  [[nodiscard]] util::EnergyPrice price_at(util::TimePoint t) const;

  /// Time-averaged price over a month (hourly sampling) — the Fig. 3 series.
  [[nodiscard]] util::EnergyPrice monthly_average(util::MonthKey month) const;

  [[nodiscard]] const PriceConfig& config() const { return config_; }

 private:
  [[nodiscard]] double diurnal_factor(util::TimePoint t) const;
  [[nodiscard]] double spike_factor(util::TimePoint t) const;
  [[nodiscard]] util::EnergyPrice compute_price(util::TimePoint t) const;

  PriceConfig config_;
  const FuelMixModel* mix_model_;  // non-owning, may be null
  util::SmoothNoise noise_;

  // Single-entry memo: billing, scheduling signals, and routing snapshots
  // all ask for the same instant within one step. Pure recompute avoidance.
  mutable bool memo_valid_ = false;
  mutable util::TimePoint memo_t_;
  mutable util::EnergyPrice memo_value_;
};

}  // namespace greenhpc::grid
