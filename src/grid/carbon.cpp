#include "grid/carbon.hpp"

#include "util/error.hpp"

namespace greenhpc::grid {

CarbonIntensityModel::CarbonIntensityModel(const FuelMixModel* mix_model, EmissionFactors factors)
    : mix_model_(mix_model), factors_(factors) {
  util::require(mix_model != nullptr, "CarbonIntensityModel: null fuel-mix model");
  for (double f : factors_.kg_per_kwh)
    util::require(f >= 0.0, "CarbonIntensityModel: negative emission factor");
}

util::CarbonIntensity CarbonIntensityModel::intensity_of(const FuelMix& mix) const {
  double kg_per_kwh = 0.0;
  for (std::size_t i = 0; i < kFuelCount; ++i)
    kg_per_kwh += mix.shares()[i] * factors_.kg_per_kwh[i];
  return util::kg_per_kwh(kg_per_kwh);
}

util::CarbonIntensity CarbonIntensityModel::intensity_at(util::TimePoint t) const {
  if (memo_valid_ && memo_t_.seconds_since_epoch() == t.seconds_since_epoch()) {
    return memo_value_;
  }
  const util::CarbonIntensity value = intensity_of(mix_model_->mix_at(t));
  memo_t_ = t;
  memo_value_ = value;
  memo_valid_ = true;
  return value;
}

util::CarbonIntensity CarbonIntensityModel::monthly_average(util::MonthKey month) const {
  const util::MonthSpan span = util::month_span(month);
  return intensity_of(mix_model_->average_mix(span.start, span.end));
}

}  // namespace greenhpc::grid
