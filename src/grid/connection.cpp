#include "grid/connection.hpp"

#include "util/error.hpp"

namespace greenhpc::grid {

using util::require;

GridConnection::GridConnection(const LmpPriceModel* price_model,
                               const CarbonIntensityModel* carbon_model,
                               GridConnectionConfig config)
    : price_model_(price_model), carbon_model_(carbon_model), config_(config) {
  require(price_model != nullptr, "GridConnection: null price model");
  require(carbon_model != nullptr, "GridConnection: null carbon model");
}

EnergyLedger GridConnection::draw(util::TimePoint t, util::Power average_power, util::Duration dt) {
  require(average_power.watts() >= 0.0, "GridConnection::draw: negative power");
  require(dt.seconds() >= 0.0, "GridConnection::draw: negative duration");

  EnergyLedger delta;
  delta.energy = average_power * dt;
  delta.cost = delta.energy * price_model_->price_at(t);
  delta.carbon = delta.energy * carbon_model_->intensity_at(t);
  delta.water = delta.energy * config_.generation_water;
  totals_ += delta;

  monthly_power_.add_sample(t, dt, average_power.kilowatts());
  if (dt.seconds() > 0.0) {
    monthly_cost_.add_sample(t, dt, delta.cost.dollars() / dt.seconds());
    monthly_carbon_.add_sample(t, dt, delta.carbon.kilograms() / dt.seconds());
  }
  return delta;
}

}  // namespace greenhpc::grid
