#include "grid/fuel_mix.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace greenhpc::grid {

using util::require;

const char* fuel_name(Fuel f) {
  switch (f) {
    case Fuel::kSolar: return "solar";
    case Fuel::kWind: return "wind";
    case Fuel::kHydro: return "hydro";
    case Fuel::kNuclear: return "nuclear";
    case Fuel::kNaturalGas: return "natural_gas";
    case Fuel::kCoal: return "coal";
    case Fuel::kOil: return "oil";
    case Fuel::kOther: return "other";
  }
  return "unknown";
}

FuelMix FuelMix::normalized(const std::array<double, kFuelCount>& weights) {
  double total = 0.0;
  for (double w : weights) {
    require(w >= 0.0, "FuelMix: negative share");
    total += w;
  }
  require(total > 0.0, "FuelMix: all-zero shares");
  FuelMix mix;
  for (std::size_t i = 0; i < kFuelCount; ++i) mix.shares_[i] = weights[i] / total;
  return mix;
}

FuelMixModel::FuelMixModel(FuelMixConfig config)
    : config_(config), wind_noise_(config.seed, config.wind_noise_period) {
  for (double v : config_.solar_pct_by_month) require(v >= 0.0, "FuelMixModel: negative solar share");
  for (double v : config_.wind_pct_by_month) require(v >= 0.0, "FuelMixModel: negative wind share");
}

double FuelMixModel::seasonal_value(const std::array<double, 12>& by_month, util::TimePoint t) {
  // Interpolate between mid-month anchor points so the seasonal curve has no
  // step discontinuities at month boundaries.
  const util::CivilDate d = util::civil_of(t);
  const util::MonthSpan span = util::month_span(util::MonthKey{d.year, d.month});
  const double mid = (span.start.seconds_since_epoch() + span.end.seconds_since_epoch()) / 2.0;
  const double pos = t.seconds_since_epoch();

  int m0 = d.month - 1;  // 0-based index of the anchor at/before t
  int other;             // neighbouring month index
  double frac;           // 0 at anchor m0, 1 at anchor `other`
  if (pos >= mid) {
    other = (m0 + 1) % 12;
    const util::MonthKey next = util::MonthKey{d.year, d.month}.next();
    const util::MonthSpan nspan = util::month_span(next);
    const double nmid = (nspan.start.seconds_since_epoch() + nspan.end.seconds_since_epoch()) / 2.0;
    frac = (pos - mid) / (nmid - mid);
  } else {
    other = (m0 + 11) % 12;
    const util::MonthKey prev = util::MonthKey::from_index(util::MonthKey{d.year, d.month}.index_from_epoch() - 1);
    const util::MonthSpan pspan = util::month_span(prev);
    const double pmid = (pspan.start.seconds_since_epoch() + pspan.end.seconds_since_epoch()) / 2.0;
    frac = (mid - pos) / (mid - pmid);
  }
  return by_month[static_cast<std::size_t>(m0)] * (1.0 - frac) +
         by_month[static_cast<std::size_t>(other)] * frac;
}

double FuelMixModel::solar_diurnal_factor(util::TimePoint t) const {
  // Daylight window widens with summer: half-length 5 h (winter) to 7.5 h
  // (summer), centred at 12:30. Normalized so the factor's daily mean is ~1.
  const double yf = util::year_fraction(t);
  const double half_len = 6.25 + 1.25 * std::cos(2.0 * std::numbers::pi * (yf - 0.5));
  const double h = util::hour_of_day(t);
  const double from_noon = std::abs(h - 12.5);
  if (from_noon >= half_len) return 0.0;
  const double shape = std::cos(std::numbers::pi / 2.0 * from_noon / half_len);
  // Mean of cos^2(pi/2 * x) over x in [-1,1] is 1/2 and the daylight window
  // covers (2*half_len)/24 of the day, so shape^2 has daily mean half_len/24.
  const double daily_mean = half_len / 24.0;
  return shape * shape / daily_mean;
}

FuelMix FuelMixModel::mix_at(util::TimePoint t) const {
  if (memo_valid_ && memo_t_.seconds_since_epoch() == t.seconds_since_epoch()) {
    return memo_value_;
  }
  const FuelMix value = compute_mix(t);
  memo_t_ = t;
  memo_value_ = value;
  memo_valid_ = true;
  return value;
}

FuelMix FuelMixModel::compute_mix(util::TimePoint t) const {
  const double solar_pct = seasonal_value(config_.solar_pct_by_month, t) * solar_diurnal_factor(t);
  double wind_pct = seasonal_value(config_.wind_pct_by_month, t) *
                    (1.0 + config_.wind_noise_amplitude * wind_noise_.value(t));
  if (wind_pct < 0.0) wind_pct = 0.0;

  std::array<double, kFuelCount> weights{};
  weights[static_cast<std::size_t>(Fuel::kSolar)] = solar_pct;
  weights[static_cast<std::size_t>(Fuel::kWind)] = wind_pct;
  weights[static_cast<std::size_t>(Fuel::kHydro)] = config_.hydro_pct;
  weights[static_cast<std::size_t>(Fuel::kNuclear)] = config_.nuclear_pct;
  weights[static_cast<std::size_t>(Fuel::kCoal)] = config_.coal_pct;
  weights[static_cast<std::size_t>(Fuel::kOil)] = config_.oil_pct;
  weights[static_cast<std::size_t>(Fuel::kOther)] = config_.other_pct;
  // Dispatchable gas covers whatever the rest leaves of 100%.
  double covered = 0.0;
  for (double w : weights) covered += w;
  weights[static_cast<std::size_t>(Fuel::kNaturalGas)] = std::max(5.0, 100.0 - covered);
  return FuelMix::normalized(weights);
}

FuelMix FuelMixModel::average_mix(util::TimePoint start, util::TimePoint end,
                                  util::Duration step) const {
  require(end > start, "FuelMixModel::average_mix: empty interval");
  require(step.seconds() > 0.0, "FuelMixModel::average_mix: step must be positive");
  std::array<double, kFuelCount> accum{};
  std::size_t samples = 0;
  for (util::TimePoint t = start; t < end; t += step) {
    const FuelMix mix = mix_at(t);
    for (std::size_t i = 0; i < kFuelCount; ++i) accum[i] += mix.shares()[i];
    ++samples;
  }
  for (auto& a : accum) a /= static_cast<double>(samples);
  return FuelMix::normalized(accum);
}

double FuelMixModel::monthly_renewable_pct(util::MonthKey month) const {
  const util::MonthSpan span = util::month_span(month);
  return average_mix(span.start, span.end).renewable_share() * 100.0;
}

}  // namespace greenhpc::grid
