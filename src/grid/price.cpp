#include "grid/price.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace greenhpc::grid {

using util::require;

LmpPriceModel::LmpPriceModel(PriceConfig config, const FuelMixModel* mix_model)
    : config_(config), mix_model_(mix_model), noise_(config.seed, config.noise_period) {
  for (double base : config_.base_usd_per_mwh)
    require(base > 0.0, "LmpPriceModel: base prices must be positive");
  require(config_.noise_amplitude >= 0.0 && config_.noise_amplitude < 1.0,
          "LmpPriceModel: noise amplitude must be in [0,1)");
  require(config_.spikes_per_year >= 0.0, "LmpPriceModel: negative spike rate");
}

double LmpPriceModel::diurnal_factor(util::TimePoint t) const {
  const double h = util::hour_of_day(t);
  const int dow = util::day_of_week(t);
  const bool weekend = dow >= 5;
  // Overnight trough, morning ramp, midday plateau, evening peak.
  double factor;
  if (h < 5.0) factor = 0.78;
  else if (h < 9.0) factor = 0.78 + (h - 5.0) / 4.0 * 0.32;  // ramp to 1.10
  else if (h < 16.0) factor = 1.0;
  else if (h < 21.0) factor = 1.10 + 0.15 * std::sin((h - 16.0) / 5.0 * 3.14159265);
  else factor = 0.88;
  return weekend ? factor * 0.92 : factor;
}

double LmpPriceModel::spike_factor(util::TimePoint t) const {
  // Hash each spike-length slot; a slot is "in spike" with probability
  // spikes_per_year * slot_length / year. Pure function of (seed, slot).
  if (config_.spikes_per_year <= 0.0) return 1.0;
  const double slot_s = config_.spike_length.seconds();
  const auto slot = static_cast<std::int64_t>(std::floor(t.seconds_since_epoch() / slot_s));
  const double p_spike = config_.spikes_per_year * slot_s / (365.0 * 86400.0);
  const double u = util::hash_uniform(config_.seed ^ 0xDEAD5EEDULL, slot);
  return u < p_spike ? config_.spike_multiplier : 1.0;
}

util::EnergyPrice LmpPriceModel::price_at(util::TimePoint t) const {
  if (memo_valid_ && memo_t_.seconds_since_epoch() == t.seconds_since_epoch()) {
    return memo_value_;
  }
  const util::EnergyPrice value = compute_price(t);
  memo_t_ = t;
  memo_value_ = value;
  memo_valid_ = true;
  return value;
}

util::EnergyPrice LmpPriceModel::compute_price(util::TimePoint t) const {
  const util::MonthKey mk = util::month_of(t);
  const double base = config_.base_usd_per_mwh[static_cast<std::size_t>(mk.month - 1)];
  double price = base * diurnal_factor(t);
  if (mix_model_ != nullptr) {
    const double share = mix_model_->mix_at(t).renewable_share();
    price *= std::max(0.3, 1.0 - config_.renewable_coupling * (share - config_.mean_renewable_share));
  }
  price *= 1.0 + config_.noise_amplitude * noise_.value(t);
  price *= spike_factor(t);
  return util::usd_per_mwh(std::max(config_.floor_usd_per_mwh, price));
}

util::EnergyPrice LmpPriceModel::monthly_average(util::MonthKey month) const {
  const util::MonthSpan span = util::month_span(month);
  double total = 0.0;
  std::size_t samples = 0;
  for (util::TimePoint t = span.start; t < span.end; t += util::hours(1)) {
    total += price_at(t).usd_per_mwh();
    ++samples;
  }
  return util::usd_per_mwh(total / static_cast<double>(samples));
}

}  // namespace greenhpc::grid
