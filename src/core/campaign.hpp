#pragma once
// Campaign planning: "encouraging more cluster utilization during those
// months" (Sec. II-A strategy 1, compute-side view).
//
// Given an annual training campaign (total GPU-hours of deferrable work),
// the planner distributes it over months to minimize carbon (or cost),
// subject to monthly cluster capacity and a baseline load that cannot move.
// Forecast-driven mode uses fitted models on last year's intensity series
// instead of the oracle, quantifying how much of the oracle saving a
// realistic forecaster retains (Sec. II-C's predictive-analytics pitch).

#include <vector>

#include "forecast/models.hpp"
#include "grid/carbon.hpp"
#include "grid/price.hpp"
#include "util/units.hpp"

namespace greenhpc::core {

struct CampaignMonth {
  util::MonthKey month;
  double capacity_gpu_hours = 0.0;  ///< schedulable headroom this month
  double planned_gpu_hours = 0.0;
  util::CarbonIntensity intensity;  ///< (true) monthly average intensity
  util::EnergyPrice price;
};

struct CampaignPlan {
  std::vector<CampaignMonth> months;
  util::MassCo2 carbon;
  util::Money cost;
  /// kWh per GPU-hour used to convert compute to energy.
  double kwh_per_gpu_hour = 0.0;
};

struct CampaignSpec {
  util::MonthKey start{2021, 1};
  int month_count = 12;
  double total_gpu_hours = 400000.0;
  /// Facility energy per GPU-hour (board + node share + PUE): ~0.45 kWh.
  double kwh_per_gpu_hour = 0.45;
  /// Monthly capacity headroom for campaign work.
  double monthly_capacity_gpu_hours = 60000.0;
};

class CampaignPlanner {
 public:
  /// Models are borrowed; must outlive the planner.
  CampaignPlanner(const grid::CarbonIntensityModel* carbon, const grid::LmpPriceModel* price);

  /// Baseline: spread the campaign uniformly across the window.
  [[nodiscard]] CampaignPlan plan_uniform(const CampaignSpec& spec) const;

  /// Oracle greedy: fill the greenest months first (true intensities).
  [[nodiscard]] CampaignPlan plan_green_oracle(const CampaignSpec& spec) const;

  /// Forecast-driven greedy: rank months by a Holt-Winters forecast fitted
  /// on the preceding `history_months` of monthly intensities.
  [[nodiscard]] CampaignPlan plan_green_forecast(const CampaignSpec& spec,
                                                 int history_months = 24) const;

 private:
  [[nodiscard]] std::vector<CampaignMonth> make_months(const CampaignSpec& spec) const;
  [[nodiscard]] static CampaignPlan fill_greedy(const CampaignSpec& spec,
                                                std::vector<CampaignMonth> months,
                                                const std::vector<double>& rank_intensity);
  [[nodiscard]] static CampaignPlan roll_up(const CampaignSpec& spec,
                                            std::vector<CampaignMonth> months);

  const grid::CarbonIntensityModel* carbon_;
  const grid::LmpPriceModel* price_;
};

}  // namespace greenhpc::core
