#pragma once
// The Green A.I. challenge scorer (Sec. IV-B).
//
// "a Green A.I. challenge (in development) that aims to cast the problem
// explicitly by challenging participants to maximize performance given
// explicit training and energy budgets." This module is that scoring
// infrastructure: submissions declare achieved performance plus measured
// energy/compute; the scorer enforces the budgets and ranks by performance,
// breaking ties green-side; an efficiency leaderboard ranks performance per
// kWh for venues that prefer a scalarized score.

#include <optional>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace greenhpc::core {

struct ChallengeBudget {
  util::Energy energy = util::kilowatt_hours(100.0);
  double gpu_hours = 500.0;
};

struct Submission {
  std::string team;
  double performance = 0.0;  ///< task metric, higher is better (e.g. accuracy)
  util::Energy energy_used;
  double gpu_hours_used = 0.0;
};

struct ScoredSubmission {
  Submission submission;
  bool within_budget = false;
  double score = 0.0;            ///< performance if within budget, else 0
  double efficiency = 0.0;       ///< performance per kWh
  std::string disqualification;  ///< reason when over budget
};

class GreenAiChallenge {
 public:
  explicit GreenAiChallenge(ChallengeBudget budget);

  [[nodiscard]] ScoredSubmission score(const Submission& s) const;

  /// Scores and ranks all submissions: within-budget first (by performance,
  /// energy as tiebreak), disqualified entries last.
  [[nodiscard]] std::vector<ScoredSubmission> leaderboard(
      const std::vector<Submission>& submissions) const;

  /// Ranking by performance-per-kWh among within-budget entries.
  [[nodiscard]] std::vector<ScoredSubmission> efficiency_leaderboard(
      const std::vector<Submission>& submissions) const;

  [[nodiscard]] const ChallengeBudget& budget() const { return budget_; }

 private:
  ChallengeBudget budget_;
};

}  // namespace greenhpc::core
