#include "core/campaign.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace greenhpc::core {

using util::require;

CampaignPlanner::CampaignPlanner(const grid::CarbonIntensityModel* carbon,
                                 const grid::LmpPriceModel* price)
    : carbon_(carbon), price_(price) {
  require(carbon != nullptr, "CampaignPlanner: null carbon model");
  require(price != nullptr, "CampaignPlanner: null price model");
}

std::vector<CampaignMonth> CampaignPlanner::make_months(const CampaignSpec& spec) const {
  require(spec.month_count >= 1, "CampaignPlanner: need at least one month");
  require(spec.total_gpu_hours > 0.0, "CampaignPlanner: campaign must be positive");
  require(spec.monthly_capacity_gpu_hours * spec.month_count >= spec.total_gpu_hours,
          "CampaignPlanner: campaign exceeds total capacity");

  std::vector<CampaignMonth> months;
  util::MonthKey key = spec.start;
  for (int m = 0; m < spec.month_count; ++m) {
    CampaignMonth cm;
    cm.month = key;
    cm.capacity_gpu_hours = spec.monthly_capacity_gpu_hours;
    cm.intensity = carbon_->monthly_average(key);
    cm.price = price_->monthly_average(key);
    months.push_back(cm);
    key = key.next();
  }
  return months;
}

CampaignPlan CampaignPlanner::roll_up(const CampaignSpec& spec,
                                      std::vector<CampaignMonth> months) {
  CampaignPlan plan;
  plan.kwh_per_gpu_hour = spec.kwh_per_gpu_hour;
  for (const CampaignMonth& m : months) {
    const util::Energy e = util::kilowatt_hours(m.planned_gpu_hours * spec.kwh_per_gpu_hour);
    plan.carbon += e * m.intensity;
    plan.cost += e * m.price;
  }
  plan.months = std::move(months);
  return plan;
}

CampaignPlan CampaignPlanner::plan_uniform(const CampaignSpec& spec) const {
  std::vector<CampaignMonth> months = make_months(spec);
  const double per_month = spec.total_gpu_hours / static_cast<double>(months.size());
  for (CampaignMonth& m : months) m.planned_gpu_hours = per_month;
  return roll_up(spec, std::move(months));
}

CampaignPlan CampaignPlanner::fill_greedy(const CampaignSpec& spec,
                                          std::vector<CampaignMonth> months,
                                          const std::vector<double>& rank_intensity) {
  require(rank_intensity.size() == months.size(), "fill_greedy: rank size mismatch");
  std::vector<std::size_t> order(months.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return rank_intensity[a] < rank_intensity[b]; });

  double remaining = spec.total_gpu_hours;
  for (std::size_t idx : order) {
    if (remaining <= 0.0) break;
    const double take = std::min(remaining, months[idx].capacity_gpu_hours);
    months[idx].planned_gpu_hours = take;
    remaining -= take;
  }
  require(remaining <= 1e-6, "fill_greedy: capacity accounting failure");
  return roll_up(spec, std::move(months));
}

CampaignPlan CampaignPlanner::plan_green_oracle(const CampaignSpec& spec) const {
  std::vector<CampaignMonth> months = make_months(spec);
  std::vector<double> truth;
  truth.reserve(months.size());
  for (const CampaignMonth& m : months) truth.push_back(m.intensity.kg_per_kwh());
  return fill_greedy(spec, std::move(months), truth);
}

CampaignPlan CampaignPlanner::plan_green_forecast(const CampaignSpec& spec,
                                                  int history_months) const {
  require(history_months >= 24, "plan_green_forecast: need >= 24 months of history");
  std::vector<CampaignMonth> months = make_months(spec);

  // History: the `history_months` months preceding the campaign start.
  std::vector<double> history;
  history.reserve(static_cast<std::size_t>(history_months));
  util::MonthKey key =
      util::MonthKey::from_index(spec.start.index_from_epoch() - history_months);
  for (int m = 0; m < history_months; ++m) {
    history.push_back(carbon_->monthly_average(key).kg_per_kwh());
    key = key.next();
  }

  forecast::HoltWinters model(12);
  model.fit(history);
  const std::vector<double> predicted = model.predict(months.size());
  return fill_greedy(spec, std::move(months), predicted);
}

}  // namespace greenhpc::core
