#include "core/datacenter.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "obs/attribution.hpp"
#include "obs/recorder.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/invariants.hpp"

namespace greenhpc::core {

using util::require;

Datacenter::Datacenter(DatacenterConfig config, std::unique_ptr<sched::Scheduler> scheduler)
    : config_(config),
      weather_(config.weather),
      cooling_(config.cooling),
      fuel_mix_(config.fuel_mix),
      carbon_(&fuel_mix_, config.emission_factors),
      price_(config.price, &fuel_mix_),
      cluster_(config.cluster),
      scheduler_(std::move(scheduler)),
      rng_(config.seed),
      sim_(config.start) {
  require(scheduler_ != nullptr, "Datacenter: null scheduler");
  require(config_.step.seconds() > 0.0, "Datacenter: step must be positive");
  connection_ = std::make_unique<grid::GridConnection>(&price_, &carbon_, config_.connection);
  if (config_.battery) battery_.emplace(*config_.battery);
}

void Datacenter::attach_arrivals(workload::ArrivalConfig arrival_config,
                                 workload::DeadlineCalendar calendar,
                                 workload::DemandConfig demand) {
  attach_arrivals(std::move(arrival_config), std::move(calendar), nullptr, demand);
}

void Datacenter::attach_arrivals(workload::ArrivalConfig arrival_config,
                                 workload::DeadlineCalendar calendar,
                                 const workload::UserPopulation* population,
                                 workload::DemandConfig demand) {
  modulator_ = std::make_unique<workload::DemandModulator>(std::move(calendar), demand);
  arrivals_ = std::make_unique<workload::ArrivalProcess>(std::move(arrival_config),
                                                         modulator_.get(), population);
}

void Datacenter::attach_battery_policy(std::unique_ptr<grid::ArbitragePolicy> policy) {
  require(battery_.has_value(), "Datacenter: battery policy without a battery config");
  require(policy != nullptr, "Datacenter: null battery policy");
  battery_policy_ = std::move(policy);
}

bool Datacenter::tracing() const { return recorder_ != nullptr && recorder_->tracing(); }

obs::TraceWriter& Datacenter::trace_sink() const {
  return recorder_->region_trace(obs_region_);
}

obs::TraceWriter* Datacenter::phase_sink() const {
  return recorder_ != nullptr ? &recorder_->region_trace(obs_region_) : nullptr;
}

void Datacenter::set_recorder(obs::FlightRecorder* recorder, std::size_t region, bool root) {
  recorder_ = recorder;
  obs_region_ = region;
  obs_root_ = root;
  attrib_ = nullptr;
  if (recorder_ == nullptr) return;
  if (recorder_->attribution_on()) {
    recorder_->attribution().ensure_sinks(region + 1);
    attrib_ = recorder_->attribution().sink(region);
  }
  const std::string prefix = "r" + std::to_string(region) + ".";
  if (recorder_->metrics_on()) {
    obs::MetricsRegistry& reg = recorder_->registry();
    ctr_submitted_ = reg.counter(prefix + "jobs_submitted");
    ctr_started_ = reg.counter(prefix + "jobs_started");
    ctr_completed_ = reg.counter(prefix + "jobs_completed");
    ctr_migrated_out_ = reg.counter(prefix + "jobs_migrated_out");
    hist_queue_wait_ = reg.histogram(prefix + "queue_wait_hours", 0.0, 168.0, 56);
    reg.gauge(prefix + "queue_depth", [this] { return static_cast<double>(queue_.size()); });
    reg.gauge(prefix + "queued_gpu_demand",
              [this] { return static_cast<double>(queued_gpu_demand_); });
    reg.gauge(prefix + "carbon_g_per_kwh",
              [this] { return carbon_.intensity_at(local_time(sim_.now())).g_per_kwh(); });
    reg.gauge(prefix + "price_usd_per_mwh",
              [this] { return price_.price_at(local_time(sim_.now())).usd_per_mwh(); });
    reg.gauge(prefix + "renewable_share",
              [this] { return fuel_mix_.mix_at(local_time(sim_.now())).renewable_share(); });
    cluster_.register_metrics(reg, prefix + "cluster.");
  }
  if (recorder_->tracing()) {
    // Attach-time metadata, emitted once on the serial attach path before any
    // region thread exists — not a sim-domain event, so the main trace (not
    // the region shard) is the right sink.
    // det_lint: allow(raw-trace)
    recorder_->trace().process_name(trace_pid(), "region " + std::to_string(region));
    recorder_->trace().thread_name(trace_pid(), 0, "scheduler");  // det_lint: allow(raw-trace)
  }
}

cluster::JobId Datacenter::submit(const cluster::JobRequest& request) {
  const cluster::JobId id = jobs_.submit(request, sim_.now());
  queue_.push_back(id);
  pending_index_.push(id, request.gpus);
  queued_gpu_demand_ += request.gpus;
  monthly_subs_.add_event(sim_.now());
  if (ctr_submitted_ != nullptr) ctr_submitted_->add();
  if (tracing()) {
    trace_sink().async_begin(
        "queued", "job.queue", trace_pid(), span_id(id), obs::FlightRecorder::sim_us(sim_.now()),
        {obs::arg("gpus", static_cast<double>(request.gpus)),
         obs::arg("work_gpu_hours", request.work_gpu_seconds / 3600.0),
         obs::arg("flexible", request.flexible ? 1.0 : 0.0)});
  }
  return id;
}

std::vector<cluster::JobId> Datacenter::running_jobs() const {
  std::vector<cluster::JobId> out;
  out.reserve(cluster_.allocations().size());
  for (const cluster::Allocation& alloc : cluster_.allocations()) out.push_back(alloc.job);
  return out;
}

Datacenter::PreemptedJob Datacenter::preempt(cluster::JobId id) {
  cluster::Job& job = jobs_.get(id);
  require(job.state() == cluster::JobState::kRunning, "Datacenter::preempt: job not running");
  PreemptedJob snapshot;
  snapshot.request = job.request();
  // Carried credit rides along: if this job was itself migrated in, its
  // snapshot represents the whole lineage's progress, not just this site's.
  snapshot.work_done_gpu_seconds = job.work_done() + take_migration_credit(id);
  snapshot.work_remaining_gpu_seconds = job.work_remaining();
  // Globally unique stamp (site seed scrambled with a per-site sequence) so
  // resume() can reject the same snapshot twice even after migrating.
  snapshot.snapshot_id =
      util::SplitMix64(config_.seed + 0x9E3779B97F4A7C15ULL * ++snapshot_seq_).next();
  if (snapshot.snapshot_id == 0) snapshot.snapshot_id = 1;
  cluster_.release(id);
  job.migrate_out(sim_.now());
  if (ctr_migrated_out_ != nullptr) ctr_migrated_out_->add();
  if (tracing()) {
    trace_sink().async_end("running", "job.run", trace_pid(), span_id(id),
                           obs::FlightRecorder::sim_us(sim_.now()),
                           {obs::arg("outcome", "migrated")});
  }
  return snapshot;
}

cluster::JobId Datacenter::resume(const PreemptedJob& snapshot) {
  require(snapshot.work_remaining_gpu_seconds > 0.0,
          "Datacenter::resume: snapshot has no work remaining");
  if (snapshot.snapshot_id != 0) {
    // Double-spend guard: banked progress may be restarted exactly once.
    require(resumed_snapshots_.insert(snapshot.snapshot_id).second,
            "Datacenter::resume: snapshot already resumed");
  }
  cluster::JobRequest request = snapshot.request;
  request.work_gpu_seconds = snapshot.work_remaining_gpu_seconds;
  if (request.deadline && !(*request.deadline > sim_.now())) {
    // The deadline expired while the checkpoint was in transit: the job
    // already missed it, so the remainder runs best-effort rather than
    // crashing intake (Job requires deadlines after submission).
    request.deadline.reset();
  }
  const cluster::JobId id = submit(request);
  // The lineage's prior progress is credited when (and only when) the
  // lineage actually finishes — mirroring how an unmigrated job credits
  // nothing until completion, so migration-on and migration-off runs count
  // delivered GPU-hours symmetrically.
  if (snapshot.work_done_gpu_seconds > 0.0) {
    migration_credit_[id] = snapshot.work_done_gpu_seconds;
  }
  return id;
}

std::size_t Datacenter::resize_enabled_nodes(int count) {
  count = std::clamp(count, 0, cluster_.spec().node_count);
  // Victims: running jobs with at least one GPU slice on a node being
  // disabled. Collected first — preempting mutates the allocation list.
  std::vector<cluster::JobId> victims;
  for (const cluster::Allocation& alloc : cluster_.allocations()) {
    for (const cluster::AllocationSlice& slice : alloc.slices) {
      if (slice.node >= count) {
        victims.push_back(alloc.job);
        break;
      }
    }
  }
  for (const cluster::JobId id : victims) {
    // Kill-and-requeue from checkpoint: the snapshot banks the lineage's
    // progress and the remainder re-enters this site's queue immediately.
    resume(preempt(id));
  }
  jobs_requeued_ += victims.size();
  cluster_.set_enabled_nodes(count);
  return victims.size();
}

double Datacenter::take_migration_credit(cluster::JobId id) {
  const auto it = migration_credit_.find(id);
  if (it == migration_credit_.end()) return 0.0;
  const double credit = it->second;
  migration_credit_.erase(it);
  return credit;
}

void Datacenter::progress_running_jobs(util::TimePoint t, double throttle) {
  if (attrib_ != nullptr) attrib_->begin_step();  // opens the amortization window
  const util::Duration dt = config_.step;
  const util::TimePoint lt = local_time(t);  // environment models live in local time
  const util::Temperature outdoor = weather_.temperature_at(lt);
  const util::Power it_now = cluster_.it_power();
  const double pue = cooling_.pue(it_now, outdoor);
  const util::EnergyPrice price_now = price_.price_at(lt);
  const util::CarbonIntensity carbon_now = carbon_.intensity_at(lt);
  // Direct cooling water attributed proportionally to IT energy: facility
  // L/h divided by IT kW gives liters per IT-kWh.
  const double water_l_per_it_kwh =
      cooling_.water_liters_per_hour(cooling_.load(it_now, outdoor).delivered, outdoor) /
      std::max(1.0, it_now.kilowatts());

  // Snapshot (job, gpus) first: completions mutate the allocation list. A
  // reused flat buffer, not a copy of the allocations — their slice vectors
  // would reallocate every step.
  progress_scratch_.clear();
  for (const cluster::Allocation& alloc : cluster_.allocations()) {
    progress_scratch_.emplace_back(alloc.job, alloc.total_gpus());
  }
  for (const auto& [alloc_job, alloc_gpus] : progress_scratch_) {
    cluster::Job& job = jobs_.get(alloc_job);
    const auto gpus = static_cast<double>(alloc_gpus);
    // Per-job effective cap (Eq. 2 tailoring composes with the cluster knob).
    const double throughput = cluster_.job_throughput_factor(alloc_job) * (1.0 - throttle);
    const util::Power busy_power = cluster_.job_gpu_power(alloc_job);
    // Duty-cycled draw under throttle: GPUs fall back toward idle.
    const util::Power effective_power =
        config_.cluster.gpu.idle + (busy_power - config_.cluster.gpu.idle) * (1.0 - throttle);
    const double step_work = gpus * throughput * dt.seconds();

    double fraction = 1.0;  // fraction of the step the job actually ran
    if (step_work >= job.work_remaining() && step_work > 0.0) {
      fraction = job.work_remaining() / step_work;
    }
    const double work_delta = step_work * fraction;
    const util::Energy it_energy = effective_power * dt * gpus * fraction;
    const double water_l = it_energy.kilowatt_hours() * water_l_per_it_kwh;

    job.progress(work_delta, it_energy);
    accountant_.charge(job, it_energy, pue, price_now, carbon_now, water_l,
                       gpus * dt.hours() * fraction);
    if (attrib_ != nullptr) {
      // Mirror of the accountant charge, argument-for-argument, so the
      // attribution direct totals equal the accountant totals bit-for-bit.
      attrib_->charge(job, it_energy, pue, price_now, carbon_now, water_l,
                      gpus * dt.hours() * fraction);
    }

    if (job.work_remaining() <= 1e-6) {
      const util::TimePoint finish = t + util::Duration::from_raw(dt.seconds() * fraction);
      job.complete(finish);
      if (ctr_completed_ != nullptr) ctr_completed_->add();
      if (tracing()) {
        trace_sink().async_end("running", "job.run", trace_pid(), span_id(job.id()),
                               obs::FlightRecorder::sim_us(finish),
                               {obs::arg("outcome", "completed")});
      }
      // A migrated-in job completes its whole lineage: the work checkpointed
      // at previous sites is delivered now, together with the remainder.
      completed_gpu_hours_ +=
          (job.request().work_gpu_seconds + take_migration_credit(job.id())) / 3600.0;
      cluster_.release(job.id());
    }
  }
}

void Datacenter::run_scheduler(util::TimePoint t, const sched::GridSignals& signals) {
  sched::SchedulerContext ctx;
  ctx.now = t;
  ctx.cluster = &cluster_;
  ctx.jobs = &jobs_;
  ctx.queue = &queue_;
  ctx.pending = &pending_index_;
  ctx.signals = signals;
  const bool explain = tracing();
  if (explain) {
    sched_explain_.clear();
    ctx.explain = &sched_explain_;
  }

  util::Power cap = scheduler_->choose_cap(ctx);
  if (fault_power_cap_) cap = std::min(cap, *fault_power_cap_);
  cluster_.set_power_cap(cap);

  const std::vector<cluster::JobId> starts = scheduler_->select(ctx);
  started_scratch_.clear();
  for (cluster::JobId id : starts) {
    cluster::Job& job = jobs_.get(id);
    const auto alloc = cluster_.allocate(id, job.request().gpus);
    if (!alloc) continue;  // defensive: scheduler overcommitted; skip
    job.start(t);
    if (job_cap_policy_) {
      if (const std::optional<util::Power> job_cap = job_cap_policy_(job)) {
        cluster_.set_job_cap(id, *job_cap);
      }
    }
    const double wait_hours = (t - job.submit_time()).hours();
    queue_waits_hours_.push_back(wait_hours);
    started_scratch_.insert(id);
    queued_gpu_demand_ -= job.request().gpus;
    if (ctr_started_ != nullptr) ctr_started_->add();
    if (hist_queue_wait_ != nullptr) hist_queue_wait_->add(wait_hours);
    if (tracing()) {
      const double ts = obs::FlightRecorder::sim_us(t);
      trace_sink().async_end("queued", "job.queue", trace_pid(), span_id(id), ts,
                             {obs::arg("wait_hours", wait_hours)});
      trace_sink().async_begin("running", "job.run", trace_pid(), span_id(id), ts,
                               {obs::arg("gpus", static_cast<double>(job.request().gpus))});
    }
  }
  // One pass over the queue for the whole dispatch batch (the old
  // erase-by-find rescanned the queue per started job), preserving FIFO
  // order of the survivors.
  if (!started_scratch_.empty()) {
    const std::size_t erased = std::erase_if(
        queue_, [this](cluster::JobId id) { return started_scratch_.contains(id); });
    require(erased == started_scratch_.size(),
            "Datacenter: scheduler returned a job not in the queue");
    // Order-independent: each erase removes a distinct (id, gpus) entry from
    // its own PendingIndex bucket, so visiting the set in any order leaves
    // the index in the same state.
    // det_lint: allow(unordered-iter)
    for (const cluster::JobId id : started_scratch_) {
      pending_index_.erase(id, jobs_.get(id).request().gpus);
    }
  }
  if (explain) {
    const bool dedup = recorder_->trace_detail() == obs::TraceDetail::kChanges;
    for (const obs::SchedDecision& d : sched_explain_.decisions) {
      if (dedup) {
        if (d.started) {
          last_reason_.erase(d.job);  // starts always emit
        } else {
          const auto [it, inserted] = last_reason_.try_emplace(d.job, d.reason);
          if (!inserted) {
            if (std::strcmp(it->second, d.reason) == 0) continue;  // unchanged
            it->second = d.reason;
          }
        }
      }
      trace_sink().instant(
          "sched.decision", "sched", trace_pid(), 0, obs::FlightRecorder::sim_us(t),
          {obs::arg("job", static_cast<double>(d.job)),
           obs::arg("action", d.started ? "start" : "defer"), obs::arg("reason", d.reason),
           obs::arg("now_signal", d.now_signal),
           obs::arg("best_window_signal", d.best_window_signal),
           obs::arg("slack_hours", d.slack_hours),
           obs::arg("forecast_reliable", d.forecast_reliable ? 1.0 : 0.0)});
    }
  }
}

void Datacenter::step(util::TimePoint t) {
  const util::Duration dt = config_.step;
  const util::TimePoint lt = local_time(t);  // environment models live in local time
  const util::Temperature outdoor = weather_.temperature_at(lt);

  sched::GridSignals signals;
  {
    obs::PhaseScope phase(recorder_, obs::Phase::kProgressAccounting, phase_sink());

    // 1. Workload arrivals land at the step boundary.
    if (arrivals_) {
      for (const cluster::JobRequest& req : arrivals_->sample(t, dt, rng_)) submit(req);
    }

    // 2. Thermal state: throttle fraction from the *current* IT load.
    const double throttle = cooling_.throttle_fraction(cluster_.it_power(), outdoor);
    if (throttle > 0.0) throttle_seconds_ += dt.seconds();

    // 3. Advance running jobs (progress, energy, completions).
    progress_running_jobs(t, throttle);
  }

  {
    obs::PhaseScope phase(recorder_, obs::Phase::kScheduling, phase_sink());

    // 4. Scheduling decisions under current grid signals.
    signals.price = price_.price_at(lt);
    signals.carbon = carbon_.intensity_at(lt);
    signals.renewable_share = fuel_mix_.mix_at(lt).renewable_share();
    if (signal_observer_) signal_observer_(t, signals);
    run_scheduler(t, signals);
  }

  {
    obs::PhaseScope phase(recorder_, obs::Phase::kProgressAccounting, phase_sink());

    // 5. Facility power and grid draw (battery may shift it).
    const util::Power it = cluster_.it_power();
    util::Power facility = cooling_.facility_power(it, outdoor);
    if (battery_ && battery_policy_) {
      grid::MarketView view{lt, signals.price, signals.carbon, signals.renewable_share,
                            battery_->soc_fraction()};
      const grid::BatteryAction action = battery_policy_->decide(view);
      if (action.kind == grid::BatteryAction::Kind::kCharge) {
        const util::Energy from_grid = battery_->charge(action.power, dt);
        facility += from_grid / dt;
      } else if (action.kind == grid::BatteryAction::Kind::kDischarge) {
        const util::Energy delivered = battery_->discharge(
            std::min(action.power, facility * 0.9), dt);
        facility -= delivered / dt;
      }
    }
    // Billed and attributed at local-time conditions; the increment closes
    // this step's attribution window (residual = draw minus the step's
    // per-job facility charges, amortized over the jobs that ran).
    const grid::EnergyLedger drawn = connection_->draw(lt, facility, dt);
    if (attrib_ != nullptr) attrib_->settle_step(drawn);

    // 6. Monthly instrumentation.
    monthly_util_.add_sample(t, dt, cluster_.utilization());
    monthly_pue_.add_sample(t, dt, cooling_.pue(it, outdoor));
  }

  // 7. Metrics sample (single-site runs; fleet runs sample per fleet step).
  if (obs_root_ && recorder_ != nullptr) recorder_->sample(t);

#ifdef GREENHPC_CHECK_INVARIANTS
  if (++invariant_step_ % util::kInvariantPeriod == 0) check_invariants();
#endif
}

#ifdef GREENHPC_CHECK_INVARIANTS
void Datacenter::check_invariants() const {
  int queued_gpus = 0;
  for (const cluster::JobId id : queue_) queued_gpus += jobs_.get(id).request().gpus;
  util::check_invariant(queued_gpus == queued_gpu_demand_, "datacenter.queued_demand",
                        "incremental counter " + std::to_string(queued_gpu_demand_) +
                            ", queue recount " + std::to_string(queued_gpus));
  util::check_invariant(pending_index_.size() == queue_.size(), "datacenter.pending_index",
                        "index holds " + std::to_string(pending_index_.size()) +
                            " ids, queue holds " + std::to_string(queue_.size()));
  // Sizes equal + every queued id indexed under its GPU class => bijection.
  for (const cluster::JobId id : queue_) {
    const int gpus = jobs_.get(id).request().gpus;
    const auto& buckets = pending_index_.buckets();
    const auto bucket = buckets.find(gpus);
    const bool indexed =
        bucket != buckets.end() &&
        std::binary_search(bucket->second.begin(), bucket->second.end(), id);
    util::check_invariant(indexed, "datacenter.pending_index",
                          "queued job " + std::to_string(id) + " (gpus " +
                              std::to_string(gpus) + ") missing from the index");
  }
  cluster_.check_invariants();
  accountant_.check_invariants();
  if (attrib_ != nullptr) {
    // Direct identity: the sink mirrors every accountant charge with the
    // same doubles in the same order, so the totals must agree.
    const grid::EnergyLedger& direct = attrib_->direct_total();
    const grid::EnergyLedger& booked = accountant_.totals();
    util::check_invariant_close(direct.energy.joules(), booked.energy.joules(),
                                "attribution.direct_identity", "facility energy (J)");
    util::check_invariant_close(direct.cost.dollars(), booked.cost.dollars(),
                                "attribution.direct_identity", "cost (USD)");
    util::check_invariant_close(direct.carbon.kilograms(), booked.carbon.kilograms(),
                                "attribution.direct_identity", "carbon (kg)");
    // Residual identity: every metered joule the accountant did not book is
    // either amortized over that step's jobs or parked unattributed.
    const grid::EnergyLedger& grid_totals = connection_->totals();
    const grid::EnergyLedger& amortized = attrib_->amortized_total();
    const grid::EnergyLedger& idle = attrib_->unattributed();
    util::check_invariant_close(amortized.energy.joules() + idle.energy.joules(),
                                grid_totals.energy.joules() - booked.energy.joules(),
                                "attribution.residual_identity", "residual energy (J)");
    util::check_invariant_close(amortized.carbon.kilograms() + idle.carbon.kilograms(),
                                grid_totals.carbon.kilograms() - booked.carbon.kilograms(),
                                "attribution.residual_identity", "residual carbon (kg)");
  }
}
#endif

void Datacenter::run_until(util::TimePoint end) {
  if (!step_scheduled_) {
    sim_.schedule_periodic(sim_.now(), config_.step,
                           [this](sim::Simulation& s) { step(s.now()); });
    step_scheduled_ = true;
  }
  sim_.run_until(end);
}

RunSummary Datacenter::summary() const {
  RunSummary s;
  s.jobs_submitted = jobs_.size();
  s.jobs_completed = jobs_.in_state(cluster::JobState::kCompleted).size();
  s.jobs_pending = queue_.size();
  s.jobs_migrated = jobs_.in_state(cluster::JobState::kMigrated).size();
  if (!queue_waits_hours_.empty()) {
    s.mean_queue_wait_hours = stats::mean(queue_waits_hours_);
    s.p95_queue_wait_hours = stats::quantile(queue_waits_hours_, 0.95);
  }
  const auto util_means = monthly_util_.means();
  if (!util_means.empty()) s.mean_utilization = stats::mean(util_means);
  const auto pue_means = monthly_pue_.means();
  if (!pue_means.empty()) s.mean_pue = stats::mean(pue_means);
  s.completed_gpu_hours = completed_gpu_hours_;
  s.throttle_hours = throttle_seconds_ / 3600.0;
  s.grid_totals = connection_->totals();
  return s;
}

const sim::MonthlyAccumulator& Datacenter::monthly_power() const {
  return connection_->monthly_power();
}

std::unique_ptr<Datacenter> make_reference_datacenter(std::unique_ptr<sched::Scheduler> scheduler,
                                                      std::uint64_t seed) {
  DatacenterConfig config;
  config.reseed(seed);
  auto dc = std::make_unique<Datacenter>(config, std::move(scheduler));
  dc->attach_arrivals(workload::ArrivalConfig{}, workload::DeadlineCalendar::standard());
  return dc;
}

}  // namespace greenhpc::core
