#include "core/optimization.hpp"

#include <algorithm>
#include <limits>

#include "sched/carbon_aware.hpp"
#include "sched/forecast_carbon.hpp"
#include "sched/power_aware.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace greenhpc::core {

using util::require;

const char* policy_name(PolicyKind p) {
  switch (p) {
    case PolicyKind::kFcfs: return "fcfs";
    case PolicyKind::kBackfill: return "easy_backfill";
    case PolicyKind::kCarbonAware: return "carbon_aware";
    case PolicyKind::kPowerAware: return "power_aware";
    case PolicyKind::kForecastCarbon: return "forecast_carbon";
  }
  return "unknown";
}

std::optional<PolicyKind> policy_from_name(const std::string& name) {
  if (name == "fcfs") return PolicyKind::kFcfs;
  if (name == "easy_backfill" || name == "backfill") return PolicyKind::kBackfill;
  if (name == "carbon_aware") return PolicyKind::kCarbonAware;
  if (name == "power_aware") return PolicyKind::kPowerAware;
  if (name == "forecast_carbon") return PolicyKind::kForecastCarbon;
  return std::nullopt;
}

const char* policy_names() {
  return "fcfs | easy_backfill | carbon_aware | power_aware | forecast_carbon";
}

std::unique_ptr<sched::Scheduler> make_scheduler(PolicyKind p) {
  return make_scheduler(p, ForecastControls{});
}

std::unique_ptr<sched::Scheduler> make_scheduler(PolicyKind p, const ForecastControls& forecast) {
  switch (p) {
    case PolicyKind::kFcfs: return std::make_unique<sched::FcfsScheduler>();
    case PolicyKind::kBackfill: return std::make_unique<sched::EasyBackfillScheduler>();
    case PolicyKind::kCarbonAware: return std::make_unique<sched::CarbonAwareScheduler>();
    case PolicyKind::kPowerAware: return std::make_unique<sched::PowerAwareScheduler>();
    case PolicyKind::kForecastCarbon: {
      sched::ForecastCarbonConfig config;
      config.forecaster.model = forecast.model;
      config.forecaster.horizon = forecast.horizon;
      return std::make_unique<sched::ForecastCarbonScheduler>(config);
    }
  }
  return std::make_unique<sched::FcfsScheduler>();
}

std::string ControlVector::label() const {
  return std::string(policy_name(policy)) + "/cap" + util::fmt_fixed(power_cap.watts(), 0) +
         "W/nodes" + std::to_string(enabled_nodes) + (battery ? "/battery" : "");
}

OptimizationResult grid_search(const EvaluateFn& evaluate,
                               const std::vector<ControlVector>& candidates, double alpha,
                               bool parallel) {
  require(static_cast<bool>(evaluate), "grid_search: null evaluate function");
  require(!candidates.empty(), "grid_search: empty candidate list");

  std::vector<Evaluation> evals(candidates.size());
  if (parallel) {
    util::parallel_for(candidates.size(),
                       [&](std::size_t i) { evals[i] = evaluate(candidates[i]); });
  } else {
    for (std::size_t i = 0; i < candidates.size(); ++i) evals[i] = evaluate(candidates[i]);
  }

  OptimizationResult result;
  result.all = evals;
  double best_energy = std::numeric_limits<double>::infinity();
  double least_violation = std::numeric_limits<double>::infinity();
  for (const Evaluation& e : evals) {
    if (e.feasible(alpha)) {
      if (!result.found_feasible || e.energy < best_energy) {
        result.best = e;
        best_energy = e.energy;
        result.found_feasible = true;
      }
    } else if (!result.found_feasible) {
      // Track the least-infeasible point as a fallback recommendation.
      const double violation = alpha - e.activity;
      if (violation < least_violation) {
        least_violation = violation;
        result.best = e;
      }
    }
  }
  return result;
}

std::vector<ControlVector> default_lattice() {
  std::vector<ControlVector> lattice;
  for (PolicyKind p : {PolicyKind::kFcfs, PolicyKind::kBackfill, PolicyKind::kCarbonAware,
                       PolicyKind::kPowerAware}) {
    for (double cap : {250.0, 225.0, 200.0, 175.0, 150.0}) {
      for (int nodes : {224, 200, 176}) {
        ControlVector cv;
        cv.policy = p;
        cv.power_cap = util::watts(cap);
        cv.enabled_nodes = nodes;
        lattice.push_back(cv);
      }
    }
  }
  return lattice;
}

OptimizationResult refine_cap(const EvaluateFn& evaluate, ControlVector start, double alpha,
                              util::Power step, int max_iterations) {
  require(static_cast<bool>(evaluate), "refine_cap: null evaluate function");
  require(step.watts() > 0.0, "refine_cap: step must be positive");

  OptimizationResult result;
  Evaluation current = evaluate(start);
  result.all.push_back(current);
  result.best = current;
  result.found_feasible = current.feasible(alpha);

  for (int i = 0; i < max_iterations; ++i) {
    ControlVector next = result.best.controls;
    next.power_cap = next.power_cap - step;
    if (next.power_cap.watts() < 100.0) break;  // settable floor
    const Evaluation e = evaluate(next);
    result.all.push_back(e);
    if (e.feasible(alpha) && e.energy < result.best.energy) {
      result.best = e;
      result.found_feasible = true;
    } else {
      break;  // constraint broke or energy worsened: stop descending
    }
  }
  return result;
}

std::vector<UserCapAssignment> per_user_caps(
    const std::vector<telemetry::UserFootprint>& users, const power::GpuPowerModel& model,
    const std::function<double(const telemetry::UserFootprint&)>& alpha_of) {
  require(static_cast<bool>(alpha_of), "per_user_caps: null alpha function");

  std::vector<UserCapAssignment> out;
  out.reserve(users.size());
  for (const telemetry::UserFootprint& u : users) {
    const double alpha = alpha_of(u);
    UserCapAssignment a;
    a.user = u.user;
    a.cap = model.spec().tdp;
    a.predicted_activity = u.gpu_hours;
    a.predicted_energy_ratio = 1.0;
    // Walk the cap down while the user's throughput-scaled activity stays
    // above their floor; keep the greenest feasible cap.
    for (double w = model.spec().tdp.watts(); w >= model.spec().min_cap.watts(); w -= 5.0) {
      const util::Power cap = util::watts(w);
      const double activity = u.gpu_hours * model.throughput_factor(cap);
      if (activity < alpha) break;
      const double energy_ratio = model.relative_energy_per_work(cap);
      if (energy_ratio <= a.predicted_energy_ratio) {
        a.cap = cap;
        a.predicted_activity = activity;
        a.predicted_energy_ratio = energy_ratio;
      }
    }
    out.push_back(a);
  }
  return out;
}

}  // namespace greenhpc::core
