#include "core/challenge.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace greenhpc::core {

using util::require;

GreenAiChallenge::GreenAiChallenge(ChallengeBudget budget) : budget_(budget) {
  require(budget_.energy.joules() > 0.0, "GreenAiChallenge: energy budget must be positive");
  require(budget_.gpu_hours > 0.0, "GreenAiChallenge: compute budget must be positive");
}

ScoredSubmission GreenAiChallenge::score(const Submission& s) const {
  require(s.performance >= 0.0, "GreenAiChallenge: negative performance");
  require(s.energy_used.joules() >= 0.0 && s.gpu_hours_used >= 0.0,
          "GreenAiChallenge: negative resource usage");

  ScoredSubmission out;
  out.submission = s;
  out.within_budget = true;
  if (s.energy_used > budget_.energy) {
    out.within_budget = false;
    out.disqualification = "energy budget exceeded";
  } else if (s.gpu_hours_used > budget_.gpu_hours) {
    out.within_budget = false;
    out.disqualification = "compute budget exceeded";
  }
  out.score = out.within_budget ? s.performance : 0.0;
  const double kwh = s.energy_used.kilowatt_hours();
  out.efficiency = kwh > 0.0 ? s.performance / kwh : 0.0;
  return out;
}

std::vector<ScoredSubmission> GreenAiChallenge::leaderboard(
    const std::vector<Submission>& submissions) const {
  std::vector<ScoredSubmission> scored;
  scored.reserve(submissions.size());
  for (const Submission& s : submissions) scored.push_back(score(s));
  std::sort(scored.begin(), scored.end(), [](const ScoredSubmission& a, const ScoredSubmission& b) {
    if (a.within_budget != b.within_budget) return a.within_budget;
    if (a.score != b.score) return a.score > b.score;
    return a.submission.energy_used < b.submission.energy_used;  // greener wins ties
  });
  return scored;
}

std::vector<ScoredSubmission> GreenAiChallenge::efficiency_leaderboard(
    const std::vector<Submission>& submissions) const {
  std::vector<ScoredSubmission> scored;
  for (const Submission& s : submissions) {
    ScoredSubmission sc = score(s);
    if (sc.within_budget) scored.push_back(sc);
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredSubmission& a, const ScoredSubmission& b) {
              return a.efficiency > b.efficiency;
            });
  return scored;
}

}  // namespace greenhpc::core
