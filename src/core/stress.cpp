#include "core/stress.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace greenhpc::core {

using util::require;

const char* scenario_name(ScenarioKind k) {
  switch (k) {
    case ScenarioKind::kBaseline: return "baseline";
    case ScenarioKind::kHeatWave: return "heat_wave";
    case ScenarioKind::kExtremeHeatWave: return "extreme_heat_wave";
    case ScenarioKind::kWarmedClimate: return "warmed_climate";
    case ScenarioKind::kCoolingDegradation: return "cooling_degradation";
    case ScenarioKind::kPriceSpike: return "price_spike";
    case ScenarioKind::kRenewableDrought: return "renewable_drought";
  }
  return "unknown";
}

StressTester::StressTester(StressConfig config) : config_(config) {
  require(config_.replicas >= 1, "StressTester: need at least one replica");
}

StressTester::SingleRun StressTester::run_once(ScenarioKind scenario, double weatherization,
                                               std::uint64_t seed) const {
  DatacenterConfig dc_config;
  dc_config.seed = seed;
  dc_config.fuel_mix.seed = seed ^ 0x5EEDF00DULL;
  dc_config.price.seed = seed ^ 0x9E37ULL;
  dc_config.weather.seed = seed ^ 0xBADCAFEULL;
  dc_config.cooling = thermal::CoolingModel::weatherized(thermal::CoolingConfig{}, weatherization);

  const util::MonthSpan span = util::month_span(config_.month);

  // Environment perturbations.
  switch (scenario) {
    case ScenarioKind::kBaseline:
      break;
    case ScenarioKind::kWarmedClimate:
      dc_config.weather.climate_offset = 3.0;
      break;
    case ScenarioKind::kCoolingDegradation:
      dc_config.cooling.cooling_capacity = dc_config.cooling.cooling_capacity * 0.65;
      break;
    case ScenarioKind::kPriceSpike:
      dc_config.price.spikes_per_year *= 10.0;
      dc_config.price.spike_multiplier = 6.0;
      break;
    case ScenarioKind::kRenewableDrought:
      for (auto& w : dc_config.fuel_mix.wind_pct_by_month) w *= 0.5;
      break;
    case ScenarioKind::kHeatWave:
    case ScenarioKind::kExtremeHeatWave:
      break;  // injected below, needs the WeatherModel instance
  }

  // Start a warm-up week before the measured month so the queue and
  // allocations reach steady state.
  dc_config.start = span.start - util::days(7);

  auto scheduler = std::make_unique<sched::EasyBackfillScheduler>();
  Datacenter dc(dc_config, std::move(scheduler));
  dc.attach_arrivals(workload::ArrivalConfig{}, workload::DeadlineCalendar::standard());

  if (scenario == ScenarioKind::kHeatWave) {
    dc.mutable_weather().add_heat_wave(
        {span.start + util::days(12), util::days(5), 8.0});
  } else if (scenario == ScenarioKind::kExtremeHeatWave) {
    dc.mutable_weather().add_heat_wave(
        {span.start + util::days(10), util::days(10), 14.0});
  }

  dc.run_until(span.start);  // warm-up week
  dc.run_until(span.end);    // measured month

  const RunSummary s = dc.summary();
  SingleRun out;
  out.throttle_hours = s.throttle_hours;
  out.completed_gpu_hours = s.completed_gpu_hours;
  out.cost_usd = s.grid_totals.cost.dollars();
  out.carbon_kg = s.grid_totals.carbon.kilograms();
  const auto pue_monthly = dc.monthly_pue().monthly();
  for (const auto& m : pue_monthly) {
    if (m.month == config_.month) out.peak_pue = m.max;
  }
  return out;
}

StressOutcome StressTester::run(ScenarioKind scenario, double weatherization) const {
  require(weatherization >= 0.0 && weatherization <= 1.0,
          "StressTester: weatherization must be in [0,1]");

  std::vector<SingleRun> stressed(config_.replicas);
  std::vector<SingleRun> control(config_.replicas);
  util::parallel_for(config_.replicas * 2, [&](std::size_t i) {
    const std::size_t r = i / 2;
    const std::uint64_t seed = config_.base_seed + r * 7919;
    if (i % 2 == 0) {
      stressed[r] = run_once(scenario, weatherization, seed);
    } else {
      control[r] = run_once(ScenarioKind::kBaseline, weatherization, seed);
    }
  });

  StressOutcome out;
  out.scenario = scenario;
  out.weatherization = weatherization;
  out.replicas = config_.replicas;
  for (std::size_t r = 0; r < config_.replicas; ++r) {
    out.throttle_hours += stressed[r].throttle_hours;
    out.unserved_gpu_hours +=
        std::max(0.0, control[r].completed_gpu_hours - stressed[r].completed_gpu_hours);
    out.peak_pue = std::max(out.peak_pue, stressed[r].peak_pue);
    out.extra_cost_usd += stressed[r].cost_usd - control[r].cost_usd;
    out.extra_carbon_kg += stressed[r].carbon_kg - control[r].carbon_kg;
  }
  const auto n = static_cast<double>(config_.replicas);
  out.throttle_hours /= n;
  out.unserved_gpu_hours /= n;
  out.extra_cost_usd /= n;
  out.extra_carbon_kg /= n;
  return out;
}

std::vector<StressOutcome> StressTester::run_battery(
    const std::vector<double>& weatherization_levels) const {
  std::vector<StressOutcome> out;
  for (double level : weatherization_levels) {
    for (ScenarioKind k :
         {ScenarioKind::kHeatWave, ScenarioKind::kExtremeHeatWave, ScenarioKind::kWarmedClimate,
          ScenarioKind::kCoolingDegradation, ScenarioKind::kPriceSpike,
          ScenarioKind::kRenewableDrought}) {
      out.push_back(run(k, level));
    }
  }
  return out;
}

}  // namespace greenhpc::core
