#pragma once
// The Eq. 1 / Eq. 2 optimization framework.
//
// Eq. 1:  min_{q_s, p, c}  E(q_d, q_s, p, c, eps)   s.t.  A(...) >= alpha
//
// Controls: q_s (enabled nodes), p (scheduler policy), c (power cap, battery
// policy). The objective is evaluated by running the digital twin, so the
// optimizer treats E and A as a black box — exactly how an operations team
// would tune a real facility against a simulator. A grid search enumerates
// the (small, discrete) control lattice, optionally in parallel across the
// thread pool; coordinate descent refines the continuous cap dimension.
//
// Eq. 2 decomposes per user: min sum_i e_i s.t. a_i >= alpha_i. Given the
// accountant's per-user ledgers, per_user_caps() picks the strictest per-user
// power cap keeping each user's activity above their floor — the "tailored"
// micro-level intervention the paper contrasts with across-the-board knobs.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "power/gpu_power.hpp"
#include "sched/scheduler.hpp"
#include "telemetry/accountant.hpp"
#include "util/units.hpp"

namespace greenhpc::core {

/// Which scheduling policy the control vector selects (the `p` knob).
enum class PolicyKind : std::uint8_t {
  kFcfs = 0,
  kBackfill,
  kCarbonAware,
  kPowerAware,
  kForecastCarbon,
};

[[nodiscard]] const char* policy_name(PolicyKind p);

/// Inverse of policy_name() for CLI/scenario surfaces; also accepts
/// "backfill" as shorthand. Returns nullopt for unknown names.
[[nodiscard]] std::optional<PolicyKind> policy_from_name(const std::string& name);

/// All names policy_from_name accepts, for --help text.
[[nodiscard]] const char* policy_names();

/// Forecast controls for the predictive policies (ignored by the reactive
/// ones): which forecast model drives forecast_carbon, and how far ahead it
/// looks. Defaults match forecast::RollingForecasterConfig.
struct ForecastControls {
  std::string model = "climatology";
  util::Duration horizon = util::hours(24);
};

/// Instantiates the scheduler a control vector selects.
[[nodiscard]] std::unique_ptr<sched::Scheduler> make_scheduler(PolicyKind p);

/// As above with explicit forecast controls (forecast_carbon only).
[[nodiscard]] std::unique_ptr<sched::Scheduler> make_scheduler(PolicyKind p,
                                                               const ForecastControls& forecast);

/// One point in the Eq. 1 control space.
struct ControlVector {
  util::Power power_cap = util::watts(250.0);  ///< c: cluster-wide GPU cap
  int enabled_nodes = 224;                     ///< q_s: supply
  PolicyKind policy = PolicyKind::kBackfill;   ///< p: allocation rule
  bool battery = false;                        ///< c: storage dispatch on/off

  [[nodiscard]] std::string label() const;
};

/// What one evaluation of the twin reports back.
struct Evaluation {
  ControlVector controls;
  double energy = 0.0;    ///< E(.) — the objective (kWh, $ or kgCO2; caller's choice)
  double activity = 0.0;  ///< A(.) — completed GPU-hours (or any activity proxy)
  [[nodiscard]] bool feasible(double alpha) const { return activity >= alpha; }
};

using EvaluateFn = std::function<Evaluation(const ControlVector&)>;

struct OptimizationResult {
  Evaluation best;
  std::vector<Evaluation> all;  ///< every evaluated point, for reporting
  bool found_feasible = false;
};

/// Minimizes energy subject to A >= alpha over an explicit candidate list.
/// Evaluations run on the shared thread pool when `parallel` is true (each
/// candidate must then be independently evaluable — the twin factory must
/// build a fresh simulation per call).
[[nodiscard]] OptimizationResult grid_search(const EvaluateFn& evaluate,
                                             const std::vector<ControlVector>& candidates,
                                             double alpha, bool parallel = true);

/// Builds a reasonable candidate lattice: caps x node counts x policies.
[[nodiscard]] std::vector<ControlVector> default_lattice();

/// Coordinate descent on the continuous cap dimension around a start point:
/// shrinks the cap while the activity constraint holds and energy improves.
[[nodiscard]] OptimizationResult refine_cap(const EvaluateFn& evaluate, ControlVector start,
                                            double alpha, util::Power step = util::watts(10.0),
                                            int max_iterations = 12);

// --- Eq. 2: per-user decomposition ------------------------------------------

struct UserCapAssignment {
  cluster::UserId user = 0;
  util::Power cap;
  double predicted_activity = 0.0;  ///< a_i under the cap (GPU-hours
                                    ///< rescaled by throughput)
  double predicted_energy_ratio = 1.0;  ///< e_i vs uncapped
};

/// For each user ledger, picks the strictest cap whose throughput keeps the
/// user's activity (gpu-hours x throughput factor) at or above `alpha_i`.
/// `alpha_of(user)` supplies the per-user floor.
[[nodiscard]] std::vector<UserCapAssignment> per_user_caps(
    const std::vector<telemetry::UserFootprint>& users, const power::GpuPowerModel& model,
    const std::function<double(const telemetry::UserFootprint&)>& alpha_of);

}  // namespace greenhpc::core
