#pragma once
// Weatherization stress tests (Sec. II-B).
//
// "A useful exercise can be a regularly conducted stress-test akin to the
// Dodd-Frank stress tests ... simulated stress scenarios that test the
// resiliency ... helping identify areas in need of remediation." Each
// scenario perturbs the environment (heat waves, chiller degradation, price
// spikes, renewable droughts); the tester runs the twin with and without
// weatherization investment and reports resilience metrics. Ensembles run
// across seeds on the thread pool.

#include <functional>
#include <string>
#include <vector>

#include "core/datacenter.hpp"

namespace greenhpc::core {

enum class ScenarioKind : std::uint8_t {
  kBaseline = 0,        ///< no perturbation (control)
  kHeatWave,            ///< +8 C for 5 days mid-July
  kExtremeHeatWave,     ///< +14 C for 10 days mid-July
  kWarmedClimate,       ///< +3 C always (the climate-change drift of Sec. II-B)
  kCoolingDegradation,  ///< chiller fault: -35% cooling capacity
  kPriceSpike,          ///< scarcity pricing: 10x spike frequency
  kRenewableDrought,    ///< wind under-delivers by 50% (Sec. II-A caveat)
};

[[nodiscard]] const char* scenario_name(ScenarioKind k);

/// Resilience metrics from one scenario run, compared to the control run.
struct StressOutcome {
  ScenarioKind scenario = ScenarioKind::kBaseline;
  double weatherization = 0.0;      ///< investment level used, [0,1]
  double throttle_hours = 0.0;      ///< hours spent thermally throttled
  double unserved_gpu_hours = 0.0;  ///< completed work lost vs. control
  double peak_pue = 0.0;
  double extra_cost_usd = 0.0;      ///< electricity cost vs. control
  double extra_carbon_kg = 0.0;
  std::size_t replicas = 0;         ///< ensemble size behind the means
};

struct StressConfig {
  /// Month to run (July stresses cooling hardest).
  util::MonthKey month{2021, 7};
  /// Ensemble size (independent seeds, parallel).
  std::size_t replicas = 4;
  std::uint64_t base_seed = 1234;
};

class StressTester {
 public:
  explicit StressTester(StressConfig config = {});

  /// Runs one scenario at a weatherization level; returns ensemble means.
  [[nodiscard]] StressOutcome run(ScenarioKind scenario, double weatherization) const;

  /// The full Dodd-Frank-style battery: every scenario at the given
  /// investment levels.
  [[nodiscard]] std::vector<StressOutcome> run_battery(
      const std::vector<double>& weatherization_levels) const;

 private:
  struct SingleRun {
    double throttle_hours = 0.0;
    double completed_gpu_hours = 0.0;
    double peak_pue = 0.0;
    double cost_usd = 0.0;
    double carbon_kg = 0.0;
  };
  [[nodiscard]] SingleRun run_once(ScenarioKind scenario, double weatherization,
                                   std::uint64_t seed) const;

  StressConfig config_;
};

}  // namespace greenhpc::core
