#pragma once
// The datacenter digital twin: Eq. 1 made executable.
//
// Composes every substrate — cluster (q_s), scheduler (p), power caps (c),
// workload arrivals (q_d), and the environment epsilon (weather, fuel mix,
// prices) — and steps them together on the simulation engine. Total energy
// E(.) and activity A(.) fall out of the run, decomposed per job/user by the
// accountant (Eq. 2). Every figure bench drives one of these.

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/job.hpp"
#include "obs/decision.hpp"
#include "grid/battery.hpp"
#include "grid/carbon.hpp"
#include "grid/connection.hpp"
#include "grid/fuel_mix.hpp"
#include "grid/price.hpp"
#include "sched/pending_index.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/recorder.hpp"
#include "telemetry/accountant.hpp"
#include "thermal/cooling.hpp"
#include "thermal/weather.hpp"
#include "util/rng.hpp"
#include "workload/arrivals.hpp"

namespace greenhpc::obs {
class Counter;
class FlightRecorder;
class MetricHistogram;
class RegionAttributionSink;
class TraceWriter;
}

namespace greenhpc::core {

struct DatacenterConfig {
  cluster::ClusterSpec cluster;
  thermal::WeatherConfig weather;
  thermal::CoolingConfig cooling;
  grid::FuelMixConfig fuel_mix;
  grid::PriceConfig price;
  /// Life-cycle emission factors applied to the fuel mix; regional grids
  /// (fleet/) override these together with the mix itself.
  grid::EmissionFactors emission_factors;
  grid::GridConnectionConfig connection;
  std::optional<grid::BatteryConfig> battery;  ///< nullopt = no storage
  /// Offset between this site's local time and the fleet-wide simulation
  /// clock. Environment models (weather diurnal cycle, solar output, LMP
  /// shapes) are defined in local time, so a twin at +3 h sees its afternoon
  /// peak three simulated hours earlier than the clock's home region.
  util::Duration local_time_offset = util::seconds(0.0);
  util::Duration step = util::minutes(15);
  /// Where the twin's clock starts (default: the simulation epoch,
  /// 2020-01-01). Experiments on a later window start just before it.
  util::TimePoint start = util::TimePoint::from_seconds(0.0);
  std::uint64_t seed = 42;

  /// Sets the twin seed and derives the per-subsystem environment seeds
  /// (fuel mix, prices, weather) from it — the one place that derivation
  /// lives, so every surface that builds a twin stays bit-reproducible
  /// against the others.
  void reseed(std::uint64_t s) {
    seed = s;
    fuel_mix.seed = s ^ 0x5EEDF00DULL;
    price.seed = s ^ 0x9E37ULL;
    weather.seed = s ^ 0xBADCAFEULL;
  }
};

/// Aggregate results of a run (monthly views live on the accessors).
struct RunSummary {
  std::size_t jobs_submitted = 0;
  std::size_t jobs_completed = 0;
  std::size_t jobs_pending = 0;
  /// Jobs checkpointed away to another site (terminal here; the destination
  /// re-submits the remainder, so fleet-wide submitted = arrivals +
  /// deliveries and submitted == completed + pending + running + migrated).
  std::size_t jobs_migrated = 0;
  double mean_queue_wait_hours = 0.0;
  double p95_queue_wait_hours = 0.0;
  double mean_utilization = 0.0;
  double mean_pue = 0.0;
  double completed_gpu_hours = 0.0;  ///< the activity A of Eq. 1
  double throttle_hours = 0.0;       ///< hours with nonzero thermal throttle
  grid::EnergyLedger grid_totals;    ///< energy E, cost, carbon, water
};

class Datacenter {
 public:
  /// `scheduler` must be non-null; `arrivals_config`/`modulator` may be
  /// omitted for externally-driven workloads (submit() only).
  Datacenter(DatacenterConfig config, std::unique_ptr<sched::Scheduler> scheduler);

  /// Attaches an arrival process (owned modulator built from `calendar`).
  void attach_arrivals(workload::ArrivalConfig arrival_config,
                       workload::DeadlineCalendar calendar, workload::DemandConfig demand = {});

  /// As above, with submissions attributed to a user population (borrowed;
  /// must outlive the datacenter). Enables the Eq. 2 per-user analyses.
  void attach_arrivals(workload::ArrivalConfig arrival_config,
                       workload::DeadlineCalendar calendar,
                       const workload::UserPopulation* population,
                       workload::DemandConfig demand = {});

  /// Attaches a battery policy (requires config.battery to be set).
  void attach_battery_policy(std::unique_ptr<grid::ArbitragePolicy> policy);

  /// Eq. 2 hook: called once when a job starts; a returned cap is applied to
  /// that job's GPUs (min-composed with the cluster-wide cap). Return
  /// nullopt to leave the job on the cluster cap.
  using JobCapPolicy = std::function<std::optional<util::Power>(const cluster::Job&)>;
  void set_job_cap_policy(JobCapPolicy policy) { job_cap_policy_ = std::move(policy); }

  /// Observer for the per-step grid-signal stream (price, carbon, renewable
  /// share at this site's local time). External forecasters and telemetry
  /// taps subscribe here; the attached scheduler already receives the same
  /// signals through its SchedulerContext.
  using SignalObserver = std::function<void(util::TimePoint, const sched::GridSignals&)>;
  void set_signal_observer(SignalObserver observer) { signal_observer_ = std::move(observer); }

  /// Attaches the flight recorder (borrowed; must outlive the run).
  /// `region` picks the trace lane (pid 1 + region) and metric prefix;
  /// `root` makes this twin drive the per-step metrics sampling — true for
  /// single-site runs, false under a FleetCoordinator (which samples once
  /// per fleet step itself). Registers this site's counters and gauges.
  void set_recorder(obs::FlightRecorder* recorder, std::size_t region = 0, bool root = true);

  /// Submits an external job at the current simulation time.
  cluster::JobId submit(const cluster::JobRequest& request);

  // --- checkpoint/migration hooks (driven by fleet::FleetCoordinator) -------

  /// Running job ids in allocation order (deterministic: the order jobs
  /// started), for migration planners scanning the site.
  [[nodiscard]] std::vector<cluster::JobId> running_jobs() const;

  /// Everything a destination twin needs to resume a checkpointed job.
  struct PreemptedJob {
    cluster::JobRequest request;  ///< the original submission
    /// The lineage's total progress so far (this site plus any earlier
    /// sites it already migrated through).
    double work_done_gpu_seconds = 0.0;
    double work_remaining_gpu_seconds = 0.0;
    /// Stamped by preempt(); lets resume() reject the same snapshot twice
    /// (a double-spend of banked progress). 0 means hand-built/untracked.
    std::uint64_t snapshot_id = 0;
  };

  /// Checkpoint-and-release: frees the job's GPUs, marks it migrated
  /// (terminal at this site; its energy ledger stays here), and returns the
  /// snapshot the destination resumes from. Throws if the job is not running.
  PreemptedJob preempt(cluster::JobId id);

  /// Resume hook: submits the snapshot's remaining work as a fresh job at
  /// this site (flexibility, user, and class preserved; a deadline that
  /// expired in transit is dropped — the job already missed it). Progress is
  /// preserved in GPU-seconds: only work_remaining is resubmitted, and the
  /// checkpointed progress is credited to completed GPU-hours when the
  /// lineage finishes — never before, so migration-on and migration-off runs
  /// count delivered work symmetrically.
  cluster::JobId resume(const PreemptedJob& snapshot);

  /// Migrated-in lineages whose banked progress has not been delivered yet
  /// (each entry is a resumed job that has neither completed nor been
  /// checkpointed onward). Zero means every migration through this site is
  /// fully settled — the fleet drain's work-conservation condition.
  [[nodiscard]] std::size_t pending_migration_credits() const {
    return migration_credit_.size();
  }

  // --- fault hooks (driven by fault::FaultInjector via the coordinator) ------

  /// Node-loss seam: kills every running job holding GPUs on nodes at or
  /// beyond `count` (checkpoint-and-requeue — each victim is preempted and
  /// immediately resumed into this site's queue with its banked progress
  /// intact), then disables those nodes. Repair is the same call with a
  /// larger count. Returns the number of jobs requeued.
  std::size_t resize_enabled_nodes(int count);

  /// Locally restarted jobs from resize_enabled_nodes, cumulative. Each adds
  /// one registry entry without a fleet routing decision, so the fleet's
  /// work-conservation invariant counts these separately.
  [[nodiscard]] std::size_t jobs_requeued() const { return jobs_requeued_; }

  /// External power ceiling (brownout/blackout fault windows). Composes with
  /// the scheduler's own cap by minimum each step; nullopt (the default)
  /// restores scheduler-only capping.
  void set_fault_power_cap(std::optional<util::Power> cap) { fault_power_cap_ = cap; }
  [[nodiscard]] std::optional<util::Power> fault_power_cap() const { return fault_power_cap_; }

  /// Runs the twin from its current time to `end`.
  void run_until(util::TimePoint end);

  [[nodiscard]] util::TimePoint now() const { return sim_.now(); }
  /// This site's local time for a simulation-clock instant.
  [[nodiscard]] util::TimePoint local_time(util::TimePoint t) const {
    return t + config_.local_time_offset;
  }
  [[nodiscard]] RunSummary summary() const;

  // --- Component access (read-only) -----------------------------------------
  [[nodiscard]] const cluster::Cluster& cluster_state() const { return cluster_; }
  [[nodiscard]] const cluster::JobRegistry& jobs() const { return jobs_; }
  /// Pending job ids in submission order (what the scheduler sees each step).
  [[nodiscard]] const std::vector<cluster::JobId>& queue() const { return queue_; }
  /// Sum of the queued jobs' GPU requests, maintained incrementally so
  /// per-step snapshots (fleet routing views) never rescan the queue.
  [[nodiscard]] int queued_gpu_demand() const { return queued_gpu_demand_; }
  [[nodiscard]] const grid::GridConnection& grid_meter() const { return *connection_; }
  [[nodiscard]] const telemetry::EnergyAccountant& accountant() const { return accountant_; }
  [[nodiscard]] const thermal::WeatherModel& weather() const { return weather_; }
  [[nodiscard]] const grid::FuelMixModel& fuel_mix() const { return fuel_mix_; }
  [[nodiscard]] const grid::LmpPriceModel& prices() const { return price_; }
  [[nodiscard]] const grid::CarbonIntensityModel& carbon() const { return carbon_; }
  [[nodiscard]] const grid::BatteryStorage* battery() const { return battery_ ? &*battery_ : nullptr; }
  [[nodiscard]] const sched::Scheduler& scheduler() const { return *scheduler_; }
  [[nodiscard]] thermal::WeatherModel& mutable_weather() { return weather_; }

#ifdef GREENHPC_CHECK_INVARIANTS
  // --- Debug invariant layer (compiled out of release builds) ---------------

  /// Deep checks run every util::kInvariantPeriod steps inside step(); also
  /// callable directly. Throws util::InvariantViolation naming the check:
  ///   datacenter.queued_demand  queued_gpu_demand_ == recount over queue_
  ///   datacenter.pending_index  PendingIndex and queue_ agree (size and
  ///                             membership)
  /// plus the nested cluster.* and accountant.* checks.
  void check_invariants() const;

  /// Test seams: corrupt the real incremental state each check guards.
  void debug_corrupt_queued_gpu_demand(int delta) { queued_gpu_demand_ += delta; }
  /// Drops the oldest queued job from the pending index only (queue_ keeps
  /// it) — the index/queue divergence datacenter.pending_index guards.
  void debug_unindex_queued_job() {
    if (queue_.empty()) return;
    pending_index_.erase(queue_.front(), jobs_.get(queue_.front()).request().gpus);
  }
  [[nodiscard]] cluster::Cluster& debug_cluster() { return cluster_; }
  [[nodiscard]] telemetry::EnergyAccountant& debug_accountant() { return accountant_; }
#endif

  /// Monthly mean facility power (kW) — Fig. 2/4/5 left axis.
  [[nodiscard]] const sim::MonthlyAccumulator& monthly_power() const;
  /// Monthly mean GPU utilization (0..1).
  [[nodiscard]] const sim::MonthlyAccumulator& monthly_utilization() const { return monthly_util_; }
  /// Monthly mean PUE.
  [[nodiscard]] const sim::MonthlyAccumulator& monthly_pue() const { return monthly_pue_; }
  /// Monthly job submissions (event counts).
  [[nodiscard]] const sim::MonthlyAccumulator& monthly_submissions() const { return monthly_subs_; }

 private:
  void step(util::TimePoint t);
  void progress_running_jobs(util::TimePoint t, double throttle);
  void run_scheduler(util::TimePoint t, const sched::GridSignals& signals);
  /// Pops the lineage progress carried by a migrated-in job (0 for others).
  double take_migration_credit(cluster::JobId id);

  // --- observability helpers (all no-ops without a recorder) ----------------
  [[nodiscard]] bool tracing() const;
  /// The trace writer this site's sim-domain events append to: its region
  /// shard when the recorder has shards enabled (fleet runs — required for
  /// race-free region-parallel stepping and merged deterministically at each
  /// step barrier), else the main trace (single-site runs).
  [[nodiscard]] obs::TraceWriter& trace_sink() const;
  /// Shard pointer for PhaseScope sinks (null without a recorder).
  [[nodiscard]] obs::TraceWriter* phase_sink() const;
  /// Trace lane for this site (pid 1 + region).
  [[nodiscard]] int trace_pid() const { return 1 + static_cast<int>(obs_region_); }
  /// Fleet-unique async-span id for a job at this site.
  [[nodiscard]] std::uint64_t span_id(cluster::JobId id) const {
    return (static_cast<std::uint64_t>(obs_region_) << 40) | id;
  }

  DatacenterConfig config_;

  // Environment models.
  thermal::WeatherModel weather_;
  thermal::CoolingModel cooling_;
  grid::FuelMixModel fuel_mix_;
  grid::CarbonIntensityModel carbon_;
  grid::LmpPriceModel price_;
  std::unique_ptr<grid::GridConnection> connection_;
  std::optional<grid::BatteryStorage> battery_;
  std::unique_ptr<grid::ArbitragePolicy> battery_policy_;

  // Plant.
  cluster::Cluster cluster_;
  cluster::JobRegistry jobs_;
  /// Lineage progress carried by migrated-in jobs, credited at completion.
  std::unordered_map<cluster::JobId, double> migration_credit_;
  /// Snapshot ids already resumed at this site (double-resume rejection).
  std::unordered_set<std::uint64_t> resumed_snapshots_;
  std::uint64_t snapshot_seq_ = 0;  ///< feeds preempt()'s snapshot_id stamps
  std::size_t jobs_requeued_ = 0;   ///< node-fault kill-and-requeue restarts
  /// Fault-layer power ceiling; min-composed with the scheduler's cap.
  std::optional<util::Power> fault_power_cap_;
  std::vector<cluster::JobId> queue_;
  int queued_gpu_demand_ = 0;  ///< sum of queue_ jobs' GPU requests
  /// Per-GPU-class index over queue_, maintained on submit/dispatch so
  /// EASY-style schedulers skip whole too-big classes instead of rescanning
  /// the queue (handed to them via SchedulerContext::pending).
  sched::PendingIndex pending_index_;
  std::unique_ptr<sched::Scheduler> scheduler_;
  JobCapPolicy job_cap_policy_;
  SignalObserver signal_observer_;

  // Workload.
  std::unique_ptr<workload::DemandModulator> modulator_;
  std::unique_ptr<workload::ArrivalProcess> arrivals_;
  util::Rng rng_;

  // Measurement.
  telemetry::EnergyAccountant accountant_;
  /// Reused per-step (job, gpus) snapshot for progress_running_jobs.
  std::vector<std::pair<cluster::JobId, int>> progress_scratch_;
  /// Reused per-step set of dispatched jobs (run_scheduler's queue erase).
  std::unordered_set<cluster::JobId> started_scratch_;
  sim::MonthlyAccumulator monthly_util_;
  sim::MonthlyAccumulator monthly_pue_;
  sim::MonthlyAccumulator monthly_subs_;
  std::vector<double> queue_waits_hours_;
  double throttle_seconds_ = 0.0;
  double completed_gpu_hours_ = 0.0;

  // Observability (null/empty when no recorder is attached; everything
  // behind it is observational — reads state, never mutates it).
  obs::FlightRecorder* recorder_ = nullptr;
  std::size_t obs_region_ = 0;
  bool obs_root_ = false;  ///< this twin drives the per-step metrics sample
  obs::Counter* ctr_submitted_ = nullptr;
  obs::Counter* ctr_started_ = nullptr;
  obs::Counter* ctr_completed_ = nullptr;
  obs::Counter* ctr_migrated_out_ = nullptr;
  obs::MetricHistogram* hist_queue_wait_ = nullptr;
  /// This region's attribution sink (cached at attach, like the counters):
  /// mirrors every accountant charge and settles each step's residual grid
  /// draw. Null without a recorder or with attribution off — the hot path
  /// pays one pointer check.
  obs::RegionAttributionSink* attrib_ = nullptr;
  obs::SchedExplain sched_explain_;  ///< reused per-step scratch when tracing
  /// Last traced deferral reason per queued job — the sched.decision dedup
  /// (TraceDetail::kChanges): a job's instant is re-emitted only when its
  /// reason changes; entries are dropped when the job starts.
  std::unordered_map<cluster::JobId, const char*> last_reason_;

  sim::Simulation sim_;
  bool step_scheduled_ = false;
#ifdef GREENHPC_CHECK_INVARIANTS
  std::size_t invariant_step_ = 0;  ///< steps since the last deep check
#endif
};

/// The standard experiment twin: SuperCloud-E1-scale cluster, Boston
/// weather, ISO-NE-like grid, Table I deadline-driven arrivals, scheduler of
/// your choice. This is the configuration every figure bench starts from.
[[nodiscard]] std::unique_ptr<Datacenter> make_reference_datacenter(
    std::unique_ptr<sched::Scheduler> scheduler, std::uint64_t seed = 42);

}  // namespace greenhpc::core
