#include "mechanism/queues.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"
#include "util/noise.hpp"

namespace greenhpc::mechanism {

using util::require;

QueueChoiceSimulator::QueueChoiceSimulator(std::vector<QueueSpec> queues,
                                           power::GpuPowerModel gpu_model, ChoiceModel choice)
    : queues_(std::move(queues)), gpu_model_(gpu_model), choice_(choice) {
  require(queues_.size() >= 2, "QueueChoiceSimulator: need at least two queues");
  double total_share = 0.0;
  for (const QueueSpec& q : queues_) {
    require(q.resource_share > 0.0, "QueueChoiceSimulator: queue shares must be positive");
    require(q.green_score >= 0.0 && q.green_score <= 1.0,
            "QueueChoiceSimulator: green score must be in [0,1]");
    total_share += q.resource_share;
  }
  require(std::abs(total_share - 1.0) < 1e-6,
          "QueueChoiceSimulator: resource shares must sum to 1");
  require(choice_.iterations >= 1, "QueueChoiceSimulator: need at least one iteration");
  require(choice_.damping > 0.0 && choice_.damping <= 1.0,
          "QueueChoiceSimulator: damping must be in (0,1]");
}

double QueueChoiceSimulator::queue_speed(const QueueSpec& q) const {
  return gpu_model_.throughput_factor(q.power_cap);
}

SelectionResult QueueChoiceSimulator::equilibrium(const workload::UserPopulation& population,
                                                  util::Rng& rng,
                                                  double honesty_override) const {
  require(population.size() > 0, "QueueChoiceSimulator: empty population");
  const std::size_t nq = queues_.size();
  const double inv_n = 1.0 / static_cast<double>(population.size());

  // Damped-logit dynamics: each user mixes over queues with softmax choice
  // probabilities; loads are the population-mean probabilities. Unlike hard
  // best response this converges smoothly for congestion games.
  std::vector<double> load(nq);
  for (std::size_t q = 0; q < nq; ++q) load[q] = queues_[q].resource_share;

  auto wait_of = [&](std::size_t q, const std::vector<double>& l) {
    // M/M/1-flavoured congestion: wait grows superlinearly as load
    // approaches the queue's capacity share.
    const double rho = std::min(0.96, l[q] / queues_[q].resource_share * 0.7);
    return rho / (1.0 - rho);
  };

  auto utility_of = [&](const workload::UserProfile& user, bool truthful, std::size_t q,
                        const std::vector<double>& l) {
    const double slowdown = 1.0 - queue_speed(queues_[q]);
    if (!truthful) {
      // Strategic users "mis-characterize their preferences and select
      // themselves into queues where resources are fastest, most plentiful,
      // or the most available" (Sec. II-C). They choose on static
      // attributes — speed and resource plenty — and ignore both the green
      // score and the congestion their choices create, which is what
      // produces the clogged/idle imbalance.
      return choice_.plenty_weight * queues_[q].resource_share -
             1.5 * choice_.slowdown_weight * slowdown;
    }
    const double wait = wait_of(q, l);
    return -choice_.wait_weight * (1.0 - user.patience) * wait -
           choice_.slowdown_weight * slowdown +
           choice_.green_weight * user.green_preference * queues_[q].green_score;
  };

  std::vector<bool> truthful(population.size());
  for (std::size_t u = 0; u < population.size(); ++u) {
    const double honesty =
        honesty_override >= 0.0 ? honesty_override : population.users()[u].honesty;
    // Stable per-user coin so the counterfactual comparisons are paired.
    truthful[u] = util::hash_uniform(0xC0FFEE, static_cast<std::int64_t>(u)) < honesty;
  }

  std::vector<double> probs(nq);
  std::vector<double> avg_load(nq, 0.0);
  int averaged_iters = 0;
  double mean_utility = 0.0;
  double mean_utility_avg = 0.0;
  for (int iter = 0; iter < choice_.iterations; ++iter) {
    std::vector<double> fresh(nq, 0.0);
    mean_utility = 0.0;
    for (std::size_t u = 0; u < population.size(); ++u) {
      const workload::UserProfile& user = population.users()[u];
      double max_u = -1e18;
      std::size_t best_q = 0;
      for (std::size_t q = 0; q < nq; ++q) {
        probs[q] = utility_of(user, truthful[u], q, load);
        if (probs[q] > max_u) {
          max_u = probs[q];
          best_q = q;
        }
      }
      if (!truthful[u]) {
        // Static-attribute choosers commit outright (no congestion hedging).
        fresh[best_q] += inv_n;
        mean_utility += max_u * inv_n;
        continue;
      }
      double z = 0.0;
      for (std::size_t q = 0; q < nq; ++q) {
        probs[q] = std::exp((probs[q] - max_u) / choice_.temperature);
        z += probs[q];
      }
      for (std::size_t q = 0; q < nq; ++q) {
        probs[q] /= z;
        fresh[q] += probs[q] * inv_n;
        mean_utility += probs[q] * utility_of(user, truthful[u], q, load) * inv_n;
      }
    }
    // Annealed damping stabilizes the best-response dynamics; the reported
    // equilibrium is the time average over the second half of the run
    // (fictitious-play averaging), which converges even when the raw
    // dynamics cycle around the fixed point.
    const double damping = choice_.damping * 20.0 / (20.0 + static_cast<double>(iter));
    for (std::size_t q = 0; q < nq; ++q) load[q] += damping * (fresh[q] - load[q]);
    if (iter >= choice_.iterations / 2) {
      for (std::size_t q = 0; q < nq; ++q) avg_load[q] += load[q];
      mean_utility_avg += mean_utility;
      ++averaged_iters;
    }
  }
  for (std::size_t q = 0; q < nq; ++q) load[q] = avg_load[q] / averaged_iters;
  mean_utility = mean_utility_avg / averaged_iters;
  (void)rng;  // reserved for stochastic tie-breaking extensions

  SelectionResult result;
  result.queues.reserve(nq);
  double max_util = 0.0, sum_util = 0.0, idle_cap = 0.0, energy = 0.0;
  double fastest_cap = -1.0;
  for (std::size_t q = 0; q < nq; ++q) {
    QueueOutcome out;
    out.spec = queues_[q];
    out.load_share = load[q];
    out.expected_wait = wait_of(q, load);
    out.utilization = load[q] / queues_[q].resource_share;
    result.queues.push_back(out);
    max_util = std::max(max_util, out.utilization);
    sum_util += out.utilization;
    if (out.utilization < 0.10) idle_cap += queues_[q].resource_share;
    energy += load[q] * gpu_model_.relative_energy_per_work(queues_[q].power_cap);
    if (queues_[q].power_cap.watts() > fastest_cap) {
      fastest_cap = queues_[q].power_cap.watts();
      result.fast_queue_utilization = out.utilization;
    }
  }
  result.clog_factor = max_util / (sum_util / static_cast<double>(nq));
  result.idle_capacity_share = idle_cap;
  const double total_load = std::accumulate(load.begin(), load.end(), 0.0);
  result.energy_per_work = total_load > 0.0 ? energy / total_load : 1.0;
  result.mean_utility = mean_utility;
  return result;
}

}  // namespace greenhpc::mechanism
