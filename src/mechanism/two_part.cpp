#include "mechanism/two_part.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace greenhpc::mechanism {

using util::require;

TwoPartMechanism::TwoPartMechanism(power::GpuPowerModel gpu_model, util::Power base_cap,
                                   std::vector<CapOption> menu, double headroom_fraction)
    : gpu_model_(gpu_model), base_cap_(base_cap), menu_(std::move(menu)),
      headroom_fraction_(headroom_fraction) {
  require(base_cap_ >= gpu_model_.spec().min_cap && base_cap_ <= gpu_model_.spec().tdp,
          "TwoPartMechanism: base cap outside settable range");
  require(headroom_fraction_ >= 0.0, "TwoPartMechanism: negative headroom");
  for (const CapOption& opt : menu_) {
    require(opt.cap < base_cap_, "TwoPartMechanism: menu caps must be stricter than base");
    require(opt.cap >= gpu_model_.spec().min_cap, "TwoPartMechanism: menu cap below settable min");
    require(opt.gpu_multiplier >= 1.0, "TwoPartMechanism: multipliers must be >= 1");
  }
}

std::vector<CapOption> TwoPartMechanism::default_menu(const power::GpuPowerModel& model,
                                                      util::Power base_cap) {
  std::vector<CapOption> menu;
  for (double fraction : {0.88, 0.80, 0.72}) {
    CapOption opt;
    opt.cap = std::max(model.spec().min_cap, base_cap * fraction);
    // Set the multiplier so accepting the deal is a mild speedup (+5%) over
    // the base cap: mult * throughput(cap) = 1.05 * throughput(base).
    opt.gpu_multiplier = 1.05 * model.throughput_factor(base_cap) /
                         model.throughput_factor(opt.cap);
    menu.push_back(opt);
  }
  return menu;
}

MechanismOutcome TwoPartMechanism::run(const workload::UserPopulation& population,
                                       util::Rng& rng) const {
  require(population.size() > 0, "TwoPartMechanism: empty population");
  MechanismOutcome out;
  out.deals.reserve(population.size());

  const double base_throughput = gpu_model_.throughput_factor(base_cap_);
  const double base_energy = gpu_model_.relative_energy_per_work(base_cap_);

  // Headroom pool in "GPU-demand units": each user's ask counts 1.
  double headroom = headroom_fraction_ * static_cast<double>(population.size());
  double headroom_spent = 0.0;

  double fleet_energy_base_weighted = 0.0;  // energy if everyone stayed on base
  double fleet_energy_actual = 0.0;
  double speed_total = 0.0;
  std::size_t participants = 0;

  // Arrival order is randomized: headroom is first-come-first-served.
  std::vector<std::size_t> order(population.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);

  for (std::size_t idx : order) {
    const workload::UserProfile& user = population.users()[idx];
    DealTaken deal;
    deal.user = user.id;

    double best_score = 0.0;  // score of staying on base = 0
    for (std::size_t k = 0; k < menu_.size(); ++k) {
      const CapOption& opt = menu_[k];
      const double extra_gpus = opt.gpu_multiplier - 1.0;
      if (headroom_spent + extra_gpus > headroom) continue;  // pool exhausted
      const double speedup =
          opt.gpu_multiplier * gpu_model_.throughput_factor(opt.cap) / base_throughput;
      const double energy_ratio = gpu_model_.relative_energy_per_work(opt.cap) / base_energy;
      // Users value speed linearly and greenness by their preference.
      const double score = (speedup - 1.0) + user.green_preference * (1.0 - energy_ratio);
      if (score > best_score) {
        best_score = score;
        deal.option = static_cast<int>(k);
        deal.speedup = speedup;
        deal.energy_ratio = energy_ratio;
      }
    }
    if (deal.option >= 0) {
      headroom_spent += menu_[static_cast<std::size_t>(deal.option)].gpu_multiplier - 1.0;
      ++participants;
    }
    fleet_energy_base_weighted += base_energy;
    fleet_energy_actual += base_energy * deal.energy_ratio;
    speed_total += deal.speedup;
    out.deals.push_back(deal);
  }

  out.participation_rate =
      static_cast<double>(participants) / static_cast<double>(population.size());
  out.mean_speedup = speed_total / static_cast<double>(population.size());
  out.energy_vs_base = fleet_energy_actual / fleet_energy_base_weighted;
  out.energy_vs_uncapped =
      fleet_energy_actual / static_cast<double>(population.size());  // uncapped e/w == 1
  out.headroom_used = headroom > 0.0 ? headroom_spent / headroom : 0.0;
  return out;
}

}  // namespace greenhpc::mechanism
