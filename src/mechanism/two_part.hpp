#pragma once
// The two-part mechanism (Sec. II-C).
//
// "One alternative to balance these two factors of too much choice and too
// little control is to maintain a two-part mechanism: a fixed component that
// guarantees a specified minimum amount of energy efficiency and a variable
// component that allows for user choice ... if a user accepts increasingly
// stringent power caps on his/her allocated GPUs, the user can then, in
// exchange, choose to have more GPUs allocated to his/her tasks."
//
// Fixed part: every GPU runs at `base_cap` (an optimal cap with negligible
// slowdown). Variable part: a menu of (stricter cap, GPU multiplier) deals.
// A deal is *incentive compatible* when gpu_multiplier x throughput(cap) >= 1
// (the user is no slower) and *system improving* when energy-per-work(cap) <
// energy-per-work(base) (strictly greener). Extra GPUs come from a bounded
// headroom pool, so participation is first-come-first-served.

#include <vector>

#include "power/gpu_power.hpp"
#include "util/rng.hpp"
#include "workload/users.hpp"

namespace greenhpc::mechanism {

struct CapOption {
  util::Power cap;
  double gpu_multiplier = 1.0;  ///< extra GPUs granted relative to the ask
};

struct DealTaken {
  cluster::UserId user = 0;
  int option = -1;       ///< -1 = stayed on the base cap
  double speedup = 1.0;  ///< wall-clock speed vs. base-cap baseline
  double energy_ratio = 1.0;  ///< energy-per-work vs. base cap (lower = greener)
};

struct MechanismOutcome {
  std::vector<DealTaken> deals;
  double participation_rate = 0.0;
  double mean_speedup = 1.0;
  /// Fleet energy-per-work vs. the base-cap-only counterfactual (< 1 means
  /// the variable component saved additional energy).
  double energy_vs_base = 1.0;
  /// Fleet energy-per-work vs. a completely uncapped fleet.
  double energy_vs_uncapped = 1.0;
  /// Fraction of the GPU headroom pool consumed.
  double headroom_used = 0.0;
};

class TwoPartMechanism {
 public:
  /// `headroom_fraction`: extra GPU capacity (relative to the population's
  /// aggregate demand) available to fund multipliers.
  TwoPartMechanism(power::GpuPowerModel gpu_model, util::Power base_cap,
                   std::vector<CapOption> menu, double headroom_fraction);

  /// Builds a default menu around a base cap: three increasingly stringent
  /// caps whose multipliers leave users slightly faster than baseline
  /// (incentive compatible by construction).
  [[nodiscard]] static std::vector<CapOption> default_menu(const power::GpuPowerModel& model,
                                                           util::Power base_cap);

  /// Runs the menu over a population; users accept the best deal for them
  /// (speed-dominant users need speedup >= 1, green users accept mild
  /// slowdowns scaled by their green preference).
  [[nodiscard]] MechanismOutcome run(const workload::UserPopulation& population,
                                     util::Rng& rng) const;

  [[nodiscard]] const std::vector<CapOption>& menu() const { return menu_; }
  [[nodiscard]] util::Power base_cap() const { return base_cap_; }

 private:
  power::GpuPowerModel gpu_model_;
  util::Power base_cap_;
  std::vector<CapOption> menu_;
  double headroom_fraction_;
};

}  // namespace greenhpc::mechanism
