#pragma once
// Queue segmentation and user self-selection (Sec. II-C).
//
// "One example is the design of queues for finer user and workload
// segmentation ... However, if queue selection and user intent conflict ...
// this mechanism runs the risk of adverse selection — users mis-characterize
// their preferences and select themselves into queues where resources are
// fastest, most plentiful, or the most available, leaving select queues
// clogged and overtaxed and others largely, if not entirely, idle."
//
// QueueChoiceSimulator computes the congestion equilibrium of that game:
// each queue has a resource share and a power cap (greener queues run
// capped); users choose queues to maximize utility; waits are endogenous to
// load. Honest users weigh their true green preference; strategic users
// chase speed only. The adverse-selection diagnostics (clog factor, idle
// share, realized energy) feed the ABL-MECH bench.

#include <string>
#include <vector>

#include "power/gpu_power.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"
#include "workload/users.hpp"

namespace greenhpc::mechanism {

struct QueueSpec {
  std::string name;
  /// GPUs in this queue run at this cap (greener queues cap harder).
  util::Power power_cap = util::watts(250.0);
  /// Fraction of cluster capacity assigned to the queue (shares sum to 1).
  double resource_share = 0.5;
  /// Advertised greenness in [0,1] (drives honest users' preference term).
  double green_score = 0.0;
};

struct QueueOutcome {
  QueueSpec spec;
  double load_share = 0.0;       ///< fraction of users who picked this queue
  double expected_wait = 0.0;    ///< congestion wait in arbitrary time units
  double utilization = 0.0;      ///< load / capacity (1 = balanced)
};

struct SelectionResult {
  std::vector<QueueOutcome> queues;
  /// max queue utilization / mean utilization; 1 = balanced, >>1 = clogged.
  double clog_factor = 1.0;
  /// Utilization of the fastest (highest-cap) queue — the one the paper says
  /// strategic users select into, "leaving select queues clogged".
  double fast_queue_utilization = 0.0;
  /// Fraction of cluster capacity in queues with load below 10% of their
  /// share ("others largely, if not entirely, idle").
  double idle_capacity_share = 0.0;
  /// Fleet energy per unit work relative to uncapped (weighted by realized
  /// queue loads) — lower is greener.
  double energy_per_work = 1.0;
  /// Mean realized (expected) user utility.
  double mean_utility = 0.0;
};

struct ChoiceModel {
  /// Weight of (negative) waiting time in utility (honest users account for
  /// congestion; strategic users do not — see `plenty_weight`).
  double wait_weight = 1.0;
  /// Weight of the green-score term for honest users.
  double green_weight = 0.8;
  /// Weight of execution slowdown (capped queues run slower).
  double slowdown_weight = 0.8;
  /// Strategic users choose by *static* attributes — "queues where resources
  /// are fastest, most plentiful, or the most available" — ignoring the
  /// congestion they create. This weights the resource-share attraction.
  double plenty_weight = 1.0;
  /// Damped-logit iterations toward the congestion equilibrium.
  int iterations = 120;
  /// Damping on load updates per iteration, in (0,1].
  double damping = 0.25;
  /// Logit choice temperature: lower = closer to hard best response.
  double temperature = 0.25;
};

class QueueChoiceSimulator {
 public:
  QueueChoiceSimulator(std::vector<QueueSpec> queues, power::GpuPowerModel gpu_model,
                       ChoiceModel choice = {});

  /// Runs the choice equilibrium for a population. `honesty_override` < 0
  /// uses each user's own honesty; otherwise forces that honesty level
  /// (e.g. 1.0 = everyone truthful) for counterfactuals.
  [[nodiscard]] SelectionResult equilibrium(const workload::UserPopulation& population,
                                            util::Rng& rng, double honesty_override = -1.0) const;

  [[nodiscard]] const std::vector<QueueSpec>& queues() const { return queues_; }

 private:
  [[nodiscard]] double queue_speed(const QueueSpec& q) const;

  std::vector<QueueSpec> queues_;
  power::GpuPowerModel gpu_model_;
  ChoiceModel choice_;
};

}  // namespace greenhpc::mechanism
