#pragma once
// Report cards: "consistent reporting" as a tool, not an exhortation.
//
// Sec. IV-B closes with: facilities "should also provide the central
// infrastructure, user interfaces, and analytical tools/instrumentation/
// logging to further encourage easy reporting and sharing of data,
// especially since not all users are equipped with the expertise to manually
// report relevant data." ReportCard renders per-job and per-cluster
// footprints with everyday-equivalents (the Strubell-style car comparison
// the paper cites) in markdown, ready to paste into a paper appendix.

#include <string>

#include "telemetry/accountant.hpp"

namespace greenhpc::telemetry {

/// Everyday equivalents for a carbon mass. Conversion factors: average US
/// passenger car 0.40 kgCO2/mile; car lifetime incl. fuel ~57,150 kgCO2
/// (the Strubell et al. benchmark the paper cites); one US household-day of
/// electricity ~ 29 kWh.
struct CarbonEquivalents {
  double car_miles = 0.0;
  double car_lifetimes = 0.0;
  double household_days_energy = 0.0;
};

[[nodiscard]] CarbonEquivalents equivalents(util::MassCo2 carbon, util::Energy energy);

class ReportCard {
 public:
  explicit ReportCard(const EnergyAccountant* accountant);

  /// Markdown report for one job (throws if the job has no footprint).
  [[nodiscard]] std::string job_report(cluster::JobId id) const;

  /// Markdown leaderboard of the heaviest users (Eq. 2's per-user view).
  [[nodiscard]] std::string user_leaderboard(std::size_t top_n = 10) const;

  /// Cluster-level roll-up with class breakdown and equivalents.
  [[nodiscard]] std::string cluster_summary() const;

  /// CSV of all job footprints (the shareable dataset Sec. IV-B asks for).
  [[nodiscard]] std::string jobs_csv() const;

 private:
  const EnergyAccountant* accountant_;
};

}  // namespace greenhpc::telemetry
