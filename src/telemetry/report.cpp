#include "telemetry/report.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/table.hpp"

namespace greenhpc::telemetry {

using util::fmt_fixed;
using util::require;

CarbonEquivalents equivalents(util::MassCo2 carbon, util::Energy energy) {
  CarbonEquivalents eq;
  eq.car_miles = carbon.kilograms() / 0.40;
  eq.car_lifetimes = carbon.kilograms() / 57150.0;
  eq.household_days_energy = energy.kilowatt_hours() / 29.0;
  return eq;
}

ReportCard::ReportCard(const EnergyAccountant* accountant) : accountant_(accountant) {
  require(accountant != nullptr, "ReportCard: null accountant");
}

std::string ReportCard::job_report(cluster::JobId id) const {
  const JobFootprint* fp = accountant_->job(id);
  require(fp != nullptr, "ReportCard::job_report: job has no recorded footprint");
  const CarbonEquivalents eq = equivalents(fp->carbon, fp->facility_energy);

  std::string md;
  md += "## Energy report — job " + std::to_string(fp->job) + "\n\n";
  md += "| metric | value |\n|---|---|\n";
  md += "| class | " + std::string(cluster::job_class_name(fp->job_class)) + " |\n";
  md += "| user | " + std::to_string(fp->user) + " |\n";
  md += "| GPU-hours | " + fmt_fixed(fp->gpu_hours, 1) + " |\n";
  md += "| IT energy (kWh) | " + fmt_fixed(fp->it_energy.kilowatt_hours(), 2) + " |\n";
  md += "| facility energy (kWh) | " + fmt_fixed(fp->facility_energy.kilowatt_hours(), 2) + " |\n";
  md += "| electricity cost ($) | " + fmt_fixed(fp->cost.dollars(), 2) + " |\n";
  md += "| CO2 (kg) | " + fmt_fixed(fp->carbon.kilograms(), 2) + " |\n";
  md += "| water (L) | " + fmt_fixed(fp->water.liters(), 1) + " |\n";
  md += "| ~ car miles | " + fmt_fixed(eq.car_miles, 1) + " |\n";
  md += "| ~ US-household days of electricity | " + fmt_fixed(eq.household_days_energy, 1) + " |\n";
  return md;
}

std::string ReportCard::user_leaderboard(std::size_t top_n) const {
  const std::vector<UserFootprint> users = accountant_->by_user();
  std::string md = "## Per-user footprint (Eq. 2 decomposition)\n\n";
  md += "| user | jobs | GPU-hours (a_i) | energy kWh (e_i) | CO2 kg | cost $ |\n";
  md += "|---|---|---|---|---|---|\n";
  const std::size_t n = std::min(top_n, users.size());
  for (std::size_t i = 0; i < n; ++i) {
    const UserFootprint& u = users[i];
    md += "| " + std::to_string(u.user) + " | " + std::to_string(u.jobs) + " | " +
          fmt_fixed(u.gpu_hours, 1) + " | " + fmt_fixed(u.facility_energy.kilowatt_hours(), 1) +
          " | " + fmt_fixed(u.carbon.kilograms(), 1) + " | " + fmt_fixed(u.cost.dollars(), 2) +
          " |\n";
  }
  return md;
}

std::string ReportCard::cluster_summary() const {
  const grid::EnergyLedger& t = accountant_->totals();
  const CarbonEquivalents eq = equivalents(t.carbon, t.energy);

  std::string md = "## Cluster footprint summary\n\n";
  md += "| metric | value |\n|---|---|\n";
  md += "| facility energy (MWh) | " + fmt_fixed(t.energy.megawatt_hours(), 2) + " |\n";
  md += "| electricity cost ($) | " + fmt_fixed(t.cost.dollars(), 0) + " |\n";
  md += "| CO2 (metric tons) | " + fmt_fixed(t.carbon.metric_tons(), 2) + " |\n";
  md += "| water (m^3) | " + fmt_fixed(t.water.cubic_meters(), 1) + " |\n";
  md += "| ~ car lifetimes (Strubell et al. benchmark) | " + fmt_fixed(eq.car_lifetimes, 3) +
        " |\n\n";

  md += "### By workload class\n\n| class | facility energy (kWh) |\n|---|---|\n";
  auto by_class = accountant_->by_class();
  std::vector<std::pair<cluster::JobClass, util::Energy>> rows(by_class.begin(), by_class.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [cls, energy] : rows) {
    md += "| " + std::string(cluster::job_class_name(cls)) + " | " +
          fmt_fixed(energy.kilowatt_hours(), 1) + " |\n";
  }
  return md;
}

std::string ReportCard::jobs_csv() const {
  util::Table table({"job", "user", "class", "gpu_hours", "it_kwh", "facility_kwh", "cost_usd",
                     "co2_kg", "water_l"});
  for (const JobFootprint& fp : accountant_->all_jobs()) {
    table.add(fp.job, fp.user, cluster::job_class_name(fp.job_class),
              util::fmt_fixed(fp.gpu_hours, 3), util::fmt_fixed(fp.it_energy.kilowatt_hours(), 4),
              util::fmt_fixed(fp.facility_energy.kilowatt_hours(), 4),
              util::fmt_fixed(fp.cost.dollars(), 4), util::fmt_fixed(fp.carbon.kilograms(), 4),
              util::fmt_fixed(fp.water.liters(), 2));
  }
  return table.to_csv();
}

}  // namespace greenhpc::telemetry
