#include "telemetry/fleet.hpp"

#include <algorithm>

namespace greenhpc::telemetry {

grid::EnergyLedger FleetRunSummary::footprint() const {
  grid::EnergyLedger all = total.grid_totals;
  all += transfer;
  return all;
}

#ifdef GREENHPC_CHECK_INVARIANTS
namespace {
// Fault-injection seam for the fleet.footprint_identity invariant test: when
// armed, aggregate_fleet skews the rolled-up transfer ledger away from the
// sum of the per-region ledgers — exactly the aggregation-drift bug class
// the check guards.
bool g_debug_skew_fleet_transfer = false;
}  // namespace

void debug_skew_fleet_transfer(bool on) { g_debug_skew_fleet_transfer = on; }
#endif

FleetRunSummary aggregate_fleet(std::vector<RegionRunSummary> regions,
                                MigrationStats migration) {
  FleetRunSummary fleet;
  fleet.migration = std::move(migration);
  for (const RegionRunSummary& r : regions) fleet.transfer += r.transfer;
#ifdef GREENHPC_CHECK_INVARIANTS
  if (g_debug_skew_fleet_transfer) fleet.transfer.energy += util::kilowatt_hours(1.0);
#endif

  core::RunSummary& t = fleet.total;
  double gpu_weight = 0.0, util_sum = 0.0;
  double energy_weight = 0.0, pue_sum = 0.0;
  double wait_weight = 0.0, wait_sum = 0.0;
  for (const RegionRunSummary& r : regions) {
    t.jobs_submitted += r.run.jobs_submitted;
    t.jobs_completed += r.run.jobs_completed;
    t.jobs_pending += r.run.jobs_pending;
    t.jobs_migrated += r.run.jobs_migrated;
    t.completed_gpu_hours += r.run.completed_gpu_hours;
    t.throttle_hours += r.run.throttle_hours;
    t.grid_totals += r.run.grid_totals;
    t.p95_queue_wait_hours = std::max(t.p95_queue_wait_hours, r.run.p95_queue_wait_hours);

    const auto gpus = static_cast<double>(r.total_gpus);
    gpu_weight += gpus;
    util_sum += gpus * r.run.mean_utilization;
    const double kwh = r.run.grid_totals.energy.kilowatt_hours();
    energy_weight += kwh;
    pue_sum += kwh * r.run.mean_pue;
    const auto completed = static_cast<double>(r.run.jobs_completed);
    wait_weight += completed;
    wait_sum += completed * r.run.mean_queue_wait_hours;
  }
  if (gpu_weight > 0.0) t.mean_utilization = util_sum / gpu_weight;
  if (energy_weight > 0.0) t.mean_pue = pue_sum / energy_weight;
  if (wait_weight > 0.0) t.mean_queue_wait_hours = wait_sum / wait_weight;

  fleet.regions = std::move(regions);
  return fleet;
}

util::Table fleet_region_table(const FleetRunSummary& summary) {
  util::Table table({"region", "gpus", "jobs_routed", "mig_in", "mig_out", "jobs_done",
                     "gpu_hours", "util_pct", "energy_mwh", "xfer_mwh", "cost_usd", "co2_t",
                     "wait_h"});
  for (const RegionRunSummary& r : summary.regions) {
    table.add(r.name, r.total_gpus, r.jobs_routed, r.jobs_migrated_in, r.jobs_migrated_out,
              r.run.jobs_completed, util::fmt_fixed(r.run.completed_gpu_hours, 0),
              util::fmt_fixed(100.0 * r.run.mean_utilization, 1),
              util::fmt_fixed(r.run.grid_totals.energy.megawatt_hours(), 2),
              util::fmt_fixed(r.transfer.energy.megawatt_hours(), 2),
              util::fmt_fixed(r.run.grid_totals.cost.dollars(), 0),
              util::fmt_fixed(r.run.grid_totals.carbon.metric_tons(), 2),
              util::fmt_fixed(r.run.mean_queue_wait_hours, 2));
  }
  return table;
}

util::Table fleet_total_table(const FleetRunSummary& summary) {
  const core::RunSummary& t = summary.total;
  const grid::EnergyLedger footprint = summary.footprint();
  util::Table table({"metric", "value"});
  table.add("jobs submitted", t.jobs_submitted);
  table.add("jobs completed", t.jobs_completed);
  table.add("jobs pending", t.jobs_pending);
  if (t.jobs_migrated > 0) {
    // Reconciles the count ledger: each migrated job is terminal at its
    // source and re-submitted at its destination, so submissions exceed
    // unique arrivals by exactly the delivered-checkpoint count.
    table.add("jobs migrated (re-submitted at dest)", t.jobs_migrated);
  }
  table.add("completed GPU-hours", util::fmt_fixed(t.completed_gpu_hours, 0));
  table.add("mean utilization %", util::fmt_fixed(100.0 * t.mean_utilization, 1));
  table.add("mean queue wait (h)", util::fmt_fixed(t.mean_queue_wait_hours, 2));
  table.add("mean PUE", util::fmt_fixed(t.mean_pue, 3));
  table.add("facility energy (MWh)", util::fmt_fixed(t.grid_totals.energy.megawatt_hours(), 2));
  table.add("transfer energy (MWh)", util::fmt_fixed(summary.transfer.energy.megawatt_hours(), 2));
  table.add("electricity cost ($)", util::fmt_fixed(footprint.cost.dollars(), 0));
  table.add("CO2 (t)", util::fmt_fixed(footprint.carbon.metric_tons(), 2));
  table.add("water (m^3)", util::fmt_fixed(footprint.water.cubic_meters(), 1));
  table.add("throttle hours", util::fmt_fixed(t.throttle_hours, 1));
  return table;
}

}  // namespace greenhpc::telemetry
