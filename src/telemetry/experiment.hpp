#pragma once
// Experiment-ensemble reporting: mean ± 95% CI tables, CSV, and JSON.
//
// The paper's Sec. IV-B ask — shareable, analysis-ready reporting — applied
// to the Monte-Carlo layer: a replica ensemble reduces every RunSummary
// metric to a distribution, and this module renders those distributions so a
// bench claim ("carbon_greedy cuts CO2 by X%") always ships with its
// uncertainty. experiment::Aggregator produces MetricStats; everything here
// only formats them, so benches with custom metrics can reuse the renderers.

#include <string>
#include <vector>

#include "util/table.hpp"

namespace greenhpc::telemetry {

/// One metric's cross-replica distribution.
struct MetricStats {
  std::string name;
  std::size_t replicas = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double ci95_half = 0.0;  ///< half-width of the 95% CI on the mean
  double min = 0.0;
  double max = 0.0;
  /// Per-replica values in seed order. When present in an exported JSON,
  /// `tools/run_diff` pairs replicas by position for a paired-difference CI
  /// (same seed ⇒ same workload ⇒ the pairing removes workload variance).
  /// Empty when the producer did not retain the raw series.
  std::vector<double> values;
};

/// "12.34 ± 0.56" (the ± column every CI-annotated table uses).
[[nodiscard]] std::string fmt_ci(double mean, double ci95_half, int precision = 2);

/// metric | n | mean | stddev | ci95_half | min | max.
[[nodiscard]] util::Table experiment_table(const std::vector<MetricStats>& metrics);

/// CSV with the experiment_table columns (one row per metric).
[[nodiscard]] std::string experiment_csv(const std::vector<MetricStats>& metrics);

/// JSON document: {"scenario": ..., "replicas": N, "metrics": [{...}]}.
/// `manifest_json`, when non-empty, must be a pre-rendered JSON object (an
/// obs::RunManifest::to_json() string) and is embedded as a leading
/// "manifest" key — telemetry stays layered below obs by taking text.
[[nodiscard]] std::string experiment_json(const std::string& scenario,
                                          const std::vector<MetricStats>& metrics,
                                          const std::string& manifest_json = {});

/// One sweep point: a scenario label plus its aggregated metrics.
struct SweepPointStats {
  std::string label;
  std::vector<MetricStats> metrics;
};

/// Comparison table across sweep points: one row per point, one "mean ± ci"
/// column per name in `metric_names` (names missing from a point render "-").
[[nodiscard]] util::Table sweep_table(const std::vector<SweepPointStats>& points,
                                      const std::vector<std::string>& metric_names);

/// Long-format CSV: point,metric,replicas,mean,stddev,ci95_half,min,max.
[[nodiscard]] std::string sweep_csv(const std::vector<SweepPointStats>& points);

/// JSON document: {"sweep": ..., "points": [{"label": ..., "metrics": [...]}]}.
[[nodiscard]] std::string sweep_json(const std::string& sweep_name,
                                     const std::vector<SweepPointStats>& points);

}  // namespace greenhpc::telemetry
