#pragma once
// Realized forecast-skill reporting.
//
// Predictive policies are only trustworthy while their forecasts track the
// actuals, so every surface that runs one should ship the realized skill
// next to the results: which model, how much history, how many past
// forecasts were scored, and the realized MAPE against the signal that
// actually arrived. forecast::RollingForecaster produces the SkillReport
// snapshots; this module only formats them, matching the experiment/fleet
// telemetry split.

#include <string>
#include <vector>

#include "forecast/rolling.hpp"
#include "util/table.hpp"

namespace greenhpc::telemetry {

/// signal | model | samples | scored | realized MAPE % | reliable.
[[nodiscard]] util::Table forecast_skill_table(const std::vector<forecast::SkillReport>& skills);

/// CSV with the forecast_skill_table columns (one row per signal).
[[nodiscard]] std::string forecast_skill_csv(const std::vector<forecast::SkillReport>& skills);

}  // namespace greenhpc::telemetry
