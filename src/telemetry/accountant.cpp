#include "telemetry/accountant.hpp"

#include <algorithm>
#include <tuple>

#include "util/error.hpp"
#include "util/invariants.hpp"

namespace greenhpc::telemetry {

using util::require;

void EnergyAccountant::charge(const cluster::Job& job, util::Energy it_energy, double pue,
                              util::EnergyPrice price, util::CarbonIntensity intensity,
                              double water_l, double gpu_hours) {
  require(it_energy.joules() >= 0.0, "EnergyAccountant: negative energy");
  require(pue >= 1.0, "EnergyAccountant: PUE must be >= 1");
  require(water_l >= 0.0, "EnergyAccountant: negative water");
  require(gpu_hours >= 0.0, "EnergyAccountant: negative gpu-hours");

  const cluster::JobId id = job.id();
  if (id >= slot_by_id_.size()) {
    slot_by_id_.resize(std::max<std::size_t>(id + 1, slot_by_id_.size() * 2), 0);
  }
  std::uint32_t slot = slot_by_id_[id];
  if (slot == 0) {
    footprints_.emplace_back();
    slot = static_cast<std::uint32_t>(footprints_.size());
    slot_by_id_[id] = slot;
    JobFootprint& fresh = footprints_.back();
    fresh.job = id;
    fresh.user = job.request().user;
    fresh.job_class = job.request().job_class;
    fresh.domain = job.request().domain;
  }
  JobFootprint& fp = footprints_[slot - 1];
  const util::Energy facility = it_energy * pue;
  fp.it_energy += it_energy;
  fp.facility_energy += facility;
  fp.cost += facility * price;
  fp.carbon += facility * intensity;
  fp.water += util::liters(water_l);
  fp.gpu_hours += gpu_hours;

  totals_.energy += facility;
  totals_.cost += facility * price;
  totals_.carbon += facility * intensity;
  totals_.water += util::liters(water_l);
}

const JobFootprint* EnergyAccountant::job(cluster::JobId id) const {
  if (id >= slot_by_id_.size()) return nullptr;
  const std::uint32_t slot = slot_by_id_[id];
  return slot == 0 ? nullptr : &footprints_[slot - 1];
}

std::vector<JobFootprint> EnergyAccountant::all_jobs() const {
  std::vector<JobFootprint> out;
  out.reserve(footprints_.size());
  for (const JobFootprint& fp : footprints_) out.push_back(fp);
  return out;
}

std::vector<UserFootprint> EnergyAccountant::by_user() const {
  std::unordered_map<cluster::UserId, UserFootprint> users;
  for (const JobFootprint& fp : footprints_) {
    UserFootprint& u = users[fp.user];
    u.user = fp.user;
    u.facility_energy += fp.facility_energy;
    u.cost += fp.cost;
    u.carbon += fp.carbon;
    u.gpu_hours += fp.gpu_hours;
    u.jobs += 1;
  }
  std::vector<UserFootprint> out;
  out.reserve(users.size());
  // Order-independent: the sort below totally orders the rows (user id breaks
  // energy ties), erasing the hash-map visit order.
  // det_lint: allow(unordered-iter)
  for (auto& [id, u] : users) out.push_back(u);
  std::sort(out.begin(), out.end(), [](const UserFootprint& a, const UserFootprint& b) {
    return std::tie(b.facility_energy, a.user) < std::tie(a.facility_energy, b.user);
  });
  return out;
}

std::unordered_map<cluster::JobClass, util::Energy> EnergyAccountant::by_class() const {
  std::unordered_map<cluster::JobClass, util::Energy> out;
  for (const JobFootprint& fp : footprints_) out[fp.job_class] += fp.facility_energy;
  return out;
}

std::unordered_map<cluster::DomainTag, util::Energy> EnergyAccountant::by_domain() const {
  std::unordered_map<cluster::DomainTag, util::Energy> out;
  for (const JobFootprint& fp : footprints_) out[fp.domain] += fp.facility_energy;
  return out;
}

#ifdef GREENHPC_CHECK_INVARIANTS
void EnergyAccountant::check_invariants() const {
  grid::EnergyLedger sum;
  for (const JobFootprint& fp : footprints_) {
    sum.energy += fp.facility_energy;
    sum.cost += fp.cost;
    sum.carbon += fp.carbon;
    sum.water += fp.water;
  }
  util::check_invariant_close(sum.energy.joules(), totals_.energy.joules(),
                              "accountant.ledger_identity", "facility energy (J)");
  util::check_invariant_close(sum.cost.dollars(), totals_.cost.dollars(),
                              "accountant.ledger_identity", "cost (USD)");
  util::check_invariant_close(sum.carbon.kilograms(), totals_.carbon.kilograms(),
                              "accountant.ledger_identity", "carbon (kg)");
  util::check_invariant_close(sum.water.liters(), totals_.water.liters(),
                              "accountant.ledger_identity", "water (L)");
  std::size_t mapped = 0;
  for (cluster::JobId id = 0; id < slot_by_id_.size(); ++id) {
    const std::uint32_t slot = slot_by_id_[id];
    if (slot == 0) continue;
    ++mapped;
    util::check_invariant(slot <= footprints_.size() && footprints_[slot - 1].job == id,
                          "accountant.slot_map",
                          "job " + std::to_string(id) + " maps to slot " +
                              std::to_string(slot) + " of " +
                              std::to_string(footprints_.size()));
  }
  util::check_invariant(mapped == footprints_.size(), "accountant.slot_map",
                        std::to_string(mapped) + " mapped ids vs " +
                            std::to_string(footprints_.size()) + " footprints");
}
#endif

}  // namespace greenhpc::telemetry
