#pragma once
// Energy accounting: the measurement-and-reporting substrate of Sec. IV-B.
//
// The paper's Eq. 2 decomposes datacenter totals into per-user energy e_i
// and activity a_i ("sum_i e_i = E, sum_i a_i = A"). The accountant maintains
// exactly that decomposition: every charged joule lands in a per-job record,
// rolls up to per-user and per-class ledgers, and the invariant
// sum(per-user) == cluster total is enforced by tests.

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "cluster/job.hpp"
#include "grid/connection.hpp"
#include "util/units.hpp"

namespace greenhpc::telemetry {

/// Footprint attributed to one job (facility-level: PUE applied).
struct JobFootprint {
  cluster::JobId job = 0;
  cluster::UserId user = 0;
  cluster::JobClass job_class = cluster::JobClass::kTraining;
  cluster::DomainTag domain = cluster::kNoDomain;
  util::Energy it_energy;
  util::Energy facility_energy;
  util::Money cost;
  util::MassCo2 carbon;
  util::WaterVolume water;
  double gpu_hours = 0.0;
};

/// Per-user roll-up (the e_i / a_i of Eq. 2).
struct UserFootprint {
  cluster::UserId user = 0;
  util::Energy facility_energy;
  util::Money cost;
  util::MassCo2 carbon;
  double gpu_hours = 0.0;  ///< the activity proxy a_i
  std::size_t jobs = 0;
};

class EnergyAccountant {
 public:
  /// Charges a slice of running time to a job: `it_energy` is the GPU/node
  /// energy over the slice; `pue` grosses it up to facility level; price and
  /// intensity are the instantaneous grid conditions; `water_l` is direct
  /// cooling water attributed to the slice.
  void charge(const cluster::Job& job, util::Energy it_energy, double pue,
              util::EnergyPrice price, util::CarbonIntensity intensity, double water_l,
              double gpu_hours);

  [[nodiscard]] const JobFootprint* job(cluster::JobId id) const;
  [[nodiscard]] std::vector<JobFootprint> all_jobs() const;
  [[nodiscard]] std::vector<UserFootprint> by_user() const;
  /// Facility energy by job class (training vs inference vs debug...).
  [[nodiscard]] std::unordered_map<cluster::JobClass, util::Energy> by_class() const;

  /// Facility energy by research domain tag — the paper's future-work
  /// "breakdown of activity and energy use by domain (e.g. NLP)".
  [[nodiscard]] std::unordered_map<cluster::DomainTag, util::Energy> by_domain() const;

  [[nodiscard]] const grid::EnergyLedger& totals() const { return totals_; }

#ifdef GREENHPC_CHECK_INVARIANTS
  // --- Debug invariant layer (compiled out of release builds) ---------------

  /// Deep checks, throwing util::InvariantViolation on failure:
  ///   accountant.ledger_identity  Eq. 2's identity: the incrementally
  ///                               maintained totals_ equal the sum over
  ///                               per-job footprints (energy/cost/carbon/
  ///                               water), within reordering rounding
  ///   accountant.slot_map         slot_by_id_ and footprints_ agree
  void check_invariants() const;

  /// Test seam: skews the incremental grand total so
  /// accountant.ledger_identity trips on the next check.
  void debug_corrupt_totals(util::Energy skew) { totals_.energy += skew; }
#endif

 private:
  // charge() runs once per running job per simulation step — the hottest
  // telemetry path in the simulator. JobIds are dense sequential (the
  // registry hands them out from 1), so a direct-indexed slot vector
  // replaces the hash lookup the old map needed on every charge: one bounds
  // check + one vector index. Footprints live in a deque (stable addresses,
  // insertion order = charge order, which keeps every roll-up deterministic).
  std::deque<JobFootprint> footprints_;
  /// JobId -> slot + 1 into footprints_ (0 = no footprint yet).
  std::vector<std::uint32_t> slot_by_id_;
  grid::EnergyLedger totals_;
};

}  // namespace greenhpc::telemetry
