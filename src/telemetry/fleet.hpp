#pragma once
// Fleet-level run summaries: Eq. 1's ledger, summed across regions.
//
// A fleet run produces one core::RunSummary per region plus a transfer
// ledger for the data moved off the home region by routing decisions. This
// module rolls those up into a single fleet view — totals are exact sums,
// rate-like metrics are weighted means (utilization by capacity, PUE by
// energy, queue wait by completions) — and renders the per-region and
// aggregate tables every fleet surface (bench, example, CLI) prints.

#include <string>
#include <vector>

#include "core/datacenter.hpp"
#include "telemetry/migration.hpp"
#include "util/table.hpp"

namespace greenhpc::telemetry {

/// One region's contribution to a fleet run.
struct RegionRunSummary {
  std::string name;
  int total_gpus = 0;           ///< capacity weight for utilization
  std::size_t jobs_routed = 0;  ///< jobs the router sent here
  std::size_t jobs_migrated_in = 0;   ///< checkpoints restored here
  std::size_t jobs_migrated_out = 0;  ///< checkpoints taken here
  /// Network/checkpoint energy burned *at this region*: admission transfers
  /// billed at the destination, plus migration snapshot (source) and
  /// ship+restore (destination) overheads. Attribution invariant: the fleet
  /// footprint equals the sum over regions of grid_totals + this ledger.
  grid::EnergyLedger transfer;
  core::RunSummary run;
};

struct FleetRunSummary {
  std::vector<RegionRunSummary> regions;
  /// Aggregate: counts/energies are sums; mean_utilization is GPU-weighted,
  /// mean_pue energy-weighted, queue waits completion-weighted, and
  /// p95_queue_wait_hours the max across regions (conservative).
  core::RunSummary total;
  /// Network-transfer + checkpoint penalty fleet-wide: the exact sum of the
  /// per-region transfer ledgers.
  grid::EnergyLedger transfer;
  /// Mid-run relocation ledger (policy "off" when migration is disabled).
  MigrationStats migration;
  /// Grid totals plus the transfer penalty — the fleet's full footprint.
  /// (migration.overhead is part of `transfer`; it is not added twice.)
  [[nodiscard]] grid::EnergyLedger footprint() const;
};

/// Rolls region summaries up into a fleet summary; the fleet transfer ledger
/// is the sum of the regions' ledgers, so per-region attribution and the
/// fleet footprint can never drift apart.
[[nodiscard]] FleetRunSummary aggregate_fleet(std::vector<RegionRunSummary> regions,
                                              MigrationStats migration = {});

#ifdef GREENHPC_CHECK_INVARIANTS
/// Test seam (invariants suite only): while armed, aggregate_fleet skews the
/// rolled-up transfer ledger away from the sum of the per-region ledgers, so
/// the coordinator's fleet.footprint_identity check must trip.
void debug_skew_fleet_transfer(bool on);
#endif

/// Per-region table: routed share, completions, energy, cost, carbon, wait.
[[nodiscard]] util::Table fleet_region_table(const FleetRunSummary& summary);

/// Two-column aggregate table mirroring the single-site CLI summary.
[[nodiscard]] util::Table fleet_total_table(const FleetRunSummary& summary);

}  // namespace greenhpc::telemetry
