#pragma once
// Migration ledger: what mid-run relocation did, what it cost, what it saved.
//
// Every migration the fleet executes is metered here: how many checkpoints
// moved, the GPU-hours of work they carried, the checkpoint/ship/restore
// overhead energy (billed into the per-region transfer ledgers, so it is
// already part of the fleet footprint — this struct keeps a copy for
// attribution, it is not added again), and the planner's predicted saving
// versus the stay-put counterfactual. The counterfactual is an estimate by
// construction (the stay-put world was never run); the seed-paired
// bench/fleet_migration comparison is the measured version of the same claim.

#include <string>

#include "grid/connection.hpp"
#include "util/table.hpp"

namespace greenhpc::telemetry {

struct MigrationStats {
  std::string policy = "off";   ///< migrate::migration_objective_name
  std::size_t started = 0;      ///< checkpoints taken (jobs preempted)
  std::size_t delivered = 0;    ///< checkpoints restored at their destination
  std::size_t in_flight = 0;    ///< still occupying the transfer pipe at run end
  double gpu_hours_moved = 0.0; ///< remaining work relocated, in GPU-hours
  /// Checkpoint + ship + restore overhead, priced/attributed at the regions
  /// that burned it. Already included in the fleet transfer ledgers.
  grid::EnergyLedger overhead;
  /// Planner-predicted saving vs. stay-put over the moved jobs' remaining
  /// runtimes, in the objective's unit (kg CO2 for carbon, $ for cost).
  double predicted_saving = 0.0;
  /// Link-fault recovery (all zero on fault-free runs): transfers that
  /// stalled or failed in flight, relaunches, and lineages whose retry
  /// budget ran out (abandoned in place, resumed at their source).
  std::size_t link_stalls = 0;
  std::size_t link_failures = 0;
  std::size_t retries = 0;
  std::size_t abandoned = 0;
};

/// Two-column ledger table for CLI/example surfaces.
[[nodiscard]] util::Table migration_table(const MigrationStats& stats);

}  // namespace greenhpc::telemetry
