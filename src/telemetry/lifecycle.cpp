#include "telemetry/lifecycle.hpp"

#include "util/error.hpp"
#include "util/table.hpp"

namespace greenhpc::telemetry {

using util::require;

const char* lifecycle_phase_name(LifecyclePhase p) {
  switch (p) {
    case LifecyclePhase::kDevelopment: return "development";
    case LifecyclePhase::kTraining: return "training";
    case LifecyclePhase::kServing: return "serving";
  }
  return "unknown";
}

ModelLifecycle::ModelLifecycle(std::string model_name) : name_(std::move(model_name)) {
  require(!name_.empty(), "ModelLifecycle: empty model name");
}

void ModelLifecycle::book(LifecyclePhase phase, util::Energy energy, util::Money cost,
                          util::MassCo2 carbon, double gpu_hours) {
  require(energy.joules() >= 0.0 && gpu_hours >= 0.0, "ModelLifecycle: negative usage");
  PhaseTotals& p = phases_[static_cast<std::size_t>(phase)];
  p.energy += energy;
  p.cost += cost;
  p.carbon += carbon;
  p.gpu_hours += gpu_hours;
}

const PhaseTotals& ModelLifecycle::phase(LifecyclePhase p) const {
  return phases_[static_cast<std::size_t>(p)];
}

PhaseTotals ModelLifecycle::total() const {
  PhaseTotals t;
  for (const PhaseTotals& p : phases_) {
    t.energy += p.energy;
    t.cost += p.cost;
    t.carbon += p.carbon;
    t.gpu_hours += p.gpu_hours;
  }
  return t;
}

std::array<double, kLifecyclePhases> ModelLifecycle::energy_shares() const {
  std::array<double, kLifecyclePhases> shares{};
  const double total_j = total().energy.joules();
  if (total_j <= 0.0) return shares;
  for (std::size_t i = 0; i < kLifecyclePhases; ++i)
    shares[i] = phases_[i].energy.joules() / total_j;
  return shares;
}

double ModelLifecycle::inference_share() const {
  return energy_shares()[static_cast<std::size_t>(LifecyclePhase::kServing)];
}

std::string ModelLifecycle::report() const {
  std::string md = "## Lifecycle footprint — " + name_ + "\n\n";
  md += "| phase | energy (kWh) | cost ($) | CO2 (kg) | GPU-hours | energy share % |\n";
  md += "|---|---|---|---|---|---|\n";
  const auto shares = energy_shares();
  for (std::size_t i = 0; i < kLifecyclePhases; ++i) {
    const PhaseTotals& p = phases_[i];
    md += "| " + std::string(lifecycle_phase_name(static_cast<LifecyclePhase>(i))) + " | " +
          util::fmt_fixed(p.energy.kilowatt_hours(), 1) + " | " +
          util::fmt_fixed(p.cost.dollars(), 2) + " | " +
          util::fmt_fixed(p.carbon.kilograms(), 1) + " | " +
          util::fmt_fixed(p.gpu_hours, 1) + " | " + util::fmt_fixed(100.0 * shares[i], 1) +
          " |\n";
  }
  const PhaseTotals t = total();
  md += "| **total** | " + util::fmt_fixed(t.energy.kilowatt_hours(), 1) + " | " +
        util::fmt_fixed(t.cost.dollars(), 2) + " | " + util::fmt_fixed(t.carbon.kilograms(), 1) +
        " | " + util::fmt_fixed(t.gpu_hours, 1) + " | 100.0 |\n";
  return md;
}

}  // namespace greenhpc::telemetry
