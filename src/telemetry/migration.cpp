#include "telemetry/migration.hpp"

namespace greenhpc::telemetry {

util::Table migration_table(const MigrationStats& stats) {
  util::Table table({"metric", "value"});
  table.add("migration policy", stats.policy);
  table.add("checkpoints taken", stats.started);
  table.add("checkpoints delivered", stats.delivered);
  table.add("in flight at run end", stats.in_flight);
  table.add("GPU-hours relocated", util::fmt_fixed(stats.gpu_hours_moved, 0));
  table.add("overhead energy (kWh)", util::fmt_fixed(stats.overhead.energy.kilowatt_hours(), 1));
  table.add("overhead cost ($)", util::fmt_fixed(stats.overhead.cost.dollars(), 2));
  table.add("overhead CO2 (kg)", util::fmt_fixed(stats.overhead.carbon.kilograms(), 1));
  table.add(stats.policy == "cost" ? "predicted saving ($, est)"
                                   : "predicted saving (kg CO2, est)",
            util::fmt_fixed(stats.predicted_saving, 1));
  if (stats.link_stalls + stats.link_failures + stats.retries + stats.abandoned > 0) {
    table.add("link stalls", stats.link_stalls);
    table.add("link failures", stats.link_failures);
    table.add("transfer retries", stats.retries);
    table.add("lineages abandoned", stats.abandoned);
  }
  return table;
}

}  // namespace greenhpc::telemetry
