#include "telemetry/experiment.hpp"

#include <sstream>

namespace greenhpc::telemetry {

namespace {

/// Minimal JSON string escaping (metric/scenario names are plain ASCII, but
/// quotes/backslashes must never corrupt the document).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string json_number(double v) {
  std::ostringstream os;
  os.precision(17);  // round-trip exact: exports feed regression comparisons
  os << v;
  return os.str();
}

void append_metric_json(std::ostringstream& os, const MetricStats& m) {
  os << "{\"name\":\"" << json_escape(m.name) << "\",\"replicas\":" << m.replicas
     << ",\"mean\":" << json_number(m.mean) << ",\"stddev\":" << json_number(m.stddev)
     << ",\"ci95_half\":" << json_number(m.ci95_half) << ",\"min\":" << json_number(m.min)
     << ",\"max\":" << json_number(m.max);
  if (!m.values.empty()) {
    os << ",\"values\":[";
    for (std::size_t i = 0; i < m.values.size(); ++i) {
      if (i > 0) os << ",";
      os << json_number(m.values[i]);
    }
    os << "]";
  }
  os << "}";
}

}  // namespace

std::string fmt_ci(double mean, double ci95_half, int precision) {
  return util::fmt_fixed(mean, precision) + " ± " + util::fmt_fixed(ci95_half, precision);
}

util::Table experiment_table(const std::vector<MetricStats>& metrics) {
  util::Table table({"metric", "n", "mean", "stddev", "ci95_half", "min", "max"});
  for (const MetricStats& m : metrics) {
    table.add(m.name, m.replicas, util::fmt_sci(m.mean, 4), util::fmt_sci(m.stddev, 3),
              util::fmt_sci(m.ci95_half, 3), util::fmt_sci(m.min, 4), util::fmt_sci(m.max, 4));
  }
  return table;
}

std::string experiment_csv(const std::vector<MetricStats>& metrics) {
  util::Table table({"metric", "replicas", "mean", "stddev", "ci95_half", "min", "max"});
  for (const MetricStats& m : metrics) {
    table.add(m.name, m.replicas, util::fmt_sci(m.mean, 17), util::fmt_sci(m.stddev, 17),
              util::fmt_sci(m.ci95_half, 17), util::fmt_sci(m.min, 17), util::fmt_sci(m.max, 17));
  }
  return table.to_csv();
}

std::string experiment_json(const std::string& scenario,
                            const std::vector<MetricStats>& metrics,
                            const std::string& manifest_json) {
  std::ostringstream os;
  os << "{";
  if (!manifest_json.empty()) os << "\"manifest\":" << manifest_json << ",";
  os << "\"scenario\":\"" << json_escape(scenario) << "\",\"replicas\":"
     << (metrics.empty() ? 0 : metrics.front().replicas) << ",\"metrics\":[";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    if (i > 0) os << ",";
    append_metric_json(os, metrics[i]);
  }
  os << "]}";
  return os.str();
}

util::Table sweep_table(const std::vector<SweepPointStats>& points,
                        const std::vector<std::string>& metric_names) {
  std::vector<std::string> headers = {"scenario", "n"};
  for (const std::string& name : metric_names) headers.push_back(name);
  util::Table table(std::move(headers));
  for (const SweepPointStats& point : points) {
    std::vector<std::string> row = {point.label,
                                    std::to_string(point.metrics.empty()
                                                       ? std::size_t{0}
                                                       : point.metrics.front().replicas)};
    for (const std::string& name : metric_names) {
      std::string cell = "-";
      for (const MetricStats& m : point.metrics) {
        if (m.name == name) {
          cell = fmt_ci(m.mean, m.ci95_half);
          break;
        }
      }
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  return table;
}

std::string sweep_csv(const std::vector<SweepPointStats>& points) {
  util::Table table({"scenario", "metric", "replicas", "mean", "stddev", "ci95_half", "min",
                     "max"});
  for (const SweepPointStats& point : points) {
    for (const MetricStats& m : point.metrics) {
      table.add(point.label, m.name, m.replicas, util::fmt_sci(m.mean, 17),
                util::fmt_sci(m.stddev, 17), util::fmt_sci(m.ci95_half, 17),
                util::fmt_sci(m.min, 17), util::fmt_sci(m.max, 17));
    }
  }
  return table.to_csv();
}

std::string sweep_json(const std::string& sweep_name, const std::vector<SweepPointStats>& points) {
  std::ostringstream os;
  os << "{\"sweep\":\"" << json_escape(sweep_name) << "\",\"points\":[";
  for (std::size_t p = 0; p < points.size(); ++p) {
    if (p > 0) os << ",";
    os << "{\"label\":\"" << json_escape(points[p].label) << "\",\"metrics\":[";
    for (std::size_t i = 0; i < points[p].metrics.size(); ++i) {
      if (i > 0) os << ",";
      append_metric_json(os, points[p].metrics[i]);
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

}  // namespace greenhpc::telemetry
