#pragma once
// Attribution report tables: the CLI-facing rendering of the flight
// recorder's carbon attribution ledger (obs::AttributionLedger).
//
// The ledger itself lives in obs/ so the hot path can feed it nullably; this
// module turns its report into the same util::Table surfaces the rest of the
// telemetry layer prints, so `greenhpc_sim --attrib` can show a per-user
// bill and a per-region decomposition next to the run summary tables.

#include "obs/attribution.hpp"
#include "util/table.hpp"

namespace greenhpc::telemetry {

/// user | jobs | gpu_hours | direct kWh/USD/kgCO2 | overhead kgCO2 |
/// amortized kgCO2 | total kgCO2 — the Eq. 2 per-user bill, now with the
/// infra overhead and idle/PUE amortization the accountant alone cannot see.
[[nodiscard]] util::Table attribution_user_table(const obs::AttributionReport& report);

/// region | direct/overhead/amortized/unattributed MWh and kgCO2 — where the
/// fleet's footprint actually landed, including what no job can be billed
/// for (idle base power with an empty cluster, battery arbitrage credits).
[[nodiscard]] util::Table attribution_region_table(const obs::AttributionReport& report);

}  // namespace greenhpc::telemetry
