#include "telemetry/attribution.hpp"

namespace greenhpc::telemetry {

util::Table attribution_user_table(const obs::AttributionReport& report) {
  util::Table table({"user", "jobs", "gpu_hours", "direct_kwh", "direct_usd", "direct_kgco2",
                     "overhead_kgco2", "amortized_kgco2", "total_kgco2"});
  for (const obs::AttributionUserRow& u : report.users) {
    const double total_kg = u.direct.carbon.kilograms() + u.overhead.carbon.kilograms() +
                            u.amortized.carbon.kilograms();
    table.add(u.user, u.jobs, util::fmt_fixed(u.gpu_hours, 1),
              util::fmt_fixed(u.direct.energy.kilowatt_hours(), 1),
              util::fmt_fixed(u.direct.cost.dollars(), 2),
              util::fmt_fixed(u.direct.carbon.kilograms(), 2),
              util::fmt_fixed(u.overhead.carbon.kilograms(), 3),
              util::fmt_fixed(u.amortized.carbon.kilograms(), 2),
              util::fmt_fixed(total_kg, 2));
  }
  return table;
}

util::Table attribution_region_table(const obs::AttributionReport& report) {
  util::Table table({"region", "direct_mwh", "overhead_mwh", "amortized_mwh",
                     "unattrib_mwh", "direct_kgco2", "overhead_kgco2", "amortized_kgco2",
                     "unattrib_kgco2"});
  for (const obs::AttributionRegionRow& r : report.regions) {
    table.add(r.region, util::fmt_fixed(r.direct.energy.megawatt_hours(), 2),
              util::fmt_fixed(r.overhead.energy.megawatt_hours(), 4),
              util::fmt_fixed(r.amortized.energy.megawatt_hours(), 2),
              util::fmt_fixed(r.unattributed.energy.megawatt_hours(), 2),
              util::fmt_fixed(r.direct.carbon.kilograms(), 1),
              util::fmt_fixed(r.overhead.carbon.kilograms(), 3),
              util::fmt_fixed(r.amortized.carbon.kilograms(), 1),
              util::fmt_fixed(r.unattributed.carbon.kilograms(), 1));
  }
  table.add("total", util::fmt_fixed(report.direct_total.energy.megawatt_hours(), 2),
            util::fmt_fixed(report.overhead_total.energy.megawatt_hours(), 4),
            util::fmt_fixed(report.amortized_total.energy.megawatt_hours(), 2),
            util::fmt_fixed(report.unattributed_total.energy.megawatt_hours(), 2),
            util::fmt_fixed(report.direct_total.carbon.kilograms(), 1),
            util::fmt_fixed(report.overhead_total.carbon.kilograms(), 3),
            util::fmt_fixed(report.amortized_total.carbon.kilograms(), 1),
            util::fmt_fixed(report.unattributed_total.carbon.kilograms(), 1));
  return table;
}

}  // namespace greenhpc::telemetry
