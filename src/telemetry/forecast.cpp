#include "telemetry/forecast.hpp"

namespace greenhpc::telemetry {

util::Table forecast_skill_table(const std::vector<forecast::SkillReport>& skills) {
  util::Table table({"signal", "model", "samples", "scored", "mape_pct", "reliable"});
  for (const forecast::SkillReport& s : skills) {
    table.add(s.signal, s.model, s.samples, s.scored, util::fmt_fixed(s.mape_pct, 2),
              s.reliable ? "yes" : "no");
  }
  return table;
}

std::string forecast_skill_csv(const std::vector<forecast::SkillReport>& skills) {
  return forecast_skill_table(skills).to_csv();
}

}  // namespace greenhpc::telemetry
