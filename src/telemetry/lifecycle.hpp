#pragma once
// Model lifecycle ledger (Sec. IV-B).
//
// "while many estimates have focused on training costs, even less clear are
// the costs arising through a model's entire life-cycle, which are
// particularly important in industry and applied settings. Even so, there
// exist even less data on the costs of inference."
//
// The ledger tracks one model across its phases — development (sweeps,
// ablations), final training, and serving — so the full-life split the
// paper asks for is a query, not an estimate. Phases accumulate energy from
// any source (accountant footprints, training-model roll-ups, inference
// fleet periods).

#include <array>
#include <string>

#include "util/units.hpp"

namespace greenhpc::telemetry {

enum class LifecyclePhase : std::uint8_t {
  kDevelopment = 0,  ///< prototypes, sweeps, ablations, failed runs
  kTraining,         ///< the final production training run(s)
  kServing,          ///< inference in production
};
inline constexpr std::size_t kLifecyclePhases = 3;

[[nodiscard]] const char* lifecycle_phase_name(LifecyclePhase p);

struct PhaseTotals {
  util::Energy energy;
  util::Money cost;
  util::MassCo2 carbon;
  double gpu_hours = 0.0;
};

class ModelLifecycle {
 public:
  explicit ModelLifecycle(std::string model_name);

  /// Books facility-level usage into a phase.
  void book(LifecyclePhase phase, util::Energy energy, util::Money cost, util::MassCo2 carbon,
            double gpu_hours);

  [[nodiscard]] const std::string& model_name() const { return name_; }
  [[nodiscard]] const PhaseTotals& phase(LifecyclePhase p) const;
  [[nodiscard]] PhaseTotals total() const;

  /// Fraction of lifecycle energy in each phase (sums to 1 when non-empty).
  [[nodiscard]] std::array<double, kLifecyclePhases> energy_shares() const;

  /// The headline Sec. IV-B number: serving's share of lifecycle energy.
  [[nodiscard]] double inference_share() const;

  /// Markdown summary table.
  [[nodiscard]] std::string report() const;

 private:
  std::string name_;
  std::array<PhaseTotals, kLifecyclePhases> phases_;
};

}  // namespace greenhpc::telemetry
