#pragma once
// Discrete-event simulation engine.
//
// The datacenter twin is driven by a classic event queue: job arrivals,
// starts, and completions are discrete events, while continuous quantities
// (power, price, temperature) are integrated by periodic sampling events
// (typically 15-minute steps). The engine is deliberately single-threaded
// and deterministic — parallelism in greenhpc lives one level up, across
// independent replica simulations (util::parallel_for).

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/calendar.hpp"
#include "util/units.hpp"

namespace greenhpc::sim {

class Simulation;

/// Identifies a scheduled event so it can be cancelled (e.g. a job's
/// completion event when the job is killed by a stress scenario).
using EventId = std::uint64_t;

using EventFn = std::function<void(Simulation&)>;

class Simulation {
 public:
  explicit Simulation(util::TimePoint start = util::TimePoint::from_seconds(0.0)) : now_(start) {}

  [[nodiscard]] util::TimePoint now() const { return now_; }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  /// Scheduled events that will still run (cancelled-but-unpopped ones are
  /// excluded). Invariant: cancelled_ only ever marks ids currently in the
  /// queue, so this difference cannot underflow.
  [[nodiscard]] std::size_t pending_events() const { return queue_.size() - cancelled_.size(); }

  /// Schedules `fn` at absolute time `at` (must not be in the past).
  EventId schedule_at(util::TimePoint at, EventFn fn);

  /// Schedules `fn` after a delay relative to now (delay must be >= 0).
  EventId schedule_in(util::Duration delay, EventFn fn);

  /// Schedules `fn` every `period`, starting at `first`, until the
  /// simulation stops or the callback calls `cancel` on the returned id.
  /// Each firing sees the same EventId, so one id cancels the whole train.
  EventId schedule_periodic(util::TimePoint first, util::Duration period, EventFn fn);

  /// Cancels a pending (or periodic) event. Cancelling an already-fired
  /// one-shot event is a harmless no-op.
  void cancel(EventId id);

  /// Runs events in time order until the queue empties or `end` is reached.
  /// Events at exactly `end` are NOT run (half-open interval); the clock is
  /// left at `end`.
  void run_until(util::TimePoint end);

  /// Runs until the event queue is empty.
  void run_all();

 private:
  struct QueuedEvent {
    util::TimePoint at;
    std::uint64_t seq;  ///< FIFO tiebreak for simultaneous events
    EventId id;
    EventFn fn;
    bool periodic = false;
    util::Duration period;
  };
  struct Later {
    bool operator()(const QueuedEvent& a, const QueuedEvent& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  util::TimePoint now_;
  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, Later> queue_;
  /// Ids of *queued* events marked for cancellation — strictly a subset of
  /// live_ at all times (a self-cancelling callback sets running_cancelled_
  /// instead). Entries are pruned the moment their event is popped, so the
  /// set cannot grow unboundedly over long runs and pending_events() cannot
  /// underflow, even when read from inside a callback.
  std::unordered_set<EventId> cancelled_;
  /// Ids currently in the queue (each id appears at most once: periodic
  /// events are re-pushed only after being popped). Lets cancel() ignore
  /// already-fired or bogus ids instead of leaking them into cancelled_.
  std::unordered_set<EventId> live_;
  EventId running_ = 0;         ///< id of the event whose callback is executing
  bool running_cancelled_ = false;  ///< the running event cancelled itself
  EventId next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace greenhpc::sim
