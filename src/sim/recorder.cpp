#include "sim/recorder.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace greenhpc::sim {

using util::require;

void TimeSeries::push(util::TimePoint t, double value) {
  require(times_.empty() || t >= times_.back(), "TimeSeries::push: non-monotonic time");
  times_.push_back(t);
  values_.push_back(value);
}

MonthlyAccumulator::Cell& MonthlyAccumulator::cell(util::MonthKey key) {
  const int idx = key.index_from_epoch();
  if (!any_) {
    base_index_ = idx;
    cells_.resize(1);
    any_ = true;
  }
  if (idx < base_index_) {
    cells_.insert(cells_.begin(), static_cast<std::size_t>(base_index_ - idx), Cell{});
    base_index_ = idx;
  } else if (idx - base_index_ >= static_cast<int>(cells_.size())) {
    cells_.resize(static_cast<std::size_t>(idx - base_index_) + 1);
  }
  return cells_[static_cast<std::size_t>(idx - base_index_)];
}

void MonthlyAccumulator::add_within_month(util::TimePoint t, util::Duration dt, double value) {
  Cell& c = cell(util::month_of(t));
  if (!c.touched) {
    c.min = value;
    c.max = value;
    c.touched = true;
  } else {
    c.min = std::min(c.min, value);
    c.max = std::max(c.max, value);
  }
  c.weighted_sum += value * dt.seconds();
  c.seconds += dt.seconds();
}

void MonthlyAccumulator::add_sample(util::TimePoint t, util::Duration dt, double value) {
  require(dt.seconds() >= 0.0, "MonthlyAccumulator::add_sample: negative duration");
  if (dt.seconds() == 0.0) return;
  // Split across month boundaries so monthly integrals are exact.
  util::TimePoint cursor = t;
  util::Duration remaining = dt;
  while (remaining.seconds() > 0.0) {
    const util::MonthSpan span = util::month_span(util::month_of(cursor));
    const util::Duration to_boundary = span.end - cursor;
    const util::Duration step = remaining < to_boundary ? remaining : to_boundary;
    add_within_month(cursor, step, value);
    cursor = cursor + step;
    remaining -= step;
    if (step.seconds() <= 0.0) break;  // defensive: should be unreachable
  }
}

void MonthlyAccumulator::add_event(util::TimePoint t, double weight) {
  Cell& c = cell(util::month_of(t));
  c.event_weight += weight;
}

std::vector<MonthlyStat> MonthlyAccumulator::monthly() const {
  std::vector<MonthlyStat> out;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const Cell& c = cells_[i];
    if (!c.touched && c.event_weight == 0.0) continue;
    MonthlyStat stat;
    stat.month = util::MonthKey::from_index(base_index_ + static_cast<int>(i));
    stat.time_weighted_mean = c.seconds > 0.0 ? c.weighted_sum / c.seconds : 0.0;
    stat.integral = c.weighted_sum;
    stat.min = c.min;
    stat.max = c.max;
    stat.samples = static_cast<std::size_t>(c.event_weight);
    out.push_back(stat);
  }
  return out;
}

std::optional<MonthlyStat> MonthlyAccumulator::month(util::MonthKey key) const {
  const int idx = key.index_from_epoch() - base_index_;
  if (!any_ || idx < 0 || idx >= static_cast<int>(cells_.size())) return std::nullopt;
  const Cell& c = cells_[static_cast<std::size_t>(idx)];
  if (!c.touched && c.event_weight == 0.0) return std::nullopt;
  MonthlyStat stat;
  stat.month = key;
  stat.time_weighted_mean = c.seconds > 0.0 ? c.weighted_sum / c.seconds : 0.0;
  stat.integral = c.weighted_sum;
  stat.min = c.min;
  stat.max = c.max;
  stat.samples = static_cast<std::size_t>(c.event_weight);
  return stat;
}

std::vector<double> MonthlyAccumulator::means() const {
  std::vector<double> out;
  for (const auto& m : monthly()) out.push_back(m.time_weighted_mean);
  return out;
}

std::vector<double> MonthlyAccumulator::integrals() const {
  std::vector<double> out;
  for (const auto& m : monthly()) out.push_back(m.integral);
  return out;
}

std::vector<util::MonthKey> MonthlyAccumulator::months() const {
  std::vector<util::MonthKey> out;
  for (const auto& m : monthly()) out.push_back(m.month);
  return out;
}

}  // namespace greenhpc::sim
