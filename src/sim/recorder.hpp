#pragma once
// Time-series recording and monthly aggregation.
//
// Every figure in the paper is a *monthly* series (average power, average
// price, deadline counts...). MonthlyAccumulator turns the simulator's
// sampled instantaneous values into time-weighted monthly means and sums,
// exactly mirroring how the SuperCloud telemetry in the paper was reduced.

#include <cstddef>
#include <optional>
#include <vector>

#include "util/calendar.hpp"
#include "util/units.hpp"

namespace greenhpc::sim {

/// Append-only (time, value) series.
class TimeSeries {
 public:
  void push(util::TimePoint t, double value);

  [[nodiscard]] std::size_t size() const { return times_.size(); }
  [[nodiscard]] bool empty() const { return times_.empty(); }
  [[nodiscard]] const std::vector<util::TimePoint>& times() const { return times_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  std::vector<util::TimePoint> times_;
  std::vector<double> values_;
};

/// One month's reduced statistics.
struct MonthlyStat {
  util::MonthKey month;
  double time_weighted_mean = 0.0;  ///< e.g. average kW over the month
  double integral = 0.0;            ///< value * seconds (e.g. joules if value is watts)
  double min = 0.0;
  double max = 0.0;
  std::size_t samples = 0;
};

/// Accumulates piecewise-constant samples into per-month statistics.
/// add_sample(t, dt, v) means "the value was v over [t, t+dt)". Samples that
/// straddle a month boundary are split exactly.
class MonthlyAccumulator {
 public:
  void add_sample(util::TimePoint t, util::Duration dt, double value);

  /// Adds an instantaneous count (e.g. a job submission) to its month.
  void add_event(util::TimePoint t, double weight = 1.0);

  /// All months seen, in chronological order.
  [[nodiscard]] std::vector<MonthlyStat> monthly() const;

  /// The stat for one month, if any samples landed there.
  [[nodiscard]] std::optional<MonthlyStat> month(util::MonthKey key) const;

  /// Convenience: the time-weighted means in chronological month order.
  [[nodiscard]] std::vector<double> means() const;

  /// Convenience: the integrals in chronological month order.
  [[nodiscard]] std::vector<double> integrals() const;

  /// Chronological month keys.
  [[nodiscard]] std::vector<util::MonthKey> months() const;

 private:
  struct Cell {
    double weighted_sum = 0.0;  ///< sum of value * dt_seconds
    double seconds = 0.0;
    double event_weight = 0.0;
    double min = 0.0;
    double max = 0.0;
    bool touched = false;
  };
  Cell& cell(util::MonthKey key);
  void add_within_month(util::TimePoint t, util::Duration dt, double value);

  // Dense storage keyed by MonthKey::index_from_epoch() - base_index_.
  std::vector<Cell> cells_;
  int base_index_ = 0;
  bool any_ = false;
};

}  // namespace greenhpc::sim
