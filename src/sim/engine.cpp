#include "sim/engine.hpp"

#include <limits>

#include "util/error.hpp"

namespace greenhpc::sim {

using util::require;

EventId Simulation::schedule_at(util::TimePoint at, EventFn fn) {
  require(at >= now_, "Simulation::schedule_at: cannot schedule in the past");
  require(static_cast<bool>(fn), "Simulation::schedule_at: null callback");
  const EventId id = next_id_++;
  queue_.push(QueuedEvent{at, next_seq_++, id, std::move(fn), false, util::seconds(0)});
  live_.insert(id);
  return id;
}

EventId Simulation::schedule_in(util::Duration delay, EventFn fn) {
  require(delay.seconds() >= 0.0, "Simulation::schedule_in: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulation::schedule_periodic(util::TimePoint first, util::Duration period, EventFn fn) {
  require(period.seconds() > 0.0, "Simulation::schedule_periodic: period must be positive");
  require(first >= now_, "Simulation::schedule_periodic: cannot schedule in the past");
  require(static_cast<bool>(fn), "Simulation::schedule_periodic: null callback");
  const EventId id = next_id_++;
  queue_.push(QueuedEvent{first, next_seq_++, id, std::move(fn), true, period});
  live_.insert(id);
  return id;
}

void Simulation::cancel(EventId id) {
  // Only mark ids that can still fire: queued events, or the event whose
  // callback is running right now (a periodic cancelling itself, tracked in
  // a flag so cancelled_ stays a subset of the queue). Cancelling an
  // already-fired one-shot — or a bogus id — stays a harmless no-op and no
  // longer leaks an entry into cancelled_ (which would both grow without
  // bound and make pending_events() underflow).
  if (live_.contains(id)) {
    cancelled_.insert(id);
  } else if (id == running_) {
    running_cancelled_ = true;
  }
}

void Simulation::run_until(util::TimePoint end) {
  while (!queue_.empty()) {
    const QueuedEvent& top = queue_.top();
    if (top.at >= end) break;

    QueuedEvent event = top;
    queue_.pop();
    live_.erase(event.id);
    if (cancelled_.erase(event.id) > 0) continue;  // cancelled while queued; marker pruned

    now_ = event.at;
    ++processed_;
    running_ = event.id;
    running_cancelled_ = false;
    event.fn(*this);
    running_ = 0;

    // Re-arm periodic events after running unless the callback cancelled
    // itself (a self-cancelled train simply never re-enters the queue).
    if (event.periodic && !running_cancelled_) {
      const EventId id = event.id;
      event.at = event.at + event.period;
      event.seq = next_seq_++;
      queue_.push(std::move(event));
      live_.insert(id);
    }
  }
  if (end > now_) now_ = end;
}

void Simulation::run_all() {
  run_until(util::TimePoint::from_seconds(std::numeric_limits<double>::infinity()));
}

}  // namespace greenhpc::sim
