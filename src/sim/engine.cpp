#include "sim/engine.hpp"

#include <limits>

#include "util/error.hpp"

namespace greenhpc::sim {

using util::require;

EventId Simulation::schedule_at(util::TimePoint at, EventFn fn) {
  require(at >= now_, "Simulation::schedule_at: cannot schedule in the past");
  require(static_cast<bool>(fn), "Simulation::schedule_at: null callback");
  const EventId id = next_id_++;
  queue_.push(QueuedEvent{at, next_seq_++, id, std::move(fn), false, util::seconds(0)});
  return id;
}

EventId Simulation::schedule_in(util::Duration delay, EventFn fn) {
  require(delay.seconds() >= 0.0, "Simulation::schedule_in: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulation::schedule_periodic(util::TimePoint first, util::Duration period, EventFn fn) {
  require(period.seconds() > 0.0, "Simulation::schedule_periodic: period must be positive");
  require(first >= now_, "Simulation::schedule_periodic: cannot schedule in the past");
  require(static_cast<bool>(fn), "Simulation::schedule_periodic: null callback");
  const EventId id = next_id_++;
  queue_.push(QueuedEvent{first, next_seq_++, id, std::move(fn), true, period});
  return id;
}

void Simulation::cancel(EventId id) { cancelled_.insert(id); }

void Simulation::run_until(util::TimePoint end) {
  while (!queue_.empty()) {
    const QueuedEvent& top = queue_.top();
    if (top.at >= end) break;

    QueuedEvent event = top;
    queue_.pop();
    if (cancelled_.contains(event.id)) {
      if (!event.periodic) cancelled_.erase(event.id);
      continue;
    }

    now_ = event.at;
    ++processed_;
    event.fn(*this);

    // Re-arm periodic events after running (so a callback can cancel itself).
    if (event.periodic && !cancelled_.contains(event.id)) {
      event.at = event.at + event.period;
      event.seq = next_seq_++;
      queue_.push(std::move(event));
    }
  }
  if (end > now_) now_ = end;
}

void Simulation::run_all() {
  run_until(util::TimePoint::from_seconds(std::numeric_limits<double>::infinity()));
}

}  // namespace greenhpc::sim
