#include "thermal/cooling.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace greenhpc::thermal {

using util::require;

CoolingModel::CoolingModel(CoolingConfig config) : config_(config) {
  require(config_.min_overhead >= 0.0, "CoolingModel: negative min overhead");
  require(config_.max_overhead >= config_.min_overhead,
          "CoolingModel: max overhead below min overhead");
  require(config_.saturation_celsius > config_.free_cooling_celsius,
          "CoolingModel: saturation temperature must exceed free-cooling temperature");
  require(config_.cooling_capacity.watts() > 0.0, "CoolingModel: capacity must be positive");
  require(config_.fixed_overhead >= 0.0, "CoolingModel: negative fixed overhead");
}

CoolingConfig CoolingModel::weatherized(const CoolingConfig& base, double level) {
  require(level >= 0.0 && level <= 1.0, "CoolingModel::weatherized: level must be in [0,1]");
  CoolingConfig up = base;
  // Investment buys a more efficient chiller plant, more capacity headroom,
  // and better containment/economizer reach.
  up.max_overhead = base.max_overhead - level * 0.18;
  up.cooling_capacity = base.cooling_capacity * (1.0 + 0.75 * level);
  up.saturation_celsius = base.saturation_celsius + 6.0 * level;
  up.free_cooling_celsius = base.free_cooling_celsius + 3.0 * level;
  up.water_slope_l_per_kwh_per_c = base.water_slope_l_per_kwh_per_c * (1.0 - 0.4 * level);
  return up;
}

double CoolingModel::overhead_fraction(util::Temperature outdoor) const {
  const double t = outdoor.celsius();
  if (t <= config_.free_cooling_celsius) return config_.min_overhead;
  const double span = config_.saturation_celsius - config_.free_cooling_celsius;
  const double x = std::min(1.0, (t - config_.free_cooling_celsius) / span);
  const double s = x * x * (3.0 - 2.0 * x);  // smoothstep: C1 at both ends
  return config_.min_overhead + (config_.max_overhead - config_.min_overhead) * s;
}

CoolingLoad CoolingModel::load(util::Power it_power, util::Temperature outdoor) const {
  require(it_power.watts() >= 0.0, "CoolingModel::load: negative IT power");
  CoolingLoad out;
  out.required = it_power * overhead_fraction(outdoor);
  out.delivered = std::min(out.required, config_.cooling_capacity);
  out.deficit = out.required - out.delivered;
  return out;
}

util::Power CoolingModel::facility_power(util::Power it_power, util::Temperature outdoor) const {
  const CoolingLoad cl = load(it_power, outdoor);
  return it_power + cl.delivered + it_power * config_.fixed_overhead;
}

double CoolingModel::pue(util::Power it_power, util::Temperature outdoor) const {
  require(it_power.watts() > 0.0, "CoolingModel::pue: IT power must be positive");
  return facility_power(it_power, outdoor) / it_power;
}

double CoolingModel::water_liters_per_hour(util::Power cooling_delivered,
                                           util::Temperature outdoor) const {
  require(cooling_delivered.watts() >= 0.0, "CoolingModel: negative cooling power");
  const double excess_c = std::max(0.0, outdoor.celsius() - config_.free_cooling_celsius);
  const double l_per_kwh = config_.base_water_l_per_kwh +
                           config_.water_slope_l_per_kwh_per_c * excess_c;
  return cooling_delivered.kilowatts() * l_per_kwh;  // kW * L/kWh = L/h
}

double CoolingModel::throttle_fraction(util::Power it_power, util::Temperature outdoor) const {
  const CoolingLoad cl = load(it_power, outdoor);
  if (!cl.saturated()) return 0.0;
  // Shed enough IT load that required cooling equals capacity.
  return std::min(1.0, cl.deficit / cl.required);
}

}  // namespace greenhpc::thermal
