#pragma once
// Outdoor weather model (Boston-like climate).
//
// Fig. 4 of the paper plots monthly average power against monthly average
// local temperature and finds a "near one-to-one relationship" — the cooling
// plant works harder in warm months. This model supplies the temperature
// signal: monthly climate normals for the Boston area, a diurnal cycle,
// smooth synoptic noise, and injectable heat waves for the Sec. II-B
// weatherization stress tests ("more extreme weather events and rising
// temperatures").

#include <cstdint>
#include <vector>

#include "util/calendar.hpp"
#include "util/noise.hpp"
#include "util/units.hpp"

namespace greenhpc::thermal {

/// A sustained temperature anomaly (stress-test scenario ingredient).
struct HeatWave {
  util::TimePoint start;
  util::Duration length = util::days(3);
  double delta_celsius = 8.0;  ///< uniform offset while active
};

struct WeatherConfig {
  /// Month-of-year (index 0 = January) mean temperature, deg C. Defaults are
  /// Boston 1991-2020 climate normals (approx).
  std::array<double, 12> normal_celsius = {-1.5, -0.5, 3.5, 9.5, 15.0, 20.5,
                                           23.5, 22.5, 18.5, 12.5, 7.0, 1.5};
  /// Half peak-to-trough diurnal swing, deg C (min near 05:00, max near 15:00).
  double diurnal_amplitude = 4.5;
  /// Synoptic (weather-front) noise amplitude, deg C, and knot period.
  double synoptic_amplitude = 4.0;
  util::Duration synoptic_period = util::hours(72);
  /// Constant climate offset, deg C — lets stress tests model warmed climates.
  double climate_offset = 0.0;
  std::uint64_t seed = 19930407;
};

class WeatherModel {
 public:
  explicit WeatherModel(WeatherConfig config = {});

  [[nodiscard]] util::Temperature temperature_at(util::TimePoint t) const;

  /// Monthly average temperature (hourly sampling) — the Fig. 4 x-axis.
  [[nodiscard]] util::Temperature monthly_average(util::MonthKey month) const;

  /// Registers a heat wave; overlapping waves stack.
  void add_heat_wave(const HeatWave& wave);
  [[nodiscard]] const std::vector<HeatWave>& heat_waves() const { return heat_waves_; }

  [[nodiscard]] const WeatherConfig& config() const { return config_; }

 private:
  [[nodiscard]] double seasonal_celsius(util::TimePoint t) const;
  [[nodiscard]] util::Temperature compute_temperature(util::TimePoint t) const;

  WeatherConfig config_;
  util::FractalNoise synoptic_;
  std::vector<HeatWave> heat_waves_;

  // Single-entry memo: the simulation queries the same local-time instant
  // several times per step (throttle, PUE, cooling water, signals). Pure
  // recompute avoidance — invalidated when a heat wave is added.
  mutable bool memo_valid_ = false;
  mutable util::TimePoint memo_t_;
  mutable util::Temperature memo_value_;
};

}  // namespace greenhpc::thermal
