#pragma once
// Datacenter cooling plant model.
//
// Turns IT load plus outdoor temperature into cooling power, PUE, and direct
// (evaporative) water use. The shape is what matters for Fig. 4: below the
// free-cooling threshold the economizer carries the load at a small fixed
// overhead; above it, mechanical chillers engage and their effective COP
// degrades with outdoor temperature, so cooling overhead rises smoothly from
// ~12% (winter) to ~55% (peak summer) of IT power. A finite cooling capacity
// produces the thermal-throttling signal the Sec. II-B stress tests probe,
// and a `weatherized` constructor models capital investment in the plant
// ("investments into infrastructure weatherization is critical").

#include "util/units.hpp"

namespace greenhpc::thermal {

struct CoolingConfig {
  /// Fan/pump overhead that is always present, as a fraction of IT power.
  double min_overhead = 0.12;
  /// Overhead fraction when outdoor temperature reaches `saturation_celsius`.
  double max_overhead = 0.62;
  /// Full free cooling at or below this outdoor temperature (deg C).
  double free_cooling_celsius = 5.0;
  /// Overhead saturates at this outdoor temperature (deg C).
  double saturation_celsius = 32.0;
  /// Most cooling the plant can deliver; beyond this the facility throttles.
  util::Power cooling_capacity = util::kilowatts(160.0);
  /// Evaporative water per kWh of *cooling* energy at the free-cooling point;
  /// grows linearly with outdoor temperature above it.
  double base_water_l_per_kwh = 0.4;
  double water_slope_l_per_kwh_per_c = 0.06;
  /// Non-cooling facility overhead (lighting, UPS losses, PDUs) as a
  /// fraction of IT power; enters PUE but not the cooling plant.
  double fixed_overhead = 0.06;
};

/// Cooling demand vs. delivery at one instant.
struct CoolingLoad {
  util::Power required;   ///< what full heat removal needs
  util::Power delivered;  ///< min(required, capacity)
  util::Power deficit;    ///< required - delivered (drives throttling)

  [[nodiscard]] bool saturated() const { return deficit.watts() > 0.0; }
};

class CoolingModel {
 public:
  explicit CoolingModel(CoolingConfig config = {});

  /// A config upgraded by capital investment `level` in [0, 1]:
  /// lower peak overhead, more capacity, wider free-cooling band. level=0 is
  /// the base config; level=1 is a fully weatherized plant.
  [[nodiscard]] static CoolingConfig weatherized(const CoolingConfig& base, double level);

  /// Cooling overhead fraction at the given outdoor temperature.
  [[nodiscard]] double overhead_fraction(util::Temperature outdoor) const;

  /// Cooling power demanded/delivered for an IT load at a temperature.
  [[nodiscard]] CoolingLoad load(util::Power it_power, util::Temperature outdoor) const;

  /// Total facility power: IT + delivered cooling + fixed overhead.
  [[nodiscard]] util::Power facility_power(util::Power it_power, util::Temperature outdoor) const;

  /// Power usage effectiveness at this operating point (>= 1).
  [[nodiscard]] double pue(util::Power it_power, util::Temperature outdoor) const;

  /// Direct evaporative water rate (liters/hour) for a cooling delivery.
  [[nodiscard]] double water_liters_per_hour(util::Power cooling_delivered,
                                             util::Temperature outdoor) const;

  /// Fraction of compute that must be shed so cooling fits capacity: 0 when
  /// unconstrained, approaching 1 under extreme deficit.
  [[nodiscard]] double throttle_fraction(util::Power it_power, util::Temperature outdoor) const;

  [[nodiscard]] const CoolingConfig& config() const { return config_; }

 private:
  CoolingConfig config_;
};

}  // namespace greenhpc::thermal
