#include "thermal/weather.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace greenhpc::thermal {

using util::require;

WeatherModel::WeatherModel(WeatherConfig config)
    : config_(config), synoptic_(config.seed, config.synoptic_period) {
  require(config_.diurnal_amplitude >= 0.0, "WeatherModel: negative diurnal amplitude");
  require(config_.synoptic_amplitude >= 0.0, "WeatherModel: negative synoptic amplitude");
}

double WeatherModel::seasonal_celsius(util::TimePoint t) const {
  // Interpolate between mid-month climate normals (same scheme as the fuel
  // mix model): piecewise linear in time, no month-boundary steps.
  const util::CivilDate d = util::civil_of(t);
  const util::MonthKey mk{d.year, d.month};
  const util::MonthSpan span = util::month_span(mk);
  const double mid = (span.start.seconds_since_epoch() + span.end.seconds_since_epoch()) / 2.0;
  const double pos = t.seconds_since_epoch();
  const auto normal = [&](int month_index_0based) {
    return config_.normal_celsius[static_cast<std::size_t>((month_index_0based % 12 + 12) % 12)];
  };
  const int m0 = d.month - 1;
  if (pos >= mid) {
    const util::MonthSpan nspan = util::month_span(mk.next());
    const double nmid = (nspan.start.seconds_since_epoch() + nspan.end.seconds_since_epoch()) / 2.0;
    const double frac = (pos - mid) / (nmid - mid);
    return normal(m0) * (1.0 - frac) + normal(m0 + 1) * frac;
  }
  const util::MonthKey prev = util::MonthKey::from_index(mk.index_from_epoch() - 1);
  const util::MonthSpan pspan = util::month_span(prev);
  const double pmid = (pspan.start.seconds_since_epoch() + pspan.end.seconds_since_epoch()) / 2.0;
  const double frac = (mid - pos) / (mid - pmid);
  return normal(m0) * (1.0 - frac) + normal(m0 - 1) * frac;
}

util::Temperature WeatherModel::temperature_at(util::TimePoint t) const {
  if (memo_valid_ && memo_t_.seconds_since_epoch() == t.seconds_since_epoch()) {
    return memo_value_;
  }
  const util::Temperature value = compute_temperature(t);
  memo_t_ = t;
  memo_value_ = value;
  memo_valid_ = true;
  return value;
}

util::Temperature WeatherModel::compute_temperature(util::TimePoint t) const {
  double celsius = seasonal_celsius(t) + config_.climate_offset;
  // Diurnal cycle: coldest ~05:00, warmest ~15:00.
  const double h = util::hour_of_day(t);
  celsius += config_.diurnal_amplitude * std::sin(2.0 * std::numbers::pi * (h - 10.0) / 24.0);
  celsius += config_.synoptic_amplitude * synoptic_.value(t);
  for (const HeatWave& wave : heat_waves_) {
    if (t >= wave.start && t < wave.start + wave.length) celsius += wave.delta_celsius;
  }
  return util::celsius(celsius);
}

util::Temperature WeatherModel::monthly_average(util::MonthKey month) const {
  const util::MonthSpan span = util::month_span(month);
  double total = 0.0;
  std::size_t samples = 0;
  for (util::TimePoint t = span.start; t < span.end; t += util::hours(1)) {
    total += temperature_at(t).celsius();
    ++samples;
  }
  return util::celsius(total / static_cast<double>(samples));
}

void WeatherModel::add_heat_wave(const HeatWave& wave) {
  require(wave.length.seconds() > 0.0, "WeatherModel: heat wave must have positive length");
  heat_waves_.push_back(wave);
  memo_valid_ = false;
}

}  // namespace greenhpc::thermal
