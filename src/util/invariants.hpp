#pragma once
// Debug invariant layer: deep accounting checks, compiled out of release.
//
// The repo's headline guarantee — parallel == serial bit-identity of every
// simulated quantity — is enforced end to end by digest tests, which tell
// you *that* a run diverged, not *where*. This layer puts the first-principles
// identities (ledger sums, counter == recount, index == queue agreement,
// prefix-sum == direct integral) inside the step loop itself, so a broken
// invariant fails at the violating step with a named check instead of at a
// downstream digest.
//
// Everything is gated on the GREENHPC_CHECK_INVARIANTS compile definition
// (CMake option of the same name): release builds compile the checks — and
// the redundant mirror state some of them need — out entirely. The sanitizer
// CI jobs build with the gate on, so every PR's fleet smokes run with deep
// checks armed.
//
// A violated check throws InvariantViolation (never aborts): the step-loop
// callers propagate it like any other error, and the invariants test suite
// corrupts each guarded identity through a debug seam and asserts the named
// check fires.

#include <cmath>
#include <stdexcept>
#include <string>

namespace greenhpc::util {

#ifdef GREENHPC_CHECK_INVARIANTS
inline constexpr bool kInvariantsEnabled = true;
#else
inline constexpr bool kInvariantsEnabled = false;
#endif

/// Step-loop hooks run their deep checks every Nth step: frequent enough to
/// land within a step or two of the corruption, cheap enough that debug
/// builds stay usable at fleet scale.
inline constexpr std::size_t kInvariantPeriod = 16;

/// A named invariant failed. `check()` is the stable machine-readable name
/// (e.g. "cluster.busy_recount"); what() carries the name plus detail.
class InvariantViolation : public std::logic_error {
 public:
  InvariantViolation(std::string check, const std::string& detail)
      : std::logic_error("invariant '" + check + "' violated: " + detail),
        check_(std::move(check)) {}

  [[nodiscard]] const std::string& check() const { return check_; }

 private:
  std::string check_;
};

/// Asserts an exact condition (integer identities, membership checks).
inline void check_invariant(bool ok, const char* check, const std::string& detail) {
  if (!ok) throw InvariantViolation(check, detail);
}

/// Asserts two floating-point accumulations agree. The redundant sums this
/// layer compares are accumulated in different orders (incremental mirror vs
/// recompute, per-region vs aggregate), so they differ by rounding — a real
/// accounting bug moves them by whole charges, far outside this band.
inline void check_invariant_close(double a, double b, const char* check,
                                  const std::string& detail) {
  const double tolerance = 1e-9 * std::max({1.0, std::fabs(a), std::fabs(b)});
  if (std::fabs(a - b) > tolerance) {
    throw InvariantViolation(check, detail + " (" + std::to_string(a) +
                                        " vs " + std::to_string(b) + ")");
  }
}

}  // namespace greenhpc::util
