#pragma once
// Precondition / invariant helpers used across greenhpc.
//
// Following the C++ Core Guidelines (I.5/I.6, E.12) we state contracts at the
// top of functions and fail loudly on violation. `require` guards caller
// errors (throws std::invalid_argument), `ensure` guards internal invariants
// (throws std::logic_error). Both are plain functions, not macros.

#include <stdexcept>
#include <string>

namespace greenhpc::util {

/// Throws std::invalid_argument with `what` when `condition` is false.
/// Use for caller-facing precondition checks.
inline void require(bool condition, const std::string& what) {
  if (!condition) throw std::invalid_argument(what);
}

/// Throws std::logic_error with `what` when `condition` is false.
/// Use for internal invariants that indicate a bug in greenhpc itself.
inline void ensure(bool condition, const std::string& what) {
  if (!condition) throw std::logic_error(what);
}

}  // namespace greenhpc::util
