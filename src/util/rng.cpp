#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace greenhpc::util {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "uniform_int: lo must be <= hi");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(engine_());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range + 1) % range;
  std::uint64_t draw = engine_();
  while (draw > limit) draw = engine_();
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller transform; u1 nudged away from 0 to keep log finite.
  double u1 = uniform01();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::lognormal(double mu, double sigma) {
  require(sigma >= 0.0, "lognormal: sigma must be non-negative");
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  require(rate > 0.0, "exponential: rate must be positive");
  double u = uniform01();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

std::int64_t Rng::poisson(double mean) {
  require(mean >= 0.0, "poisson: mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product-of-uniforms method.
    const double threshold = std::exp(-mean);
    std::int64_t count = -1;
    double product = 1.0;
    do {
      ++count;
      product *= uniform01();
    } while (product > threshold);
    return count;
  }
  // Normal approximation with continuity correction; adequate beyond mean 30.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::int64_t>(std::llround(draw));
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  require(!weights.empty(), "weighted_index: weights must be non-empty");
  double total = 0.0;
  for (double w : weights) {
    require(w >= 0.0, "weighted_index: weights must be non-negative");
    total += w;
  }
  require(total > 0.0, "weighted_index: total weight must be positive");
  double target = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: fall back to last index
}

}  // namespace greenhpc::util
