#pragma once
// Deterministic random number generation.
//
// Standard-library distributions are not reproducible across standard library
// implementations, and reproducibility is a theme of the paper (Sec. IV-A:
// "problems with reproducibility ... waste resources and energy"). greenhpc
// therefore ships its own engine (xoshiro256++) and portable distribution
// implementations so every experiment is bit-identical for a given seed on
// any platform.

#include <cstdint>
#include <span>
#include <vector>

namespace greenhpc::util {

/// SplitMix64: used to expand a single 64-bit seed into engine state.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ engine (Blackman & Vigna). Satisfies
/// std::uniform_random_bit_generator.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Xoshiro256pp(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Equivalent to 2^128 calls of operator(); used to derive independent
  /// parallel streams for thread-pool ensembles.
  constexpr void jump() {
    constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                       0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t jump : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (jump & (std::uint64_t{1} << b)) {
          s0 ^= state_[0];
          s1 ^= state_[1];
          s2 ^= state_[2];
          s3 ^= state_[3];
        }
        (*this)();
      }
    }
    state_[0] = s0;
    state_[1] = s1;
    state_[2] = s2;
    state_[3] = s3;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4] = {};
};

/// Convenience facade bundling the engine with portable distributions.
/// All sampling greenhpc does goes through this type.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  /// A new generator whose stream is independent of this one (xoshiro jump).
  /// Use to hand one Rng per worker in parallel ensembles.
  [[nodiscard]] Rng split() {
    Rng child = *this;
    child.engine_.jump();
    engine_();  // perturb the parent so repeated splits differ
    return child;
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    // 53 random mantissa bits -> uniform double, portable across platforms.
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) { return uniform01() < p; }

  /// Standard normal via Box-Muller (cached pair for efficiency).
  double normal() ;
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Lognormal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Poisson counts; exact (Knuth) for small means, normal approximation
  /// with rounding for large means (error negligible at mean > 30).
  std::int64_t poisson(double mean);

  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  std::size_t weighted_index(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  [[nodiscard]] Xoshiro256pp& engine() { return engine_; }

 private:
  Xoshiro256pp engine_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace greenhpc::util
