#include "util/calendar.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace greenhpc::util {

CivilDate civil_of(TimePoint t) {
  const auto day = static_cast<std::int64_t>(std::floor(t.seconds_since_epoch() / 86400.0));
  return civil_from_days(day + days_from_civil(2020, 1, 1));
}

MonthKey month_of(TimePoint t) {
  const CivilDate d = civil_of(t);
  return MonthKey{d.year, d.month};
}

double hour_of_day(TimePoint t) {
  const double day_frac = t.seconds_since_epoch() / 86400.0 - std::floor(t.seconds_since_epoch() / 86400.0);
  return day_frac * 24.0;
}

double year_fraction(TimePoint t) {
  const CivilDate d = civil_of(t);
  const TimePoint year_start = to_timepoint(CivilDate{d.year, 1, 1});
  const TimePoint year_end = to_timepoint(CivilDate{d.year + 1, 1, 1});
  return (t - year_start).seconds() / (year_end - year_start).seconds();
}

int day_of_week(TimePoint t) {
  const auto day = static_cast<std::int64_t>(std::floor(t.seconds_since_epoch() / 86400.0));
  // 2020-01-01 was a Wednesday (index 2 with Monday = 0).
  std::int64_t dow = (day + 2) % 7;
  if (dow < 0) dow += 7;
  return static_cast<int>(dow);
}

MonthSpan month_span(MonthKey key) {
  const MonthKey next = key.next();
  return MonthSpan{to_timepoint(CivilDate{key.year, key.month, 1}),
                   to_timepoint(CivilDate{next.year, next.month, 1})};
}

const char* month_name(int month) {
  static constexpr std::array<const char*, 12> kNames = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                                         "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
  return kNames.at(static_cast<std::size_t>(month - 1));
}

std::string MonthKey::label() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04d-%02d", year, month);
  return buf;
}

std::string to_string(const CivilDate& d) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d", d.year, d.month, d.day);
  return buf;
}

}  // namespace greenhpc::util
