#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/error.hpp"

namespace greenhpc::util {

std::string fmt_fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt_sci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, value);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  require(!headers_.empty(), "Table: must have at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(), "Table::add_row: arity mismatch with headers");
  rows_.push_back(std::move(cells));
}

namespace {

/// Display columns of a UTF-8 cell: count non-continuation bytes, so
/// multibyte glyphs like the CI tables' "±" pad correctly.
std::size_t display_width(const std::string& s) {
  std::size_t width = 0;
  for (unsigned char c : s) {
    if ((c & 0xC0) != 0x80) ++width;
  }
  return width;
}

}  // namespace

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = display_width(headers_[c]);
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], display_width(row[c]));

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c];
      for (std::size_t pad = display_width(row[c]); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += ',';
    out += escape(headers_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += escape(row[c]);
    }
    out += '\n';
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  table.print(os);
  return os;
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ";
  const std::size_t used = title.size() + 5;
  os << std::string(used < 78 ? 78 - used : 3, '=') << "\n\n";
}

}  // namespace greenhpc::util
