#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace greenhpc::util {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) thread_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const std::scoped_lock lock(mutex_);
    ensure(!stopping_, "ThreadPool::submit called during shutdown");
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

namespace {
thread_local ThreadPool* t_current_pool = nullptr;
}  // namespace

ThreadPool* ThreadPool::current() { return t_current_pool; }

void ThreadPool::worker_loop() {
  t_current_pool = this;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

void parallel_for(ThreadPool& pool, std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t chunk_count = std::min(count, pool.thread_count() * 4);
  const std::size_t chunk_size = (count + chunk_count - 1) / chunk_count;

  std::vector<std::future<void>> futures;
  futures.reserve(chunk_count);
  for (std::size_t chunk = 0; chunk < chunk_count; ++chunk) {
    const std::size_t begin = chunk * chunk_size;
    const std::size_t end = std::min(count, begin + chunk_size);
    if (begin >= end) break;
    futures.push_back(pool.submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  // Wait for EVERY chunk before propagating: rethrowing on the first failed
  // future would unwind while later chunks still hold references to `fn`
  // (and to whatever the caller's lambda captured) — a use-after-free.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  parallel_for(shared_pool(), count, fn);
}

ThreadPool& shared_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace greenhpc::util
