#pragma once
// Civil-calendar support for the simulation timeline.
//
// All greenhpc experiments live on a real calendar because the paper's
// evidence is calendar-shaped: monthly power (Figs. 2-5), month-of-year fuel
// mixes, and conference deadlines on specific dates. The simulation epoch is
// 2020-01-01 00:00 local, matching the start of the paper's observation
// window (Jan 2020 - Dec 2021). Conversions use Howard Hinnant's proleptic
// Gregorian algorithms, so leap years (2020 is one) are handled exactly.

#include <cstdint>
#include <string>

#include "util/units.hpp"

namespace greenhpc::util {

/// A proleptic Gregorian calendar date.
struct CivilDate {
  int year = 2020;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31

  friend constexpr auto operator<=>(const CivilDate&, const CivilDate&) = default;
};

/// An instant on the simulation timeline, stored as seconds since the
/// simulation epoch (2020-01-01 00:00). Distinct from Duration so that
/// instants and spans cannot be mixed up (TimePoint - TimePoint = Duration).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint from_seconds(double s) { return TimePoint{s}; }
  [[nodiscard]] constexpr double seconds_since_epoch() const { return seconds_; }
  [[nodiscard]] constexpr double hours_since_epoch() const { return seconds_ / 3600.0; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) { return TimePoint{t.seconds_ + d.seconds()}; }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) { return TimePoint{t.seconds_ - d.seconds()}; }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) { return seconds(a.seconds_ - b.seconds_); }
  constexpr TimePoint& operator+=(Duration d) { seconds_ += d.seconds(); return *this; }
  friend constexpr auto operator<=>(TimePoint a, TimePoint b) = default;

 private:
  constexpr explicit TimePoint(double s) : seconds_(s) {}
  double seconds_ = 0.0;
};

/// Identifies one calendar month; supports linear indexing so monthly series
/// can be stored in flat vectors (index 0 == January 2020 by convention).
struct MonthKey {
  int year = 2020;
  int month = 1;  ///< 1..12

  /// Months elapsed since January 2020 (may be negative before the epoch).
  [[nodiscard]] constexpr int index_from_epoch() const { return (year - 2020) * 12 + (month - 1); }
  [[nodiscard]] static constexpr MonthKey from_index(int idx) {
    // Floor-divide so negative indices land in the right year.
    int y = 2020 + (idx >= 0 ? idx / 12 : (idx - 11) / 12);
    int m = idx - (y - 2020) * 12 + 1;
    return MonthKey{y, m};
  }
  [[nodiscard]] MonthKey next() const { return from_index(index_from_epoch() + 1); }
  [[nodiscard]] std::string label() const;  ///< e.g. "2020-07"

  friend constexpr auto operator<=>(const MonthKey&, const MonthKey&) = default;
};

/// True for Gregorian leap years.
[[nodiscard]] constexpr bool is_leap_year(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

/// Number of days in the given month (28..31).
[[nodiscard]] constexpr int days_in_month(int year, int month) {
  constexpr int kDays[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && is_leap_year(year)) return 29;
  return kDays[month - 1];
}

/// Days since 1970-01-01 for a civil date (Hinnant's days_from_civil).
[[nodiscard]] constexpr std::int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

/// Inverse of days_from_civil.
[[nodiscard]] constexpr CivilDate civil_from_days(std::int64_t z) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp < 10 ? mp + 3 : mp - 9;
  return CivilDate{static_cast<int>(y + (m <= 2)), static_cast<int>(m), static_cast<int>(d)};
}

/// Days since the simulation epoch (2020-01-01) for a civil date.
[[nodiscard]] constexpr std::int64_t days_from_sim_epoch(const CivilDate& d) {
  return days_from_civil(d.year, d.month, d.day) - days_from_civil(2020, 1, 1);
}

/// The instant at `hour_of_day` (fractional hours allowed) on date `d`.
[[nodiscard]] constexpr TimePoint to_timepoint(const CivilDate& d, double hour_of_day = 0.0) {
  return TimePoint::from_seconds(static_cast<double>(days_from_sim_epoch(d)) * 86400.0 + hour_of_day * 3600.0);
}

/// The civil date containing `t`.
[[nodiscard]] CivilDate civil_of(TimePoint t);

/// The calendar month containing `t`.
[[nodiscard]] MonthKey month_of(TimePoint t);

/// Hour of day in [0, 24).
[[nodiscard]] double hour_of_day(TimePoint t);

/// Fraction of the year elapsed at `t`, in [0, 1). Useful for seasonal curves.
[[nodiscard]] double year_fraction(TimePoint t);

/// Day of week, 0 = Monday .. 6 = Sunday (2020-01-01 was a Wednesday).
[[nodiscard]] int day_of_week(TimePoint t);

/// Half-open interval [start, end) covering a calendar month.
struct MonthSpan {
  TimePoint start;
  TimePoint end;
  [[nodiscard]] Duration length() const { return end - start; }
};

[[nodiscard]] MonthSpan month_span(MonthKey key);

/// Short month name, "Jan".."Dec".
[[nodiscard]] const char* month_name(int month);

/// "YYYY-MM-DD" formatting.
[[nodiscard]] std::string to_string(const CivilDate& d);

}  // namespace greenhpc::util
