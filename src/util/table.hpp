#pragma once
// Plain-text / CSV table rendering for bench harnesses and reports.
//
// Every figure and table reproduction prints its series through this type so
// output formatting is uniform: aligned columns on stdout for humans, CSV for
// downstream plotting. (Sec. IV-B of the paper argues facilities should ship
// "user interfaces and analytical tools ... to further encourage easy
// reporting and sharing of data" — this is that tooling for our library.)

#include <concepts>
#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace greenhpc::util {

/// Fixed-precision formatting helper ("12.35" style).
[[nodiscard]] std::string fmt_fixed(double value, int precision = 2);

/// Significant-digit scientific-ish formatting for wide-range values.
[[nodiscard]] std::string fmt_sci(double value, int precision = 3);

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with fmt_fixed, passes strings through.
  template <typename... Cells>
  void add(const Cells&... cells) {
    add_row({cell_to_string(cells)...});
  }

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const { return headers_.size(); }

  /// Renders an aligned ASCII table.
  void print(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  [[nodiscard]] std::string to_csv() const;

 private:
  static std::string cell_to_string(const std::string& s) { return s; }
  static std::string cell_to_string(const char* s) { return s; }
  static std::string cell_to_string(double v) { return fmt_fixed(v); }
  template <std::integral T>
  static std::string cell_to_string(T v) {
    return std::to_string(v);
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& table);

/// Prints a section banner used by the bench harnesses:
///   === title ===================
void print_banner(std::ostream& os, const std::string& title);

}  // namespace greenhpc::util
