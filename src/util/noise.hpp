#pragma once
// Deterministic, random-access smooth noise.
//
// The synthetic telemetry models (wind output, prices, weather) need noise
// that is (a) reproducible for a seed, (b) smooth in time (weather is
// autocorrelated), and (c) random-access — a component may ask for the value
// at any instant without replaying history. Classic AR(1) state fails (c),
// so we use value noise: hash-derived uniforms at regular knots, cubic
// Hermite interpolation between them. Pure function of (seed, t).

#include <cstdint>

#include "util/calendar.hpp"
#include "util/rng.hpp"

namespace greenhpc::util {

/// Uniform double in [0,1) derived by hashing (seed, knot index).
[[nodiscard]] inline double hash_uniform(std::uint64_t seed, std::int64_t knot) {
  SplitMix64 sm(seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(knot + 0x7FFFFFFF)));
  sm.next();  // decorrelate low-entropy seeds
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

/// Smooth noise in [-1, 1] with knots every `period`; C1-continuous.
class SmoothNoise {
 public:
  SmoothNoise(std::uint64_t seed, Duration period) : seed_(seed), period_s_(period.seconds()) {}

  [[nodiscard]] double value(TimePoint t) const {
    const double pos = t.seconds_since_epoch() / period_s_;
    const double floor_pos = std::floor(pos);
    const auto k = static_cast<std::int64_t>(floor_pos);
    const double frac = pos - floor_pos;
    // Knot values in [-1, 1].
    const double v0 = 2.0 * hash_uniform(seed_, k) - 1.0;
    const double v1 = 2.0 * hash_uniform(seed_, k + 1) - 1.0;
    // Smoothstep blend keeps the curve C1 without storing derivatives.
    const double s = frac * frac * (3.0 - 2.0 * frac);
    return v0 * (1.0 - s) + v1 * s;
  }

 private:
  std::uint64_t seed_;
  double period_s_;
};

/// Sum of two SmoothNoise octaves — richer spectrum for weather/wind, still
/// bounded in [-1, 1].
class FractalNoise {
 public:
  FractalNoise(std::uint64_t seed, Duration base_period)
      : coarse_(seed, base_period), fine_(seed ^ 0xABCDEF0123456789ULL,
                                          Duration::from_raw(base_period.seconds() / 4.0)) {}

  [[nodiscard]] double value(TimePoint t) const {
    return (coarse_.value(t) * 0.75 + fine_.value(t) * 0.25);
  }

 private:
  SmoothNoise coarse_;
  SmoothNoise fine_;
};

}  // namespace greenhpc::util
