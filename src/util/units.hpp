#pragma once
// Strong unit types for the quantities greenhpc reasons about.
//
// The paper's Eq. 1 objective E(.) "can represent any number of quantities
// correlated with energy expenditure: kilowatt-hours, PUE, pounds of CO2,
// amount of water used in cooling" and fiscal cost. We give each of those a
// distinct vocabulary type so they cannot be confused (Core Guidelines I.4:
// make interfaces precisely and strongly typed). All types are trivially
// copyable doubles under the hood and constexpr-friendly.
//
// Cross-type arithmetic encodes physics:
//   Power * Duration        -> Energy
//   Energy / Duration       -> Power
//   Energy * CarbonIntensity-> MassCo2
//   Energy * EnergyPrice    -> Money
//   Energy * WaterIntensity -> WaterVolume

#include <cmath>
#include <compare>

namespace greenhpc::util {

/// CRTP mixin giving a strong double wrapper its additive-group and
/// scalar-multiplication structure plus ordering. Derived types expose
/// unit-named factories/accessors only, so call sites read like physics.
template <class Derived>
class QuantityOps {
 public:
  friend constexpr Derived operator+(Derived a, Derived b) { return Derived::from_raw(a.raw() + b.raw()); }
  friend constexpr Derived operator-(Derived a, Derived b) { return Derived::from_raw(a.raw() - b.raw()); }
  friend constexpr Derived operator-(Derived a) { return Derived::from_raw(-a.raw()); }
  friend constexpr Derived operator*(Derived a, double s) { return Derived::from_raw(a.raw() * s); }
  friend constexpr Derived operator*(double s, Derived a) { return Derived::from_raw(s * a.raw()); }
  friend constexpr Derived operator/(Derived a, double s) { return Derived::from_raw(a.raw() / s); }
  /// Ratio of two like quantities is a dimensionless double.
  friend constexpr double operator/(Derived a, Derived b) { return a.raw() / b.raw(); }
  friend constexpr auto operator<=>(Derived a, Derived b) { return a.raw() <=> b.raw(); }
  friend constexpr bool operator==(Derived a, Derived b) { return a.raw() == b.raw(); }

  constexpr Derived& operator+=(Derived o) {
    self() = self() + o;
    return self();
  }
  constexpr Derived& operator-=(Derived o) {
    self() = self() - o;
    return self();
  }

 private:
  constexpr Derived& self() { return static_cast<Derived&>(*this); }
};

/// Span of (simulated) time. Stored in seconds.
class Duration : public QuantityOps<Duration> {
 public:
  constexpr Duration() = default;
  static constexpr Duration from_raw(double s) { return Duration{s}; }
  [[nodiscard]] constexpr double raw() const { return seconds_; }
  [[nodiscard]] constexpr double seconds() const { return seconds_; }
  [[nodiscard]] constexpr double minutes() const { return seconds_ / 60.0; }
  [[nodiscard]] constexpr double hours() const { return seconds_ / 3600.0; }
  [[nodiscard]] constexpr double days() const { return seconds_ / 86400.0; }

 private:
  constexpr explicit Duration(double s) : seconds_(s) {}
  double seconds_ = 0.0;
};

[[nodiscard]] constexpr Duration seconds(double s) { return Duration::from_raw(s); }
[[nodiscard]] constexpr Duration minutes(double m) { return Duration::from_raw(m * 60.0); }
[[nodiscard]] constexpr Duration hours(double h) { return Duration::from_raw(h * 3600.0); }
[[nodiscard]] constexpr Duration days(double d) { return Duration::from_raw(d * 86400.0); }

/// Electrical (or thermal) power. Stored in watts.
class Power : public QuantityOps<Power> {
 public:
  constexpr Power() = default;
  static constexpr Power from_raw(double w) { return Power{w}; }
  [[nodiscard]] constexpr double raw() const { return watts_; }
  [[nodiscard]] constexpr double watts() const { return watts_; }
  [[nodiscard]] constexpr double kilowatts() const { return watts_ / 1e3; }
  [[nodiscard]] constexpr double megawatts() const { return watts_ / 1e6; }

 private:
  constexpr explicit Power(double w) : watts_(w) {}
  double watts_ = 0.0;
};

[[nodiscard]] constexpr Power watts(double w) { return Power::from_raw(w); }
[[nodiscard]] constexpr Power kilowatts(double kw) { return Power::from_raw(kw * 1e3); }
[[nodiscard]] constexpr Power megawatts(double mw) { return Power::from_raw(mw * 1e6); }

/// Energy. Stored in joules; kWh/MWh accessors for reporting.
class Energy : public QuantityOps<Energy> {
 public:
  constexpr Energy() = default;
  static constexpr Energy from_raw(double j) { return Energy{j}; }
  [[nodiscard]] constexpr double raw() const { return joules_; }
  [[nodiscard]] constexpr double joules() const { return joules_; }
  [[nodiscard]] constexpr double kilowatt_hours() const { return joules_ / 3.6e6; }
  [[nodiscard]] constexpr double megawatt_hours() const { return joules_ / 3.6e9; }

 private:
  constexpr explicit Energy(double j) : joules_(j) {}
  double joules_ = 0.0;
};

[[nodiscard]] constexpr Energy joules(double j) { return Energy::from_raw(j); }
[[nodiscard]] constexpr Energy kilowatt_hours(double kwh) { return Energy::from_raw(kwh * 3.6e6); }
[[nodiscard]] constexpr Energy megawatt_hours(double mwh) { return Energy::from_raw(mwh * 3.6e9); }

[[nodiscard]] constexpr Energy operator*(Power p, Duration t) { return joules(p.watts() * t.seconds()); }
[[nodiscard]] constexpr Energy operator*(Duration t, Power p) { return p * t; }
[[nodiscard]] constexpr Power operator/(Energy e, Duration t) { return watts(e.joules() / t.seconds()); }
[[nodiscard]] constexpr Duration operator/(Energy e, Power p) { return seconds(e.joules() / p.watts()); }

/// Money in USD.
class Money : public QuantityOps<Money> {
 public:
  constexpr Money() = default;
  static constexpr Money from_raw(double d) { return Money{d}; }
  [[nodiscard]] constexpr double raw() const { return usd_; }
  [[nodiscard]] constexpr double dollars() const { return usd_; }

 private:
  constexpr explicit Money(double d) : usd_(d) {}
  double usd_ = 0.0;
};

[[nodiscard]] constexpr Money usd(double d) { return Money::from_raw(d); }

/// Mass of emitted CO2-equivalent. Stored in kilograms.
class MassCo2 : public QuantityOps<MassCo2> {
 public:
  constexpr MassCo2() = default;
  static constexpr MassCo2 from_raw(double kg) { return MassCo2{kg}; }
  [[nodiscard]] constexpr double raw() const { return kg_; }
  [[nodiscard]] constexpr double kilograms() const { return kg_; }
  [[nodiscard]] constexpr double metric_tons() const { return kg_ / 1000.0; }
  [[nodiscard]] constexpr double pounds() const { return kg_ * 2.20462262185; }

 private:
  constexpr explicit MassCo2(double kg) : kg_(kg) {}
  double kg_ = 0.0;
};

[[nodiscard]] constexpr MassCo2 kg_co2(double kg) { return MassCo2::from_raw(kg); }
[[nodiscard]] constexpr MassCo2 tons_co2(double t) { return MassCo2::from_raw(t * 1000.0); }

/// Volume of water (cooling footprint). Stored in liters.
class WaterVolume : public QuantityOps<WaterVolume> {
 public:
  constexpr WaterVolume() = default;
  static constexpr WaterVolume from_raw(double l) { return WaterVolume{l}; }
  [[nodiscard]] constexpr double raw() const { return liters_; }
  [[nodiscard]] constexpr double liters() const { return liters_; }
  [[nodiscard]] constexpr double cubic_meters() const { return liters_ / 1000.0; }

 private:
  constexpr explicit WaterVolume(double l) : liters_(l) {}
  double liters_ = 0.0;
};

[[nodiscard]] constexpr WaterVolume liters(double l) { return WaterVolume::from_raw(l); }

/// Price of energy, stored in USD per MWh (the unit LMPs are quoted in; the
/// paper's Fig. 3 plots $20-50/MWh locational marginal prices).
class EnergyPrice : public QuantityOps<EnergyPrice> {
 public:
  constexpr EnergyPrice() = default;
  static constexpr EnergyPrice from_raw(double v) { return EnergyPrice{v}; }
  [[nodiscard]] constexpr double raw() const { return usd_per_mwh_; }
  [[nodiscard]] constexpr double usd_per_mwh() const { return usd_per_mwh_; }
  [[nodiscard]] constexpr double usd_per_kwh() const { return usd_per_mwh_ / 1000.0; }

 private:
  constexpr explicit EnergyPrice(double v) : usd_per_mwh_(v) {}
  double usd_per_mwh_ = 0.0;
};

[[nodiscard]] constexpr EnergyPrice usd_per_mwh(double v) { return EnergyPrice::from_raw(v); }

[[nodiscard]] constexpr Money operator*(Energy e, EnergyPrice p) { return usd(e.megawatt_hours() * p.usd_per_mwh()); }
[[nodiscard]] constexpr Money operator*(EnergyPrice p, Energy e) { return e * p; }

/// Carbon intensity of delivered electricity, stored in kg CO2 per kWh.
class CarbonIntensity : public QuantityOps<CarbonIntensity> {
 public:
  constexpr CarbonIntensity() = default;
  static constexpr CarbonIntensity from_raw(double v) { return CarbonIntensity{v}; }
  [[nodiscard]] constexpr double raw() const { return kg_per_kwh_; }
  [[nodiscard]] constexpr double kg_per_kwh() const { return kg_per_kwh_; }
  [[nodiscard]] constexpr double g_per_kwh() const { return kg_per_kwh_ * 1000.0; }

 private:
  constexpr explicit CarbonIntensity(double v) : kg_per_kwh_(v) {}
  double kg_per_kwh_ = 0.0;
};

[[nodiscard]] constexpr CarbonIntensity kg_per_kwh(double v) { return CarbonIntensity::from_raw(v); }
[[nodiscard]] constexpr CarbonIntensity g_per_kwh(double v) { return CarbonIntensity::from_raw(v / 1000.0); }

[[nodiscard]] constexpr MassCo2 operator*(Energy e, CarbonIntensity ci) {
  return kg_co2(e.kilowatt_hours() * ci.kg_per_kwh());
}
[[nodiscard]] constexpr MassCo2 operator*(CarbonIntensity ci, Energy e) { return e * ci; }

/// Water usage effectiveness, stored in liters per kWh (datacenter WUE;
/// the paper's Sec. I discusses the direct/indirect water footprint).
class WaterIntensity : public QuantityOps<WaterIntensity> {
 public:
  constexpr WaterIntensity() = default;
  static constexpr WaterIntensity from_raw(double v) { return WaterIntensity{v}; }
  [[nodiscard]] constexpr double raw() const { return l_per_kwh_; }
  [[nodiscard]] constexpr double liters_per_kwh() const { return l_per_kwh_; }

 private:
  constexpr explicit WaterIntensity(double v) : l_per_kwh_(v) {}
  double l_per_kwh_ = 0.0;
};

[[nodiscard]] constexpr WaterIntensity liters_per_kwh(double v) { return WaterIntensity::from_raw(v); }

[[nodiscard]] constexpr WaterVolume operator*(Energy e, WaterIntensity wi) {
  return liters(e.kilowatt_hours() * wi.liters_per_kwh());
}
[[nodiscard]] constexpr WaterVolume operator*(WaterIntensity wi, Energy e) { return e * wi; }

/// Temperature. Affine quantity (no + between temperatures); stored in Celsius.
/// The paper plots Fahrenheit (Fig. 4); both accessors are provided.
class Temperature {
 public:
  constexpr Temperature() = default;
  static constexpr Temperature from_celsius(double c) { return Temperature{c}; }
  static constexpr Temperature from_fahrenheit(double f) { return Temperature{(f - 32.0) * 5.0 / 9.0}; }
  [[nodiscard]] constexpr double celsius() const { return celsius_; }
  [[nodiscard]] constexpr double fahrenheit() const { return celsius_ * 9.0 / 5.0 + 32.0; }
  [[nodiscard]] constexpr double kelvin() const { return celsius_ + 273.15; }

  /// Temperature differences are plain doubles in Kelvin/Celsius degrees.
  friend constexpr double operator-(Temperature a, Temperature b) { return a.celsius_ - b.celsius_; }
  /// Shift by a number of Celsius degrees (e.g. heat-wave offsets).
  [[nodiscard]] constexpr Temperature shifted(double delta_c) const { return Temperature{celsius_ + delta_c}; }
  friend constexpr auto operator<=>(Temperature a, Temperature b) = default;

 private:
  constexpr explicit Temperature(double c) : celsius_(c) {}
  double celsius_ = 0.0;
};

[[nodiscard]] constexpr Temperature celsius(double c) { return Temperature::from_celsius(c); }
[[nodiscard]] constexpr Temperature fahrenheit(double f) { return Temperature::from_fahrenheit(f); }

}  // namespace greenhpc::util
