#pragma once
// Minimal work-stealing-free thread pool plus parallel_for.
//
// greenhpc's Monte-Carlo layers (stress-test ensembles, mechanism simulations,
// optimizer sweeps) are embarrassingly parallel across independent replicas,
// each with its own split RNG stream. This pool keeps that parallelism simple
// and exception-safe (Core Guidelines CP.22-ish: no naked thread management
// in user code).

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace greenhpc::util {

class ThreadPool {
 public:
  /// Spawns `thread_count` workers (hardware concurrency when 0).
  explicit ThreadPool(std::size_t thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task; the future reports completion and propagates exceptions.
  std::future<void> submit(std::function<void()> task);

  /// The pool whose worker thread is running the caller, or nullptr when the
  /// caller is not a pool worker. Lets nested layers (e.g. region-parallel
  /// fleet stepping inside replica-parallel experiments) detect that they are
  /// already inside a pool and fall back to serial execution instead of
  /// submitting to the same pool (deadlock risk) or oversubscribing cores.
  static ThreadPool* current();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs fn(i) for i in [0, count) across the pool in contiguous chunks and
/// waits for completion. Exceptions from any chunk propagate to the caller.
void parallel_for(ThreadPool& pool, std::size_t count, const std::function<void(std::size_t)>& fn);

/// Convenience overload using a process-wide shared pool.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

/// The lazily-created process-wide pool (hardware-concurrency sized).
ThreadPool& shared_pool();

}  // namespace greenhpc::util
