#include "power/nvml_sim.hpp"

#include <cmath>

#include "util/error.hpp"

namespace greenhpc::power {

using util::require;

NvmlSim::NvmlSim(std::size_t device_count, GpuSpec spec) : model_(spec) {
  require(device_count > 0, "NvmlSim: need at least one device");
  devices_.resize(device_count);
  for (auto& d : devices_) d.cap = spec.tdp;
}

NvmlStatus NvmlSim::set_power_limit_mw(std::size_t device, std::uint32_t limit_mw) {
  if (!valid(device)) return NvmlStatus::kInvalidDevice;
  const util::Power cap = util::watts(static_cast<double>(limit_mw) / 1000.0);
  if (cap < model_.spec().min_cap || cap > model_.spec().tdp) return NvmlStatus::kInvalidArgument;
  devices_[device].cap = cap;
  return NvmlStatus::kSuccess;
}

NvmlStatus NvmlSim::get_power_limit_mw(std::size_t device, std::uint32_t& out_mw) const {
  if (!valid(device)) return NvmlStatus::kInvalidDevice;
  out_mw = static_cast<std::uint32_t>(devices_[device].cap.watts() * 1000.0);
  return NvmlStatus::kSuccess;
}

NvmlStatus NvmlSim::get_power_limit_constraints_mw(std::size_t device, std::uint32_t& min_mw,
                                                   std::uint32_t& max_mw) const {
  if (!valid(device)) return NvmlStatus::kInvalidDevice;
  min_mw = static_cast<std::uint32_t>(model_.spec().min_cap.watts() * 1000.0);
  max_mw = static_cast<std::uint32_t>(model_.spec().tdp.watts() * 1000.0);
  return NvmlStatus::kSuccess;
}

util::Power NvmlSim::draw(const Device& d) const {
  return model_.power_at_utilization(d.cap, d.utilization);
}

NvmlStatus NvmlSim::get_power_usage_mw(std::size_t device, std::uint32_t& out_mw) const {
  if (!valid(device)) return NvmlStatus::kInvalidDevice;
  out_mw = static_cast<std::uint32_t>(draw(devices_[device]).watts() * 1000.0);
  return NvmlStatus::kSuccess;
}

NvmlStatus NvmlSim::get_utilization_pct(std::size_t device, std::uint32_t& out_pct) const {
  if (!valid(device)) return NvmlStatus::kInvalidDevice;
  out_pct = static_cast<std::uint32_t>(std::lround(devices_[device].utilization * 100.0));
  return NvmlStatus::kSuccess;
}

NvmlStatus NvmlSim::get_temperature_c(std::size_t device, std::uint32_t& out_c) const {
  if (!valid(device)) return NvmlStatus::kInvalidDevice;
  out_c = static_cast<std::uint32_t>(std::lround(devices_[device].temperature_c));
  return NvmlStatus::kSuccess;
}

NvmlStatus NvmlSim::get_total_energy_mj(std::size_t device, std::uint64_t& out_mj) const {
  if (!valid(device)) return NvmlStatus::kInvalidDevice;
  out_mj = static_cast<std::uint64_t>(devices_[device].energy.joules() * 1000.0);
  return NvmlStatus::kSuccess;
}

void NvmlSim::set_workload(std::size_t device, double utilization) {
  require(valid(device), "NvmlSim::set_workload: invalid device");
  require(utilization >= 0.0 && utilization <= 1.0,
          "NvmlSim::set_workload: utilization must be in [0,1]");
  devices_[device].utilization = utilization;
}

void NvmlSim::step(util::Duration dt) {
  require(dt.seconds() >= 0.0, "NvmlSim::step: negative dt");
  constexpr double kAmbientC = 30.0;       // inlet air
  constexpr double kDegCPerWatt = 0.22;    // steady-state rise per watt of draw
  constexpr double kThermalTauS = 90.0;    // first-order time constant
  for (auto& d : devices_) {
    const util::Power p = draw(d);
    d.energy += p * dt;
    const double steady_c = kAmbientC + kDegCPerWatt * p.watts();
    const double alpha = 1.0 - std::exp(-dt.seconds() / kThermalTauS);
    d.temperature_c += (steady_c - d.temperature_c) * alpha;
  }
}

double NvmlSim::throughput_factor(std::size_t device) const {
  require(valid(device), "NvmlSim::throughput_factor: invalid device");
  return model_.throughput_factor(devices_[device].cap);
}

}  // namespace greenhpc::power
