#pragma once
// Power-to-energy integration.
//
// The measurement substrate (Sec. IV-B: "an active, systematic, and
// consistent approach towards collecting and reporting data") starts with a
// meter. PowerMeter supports the two integration styles greenhpc uses:
// piecewise-constant records from the simulator loop, and trapezoidal
// integration of sampled instantaneous readings (the NVML polling style).

#include "util/calendar.hpp"
#include "util/units.hpp"

namespace greenhpc::power {

class PowerMeter {
 public:
  /// Records that power was `p` over [t, t+dt) (piecewise-constant).
  void record(util::TimePoint t, util::Duration dt, util::Power p);

  /// Feeds an instantaneous sample; energy accrues trapezoidally between
  /// consecutive samples. The first sample only establishes the baseline.
  void sample(util::TimePoint t, util::Power p);

  [[nodiscard]] util::Energy energy() const { return energy_; }
  [[nodiscard]] util::Duration metered_time() const { return metered_; }

  /// Mean power over the metered interval (zero when nothing metered).
  [[nodiscard]] util::Power average_power() const;

  /// Highest instantaneous reading seen by either path.
  [[nodiscard]] util::Power peak_power() const { return peak_; }

  void reset();

 private:
  util::Energy energy_;
  util::Duration metered_;
  util::Power peak_;
  bool has_last_sample_ = false;
  util::TimePoint last_time_;
  util::Power last_power_;
};

}  // namespace greenhpc::power
