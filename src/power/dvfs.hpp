#pragma once
// DVFS (dynamic voltage/frequency scaling) governor.
//
// Eq. 1 lists "hardware settings (e.g. power caps, clock rate settings)"
// among the control mechanisms `c`. Power caps act through the board power
// limit; DVFS acts through the clock. Dynamic power scales roughly with
// f * V^2 and voltage tracks frequency, giving the classic ~f^3 dynamic-power
// law, while compute throughput scales ~f for compute-bound kernels. The
// governor picks a frequency state per control interval from utilization or
// an external pressure signal (price/carbon).

#include <span>
#include <vector>

#include "util/units.hpp"

namespace greenhpc::power {

/// One performance state (P-state).
struct FrequencyState {
  double mhz = 1380.0;
  /// Relative throughput vs. the top state, in (0, 1].
  double throughput = 1.0;
  /// Dynamic power vs. the top state, in (0, 1].
  double dynamic_power = 1.0;
};

/// Builds a V100-like P-state ladder from a top frequency: states at
/// fractions {1.0, 0.9, 0.8, 0.7, 0.6} with throughput ~ f and dynamic
/// power ~ f^3 (normalized).
[[nodiscard]] std::vector<FrequencyState> default_pstates(double top_mhz = 1380.0);

enum class GovernorPolicy {
  kPerformance,  ///< always the top state
  kPowersave,    ///< always the bottom state
  kOndemand,     ///< top state when utilization is high, scale down when idle
  kSignal,       ///< scale down as an external pressure signal rises
};

class DvfsGovernor {
 public:
  DvfsGovernor(std::vector<FrequencyState> states, GovernorPolicy policy);

  /// Chooses a state index. `utilization` in [0,1]; `pressure` in [0,1]
  /// (e.g. normalized price or carbon intensity; used by kSignal).
  [[nodiscard]] std::size_t choose(double utilization, double pressure) const;

  [[nodiscard]] const FrequencyState& state(std::size_t idx) const { return states_.at(idx); }
  [[nodiscard]] std::span<const FrequencyState> states() const { return states_; }
  [[nodiscard]] GovernorPolicy policy() const { return policy_; }

  /// Energy per unit work of a state relative to the top state
  /// ((static + dynamic)/throughput, normalized).
  [[nodiscard]] double relative_energy_per_work(std::size_t idx, double static_fraction = 0.25) const;

 private:
  std::vector<FrequencyState> states_;  // ordered fastest -> slowest
  GovernorPolicy policy_;
};

}  // namespace greenhpc::power
