#pragma once
// GPU power/performance model.
//
// Encodes the empirical result the paper leans on for its two-part mechanism
// (Sec. II-C): "optimal GPU power-caps provide an effective way to control
// energy consumption with minimal impact on training speed" (Frey et al.,
// arXiv:2201.12423). On a V100-class device, training workloads draw ~230 W
// uncapped (below the 250 W TDP); capping to 200 W costs ~3% throughput but
// saves ~10% energy per unit of work, and the knee sits near 160-175 W.
//
// Model: with cap C and natural draw P_nat,
//   throughput(C) = 1                                   for C >= P_nat
//   throughput(C) = 1 - s * ((P_nat - C)/P_nat)^q       for C <  P_nat
//   draw(C)       = min(C, P_nat)
// so energy-per-work(C) = draw(C)/throughput(C), which is decreasing down to
// a knee and rising again as slowdown dominates — matching the measured shape.

#include "util/units.hpp"

namespace greenhpc::power {

struct GpuSpec {
  util::Power tdp = util::watts(250.0);          ///< vendor power limit ceiling
  util::Power min_cap = util::watts(100.0);      ///< lowest settable power limit
  util::Power idle = util::watts(50.0);          ///< draw with no work bound
  util::Power natural_draw = util::watts(230.0); ///< uncapped draw under training
  double slowdown_scale = 0.6;                   ///< `s` in the throughput model
  double slowdown_exponent = 1.5;                ///< `q` in the throughput model
};

class GpuPowerModel {
 public:
  GpuPowerModel() : GpuPowerModel(GpuSpec{}) {}
  explicit GpuPowerModel(GpuSpec spec);

  /// Relative training throughput in (0, 1] under power cap `cap`.
  [[nodiscard]] double throughput_factor(util::Power cap) const;

  /// Board draw while busy under `cap`.
  [[nodiscard]] util::Power active_power(util::Power cap) const;

  /// Board draw at a fractional utilization (linear idle->active blend).
  [[nodiscard]] util::Power power_at_utilization(util::Power cap, double utilization) const;

  /// Energy per unit work relative to uncapped operation (1.0 at no cap);
  /// the ABL-CAP bench sweeps this.
  [[nodiscard]] double relative_energy_per_work(util::Power cap) const;

  /// The cap minimizing energy-per-work subject to a maximum tolerated
  /// slowdown (e.g. 0.03 = 3%). Scans the settable range at 1 W resolution.
  [[nodiscard]] util::Power optimal_cap(double max_slowdown) const;

  [[nodiscard]] const GpuSpec& spec() const { return spec_; }

 private:
  GpuSpec spec_;
};

}  // namespace greenhpc::power
