#include "power/gpu_power.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace greenhpc::power {

using util::require;

GpuPowerModel::GpuPowerModel(GpuSpec spec) : spec_(spec) {
  require(spec_.tdp.watts() > 0.0, "GpuPowerModel: TDP must be positive");
  require(spec_.min_cap.watts() > 0.0 && spec_.min_cap <= spec_.tdp,
          "GpuPowerModel: min cap must be in (0, TDP]");
  require(spec_.idle.watts() >= 0.0 && spec_.idle < spec_.natural_draw,
          "GpuPowerModel: idle draw must be below natural draw");
  require(spec_.natural_draw <= spec_.tdp, "GpuPowerModel: natural draw must not exceed TDP");
  require(spec_.slowdown_scale >= 0.0 && spec_.slowdown_scale <= 1.0,
          "GpuPowerModel: slowdown scale must be in [0,1]");
  require(spec_.slowdown_exponent >= 1.0, "GpuPowerModel: slowdown exponent must be >= 1");
}

double GpuPowerModel::throughput_factor(util::Power cap) const {
  require(cap >= spec_.min_cap && cap <= spec_.tdp,
          "GpuPowerModel: cap outside settable range");
  if (cap >= spec_.natural_draw) return 1.0;
  const double deficit = (spec_.natural_draw - cap) / spec_.natural_draw;
  const double slowdown = spec_.slowdown_scale * std::pow(deficit, spec_.slowdown_exponent);
  return std::max(0.05, 1.0 - slowdown);
}

util::Power GpuPowerModel::active_power(util::Power cap) const {
  require(cap >= spec_.min_cap && cap <= spec_.tdp,
          "GpuPowerModel: cap outside settable range");
  return std::min(cap, spec_.natural_draw);
}

util::Power GpuPowerModel::power_at_utilization(util::Power cap, double utilization) const {
  require(utilization >= 0.0 && utilization <= 1.0,
          "GpuPowerModel: utilization must be in [0,1]");
  const util::Power active = active_power(cap);
  return spec_.idle + (active - spec_.idle) * utilization;
}

double GpuPowerModel::relative_energy_per_work(util::Power cap) const {
  const double baseline = spec_.natural_draw.watts();  // energy/work uncapped
  return (active_power(cap).watts() / throughput_factor(cap)) / baseline;
}

util::Power GpuPowerModel::optimal_cap(double max_slowdown) const {
  require(max_slowdown >= 0.0 && max_slowdown < 1.0,
          "GpuPowerModel: max slowdown must be in [0,1)");
  util::Power best = spec_.tdp;
  double best_energy = relative_energy_per_work(spec_.tdp);
  for (double w = spec_.min_cap.watts(); w <= spec_.tdp.watts(); w += 1.0) {
    const util::Power cap = util::watts(w);
    if (1.0 - throughput_factor(cap) > max_slowdown) continue;
    const double energy = relative_energy_per_work(cap);
    if (energy < best_energy) {
      best_energy = energy;
      best = cap;
    }
  }
  return best;
}

}  // namespace greenhpc::power
