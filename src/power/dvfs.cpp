#include "power/dvfs.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace greenhpc::power {

using util::require;

std::vector<FrequencyState> default_pstates(double top_mhz) {
  require(top_mhz > 0.0, "default_pstates: top frequency must be positive");
  std::vector<FrequencyState> states;
  for (double frac : {1.0, 0.9, 0.8, 0.7, 0.6}) {
    FrequencyState s;
    s.mhz = top_mhz * frac;
    s.throughput = frac;                    // compute-bound: perf ~ f
    s.dynamic_power = frac * frac * frac;   // P_dyn ~ f V^2, V ~ f
    states.push_back(s);
  }
  return states;
}

DvfsGovernor::DvfsGovernor(std::vector<FrequencyState> states, GovernorPolicy policy)
    : states_(std::move(states)), policy_(policy) {
  require(!states_.empty(), "DvfsGovernor: need at least one state");
  for (std::size_t i = 1; i < states_.size(); ++i) {
    require(states_[i].throughput <= states_[i - 1].throughput,
            "DvfsGovernor: states must be ordered fastest to slowest");
  }
  for (const auto& s : states_) {
    require(s.throughput > 0.0 && s.throughput <= 1.0, "DvfsGovernor: bad throughput");
    require(s.dynamic_power > 0.0 && s.dynamic_power <= 1.0, "DvfsGovernor: bad dynamic power");
  }
}

std::size_t DvfsGovernor::choose(double utilization, double pressure) const {
  require(utilization >= 0.0 && utilization <= 1.0, "DvfsGovernor: utilization must be in [0,1]");
  require(pressure >= 0.0 && pressure <= 1.0, "DvfsGovernor: pressure must be in [0,1]");
  const std::size_t last = states_.size() - 1;
  switch (policy_) {
    case GovernorPolicy::kPerformance:
      return 0;
    case GovernorPolicy::kPowersave:
      return last;
    case GovernorPolicy::kOndemand: {
      // Busy devices get full clocks; idle ones step down proportionally.
      const double idle = 1.0 - utilization;
      return std::min(last, static_cast<std::size_t>(idle * static_cast<double>(states_.size())));
    }
    case GovernorPolicy::kSignal: {
      return std::min(last, static_cast<std::size_t>(pressure * static_cast<double>(states_.size())));
    }
  }
  return 0;
}

double DvfsGovernor::relative_energy_per_work(std::size_t idx, double static_fraction) const {
  require(idx < states_.size(), "DvfsGovernor: state index out of range");
  require(static_fraction >= 0.0 && static_fraction < 1.0,
          "DvfsGovernor: static fraction must be in [0,1)");
  const FrequencyState& s = states_[idx];
  const double power = static_fraction + (1.0 - static_fraction) * s.dynamic_power;
  return power / s.throughput;  // == 1.0 at the top state
}

}  // namespace greenhpc::power
