#pragma once
// NVML-style telemetry/capping facade over simulated GPUs.
//
// The reproduction note for this paper says "NVML power APIs available" —
// the real system would read device power through NVML and set power limits
// through nvmlDeviceSetPowerManagementLimit. We have no physical GPUs, so
// NvmlSim exposes the same call shapes (milliwatt units, device indices,
// status codes) over GpuPowerModel-driven simulated devices, including a
// first-order thermal model. Examples and tests interact with GPUs through
// this API exactly as a production agent would through NVML.

#include <cstdint>
#include <vector>

#include "power/gpu_power.hpp"
#include "util/calendar.hpp"
#include "util/units.hpp"

namespace greenhpc::power {

enum class NvmlStatus : std::uint8_t {
  kSuccess = 0,
  kInvalidDevice,
  kInvalidArgument,
  kNotSupported,
};

class NvmlSim {
 public:
  /// Creates `device_count` identical devices following `spec`.
  NvmlSim(std::size_t device_count, GpuSpec spec = {});

  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }

  // --- Control-plane calls (mirror nvmlDeviceSet*/Get*) ------------------

  /// Sets the power management limit, in milliwatts (NVML's unit).
  NvmlStatus set_power_limit_mw(std::size_t device, std::uint32_t limit_mw);
  NvmlStatus get_power_limit_mw(std::size_t device, std::uint32_t& out_mw) const;
  /// The valid settable range, in milliwatts.
  NvmlStatus get_power_limit_constraints_mw(std::size_t device, std::uint32_t& min_mw,
                                            std::uint32_t& max_mw) const;

  /// Instantaneous board draw, in milliwatts.
  NvmlStatus get_power_usage_mw(std::size_t device, std::uint32_t& out_mw) const;
  /// SM utilization percent [0,100].
  NvmlStatus get_utilization_pct(std::size_t device, std::uint32_t& out_pct) const;
  /// Die temperature in whole degrees C.
  NvmlStatus get_temperature_c(std::size_t device, std::uint32_t& out_c) const;
  /// Cumulative energy since construction, in millijoules (NVML's
  /// nvmlDeviceGetTotalEnergyConsumption unit).
  NvmlStatus get_total_energy_mj(std::size_t device, std::uint64_t& out_mj) const;

  // --- Simulation-side hooks ---------------------------------------------

  /// Binds a workload at `utilization` in [0,1] to the device.
  void set_workload(std::size_t device, double utilization);

  /// Advances device state by dt: integrates energy, relaxes die temperature
  /// toward the load-dependent steady state (first-order RC).
  void step(util::Duration dt);

  /// Effective training throughput factor for the device's current cap.
  [[nodiscard]] double throughput_factor(std::size_t device) const;

 private:
  struct Device {
    util::Power cap;
    double utilization = 0.0;
    double temperature_c = 30.0;
    util::Energy energy;
  };

  [[nodiscard]] bool valid(std::size_t device) const { return device < devices_.size(); }
  [[nodiscard]] util::Power draw(const Device& d) const;

  GpuPowerModel model_;
  std::vector<Device> devices_;
};

}  // namespace greenhpc::power
