#include "power/power_meter.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace greenhpc::power {

using util::require;

void PowerMeter::record(util::TimePoint t, util::Duration dt, util::Power p) {
  require(dt.seconds() >= 0.0, "PowerMeter::record: negative duration");
  require(p.watts() >= 0.0, "PowerMeter::record: negative power");
  (void)t;
  energy_ += p * dt;
  metered_ += dt;
  peak_ = std::max(peak_, p);
}

void PowerMeter::sample(util::TimePoint t, util::Power p) {
  require(p.watts() >= 0.0, "PowerMeter::sample: negative power");
  peak_ = std::max(peak_, p);
  if (has_last_sample_) {
    require(t >= last_time_, "PowerMeter::sample: non-monotonic sample time");
    const util::Duration dt = t - last_time_;
    energy_ += (last_power_ + p) / 2.0 * dt;  // trapezoid
    metered_ += dt;
  }
  has_last_sample_ = true;
  last_time_ = t;
  last_power_ = p;
}

util::Power PowerMeter::average_power() const {
  if (metered_.seconds() <= 0.0) return util::watts(0.0);
  return energy_ / metered_;
}

void PowerMeter::reset() { *this = PowerMeter{}; }

}  // namespace greenhpc::power
