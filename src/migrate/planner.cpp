#include "migrate/planner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace greenhpc::migrate {

using util::require;

const char* migration_objective_name(MigrationObjective o) {
  switch (o) {
    case MigrationObjective::kOff: return "off";
    case MigrationObjective::kCarbon: return "carbon";
    case MigrationObjective::kCost: return "cost";
  }
  return "unknown";
}

std::optional<MigrationObjective> migration_objective_from_name(const std::string& name) {
  if (name == "off") return MigrationObjective::kOff;
  if (name == "carbon") return MigrationObjective::kCarbon;
  if (name == "cost") return MigrationObjective::kCost;
  return std::nullopt;
}

const char* migration_policy_names() { return "carbon | cost | off"; }

MigrationPlanner::MigrationPlanner(MigrationConfig config)
    : config_(std::move(config)),
      checkpoint_(config_.checkpoint),
      bank_(std::make_shared<forecast::ForecasterBank>(config_.forecaster)) {
  require(config_.hysteresis >= 0.0 && config_.hysteresis < 1.0,
          "MigrationPlanner: hysteresis must be in [0,1)");
  require(config_.budget_per_job >= 0, "MigrationPlanner: budget must be >= 0");
  require(config_.cooldown.seconds() >= 0.0, "MigrationPlanner: cooldown must be >= 0");
  require(config_.min_remaining.seconds() >= 0.0,
          "MigrationPlanner: min_remaining must be >= 0");
  require(config_.max_in_flight >= 1, "MigrationPlanner: transfer pipe needs >= 1 slot");
  require(config_.deadline_margin > 0.0 && config_.deadline_margin <= 1.0,
          "MigrationPlanner: deadline margin must be in (0,1]");
  require(config_.retry_backoff.seconds() >= 0.0,
          "MigrationPlanner: retry_backoff must be >= 0");
  require(config_.max_retry_attempts >= 0,
          "MigrationPlanner: max_retry_attempts must be >= 0");
}

util::Duration MigrationPlanner::retry_delay(int attempt) const {
  require(attempt >= 1, "MigrationPlanner::retry_delay: attempt must be >= 1");
  return config_.retry_backoff * std::ldexp(1.0, std::min(attempt - 1, 30));
}

double MigrationPlanner::signal_of(const fleet::RegionView& region) const {
  return config_.objective == MigrationObjective::kCost ? region.price.usd_per_mwh()
                                                        : region.carbon.kg_per_kwh();
}

double MigrationPlanner::per_signal(util::Energy energy) const {
  return config_.objective == MigrationObjective::kCost ? energy.megawatt_hours()
                                                        : energy.kilowatt_hours();
}

void MigrationPlanner::observe(util::TimePoint now, std::span<const fleet::RegionView> regions) {
  for (const fleet::RegionView& r : regions) {
    // Dropped telemetry stays out of the fit; the gap trips the realized-
    // skill gate, degrading that region to instantaneous scoring.
    if (!r.telemetry_ok) continue;
    bank_->observe(now, r.index, signal_of(r), r.name);
  }
}

void MigrationPlanner::attach_forecasts(forecast::ForecasterHub& hub) {
  const forecast::SignalKind signal = config_.objective == MigrationObjective::kCost
                                          ? forecast::SignalKind::kPrice
                                          : forecast::SignalKind::kCarbon;
  if (auto shared = hub.attach(signal, config_.forecaster)) bank_ = std::move(shared);
}

double MigrationPlanner::integrated_signal(std::size_t index, util::Duration runtime,
                                           double instantaneous) const {
  return bank_->integrated_signal(index, runtime, instantaneous);
}

std::vector<MigrationDecision> MigrationPlanner::plan(
    util::TimePoint now, std::span<const fleet::RegionView> regions,
    std::span<const MigrationCandidate> candidates, std::size_t available_slots,
    std::span<const int> inbound_gpus) {
  std::vector<MigrationDecision> decisions;
  if (!enabled() || available_slots == 0 || regions.size() < 2) return decisions;
  const auto inbound = [&](std::size_t region) {
    return region < inbound_gpus.size() ? inbound_gpus[region] : 0;
  };

  // Score every candidate's best destination first, then commit the strongest
  // savings while reserving destination capacity so picks never conflict.
  std::vector<Scored>& scored = scored_;  // reused scratch; plan() runs every step
  scored.clear();

  for (const MigrationCandidate& c : candidates) {
    if (c.migrations_so_far >= config_.budget_per_job) continue;
    if (c.migrations_so_far > 0 && now - c.last_migration < config_.cooldown) continue;
    require(c.gpus >= 1, "MigrationPlanner: candidate with no GPUs");
    require(c.region < regions.size(), "MigrationPlanner: candidate region out of range");

    const util::Duration remaining =
        util::seconds(c.work_remaining_gpu_seconds / static_cast<double>(c.gpus));
    if (remaining < config_.min_remaining) continue;

    const util::Duration outage = checkpoint_.outage(c.gpus);
    if (c.deadline) {
      // The move only happens when the outage plus the remaining runtime
      // still fits the deadline with margin to spare for queueing/throttle.
      const util::Duration slack = *c.deadline - now;
      if ((outage + remaining).seconds() > slack.seconds() * config_.deadline_margin) continue;
    }

    const fleet::RegionView& src = regions[c.region];
    const util::Energy run_energy_src =
        src.busy_gpu_power * util::seconds(c.work_remaining_gpu_seconds);
    const double stay =
        per_signal(run_energy_src) * integrated_signal(c.region, remaining, signal_of(src));
    if (stay <= 0.0) continue;

    // Checkpoint overheads are billed at today's conditions: the snapshot
    // burns at the source now, ship+restore at the destination on arrival.
    const double snapshot_cost =
        per_signal(checkpoint_.snapshot_energy(c.gpus)) * signal_of(src);
    const double delivery_per_signal = per_signal(checkpoint_.delivery_energy(c.gpus));

    MigrationDecision best;
    double best_move = std::numeric_limits<double>::infinity();
    for (const fleet::RegionView& d : regions) {
      // Capacity net of the destination's backlog *and* of checkpoints
      // already in flight there: free GPUs a queued job or an inbound
      // snapshot has dibs on are not capacity — landing behind them would
      // trade grid intensity for queueing delay and lost throughput.
      // A blacked-out region never receives checkpoints (it is draining
      // admission); migrating *out* of one stays allowed.
      if (d.index == c.region || !d.admit_ok ||
          d.free_gpus - d.queued_gpu_demand - inbound(d.index) < c.gpus) {
        continue;
      }
      const util::Energy run_energy_dst =
          d.busy_gpu_power * util::seconds(c.work_remaining_gpu_seconds);
      const double move =
          per_signal(run_energy_dst) * integrated_signal(d.index, remaining, signal_of(d)) +
          snapshot_cost + delivery_per_signal * signal_of(d);
      if (move < best_move) {
        best_move = move;
        best.dest = d.index;
      }
    }
    if (!std::isfinite(best_move)) continue;

    const double saving = stay - best_move;
    if (saving < config_.hysteresis * stay) continue;  // not decisive enough

    best.source = c.region;
    best.job = c.job;
    best.predicted_saving = saving;
    best.relative_saving = saving / stay;
    scored.push_back({best, c.gpus});
  }

  // Strongest savings first; deterministic tie-break on (source, job id).
  std::stable_sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.decision.predicted_saving != b.decision.predicted_saving) {
      return a.decision.predicted_saving > b.decision.predicted_saving;
    }
    if (a.decision.source != b.decision.source) return a.decision.source < b.decision.source;
    return a.decision.job < b.decision.job;
  });

  // Commit while destination capacity and pipe slots hold out (same
  // net-of-backlog-and-inbound capacity the scoring pass used).
  std::vector<int>& free_gpus = free_gpus_;
  free_gpus.assign(regions.size(), 0);
  for (const fleet::RegionView& r : regions) {
    free_gpus[r.index] = r.free_gpus - r.queued_gpu_demand - inbound(r.index);
  }
  for (const Scored& s : scored) {
    if (decisions.size() >= available_slots) break;
    if (free_gpus[s.decision.dest] < s.gpus) continue;  // a stronger move took the room
    free_gpus[s.decision.dest] -= s.gpus;
    decisions.push_back(s.decision);
  }
  return decisions;
}

std::vector<forecast::SkillReport> MigrationPlanner::skills() const { return bank_->skills(); }

}  // namespace greenhpc::migrate
