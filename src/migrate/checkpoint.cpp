#include "migrate/checkpoint.hpp"

#include "util/error.hpp"

namespace greenhpc::migrate {

using util::require;

CheckpointModel::CheckpointModel(CheckpointConfig config) : config_(config) {
  require(config_.gb_per_gpu > 0.0, "CheckpointModel: gb_per_gpu must be positive");
  require(config_.snapshot_gb_per_s > 0.0, "CheckpointModel: snapshot bandwidth must be positive");
  require(config_.ship_gb_per_s > 0.0, "CheckpointModel: ship bandwidth must be positive");
  require(config_.restore_gb_per_s > 0.0, "CheckpointModel: restore bandwidth must be positive");
  require(config_.energy_kwh_per_gb >= 0.0, "CheckpointModel: energy per GB must be >= 0");
  require(config_.cost_scale > 0.0, "CheckpointModel: cost scale must be positive");
}

double CheckpointModel::size_gb(int gpus) const {
  require(gpus >= 1, "CheckpointModel: gpus must be >= 1");
  return config_.gb_per_gpu * static_cast<double>(gpus) * config_.cost_scale;
}

util::Duration CheckpointModel::snapshot_time(int gpus) const {
  return util::seconds(size_gb(gpus) / config_.snapshot_gb_per_s);
}

util::Duration CheckpointModel::ship_time(int gpus) const {
  return util::seconds(size_gb(gpus) / config_.ship_gb_per_s);
}

util::Duration CheckpointModel::restore_time(int gpus) const {
  return util::seconds(size_gb(gpus) / config_.restore_gb_per_s);
}

util::Duration CheckpointModel::outage(int gpus) const {
  return snapshot_time(gpus) + ship_time(gpus) + restore_time(gpus);
}

util::Energy CheckpointModel::snapshot_energy(int gpus) const {
  return util::kilowatt_hours(size_gb(gpus) * config_.energy_kwh_per_gb);
}

util::Energy CheckpointModel::delivery_energy(int gpus) const {
  // Ship and restore each touch every byte once.
  return util::kilowatt_hours(2.0 * size_gb(gpus) * config_.energy_kwh_per_gb);
}

util::Energy CheckpointModel::total_energy(int gpus) const {
  return snapshot_energy(gpus) + delivery_energy(gpus);
}

}  // namespace greenhpc::migrate
