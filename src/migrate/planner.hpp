#pragma once
// MigrationPlanner: mid-run relocation decisions that follow green power.
//
// Admission-time routing pins a job to the region that looked best when it
// arrived — but a multi-hour training run lives through many turns of every
// region's wind and price cycle, and the paper's relocation lever (Zhao et
// al., Sec. II) is only fully pulled when running jobs can *keep chasing*
// the cleanest grid. Each fleet control step the planner scores every
// (running job, destination) pair: the forecast-integrated carbon (or cost)
// of finishing the job where it is, versus checkpointing it, shipping the
// snapshot, and finishing on the destination's grid — checkpoint and
// transfer overheads charged against the move. A move must clear a
// hysteresis margin of the stay-put footprint, each job has a migration
// budget and a cooldown so the fleet never thrashes, and deadline jobs only
// move when the outage plus remaining runtime still fits their deadline.
// Per-region forecasters (the same RollingForecaster stack the routers use)
// integrate the signal over the job's remaining runtime; unreliable
// forecasts degrade region-by-region to the instantaneous signal.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cluster/job.hpp"
#include "fleet/routing.hpp"
#include "forecast/bank.hpp"
#include "forecast/hub.hpp"
#include "migrate/checkpoint.hpp"

namespace greenhpc::migrate {

/// What a migration minimizes: the remaining run's carbon or its cost.
/// kOff disables the planner entirely.
enum class MigrationObjective : std::uint8_t { kOff = 0, kCarbon, kCost };

[[nodiscard]] const char* migration_objective_name(MigrationObjective o);
/// Inverse of migration_objective_name for CLI/scenario surfaces ("off" |
/// "carbon" | "cost"); nullopt for unknown names.
[[nodiscard]] std::optional<MigrationObjective> migration_objective_from_name(
    const std::string& name);
/// All names migration_objective_from_name accepts, for --help text.
[[nodiscard]] const char* migration_policy_names();

struct MigrationConfig {
  MigrationObjective objective = MigrationObjective::kOff;
  CheckpointConfig checkpoint;
  /// Per-region signal forecaster (same defaults as the forecast routers).
  forecast::RollingForecasterConfig forecaster;
  /// A move must save at least this fraction of the stay-put footprint
  /// (after checkpoint overheads) — small drifts are forecast noise, and
  /// re-migrating on them is how fleets thrash.
  double hysteresis = 0.15;
  /// Lifetime migration budget per job lineage (a job that already moved
  /// this many times is pinned for good).
  int budget_per_job = 2;
  /// Minimum time between migrations of the same lineage.
  util::Duration cooldown = util::hours(6);
  /// Jobs with less remaining runtime than this are not worth moving.
  util::Duration min_remaining = util::hours(2);
  /// Transfer-pipe width: checkpoints in flight at once, fleet-wide.
  std::size_t max_in_flight = 4;
  /// Deadline safety factor: the outage + remaining runtime must fit inside
  /// (deadline - now) * this fraction.
  double deadline_margin = 0.9;
  /// Link-fault recovery: a failed transfer waits retry_backoff * 2^attempt
  /// (jitter-free, so retry timelines are deterministic) before relaunching,
  /// for at most max_retry_attempts relaunches; after that the lineage is
  /// abandoned in place and resumed at the source.
  util::Duration retry_backoff = util::minutes(30);
  int max_retry_attempts = 3;
};

/// One running job offered to the planner (assembled by the coordinator).
struct MigrationCandidate {
  std::size_t region = 0;  ///< where the job is running now
  cluster::JobId job = 0;
  int gpus = 0;
  double work_remaining_gpu_seconds = 0.0;
  std::optional<util::TimePoint> deadline;
  int migrations_so_far = 0;
  /// When this lineage last migrated (ignored while migrations_so_far == 0).
  util::TimePoint last_migration;
};

/// One planned move, strongest predicted saving first.
struct MigrationDecision {
  std::size_t source = 0;
  std::size_t dest = 0;
  cluster::JobId job = 0;
  /// Stay-put minus move footprint over the remaining runtime, in the
  /// objective's unit (kg CO2 or $), checkpoint overhead already deducted.
  double predicted_saving = 0.0;
  /// predicted_saving / stay-put footprint (the hysteresis test value).
  double relative_saving = 0.0;
};

class MigrationPlanner {
 public:
  explicit MigrationPlanner(MigrationConfig config = {});

  [[nodiscard]] const MigrationConfig& config() const { return config_; }
  [[nodiscard]] const CheckpointModel& checkpoint() const { return checkpoint_; }
  [[nodiscard]] bool enabled() const {
    return config_.objective != MigrationObjective::kOff;
  }

  /// Backoff before relaunching a transfer that has failed `attempt` times
  /// (attempt >= 1): retry_backoff * 2^(attempt-1). Jitter-free on purpose —
  /// retry timelines must replay bit-identically from the run seed.
  [[nodiscard]] util::Duration retry_delay(int attempt) const;

  /// True while a transfer that has failed `attempt` times still has retry
  /// budget; false means abandon-in-place (resume the lineage at its source).
  [[nodiscard]] bool should_retry(int attempt) const {
    return attempt <= config_.max_retry_attempts;
  }

  /// Feed every control step's region signals (same cadence contract as
  /// RoutingPolicy::observe; repeated timestamps are deduplicated).
  void observe(util::TimePoint now, std::span<const fleet::RegionView> regions);

  /// Adopts the coordinator's shared per-region bank for this planner's
  /// signal when the forecaster configs match — one observe/refit/skill
  /// pass per region per step shared with the forecast router instead of a
  /// duplicate private stack.
  void attach_forecasts(forecast::ForecasterHub& hub);

  /// Scores all candidates against all destinations and returns up to
  /// `available_slots` non-conflicting moves (destination capacity is
  /// reserved move-by-move), ordered by predicted saving. `inbound_gpus`
  /// (when provided, indexed by region) counts GPUs already claimed by
  /// checkpoints in flight to each region, so a multi-step outage cannot
  /// over-commit a destination across planning rounds. Deterministic: ties
  /// break toward lower (source, job) and the scan order is fixed.
  [[nodiscard]] std::vector<MigrationDecision> plan(
      util::TimePoint now, std::span<const fleet::RegionView> regions,
      std::span<const MigrationCandidate> candidates, std::size_t available_slots,
      std::span<const int> inbound_gpus = {});

  /// Forecast-integrated mean signal (kg/kWh or $/MWh) for a job running
  /// `runtime` at region `index`; falls back to `instantaneous` while that
  /// region's forecast is missing or unreliable. Exposed for tests.
  [[nodiscard]] double integrated_signal(std::size_t index, util::Duration runtime,
                                         double instantaneous) const;

  /// Realized per-region forecast skill for telemetry surfaces.
  [[nodiscard]] std::vector<forecast::SkillReport> skills() const;

 private:
  [[nodiscard]] double signal_of(const fleet::RegionView& region) const;
  /// Job energy in the objective's signal denominator (kWh for carbon,
  /// MWh for cost).
  [[nodiscard]] double per_signal(util::Energy energy) const;

  MigrationConfig config_;
  CheckpointModel checkpoint_;
  /// One forecaster per region — private by default, the hub's shared bank
  /// after attach_forecasts.
  std::shared_ptr<forecast::ForecasterBank> bank_;

  /// Per-plan scratch (reused; plan() runs every fleet step).
  struct Scored {
    MigrationDecision decision;
    int gpus = 0;
  };
  std::vector<Scored> scored_;
  std::vector<int> free_gpus_;
};

}  // namespace greenhpc::migrate
