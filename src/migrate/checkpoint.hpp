#pragma once
// CheckpointModel: what it costs to suspend, ship, and resume a running job.
//
// The paper's relocation lever ("run A.I. workloads where the power is
// green") is only honest when moving a job is not free: a training run
// carries model + optimizer state that must be snapshotted to storage,
// shipped over the WAN, and restored on the destination's GPUs. This model
// prices that pipeline. Checkpoint size grows with the job's GPU footprint
// (distributed training shards state across ranks, so aggregate state scales
// with the allocation); each stage has a bandwidth (wall-clock cost — the
// job makes no progress during the outage) and an energy toll per gigabyte
// moved (storage I/O plus network transceivers). The MigrationPlanner
// subtracts these overheads from any forecast advantage, so a move must pay
// for its own checkpoint before it counts as green.

#include "cluster/job.hpp"
#include "util/units.hpp"

namespace greenhpc::migrate {

struct CheckpointConfig {
  /// Aggregate model + optimizer state per allocated GPU (V100-class runs
  /// checkpoint roughly their HBM footprint).
  double gb_per_gpu = 12.0;
  /// Stage bandwidths, GB/s: parallel snapshot to local storage, WAN ship to
  /// the destination, parallel restore from the destination's storage.
  double snapshot_gb_per_s = 2.0;
  double ship_gb_per_s = 1.25;  ///< ~10 Gb/s inter-site pipe
  double restore_gb_per_s = 4.0;
  /// Energy toll per gigabyte per stage (storage I/O + network transceivers).
  double energy_kwh_per_gb = 0.005;
  /// One-knob scale on the checkpoint size (the CLI's --checkpoint-cost):
  /// 0.5 halves every time and energy cost, 4.0 models a fatter job.
  double cost_scale = 1.0;
};

class CheckpointModel {
 public:
  CheckpointModel() : CheckpointModel(CheckpointConfig{}) {}
  explicit CheckpointModel(CheckpointConfig config);

  [[nodiscard]] const CheckpointConfig& config() const { return config_; }

  /// Scaled state size for a job holding `gpus` GPUs.
  [[nodiscard]] double size_gb(int gpus) const;

  // --- wall-clock costs (the job runs nowhere during these) ----------------
  [[nodiscard]] util::Duration snapshot_time(int gpus) const;
  [[nodiscard]] util::Duration ship_time(int gpus) const;
  [[nodiscard]] util::Duration restore_time(int gpus) const;
  /// Full outage: snapshot + ship + restore, end to end.
  [[nodiscard]] util::Duration outage(int gpus) const;

  // --- energy costs (billed into the fleet's transfer ledgers) -------------
  /// Snapshot stage, burned at the *source* site.
  [[nodiscard]] util::Energy snapshot_energy(int gpus) const;
  /// Ship + restore stages, burned at the *destination* site.
  [[nodiscard]] util::Energy delivery_energy(int gpus) const;
  /// All three stages together (what the planner charges against a move).
  [[nodiscard]] util::Energy total_energy(int gpus) const;

 private:
  CheckpointConfig config_;
};

}  // namespace greenhpc::migrate
