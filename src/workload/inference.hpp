#pragma once
// Inference-serving fleet model.
//
// Sec. IV-B: "the few estimates, where available, put inference at 90% of
// production ML infrastructure costs and 80%-90% of energy costs. While
// training enjoys scaling benefits that saturate GPUs, the different
// performance requirements of inference can result in poor GPU utilization
// ... AWS reports p3 GPU instances at only 10%-30% utilization." This model
// reproduces that regime: a fleet provisioned for peak QPS with a latency
// headroom serves a diurnal demand curve, so average utilization lands in
// the 10-30% band and serving energy dominates the model lifecycle.

#include "util/calendar.hpp"
#include "util/units.hpp"

namespace greenhpc::workload {

struct InferenceFleetSpec {
  /// Peak queries per second the service must absorb.
  double peak_qps = 600.0;
  /// Queries per second one replica sustains at full utilization.
  double qps_per_replica = 80.0;
  /// Provisioning headroom above observed peak: latency SLO buffer plus
  /// failover/burst reserve (production fleets provision for the worst
  /// minute of the year, which is how average utilization lands at 10-30%).
  double headroom = 2.2;
  /// Diurnal demand: trough-to-peak ratio of the QPS curve.
  double trough_fraction = 0.15;
  /// Per-replica power at idle and at full load (serving is memory/latency
  /// bound, so idle draw is a large fraction of busy draw).
  util::Power replica_idle = util::watts(120.0);
  util::Power replica_busy = util::watts(280.0);
  double pue = 1.30;
};

struct InferencePeriodCost {
  double replicas = 0.0;
  double average_utilization = 0.0;  ///< fleet-wide, in [0,1]
  double queries_served = 0.0;
  util::Energy it_energy;
  util::Energy facility_energy;
  util::Energy energy_per_1k_queries;
};

class InferenceFleet {
 public:
  InferenceFleet() : InferenceFleet(InferenceFleetSpec{}) {}
  explicit InferenceFleet(InferenceFleetSpec spec);

  /// QPS demand at time t (diurnal curve peaking late evening).
  [[nodiscard]] double qps_at(util::TimePoint t) const;

  /// Number of always-on replicas (static provisioning for peak+headroom).
  [[nodiscard]] int provisioned_replicas() const;

  /// Fleet utilization at time t, in [0,1].
  [[nodiscard]] double utilization_at(util::TimePoint t) const;

  /// Energy/utilization roll-up over [start, end) (hourly integration).
  [[nodiscard]] InferencePeriodCost serve(util::TimePoint start, util::TimePoint end) const;

  [[nodiscard]] const InferenceFleetSpec& spec() const { return spec_; }

 private:
  InferenceFleetSpec spec_;
};

}  // namespace greenhpc::workload
