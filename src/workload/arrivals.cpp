#include "workload/arrivals.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace greenhpc::workload {

using util::require;

std::vector<ClassProfile> default_mix() {
  std::vector<ClassProfile> mix;

  // Short interactive/debug jobs: frequent, small, never deferrable.
  ClassProfile debug;
  debug.job_class = cluster::JobClass::kDebug;
  debug.weight = 0.38;
  debug.gpu_choices = {1, 2};
  debug.gpu_weights = {0.8, 0.2};
  debug.log_hours_mu = std::log(0.4);  // ~24 min median
  debug.log_hours_sigma = 0.7;
  mix.push_back(debug);

  // Full training runs: the energy heavyweights; often flexible.
  ClassProfile training;
  training.job_class = cluster::JobClass::kTraining;
  training.weight = 0.27;
  training.gpu_choices = {1, 2, 4, 8, 16, 32};
  training.gpu_weights = {0.28, 0.24, 0.2, 0.16, 0.08, 0.04};
  training.log_hours_mu = std::log(6.0);  // 6 h median, heavy tail to days
  training.log_hours_sigma = 1.1;
  training.flexible_probability = 0.45;
  training.deadline_slack = 4.0;
  mix.push_back(training);

  // Hyper-parameter sweeps: Sec. IV-A's "multiple training runs and
  // inevitably redundant runs"; medium size, highly deferrable.
  ClassProfile sweep;
  sweep.job_class = cluster::JobClass::kHyperparamSweep;
  sweep.weight = 0.17;
  sweep.gpu_choices = {1, 2, 4};
  sweep.gpu_weights = {0.5, 0.3, 0.2};
  sweep.log_hours_mu = std::log(2.5);
  sweep.log_hours_sigma = 0.9;
  sweep.flexible_probability = 0.7;
  sweep.deadline_slack = 8.0;
  mix.push_back(sweep);

  // Inference/serving batches: small, latency-sensitive, never deferred.
  ClassProfile inference;
  inference.job_class = cluster::JobClass::kInference;
  inference.weight = 0.08;
  inference.gpu_choices = {1};
  inference.gpu_weights = {1.0};
  inference.log_hours_mu = std::log(1.0);
  inference.log_hours_sigma = 0.6;
  mix.push_back(inference);

  // Generic analysis jobs.
  ClassProfile analysis;
  analysis.job_class = cluster::JobClass::kAnalysis;
  analysis.weight = 0.10;
  analysis.gpu_choices = {1, 2};
  analysis.gpu_weights = {0.7, 0.3};
  analysis.log_hours_mu = std::log(1.5);
  analysis.log_hours_sigma = 0.8;
  analysis.flexible_probability = 0.3;
  analysis.deadline_slack = 6.0;
  mix.push_back(analysis);

  return mix;
}

ArrivalProcess::ArrivalProcess(ArrivalConfig config, const DemandModulator* modulator)
    : ArrivalProcess(std::move(config), modulator, nullptr) {}

ArrivalProcess::ArrivalProcess(ArrivalConfig config, const DemandModulator* modulator,
                               const UserPopulation* population)
    : config_(std::move(config)), modulator_(modulator), population_(population) {
  require(config_.base_rate_per_hour > 0.0, "ArrivalProcess: base rate must be positive");
  require(!config_.mix.empty(), "ArrivalProcess: empty class mix");
  for (const ClassProfile& p : config_.mix) {
    require(p.weight >= 0.0, "ArrivalProcess: negative class weight");
    require(p.gpu_choices.size() == p.gpu_weights.size(),
            "ArrivalProcess: GPU choice/weight arity mismatch");
    require(!p.gpu_choices.empty(), "ArrivalProcess: empty GPU choices");
    require(p.log_hours_sigma >= 0.0, "ArrivalProcess: negative sigma");
    for (int g : p.gpu_choices) require(g >= 1, "ArrivalProcess: GPU choice below 1");
  }
  for (const ClassProfile& p : config_.mix) class_weights_.push_back(p.weight);
}

double ArrivalProcess::rate_per_hour(util::TimePoint t) const {
  const double mod = modulator_ != nullptr ? modulator_->factor(t) : 1.0;
  return config_.base_rate_per_hour * mod;
}

cluster::JobRequest ArrivalProcess::draw_request(util::TimePoint t, util::Rng& rng) const {
  const std::size_t cls = rng.weighted_index(class_weights_);
  const ClassProfile& profile = config_.mix[cls];

  cluster::JobRequest req;
  req.job_class = profile.job_class;
  if (population_ != nullptr) req.user = population_->sample_user(rng);
  // Tag the job with a research domain drawn from the deadline-modulated
  // area mix (untagged when no modulator drives the workload).
  if (modulator_ != nullptr) {
    const std::array<double, 5> areas = modulator_->area_weights(t);
    req.domain = static_cast<cluster::DomainTag>(rng.weighted_index(areas));
  }
  const std::size_t gi = rng.weighted_index(profile.gpu_weights);
  req.gpus = profile.gpu_choices[gi];
  const double busy_hours = rng.lognormal(profile.log_hours_mu, profile.log_hours_sigma);
  req.work_gpu_seconds = std::max(60.0, busy_hours * 3600.0) * static_cast<double>(req.gpus);
  req.flexible = rng.bernoulli(profile.flexible_probability);
  if (profile.deadline_slack > 0.0 && req.flexible) {
    const double runtime_s = req.work_gpu_seconds / static_cast<double>(req.gpus);
    req.deadline = t + util::seconds(runtime_s * (1.0 + profile.deadline_slack));
  }
  // Users pad runtime estimates by 10-100% (backfill relies on estimates).
  req.estimate_factor = 1.1 + 0.9 * rng.uniform01();
  return req;
}

std::vector<cluster::JobRequest> ArrivalProcess::sample(util::TimePoint t, util::Duration dt,
                                                        util::Rng& rng) const {
  require(dt.seconds() >= 0.0, "ArrivalProcess::sample: negative window");
  const double expected = rate_per_hour(t) * dt.hours();
  const std::int64_t count = rng.poisson(expected);
  std::vector<cluster::JobRequest> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) out.push_back(draw_request(t, rng));
  return out;
}

}  // namespace greenhpc::workload
