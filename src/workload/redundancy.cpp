#include "workload/redundancy.hpp"

#include <cmath>

#include "util/error.hpp"

namespace greenhpc::workload {

using util::require;

ProjectWaste project_waste(const RedundancyParams& params) {
  require(params.reproduction_success_rate > 0.0 && params.reproduction_success_rate <= 1.0,
          "project_waste: success rate must be in (0,1]");
  require(params.max_attempts >= 1, "project_waste: need at least one attempt");
  require(params.sweep_size >= 0, "project_waste: negative sweep size");
  require(params.avoidable_sweep_fraction >= 0.0 && params.avoidable_sweep_fraction <= 1.0,
          "project_waste: avoidable fraction must be in [0,1]");
  require(params.energy_per_run.joules() > 0.0, "project_waste: energy per run must be positive");

  const double p = params.reproduction_success_rate;
  const int n = params.max_attempts;

  // Truncated geometric: E[attempts] = sum_{k=1..n} k p (1-p)^{k-1}
  //                                   + n (1-p)^n (gave up after n).
  double expected_attempts = 0.0;
  for (int k = 1; k <= n; ++k)
    expected_attempts += k * p * std::pow(1.0 - p, k - 1);
  expected_attempts += static_cast<double>(n) * std::pow(1.0 - p, n);

  ProjectWaste out;
  out.expected_attempts = expected_attempts;
  out.expected_failed_runs = expected_attempts - (1.0 - std::pow(1.0 - p, n));
  out.avoidable_sweep_runs = params.avoidable_sweep_fraction * params.sweep_size;

  const double lean_sweep = params.sweep_size - out.avoidable_sweep_runs;
  out.necessary = params.energy_per_run * (1.0 + lean_sweep);
  out.wasted = params.energy_per_run * (out.expected_failed_runs + out.avoidable_sweep_runs);
  return out;
}

CommunityWaste community_waste(const RedundancyParams& params, double projects,
                               util::EnergyPrice price, util::CarbonIntensity intensity) {
  require(projects >= 0.0, "community_waste: negative project count");
  const ProjectWaste per_project = project_waste(params);
  CommunityWaste out;
  out.projects = projects;
  out.wasted = per_project.wasted * projects;
  out.wasted_carbon = out.wasted * intensity;
  out.wasted_cost = out.wasted * price;
  return out;
}

util::Energy reporting_dividend(const RedundancyParams& params, double improved_rate) {
  require(improved_rate >= params.reproduction_success_rate && improved_rate <= 1.0,
          "reporting_dividend: improved rate must be in [current rate, 1]");
  RedundancyParams improved = params;
  improved.reproduction_success_rate = improved_rate;
  improved.avoidable_sweep_fraction = 0.0;  // settings published: no re-search
  return project_waste(params).wasted - project_waste(improved).wasted;
}

}  // namespace greenhpc::workload
