#pragma once
// Redundancy & reproducibility waste model (Sec. IV-A).
//
// "Many experiments usually begin with training known and proven models up
// to some pre-specified level of performance ... Doing so may require some
// hyper-parameter search ... resulting in multiple training runs and
// inevitably redundant runs, wasted compute, and additional energy costs.
// ... problems with reproducibility of research only compound these
// redundancies as (multiple) attempts at replication also waste resources."
//
// The model makes that arithmetic explicit. A project starts by reproducing
// a published baseline: each attempt succeeds with probability p (the
// field's effective reproducibility, driven by reporting quality), and a
// failed attempt costs a full training run. Hyper-parameter search adds
// sweep_size runs of which a fraction is avoidable with better reported
// settings. Scaling by projects per year gives the community-level waste the
// paper argues reporting standards would recover.

#include "util/units.hpp"

namespace greenhpc::workload {

struct RedundancyParams {
  /// Probability a single reproduction attempt succeeds. The paper's
  /// reporting agenda raises this (published hyper-parameters, settings,
  /// seeds); widespread values for ML reproduction are low.
  double reproduction_success_rate = 0.4;
  /// Attempts before the team gives up (failure still costs energy).
  int max_attempts = 5;
  /// Hyper-parameter configurations trained per project.
  int sweep_size = 30;
  /// Fraction of the sweep avoidable when the baseline's settings are
  /// fully reported (teams re-search what authors already searched).
  double avoidable_sweep_fraction = 0.5;
  /// Facility energy of one training run.
  util::Energy energy_per_run = util::kilowatt_hours(724.0);  // 1.3B-param run
};

struct ProjectWaste {
  double expected_attempts = 0.0;      ///< reproduction attempts per project
  double expected_failed_runs = 0.0;   ///< attempts beyond the successful one
  double avoidable_sweep_runs = 0.0;
  util::Energy necessary;              ///< one clean reproduction + lean sweep
  util::Energy wasted;                 ///< failures + avoidable sweep
  [[nodiscard]] double waste_fraction() const {
    const double total = necessary.joules() + wasted.joules();
    return total > 0.0 ? wasted.joules() / total : 0.0;
  }
};

/// Expected waste for one project under the given parameters.
[[nodiscard]] ProjectWaste project_waste(const RedundancyParams& params);

struct CommunityWaste {
  double projects = 0.0;
  util::Energy wasted;
  util::MassCo2 wasted_carbon;
  util::Money wasted_cost;
};

/// Scales project waste to a community (e.g. a conference cycle's worth of
/// submissions) at the given grid conditions.
[[nodiscard]] CommunityWaste community_waste(const RedundancyParams& params, double projects,
                                             util::EnergyPrice price,
                                             util::CarbonIntensity intensity);

/// The reporting-improvement counterfactual: waste recovered per project if
/// reporting lifts the reproduction rate from `params.p` to `improved_rate`
/// and eliminates the avoidable sweep fraction.
[[nodiscard]] util::Energy reporting_dividend(const RedundancyParams& params,
                                              double improved_rate);

}  // namespace greenhpc::workload
