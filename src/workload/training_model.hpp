#pragma once
// Training-cost model and the Fig. 1 compute-demand trend.
//
// Two pieces:
//  1. TrainingRunModel: parameters x tokens -> FLOPs -> GPU-hours -> energy,
//     cost, and CO2, the lifecycle arithmetic behind Sec. IV-A's GPT-3
//     discussion ("training ... was prohibitively costly and estimated at
//     around $5 million") and Sec. IV-B's measurement/reporting agenda.
//  2. ComputeTrendModel: the landmark-systems dataset behind Fig. 1 ("Modern
//     AI's Computational Demands", OpenAI/The Economist), with the two-era
//     doubling-time fit (~2-year Moore era pre-2012, ~3.4-month modern era).

#include <string>
#include <vector>

#include "stats/regression.hpp"
#include "util/units.hpp"

namespace greenhpc::workload {

struct TrainingRunSpec {
  std::string name = "model";
  double parameters = 1.0e9;  ///< trainable parameter count
  double tokens = 2.0e10;     ///< training tokens
  /// Sustained per-GPU training throughput (FLOP/s). Default: V100-class at
  /// ~125 TFLOP/s peak tensor throughput, ~28% utilization (the paper cites
  /// TPU utilization of 28% on average; GPUs fare similarly).
  double sustained_flops_per_gpu = 3.5e13;
  int gpus = 8;
  /// Average board+amortized-node power per GPU while training.
  util::Power power_per_gpu = util::watts(300.0);
  /// Facility PUE applied on top of IT energy.
  double pue = 1.30;
};

struct TrainingRunCost {
  double total_flops = 0.0;
  double gpu_hours = 0.0;
  util::Duration wall_clock;
  util::Energy it_energy;
  util::Energy facility_energy;  ///< it_energy * PUE
  util::Money cost;
  util::MassCo2 carbon;
};

class TrainingRunModel {
 public:
  /// Kaplan-style compute estimate: FLOPs ~= 6 * parameters * tokens.
  [[nodiscard]] static double estimate_flops(double parameters, double tokens);

  /// Full cost roll-up at the given electricity price and carbon intensity.
  [[nodiscard]] static TrainingRunCost cost(const TrainingRunSpec& spec, util::EnergyPrice price,
                                            util::CarbonIntensity intensity);
};

/// One point on the Fig. 1 chart.
struct LandmarkSystem {
  std::string name;
  double year = 2012.0;          ///< fractional publication year
  double petaflop_s_days = 1.0;  ///< training compute (1 PF/s-day = 8.64e19 FLOPs)
};

/// The Fig. 1 dataset: landmark systems 1958-2020 (OpenAI "AI and Compute"
/// values, approximated where the blog gives only chart positions).
[[nodiscard]] const std::vector<LandmarkSystem>& landmark_systems();

class ComputeTrendModel {
 public:
  /// Uses landmark_systems() by default.
  ComputeTrendModel();
  explicit ComputeTrendModel(std::vector<LandmarkSystem> systems);

  [[nodiscard]] const std::vector<LandmarkSystem>& systems() const { return systems_; }

  /// Doubling-time fit over systems with year in [from, to), in months.
  [[nodiscard]] stats::DoublingFit fit_era(double from_year, double to_year) const;

  /// The pre-2012 ("Moore") era fit.
  [[nodiscard]] stats::DoublingFit first_era() const { return fit_era(1900.0, 2012.0); }
  /// The modern large-scale era fit (2012-2018 inclusive; the OpenAI 3.4-month
  /// figure is measured to AlphaGo Zero — later points fall below the line).
  [[nodiscard]] stats::DoublingFit modern_era() const { return fit_era(2012.0, 2018.5); }

  /// Projected compute (PF/s-days) at `year` under an era's fit.
  [[nodiscard]] double project(const stats::DoublingFit& fit, double year) const;

  /// Energy (kWh) to train a run of `petaflop_s_days` at a given sustained
  /// efficiency (GFLOP/s per watt; ~20 for a V100-era accelerator at the
  /// facility level).
  [[nodiscard]] static double energy_kwh(double petaflop_s_days, double gflops_per_watt = 20.0);

 private:
  std::vector<LandmarkSystem> systems_;
};

}  // namespace greenhpc::workload
