#pragma once
// Job arrival process and workload mix.
//
// A nonhomogeneous Poisson process whose rate is the base rate times the
// DemandModulator factor. Each arrival draws a job class (debug / training /
// hyper-parameter sweep / inference / analysis), a GPU count, and a work
// amount from class-conditional distributions, reproducing the heterogeneous
// mix of an academic cluster (many short debug jobs, a heavy tail of
// multi-day training runs — cf. the SuperCloud workload papers the paper
// cites).

#include <vector>

#include "cluster/job.hpp"
#include "util/rng.hpp"
#include "workload/demand.hpp"
#include "workload/users.hpp"

namespace greenhpc::workload {

/// Distribution parameters for one job class.
struct ClassProfile {
  cluster::JobClass job_class = cluster::JobClass::kTraining;
  double weight = 1.0;  ///< relative arrival share
  /// GPU-count choices and weights (drawn jointly).
  std::vector<int> gpu_choices = {1, 2, 4, 8};
  std::vector<double> gpu_weights = {0.5, 0.25, 0.15, 0.10};
  /// Work per GPU: lognormal over busy-hours (median = exp(mu)).
  double log_hours_mu = 0.7;     ///< ~2 h median
  double log_hours_sigma = 1.0;
  /// Probability the job is flexible (deferrable by green policies).
  double flexible_probability = 0.0;
  /// Deadline slack (multiple of the job's runtime) when a deadline is set;
  /// <= 0 disables deadlines for the class.
  double deadline_slack = 0.0;
};

/// The default SuperCloud-like mix.
[[nodiscard]] std::vector<ClassProfile> default_mix();

struct ArrivalConfig {
  /// Base submissions per hour before modulation. With the default mix and
  /// the 448-GPU reference cluster this yields ~55-75% GPU occupancy.
  double base_rate_per_hour = 12.0;
  std::vector<ClassProfile> mix = default_mix();
};

class ArrivalProcess {
 public:
  ArrivalProcess(ArrivalConfig config, const DemandModulator* modulator);

  /// Optionally attributes submissions to a user population (activity
  /// weighted). Without one, all jobs carry user id 0. The population is
  /// borrowed and must outlive the process.
  ArrivalProcess(ArrivalConfig config, const DemandModulator* modulator,
                 const UserPopulation* population);

  /// Draws the submissions landing in [t, t+dt): Poisson count at the
  /// modulated rate, then one request each from the class mix.
  [[nodiscard]] std::vector<cluster::JobRequest> sample(util::TimePoint t, util::Duration dt,
                                                        util::Rng& rng) const;

  /// The modulated instantaneous rate (jobs/hour) at t.
  [[nodiscard]] double rate_per_hour(util::TimePoint t) const;

  /// Draws a single request from the mix (used by tests and by campaign
  /// planners that inject synthetic load).
  [[nodiscard]] cluster::JobRequest draw_request(util::TimePoint t, util::Rng& rng) const;

  [[nodiscard]] const ArrivalConfig& config() const { return config_; }

 private:
  ArrivalConfig config_;
  const DemandModulator* modulator_;   // non-owning, may be null (flat demand)
  const UserPopulation* population_ = nullptr;  // non-owning, may be null
  std::vector<double> class_weights_;
};

}  // namespace greenhpc::workload
