#pragma once
// User population with behavioural profiles.
//
// Sec. II-C's mechanism-design discussion hinges on heterogeneous users:
// some are patient ("job urgency/patience"), some value green computing
// ("the user's stated preferences on energy efficiency"), and some are
// strategic — they will "mis-characterize their preferences and select
// themselves into queues where resources are fastest" (adverse selection).
// UserProfile carries those traits; mechanism:: consumes them.

#include <cstdint>
#include <vector>

#include "cluster/job.hpp"
#include "util/rng.hpp"

namespace greenhpc::workload {

struct UserProfile {
  cluster::UserId id = 0;
  /// Willingness to wait, in (0, 1]: 1 = fully patient. Enters the utility
  /// model as tolerance for queue delay.
  double patience = 0.5;
  /// Intrinsic value placed on energy efficiency, in [0, 1].
  double green_preference = 0.3;
  /// Probability of reporting preferences truthfully in a self-selection
  /// mechanism; strategic users (low honesty) report whatever gets them the
  /// fastest queue.
  double honesty = 0.8;
  /// Relative submission activity (multiplies the base arrival share).
  double activity = 1.0;
};

struct PopulationConfig {
  std::size_t user_count = 200;
  /// Fraction of strategic users (honesty drawn low).
  double strategic_fraction = 0.3;
  /// Beta-ish shape controls via min/max uniform draws.
  double min_patience = 0.1;
  double max_patience = 1.0;
};

class UserPopulation {
 public:
  UserPopulation() = default;
  /// Draws a population with the given seed; deterministic.
  static UserPopulation generate(const PopulationConfig& config, util::Rng& rng);

  [[nodiscard]] const std::vector<UserProfile>& users() const { return users_; }
  [[nodiscard]] std::size_t size() const { return users_.size(); }
  [[nodiscard]] const UserProfile& user(cluster::UserId id) const;

  /// Draws a user id weighted by activity.
  [[nodiscard]] cluster::UserId sample_user(util::Rng& rng) const;

  /// Mean green preference / honesty, for reporting.
  [[nodiscard]] double mean_green_preference() const;
  [[nodiscard]] double mean_honesty() const;

 private:
  std::vector<UserProfile> users_;
  std::vector<double> activity_weights_;
};

}  // namespace greenhpc::workload
