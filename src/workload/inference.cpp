#include "workload/inference.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace greenhpc::workload {

using util::require;

InferenceFleet::InferenceFleet(InferenceFleetSpec spec) : spec_(spec) {
  require(spec_.peak_qps > 0.0, "InferenceFleet: peak QPS must be positive");
  require(spec_.qps_per_replica > 0.0, "InferenceFleet: replica QPS must be positive");
  require(spec_.headroom >= 1.0, "InferenceFleet: headroom must be >= 1");
  require(spec_.trough_fraction > 0.0 && spec_.trough_fraction <= 1.0,
          "InferenceFleet: trough fraction must be in (0,1]");
  require(spec_.replica_busy >= spec_.replica_idle, "InferenceFleet: busy power below idle");
  require(spec_.pue >= 1.0, "InferenceFleet: PUE must be >= 1");
}

double InferenceFleet::qps_at(util::TimePoint t) const {
  // Sinusoidal diurnal demand between trough_fraction*peak and peak,
  // peaking around 20:00 local.
  const double h = util::hour_of_day(t);
  const double phase = std::sin(2.0 * std::numbers::pi * (h - 14.0) / 24.0);  // max at 20:00
  const double mid = (1.0 + spec_.trough_fraction) / 2.0;
  const double amp = (1.0 - spec_.trough_fraction) / 2.0;
  return spec_.peak_qps * (mid + amp * phase);
}

int InferenceFleet::provisioned_replicas() const {
  return static_cast<int>(std::ceil(spec_.peak_qps * spec_.headroom / spec_.qps_per_replica));
}

double InferenceFleet::utilization_at(util::TimePoint t) const {
  const double capacity = static_cast<double>(provisioned_replicas()) * spec_.qps_per_replica;
  return std::min(1.0, qps_at(t) / capacity);
}

InferencePeriodCost InferenceFleet::serve(util::TimePoint start, util::TimePoint end) const {
  require(end > start, "InferenceFleet::serve: empty interval");
  InferencePeriodCost out;
  out.replicas = provisioned_replicas();

  const util::Duration step = util::hours(1);
  double util_total = 0.0;
  std::size_t samples = 0;
  for (util::TimePoint t = start; t < end; t += step) {
    const double u = utilization_at(t);
    util_total += u;
    ++samples;
    out.queries_served += qps_at(t) * step.seconds();
    // Replica power scales linearly with its utilization between idle/busy.
    const util::Power per_replica =
        spec_.replica_idle + (spec_.replica_busy - spec_.replica_idle) * u;
    out.it_energy += per_replica * step * out.replicas;
  }
  out.average_utilization = util_total / static_cast<double>(samples);
  out.facility_energy = out.it_energy * spec_.pue;
  if (out.queries_served > 0.0) {
    out.energy_per_1k_queries =
        util::joules(out.facility_energy.joules() / out.queries_served * 1000.0);
  }
  return out;
}

}  // namespace greenhpc::workload
