#pragma once
// Demand modulation: turning the calendar into a compute-demand signal.
//
// Sec. III: "Given the way deadlines are structured, we might expect a
// lagging relationship where activity or compute demand ... might pick up in
// anticipation of upcoming deadlines ... As deadlines approach, users are
// accelerating their workloads, finishing or repeating experiments." The
// modulator multiplies a base arrival rate by (diurnal x weekly x deadline)
// factors. Each upcoming deadline contributes an anticipatory ramp that
// builds from ~10 weeks out, peaks shortly before the date, and relaxes
// (with a brief post-deadline dip) afterwards.

#include <array>

#include "workload/conferences.hpp"

#include "util/calendar.hpp"

namespace greenhpc::workload {

struct DemandConfig {
  /// Peak fractional demand boost contributed by a single deadline.
  double deadline_boost = 0.13;
  /// Days before the deadline where the ramp peaks.
  double peak_days_before = 10.0;
  /// Gaussian width (days) of the anticipatory ramp.
  double ramp_width_days = 22.0;
  /// Post-deadline relief: fraction of the boost that becomes a dip,
  /// decaying over `relief_days`.
  double relief_fraction = 0.30;
  double relief_days = 7.0;
  /// Diurnal swing: day-time demand vs. the daily mean (+-), 0 disables.
  double diurnal_amplitude = 0.25;
  /// Weekend demand multiplier.
  double weekend_factor = 0.75;
};

class DemandModulator {
 public:
  DemandModulator(DeadlineCalendar calendar, DemandConfig config = {});

  /// Combined multiplier applied to the base arrival rate at time t.
  [[nodiscard]] double factor(util::TimePoint t) const;

  /// The deadline-driven component alone (1.0 when no deadline is near) —
  /// what the Fig. 5 analysis isolates.
  [[nodiscard]] double deadline_factor(util::TimePoint t) const;

  /// Day-of-week and hour-of-day component alone.
  [[nodiscard]] double calendar_factor(util::TimePoint t) const;

  /// Relative submission weight per research area at time t: a base
  /// popularity plus each nearby deadline's anticipatory contribution
  /// attributed to its venue's area. Supports the paper's future-work ask,
  /// "breakdown of activity and energy use by domain (e.g. NLP)".
  [[nodiscard]] std::array<double, 5> area_weights(util::TimePoint t) const;

  [[nodiscard]] const DeadlineCalendar& calendar() const { return calendar_; }
  [[nodiscard]] const DemandConfig& config() const { return config_; }

 private:
  DeadlineCalendar calendar_;
  DemandConfig config_;

  // Single-entry memo: every job sampled in one arrival step draws its area
  // from the same instant's weights, and the weight computation walks the
  // whole deadline calendar. Pure recompute avoidance.
  mutable bool memo_valid_ = false;
  mutable util::TimePoint memo_t_;
  mutable std::array<double, 5> memo_weights_{};
};

}  // namespace greenhpc::workload
