#pragma once
// Table I: the AI conference calendar and its deadline-driven demand signal.
//
// The paper (Sec. III) compares "the number of conference deadlines per
// month from January 2020 to end of year 2021 with trends in monthly energy
// usage" for the conferences in Table I, observing a July-2020 concentration
// and a notable spring-2021 cluster preceded by a sharp demand pickup from
// Jan/Feb 2021. We encode the same conference list; exact historical
// deadline dates are not recoverable from the paper, so dates are curated
// approximations of each venue's actual 2020/2021 call-for-papers — what
// matters for Fig. 5 is the monthly concentration pattern, which these dates
// preserve (documented in DESIGN.md's substitution table).

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/calendar.hpp"

namespace greenhpc::workload {

/// Research areas from Table I.
enum class Area : std::uint8_t {
  kNlpSpeech = 0,
  kComputerVision,
  kRobotics,
  kGeneralMl,
  kDataMining,
};

[[nodiscard]] const char* area_name(Area a);

struct Conference {
  std::string name;
  Area area;
  /// Paper-submission deadlines falling inside the observation window
  /// (some venues are biennial or skipped a year; those have one entry).
  std::vector<util::CivilDate> deadlines;
  /// Relative compute draw of the venue's community on a shared research
  /// cluster (NeurIPS-scale venues pull far more pre-deadline compute than
  /// a small workshop-adjacent conference). Drives the demand ramp.
  double weight = 1.0;
};

/// The Table I dataset (40 venues across five areas) with deadlines for the
/// Jan-2020 .. Dec-2021 window.
[[nodiscard]] const std::vector<Conference>& conference_table();

/// One dated deadline with its venue weight and research area.
struct Deadline {
  util::CivilDate date;
  double weight = 1.0;
  Area area = Area::kGeneralMl;

  friend constexpr auto operator<=>(const Deadline&, const Deadline&) = default;
};

/// Aggregated deadline view used by the demand model and the Fig. 5 bench.
class DeadlineCalendar {
 public:
  /// Builds from the Table I dataset.
  static DeadlineCalendar standard();

  /// Builds from an explicit deadline list (restructuring experiments).
  explicit DeadlineCalendar(std::vector<Deadline> deadlines);

  [[nodiscard]] const std::vector<Deadline>& deadlines() const { return deadlines_; }

  /// Number of deadlines in a calendar month — the Fig. 5 right axis.
  [[nodiscard]] int monthly_count(util::MonthKey month) const;

  /// Weight-summed deadlines in a month (the demand-relevant concentration).
  [[nodiscard]] double monthly_weight(util::MonthKey month) const;

  /// Sec. III restructuring option (1): same number of deadlines, spread
  /// uniformly across the window's months.
  [[nodiscard]] DeadlineCalendar spread_uniform() const;

  /// Option (2): deadlines concentrated in winter/early-spring months
  /// (Jan-Apr), "when preceding months are colder or see more sustainable
  /// fuel generation".
  [[nodiscard]] DeadlineCalendar concentrate_winter() const;

  /// Option (3): rolling submissions — no deadline spikes at all (an empty
  /// calendar; demand stays at its base rate).
  [[nodiscard]] DeadlineCalendar rolling() const;

  /// First and last month with any deadline (empty calendar -> nullopt).
  [[nodiscard]] std::optional<std::pair<util::MonthKey, util::MonthKey>> span() const;

 private:
  std::vector<Deadline> deadlines_;  // kept sorted by date
};

}  // namespace greenhpc::workload
