#include "workload/conferences.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace greenhpc::workload {

using util::CivilDate;
using util::require;

const char* area_name(Area a) {
  switch (a) {
    case Area::kNlpSpeech: return "NLP/Speech";
    case Area::kComputerVision: return "Computer Vision";
    case Area::kRobotics: return "Robotics";
    case Area::kGeneralMl: return "General ML";
    case Area::kDataMining: return "Data Mining";
  }
  return "unknown";
}

const std::vector<Conference>& conference_table() {
  // Dates are curated approximations of each venue's 2020/2021 CFP (see
  // header comment). Venues that are biennial or skipped a year carry a
  // single entry. Weights approximate each community's compute draw on a
  // shared ML cluster (large deep-learning venues ~3, mid-size ~1-2,
  // small/theory/IR venues ~0.5).
  static const std::vector<Conference> kTable = {
      // --- NLP / Speech ---------------------------------------------------
      {"EACL", Area::kNlpSpeech, {{2020, 10, 7}}, 1.0},
      {"InterSpeech", Area::kNlpSpeech, {{2020, 3, 30}, {2021, 4, 2}}, 2.0},
      {"EMNLP", Area::kNlpSpeech, {{2020, 6, 1}, {2021, 5, 17}}, 3.0},
      {"AKBC", Area::kNlpSpeech, {{2020, 4, 15}, {2021, 4, 9}}, 0.5},
      {"ICASSP", Area::kNlpSpeech, {{2020, 10, 19}, {2021, 10, 6}}, 2.0},
      {"ISMIR", Area::kNlpSpeech, {{2020, 4, 20}, {2021, 4, 23}}, 0.5},
      {"AACL-IJCNLP", Area::kNlpSpeech, {{2020, 6, 26}}, 1.0},
      {"COLING", Area::kNlpSpeech, {{2020, 7, 1}}, 1.5},
      {"CoNLL", Area::kNlpSpeech, {{2020, 7, 17}, {2021, 6, 14}}, 0.5},
      {"WMT", Area::kNlpSpeech, {{2020, 7, 15}, {2021, 7, 30}}, 0.5},
      // --- Computer Vision ------------------------------------------------
      {"ICME", Area::kComputerVision, {{2020, 12, 13}, {2021, 12, 12}}, 1.0},
      {"ICIP", Area::kComputerVision, {{2020, 2, 5}, {2021, 2, 10}}, 1.0},
      {"SIGGRAPH", Area::kComputerVision, {{2020, 1, 22}, {2021, 1, 27}}, 1.0},
      {"MIDL", Area::kComputerVision, {{2020, 1, 17}, {2020, 12, 18}}, 0.5},
      {"ICCV", Area::kComputerVision, {{2021, 3, 17}}, 2.5},  // odd years only
      {"FG", Area::kComputerVision, {{2020, 7, 8}, {2021, 8, 2}}, 0.5},
      {"ICMI", Area::kComputerVision, {{2020, 5, 4}, {2021, 5, 26}}, 0.5},
      {"BMVC", Area::kComputerVision, {{2020, 4, 30}, {2021, 6, 25}}, 1.0},
      {"WACV", Area::kComputerVision, {{2020, 8, 14}, {2021, 8, 18}}, 1.0},
      // --- Robotics ---------------------------------------------------------
      {"IROS", Area::kRobotics, {{2020, 3, 1}, {2021, 3, 5}}, 2.0},
      {"RSS", Area::kRobotics, {{2020, 1, 31}, {2021, 3, 1}}, 1.0},
      {"CoRL", Area::kRobotics, {{2020, 7, 7}, {2021, 7, 23}}, 1.0},
      {"ICRA", Area::kRobotics, {{2020, 10, 31}, {2021, 9, 14}}, 2.0},
      // --- General ML -------------------------------------------------------
      {"COLT", Area::kGeneralMl, {{2020, 1, 31}, {2021, 2, 12}}, 0.5},
      {"ICCC", Area::kGeneralMl, {{2020, 1, 20}, {2021, 1, 28}}, 0.5},
      {"ICPR", Area::kGeneralMl, {{2020, 3, 2}}, 1.0},  // biennial in the window
      {"AAMAS", Area::kGeneralMl, {{2020, 11, 13}, {2021, 10, 8}}, 1.0},
      {"AISTATS", Area::kGeneralMl, {{2020, 10, 15}, {2021, 10, 15}}, 1.5},
      {"CHIL", Area::kGeneralMl, {{2020, 1, 26}, {2021, 1, 13}}, 0.5},
      {"ECML-PKDD", Area::kGeneralMl, {{2020, 4, 23}, {2021, 3, 26}}, 1.0},
      {"NeurIPS", Area::kGeneralMl, {{2020, 6, 5}, {2021, 5, 26}}, 3.0},
      {"ACML", Area::kGeneralMl, {{2020, 6, 20}, {2021, 7, 2}}, 0.5},
      {"AAAI", Area::kGeneralMl, {{2020, 9, 9}, {2021, 9, 8}}, 3.0},
      {"ICLR", Area::kGeneralMl, {{2020, 10, 2}, {2021, 10, 6}}, 3.0},
      // --- Data Mining -------------------------------------------------------
      {"SDM", Area::kDataMining, {{2020, 10, 13}, {2021, 10, 19}}, 0.5},
      {"KDD", Area::kDataMining, {{2020, 2, 13}, {2021, 2, 8}}, 2.0},
      {"SIGIR", Area::kDataMining, {{2020, 1, 28}, {2021, 2, 2}}, 1.0},
      {"RecSys", Area::kDataMining, {{2020, 4, 6}, {2021, 4, 30}}, 1.0},
      {"CIKM", Area::kDataMining, {{2020, 5, 8}, {2021, 5, 19}}, 1.0},
      {"ICDM", Area::kDataMining, {{2020, 6, 11}, {2021, 6, 11}}, 1.0},
      {"WSDM", Area::kDataMining, {{2020, 8, 16}, {2021, 8, 16}}, 1.0},
      {"WWW", Area::kDataMining, {{2020, 10, 19}, {2021, 10, 21}}, 1.5},
  };
  return kTable;
}

DeadlineCalendar DeadlineCalendar::standard() {
  std::vector<Deadline> all;
  for (const Conference& c : conference_table())
    for (const CivilDate& d : c.deadlines) all.push_back({d, c.weight, c.area});
  return DeadlineCalendar(std::move(all));
}

DeadlineCalendar::DeadlineCalendar(std::vector<Deadline> deadlines)
    : deadlines_(std::move(deadlines)) {
  for (const Deadline& d : deadlines_)
    require(d.weight > 0.0, "DeadlineCalendar: weights must be positive");
  std::sort(deadlines_.begin(), deadlines_.end());
}

int DeadlineCalendar::monthly_count(util::MonthKey month) const {
  int count = 0;
  for (const Deadline& d : deadlines_)
    if (d.date.year == month.year && d.date.month == month.month) ++count;
  return count;
}

double DeadlineCalendar::monthly_weight(util::MonthKey month) const {
  double total = 0.0;
  for (const Deadline& d : deadlines_)
    if (d.date.year == month.year && d.date.month == month.month) total += d.weight;
  return total;
}

std::optional<std::pair<util::MonthKey, util::MonthKey>> DeadlineCalendar::span() const {
  if (deadlines_.empty()) return std::nullopt;
  const CivilDate& first = deadlines_.front().date;
  const CivilDate& last = deadlines_.back().date;
  return std::make_pair(util::MonthKey{first.year, first.month},
                        util::MonthKey{last.year, last.month});
}

DeadlineCalendar DeadlineCalendar::spread_uniform() const {
  if (deadlines_.empty()) return *this;
  const auto [first, last] = *span();
  const int month_count = last.index_from_epoch() - first.index_from_epoch() + 1;
  const std::size_t n = deadlines_.size();
  std::vector<Deadline> spread;
  spread.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Place deadline i in the month proportional to its rank, mid-month.
    const int offset = static_cast<int>(i * static_cast<std::size_t>(month_count) / n);
    const util::MonthKey mk = util::MonthKey::from_index(first.index_from_epoch() + offset);
    const int day = 5 + static_cast<int>(i % 3) * 8;  // 5th/13th/21st, avoids stacking
    spread.push_back({CivilDate{mk.year, mk.month, day}, deadlines_[i].weight,
                      deadlines_[i].area});
  }
  return DeadlineCalendar(std::move(spread));
}

DeadlineCalendar DeadlineCalendar::concentrate_winter() const {
  if (deadlines_.empty()) return *this;
  std::vector<Deadline> winter;
  winter.reserve(deadlines_.size());
  std::size_t i = 0;
  for (const Deadline& d : deadlines_) {
    // Keep the year, remap to Jan-Apr so the 8-10 week prep ramp lands in
    // Nov-Mar, the coldest (cheap cooling) and greenest-adjacent months.
    const int month = 1 + static_cast<int>(i % 4);
    const int day = 4 + static_cast<int>((i / 4) % 3) * 9;
    winter.push_back({CivilDate{d.date.year, month, day}, d.weight, d.area});
    ++i;
  }
  return DeadlineCalendar(std::move(winter));
}

DeadlineCalendar DeadlineCalendar::rolling() const { return DeadlineCalendar({}); }

}  // namespace greenhpc::workload
