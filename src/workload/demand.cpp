#include "workload/demand.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace greenhpc::workload {

using util::require;

DemandModulator::DemandModulator(DeadlineCalendar calendar, DemandConfig config)
    : calendar_(std::move(calendar)), config_(config) {
  require(config_.deadline_boost >= 0.0, "DemandModulator: negative deadline boost");
  require(config_.ramp_width_days > 0.0, "DemandModulator: ramp width must be positive");
  require(config_.relief_days > 0.0, "DemandModulator: relief days must be positive");
  require(config_.weekend_factor > 0.0, "DemandModulator: weekend factor must be positive");
}

double DemandModulator::deadline_factor(util::TimePoint t) const {
  double factor = 1.0;
  for (const Deadline& d : calendar_.deadlines()) {
    // Deadlines are effectively end-of-day (23:59 AoE in practice).
    const util::TimePoint when = util::to_timepoint(d.date, 23.99);
    const double days_until = (when - t).days();
    if (days_until > 84.0 || days_until < -35.0) continue;  // outside influence
    if (days_until >= 0.0) {
      // Anticipatory ramp peaking `peak_days_before` days out, scaled by the
      // venue's community compute draw.
      const double z = (days_until - config_.peak_days_before) / config_.ramp_width_days;
      factor += config_.deadline_boost * d.weight * std::exp(-0.5 * z * z);
    } else {
      // Post-deadline relief dip, decaying over relief_days.
      factor -= config_.deadline_boost * config_.relief_fraction * d.weight *
                std::exp(days_until / config_.relief_days);
    }
  }
  return std::max(0.1, factor);
}

double DemandModulator::calendar_factor(util::TimePoint t) const {
  const double h = util::hour_of_day(t);
  // Submissions peak mid-afternoon, trough pre-dawn.
  double factor = 1.0 + config_.diurnal_amplitude *
                            std::sin(2.0 * std::numbers::pi * (h - 9.0) / 24.0);
  if (util::day_of_week(t) >= 5) factor *= config_.weekend_factor;
  return std::max(0.05, factor);
}

double DemandModulator::factor(util::TimePoint t) const {
  return deadline_factor(t) * calendar_factor(t);
}

std::array<double, 5> DemandModulator::area_weights(util::TimePoint t) const {
  if (memo_valid_ && memo_t_.seconds_since_epoch() == t.seconds_since_epoch()) {
    return memo_weights_;
  }
  // Base popularity of each area on a shared ML cluster (general ML and
  // vision dominate, mirroring the Table-I venue weighting).
  std::array<double, 5> weights = {/*NLP*/ 0.22, /*CV*/ 0.26, /*Robotics*/ 0.10,
                                   /*GeneralML*/ 0.30, /*DataMining*/ 0.12};
  for (const Deadline& d : calendar_.deadlines()) {
    const util::TimePoint when = util::to_timepoint(d.date, 23.99);
    const double days_until = (when - t).days();
    if (days_until < 0.0 || days_until > 84.0) continue;
    const double z = (days_until - config_.peak_days_before) / config_.ramp_width_days;
    weights[static_cast<std::size_t>(d.area)] +=
        config_.deadline_boost * d.weight * std::exp(-0.5 * z * z);
  }
  memo_t_ = t;
  memo_weights_ = weights;
  memo_valid_ = true;
  return weights;
}

}  // namespace greenhpc::workload
