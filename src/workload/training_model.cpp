#include "workload/training_model.hpp"

#include "util/error.hpp"

namespace greenhpc::workload {

using util::require;

double TrainingRunModel::estimate_flops(double parameters, double tokens) {
  require(parameters > 0.0 && tokens > 0.0, "estimate_flops: inputs must be positive");
  return 6.0 * parameters * tokens;
}

TrainingRunCost TrainingRunModel::cost(const TrainingRunSpec& spec, util::EnergyPrice price,
                                       util::CarbonIntensity intensity) {
  require(spec.gpus >= 1, "TrainingRunModel: need at least one GPU");
  require(spec.sustained_flops_per_gpu > 0.0, "TrainingRunModel: throughput must be positive");
  require(spec.pue >= 1.0, "TrainingRunModel: PUE must be >= 1");

  TrainingRunCost out;
  out.total_flops = estimate_flops(spec.parameters, spec.tokens);
  const double gpu_seconds = out.total_flops / spec.sustained_flops_per_gpu;
  out.gpu_hours = gpu_seconds / 3600.0;
  out.wall_clock = util::seconds(gpu_seconds / static_cast<double>(spec.gpus));
  out.it_energy = spec.power_per_gpu * util::seconds(gpu_seconds);
  out.facility_energy = out.it_energy * spec.pue;
  out.cost = out.facility_energy * price;
  out.carbon = out.facility_energy * intensity;
  return out;
}

const std::vector<LandmarkSystem>& landmark_systems() {
  // Values follow OpenAI's "AI and Compute" chart (petaflop/s-days); where
  // the blog gives only chart positions we use order-of-magnitude readings.
  // GPT-3 is appended from its published 3.14e23 FLOPs ~= 3640 PF/s-days.
  static const std::vector<LandmarkSystem> kSystems = {
      {"Perceptron", 1958.0, 1.0e-12},
      {"ADALINE", 1960.0, 2.5e-12},
      {"Neocognitron", 1980.0, 2.0e-9},
      {"NETtalk", 1987.5, 1.5e-8},
      {"ALVINN", 1988.5, 5.0e-8},
      {"TD-Gammon v2.1", 1992.5, 2.0e-7},
      {"LeNet-5", 1998.0, 8.0e-7},
      {"Deep Belief Nets", 2006.5, 2.0e-5},
      {"BiLSTM for Speech", 2009.0, 8.0e-5},
      {"AlexNet", 2012.5, 5.8e-3},
      {"Dropout", 2012.9, 2.4e-3},
      {"Visualizing CNNs", 2013.9, 6.0e-3},
      {"Seq2Seq", 2014.7, 7.0e-3},
      {"VGG", 2014.7, 9.5e-2},
      {"GoogleNet", 2014.7, 1.7e-2},
      {"DeepSpeech2", 2015.9, 2.6e-1},
      {"ResNet-152", 2015.9, 2.3e-1},
      {"Xception", 2016.8, 4.5e-1},
      {"Neural Machine Translation", 2016.7, 1.0e2},
      {"Neural Architecture Search", 2016.9, 1.9e2},
      {"AlphaZero", 2017.9, 3.4e2},
      {"AlphaGo Zero", 2017.8, 1.86e3},
      {"GPT-3", 2020.4, 3.64e3},
  };
  return kSystems;
}

ComputeTrendModel::ComputeTrendModel() : systems_(landmark_systems()) {}

ComputeTrendModel::ComputeTrendModel(std::vector<LandmarkSystem> systems)
    : systems_(std::move(systems)) {
  require(!systems_.empty(), "ComputeTrendModel: empty systems list");
}

stats::DoublingFit ComputeTrendModel::fit_era(double from_year, double to_year) const {
  std::vector<double> years;
  std::vector<double> compute;
  for (const LandmarkSystem& s : systems_) {
    if (s.year >= from_year && s.year < to_year) {
      years.push_back(s.year);
      compute.push_back(s.petaflop_s_days);
    }
  }
  require(years.size() >= 2, "ComputeTrendModel::fit_era: need at least two systems in era");
  stats::DoublingFit fit = stats::doubling_fit(years, compute);
  fit.doubling_time *= 12.0;  // years -> months
  return fit;
}

double ComputeTrendModel::project(const stats::DoublingFit& fit, double year) const {
  stats::DoublingFit in_years = fit;
  in_years.doubling_time /= 12.0;
  return in_years.predict(year);
}

double ComputeTrendModel::energy_kwh(double petaflop_s_days, double gflops_per_watt) {
  require(petaflop_s_days >= 0.0, "energy_kwh: negative compute");
  require(gflops_per_watt > 0.0, "energy_kwh: efficiency must be positive");
  // 1 PF/s-day = 1e15 FLOP/s * 86400 s = 8.64e19 FLOPs.
  const double flops = petaflop_s_days * 8.64e19;
  const double joules = flops / (gflops_per_watt * 1.0e9);
  return joules / 3.6e6;
}

}  // namespace greenhpc::workload
