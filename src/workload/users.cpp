#include "workload/users.hpp"

#include "util/error.hpp"

namespace greenhpc::workload {

using util::require;

UserPopulation UserPopulation::generate(const PopulationConfig& config, util::Rng& rng) {
  require(config.user_count >= 1, "UserPopulation: need at least one user");
  require(config.strategic_fraction >= 0.0 && config.strategic_fraction <= 1.0,
          "UserPopulation: strategic fraction must be in [0,1]");
  require(config.min_patience > 0.0 && config.min_patience <= config.max_patience &&
              config.max_patience <= 1.0,
          "UserPopulation: patience bounds must satisfy 0 < min <= max <= 1");

  UserPopulation pop;
  pop.users_.reserve(config.user_count);
  for (std::size_t i = 0; i < config.user_count; ++i) {
    UserProfile u;
    u.id = static_cast<cluster::UserId>(i);
    u.patience = rng.uniform(config.min_patience, config.max_patience);
    u.green_preference = rng.uniform01();
    const bool strategic = rng.bernoulli(config.strategic_fraction);
    u.honesty = strategic ? rng.uniform(0.0, 0.3) : rng.uniform(0.7, 1.0);
    // Activity is heavy-tailed: a few users generate most jobs (typical of
    // shared academic clusters).
    u.activity = rng.lognormal(0.0, 1.0);
    pop.users_.push_back(u);
    pop.activity_weights_.push_back(u.activity);
  }
  return pop;
}

const UserProfile& UserPopulation::user(cluster::UserId id) const {
  require(static_cast<std::size_t>(id) < users_.size(), "UserPopulation: unknown user id");
  return users_[static_cast<std::size_t>(id)];
}

cluster::UserId UserPopulation::sample_user(util::Rng& rng) const {
  require(!users_.empty(), "UserPopulation: empty population");
  return users_[rng.weighted_index(activity_weights_)].id;
}

double UserPopulation::mean_green_preference() const {
  require(!users_.empty(), "UserPopulation: empty population");
  double total = 0.0;
  for (const auto& u : users_) total += u.green_preference;
  return total / static_cast<double>(users_.size());
}

double UserPopulation::mean_honesty() const {
  require(!users_.empty(), "UserPopulation: empty population");
  double total = 0.0;
  for (const auto& u : users_) total += u.honesty;
  return total / static_cast<double>(users_.size());
}

}  // namespace greenhpc::workload
