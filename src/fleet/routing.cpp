#include "fleet/routing.hpp"

#include <limits>

#include "fleet/forecast_router.hpp"
#include "obs/decision.hpp"
#include "util/error.hpp"

namespace greenhpc::fleet {

namespace {

using util::require;

/// Greedy selection over regions that can start the job now, scored by
/// `marginal` (lower is better); least-pressure fallback when none fit.
/// Reactive routers score on instantaneous signals only, so the decision
/// record's integrated and instantaneous columns coincide.
template <typename ScoreFn>
std::size_t greedy_route(const cluster::JobRequest& request, const RoutingContext& ctx,
                         ScoreFn marginal) {
  std::size_t best = ctx.regions.size();
  double best_score = std::numeric_limits<double>::infinity();
  for (const RegionView& r : ctx.regions) {
    if (!r.admit_ok || !r.fits(request.gpus)) {
      if (ctx.explain != nullptr) ctx.explain->scores.push_back({r.index, 0.0, 0.0, false});
      continue;
    }
    const double score = marginal(r);
    if (ctx.explain != nullptr) ctx.explain->scores.push_back({r.index, score, score, true});
    if (score < best_score) {
      best_score = score;
      best = r.index;
    }
  }
  if (best == ctx.regions.size()) {
    const std::size_t pick = least_pressure_region(ctx.regions);
    if (ctx.explain != nullptr) {
      ctx.explain->picked = pick;
      ctx.explain->instantaneous_pick = pick;
      ctx.explain->fallback_pressure = true;
      ctx.explain->note = "all_regions_full";
    }
    return pick;
  }
  if (ctx.explain != nullptr) {
    ctx.explain->picked = best;
    ctx.explain->instantaneous_pick = best;
  }
  return best;
}

}  // namespace

std::size_t least_pressure_region(std::span<const RegionView> regions) {
  // Healthy regions outrank unhealthy ones outright; pressure only breaks
  // ties within the same health class. When every region is blacked out the
  // comparison degenerates to the plain pressure order — a router must still
  // return a valid index, and queueing at the least-loaded site is the best
  // of the bad options.
  std::size_t best = 0;
  for (std::size_t i = 1; i < regions.size(); ++i) {
    const RegionView& r = regions[i];
    const RegionView& b = regions[best];
    if (r.admit_ok != b.admit_ok) {
      if (r.admit_ok) best = i;
      continue;
    }
    if (r.pressure() < b.pressure() ||
        (r.pressure() == b.pressure() && r.free_gpus > b.free_gpus)) {
      best = i;
    }
  }
  return best;
}

util::Energy estimated_job_energy(const cluster::JobRequest& request, const RegionView& region) {
  return region.busy_gpu_power * util::seconds(request.work_gpu_seconds);
}

std::size_t RoundRobinRouter::route(const cluster::JobRequest& /*request*/,
                                    const RoutingContext& ctx) {
  require(!ctx.regions.empty(), "RoundRobinRouter: empty fleet");
  std::size_t pick = next_ % ctx.regions.size();
  // Skip blacked-out regions; if every region is dark, keep the raw pick so
  // the rotation (and the zero-fault path) is untouched.
  for (std::size_t tried = 0; tried < ctx.regions.size(); ++tried) {
    const std::size_t i = (pick + tried) % ctx.regions.size();
    if (ctx.regions[i].admit_ok) {
      pick = i;
      break;
    }
  }
  next_ = (pick + 1) % ctx.regions.size();
  if (ctx.explain != nullptr) {
    ctx.explain->picked = pick;
    ctx.explain->instantaneous_pick = pick;
    ctx.explain->note = "round_robin";
  }
  return pick;
}

std::size_t LeastLoadedRouter::route(const cluster::JobRequest& /*request*/,
                                     const RoutingContext& ctx) {
  require(!ctx.regions.empty(), "LeastLoadedRouter: empty fleet");
  const std::size_t pick = least_pressure_region(ctx.regions);
  if (ctx.explain != nullptr) {
    ctx.explain->picked = pick;
    ctx.explain->instantaneous_pick = pick;
    ctx.explain->note = "least_pressure";
  }
  return pick;
}

std::size_t CostGreedyRouter::route(const cluster::JobRequest& request,
                                    const RoutingContext& ctx) {
  require(!ctx.regions.empty(), "CostGreedyRouter: empty fleet");
  return greedy_route(request, ctx, [&](const RegionView& r) {
    util::Money cost = estimated_job_energy(request, r) * r.price;
    if (!r.is_home) cost += ctx.transfer_energy * r.price;
    return cost.dollars();
  });
}

std::size_t CarbonGreedyRouter::route(const cluster::JobRequest& request,
                                      const RoutingContext& ctx) {
  require(!ctx.regions.empty(), "CarbonGreedyRouter: empty fleet");
  return greedy_route(request, ctx, [&](const RegionView& r) {
    util::MassCo2 carbon = estimated_job_energy(request, r) * r.carbon;
    if (!r.is_home) carbon += ctx.transfer_energy * r.carbon;
    return carbon.kilograms();
  });
}

std::unique_ptr<RoutingPolicy> make_router(const std::string& name) {
  return make_router(name, forecast::RollingForecasterConfig{}.model,
                     forecast::RollingForecasterConfig{}.horizon);
}

std::unique_ptr<RoutingPolicy> make_router(const std::string& name,
                                           const std::string& forecast_model,
                                           util::Duration forecast_horizon) {
  if (name == "round_robin") return std::make_unique<RoundRobinRouter>();
  if (name == "least_loaded") return std::make_unique<LeastLoadedRouter>();
  if (name == "cost_greedy") return std::make_unique<CostGreedyRouter>();
  if (name == "carbon_greedy") return std::make_unique<CarbonGreedyRouter>();
  if (name == "carbon_forecast" || name == "cost_forecast") {
    ForecastRouterConfig config;
    config.forecaster.model = forecast_model;
    config.forecaster.horizon = forecast_horizon;
    return std::make_unique<ForecastRouter>(name == "carbon_forecast"
                                                ? ForecastRouter::Objective::kCarbon
                                                : ForecastRouter::Objective::kCost,
                                            config);
  }
  return nullptr;
}

const char* router_names() {
  return "round_robin | least_loaded | cost_greedy | carbon_greedy | cost_forecast | "
         "carbon_forecast";
}

}  // namespace greenhpc::fleet
