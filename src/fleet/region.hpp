#pragma once
// Region profiles: the per-site environment a fleet member runs in.
//
// The paper's levers are when and *where* A.I. jobs run: the same GPU-hour
// costs different dollars, carbon, and water depending on the grid it draws
// from (Sec. II-A's "implicit environmental opportunity cost"). A
// RegionProfile bundles everything that varies by site — climate normals,
// fuel mix, LMP calibration, emission factors, cluster size, timezone — so a
// FleetCoordinator can compose several core::Datacenter twins across
// heterogeneous grid regions. make_reference_fleet() ships four stylized
// regions spanning the realistic spread of US grid carbon intensities.

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "grid/carbon.hpp"
#include "grid/connection.hpp"
#include "grid/fuel_mix.hpp"
#include "grid/price.hpp"
#include "thermal/cooling.hpp"
#include "thermal/weather.hpp"

namespace greenhpc::fleet {

/// Everything that distinguishes one fleet site from another.
struct RegionProfile {
  std::string name = "region";
  cluster::ClusterSpec cluster;
  thermal::WeatherConfig weather;
  thermal::CoolingConfig cooling;
  grid::FuelMixConfig fuel_mix;
  grid::PriceConfig price;
  grid::EmissionFactors emissions;
  grid::GridConnectionConfig connection;
  /// Hours ahead (+) or behind (-) the fleet's home region; shifts the
  /// site's diurnal weather / solar / price phases on the shared clock.
  double timezone_offset_hours = 0.0;
};

/// The built-in reference regions, in order:
///   0 "iso-ne"        — the paper's Boston/ISO-NE twin (home region)
///   1 "ercot"         — hot-summer, gas-heavy, volatile-price Texas-like grid
///   2 "columbia-hydro"— mild Pacific-Northwest site on a hydro-dominated grid
///   3 "plains-wind"   — cold wind-belt site, high wind share over a coal base
/// Profiles differ in cluster size, climate, fuel mix, prices, and timezone,
/// giving routing policies a real spread of $/kWh and gCO2/kWh to exploit.
[[nodiscard]] std::vector<RegionProfile> make_reference_fleet();

/// A fleet of `count` regions for continental-scale runs. The first
/// min(count, 4) entries are the reference profiles unchanged (so small
/// fleets stay comparable to published results); beyond that, each region i
/// is a deterministic perturbation of reference profile i % 4 — cluster size
/// x [0.5, 1.5), scaled infrastructure/cooling, shifted climate normals,
/// timezone in [-8, +4] h, price base x [0.8, 1.2), solar/wind x [0.7, 1.3)
/// — derived from SplitMix64(i), so profile i is a pure function of i.
[[nodiscard]] std::vector<RegionProfile> make_synthetic_fleet(std::size_t count);

/// Total GPUs across a set of profiles (for sizing fleet-wide arrival rates).
[[nodiscard]] int fleet_total_gpus(const std::vector<RegionProfile>& profiles);

/// GPU count of the single-site reference twin (224 nodes x 2 V100) — fleet
/// arrival rates are quoted in jobs/h per this many GPUs.
inline constexpr int kReferenceSiteGpus = 448;

/// Default fleet submission pressure, jobs/h per reference site's worth of
/// GPUs. Slightly below the single-site reference rate (12): capacity-blind
/// baselines like round-robin overload the smallest region when the fleet
/// runs as hot as one balanced site, which would confound router
/// comparisons with backlog effects.
inline constexpr double kDefaultFleetJobsPerHour = 9.0;

/// Fleet-wide arrival rate: `per_site_rate` jobs/h per kReferenceSiteGpus,
/// scaled to the profiles' aggregate capacity.
[[nodiscard]] double scaled_fleet_rate(const std::vector<RegionProfile>& profiles,
                                       double per_site_rate = kDefaultFleetJobsPerHour);

}  // namespace greenhpc::fleet
