#pragma once
// Forecast-integrated fleet routing (Sec. II-C's forecasting models applied
// to the *where* dimension of Eq. 1).
//
// The greedy routers price a job at each region's instantaneous LMP / grid
// intensity — but a multi-hour job does not run at the arrival tick's
// conditions, it runs through the next several hours of each region's price
// and fuel-mix cycle. A ForecastRouter keeps one RollingForecaster per
// region (fed every fleet control step via RoutingPolicy::observe) and
// scores each candidate region by the forecast *integrated over the job's
// expected runtime*: mean predicted intensity (or price) across the runtime
// window times the job's estimated energy, plus the network-transfer
// penalty at the destination. Regions whose forecaster has not warmed up —
// or whose realized skill tripped the MAPE gate — are scored at their
// instantaneous signal, so the router degrades region-by-region to exactly
// the reactive greedy behavior.
//
// Standalone the router owns a private bank; under a FleetCoordinator it
// adopts the coordinator's ForecasterHub bank for its signal, sharing the
// per-region forecasters with the migration planner (attach_forecasts).

#include <memory>
#include <vector>

#include "fleet/routing.hpp"
#include "forecast/bank.hpp"
#include "forecast/hub.hpp"

namespace greenhpc::fleet {

struct ForecastRouterConfig {
  /// Per-region signal forecaster (model, horizon, refit cadence, skill
  /// gate). The horizon caps how much of a long job's runtime the
  /// integration can see; the tail beyond it is priced at the last
  /// predicted value's step.
  forecast::RollingForecasterConfig forecaster;
  /// The forecast may only override the instantaneous (persistence) choice
  /// when it predicts at least this fractional score improvement — grid
  /// signals are smooth enough that "now" is a strong estimator, so
  /// low-confidence drift flips are suppressed as noise.
  double override_margin = 0.02;
};

class ForecastRouter final : public RoutingPolicy {
 public:
  /// What the integrated score minimizes: the job's forecast carbon
  /// footprint or its forecast electricity cost.
  enum class Objective : std::uint8_t { kCarbon, kCost };

  explicit ForecastRouter(Objective objective, ForecastRouterConfig config = {});

  [[nodiscard]] const char* name() const override {
    return objective_ == Objective::kCarbon ? "carbon_forecast" : "cost_forecast";
  }
  void observe(util::TimePoint now, std::span<const RegionView> regions) override;
  void attach_forecasts(forecast::ForecasterHub& hub) override;
  [[nodiscard]] const forecast::RollingForecasterConfig* forecaster_config() const override {
    return &config_.forecaster;
  }
  [[nodiscard]] std::size_t route(const cluster::JobRequest& request,
                                  const RoutingContext& ctx) override;

  [[nodiscard]] Objective objective() const { return objective_; }
  [[nodiscard]] const ForecastRouterConfig& config() const { return config_; }
  /// Realized per-region forecast skill for telemetry surfaces (one report
  /// per region observed so far, in region-index order).
  [[nodiscard]] std::vector<forecast::SkillReport> skills() const;

  /// The forecast-integrated mean signal (kgCO2/kWh or $/MWh) a job running
  /// `runtime` at region `index` would experience; falls back to
  /// `instantaneous` when that region's forecast is not reliable. Exposed
  /// for tests.
  [[nodiscard]] double integrated_signal(std::size_t index, util::Duration runtime,
                                         double instantaneous) const;

 private:
  [[nodiscard]] double signal_of(const RegionView& region) const;

  Objective objective_;
  ForecastRouterConfig config_;
  /// One forecaster per region — private by default, the hub's shared bank
  /// after attach_forecasts.
  std::shared_ptr<forecast::ForecasterBank> bank_;
};

}  // namespace greenhpc::fleet
