#include "fleet/region.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/rng.hpp"

namespace greenhpc::fleet {

namespace {

// Home region: the paper's Boston / ISO-NE calibration — every config block
// at its defaults, 224 nodes x 2 V100.
RegionProfile iso_ne() {
  RegionProfile r;
  r.name = "iso-ne";
  r.timezone_offset_hours = 0.0;
  return r;
}

// Texas-like grid: hot summers, large wind fleet over a gas/coal base, cheap
// but scarcity-spiky energy-only market.
RegionProfile ercot() {
  RegionProfile r;
  r.name = "ercot";
  r.timezone_offset_hours = -1.0;  // Central vs Eastern

  r.cluster.node_count = 192;
  r.cluster.fixed_infrastructure = util::kilowatts(52.0);

  r.weather.normal_celsius = {10.0, 12.0, 16.0, 20.5, 25.0, 29.0,
                              31.0, 31.5, 27.5, 21.5, 15.0, 11.0};
  r.weather.diurnal_amplitude = 6.0;
  r.weather.synoptic_amplitude = 3.5;

  // Plant engineered for heat: wider envelope, more capacity per GPU.
  r.cooling.free_cooling_celsius = 8.0;
  r.cooling.saturation_celsius = 38.0;
  r.cooling.max_overhead = 0.55;
  r.cooling.cooling_capacity = util::kilowatts(150.0);

  r.fuel_mix.solar_pct_by_month = {1.8, 2.2, 3.0, 3.6, 4.0, 4.2,
                                   4.2, 4.0, 3.4, 2.8, 2.0, 1.6};
  r.fuel_mix.wind_pct_by_month = {26.0, 27.0, 30.0, 29.0, 26.0, 22.0,
                                  18.0, 17.0, 20.0, 24.0, 27.0, 26.0};
  r.fuel_mix.hydro_pct = 0.3;
  r.fuel_mix.nuclear_pct = 10.0;
  r.fuel_mix.coal_pct = 16.0;
  r.fuel_mix.oil_pct = 0.2;
  r.fuel_mix.other_pct = 1.5;
  r.fuel_mix.wind_noise_amplitude = 0.55;  // wind regimes swing hard in Texas

  r.price.base_usd_per_mwh = {28.0, 26.0, 24.0, 23.0, 26.0, 34.0,
                              42.0, 44.0, 34.0, 27.0, 26.0, 30.0};
  r.price.renewable_coupling = 1.2;
  r.price.mean_renewable_share = 0.27;
  r.price.noise_amplitude = 0.15;
  r.price.spikes_per_year = 25.0;   // energy-only market scarcity pricing
  r.price.spike_multiplier = 12.0;
  return r;
}

// Pacific-Northwest site: mild marine climate, hydro-dominated grid, cheap
// and stable power, lowest carbon of the fleet.
RegionProfile columbia_hydro() {
  RegionProfile r;
  r.name = "columbia-hydro";
  r.timezone_offset_hours = -3.0;  // Pacific vs Eastern

  r.cluster.node_count = 128;
  r.cluster.fixed_infrastructure = util::kilowatts(38.0);

  r.weather.normal_celsius = {4.5, 6.0, 8.5, 11.0, 14.5, 17.5,
                              20.5, 20.5, 17.5, 12.0, 7.5, 4.5};
  r.weather.diurnal_amplitude = 5.0;
  r.weather.synoptic_amplitude = 3.0;

  r.cooling.cooling_capacity = util::kilowatts(95.0);

  r.fuel_mix.solar_pct_by_month = {0.4, 0.7, 1.2, 1.6, 1.9, 2.1,
                                   2.2, 2.0, 1.5, 0.9, 0.5, 0.3};
  r.fuel_mix.wind_pct_by_month = {7.0, 7.5, 9.0, 10.0, 9.5, 8.5,
                                  7.0, 6.0, 6.5, 7.5, 8.0, 7.0};
  r.fuel_mix.hydro_pct = 68.0;  // BPA-scale hydro base (~100-120 gCO2/kWh)
  r.fuel_mix.nuclear_pct = 4.0;
  r.fuel_mix.coal_pct = 1.5;
  r.fuel_mix.oil_pct = 0.1;
  r.fuel_mix.other_pct = 3.0;

  r.price.base_usd_per_mwh = {22.0, 21.0, 20.0, 18.0, 16.0, 15.0,
                              17.0, 19.0, 20.0, 21.0, 23.0, 24.0};
  r.price.renewable_coupling = 1.5;
  r.price.mean_renewable_share = 0.095;
  r.price.noise_amplitude = 0.08;
  r.price.spikes_per_year = 4.0;
  r.price.spike_multiplier = 3.0;
  return r;
}

// Wind-belt plains site: cold winters, very high wind share over a coal
// base — cheap and often green, but carbon-intensive when the wind dies.
RegionProfile plains_wind() {
  RegionProfile r;
  r.name = "plains-wind";
  r.timezone_offset_hours = -1.0;  // Central vs Eastern

  r.cluster.node_count = 96;
  r.cluster.fixed_infrastructure = util::kilowatts(30.0);

  r.weather.normal_celsius = {-8.0, -5.0, 0.5, 7.5, 14.0, 19.5,
                              22.5, 21.5, 16.0, 8.5, 0.5, -6.0};
  r.weather.diurnal_amplitude = 7.0;
  r.weather.synoptic_amplitude = 5.0;

  r.cooling.cooling_capacity = util::kilowatts(75.0);

  r.fuel_mix.solar_pct_by_month = {0.8, 1.2, 1.8, 2.2, 2.5, 2.6,
                                   2.6, 2.4, 2.0, 1.5, 1.0, 0.7};
  r.fuel_mix.wind_pct_by_month = {42.0, 44.0, 46.0, 44.0, 38.0, 30.0,
                                  24.0, 25.0, 30.0, 38.0, 43.0, 42.0};
  r.fuel_mix.hydro_pct = 6.0;
  r.fuel_mix.nuclear_pct = 12.0;
  r.fuel_mix.coal_pct = 12.0;
  r.fuel_mix.oil_pct = 0.2;
  r.fuel_mix.other_pct = 2.5;
  r.fuel_mix.wind_noise_amplitude = 0.5;

  r.price.base_usd_per_mwh = {20.0, 19.0, 18.0, 17.0, 18.0, 22.0,
                              26.0, 27.0, 22.0, 19.0, 19.0, 21.0};
  r.price.renewable_coupling = 1.0;
  r.price.mean_renewable_share = 0.33;
  r.price.noise_amplitude = 0.12;
  r.price.spikes_per_year = 8.0;
  r.price.spike_multiplier = 5.0;
  return r;
}

}  // namespace

std::vector<RegionProfile> make_reference_fleet() {
  return {iso_ne(), ercot(), columbia_hydro(), plains_wind()};
}

std::vector<RegionProfile> make_synthetic_fleet(std::size_t count) {
  const std::vector<RegionProfile> reference = make_reference_fleet();
  std::vector<RegionProfile> fleet;
  fleet.reserve(count);
  for (std::size_t i = 0; i < count && i < reference.size(); ++i) fleet.push_back(reference[i]);
  for (std::size_t i = fleet.size(); i < count; ++i) {
    RegionProfile r = reference[i % reference.size()];
    // Pure function of the region index: the same index always yields the
    // same site, independent of fleet size or call order.
    util::SplitMix64 seeder(0x5EED00000000ULL + i);
    const auto uniform = [&seeder](double lo, double hi) {
      const double u = static_cast<double>(seeder.next() >> 11) * 0x1.0p-53;
      return lo + (hi - lo) * u;
    };

    r.name += "-s" + std::to_string(i);
    const int base_nodes = r.cluster.node_count;
    r.cluster.node_count = std::max(16, static_cast<int>(std::floor(base_nodes * uniform(0.5, 1.5))));
    const double node_ratio = static_cast<double>(r.cluster.node_count) / base_nodes;
    r.cluster.fixed_infrastructure =
        util::watts(r.cluster.fixed_infrastructure.watts() * node_ratio);
    r.cooling.cooling_capacity = util::watts(r.cooling.cooling_capacity.watts() * node_ratio);

    const double climate_shift = uniform(-3.0, 3.0);
    for (double& c : r.weather.normal_celsius) c += climate_shift;
    r.timezone_offset_hours = std::floor(uniform(-8.0, 5.0));

    const double price_scale = uniform(0.8, 1.2);
    for (double& p : r.price.base_usd_per_mwh) p *= price_scale;

    // FuelMix normalizes shares at construction, so scaling the renewable
    // columns lets the dispatchable remainder absorb the slack.
    const double solar_scale = uniform(0.7, 1.3);
    const double wind_scale = uniform(0.7, 1.3);
    for (double& s : r.fuel_mix.solar_pct_by_month) s *= solar_scale;
    for (double& w : r.fuel_mix.wind_pct_by_month) w *= wind_scale;

    fleet.push_back(std::move(r));
  }
  return fleet;
}

int fleet_total_gpus(const std::vector<RegionProfile>& profiles) {
  int total = 0;
  for (const RegionProfile& p : profiles) total += p.cluster.node_count * p.cluster.gpus_per_node;
  return total;
}

double scaled_fleet_rate(const std::vector<RegionProfile>& profiles, double per_site_rate) {
  return per_site_rate * fleet_total_gpus(profiles) / kReferenceSiteGpus;
}

}  // namespace greenhpc::fleet
