#pragma once
// Deterministic workload sharding for region-parallel fleet stepping.
//
// Regions are uneven (reference profiles range from 96 to 224 nodes), so a
// naive round-robin split leaves one worker stepping the two biggest sites
// while the others idle at the barrier. shard_by_weight() is a greedy
// longest-processing-time partition with fully deterministic tie-breaking:
// the same weights and shard count always produce the same partition, which
// keeps parallel runs reproducible across machines and pool sizes.

#include <cstddef>
#include <vector>

namespace greenhpc::fleet {

/// Partitions indices [0, weights.size()) into at most `shard_count`
/// shards, balancing total weight per shard (greedy LPT: heaviest item
/// first, assigned to the currently lightest shard). Deterministic: weight
/// ties break on lower index, shard-load ties on lower shard index, and the
/// indices inside each shard are sorted ascending. Every index appears in
/// exactly one shard; empty shards are dropped.
std::vector<std::vector<std::size_t>> shard_by_weight(const std::vector<double>& weights,
                                                      std::size_t shard_count);

}  // namespace greenhpc::fleet
