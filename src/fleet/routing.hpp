#pragma once
// Fleet routing policies: the spatial dimension of Eq. 1.
//
// A single datacenter can only shift jobs in *time* (deferring work to green
// hours); a fleet can also shift them in *space* — "follow the wind" and
// "follow the price" routing that the Green AI literature highlights as a
// first-order lever. Each arriving job is shown a snapshot of every region
// (capacity, queue pressure, instantaneous LMP, carbon intensity) and a
// RoutingPolicy picks the destination. Greedy cost/carbon routers price the
// marginal footprint of the job at each site, including a configurable
// network-transfer penalty for moving the job's data off the home region.

#include <memory>
#include <span>
#include <string>

#include "cluster/job.hpp"
#include "util/units.hpp"

namespace greenhpc::forecast {
class ForecasterHub;
struct RollingForecasterConfig;
}  // namespace greenhpc::forecast

namespace greenhpc::obs {
struct RouteExplain;
}

namespace greenhpc::fleet {

/// One region's state at routing time.
struct RegionView {
  std::size_t index = 0;
  const char* name = "";
  bool is_home = false;
  int total_gpus = 0;
  int free_gpus = 0;
  std::size_t queue_depth = 0;   ///< jobs waiting for GPUs
  int queued_gpu_demand = 0;     ///< sum of queued jobs' GPU requests
  double utilization = 0.0;      ///< busy / enabled GPUs
  util::Power busy_gpu_power;    ///< per-GPU draw under the region's cap
  util::EnergyPrice price;       ///< instantaneous LMP (local time)
  util::CarbonIntensity carbon;  ///< instantaneous grid intensity (local time)
  double renewable_share = 0.0;
  /// Region health gates, set by the fault layer. Always true on fault-free
  /// runs, so policies may branch on them without changing zero-fault
  /// behavior. admit_ok == false means a blackout window is open and
  /// admission must drain elsewhere; telemetry_ok == false means the
  /// carbon/price feed is dark and observations must not enter forecasters.
  bool admit_ok = true;
  bool telemetry_ok = true;

  /// Can the job start this step without queueing?
  [[nodiscard]] bool fits(int gpus) const { return free_gpus >= gpus; }
  /// Committed GPU demand (running + queued) relative to capacity; >1 means
  /// a backlog. The fallback metric when no region has free GPUs.
  [[nodiscard]] double pressure() const {
    const int busy = total_gpus - free_gpus;
    return total_gpus > 0 ? static_cast<double>(busy + queued_gpu_demand) / total_gpus : 1e9;
  }
};

/// Snapshot handed to a router for one job.
struct RoutingContext {
  util::TimePoint now;
  std::span<const RegionView> regions;
  /// Energy burned moving one job's input data to a non-home region (the
  /// network-transfer penalty; 0 disables it).
  util::Energy transfer_energy;
  /// When non-null the router should record its decision rationale (scores
  /// compared, overrides, fallbacks) into it — the flight recorder's
  /// decision trace. Null on every uninstrumented run; ignoring it is
  /// always correct.
  obs::RouteExplain* explain = nullptr;
};

class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Called once per fleet control step with every region's current signals,
  /// whether or not a job arrives that step. Forecast-driven policies
  /// accumulate their per-region signal histories here; stateless policies
  /// ignore it.
  virtual void observe(util::TimePoint /*now*/, std::span<const RegionView> /*regions*/) {}

  /// Offers a coordinator-owned forecaster hub. Forecast-driven policies
  /// adopt the hub's shared per-region bank for their signal (so the router
  /// and the migration planner do the observe/refit/skill work once per
  /// step); reactive policies ignore it.
  virtual void attach_forecasts(forecast::ForecasterHub& /*hub*/) {}

  /// The forecaster config a forecast-driven policy runs (nullptr for
  /// reactive policies) — the coordinator seeds its hub from this.
  [[nodiscard]] virtual const forecast::RollingForecasterConfig* forecaster_config() const {
    return nullptr;
  }

  /// Picks the destination region index for one arriving job. `ctx.regions`
  /// is never empty; the returned index must be < ctx.regions.size().
  [[nodiscard]] virtual std::size_t route(const cluster::JobRequest& request,
                                          const RoutingContext& ctx) = 0;
};

/// Cycles through regions in order — the fairness baseline. Skips only
/// regions whose admission is gated off by a fault window.
class RoundRobinRouter final : public RoutingPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "round_robin"; }
  [[nodiscard]] std::size_t route(const cluster::JobRequest& request,
                                  const RoutingContext& ctx) override;

 private:
  std::size_t next_ = 0;
};

/// Sends each job to the region with the lowest committed-demand pressure
/// (ties broken toward more free GPUs, then lower index) — the
/// latency/balance baseline.
class LeastLoadedRouter final : public RoutingPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "least_loaded"; }
  [[nodiscard]] std::size_t route(const cluster::JobRequest& request,
                                  const RoutingContext& ctx) override;
};

/// Routes to the region minimizing the job's marginal electricity cost
/// (estimated job energy priced at the instantaneous LMP, plus the transfer
/// penalty priced at the destination) among regions that can start it now;
/// falls back to least pressure when every region is full.
class CostGreedyRouter final : public RoutingPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "cost_greedy"; }
  [[nodiscard]] std::size_t route(const cluster::JobRequest& request,
                                  const RoutingContext& ctx) override;
};

/// Routes to the region minimizing the job's marginal carbon footprint
/// (estimated job energy times the instantaneous grid intensity, plus the
/// transfer penalty attributed at the destination) among regions that can
/// start it now; falls back to least pressure when every region is full.
class CarbonGreedyRouter final : public RoutingPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "carbon_greedy"; }
  [[nodiscard]] std::size_t route(const cluster::JobRequest& request,
                                  const RoutingContext& ctx) override;
};

/// Estimated IT energy of a job at a region's per-GPU draw (work is measured
/// in GPU-seconds at full throughput, so this is draw x work).
[[nodiscard]] util::Energy estimated_job_energy(const cluster::JobRequest& request,
                                                const RegionView& region);

/// The shared when-nothing-fits fallback: the least committed region (lowest
/// pressure, ties toward more free GPUs, then lower index).
[[nodiscard]] std::size_t least_pressure_region(std::span<const RegionView> regions);

/// Router factory for CLI surfaces: round_robin | least_loaded | cost_greedy
/// | carbon_greedy | cost_forecast | carbon_forecast. Returns nullptr for
/// unknown names. The forecast routers take the RollingForecasterConfig
/// defaults (climatology model, 24 h horizon); make_router(name, model,
/// horizon) configures them.
[[nodiscard]] std::unique_ptr<RoutingPolicy> make_router(const std::string& name);

/// As above with explicit forecaster controls for the forecast routers
/// (ignored by the reactive ones). Throws on unknown forecast models.
[[nodiscard]] std::unique_ptr<RoutingPolicy> make_router(const std::string& name,
                                                         const std::string& forecast_model,
                                                         util::Duration forecast_horizon);

/// All router names make_router accepts, for --help text.
[[nodiscard]] const char* router_names();

}  // namespace greenhpc::fleet
