#include "fleet/forecast_router.hpp"

#include <limits>

#include "obs/decision.hpp"
#include "util/error.hpp"

namespace greenhpc::fleet {

using util::require;

ForecastRouter::ForecastRouter(Objective objective, ForecastRouterConfig config)
    : objective_(objective),
      config_(std::move(config)),
      bank_(std::make_shared<forecast::ForecasterBank>(config_.forecaster)) {
  require(config_.override_margin >= 0.0 && config_.override_margin < 1.0,
          "ForecastRouter: override margin must be in [0,1)");
}

void ForecastRouter::attach_forecasts(forecast::ForecasterHub& hub) {
  const forecast::SignalKind signal = objective_ == Objective::kCarbon
                                          ? forecast::SignalKind::kCarbon
                                          : forecast::SignalKind::kPrice;
  if (auto shared = hub.attach(signal, config_.forecaster)) bank_ = std::move(shared);
}

double ForecastRouter::signal_of(const RegionView& region) const {
  return objective_ == Objective::kCarbon ? region.carbon.kg_per_kwh()
                                          : region.price.usd_per_mwh();
}

void ForecastRouter::observe(util::TimePoint now, std::span<const RegionView> regions) {
  for (const RegionView& r : regions) {
    // A telemetry dropout means the feed value is stale/meaningless: keep it
    // out of the fit entirely. The observation gap ages the forecaster's
    // outstanding predictions, so the realized-skill gate degrades that
    // region to instantaneous routing instead of trusting a poisoned fit.
    if (!r.telemetry_ok) continue;
    // RollingForecaster ignores repeated timestamps, so observing here and
    // again at route() time within the same step never double-counts — the
    // same dedup makes a hub-shared bank safe to feed from two consumers.
    bank_->observe(now, r.index, signal_of(r), r.name);
  }
}

double ForecastRouter::integrated_signal(std::size_t index, util::Duration runtime,
                                         double instantaneous) const {
  return bank_->integrated_signal(index, runtime, instantaneous);
}

std::size_t ForecastRouter::route(const cluster::JobRequest& request, const RoutingContext& ctx) {
  require(!ctx.regions.empty(), "ForecastRouter: empty fleet");
  observe(ctx.now, ctx.regions);

  // Wall-clock the job is expected to occupy a region's grid conditions
  // (full throughput; the router cannot see destination caps).
  const util::Duration runtime =
      util::seconds(request.work_gpu_seconds / std::max(1, request.gpus));

  std::size_t best = ctx.regions.size();       // forecast-integrated argmin
  std::size_t best_now = ctx.regions.size();   // instantaneous argmin
  double best_score = std::numeric_limits<double>::infinity();
  double best_now_score = std::numeric_limits<double>::infinity();
  double best_score_of_best_now = 0.0;  // integrated score of the instantaneous pick
  for (const RegionView& r : ctx.regions) {
    if (!r.admit_ok || !r.fits(request.gpus)) {
      if (ctx.explain != nullptr) {
        ctx.explain->scores.push_back({r.index, 0.0, 0.0, false});
      }
      continue;
    }
    const util::Energy energy = estimated_job_energy(request, r) +
                                (r.is_home ? util::Energy{} : ctx.transfer_energy);
    // Same units either way: kWh x kg/kWh = kg, MWh x $/MWh = $.
    const double per_signal = objective_ == Objective::kCarbon ? energy.kilowatt_hours()
                                                               : energy.megawatt_hours();
    const double score = per_signal * integrated_signal(r.index, runtime, signal_of(r));
    const double now_score = per_signal * signal_of(r);
    if (ctx.explain != nullptr) {
      ctx.explain->scores.push_back({r.index, score, now_score, true});
    }
    if (score < best_score) {
      best_score = score;
      best = r.index;
    }
    if (now_score < best_now_score) {
      best_now_score = now_score;
      best_now = r.index;
      best_score_of_best_now = score;
    }
  }
  if (best == ctx.regions.size()) {
    // Every region is full, so the job will queue wherever it lands. The
    // reactive greedy routers fall back to pure least pressure; here the
    // forecast earns its keep — among regions whose backlog is close to the
    // lightest, take the one whose grid the forecast expects to be greenest
    // (cheapest) while the job drains and runs.
    const std::size_t lightest = least_pressure_region(ctx.regions);
    const double pressure_cap = ctx.regions[lightest].pressure() * 1.1 + 1e-9;
    std::size_t pick = lightest;
    double pick_signal = integrated_signal(lightest, runtime,
                                           signal_of(ctx.regions[lightest]));
    for (const RegionView& r : ctx.regions) {
      if (r.index == lightest || !r.admit_ok || r.pressure() > pressure_cap) continue;
      const double s = integrated_signal(r.index, runtime, signal_of(r));
      if (s < pick_signal) {
        pick_signal = s;
        pick = r.index;
      }
    }
    if (ctx.explain != nullptr) {
      ctx.explain->picked = pick;
      ctx.explain->instantaneous_pick = lightest;
      ctx.explain->fallback_pressure = true;
      ctx.explain->note = "all_regions_full";
    }
    return pick;
  }
  // Override the persistence choice only on a decisive predicted advantage;
  // a marginal drift flip is more likely forecast noise than signal.
  const bool suppressed =
      best != best_now && best_score >= best_score_of_best_now * (1.0 - config_.override_margin);
  const std::size_t picked = suppressed ? best_now : best;
  if (ctx.explain != nullptr) {
    ctx.explain->picked = picked;
    ctx.explain->instantaneous_pick = best_now;
    ctx.explain->forecast_override = picked != best_now;
    if (suppressed) ctx.explain->note = "override_margin_suppressed";
  }
  return picked;
}

std::vector<forecast::SkillReport> ForecastRouter::skills() const { return bank_->skills(); }

}  // namespace greenhpc::fleet
