#pragma once
// FleetCoordinator: N datacenter twins on one clock, one routed workload.
//
// The geo-distributed composition the paper's "where should A.I. jobs run"
// question needs: each region is a full core::Datacenter (its own weather,
// fuel mix, LMPs, cooling plant, cluster, scheduler), all stepped in
// lockstep on a shared simulation clock. One fleet-wide arrival process
// samples the job stream; a RoutingPolicy places every job using a snapshot
// of all regions' grid signals and queue pressure. Off-home placements pay a
// configurable network-transfer energy penalty, metered in a separate
// ledger so spatial shifting is never free by construction.

#include <functional>
#include <memory>
#include <vector>

#include "core/datacenter.hpp"
#include "fleet/region.hpp"
#include "fleet/routing.hpp"
#include "telemetry/fleet.hpp"
#include "workload/arrivals.hpp"

namespace greenhpc::fleet {

struct FleetConfig {
  /// Shared lockstep cadence (every region's twin steps at this period).
  util::Duration step = util::minutes(15);
  util::TimePoint start = util::TimePoint::from_seconds(0.0);
  std::uint64_t seed = 42;
  /// Fleet-wide submission stream (routed, not per-region). Size
  /// base_rate_per_hour to the *fleet's* total GPUs, not one site's.
  workload::ArrivalConfig arrivals;
  workload::DemandConfig demand;
  workload::DeadlineCalendar calendar = workload::DeadlineCalendar::standard();
  /// Region index the job stream (and its data) originates from.
  std::size_t home_region = 0;
  /// Network-transfer penalty: energy burned moving one job's input data to
  /// a non-home region. Charged at the destination's grid conditions into
  /// the fleet's transfer ledger and visible to greedy routers.
  util::Energy transfer_energy_per_job = util::kilowatt_hours(0.0);
};

class FleetCoordinator {
 public:
  /// Builds one scheduler per region (each twin owns its instance).
  using SchedulerFactory = std::function<std::unique_ptr<sched::Scheduler>()>;

  /// `profiles` must be non-empty, `router` non-null. A null
  /// `scheduler_factory` defaults every region to EASY backfill.
  FleetCoordinator(FleetConfig config, std::vector<RegionProfile> profiles,
                   std::unique_ptr<RoutingPolicy> router,
                   SchedulerFactory scheduler_factory = nullptr);

  /// Advances every region in lockstep to `end` (multiples of `step`
  /// beyond the current clock; a partial trailing step still advances the
  /// member twins' clocks so telemetry windows line up).
  void run_until(util::TimePoint end);

  [[nodiscard]] util::TimePoint now() const { return clock_; }
  [[nodiscard]] std::size_t region_count() const { return regions_.size(); }
  [[nodiscard]] const core::Datacenter& region(std::size_t i) const { return *regions_.at(i); }
  [[nodiscard]] const RegionProfile& profile(std::size_t i) const { return profiles_.at(i); }
  [[nodiscard]] const RoutingPolicy& router() const { return *router_; }
  [[nodiscard]] const std::vector<std::size_t>& jobs_routed() const { return jobs_routed_; }
  [[nodiscard]] const grid::EnergyLedger& transfer_ledger() const { return transfer_; }

  /// The routing snapshot of one region at the current clock (exposed for
  /// tests and analysis tools).
  [[nodiscard]] RegionView view_of(std::size_t i) const;

  /// Per-region roll-up plus fleet aggregate and transfer ledger.
  [[nodiscard]] telemetry::FleetRunSummary summary() const;

 private:
  [[nodiscard]] std::vector<RegionView> all_views() const;
  void route_arrivals(util::TimePoint t, util::Duration window, std::vector<RegionView> views);

  FleetConfig config_;
  std::vector<RegionProfile> profiles_;
  std::vector<std::unique_ptr<core::Datacenter>> regions_;
  std::unique_ptr<RoutingPolicy> router_;
  std::unique_ptr<workload::DemandModulator> modulator_;
  std::unique_ptr<workload::ArrivalProcess> arrivals_;
  util::Rng rng_;
  util::TimePoint clock_;
  std::vector<std::size_t> jobs_routed_;
  grid::EnergyLedger transfer_;
};

/// The standard fleet experiment: the make_reference_fleet() regions under
/// one routed workload sized to the fleet's aggregate capacity (the same
/// per-GPU pressure as the single-site reference twin). `router_name` is a
/// make_router() name; throws on unknown names.
[[nodiscard]] std::unique_ptr<FleetCoordinator> make_reference_fleet_coordinator(
    const std::string& router_name, std::uint64_t seed = 42, std::size_t region_count = 4);

}  // namespace greenhpc::fleet
