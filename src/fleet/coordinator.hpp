#pragma once
// FleetCoordinator: N datacenter twins on one clock, one routed workload.
//
// The geo-distributed composition the paper's "where should A.I. jobs run"
// question needs: each region is a full core::Datacenter (its own weather,
// fuel mix, LMPs, cooling plant, cluster, scheduler), all stepped in
// lockstep on a shared simulation clock. One fleet-wide arrival process
// samples the job stream; a RoutingPolicy places every job using a snapshot
// of all regions' grid signals and queue pressure. Off-home placements pay a
// configurable network-transfer energy penalty, billed at the destination
// region into that region's transfer ledger, so spatial shifting is never
// free by construction.
//
// With a MigrationConfig enabled the coordinator also runs the mid-run
// relocation loop: each step the migrate::MigrationPlanner scores running
// jobs against every other region's forecast, the winners are checkpointed
// (preempted at the source, progress preserved in GPU-seconds), their
// snapshots occupy the fleet's transfer pipe for the checkpoint/ship/restore
// outage, and on arrival the destination twin resumes the remaining work.
// All checkpoint overhead energy is billed into the per-region transfer
// ledgers, and the migration ledger in telemetry/ records what moved, what
// it cost, and the planner's predicted saving vs. staying put.

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/datacenter.hpp"
#include "fault/injector.hpp"
#include "fleet/region.hpp"
#include "fleet/routing.hpp"
#include "forecast/hub.hpp"
#include "migrate/planner.hpp"
#include "obs/decision.hpp"
#include "telemetry/fleet.hpp"
#include "workload/arrivals.hpp"

namespace greenhpc::obs {
class AttributionLedger;
class Counter;
class FlightRecorder;
}

namespace greenhpc::util {
class ThreadPool;
}

namespace greenhpc::fleet {

struct FleetConfig {
  /// Shared lockstep cadence (every region's twin steps at this period).
  util::Duration step = util::minutes(15);
  util::TimePoint start = util::TimePoint::from_seconds(0.0);
  std::uint64_t seed = 42;
  /// Fleet-wide submission stream (routed, not per-region). Size
  /// base_rate_per_hour to the *fleet's* total GPUs, not one site's.
  workload::ArrivalConfig arrivals;
  workload::DemandConfig demand;
  workload::DeadlineCalendar calendar = workload::DeadlineCalendar::standard();
  /// Region index the job stream (and its data) originates from.
  std::size_t home_region = 0;
  /// Network-transfer penalty: energy burned moving one job's input data to
  /// a non-home region. Charged at the destination's grid conditions into
  /// that region's transfer ledger and visible to greedy routers.
  util::Energy transfer_energy_per_job = util::kilowatt_hours(0.0);
  /// Mid-run checkpoint-and-migrate policy (objective kOff disables it).
  migrate::MigrationConfig migration;
  /// Seeded fault injection (node failures, blackouts/brownouts, migration-
  /// link faults, telemetry dropouts). Disabled (the default) constructs no
  /// injector at all: the zero-fault path draws nothing and stays
  /// bit-identical to a build without the fault layer.
  fault::FaultPlan faults;
  /// Share one per-region forecaster hub between the forecast router and
  /// the migration planner (one observe/refit/skill pass per region-signal
  /// per step; decisions are bit-identical either way). Off is a test seam
  /// that restores the private-bank wiring.
  bool share_forecasters = true;
  /// Region-parallel stepping width: how many pool workers advance regions
  /// between the coordinator's routing/migration barriers. 0 = auto
  /// (min(pool threads, regions)); 1 = serial. Any value produces
  /// bit-identical simulated output — regions are independent between
  /// barriers and every merge is in region-index order — so this is purely
  /// a wall-clock knob. Forced serial inside a pool worker (nested
  /// replica-parallel experiments share one pool without oversubscription).
  std::size_t step_jobs = 0;
  /// Pool to shard stepping across (borrowed; must outlive the coordinator).
  /// Null = the process-wide util::shared_pool(). A test seam on single-core
  /// machines, where the shared pool has one thread.
  util::ThreadPool* step_pool = nullptr;
};

/// What drain_migrations() must leave behind.
enum class DrainMode : std::uint8_t {
  /// Deliver every checkpoint still on the transfer pipe, then stop:
  /// lineages resume at their destinations but may still be queued or
  /// running when the summary is taken.
  kDeliverOnly,
  /// Deliver the pipe AND keep stepping (arrivals and new planning stay
  /// suspended) until every migrated lineage has completed — its banked
  /// progress credited — so short-window migration experiments are exactly
  /// work-conserving.
  kFinishLineages,
};

class FleetCoordinator {
 public:
  /// Builds one scheduler per region (each twin owns its instance).
  using SchedulerFactory = std::function<std::unique_ptr<sched::Scheduler>()>;

  /// `profiles` must be non-empty, `router` non-null. A null
  /// `scheduler_factory` defaults every region to EASY backfill.
  FleetCoordinator(FleetConfig config, std::vector<RegionProfile> profiles,
                   std::unique_ptr<RoutingPolicy> router,
                   SchedulerFactory scheduler_factory = nullptr);

  /// Attaches the flight recorder (borrowed; must outlive the run): fleet
  /// counters/gauges and the shared hub's skill gauges register here, every
  /// region twin attaches on its own trace lane (pid 1 + index), and the
  /// coordinator drives one metrics sample per lockstep step.
  void set_recorder(obs::FlightRecorder* recorder);

  /// Advances every region in lockstep to `end` (multiples of `step`
  /// beyond the current clock; a partial trailing step still advances the
  /// member twins' clocks so telemetry windows line up).
  void run_until(util::TimePoint end);

  /// Closes the run window: with arrivals and new planning suspended, keeps
  /// stepping the regions until every checkpoint on the transfer pipe has
  /// been delivered and resumed at its destination — a lineage's banked
  /// progress is never stranded mid-pipe when the window shuts. No-op when
  /// the pipe is empty (always, when migration is off). Call before
  /// summary() on runs that must conserve delivered work. Note the drain
  /// steps extend the summarized window for the whole fleet (every region
  /// keeps burning energy and completing work while the pipe empties), so
  /// migration-on runs cover a slightly longer window than a migration-off
  /// pair — a few steps against multi-week windows, inside the 5% equal-work
  /// band the seed-paired benches enforce. DrainMode::kFinishLineages keeps
  /// stepping past pipe-empty until every migrated lineage has completed and
  /// credited its banked progress (see DrainMode).
  void drain_migrations(DrainMode mode = DrainMode::kDeliverOnly);

  [[nodiscard]] util::TimePoint now() const { return clock_; }
  [[nodiscard]] std::size_t region_count() const { return regions_.size(); }
  [[nodiscard]] const core::Datacenter& region(std::size_t i) const { return *regions_.at(i); }
  [[nodiscard]] const RegionProfile& profile(std::size_t i) const { return profiles_.at(i); }
  [[nodiscard]] const RoutingPolicy& router() const { return *router_; }
  [[nodiscard]] const std::vector<std::size_t>& jobs_routed() const { return jobs_routed_; }

  /// Fleet-wide transfer ledger: the sum of the per-region ledgers.
  [[nodiscard]] grid::EnergyLedger transfer_ledger() const;
  /// Network/checkpoint energy billed at one region (admission transfers at
  /// the destination; migration snapshot at the source, delivery at the
  /// destination).
  [[nodiscard]] const grid::EnergyLedger& region_transfer(std::size_t i) const {
    return transfer_by_region_.at(i);
  }

  /// The migration planner, when enabled (nullptr otherwise).
  [[nodiscard]] const migrate::MigrationPlanner* planner() const { return planner_.get(); }
  /// The shared forecaster hub, when any forecast consumer exists and
  /// sharing is on (nullptr otherwise).
  [[nodiscard]] const forecast::ForecasterHub* forecaster_hub() const { return hub_.get(); }
  /// Mid-run relocation ledger so far (policy "off" when disabled).
  [[nodiscard]] const telemetry::MigrationStats& migration_stats() const { return migration_; }
  /// Checkpoints currently occupying the transfer pipe.
  [[nodiscard]] std::size_t migrations_in_flight() const { return in_flight_.size(); }
  /// Failed transfers waiting out their retry backoff (they hold pipe slots
  /// and destination capacity reservations until delivered or abandoned).
  [[nodiscard]] std::size_t migrations_awaiting_retry() const { return retry_queue_.size(); }

  /// The fault injector, when fault injection is enabled (nullptr otherwise).
  [[nodiscard]] const fault::FaultInjector* fault_injector() const { return faults_.get(); }
  /// Fault + recovery ledger so far (all zero on fault-free runs).
  [[nodiscard]] const fault::FaultStats& fault_stats() const { return fault_stats_; }

  /// The routing snapshot of one region at the current clock (exposed for
  /// tests and analysis tools).
  [[nodiscard]] RegionView view_of(std::size_t i) const;

  /// Per-region roll-up plus fleet aggregate, transfer, and migration
  /// ledgers.
  [[nodiscard]] telemetry::FleetRunSummary summary() const;

#ifdef GREENHPC_CHECK_INVARIANTS
  // --- Debug invariant layer (compiled out of release builds) ---------------

  /// Deep fleet checks run every util::kInvariantPeriod lockstep steps inside
  /// run_until(); also callable directly. Throws util::InvariantViolation:
  ///   fleet.transfer_mirror       incremental transfer grand total ==
  ///                               recomputed sum of per-region ledgers
  ///   fleet.migration_accounting  submitted == routed + delivered +
  ///                               abandoned-resumed-at-source + fault-
  ///                               requeued across the fleet (work
  ///                               conservation, fault paths included)
  ///   fleet.footprint_identity    aggregated fleet footprint == sum over
  ///                               regions of grid totals + transfer ledger
  /// plus the shared hub's forecaster_bank.prefix_integral spot checks (the
  /// region twins' datacenter.* checks run inside their own step loops).
  void check_invariants() const;

  /// Test seams: corrupt the real state each named check guards.
  void debug_corrupt_transfer_mirror() { transfer_mirror_.energy += util::kilowatt_hours(1.0); }
  /// Books a routed job that was never submitted anywhere, so
  /// fleet.migration_accounting trips.
  void debug_count_phantom_routed() { ++jobs_routed_[0]; }
  [[nodiscard]] core::Datacenter& debug_region(std::size_t i) { return *regions_.at(i); }
  [[nodiscard]] forecast::ForecasterHub* debug_hub() { return hub_.get(); }
#endif

 private:
  /// One checkpoint in the transfer pipe.
  struct InFlightMigration {
    std::size_t source = 0;
    std::size_t dest = 0;
    core::Datacenter::PreemptedJob snapshot;
    util::TimePoint arrival;  ///< when the restore completes at dest
    int migrations = 0;       ///< lineage count after this move
    std::uint64_t trace_id = 0;  ///< async-span id when tracing (0 = none)
    /// Attribution lineage root the delivery overhead bills to, resolved at
    /// launch (0 and unused when attribution is off).
    std::uint64_t lineage_key = 0;
    /// Link-fault relaunch count for this transfer (0 for a fresh launch).
    int attempts = 0;
  };
  /// A failed transfer waiting out its deterministic retry backoff.
  struct PendingRetry {
    InFlightMigration migration;
    util::TimePoint next_attempt;
  };
  /// Per-lineage thrash bookkeeping (only jobs that have moved are tracked).
  struct Lineage {
    int migrations = 0;
    util::TimePoint last;
  };

  /// Rebuilds the per-step region snapshot into the reused views_ buffer.
  void refresh_views();
  void route_arrivals(util::TimePoint t, util::Duration window, std::vector<RegionView>& views);
  /// Bills `energy` into region `i`'s transfer ledger at its current
  /// local-time grid conditions; returns the billed increment.
  grid::EnergyLedger charge_transfer(std::size_t i, util::Energy energy, util::TimePoint t);
  /// Restores checkpoints whose transfer completed by `t` at their
  /// destination (keeps `views` honest about the new queue pressure).
  void deliver_migrations(util::TimePoint t, std::vector<RegionView>& views);
  /// Fault phase (serial, before the views refresh): advances the injector's
  /// windows, applies node kill-and-requeue / repair, and recomputes each
  /// region's blackout/brownout power ceiling.
  void apply_faults(util::TimePoint t);
  /// Link-fault phase (serial, before delivery): relaunches retries that are
  /// due, then draws stall/fail for every transfer on the pipe. A transfer
  /// out of retry budget is abandoned in place — its lineage resumes at the
  /// source from the banked snapshot.
  void apply_link_faults(util::TimePoint t);
  /// Moves retry-queue entries whose backoff expired back onto the pipe
  /// (also called during the drain, where no new faults are drawn).
  void relaunch_due_retries(util::TimePoint t);
  void abandon_migration(InFlightMigration m, util::TimePoint t);
  /// Runs the planner over all running jobs and launches the winning
  /// checkpoints into the transfer pipe.
  void plan_migrations(util::TimePoint t, std::vector<RegionView>& views);

  /// Advances every region to `next` — serially, or sharded across the
  /// thread pool (see FleetConfig::step_jobs). Regions are independent
  /// between the coordinator's barriers, so both paths produce identical
  /// simulated state; per-region trace events land on the recorder's region
  /// shards and are merged in region-index order by the caller.
  void step_regions(util::TimePoint next);
  /// The stepping width actually used this step (nested-pool guard applied).
  [[nodiscard]] std::size_t resolve_step_jobs() const;
  /// The cached GPU-weight-balanced shard partition for `shard_count`.
  const std::vector<std::vector<std::size_t>>& plan_shards(std::size_t shard_count);

  FleetConfig config_;
  std::vector<RegionProfile> profiles_;
  std::vector<std::unique_ptr<core::Datacenter>> regions_;
  std::unique_ptr<RoutingPolicy> router_;
  std::unique_ptr<migrate::MigrationPlanner> planner_;  ///< null when off
  std::shared_ptr<forecast::ForecasterHub> hub_;        ///< null when unshared
  std::unique_ptr<workload::DemandModulator> modulator_;
  std::unique_ptr<workload::ArrivalProcess> arrivals_;
  util::Rng rng_;
  util::TimePoint clock_;
  std::vector<std::size_t> jobs_routed_;
  std::vector<grid::EnergyLedger> transfer_by_region_;
  std::deque<InFlightMigration> in_flight_;
  std::deque<PendingRetry> retry_queue_;
  std::unique_ptr<fault::FaultInjector> faults_;  ///< null when faults off
  fault::FaultStats fault_stats_;
  // Per-step scratch, reused across the hottest loop in the codebase.
  std::vector<RegionView> views_;
  std::vector<migrate::MigrationCandidate> candidates_;
  std::vector<int> inbound_gpus_;
  std::vector<std::unordered_map<cluster::JobId, Lineage>> lineage_;  ///< by region
  std::vector<std::size_t> migrated_in_;
  std::vector<std::size_t> migrated_out_;
  telemetry::MigrationStats migration_;
  // Shard partition cache (recomputed only when the shard count changes —
  // region weights are fixed at construction).
  std::vector<std::vector<std::size_t>> shards_;
  std::size_t shards_for_ = 0;
#ifdef GREENHPC_CHECK_INVARIANTS
  /// Redundant incremental mirror of every charge_transfer increment; the
  /// fleet.transfer_mirror check compares it against the per-region recompute.
  grid::EnergyLedger transfer_mirror_;
  std::size_t invariant_step_ = 0;  ///< lockstep steps since the last check
#endif

  // Observability (null/zero when no recorder is attached).
  [[nodiscard]] bool tracing() const;
  obs::FlightRecorder* recorder_ = nullptr;
  /// The recorder's attribution ledger (null when detached or attribution
  /// off). Touched only in the coordinator's serial phases; region sinks are
  /// written by the region twins between barriers.
  obs::AttributionLedger* attrib_ = nullptr;
  obs::Counter* ctr_migrations_started_ = nullptr;
  obs::Counter* ctr_migrations_delivered_ = nullptr;
  std::uint64_t migration_seq_ = 0;      ///< allocates migration trace ids
  std::uint64_t fault_seq_ = 0;          ///< allocates fault-window trace ids
  /// Open fault-window async-span ids per region (0 = no open span); sized
  /// lazily on first use, only when both tracing and faults are on.
  std::vector<std::uint64_t> fault_span_node_;
  std::vector<std::uint64_t> fault_span_blackout_;
  std::vector<std::uint64_t> fault_span_brownout_;
  std::vector<std::uint64_t> fault_span_dropout_;
  obs::RouteExplain route_explain_;      ///< reused per-arrival scratch
};

/// The standard fleet experiment: the make_reference_fleet() regions under
/// one routed workload sized to the fleet's aggregate capacity (the same
/// per-GPU pressure as the single-site reference twin). `router_name` is a
/// make_router() name; throws on unknown names.
[[nodiscard]] std::unique_ptr<FleetCoordinator> make_reference_fleet_coordinator(
    const std::string& router_name, std::uint64_t seed = 42, std::size_t region_count = 4);

}  // namespace greenhpc::fleet
