#include "fleet/shard.hpp"

#include <algorithm>

namespace greenhpc::fleet {

std::vector<std::vector<std::size_t>> shard_by_weight(const std::vector<double>& weights,
                                                      std::size_t shard_count) {
  const std::size_t n = weights.size();
  if (n == 0 || shard_count == 0) return {};
  shard_count = std::min(shard_count, n);

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return a < b;
  });

  std::vector<std::vector<std::size_t>> shards(shard_count);
  std::vector<double> load(shard_count, 0.0);
  for (const std::size_t item : order) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < shard_count; ++s) {
      if (load[s] < load[best]) best = s;
    }
    shards[best].push_back(item);
    load[best] += weights[item];
  }

  for (auto& shard : shards) std::sort(shard.begin(), shard.end());
  shards.erase(std::remove_if(shards.begin(), shards.end(),
                              [](const std::vector<std::size_t>& s) { return s.empty(); }),
               shards.end());
  return shards;
}

}  // namespace greenhpc::fleet
