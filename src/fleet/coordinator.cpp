#include "fleet/coordinator.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace greenhpc::fleet {

using util::require;

namespace {

/// Independent per-region seed stream (so adding a region never perturbs
/// the others' environments).
std::uint64_t region_seed(std::uint64_t fleet_seed, std::size_t index) {
  util::SplitMix64 sm(fleet_seed ^ (0xF1EE7C0DEULL + index));
  return sm.next();
}

core::DatacenterConfig region_config(const FleetConfig& fleet, const RegionProfile& profile,
                                     std::size_t index) {
  core::DatacenterConfig config;
  config.cluster = profile.cluster;
  config.weather = profile.weather;
  config.cooling = profile.cooling;
  config.fuel_mix = profile.fuel_mix;
  config.price = profile.price;
  config.emission_factors = profile.emissions;
  config.connection = profile.connection;
  config.local_time_offset = util::hours(profile.timezone_offset_hours);
  config.step = fleet.step;
  config.start = fleet.start;
  config.reseed(region_seed(fleet.seed, index));
  return config;
}

}  // namespace

FleetCoordinator::FleetCoordinator(FleetConfig config, std::vector<RegionProfile> profiles,
                                   std::unique_ptr<RoutingPolicy> router,
                                   SchedulerFactory scheduler_factory)
    : config_(std::move(config)),
      profiles_(std::move(profiles)),
      router_(std::move(router)),
      rng_(config_.seed ^ 0xF1EE7ULL),
      clock_(config_.start) {
  require(!profiles_.empty(), "FleetCoordinator: empty region list");
  require(router_ != nullptr, "FleetCoordinator: null routing policy");
  require(config_.home_region < profiles_.size(), "FleetCoordinator: home_region out of range");
  require(config_.step.seconds() > 0.0, "FleetCoordinator: step must be positive");
  if (!scheduler_factory) {
    scheduler_factory = [] { return std::make_unique<sched::EasyBackfillScheduler>(); };
  }
  regions_.reserve(profiles_.size());
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    auto scheduler = scheduler_factory();
    require(scheduler != nullptr, "FleetCoordinator: scheduler factory returned null");
    regions_.push_back(std::make_unique<core::Datacenter>(
        region_config(config_, profiles_[i], i), std::move(scheduler)));
  }
  jobs_routed_.assign(profiles_.size(), 0);
  modulator_ = std::make_unique<workload::DemandModulator>(config_.calendar, config_.demand);
  arrivals_ = std::make_unique<workload::ArrivalProcess>(config_.arrivals, modulator_.get());
}

RegionView FleetCoordinator::view_of(std::size_t i) const {
  const core::Datacenter& dc = *regions_.at(i);
  const cluster::Cluster& cluster = dc.cluster_state();
  RegionView view;
  view.index = i;
  view.name = profiles_[i].name.c_str();
  view.is_home = i == config_.home_region;
  view.total_gpus = cluster.total_gpus();
  view.free_gpus = cluster.free_gpus();
  view.queue_depth = dc.queue().size();
  for (const cluster::JobId id : dc.queue()) {
    view.queued_gpu_demand += dc.jobs().get(id).request().gpus;
  }
  view.utilization = cluster.utilization();
  view.busy_gpu_power = cluster.busy_gpu_power();
  const util::TimePoint lt = dc.local_time(clock_);
  view.price = dc.prices().price_at(lt);
  view.carbon = dc.carbon().intensity_at(lt);
  view.renewable_share = dc.fuel_mix().mix_at(lt).renewable_share();
  return view;
}

std::vector<RegionView> FleetCoordinator::all_views() const {
  std::vector<RegionView> views;
  views.reserve(regions_.size());
  for (std::size_t i = 0; i < regions_.size(); ++i) views.push_back(view_of(i));
  return views;
}

void FleetCoordinator::route_arrivals(util::TimePoint t, util::Duration window,
                                      std::vector<RegionView> views) {
  const std::vector<cluster::JobRequest> requests = arrivals_->sample(t, window, rng_);
  if (requests.empty()) return;

  RoutingContext ctx;
  ctx.now = t;
  ctx.transfer_energy = config_.transfer_energy_per_job;
  for (const cluster::JobRequest& request : requests) {
    ctx.regions = views;
    const std::size_t pick = router_->route(request, ctx);
    require(pick < regions_.size(), "FleetCoordinator: router returned bad region index");
    regions_[pick]->submit(request);
    ++jobs_routed_[pick];

    if (pick != config_.home_region && config_.transfer_energy_per_job.joules() > 0.0) {
      // The moved bytes burn energy on the path; bill them at the
      // destination's instantaneous grid conditions.
      const core::Datacenter& dest = *regions_[pick];
      const util::TimePoint lt = dest.local_time(t);
      const util::Energy e = config_.transfer_energy_per_job;
      transfer_.energy += e;
      transfer_.cost += e * dest.prices().price_at(lt);
      transfer_.carbon += e * dest.carbon().intensity_at(lt);
      transfer_.water += e * profiles_[pick].connection.generation_water;
    }

    // Keep the snapshot honest within the batch: the job we just placed
    // consumes capacity (or queue room) the next job can no longer claim.
    RegionView& placed = views[pick];
    if (placed.free_gpus >= request.gpus) {
      placed.free_gpus -= request.gpus;
    } else {
      ++placed.queue_depth;
      placed.queued_gpu_demand += request.gpus;
    }
  }
}

void FleetCoordinator::run_until(util::TimePoint end) {
  while (clock_ < end) {
    const util::TimePoint t = clock_;
    const util::TimePoint next = std::min(t + config_.step, end);
    std::vector<RegionView> views = all_views();
    // Every step's grid signals reach the router, not just steps with
    // arrivals — forecast-driven policies need the gap-free stream.
    router_->observe(t, views);
    route_arrivals(t, next - t, std::move(views));  // sample only the window advanced
    for (const auto& dc : regions_) dc->run_until(next);
    clock_ = next;
  }
}

telemetry::FleetRunSummary FleetCoordinator::summary() const {
  std::vector<telemetry::RegionRunSummary> regions;
  regions.reserve(regions_.size());
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    telemetry::RegionRunSummary r;
    r.name = profiles_[i].name;
    r.total_gpus = regions_[i]->cluster_state().total_gpus();
    r.jobs_routed = jobs_routed_[i];
    r.run = regions_[i]->summary();
    regions.push_back(std::move(r));
  }
  return telemetry::aggregate_fleet(std::move(regions), transfer_);
}

std::unique_ptr<FleetCoordinator> make_reference_fleet_coordinator(const std::string& router_name,
                                                                   std::uint64_t seed,
                                                                   std::size_t region_count) {
  std::vector<RegionProfile> profiles = make_reference_fleet();
  require(region_count >= 1 && region_count <= profiles.size(),
          "make_reference_fleet_coordinator: region_count must be 1..4");
  profiles.resize(region_count);

  std::unique_ptr<RoutingPolicy> router = make_router(router_name);
  require(router != nullptr, "make_reference_fleet_coordinator: unknown router name");

  FleetConfig config;
  config.seed = seed;
  config.arrivals.base_rate_per_hour = scaled_fleet_rate(profiles);
  return std::make_unique<FleetCoordinator>(std::move(config), std::move(profiles),
                                            std::move(router));
}

}  // namespace greenhpc::fleet
