#include "fleet/coordinator.hpp"

#include <algorithm>
#include <future>
#include <string>

#include "fleet/shard.hpp"
#include "obs/attribution.hpp"
#include "obs/recorder.hpp"
#include "util/error.hpp"
#include "util/invariants.hpp"
#include "util/thread_pool.hpp"

namespace greenhpc::fleet {

using util::require;

namespace {

/// Independent per-region seed stream (so adding a region never perturbs
/// the others' environments).
std::uint64_t region_seed(std::uint64_t fleet_seed, std::size_t index) {
  util::SplitMix64 sm(fleet_seed ^ (0xF1EE7C0DEULL + index));
  return sm.next();
}

core::DatacenterConfig region_config(const FleetConfig& fleet, const RegionProfile& profile,
                                     std::size_t index) {
  core::DatacenterConfig config;
  config.cluster = profile.cluster;
  config.weather = profile.weather;
  config.cooling = profile.cooling;
  config.fuel_mix = profile.fuel_mix;
  config.price = profile.price;
  config.emission_factors = profile.emissions;
  config.connection = profile.connection;
  config.local_time_offset = util::hours(profile.timezone_offset_hours);
  config.step = fleet.step;
  config.start = fleet.start;
  config.reseed(region_seed(fleet.seed, index));
  return config;
}

}  // namespace

FleetCoordinator::FleetCoordinator(FleetConfig config, std::vector<RegionProfile> profiles,
                                   std::unique_ptr<RoutingPolicy> router,
                                   SchedulerFactory scheduler_factory)
    : config_(std::move(config)),
      profiles_(std::move(profiles)),
      router_(std::move(router)),
      rng_(config_.seed ^ 0xF1EE7ULL),
      clock_(config_.start) {
  require(!profiles_.empty(), "FleetCoordinator: empty region list");
  require(router_ != nullptr, "FleetCoordinator: null routing policy");
  require(config_.home_region < profiles_.size(), "FleetCoordinator: home_region out of range");
  require(config_.step.seconds() > 0.0, "FleetCoordinator: step must be positive");
  if (!scheduler_factory) {
    scheduler_factory = [] { return std::make_unique<sched::EasyBackfillScheduler>(); };
  }
  regions_.reserve(profiles_.size());
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    auto scheduler = scheduler_factory();
    require(scheduler != nullptr, "FleetCoordinator: scheduler factory returned null");
    regions_.push_back(std::make_unique<core::Datacenter>(
        region_config(config_, profiles_[i], i), std::move(scheduler)));
  }
  jobs_routed_.assign(profiles_.size(), 0);
  transfer_by_region_.assign(profiles_.size(), grid::EnergyLedger{});
  lineage_.resize(profiles_.size());
  migrated_in_.assign(profiles_.size(), 0);
  migrated_out_.assign(profiles_.size(), 0);
  if (config_.migration.objective != migrate::MigrationObjective::kOff) {
    planner_ = std::make_unique<migrate::MigrationPlanner>(config_.migration);
  }
  migration_.policy = migrate::migration_objective_name(config_.migration.objective);
  if (config_.faults.enabled) {
    std::vector<int> node_counts;
    node_counts.reserve(regions_.size());
    for (const auto& dc : regions_) node_counts.push_back(dc->cluster_state().spec().node_count);
    // The injector's streams key off the run seed (scrambled per region and
    // fault kind), never off this coordinator's workload rng_ — fault
    // timelines are identical across routing/migration policies at a seed.
    faults_ = std::make_unique<fault::FaultInjector>(config_.faults, config_.seed,
                                                     std::move(node_counts));
  }
  modulator_ = std::make_unique<workload::DemandModulator>(config_.calendar, config_.demand);
  arrivals_ = std::make_unique<workload::ArrivalProcess>(config_.arrivals, modulator_.get());

  // One forecaster hub for every forecast consumer: the router's config
  // seeds it when the router forecasts, the migration config otherwise, and
  // each consumer adopts the shared per-region bank for its signal (a
  // consumer whose config differs keeps its private bank — the hub never
  // silently overrides an intentionally divergent setup).
  if (config_.share_forecasters) {
    const forecast::RollingForecasterConfig* seed_config = router_->forecaster_config();
    if (seed_config == nullptr && planner_) seed_config = &config_.migration.forecaster;
    if (seed_config != nullptr) {
      hub_ = std::make_shared<forecast::ForecasterHub>(*seed_config);
      router_->attach_forecasts(*hub_);
      if (planner_) planner_->attach_forecasts(*hub_);
    }
  }
  views_.reserve(profiles_.size());
  inbound_gpus_.reserve(profiles_.size());
}

bool FleetCoordinator::tracing() const { return recorder_ != nullptr && recorder_->tracing(); }

void FleetCoordinator::set_recorder(obs::FlightRecorder* recorder) {
  recorder_ = recorder;
  attrib_ = nullptr;
  if (recorder_ != nullptr && recorder_->attribution_on()) {
    // Allocate every region's sink up front (before the regions cache their
    // pointers) so lineage/overhead billing never races sink growth.
    recorder_->attribution().ensure_sinks(regions_.size());
    attrib_ = &recorder_->attribution();
  }
  // Regions attach on lanes pid 1 + i; the coordinator owns the per-step
  // metrics sample, so no region is the sampling root.
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    regions_[i]->set_recorder(recorder, i, /*root=*/false);
  }
  if (recorder_ == nullptr) return;
  if (recorder_->metrics_on()) {
    obs::MetricsRegistry& reg = recorder_->registry();
    ctr_migrations_started_ = reg.counter("fleet.migrations_started");
    ctr_migrations_delivered_ = reg.counter("fleet.migrations_delivered");
    reg.gauge("fleet.migrations_in_flight",
              [this] { return static_cast<double>(in_flight_.size()); });
    reg.gauge("fleet.transfer_energy_kwh",
              [this] { return transfer_ledger().energy.kilowatt_hours(); });
    if (hub_) hub_->register_metrics(reg, "forecast.", regions_.size());
    if (faults_) {
      reg.gauge("fault.nodes_down",
                [this] { return static_cast<double>(faults_->total_nodes_down()); });
      reg.gauge("fault.regions_blacked_out",
                [this] { return static_cast<double>(faults_->regions_blacked_out()); });
      reg.gauge("fault.node_failures",
                [this] { return static_cast<double>(fault_stats_.node_failures); });
      reg.gauge("fault.jobs_requeued",
                [this] { return static_cast<double>(fault_stats_.jobs_requeued); });
      reg.gauge("fault.migration_retries",
                [this] { return static_cast<double>(fault_stats_.migration_retries); });
      reg.gauge("fault.migrations_abandoned",
                [this] { return static_cast<double>(fault_stats_.migrations_abandoned); });
    }
  }
  if (recorder_->tracing()) {
    recorder_->trace().process_name(0, "fleet coordinator");
    recorder_->trace().thread_name(0, 0, "routing");
    recorder_->trace().thread_name(0, 1, "migration");
    if (faults_) recorder_->trace().thread_name(0, 2, "faults");
    // Region events land on per-region shards in BOTH serial and parallel
    // stepping (merged in region-index order after every step), so the trace
    // byte stream never depends on the stepping width.
    recorder_->enable_trace_shards(regions_.size());
  }
}

RegionView FleetCoordinator::view_of(std::size_t i) const {
  const core::Datacenter& dc = *regions_.at(i);
  const cluster::Cluster& cluster = dc.cluster_state();
  RegionView view;
  view.index = i;
  view.name = profiles_[i].name.c_str();
  view.is_home = i == config_.home_region;
  view.total_gpus = cluster.total_gpus();
  view.free_gpus = cluster.free_gpus();
  view.queue_depth = dc.queue().size();
  view.queued_gpu_demand = dc.queued_gpu_demand();
  view.utilization = cluster.utilization();
  view.busy_gpu_power = cluster.busy_gpu_power();
  const util::TimePoint lt = dc.local_time(clock_);
  view.price = dc.prices().price_at(lt);
  view.carbon = dc.carbon().intensity_at(lt);
  view.renewable_share = dc.fuel_mix().mix_at(lt).renewable_share();
  if (faults_) {
    view.admit_ok = faults_->admit_ok(i);
    view.telemetry_ok = faults_->telemetry_ok(i);
  }
  return view;
}

void FleetCoordinator::refresh_views() {
  views_.clear();  // capacity reserved once; no per-step allocation
  for (std::size_t i = 0; i < regions_.size(); ++i) views_.push_back(view_of(i));
}

grid::EnergyLedger FleetCoordinator::transfer_ledger() const {
  grid::EnergyLedger total;
  for (const grid::EnergyLedger& r : transfer_by_region_) total += r;
  return total;
}

grid::EnergyLedger FleetCoordinator::charge_transfer(std::size_t i, util::Energy energy,
                                                     util::TimePoint t) {
  grid::EnergyLedger increment;
  if (energy.joules() <= 0.0) return increment;
  const core::Datacenter& dc = *regions_[i];
  const util::TimePoint lt = dc.local_time(t);
  increment.energy = energy;
  increment.cost = energy * dc.prices().price_at(lt);
  increment.carbon = energy * dc.carbon().intensity_at(lt);
  increment.water = energy * profiles_[i].connection.generation_water;
  transfer_by_region_[i] += increment;
#ifdef GREENHPC_CHECK_INVARIANTS
  transfer_mirror_ += increment;
#endif
  return increment;
}

void FleetCoordinator::route_arrivals(util::TimePoint t, util::Duration window,
                                      std::vector<RegionView>& views) {
  const std::vector<cluster::JobRequest> requests = arrivals_->sample(t, window, rng_);
  if (requests.empty()) return;

  RoutingContext ctx;
  ctx.now = t;
  ctx.transfer_energy = config_.transfer_energy_per_job;
  const bool explain = tracing();
  for (const cluster::JobRequest& request : requests) {
    ctx.regions = views;
    if (explain) {
      route_explain_.clear();
      ctx.explain = &route_explain_;
    }
    const std::size_t pick = router_->route(request, ctx);
    require(pick < regions_.size(), "FleetCoordinator: router returned bad region index");
    if (explain) {
      obs::TraceWriter::Args args;
      args.push_back(obs::arg("picked", static_cast<double>(pick)));
      args.push_back(obs::arg("gpus", static_cast<double>(request.gpus)));
      args.push_back(
          obs::arg("instantaneous_pick", static_cast<double>(route_explain_.instantaneous_pick)));
      args.push_back(
          obs::arg("forecast_override", route_explain_.forecast_override ? 1.0 : 0.0));
      args.push_back(
          obs::arg("fallback_pressure", route_explain_.fallback_pressure ? 1.0 : 0.0));
      if (route_explain_.note[0] != '\0') args.push_back(obs::arg("note", route_explain_.note));
      for (const obs::RegionScore& s : route_explain_.scores) {
        const std::string suffix = "_r" + std::to_string(s.region);
        args.push_back(obs::arg("integrated" + suffix, s.integrated));
        args.push_back(obs::arg("instantaneous" + suffix, s.instantaneous));
      }
      recorder_->trace().instant("route.decision", "route", 0, 0,
                                 obs::FlightRecorder::sim_us(t), std::move(args));
    }
    const cluster::JobId placed_id = regions_[pick]->submit(request);
    ++jobs_routed_[pick];

    if (pick != config_.home_region) {
      // The moved bytes burn energy on the path; bill them at the
      // destination's instantaneous grid conditions, into its ledger — and
      // attribute them to the job whose data moved.
      const grid::EnergyLedger increment =
          charge_transfer(pick, config_.transfer_energy_per_job, t);
      if (attrib_ != nullptr) {
        attrib_->bill_admission(obs::attribution_key(pick, placed_id), pick, request.user,
                                increment);
      }
    }

    // Keep the snapshot honest within the batch: the job we just placed
    // consumes capacity (or queue room) the next job can no longer claim.
    RegionView& placed = views[pick];
    if (placed.free_gpus >= request.gpus) {
      placed.free_gpus -= request.gpus;
    } else {
      ++placed.queue_depth;
      placed.queued_gpu_demand += request.gpus;
    }
  }
}

void FleetCoordinator::deliver_migrations(util::TimePoint t, std::vector<RegionView>& views) {
  // Launch order is not arrival order (a small checkpoint overtakes a fat
  // one on the pipe), so scan the whole deque, delivering in launch order.
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    if (t < it->arrival) {
      ++it;
      continue;
    }
    const InFlightMigration m = *it;
    it = in_flight_.erase(it);
    // Ship + restore energy burns at the destination on arrival, billed to
    // the owning lineage so the footprint survives the move.
    const grid::EnergyLedger delivery = charge_transfer(
        m.dest, planner_->checkpoint().delivery_energy(m.snapshot.request.gpus), t);
    migration_.overhead += delivery;

    const cluster::JobId id = regions_[m.dest]->resume(m.snapshot);
    if (attrib_ != nullptr) {
      attrib_->bill_delivery(m.lineage_key, m.dest, m.snapshot.request.user, delivery);
      attrib_->link(obs::attribution_key(m.dest, id), m.lineage_key);
    }
    lineage_[m.dest][id] = {m.migrations, t};
    ++migrated_in_[m.dest];
    ++migration_.delivered;
    if (ctr_migrations_delivered_ != nullptr) ctr_migrations_delivered_->add();
    if (tracing() && m.trace_id != 0) {
      recorder_->trace().async_end("migration", "migration", 0, m.trace_id,
                                   obs::FlightRecorder::sim_us(t),
                                   {obs::arg("resumed_job", static_cast<double>(id))});
    }

    RegionView& dest = views[m.dest];
    ++dest.queue_depth;
    dest.queued_gpu_demand += m.snapshot.request.gpus;
  }
}

void FleetCoordinator::apply_faults(util::TimePoint t) {
  const fault::FaultInjector::Events ev = faults_->begin_step(t, config_.step);
  // Fast exit for the common quiet step: nothing changed and no window that
  // needs coordinator action is open. (An open dropout needs none — views
  // query telemetry_ok straight from the injector.)
  if (ev.empty() && faults_->total_nodes_down() == 0 && faults_->regions_blacked_out() == 0) {
    bool any_brownout = false;
    for (std::size_t i = 0; i < regions_.size(); ++i) {
      if (faults_->brownout_active(i)) {
        any_brownout = true;
        break;
      }
    }
    if (!any_brownout) return;
  }

  const bool trace = tracing();
  const double ts = obs::FlightRecorder::sim_us(t);
  const auto begin_span = [&](std::vector<std::uint64_t>& ids, std::size_t r, const char* name,
                              obs::TraceWriter::Args args) {
    if (!trace) return;
    if (ids.size() < regions_.size()) ids.resize(regions_.size(), 0);
    ids[r] = ++fault_seq_;
    recorder_->trace().async_begin(name, "fault", 0, ids[r], ts, std::move(args));
  };
  const auto end_span = [&](std::vector<std::uint64_t>& ids, std::size_t r, const char* name) {
    if (!trace || r >= ids.size() || ids[r] == 0) return;
    recorder_->trace().async_end(name, "fault", 0, ids[r], ts);
    ids[r] = 0;
  };

  for (const fault::FaultInjector::NodeFailure& f : ev.node_failures) {
    const cluster::ClusterSpec& spec = regions_[f.region]->cluster_state().spec();
    // Shrink the region to its surviving nodes; jobs holding GPUs on the
    // lost tail are killed and requeued from their banked progress.
    const std::size_t requeued = regions_[f.region]->resize_enabled_nodes(
        spec.node_count - faults_->nodes_down(f.region));
    ++fault_stats_.node_failures;
    fault_stats_.jobs_requeued += requeued;
    const double outage_hours = (f.repair - t).seconds() / 3600.0;
    fault_stats_.repair_hours += outage_hours;
    fault_stats_.capacity_gpu_hours_lost +=
        static_cast<double>(f.nodes_lost) * spec.gpus_per_node * outage_hours;
    begin_span(fault_span_node_, f.region, "fault.node_failure",
               {obs::arg("region", static_cast<double>(f.region)),
                obs::arg("nodes_lost", static_cast<double>(f.nodes_lost)),
                obs::arg("jobs_requeued", static_cast<double>(requeued))});
  }
  for (const std::size_t r : ev.node_repairs) {
    regions_[r]->resize_enabled_nodes(regions_[r]->cluster_state().spec().node_count);
    end_span(fault_span_node_, r, "fault.node_failure");
  }
  for (const std::size_t r : ev.blackout_begins) {
    ++fault_stats_.blackouts;
    begin_span(fault_span_blackout_, r, "fault.blackout",
               {obs::arg("region", static_cast<double>(r))});
  }
  for (const std::size_t r : ev.blackout_ends) end_span(fault_span_blackout_, r, "fault.blackout");
  for (const std::size_t r : ev.brownout_begins) {
    ++fault_stats_.brownouts;
    begin_span(fault_span_brownout_, r, "fault.brownout",
               {obs::arg("region", static_cast<double>(r)),
                obs::arg("cap_fraction", faults_->plan().brownout_cap_fraction)});
  }
  for (const std::size_t r : ev.brownout_ends) end_span(fault_span_brownout_, r, "fault.brownout");
  for (const std::size_t r : ev.dropout_begins) {
    ++fault_stats_.dropouts;
    begin_span(fault_span_dropout_, r, "fault.telemetry_dropout",
               {obs::arg("region", static_cast<double>(r))});
  }
  for (const std::size_t r : ev.dropout_ends) {
    end_span(fault_span_dropout_, r, "fault.telemetry_dropout");
  }

  // Recompute every region's fault power ceiling from current windows. A
  // blackout pins the per-GPU cap to the floor (the router drains admission
  // away, but running jobs crawl rather than vanish); a brownout caps at the
  // plan's fraction of TDP. Blackout dominates when the windows overlap.
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    std::optional<util::Power> cap;
    const power::GpuSpec& gpu = regions_[i]->cluster_state().spec().gpu;
    if (!faults_->admit_ok(i)) {
      cap = gpu.min_cap;
    } else if (faults_->brownout_active(i)) {
      cap = gpu.tdp * faults_->plan().brownout_cap_fraction;
    }
    regions_[i]->set_fault_power_cap(cap);
  }
}

void FleetCoordinator::apply_link_faults(util::TimePoint t) {
  relaunch_due_retries(t);
  // One fail draw per transfer per step, then a stall draw only for
  // survivors — deque order, single serial stream, so the sequence is a pure
  // function of (seed, plan, pipe history).
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    if (faults_->draw_link_fail()) {
      InFlightMigration m = std::move(*it);
      it = in_flight_.erase(it);
      const int attempts = m.attempts + 1;
      ++fault_stats_.link_failures;
      ++migration_.link_failures;
      if (tracing()) {
        recorder_->trace().instant("fault.link_failure", "fault", 0, 2,
                                   obs::FlightRecorder::sim_us(t),
                                   {obs::arg("source", static_cast<double>(m.source)),
                                    obs::arg("dest", static_cast<double>(m.dest)),
                                    obs::arg("attempt", static_cast<double>(attempts))});
      }
      if (planner_->should_retry(attempts)) {
        m.attempts = attempts;
        const util::TimePoint next = t + planner_->retry_delay(attempts);
        retry_queue_.push_back({std::move(m), next});
      } else {
        abandon_migration(std::move(m), t);
      }
    } else if (faults_->draw_link_stall()) {
      // The transfer survives but slips: push its arrival out by the stall
      // window (from now if it was already due this step).
      it->arrival = std::max(it->arrival, t) + faults_->plan().link_stall;
      ++fault_stats_.link_stalls;
      ++migration_.link_stalls;
      if (tracing()) {
        recorder_->trace().instant("fault.link_stall", "fault", 0, 2,
                                   obs::FlightRecorder::sim_us(t),
                                   {obs::arg("source", static_cast<double>(it->source)),
                                    obs::arg("dest", static_cast<double>(it->dest))});
      }
      ++it;
    } else {
      ++it;
    }
  }
}

void FleetCoordinator::relaunch_due_retries(util::TimePoint t) {
  for (auto it = retry_queue_.begin(); it != retry_queue_.end();) {
    if (t < it->next_attempt) {
      ++it;
      continue;
    }
    InFlightMigration m = std::move(it->migration);
    it = retry_queue_.erase(it);
    // The snapshot is already banked at the source; the relaunch re-ships and
    // re-restores it (no second snapshot write, no extra snapshot energy —
    // delivery energy is charged on arrival as for any transfer).
    const int gpus = m.snapshot.request.gpus;
    m.arrival = t + planner_->checkpoint().ship_time(gpus) +
                planner_->checkpoint().restore_time(gpus);
    ++fault_stats_.migration_retries;
    ++migration_.retries;
    if (tracing()) {
      recorder_->trace().instant("migration.retry", "fault", 0, 2,
                                 obs::FlightRecorder::sim_us(t),
                                 {obs::arg("source", static_cast<double>(m.source)),
                                  obs::arg("dest", static_cast<double>(m.dest)),
                                  obs::arg("attempt", static_cast<double>(m.attempts))});
    }
    in_flight_.push_back(std::move(m));
  }
}

void FleetCoordinator::abandon_migration(InFlightMigration m, util::TimePoint t) {
  // Retry budget exhausted: the transfer never lands. The lineage resumes at
  // its source from the banked snapshot — progress is conserved, only the
  // predicted saving (and the burned overhead) is lost. The move still
  // counts against the job's migration budget, so a flaky link cannot
  // induce endless re-planning of the same lineage.
  const cluster::JobId id = regions_[m.source]->resume(m.snapshot);
  if (attrib_ != nullptr) attrib_->link(obs::attribution_key(m.source, id), m.lineage_key);
  lineage_[m.source][id] = {m.migrations, t};
  ++migration_.abandoned;
  ++fault_stats_.migrations_abandoned;
  if (tracing() && m.trace_id != 0) {
    recorder_->trace().async_end("migration", "migration", 0, m.trace_id,
                                 obs::FlightRecorder::sim_us(t),
                                 {obs::arg("abandoned", 1.0),
                                  obs::arg("resumed_job", static_cast<double>(id))});
  }
}

void FleetCoordinator::plan_migrations(util::TimePoint t, std::vector<RegionView>& views) {
  // Transfers waiting out a retry backoff still occupy their pipe slot (and
  // their destination reservation): the pipe has max_in_flight slots total,
  // failed-but-not-abandoned transfers included.
  const std::size_t pipe = in_flight_.size() + retry_queue_.size();
  if (pipe >= config_.migration.max_in_flight) return;
  const std::size_t slots = config_.migration.max_in_flight - pipe;

  // Candidates: every running job, in (region, allocation) order — a fixed,
  // replica-independent scan order, so planning is deterministic. The same
  // pass prunes lineage entries whose job finished (completed or cancelled)
  // so the thrash bookkeeping cannot grow without bound over long runs;
  // queued entries stay — a migrated-in job's budget applies when it runs.
  std::vector<migrate::MigrationCandidate>& candidates = candidates_;  // reused scratch
  candidates.clear();
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    std::erase_if(lineage_[i], [&](const auto& entry) {
      const cluster::JobState state = regions_[i]->jobs().get(entry.first).state();
      return state == cluster::JobState::kCompleted || state == cluster::JobState::kCancelled;
    });
    // Allocation order == running_jobs() order; iterating the allocation
    // list directly spares a per-region id-vector per step.
    for (const cluster::Allocation& alloc : regions_[i]->cluster_state().allocations()) {
      const cluster::JobId id = alloc.job;
      const cluster::Job& job = regions_[i]->jobs().get(id);
      migrate::MigrationCandidate c;
      c.region = i;
      c.job = id;
      c.gpus = job.request().gpus;
      c.work_remaining_gpu_seconds = job.work_remaining();
      c.deadline = job.request().deadline;
      const auto it = lineage_[i].find(id);
      if (it != lineage_[i].end()) {
        c.migrations_so_far = it->second.migrations;
        c.last_migration = it->second.last;
      }
      candidates.push_back(c);
    }
  }
  if (candidates.empty()) return;

  // GPUs already claimed by checkpoints still on the pipe: a multi-step
  // outage must not let two rounds of planning commit the same capacity.
  std::vector<int>& inbound_gpus = inbound_gpus_;
  inbound_gpus.assign(regions_.size(), 0);
  for (const InFlightMigration& m : in_flight_) {
    inbound_gpus[m.dest] += m.snapshot.request.gpus;
  }
  for (const PendingRetry& p : retry_queue_) {
    inbound_gpus[p.migration.dest] += p.migration.snapshot.request.gpus;
  }

  const std::vector<migrate::MigrationDecision> decisions =
      planner_->plan(t, views, candidates, slots, inbound_gpus);
  for (const migrate::MigrationDecision& d : decisions) {
    const core::Datacenter::PreemptedJob snapshot = regions_[d.source]->preempt(d.job);
    const int gpus = snapshot.request.gpus;

    // The snapshot write burns at the source, now — billed to the lineage
    // root (the origin job, however many hops back that is).
    const grid::EnergyLedger snap = charge_transfer(
        d.source, planner_->checkpoint().snapshot_energy(gpus), t);
    migration_.overhead += snap;

    InFlightMigration m;
    m.source = d.source;
    m.dest = d.dest;
    m.snapshot = snapshot;
    m.arrival = t + planner_->checkpoint().outage(gpus);
    if (attrib_ != nullptr) {
      m.lineage_key = attrib_->resolve(obs::attribution_key(d.source, d.job));
      attrib_->bill_snapshot(m.lineage_key, d.source, snapshot.request.user, snap);
    }
    const auto it = lineage_[d.source].find(d.job);
    m.migrations = (it != lineage_[d.source].end() ? it->second.migrations : 0) + 1;
    if (it != lineage_[d.source].end()) lineage_[d.source].erase(it);
    if (tracing()) {
      m.trace_id = ++migration_seq_;
      const migrate::CheckpointModel& ckpt = planner_->checkpoint();
      const double ts = obs::FlightRecorder::sim_us(t);
      const double snap_us = ckpt.snapshot_time(gpus).seconds() * 1e6;
      const double ship_us = ckpt.ship_time(gpus).seconds() * 1e6;
      const double arrive_us = obs::FlightRecorder::sim_us(m.arrival);
      obs::TraceWriter& trace = recorder_->trace();
      // The whole pipeline as one async span, with the planner's *why*...
      trace.async_begin("migration", "migration", 0, m.trace_id, ts,
                        {obs::arg("job", static_cast<double>(d.job)),
                         obs::arg("source", static_cast<double>(d.source)),
                         obs::arg("dest", static_cast<double>(d.dest)),
                         obs::arg("gpus", static_cast<double>(gpus)),
                         obs::arg("predicted_saving", d.predicted_saving),
                         obs::arg("relative_saving", d.relative_saving),
                         obs::arg("migrations_so_far", static_cast<double>(m.migrations))});
      // ...and the checkpoint model's stage schedule as nested sub-spans
      // (all three are known at launch, so emit them now).
      trace.async_begin("snapshot", "migration.snapshot", 0, m.trace_id, ts);
      trace.async_end("snapshot", "migration.snapshot", 0, m.trace_id, ts + snap_us);
      trace.async_begin("ship", "migration.ship", 0, m.trace_id, ts + snap_us);
      trace.async_end("ship", "migration.ship", 0, m.trace_id, ts + snap_us + ship_us);
      trace.async_begin("restore", "migration.restore", 0, m.trace_id, ts + snap_us + ship_us);
      trace.async_end("restore", "migration.restore", 0, m.trace_id, arrive_us);
    }
    in_flight_.push_back(std::move(m));
    if (ctr_migrations_started_ != nullptr) ctr_migrations_started_->add();

    ++migrated_out_[d.source];
    ++migration_.started;
    migration_.gpu_hours_moved += snapshot.work_remaining_gpu_seconds / 3600.0;
    migration_.predicted_saving += d.predicted_saving;
  }
}

void FleetCoordinator::run_until(util::TimePoint end) {
  while (clock_ < end) {
    const util::TimePoint t = clock_;
    const util::TimePoint next = std::min(t + config_.step, end);
    {
      obs::PhaseScope phase(recorder_, obs::Phase::kObserveRefit);
      // Fault windows advance first, so this step's views, observations, and
      // decisions all see the post-fault world (serial phase: all RNG draws
      // happen here, never inside the parallel region step).
      if (faults_) apply_faults(t);
      refresh_views();  // one snapshot per step, into the reused buffer
      // Every step's grid signals reach the router and the migration
      // planner, not just steps with arrivals — forecast-driven policies
      // need the gap-free stream.
      router_->observe(t, views_);
      if (planner_) planner_->observe(t, views_);
    }
    if (planner_) {
      obs::PhaseScope phase(recorder_, obs::Phase::kMigration);
      // Link faults strike before delivery: a transfer that fails this step
      // cannot land this step, and due retries rejoin the pipe first so
      // their relaunch order is deque order (deterministic).
      if (faults_) apply_link_faults(t);
      deliver_migrations(t, views_);
    }
    {
      obs::PhaseScope phase(recorder_, obs::Phase::kRouting);
      route_arrivals(t, next - t, views_);  // sample only the window advanced
    }
    if (planner_) {
      obs::PhaseScope phase(recorder_, obs::Phase::kMigration);
      plan_migrations(t, views_);
    }
    step_regions(next);
    if (recorder_ != nullptr) recorder_->sample(t);
    clock_ = next;
#ifdef GREENHPC_CHECK_INVARIANTS
    if (++invariant_step_ % util::kInvariantPeriod == 0) check_invariants();
#endif
  }
}

#ifdef GREENHPC_CHECK_INVARIANTS
void FleetCoordinator::check_invariants() const {
  const grid::EnergyLedger recomputed = transfer_ledger();
  util::check_invariant_close(transfer_mirror_.energy.joules(), recomputed.energy.joules(),
                              "fleet.transfer_mirror", "transfer energy (J)");
  util::check_invariant_close(transfer_mirror_.cost.dollars(), recomputed.cost.dollars(),
                              "fleet.transfer_mirror", "transfer cost (USD)");
  util::check_invariant_close(transfer_mirror_.carbon.kilograms(),
                              recomputed.carbon.kilograms(), "fleet.transfer_mirror",
                              "transfer carbon (kg)");

  if (attrib_ != nullptr) {
    // The overhead ledger mirrors charge_transfer increment-for-increment,
    // so it must match the recomputed transfer ledger bit-for-bit (same
    // tolerance guard as the mirror above).
    const grid::EnergyLedger overhead = attrib_->overhead_total();
    util::check_invariant_close(overhead.energy.joules(), recomputed.energy.joules(),
                                "attribution.overhead_identity", "overhead energy (J)");
    util::check_invariant_close(overhead.cost.dollars(), recomputed.cost.dollars(),
                                "attribution.overhead_identity", "overhead cost (USD)");
    util::check_invariant_close(overhead.carbon.kilograms(), recomputed.carbon.kilograms(),
                                "attribution.overhead_identity", "overhead carbon (kg)");

    // Conservation: everything the ledger attributed to jobs (direct +
    // overhead) equals everything the fleet billed (accountant + transfer).
    grid::EnergyLedger attributed = overhead;
    grid::EnergyLedger billed = recomputed;
    for (std::size_t r = 0; r < regions_.size(); ++r) {
      if (const obs::RegionAttributionSink* sink = attrib_->sink(r); sink != nullptr) {
        attributed += sink->direct_total();
      }
      billed += regions_[r]->accountant().totals();
    }
    util::check_invariant_close(attributed.energy.joules(), billed.energy.joules(),
                                "attribution.conservation", "attributed energy (J)");
    util::check_invariant_close(attributed.cost.dollars(), billed.cost.dollars(),
                                "attribution.conservation", "attributed cost (USD)");
    util::check_invariant_close(attributed.carbon.kilograms(), billed.carbon.kilograms(),
                                "attribution.conservation", "attributed carbon (kg)");
  }

  // Work conservation: every job in any region's registry either came
  // through the router, was delivered off the migration pipe, was resumed at
  // its source after its transfer's retry budget ran out, or was
  // kill-and-requeued by a node failure.
  std::size_t submitted = 0;
  for (const auto& dc : regions_) submitted += dc->jobs().size();
  std::size_t routed = 0;
  for (const std::size_t n : jobs_routed_) routed += n;
  std::size_t requeued = 0;
  for (const auto& dc : regions_) requeued += dc->jobs_requeued();
  util::check_invariant(
      submitted == routed + migration_.delivered + migration_.abandoned + requeued,
      "fleet.migration_accounting",
      std::to_string(submitted) + " submitted vs " + std::to_string(routed) + " routed + " +
          std::to_string(migration_.delivered) + " delivered + " +
          std::to_string(migration_.abandoned) + " abandoned + " +
          std::to_string(requeued) + " fault-requeued");

  // The aggregated fleet footprint must equal the direct per-region sum of
  // grid totals + transfer ledgers (telemetry aggregation cannot drift).
  const telemetry::FleetRunSummary fleet = summary();
  grid::EnergyLedger direct;
  for (const telemetry::RegionRunSummary& r : fleet.regions) {
    direct += r.run.grid_totals;
    direct += r.transfer;
  }
  const grid::EnergyLedger footprint = fleet.footprint();
  util::check_invariant_close(footprint.energy.joules(), direct.energy.joules(),
                              "fleet.footprint_identity", "footprint energy (J)");
  util::check_invariant_close(footprint.cost.dollars(), direct.cost.dollars(),
                              "fleet.footprint_identity", "footprint cost (USD)");
  util::check_invariant_close(footprint.carbon.kilograms(), direct.carbon.kilograms(),
                              "fleet.footprint_identity", "footprint carbon (kg)");

  if (hub_) {
    for (std::size_t s = 0; s < forecast::kSignalKindCount; ++s) {
      const forecast::ForecasterBank* bank =
          hub_->bank(static_cast<forecast::SignalKind>(s));
      if (bank != nullptr) bank->check_invariants();
    }
  }
  // Region twins self-check inside Datacenter::step on their own cadence —
  // no need to re-run their checks here.
}
#endif

std::size_t FleetCoordinator::resolve_step_jobs() const {
  if (config_.step_jobs == 1) return 1;
  // Inside a pool worker already (replica-parallel experiment): submitting
  // region shards to the same pool could deadlock, and a second pool would
  // oversubscribe the cores — fall back to serial stepping.
  if (util::ThreadPool::current() != nullptr) return 1;
  const util::ThreadPool& pool =
      config_.step_pool != nullptr ? *config_.step_pool : util::shared_pool();
  const std::size_t want = config_.step_jobs == 0 ? pool.thread_count() : config_.step_jobs;
  return std::min(want, regions_.size());
}

const std::vector<std::vector<std::size_t>>& FleetCoordinator::plan_shards(
    std::size_t shard_count) {
  if (shards_for_ != shard_count) {
    std::vector<double> weights;
    weights.reserve(regions_.size());
    // Total GPUs is the best static proxy for a region's step cost (event
    // volume scales with cluster size); the partition is deterministic, so
    // which thread steps which region never varies run to run.
    for (const auto& dc : regions_) {
      weights.push_back(static_cast<double>(dc->cluster_state().total_gpus()));
    }
    shards_ = shard_by_weight(weights, shard_count);
    shards_for_ = shard_count;
  }
  return shards_;
}

void FleetCoordinator::step_regions(util::TimePoint next) {
  const std::size_t jobs = resolve_step_jobs();
  if (jobs <= 1) {
    for (const auto& dc : regions_) dc->run_until(next);
    if (tracing()) recorder_->merge_trace_shards();
    return;
  }
  // Regions share no mutable state between the coordinator's barriers (the
  // hub is only touched by the router/planner in the serial phases, traces
  // go to per-region shards, metrics objects are per-region), so each shard
  // advances its regions independently. Wait for every shard before
  // propagating the first failure, so no task outlives this frame.
  util::ThreadPool& pool =
      config_.step_pool != nullptr ? *config_.step_pool : util::shared_pool();
  const std::vector<std::vector<std::size_t>>& shards = plan_shards(jobs);
  std::vector<std::future<void>> futures;
  futures.reserve(shards.size());
  for (const std::vector<std::size_t>& shard : shards) {
    futures.push_back(pool.submit([this, &shard, next] {
      for (const std::size_t i : shard) regions_[i]->run_until(next);
    }));
  }
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  // Post-barrier: fold the per-region shards into the main trace in region
  // order — the same order the serial path produces.
  if (tracing()) recorder_->merge_trace_shards();
}

void FleetCoordinator::drain_migrations(DrainMode mode) {
  const auto lineages_pending = [this] {
    for (const auto& dc : regions_) {
      if (dc->pending_migration_credits() != 0) return true;
    }
    return false;
  };
  std::size_t steps = 0;
  for (;;) {
    refresh_views();
    // No new faults are drawn during the drain (the arrival window is
    // closed), but transfers already waiting out a retry backoff still
    // relaunch on schedule so every lineage lands or finishes.
    if (faults_) relaunch_due_retries(clock_);
    deliver_migrations(clock_, views_);
    if (in_flight_.empty() && retry_queue_.empty() &&
        (mode == DrainMode::kDeliverOnly || !lineages_pending())) {
      break;
    }
    // Something is still on the pipe (or, in kFinishLineages, a migrated
    // lineage has uncredited banked progress): advance one lockstep step
    // (arrivals and planning stay suspended — the window is closed) so the
    // remaining checkpoints reach their arrival times and the destinations
    // keep progressing the work already resumed.
    require(++steps <= 100000, "drain_migrations: lineages failed to finish (runaway drain)");
    const util::TimePoint next = clock_ + config_.step;
    step_regions(next);
    clock_ = next;
  }
  // The final deliver_migrations above may have resumed jobs (shard events)
  // after the last step's merge.
  if (tracing()) recorder_->merge_trace_shards();
}

telemetry::FleetRunSummary FleetCoordinator::summary() const {
  std::vector<telemetry::RegionRunSummary> regions;
  regions.reserve(regions_.size());
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    telemetry::RegionRunSummary r;
    r.name = profiles_[i].name;
    r.total_gpus = regions_[i]->cluster_state().total_gpus();
    r.jobs_routed = jobs_routed_[i];
    r.jobs_migrated_in = migrated_in_[i];
    r.jobs_migrated_out = migrated_out_[i];
    r.transfer = transfer_by_region_[i];
    r.run = regions_[i]->summary();
    regions.push_back(std::move(r));
  }
  telemetry::MigrationStats migration = migration_;
  migration.in_flight = in_flight_.size() + retry_queue_.size();
  return telemetry::aggregate_fleet(std::move(regions), std::move(migration));
}

std::unique_ptr<FleetCoordinator> make_reference_fleet_coordinator(const std::string& router_name,
                                                                   std::uint64_t seed,
                                                                   std::size_t region_count) {
  require(region_count >= 1 && region_count <= 512,
          "make_reference_fleet_coordinator: region_count must be 1..512");
  // The first four regions are the exact reference profiles; beyond four the
  // fleet is padded with deterministic synthetic variants.
  std::vector<RegionProfile> profiles = make_synthetic_fleet(region_count);

  std::unique_ptr<RoutingPolicy> router = make_router(router_name);
  require(router != nullptr, "make_reference_fleet_coordinator: unknown router name");

  FleetConfig config;
  config.seed = seed;
  config.arrivals.base_rate_per_hour = scaled_fleet_rate(profiles);
  return std::make_unique<FleetCoordinator>(std::move(config), std::move(profiles),
                                            std::move(router));
}

}  // namespace greenhpc::fleet
