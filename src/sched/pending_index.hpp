#pragma once
// Indexed pending queue: per-GPU-class buckets over the FIFO queue.
//
// EASY backfill's phase 3 scans every pending job every step, but most of
// the queue is skipped wholesale once free GPUs drop below a job's request.
// Job ids are strictly monotonic in submission order and the datacenter's
// queue is FIFO, so bucketing pending ids by GPU request keeps each bucket
// sorted ascending by construction — a k-way merge over the buckets visits
// pending jobs in exactly FIFO order while entire too-big GPU classes drop
// out in O(1). The owning Datacenter maintains the index alongside queue_
// (push on submit, erase on dispatch); schedulers receive it read-only via
// SchedulerContext::pending and must treat it as an accelerator only: the
// linear queue walk stays the semantic reference (and the fallback when the
// index is absent or stale).

#include <algorithm>
#include <cstddef>
#include <deque>
#include <map>

#include "cluster/job.hpp"

namespace greenhpc::sched {

class PendingIndex {
 public:
  /// Appends `id` to its GPU-class bucket. Ids must arrive in increasing
  /// order (submission order) for the buckets to stay sorted.
  void push(cluster::JobId id, int gpus) {
    buckets_[gpus].push_back(id);
    ++size_;
  }

  /// Removes `id` from the `gpus` bucket (no-op when absent).
  void erase(cluster::JobId id, int gpus) {
    const auto bucket = buckets_.find(gpus);
    if (bucket == buckets_.end()) return;
    auto& ids = bucket->second;
    const auto it = std::lower_bound(ids.begin(), ids.end(), id);
    if (it == ids.end() || *it != id) return;
    ids.erase(it);
    --size_;
    if (ids.empty()) buckets_.erase(bucket);
  }

  void clear() {
    buckets_.clear();
    size_ = 0;
  }

  /// Total pending ids across all buckets — the staleness check: a scheduler
  /// only trusts the index when this matches the queue it was handed.
  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] const std::map<int, std::deque<cluster::JobId>>& buckets() const {
    return buckets_;
  }

 private:
  std::map<int, std::deque<cluster::JobId>> buckets_;
  std::size_t size_ = 0;
};

}  // namespace greenhpc::sched
