#pragma once
// Scheduler interface: the `p` (resource-allocation rule) knob of Eq. 1.
//
// Each control step the datacenter hands the scheduler a view of the queue,
// the cluster, and the grid signals (price, carbon intensity, renewable
// share). The scheduler returns which queued jobs to start, in order, and a
// cluster-wide GPU power cap for the step (the `c` knob). Implementations
// must respect capacity: the returned set must fit the free GPUs if started
// in order.

#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/job.hpp"
#include "util/units.hpp"

namespace greenhpc::obs {
struct SchedExplain;
}

namespace greenhpc::sched {

class PendingIndex;

/// Grid-side signals a green policy may react to.
struct GridSignals {
  util::EnergyPrice price;
  util::CarbonIntensity carbon;
  double renewable_share = 0.0;
};

/// Read-only view handed to schedulers each step.
struct SchedulerContext {
  util::TimePoint now;
  const cluster::Cluster* cluster = nullptr;
  const cluster::JobRegistry* jobs = nullptr;
  /// Pending job ids in submission (FIFO) order.
  const std::vector<cluster::JobId>* queue = nullptr;
  GridSignals signals;
  /// When non-null the scheduler should record per-job decision rationale
  /// (started/deferred and why) into it — the flight recorder's decision
  /// trace. Null on every uninstrumented run; ignoring it is always correct.
  obs::SchedExplain* explain = nullptr;
  /// Optional per-GPU-class index over `queue` (see pending_index.hpp).
  /// Purely an accelerator: schedulers must produce identical selections
  /// with or without it, and must ignore it unless its size matches the
  /// queue's.
  const PendingIndex* pending = nullptr;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Jobs to start this step, in start order. The contract: if the jobs are
  /// allocated in the returned order, every allocation succeeds.
  [[nodiscard]] virtual std::vector<cluster::JobId> select(const SchedulerContext& ctx) = 0;

  /// Cluster-wide power cap for this step. Default: the GPU TDP (no cap).
  [[nodiscard]] virtual util::Power choose_cap(const SchedulerContext& ctx);
};

/// Strict first-come-first-served: start queue-head jobs while they fit;
/// stop at the first job that does not (no skipping, so no starvation).
class FcfsScheduler final : public Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "fcfs"; }
  [[nodiscard]] std::vector<cluster::JobId> select(const SchedulerContext& ctx) override;
};

/// EASY backfill: FCFS head reservation plus backfilling of later jobs that
/// fit now without delaying the head job's reservation (computed from user
/// runtime estimates, as production backfill does).
class EasyBackfillScheduler final : public Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "easy_backfill"; }
  [[nodiscard]] std::vector<cluster::JobId> select(const SchedulerContext& ctx) override;
};

}  // namespace greenhpc::sched
