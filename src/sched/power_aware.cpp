#include "sched/power_aware.hpp"

#include "util/error.hpp"

namespace greenhpc::sched {

using util::require;

PowerAwareScheduler::PowerAwareScheduler(PowerAwareConfig config, std::unique_ptr<Scheduler> inner)
    : config_(config), inner_(std::move(inner)) {
  require(config_.stress_cap <= config_.base_cap,
          "PowerAwareScheduler: stress cap must not exceed base cap");
  if (!inner_) inner_ = std::make_unique<EasyBackfillScheduler>();
}

std::vector<cluster::JobId> PowerAwareScheduler::select(const SchedulerContext& ctx) {
  return inner_->select(ctx);
}

util::Power PowerAwareScheduler::choose_cap(const SchedulerContext& ctx) {
  const bool stressed = ctx.signals.price > config_.price_trigger ||
                        ctx.signals.carbon > config_.carbon_trigger;
  return stressed ? config_.stress_cap : config_.base_cap;
}

}  // namespace greenhpc::sched
