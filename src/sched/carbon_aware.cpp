#include "sched/carbon_aware.hpp"

#include <algorithm>
#include <vector>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace greenhpc::sched {

using util::require;

CarbonAwareScheduler::CarbonAwareScheduler(CarbonAwareConfig config) : config_(config) {
  require(config_.green_quantile >= 0.0 && config_.green_quantile < 1.0,
          "CarbonAwareScheduler: quantile must be in [0,1)");
  require(config_.green_threshold.kg_per_kwh() > 0.0,
          "CarbonAwareScheduler: threshold must be positive");
  require(config_.renewable_trigger >= 0.0 && config_.renewable_trigger <= 1.0,
          "CarbonAwareScheduler: renewable trigger must be in [0,1]");
  require(config_.max_hold.seconds() > 0.0, "CarbonAwareScheduler: max hold must be positive");
  require(config_.history_window.seconds() > 0.0,
          "CarbonAwareScheduler: history window must be positive");
}

void CarbonAwareScheduler::observe(util::TimePoint now, util::CarbonIntensity intensity) {
  history_.emplace_back(now, intensity.kg_per_kwh());
  const util::TimePoint horizon = now - config_.history_window;
  while (!history_.empty() && history_.front().first < horizon) history_.pop_front();
}

bool CarbonAwareScheduler::green_window(util::TimePoint now, const GridSignals& signals) {
  observe(now, signals.carbon);
  if (signals.carbon <= config_.green_threshold ||
      signals.renewable_share >= config_.renewable_trigger) {
    return true;
  }
  // Adaptive trigger once a day of history exists.
  if (config_.green_quantile > 0.0 && history_warmed_up()) {
    std::vector<double> values;
    values.reserve(history_.size());
    for (const auto& [t, v] : history_) values.push_back(v);
    return signals.carbon.kg_per_kwh() <= stats::quantile(values, config_.green_quantile);
  }
  return false;
}

bool CarbonAwareScheduler::history_warmed_up() const {
  if (history_.size() < 2) return false;
  // One day of observed span (or the whole configured window, if shorter) —
  // derived from the timestamps themselves, so the warm-up is a day of
  // wall-clock at any sampling cadence rather than a hardcoded sample count.
  const util::Duration span = history_.back().first - history_.front().first;
  return span >= std::min(util::days(1), config_.history_window);
}

bool CarbonAwareScheduler::must_start(const cluster::Job& job, util::TimePoint now,
                                      double throughput) const {
  if (!job.request().flexible) return true;
  if (now - job.submit_time() >= config_.max_hold) return true;  // anti-starvation
  if (job.request().deadline) {
    const util::TimePoint latest_start =
        *job.request().deadline - job.estimated_runtime(throughput) - config_.deadline_margin;
    if (now >= latest_start) return true;
  }
  return false;
}

CarbonAwareScheduler::MustStartPass CarbonAwareScheduler::must_start_pass(
    const SchedulerContext& ctx, double throughput) const {
  MustStartPass pass;
  pass.free = ctx.cluster->free_gpus();
  const int total = ctx.cluster->total_gpus();
  // Everything that must run (urgent or out of slack), FIFO order. A
  // must-start job too large for the current free pool blocks the queue: its
  // GPUs stay reserved and nothing starts past it, otherwise smaller jobs
  // would jump ahead every round and starve it indefinitely. A job larger
  // than the whole cluster can never start, so it must not wedge the queue —
  // it is skipped, like strict FCFS cannot afford to.
  for (cluster::JobId id : *ctx.queue) {
    const cluster::Job& job = ctx.jobs->get(id);
    if (!must_start(job, ctx.now, throughput)) continue;
    if (job.request().gpus > total) continue;  // never satisfiable
    if (job.request().gpus > pass.free) {
      pass.blocked = true;
      break;
    }
    pass.starts.push_back(id);
    pass.free -= job.request().gpus;
  }
  return pass;
}

std::vector<cluster::JobId> CarbonAwareScheduler::select(const SchedulerContext& ctx) {
  require(ctx.cluster != nullptr && ctx.jobs != nullptr && ctx.queue != nullptr,
          "CarbonAwareScheduler: incomplete context");
  const bool green = green_window(ctx.now, ctx.signals);
  const double throughput = ctx.cluster->throughput_factor();

  MustStartPass pass = must_start_pass(ctx, throughput);
  std::vector<cluster::JobId>& starts = pass.starts;
  int free = pass.free;

  // Pass 2: in a green window, release deferred flexible work — shortest
  // first, since a short job completes inside the window while a multi-day
  // run would mostly execute outside it anyway. No backfill past a blocked
  // must-start job: released flexible work must not delay it either.
  if (green && !pass.blocked) {
    std::vector<cluster::JobId> deferred;
    for (cluster::JobId id : *ctx.queue) {
      const cluster::Job& job = ctx.jobs->get(id);
      if (must_start(job, ctx.now, throughput)) continue;  // already considered
      deferred.push_back(id);
    }
    std::sort(deferred.begin(), deferred.end(), [&](cluster::JobId a, cluster::JobId b) {
      return ctx.jobs->get(a).estimated_runtime(throughput) <
             ctx.jobs->get(b).estimated_runtime(throughput);
    });
    for (cluster::JobId id : deferred) {
      const cluster::Job& job = ctx.jobs->get(id);
      if (job.request().gpus > free) continue;
      starts.push_back(id);
      free -= job.request().gpus;
    }
  }
  return starts;
}

}  // namespace greenhpc::sched
