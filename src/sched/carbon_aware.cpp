#include "sched/carbon_aware.hpp"

#include <algorithm>
#include <vector>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace greenhpc::sched {

using util::require;

CarbonAwareScheduler::CarbonAwareScheduler(CarbonAwareConfig config) : config_(config) {
  require(config_.green_quantile >= 0.0 && config_.green_quantile < 1.0,
          "CarbonAwareScheduler: quantile must be in [0,1)");
  require(config_.green_threshold.kg_per_kwh() > 0.0,
          "CarbonAwareScheduler: threshold must be positive");
  require(config_.renewable_trigger >= 0.0 && config_.renewable_trigger <= 1.0,
          "CarbonAwareScheduler: renewable trigger must be in [0,1]");
  require(config_.max_hold.seconds() > 0.0, "CarbonAwareScheduler: max hold must be positive");
  require(config_.history_window.seconds() > 0.0,
          "CarbonAwareScheduler: history window must be positive");
}

void CarbonAwareScheduler::observe(util::TimePoint now, util::CarbonIntensity intensity) {
  history_.emplace_back(now, intensity.kg_per_kwh());
  const util::TimePoint horizon = now - config_.history_window;
  while (!history_.empty() && history_.front().first < horizon) history_.pop_front();
}

bool CarbonAwareScheduler::green_window(util::TimePoint now, const GridSignals& signals) {
  observe(now, signals.carbon);
  if (signals.carbon <= config_.green_threshold ||
      signals.renewable_share >= config_.renewable_trigger) {
    return true;
  }
  // Adaptive trigger once a day of history exists.
  if (config_.green_quantile > 0.0 && history_.size() >= 96) {
    std::vector<double> values;
    values.reserve(history_.size());
    for (const auto& [t, v] : history_) values.push_back(v);
    return signals.carbon.kg_per_kwh() <= stats::quantile(values, config_.green_quantile);
  }
  return false;
}

bool CarbonAwareScheduler::must_start(const cluster::Job& job, util::TimePoint now,
                                      double throughput) const {
  if (!job.request().flexible) return true;
  if (now - job.submit_time() >= config_.max_hold) return true;  // anti-starvation
  if (job.request().deadline) {
    const util::TimePoint latest_start =
        *job.request().deadline - job.estimated_runtime(throughput) - config_.deadline_margin;
    if (now >= latest_start) return true;
  }
  return false;
}

std::vector<cluster::JobId> CarbonAwareScheduler::select(const SchedulerContext& ctx) {
  require(ctx.cluster != nullptr && ctx.jobs != nullptr && ctx.queue != nullptr,
          "CarbonAwareScheduler: incomplete context");
  const bool green = green_window(ctx.now, ctx.signals);
  const double throughput = ctx.cluster->throughput_factor();

  std::vector<cluster::JobId> starts;
  int free = ctx.cluster->free_gpus();

  // Pass 1: everything that must run (urgent or out of slack), FIFO order.
  for (cluster::JobId id : *ctx.queue) {
    const cluster::Job& job = ctx.jobs->get(id);
    if (!must_start(job, ctx.now, throughput)) continue;
    if (job.request().gpus > free) continue;  // skip over too-large jobs
    starts.push_back(id);
    free -= job.request().gpus;
  }
  // Pass 2: in a green window, release deferred flexible work — shortest
  // first, since a short job completes inside the window while a multi-day
  // run would mostly execute outside it anyway.
  if (green) {
    std::vector<cluster::JobId> deferred;
    for (cluster::JobId id : *ctx.queue) {
      const cluster::Job& job = ctx.jobs->get(id);
      if (must_start(job, ctx.now, throughput)) continue;  // already considered
      deferred.push_back(id);
    }
    std::sort(deferred.begin(), deferred.end(), [&](cluster::JobId a, cluster::JobId b) {
      return ctx.jobs->get(a).estimated_runtime(throughput) <
             ctx.jobs->get(b).estimated_runtime(throughput);
    });
    for (cluster::JobId id : deferred) {
      const cluster::Job& job = ctx.jobs->get(id);
      if (job.request().gpus > free) continue;
      starts.push_back(id);
      free -= job.request().gpus;
    }
  }
  return starts;
}

}  // namespace greenhpc::sched
