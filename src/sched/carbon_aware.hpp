#pragma once
// Carbon-aware scheduling (Sec. II-A strategy 1, operationalized).
//
// "One strategy to take advantage of this mis-match between power
// consumption and fuel mix ... is to purchase more power during times when
// sustainable energy takes up a larger share of the fuel mix" — at job
// granularity this means deferring *flexible* jobs into green windows
// (cf. Radovanovic et al., "Carbon-aware computing for datacenters", which
// the paper cites as [16]). Urgent jobs run FCFS; flexible jobs wait until
// the grid is green enough, their deadline slack runs out, or a maximum
// hold time expires (no starvation).
//
// The green window is adaptive by default: the grid is "green" when the
// current intensity sits below a rolling quantile of the recent intensity
// history, so the trigger tracks seasonal drift in the fuel mix instead of
// relying on a hand-tuned absolute threshold.

#include <deque>

#include "sched/scheduler.hpp"

namespace greenhpc::sched {

struct CarbonAwareConfig {
  /// Adaptive trigger: green when intensity <= this quantile of the rolling
  /// history (0 disables the adaptive trigger).
  double green_quantile = 0.30;
  util::Duration history_window = util::days(7);
  /// Absolute fallbacks, used until enough history accumulates (and always
  /// OR-ed in): intensity at/below threshold or renewables at/above trigger.
  util::CarbonIntensity green_threshold = util::kg_per_kwh(0.25);
  double renewable_trigger = 0.095;
  /// Safety margin subtracted from deadline slack before forcing a start.
  util::Duration deadline_margin = util::hours(1);
  /// Upper bound on how long a flexible job may be held.
  util::Duration max_hold = util::hours(36);
};

class CarbonAwareScheduler final : public Scheduler {
 public:
  CarbonAwareScheduler() : CarbonAwareScheduler(CarbonAwareConfig{}) {}
  explicit CarbonAwareScheduler(CarbonAwareConfig config);

  [[nodiscard]] const char* name() const override { return "carbon_aware"; }
  [[nodiscard]] std::vector<cluster::JobId> select(const SchedulerContext& ctx) override;

  [[nodiscard]] const CarbonAwareConfig& config() const { return config_; }

  /// True when the grid is green enough to release deferred work. Non-const:
  /// feeds the rolling intensity history.
  [[nodiscard]] bool green_window(util::TimePoint now, const GridSignals& signals);

  /// True when a job must start now regardless of grid state.
  [[nodiscard]] bool must_start(const cluster::Job& job, util::TimePoint now,
                                double throughput) const;

  /// Outcome of the shared must-start pass (pass 1 of select(), also used by
  /// ForecastCarbonScheduler so the reservation invariant lives once).
  struct MustStartPass {
    std::vector<cluster::JobId> starts;  ///< must-start jobs that fit, FIFO
    int free = 0;                        ///< GPUs left for flexible releases
    /// A feasible must-start job is waiting for GPUs: its reservation blocks
    /// the queue (no backfill past it). Jobs larger than the whole cluster
    /// can never start and are skipped rather than allowed to wedge it.
    bool blocked = false;
  };
  [[nodiscard]] MustStartPass must_start_pass(const SchedulerContext& ctx,
                                              double throughput) const;

  /// True once the rolling history spans a full day (or the whole configured
  /// window, if shorter) — the adaptive-quantile warm-up, derived from the
  /// observed sample cadence rather than a hardcoded sample count.
  [[nodiscard]] bool history_warmed_up() const;

 private:
  void observe(util::TimePoint now, util::CarbonIntensity intensity);

  CarbonAwareConfig config_;
  std::deque<std::pair<util::TimePoint, double>> history_;
};

}  // namespace greenhpc::sched
