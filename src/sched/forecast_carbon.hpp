#pragma once
// Forecast-driven carbon-aware scheduling (Sec. II-C applied to Sec. II-A
// strategy 1).
//
// The reactive CarbonAwareScheduler releases flexible work whenever the grid
// is green *right now*; the paper argues the bigger win is planning against
// forecasts (cf. the DeepMind 36-hour wind-commitment example in Sec. IV-C).
// This scheduler keeps a rolling carbon-intensity forecast and defers a
// flexible job only when the forecast shows a window at least
// `improvement_margin` greener than the present fitting inside the job's
// deadline slack — an approximate optimal-stopping rule: start as soon as no
// meaningfully better moment is still reachable. When the forecaster has not
// warmed up, or its realized skill (MAPE vs. actuals) falls past the gate,
// the scheduler degrades to exactly the reactive green-window behavior, so
// a broken forecast can never make it worse than its reactive counterpart.

#include "forecast/rolling.hpp"
#include "sched/carbon_aware.hpp"

namespace greenhpc::sched {

struct ForecastCarbonConfig {
  /// Reactive fallback behavior and the shared must-start rules (deadline
  /// slack margin, max hold).
  CarbonAwareConfig reactive;
  /// Carbon-intensity forecaster (model, horizon, refit cadence, skill gate).
  forecast::RollingForecasterConfig forecaster;
  /// A future window must beat the current intensity by this fraction before
  /// it is worth deferring for (hysteresis against forecast noise).
  double improvement_margin = 0.02;
};

class ForecastCarbonScheduler final : public Scheduler {
 public:
  ForecastCarbonScheduler() : ForecastCarbonScheduler(ForecastCarbonConfig{}) {}
  explicit ForecastCarbonScheduler(ForecastCarbonConfig config);

  [[nodiscard]] const char* name() const override { return "forecast_carbon"; }
  [[nodiscard]] std::vector<cluster::JobId> select(const SchedulerContext& ctx) override;

  [[nodiscard]] const ForecastCarbonConfig& config() const { return config_; }
  [[nodiscard]] const forecast::RollingForecaster& forecaster() const { return forecaster_; }
  /// Realized forecast skill for telemetry surfaces.
  [[nodiscard]] forecast::SkillReport skill() const { return forecaster_.skill("carbon"); }

  /// How much longer a flexible job can be held before must_start fires
  /// (minimum of remaining max-hold and deadline slack).
  [[nodiscard]] util::Duration defer_slack(const cluster::Job& job, util::TimePoint now,
                                           double throughput) const;

 private:
  ForecastCarbonConfig config_;
  /// Owns the reactive green-window logic, the rolling intensity history
  /// behind it, and the shared must-start rules.
  CarbonAwareScheduler reactive_;
  forecast::RollingForecaster forecaster_;
};

}  // namespace greenhpc::sched
