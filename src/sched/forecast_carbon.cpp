#include "sched/forecast_carbon.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/decision.hpp"
#include "util/error.hpp"

namespace greenhpc::sched {

using util::require;

ForecastCarbonScheduler::ForecastCarbonScheduler(ForecastCarbonConfig config)
    : config_(config), reactive_(config.reactive), forecaster_(config.forecaster) {
  require(config_.improvement_margin >= 0.0 && config_.improvement_margin < 1.0,
          "ForecastCarbonScheduler: improvement margin must be in [0,1)");
}

util::Duration ForecastCarbonScheduler::defer_slack(const cluster::Job& job, util::TimePoint now,
                                                    double throughput) const {
  util::Duration slack = config_.reactive.max_hold - (now - job.submit_time());
  if (job.request().deadline) {
    const util::TimePoint latest_start = *job.request().deadline -
                                         job.estimated_runtime(throughput) -
                                         config_.reactive.deadline_margin;
    slack = std::min(slack, latest_start - now);
  }
  return slack;
}

std::vector<cluster::JobId> ForecastCarbonScheduler::select(const SchedulerContext& ctx) {
  require(ctx.cluster != nullptr && ctx.jobs != nullptr && ctx.queue != nullptr,
          "ForecastCarbonScheduler: incomplete context");
  const double now_intensity = ctx.signals.carbon.kg_per_kwh();
  forecaster_.observe(ctx.now, now_intensity);
  // Feeds the reactive rolling history too, and is the fallback release rule.
  const bool green = reactive_.green_window(ctx.now, ctx.signals);
  const bool predictive = forecaster_.reliable();
  const double throughput = ctx.cluster->throughput_factor();

  // Running minimum of the forecast: prefix_min[k] = greenest intensity
  // within the next k+1 steps. One model call serves every queued job.
  std::vector<double> prefix_min;
  if (predictive) {
    prefix_min = forecaster_.predict(forecaster_.horizon_steps());
    for (std::size_t i = 1; i < prefix_min.size(); ++i)
      prefix_min[i] = std::min(prefix_min[i], prefix_min[i - 1]);
  }

  // Pass 1: must-start work, FIFO, with the blocked-head reservation (no
  // backfill past a must-start job waiting for GPUs) — shared with the
  // reactive scheduler so the invariant lives once.
  CarbonAwareScheduler::MustStartPass pass = reactive_.must_start_pass(ctx, throughput);
  std::vector<cluster::JobId>& starts = pass.starts;
  int free = pass.free;
  if (ctx.explain != nullptr) {
    for (cluster::JobId id : starts) {
      ctx.explain->decisions.push_back(
          {id, true, now_intensity, 0.0, 0.0, predictive, "must_start"});
    }
  }

  // Pass 2: deferred flexible work, shortest first. With a reliable
  // forecast, release a job exactly when no window at least
  // improvement_margin greener than now is reachable inside its slack;
  // otherwise fall back to the reactive green-window rule.
  if (!pass.blocked) {
    std::vector<cluster::JobId> deferred;
    for (cluster::JobId id : *ctx.queue) {
      const cluster::Job& job = ctx.jobs->get(id);
      if (reactive_.must_start(job, ctx.now, throughput)) continue;  // already considered
      deferred.push_back(id);
    }
    std::sort(deferred.begin(), deferred.end(), [&](cluster::JobId a, cluster::JobId b) {
      return ctx.jobs->get(a).estimated_runtime(throughput) <
             ctx.jobs->get(b).estimated_runtime(throughput);
    });
    for (cluster::JobId id : deferred) {
      const cluster::Job& job = ctx.jobs->get(id);
      if (job.request().gpus > free) {
        if (ctx.explain != nullptr) {
          ctx.explain->decisions.push_back(
              {id, false, now_intensity, 0.0, 0.0, predictive, "no_capacity"});
        }
        continue;
      }
      bool release = green;
      const char* reason = green ? "green_now" : "reactive_hold";
      double best_window = 0.0;
      double slack_hours = 0.0;
      if (predictive) {
        const util::Duration slack = defer_slack(job, ctx.now, throughput);
        const auto reachable = static_cast<std::size_t>(
            std::max(0.0, std::floor(slack / forecaster_.cadence())));
        const std::size_t steps = std::min(reachable, prefix_min.size());
        release = steps == 0 ||
                  prefix_min[steps - 1] >= now_intensity * (1.0 - config_.improvement_margin);
        slack_hours = slack.hours();
        if (steps > 0) best_window = prefix_min[steps - 1];
        reason = steps == 0 ? "slack_exhausted"
                            : (release ? "no_better_window" : "greener_window_ahead");
      }
      if (ctx.explain != nullptr) {
        ctx.explain->decisions.push_back(
            {id, release, now_intensity, best_window, slack_hours, predictive, reason});
      }
      if (!release) continue;
      starts.push_back(id);
      free -= job.request().gpus;
    }
  }
  return starts;
}

}  // namespace greenhpc::sched
