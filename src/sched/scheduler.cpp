#include "sched/scheduler.hpp"

#include <algorithm>

#include "sched/pending_index.hpp"
#include "util/error.hpp"

namespace greenhpc::sched {

using util::require;

util::Power Scheduler::choose_cap(const SchedulerContext& ctx) {
  return ctx.cluster->spec().gpu.tdp;
}

std::vector<cluster::JobId> FcfsScheduler::select(const SchedulerContext& ctx) {
  require(ctx.cluster != nullptr && ctx.jobs != nullptr && ctx.queue != nullptr,
          "FcfsScheduler: incomplete context");
  std::vector<cluster::JobId> starts;
  int free = ctx.cluster->free_gpus();
  for (cluster::JobId id : *ctx.queue) {
    const cluster::Job& job = ctx.jobs->get(id);
    if (job.request().gpus > free) break;  // strict FCFS: head blocks the rest
    starts.push_back(id);
    free -= job.request().gpus;
  }
  return starts;
}

std::vector<cluster::JobId> EasyBackfillScheduler::select(const SchedulerContext& ctx) {
  require(ctx.cluster != nullptr && ctx.jobs != nullptr && ctx.queue != nullptr,
          "EasyBackfillScheduler: incomplete context");
  std::vector<cluster::JobId> starts;
  int free = ctx.cluster->free_gpus();
  const double throughput = ctx.cluster->throughput_factor();

  // Phase 1: FCFS while the head fits.
  std::size_t head = 0;
  const auto& queue = *ctx.queue;
  while (head < queue.size()) {
    const cluster::Job& job = ctx.jobs->get(queue[head]);
    if (job.request().gpus > free) break;
    starts.push_back(queue[head]);
    free -= job.request().gpus;
    ++head;
  }
  if (head >= queue.size()) return starts;  // queue drained

  // Phase 2: compute the head job's shadow reservation from the estimated
  // completion times of running jobs (user-padded estimates, as in EASY).
  const cluster::Job& head_job = ctx.jobs->get(queue[head]);
  struct Release {
    util::TimePoint at;
    int gpus;
  };
  std::vector<Release> releases;
  for (const cluster::Allocation& alloc : ctx.cluster->allocations()) {
    const cluster::Job& running = ctx.jobs->get(alloc.job);
    releases.push_back({ctx.now + running.user_estimate(throughput), alloc.total_gpus()});
  }
  std::sort(releases.begin(), releases.end(),
            [](const Release& a, const Release& b) { return a.at < b.at; });

  util::TimePoint shadow_time = ctx.now;
  int available = free;
  bool reserved = false;
  for (const Release& r : releases) {
    available += r.gpus;
    if (available >= head_job.request().gpus) {
      shadow_time = r.at;
      reserved = true;
      break;
    }
  }
  if (!reserved) {
    // Even with everything released the head cannot fit (bigger than the
    // enabled partition); do not backfill around a permanently stuck head.
    return starts;
  }
  // GPUs the head job will NOT need at shadow time can be used freely; jobs
  // finishing before shadow_time can use anything free now.
  int extra_at_shadow = available - head_job.request().gpus;

  // Phase 3: backfill later queued jobs — identical start/defer conditions
  // via either walk. Job ids are monotonic in submission order and the queue
  // is FIFO, so ascending-id order IS queue order; the indexed walk merges
  // the per-GPU-class buckets by min id and drops a whole class the moment
  // its request exceeds the free GPUs (free only ever decreases below), while
  // the linear walk remains the semantic reference and the fallback when no
  // current index was handed in.
  const auto consider = [&](cluster::JobId id, int need) {
    const cluster::Job& job = ctx.jobs->get(id);
    const util::TimePoint est_finish = ctx.now + job.user_estimate(throughput);
    if (est_finish <= shadow_time) {
      starts.push_back(id);
      free -= need;
    } else if (need <= extra_at_shadow) {
      starts.push_back(id);
      free -= need;
      extra_at_shadow -= need;
    }
  };

  if (ctx.pending != nullptr && ctx.pending->size() == queue.size()) {
    // Cursors begin past the head id, which also skips the phase-1 prefix
    // (those ids precede the head in submission order).
    const cluster::JobId head_id = queue[head];
    struct Cursor {
      int gpus;
      std::deque<cluster::JobId>::const_iterator it, end;
    };
    std::vector<Cursor> cursors;
    cursors.reserve(ctx.pending->buckets().size());
    for (const auto& [gpus, ids] : ctx.pending->buckets()) {
      const auto it = std::upper_bound(ids.begin(), ids.end(), head_id);
      if (it != ids.end()) cursors.push_back({gpus, it, ids.end()});
    }
    while (!cursors.empty()) {
      std::erase_if(cursors, [&](const Cursor& c) { return c.gpus > free; });
      std::size_t best = cursors.size();
      for (std::size_t c = 0; c < cursors.size(); ++c) {
        if (best == cursors.size() || *cursors[c].it < *cursors[best].it) best = c;
      }
      if (best == cursors.size()) break;
      Cursor& cur = cursors[best];
      consider(*cur.it, cur.gpus);
      if (++cur.it == cur.end) cursors.erase(cursors.begin() + best);
    }
    return starts;
  }

  for (std::size_t i = head + 1; i < queue.size(); ++i) {
    const int need = ctx.jobs->get(queue[i]).request().gpus;
    if (need > free) continue;
    consider(queue[i], need);
  }
  return starts;
}

}  // namespace greenhpc::sched
