#pragma once
// Power-aware scheduling: the "fixed component" of the Sec. II-C mechanism.
//
// "It has been shown that optimal GPU power-caps provide an effective way to
// control energy consumption with minimal impact on training speed. With
// these optimal power caps as the fixed base component..." — this scheduler
// applies a base power cap at all times (the guaranteed efficiency floor)
// and tightens it further when grid conditions are bad (price or carbon
// above thresholds), while delegating job selection to an inner scheduler.

#include <memory>

#include "sched/scheduler.hpp"

namespace greenhpc::sched {

struct PowerAwareConfig {
  /// The always-on base cap (e.g. GpuPowerModel::optimal_cap(0.03)).
  util::Power base_cap = util::watts(205.0);
  /// Tightened cap during expensive/dirty-grid periods.
  util::Power stress_cap = util::watts(165.0);
  util::EnergyPrice price_trigger = util::usd_per_mwh(45.0);
  util::CarbonIntensity carbon_trigger = util::kg_per_kwh(0.32);
};

class PowerAwareScheduler final : public Scheduler {
 public:
  /// Wraps `inner` (defaults to EASY backfill when null).
  explicit PowerAwareScheduler(PowerAwareConfig config = PowerAwareConfig{},
                               std::unique_ptr<Scheduler> inner = nullptr);

  [[nodiscard]] const char* name() const override { return "power_aware"; }
  [[nodiscard]] std::vector<cluster::JobId> select(const SchedulerContext& ctx) override;
  [[nodiscard]] util::Power choose_cap(const SchedulerContext& ctx) override;

  [[nodiscard]] const PowerAwareConfig& config() const { return config_; }

 private:
  PowerAwareConfig config_;
  std::unique_ptr<Scheduler> inner_;
};

}  // namespace greenhpc::sched
