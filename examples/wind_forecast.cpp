// wind_forecast — A.I. for energy generation (Sec. IV-C).
//
// "DeepMind has developed neural networks trained on weather forecasts and
// historical turbine data to forecast energy output 36 hours ahead, making
// early recommendations on optimal hourly delivery commitments to the grid
// possible" — and reportedly boosted the value of wind energy ~20%.
//
// We reproduce the mechanism with the library's forecasting stack: hourly
// wind output from the fuel-mix model, 36-hour-ahead forecasts via AR and
// Holt-Winters, and the economic uplift of committing delivery a day ahead
// (committed energy earns full price; uncommitted spot sales are discounted;
// shortfalls pay a penalty).

#include <algorithm>
#include <iostream>

#include "forecast/metrics.hpp"
#include "forecast/models.hpp"
#include "grid/wind_farm.hpp"
#include "util/table.hpp"

using namespace greenhpc;

namespace {

// Value model: committed MWh earn $P; surplus beyond commitment sells at a
// discount; shortfall below commitment is bought back at a premium.
double delivery_value(const std::vector<double>& actual, const std::vector<double>& committed,
                      double price) {
  double value = 0.0;
  for (std::size_t h = 0; h < actual.size(); ++h) {
    const double delivered = std::min(actual[h], committed[h]);
    const double surplus = std::max(0.0, actual[h] - committed[h]);
    const double shortfall = std::max(0.0, committed[h] - actual[h]);
    value += delivered * price + surplus * price * 0.55 - shortfall * price * 0.35;
  }
  return value;
}

}  // namespace

int main() {
  util::print_banner(std::cout, "wind farm: 36-hour-ahead output forecasting (Sec. IV-C)");

  // Hourly output (MW) of a 60-turbine, 150 MW farm over 120 days: wind
  // regimes drive a cubic turbine power curve (grid::WindFarm).
  const grid::WindFarm farm;
  const util::TimePoint start = util::to_timepoint(util::CivilDate{2021, 2, 1});
  const int hours = 120 * 24;
  const std::vector<double> output_mw = farm.hourly_output_mw(start, hours);
  std::cout << "farm: " << farm.config().turbine_count << " turbines, "
            << util::fmt_fixed(farm.capacity().megawatts(), 0) << " MW nameplate, "
            << util::fmt_fixed(100.0 * farm.capacity_factor(start, start + util::hours(hours)), 1)
            << "% capacity factor over the window\n\n";

  // Rolling 36-hour backtests.
  const std::size_t horizon = 36;
  const std::size_t min_train = 24 * 28;
  forecast::SeasonalNaive naive(24);
  forecast::ArModel ar(48);
  forecast::HoltWinters hw(24);

  const forecast::BacktestResult naive_result =
      forecast::backtest(naive, output_mw, min_train, horizon, 24);
  const forecast::BacktestResult ar_result = forecast::with_skill(
      forecast::backtest(ar, output_mw, min_train, horizon, 24), naive_result);
  const forecast::BacktestResult hw_result = forecast::with_skill(
      forecast::backtest(hw, output_mw, min_train, horizon, 24), naive_result);

  util::Table table({"model", "MAE (MW)", "RMSE (MW)", "skill vs seasonal-naive"});
  table.add("seasonal naive (24h)", util::fmt_fixed(naive_result.mae, 1),
            util::fmt_fixed(naive_result.rmse, 1), "-");
  table.add("AR(48)", util::fmt_fixed(ar_result.mae, 1), util::fmt_fixed(ar_result.rmse, 1),
            util::fmt_fixed(ar_result.skill, 3));
  table.add("Holt-Winters (24h season)", util::fmt_fixed(hw_result.mae, 1),
            util::fmt_fixed(hw_result.rmse, 1), util::fmt_fixed(hw_result.skill, 3));
  std::cout << table;

  // Economic uplift: commit day-ahead deliveries from each forecaster over
  // the final 30 days and compare against no-commitment spot sales.
  const double price = 30.0;  // $/MWh
  double value_spot = 0.0, value_ar = 0.0, value_naive = 0.0;
  for (std::size_t day = 0; day < 30; ++day) {
    const std::size_t origin = output_mw.size() - (30 - day) * 24;
    const std::vector<double> history(output_mw.begin(),
                                      output_mw.begin() + static_cast<std::ptrdiff_t>(origin));
    const std::vector<double> actual(
        output_mw.begin() + static_cast<std::ptrdiff_t>(origin),
        output_mw.begin() + static_cast<std::ptrdiff_t>(origin + 24));

    value_spot += delivery_value(actual, std::vector<double>(24, 0.0), price);

    naive.fit(history);
    value_naive += delivery_value(actual, naive.predict(24), price);
    ar.fit(history);
    std::vector<double> committed = ar.predict(24);
    for (double& c : committed) c = std::max(0.0, c * 0.9);  // conservative bid
    value_ar += delivery_value(actual, committed, price);
  }

  std::cout << "\n30-day delivery value at $" << price << "/MWh:\n";
  util::Table value({"strategy", "revenue $", "uplift vs spot %"});
  value.add("spot only (no commitment)", util::fmt_fixed(value_spot, 0), "-");
  value.add("naive commitment", util::fmt_fixed(value_naive, 0),
            util::fmt_fixed(100.0 * (value_naive / value_spot - 1.0), 1));
  value.add("AR(48) commitment (x0.9)", util::fmt_fixed(value_ar, 0),
            util::fmt_fixed(100.0 * (value_ar / value_spot - 1.0), 1));
  std::cout << value;

  std::cout << "\n(DeepMind reported ~20% value uplift from 36-hour-ahead commitments; the\n"
               "shape to check is forecast-driven commitment > spot-only.)\n";
  return 0;
}
