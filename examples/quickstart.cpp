// quickstart — the five-minute tour of greenhpc.
//
// Builds the reference datacenter twin (SuperCloud-E1-scale cluster, Boston
// weather, ISO-NE-like grid, Table I deadline-driven demand), runs one
// simulated week, inspects a GPU through the NVML-style API, and prints the
// energy report card. Start here.

#include <iostream>
#include <memory>

#include "core/datacenter.hpp"
#include "power/nvml_sim.hpp"
#include "telemetry/report.hpp"
#include "util/table.hpp"

using namespace greenhpc;

int main() {
  util::print_banner(std::cout, "greenhpc quickstart");

  // 1. A datacenter twin with an EASY-backfill scheduler.
  auto dc = core::make_reference_datacenter(std::make_unique<sched::EasyBackfillScheduler>(),
                                            /*seed=*/7);

  // 2. Submit one job of our own alongside the background workload: a
  //    16-GPU training run of ~12 wall-clock hours.
  cluster::JobRequest mine;
  mine.user = 9999;
  mine.job_class = cluster::JobClass::kTraining;
  mine.gpus = 16;
  mine.work_gpu_seconds = 16.0 * 12.0 * 3600.0;
  const cluster::JobId my_job = dc->submit(mine);

  // 3. Run one simulated week.
  dc->run_until(util::to_timepoint(util::CivilDate{2020, 1, 8}));

  const core::RunSummary s = dc->summary();
  util::Table summary({"metric", "value"});
  summary.add("jobs submitted", s.jobs_submitted);
  summary.add("jobs completed", s.jobs_completed);
  summary.add("mean GPU utilization %", util::fmt_fixed(100.0 * s.mean_utilization, 1));
  summary.add("mean PUE", util::fmt_fixed(s.mean_pue, 3));
  summary.add("facility energy (MWh)", util::fmt_fixed(s.grid_totals.energy.megawatt_hours(), 2));
  summary.add("electricity cost ($)", util::fmt_fixed(s.grid_totals.cost.dollars(), 0));
  summary.add("CO2 (t)", util::fmt_fixed(s.grid_totals.carbon.metric_tons(), 2));
  summary.add("water (m^3)", util::fmt_fixed(s.grid_totals.water.cubic_meters(), 1));
  std::cout << summary;

  // 4. The per-job report card (Sec. IV-B's reporting tooling).
  const telemetry::ReportCard report(&dc->accountant());
  std::cout << "\n" << report.job_report(my_job) << "\n";
  std::cout << report.user_leaderboard(5) << "\n";

  // 5. The NVML-style device API over simulated V100s.
  power::NvmlSim nvml(4);
  nvml.set_workload(0, 0.95);
  (void)nvml.set_power_limit_mw(0, 200000);  // cap device 0 at 200 W
  nvml.step(util::minutes(10));
  std::uint32_t mw = 0, pct = 0, temp = 0;
  (void)nvml.get_power_usage_mw(0, mw);
  (void)nvml.get_utilization_pct(0, pct);
  (void)nvml.get_temperature_c(0, temp);
  std::cout << "NVML view of device 0: " << mw / 1000 << " W at " << pct << "% util, " << temp
            << " C, throughput factor " << util::fmt_fixed(nvml.throughput_factor(0), 3) << "\n";

  std::cout << "\nNext: examples/carbon_aware_training, examples/datacenter_stress_test,\n"
               "      examples/wind_forecast, examples/green_challenge, and bench/ for the\n"
               "      paper-figure reproductions.\n";
  return 0;
}
