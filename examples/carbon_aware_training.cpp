// carbon_aware_training — plan a year-long training campaign around the grid.
//
// The Sec. II-A strategy ("purchase more power during times when sustainable
// energy takes up a larger share of the fuel mix") applied to a research
// group's annual compute: 400k GPU-hours of deferrable training. Compares a
// uniform schedule against green-greedy schedules driven by (a) the oracle
// monthly carbon intensity and (b) a Holt-Winters forecast fitted on the
// previous two years — the paper's "predictive analytics" in action.

#include <iostream>

#include "core/campaign.hpp"
#include "grid/carbon.hpp"
#include "grid/fuel_mix.hpp"
#include "grid/price.hpp"
#include "util/table.hpp"

using namespace greenhpc;

namespace {

void print_plan(const char* label, const core::CampaignPlan& plan) {
  std::cout << label << ": " << util::fmt_fixed(plan.carbon.metric_tons(), 1) << " t CO2, $"
            << util::fmt_fixed(plan.cost.dollars(), 0) << "\n";
}

}  // namespace

int main() {
  util::print_banner(std::cout, "carbon-aware training campaign (2022 planning year)");

  const grid::FuelMixModel mix;
  const grid::CarbonIntensityModel carbon(&mix);
  const grid::LmpPriceModel prices(grid::PriceConfig{}, &mix);
  const core::CampaignPlanner planner(&carbon, &prices);

  core::CampaignSpec spec;
  spec.start = util::MonthKey{2022, 1};
  spec.total_gpu_hours = 400000.0;

  const core::CampaignPlan uniform = planner.plan_uniform(spec);
  const core::CampaignPlan oracle = planner.plan_green_oracle(spec);
  const core::CampaignPlan forecast = planner.plan_green_forecast(spec, 24);

  util::Table table({"month", "renewables %", "gCO2/kWh", "uniform kGPU-h", "oracle kGPU-h",
                     "forecast kGPU-h"});
  for (std::size_t m = 0; m < uniform.months.size(); ++m) {
    const auto& u = uniform.months[m];
    table.add(u.month.label(), util::fmt_fixed(mix.monthly_renewable_pct(u.month), 2),
              util::fmt_fixed(u.intensity.g_per_kwh(), 1),
              util::fmt_fixed(u.planned_gpu_hours / 1000.0, 1),
              util::fmt_fixed(oracle.months[m].planned_gpu_hours / 1000.0, 1),
              util::fmt_fixed(forecast.months[m].planned_gpu_hours / 1000.0, 1));
  }
  std::cout << table << "\n";

  print_plan("uniform schedule      ", uniform);
  print_plan("green oracle schedule ", oracle);
  print_plan("green forecast schedule", forecast);

  const double oracle_saving =
      100.0 * (uniform.carbon - oracle.carbon).kilograms() / uniform.carbon.kilograms();
  const double forecast_saving =
      100.0 * (uniform.carbon - forecast.carbon).kilograms() / uniform.carbon.kilograms();
  std::cout << "\ncarbon saved vs uniform: oracle " << util::fmt_fixed(oracle_saving, 1)
            << "%, forecast-driven " << util::fmt_fixed(forecast_saving, 1) << "% ("
            << util::fmt_fixed(100.0 * forecast_saving / std::max(0.01, oracle_saving), 0)
            << "% of the oracle saving retained)\n";
  return 0;
}
