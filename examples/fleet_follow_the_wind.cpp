// Follow the wind: watching a carbon-greedy fleet chase green power.
//
// A walkthrough of the fleet subsystem. We build the four reference regions
// under a CarbonGreedyRouter, advance the fleet day by day for two weeks,
// and print where the router sent jobs as each region's wind (and therefore
// carbon intensity) came and went. The daily trace is the point: placement
// shares move with the day's grid signals, not with a fixed split — the
// spatial analogue of the paper's carbon-aware temporal scheduling.

#include <iostream>

#include "fleet/coordinator.hpp"
#include "telemetry/fleet.hpp"
#include "util/table.hpp"

using namespace greenhpc;

int main() {
  const util::TimePoint start = util::to_timepoint(util::CivilDate{2021, 3, 1});
  constexpr int kDays = 14;

  auto coordinator = fleet::make_reference_fleet_coordinator("carbon_greedy", /*seed=*/7);

  util::print_banner(std::cout, "follow the wind: carbon-greedy routing, daily trace");
  std::cout << "fleet: ";
  for (std::size_t i = 0; i < coordinator->region_count(); ++i) {
    std::cout << (i ? ", " : "") << coordinator->profile(i).name;
  }
  std::cout << "\nwindow: " << util::to_string(util::civil_of(start)) << " + " << kDays
            << " days (after a warm-up spin-up from the epoch start)\n\n";

  coordinator->run_until(start);  // spin up: queues fill, grids reach steady state

  util::Table trace({"day", "region", "co2_g_kwh", "renew_pct", "util_pct", "jobs_today"});
  std::vector<std::size_t> routed_before(coordinator->region_count(), 0);
  for (int day = 0; day < kDays; ++day) {
    routed_before = coordinator->jobs_routed();
    coordinator->run_until(start + util::days(day + 1));
    const util::TimePoint noon = start + util::days(day) + util::hours(12);
    for (std::size_t i = 0; i < coordinator->region_count(); ++i) {
      const core::Datacenter& dc = coordinator->region(i);
      const util::TimePoint lt = dc.local_time(noon);
      const fleet::RegionView view = coordinator->view_of(i);
      trace.add(i == 0 ? std::to_string(day + 1) : "", coordinator->profile(i).name,
                util::fmt_fixed(dc.carbon().intensity_at(lt).g_per_kwh(), 0),
                util::fmt_fixed(100.0 * dc.fuel_mix().mix_at(lt).renewable_share(), 1),
                util::fmt_fixed(100.0 * view.utilization, 1),
                coordinator->jobs_routed()[i] - routed_before[i]);
    }
  }
  std::cout << trace;

  std::cout << "\nNote how the plains-wind and ercot columns trade places: on windy\n"
               "days their intensity drops and the router piles jobs in; when the\n"
               "wind dies the stream snaps back to hydro and the home region.\n";

  const telemetry::FleetRunSummary summary = coordinator->summary();
  std::cout << "\nper-region (whole run):\n" << telemetry::fleet_region_table(summary);
  std::cout << "\nfleet aggregate:\n" << telemetry::fleet_total_table(summary);
  return 0;
}
