// Follow the wind: watching a fleet chase green power — including mid-run.
//
// A walkthrough of the fleet + migration subsystems. We build the four
// reference regions under a carbon_forecast router with the carbon
// MigrationPlanner enabled, advance the fleet day by day for two weeks, and
// print where the router sent jobs — and where the planner *moved* already
// running jobs — as each region's wind (and therefore carbon intensity) came
// and went. The daily trace is the point: placement shares move with the
// day's grid signals, and long jobs that started in a dirty hour get
// checkpointed and shipped to a cleaner grid mid-run instead of staying
// pinned to their admission-time choice.

#include <iostream>
#include <memory>
#include <vector>

#include "fleet/coordinator.hpp"
#include "fleet/region.hpp"
#include "fleet/routing.hpp"
#include "migrate/planner.hpp"
#include "telemetry/fleet.hpp"
#include "telemetry/migration.hpp"
#include "util/table.hpp"

using namespace greenhpc;

int main() {
  const util::TimePoint start = util::to_timepoint(util::CivilDate{2021, 3, 1});
  constexpr int kDays = 14;

  std::vector<fleet::RegionProfile> profiles = fleet::make_reference_fleet();
  fleet::FleetConfig config;
  config.seed = 7;
  // Warm enough that jobs routinely start on a dirty grid, cool enough that
  // greener regions keep freeing capacity for the planner to move them into.
  config.arrivals.base_rate_per_hour = fleet::scaled_fleet_rate(profiles, 10.0);
  config.migration.objective = migrate::MigrationObjective::kCarbon;
  fleet::FleetCoordinator coordinator(config, profiles,
                                      fleet::make_router("carbon_forecast"));

  util::print_banner(std::cout,
                     "follow the wind: forecast routing + mid-run migration, daily trace");
  std::cout << "fleet: ";
  for (std::size_t i = 0; i < coordinator.region_count(); ++i) {
    std::cout << (i ? ", " : "") << coordinator.profile(i).name;
  }
  std::cout << "\nwindow: " << util::to_string(util::civil_of(start)) << " + " << kDays
            << " days (after a warm-up spin-up from the epoch start)\n\n";

  coordinator.run_until(start);  // spin up: queues fill, forecasters warm

  util::Table trace({"day", "region", "co2_g_kwh", "renew_pct", "util_pct", "jobs_today",
                     "mig_in", "mig_out"});
  std::vector<std::size_t> routed_before(coordinator.region_count(), 0);
  std::vector<std::size_t> in_before(coordinator.region_count(), 0);
  std::vector<std::size_t> out_before(coordinator.region_count(), 0);
  const auto migration_counts = [&](std::vector<std::size_t>& in, std::vector<std::size_t>& out) {
    const telemetry::FleetRunSummary s = coordinator.summary();
    for (std::size_t i = 0; i < s.regions.size(); ++i) {
      in[i] = s.regions[i].jobs_migrated_in;
      out[i] = s.regions[i].jobs_migrated_out;
    }
  };
  std::vector<std::size_t> in_now(coordinator.region_count(), 0);
  std::vector<std::size_t> out_now(coordinator.region_count(), 0);
  for (int day = 0; day < kDays; ++day) {
    routed_before = coordinator.jobs_routed();
    migration_counts(in_before, out_before);
    coordinator.run_until(start + util::days(day + 1));
    migration_counts(in_now, out_now);
    const util::TimePoint noon = start + util::days(day) + util::hours(12);
    for (std::size_t i = 0; i < coordinator.region_count(); ++i) {
      const core::Datacenter& dc = coordinator.region(i);
      const util::TimePoint lt = dc.local_time(noon);
      const fleet::RegionView view = coordinator.view_of(i);
      trace.add(i == 0 ? std::to_string(day + 1) : "", coordinator.profile(i).name,
                util::fmt_fixed(dc.carbon().intensity_at(lt).g_per_kwh(), 0),
                util::fmt_fixed(100.0 * dc.fuel_mix().mix_at(lt).renewable_share(), 1),
                util::fmt_fixed(100.0 * view.utilization, 1),
                coordinator.jobs_routed()[i] - routed_before[i], in_now[i] - in_before[i],
                out_now[i] - out_before[i]);
    }
  }
  std::cout << trace;

  std::cout << "\nNote how the plains-wind and ercot columns trade places: on windy\n"
               "days their intensity drops, the router piles jobs in, and the\n"
               "mig_in column shows running jobs being checkpointed *into* the\n"
               "green region mid-run; when the wind dies, mig_out drains them\n"
               "back toward hydro and the home region.\n";

  const telemetry::FleetRunSummary summary = coordinator.summary();
  std::cout << "\nper-region (whole run):\n" << telemetry::fleet_region_table(summary);
  std::cout << "\nfleet aggregate:\n" << telemetry::fleet_total_table(summary);
  std::cout << "\nmigration ledger:\n" << telemetry::migration_table(summary.migration);
  return 0;
}
