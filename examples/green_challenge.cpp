// green_challenge — scoring a Green A.I. challenge (Sec. IV-B).
//
// "a Green A.I. challenge (in development) that aims to cast the problem
// explicitly by challenging participants to maximize performance given
// explicit training and energy budgets." Entries below model typical
// strategies: brute-force scale (over budget), efficient architectures,
// power-capped training (the Sec. II-C fixed component applied by a
// participant), and a small-but-clean baseline.

#include <iostream>

#include "core/challenge.hpp"
#include "power/gpu_power.hpp"
#include "util/table.hpp"

using namespace greenhpc;

int main() {
  util::print_banner(std::cout, "Green A.I. challenge: accuracy under an energy budget");

  core::ChallengeBudget budget;
  budget.energy = util::kilowatt_hours(120.0);
  budget.gpu_hours = 400.0;
  const core::GreenAiChallenge challenge(budget);

  // The power-capped team runs the same recipe as "team-scale" but caps its
  // GPUs at the 3%-slowdown optimum, fitting inside the energy budget.
  const power::GpuPowerModel gpu;
  const util::Power opt_cap = gpu.optimal_cap(0.03);
  const double capped_energy = 130.0 * gpu.relative_energy_per_work(opt_cap);
  const double capped_hours = 360.0 / gpu.throughput_factor(opt_cap);

  const std::vector<core::Submission> entries = {
      {"team-scale (brute force)", 0.842, util::kilowatt_hours(310.0), 980.0},
      {"team-efficient-arch", 0.829, util::kilowatt_hours(88.0), 310.0},
      {"team-power-capped", 0.833, util::kilowatt_hours(capped_energy), capped_hours},
      {"team-small-baseline", 0.801, util::kilowatt_hours(35.0), 120.0},
      {"team-over-compute", 0.836, util::kilowatt_hours(115.0), 520.0},
  };

  std::cout << "budget: " << util::fmt_fixed(budget.energy.kilowatt_hours(), 0) << " kWh, "
            << util::fmt_fixed(budget.gpu_hours, 0) << " GPU-h\n\n";

  util::Table board({"rank", "team", "accuracy", "kWh", "GPU-h", "status"});
  int rank = 1;
  for (const core::ScoredSubmission& s : challenge.leaderboard(entries)) {
    board.add(rank++, s.submission.team, util::fmt_fixed(s.submission.performance, 3),
              util::fmt_fixed(s.submission.energy_used.kilowatt_hours(), 1),
              util::fmt_fixed(s.submission.gpu_hours_used, 0),
              s.within_budget ? "ok" : s.disqualification);
  }
  std::cout << board;

  std::cout << "\nEfficiency leaderboard (accuracy per kWh, within budget):\n\n";
  util::Table eff({"rank", "team", "accuracy per kWh"});
  rank = 1;
  for (const core::ScoredSubmission& s : challenge.efficiency_leaderboard(entries)) {
    eff.add(rank++, s.submission.team, util::fmt_fixed(s.efficiency, 4));
  }
  std::cout << eff;

  std::cout << "\nNote how the power-capped entry (cap " << util::fmt_fixed(opt_cap.watts(), 0)
            << " W) converts the Sec. II-C fixed component into leaderboard position:\n"
               "same recipe as the disqualified brute-force entry, inside the budget.\n";
  return 0;
}
