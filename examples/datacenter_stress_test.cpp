// datacenter_stress_test — run the Sec. II-B Dodd-Frank-style battery.
//
// An operations team deciding how much weatherization capital to commit
// would run exactly this: every climate/market scenario at several
// investment levels, then read off where the resilience curve flattens.

#include <iostream>

#include "core/stress.hpp"
#include "util/table.hpp"

using namespace greenhpc;

int main() {
  util::print_banner(std::cout, "weatherization stress battery (July 2021, ensemble of 2)");

  core::StressConfig config;
  config.replicas = 2;  // demo-sized; the ABL-STRESS bench uses more
  const core::StressTester tester(config);

  util::Table table({"scenario", "invest", "throttle (h)", "unserved kGPU-h", "peak PUE",
                     "extra cost $"});
  for (double level : {0.0, 0.5, 1.0}) {
    for (core::ScenarioKind k : {core::ScenarioKind::kHeatWave,
                                 core::ScenarioKind::kExtremeHeatWave,
                                 core::ScenarioKind::kCoolingDegradation}) {
      const core::StressOutcome o = tester.run(k, level);
      table.add(core::scenario_name(k), util::fmt_fixed(level, 1),
                util::fmt_fixed(o.throttle_hours, 1),
                util::fmt_fixed(o.unserved_gpu_hours / 1000.0, 2),
                util::fmt_fixed(o.peak_pue, 3), util::fmt_fixed(o.extra_cost_usd, 0));
    }
  }
  std::cout << table;

  std::cout << "\nReading: pick the smallest investment level whose extreme-heat row shows\n"
               "zero throttle hours — that is the remediation target the exercise exists\n"
               "to surface (Sec. II-B).\n";
  return 0;
}
