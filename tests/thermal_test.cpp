// Unit tests for greenhpc::thermal — weather and cooling models.

#include <gtest/gtest.h>

#include "thermal/cooling.hpp"
#include "thermal/weather.hpp"

namespace greenhpc::thermal {
namespace {

using util::CivilDate;
using util::MonthKey;
using util::TimePoint;

// --- weather -----------------------------------------------------------------

TEST(Weather, MonthlyAveragesTrackClimateNormals) {
  const WeatherModel model;
  for (int m = 1; m <= 12; ++m) {
    const double avg = model.monthly_average(MonthKey{2020, m}).celsius();
    const double normal = model.config().normal_celsius[static_cast<std::size_t>(m - 1)];
    EXPECT_NEAR(avg, normal, 2.5) << "month " << m;
  }
}

TEST(Weather, JulyWarmerThanJanuary) {
  const WeatherModel model;
  EXPECT_GT(model.monthly_average(MonthKey{2021, 7}).celsius(),
            model.monthly_average(MonthKey{2021, 1}).celsius() + 15.0);
}

TEST(Weather, DiurnalCycleAfternoonWarmerThanDawn) {
  WeatherConfig calm;
  calm.synoptic_amplitude = 0.0;  // isolate the diurnal term
  const WeatherModel model(calm);
  const double dawn = model.temperature_at(util::to_timepoint(CivilDate{2020, 6, 10}, 4.0)).celsius();
  const double afternoon =
      model.temperature_at(util::to_timepoint(CivilDate{2020, 6, 10}, 16.0)).celsius();
  EXPECT_GT(afternoon, dawn + 4.0);
}

TEST(Weather, HeatWaveAppliesOnlyDuringWindow) {
  WeatherConfig calm;
  calm.synoptic_amplitude = 0.0;
  calm.diurnal_amplitude = 0.0;
  // Compare a waved model against an untouched twin at identical instants
  // (the seasonal normal drifts day to day, so same-time comparison is the
  // exact check).
  const WeatherModel control(calm);
  WeatherModel waved(calm);
  const TimePoint start = util::to_timepoint(CivilDate{2021, 7, 10});
  waved.add_heat_wave({start, util::days(3), 8.0});
  auto delta = [&](util::Duration offset) {
    return waved.temperature_at(start + offset).celsius() -
           control.temperature_at(start + offset).celsius();
  };
  EXPECT_NEAR(delta(util::days(1)), 8.0, 1e-9);   // inside the window
  EXPECT_NEAR(delta(util::days(4)), 0.0, 1e-9);   // after it
  EXPECT_NEAR(delta(-util::days(1)), 0.0, 1e-9);  // before it
}

TEST(Weather, OverlappingHeatWavesStack) {
  WeatherConfig calm;
  calm.synoptic_amplitude = 0.0;
  calm.diurnal_amplitude = 0.0;
  WeatherModel model(calm);
  const TimePoint start = util::to_timepoint(CivilDate{2021, 7, 10});
  const double base = model.temperature_at(start + util::hours(5)).celsius();
  model.add_heat_wave({start, util::days(2), 5.0});
  model.add_heat_wave({start, util::days(2), 3.0});
  EXPECT_NEAR(model.temperature_at(start + util::hours(5)).celsius(), base + 8.0, 1e-9);
}

TEST(Weather, ClimateOffsetShiftsEverything) {
  WeatherConfig warmed;
  warmed.climate_offset = 3.0;
  const WeatherModel base;
  const WeatherModel warm(warmed);
  const TimePoint t = util::to_timepoint(CivilDate{2020, 4, 1}, 10.0);
  EXPECT_NEAR(warm.temperature_at(t).celsius(), base.temperature_at(t).celsius() + 3.0, 1e-9);
}

TEST(Weather, DeterministicForSeed) {
  const WeatherModel a, b;
  const TimePoint t = util::to_timepoint(CivilDate{2021, 2, 3}, 14.0);
  EXPECT_DOUBLE_EQ(a.temperature_at(t).celsius(), b.temperature_at(t).celsius());
}

TEST(Weather, InvalidHeatWaveThrows) {
  WeatherModel model;
  EXPECT_THROW(model.add_heat_wave({TimePoint::from_seconds(0), util::days(0), 5.0}),
               std::invalid_argument);
}

// --- cooling -----------------------------------------------------------------

TEST(Cooling, FreeCoolingBelowThreshold) {
  const CoolingModel model;
  EXPECT_DOUBLE_EQ(model.overhead_fraction(util::celsius(-5.0)), model.config().min_overhead);
  EXPECT_DOUBLE_EQ(model.overhead_fraction(util::celsius(5.0)), model.config().min_overhead);
}

TEST(Cooling, OverheadSaturatesAtHighTemperature) {
  const CoolingModel model;
  EXPECT_NEAR(model.overhead_fraction(util::celsius(32.0)), model.config().max_overhead, 1e-9);
  EXPECT_NEAR(model.overhead_fraction(util::celsius(45.0)), model.config().max_overhead, 1e-9);
}

TEST(Cooling, OverheadMonotoneInTemperature) {
  const CoolingModel model;
  double prev = 0.0;
  for (double t = -10.0; t <= 40.0; t += 0.5) {
    const double o = model.overhead_fraction(util::celsius(t));
    EXPECT_GE(o, prev - 1e-12) << "at " << t;
    prev = o;
  }
}

TEST(Cooling, PueComposition) {
  const CoolingModel model;
  const util::Power it = util::kilowatts(200.0);
  // Winter: PUE = 1 + min_overhead + fixed_overhead.
  EXPECT_NEAR(model.pue(it, util::celsius(0.0)),
              1.0 + model.config().min_overhead + model.config().fixed_overhead, 1e-9);
  // PUE grows with temperature.
  EXPECT_GT(model.pue(it, util::celsius(30.0)), model.pue(it, util::celsius(10.0)));
}

TEST(Cooling, LoadSaturatesAtCapacity) {
  CoolingConfig config;
  config.cooling_capacity = util::kilowatts(50.0);
  const CoolingModel model(config);
  const CoolingLoad load = model.load(util::kilowatts(200.0), util::celsius(35.0));
  EXPECT_TRUE(load.saturated());
  EXPECT_NEAR(load.delivered.kilowatts(), 50.0, 1e-9);
  EXPECT_GT(load.deficit.kilowatts(), 0.0);
  EXPECT_NEAR(load.required.kilowatts(), load.delivered.kilowatts() + load.deficit.kilowatts(),
              1e-9);
}

TEST(Cooling, ThrottleFractionZeroWhenUnconstrained) {
  const CoolingModel model;
  EXPECT_DOUBLE_EQ(model.throttle_fraction(util::kilowatts(200.0), util::celsius(0.0)), 0.0);
}

TEST(Cooling, ThrottleFractionGrowsWithDeficit) {
  CoolingConfig config;
  config.cooling_capacity = util::kilowatts(40.0);
  const CoolingModel model(config);
  const double mild = model.throttle_fraction(util::kilowatts(150.0), util::celsius(30.0));
  const double severe = model.throttle_fraction(util::kilowatts(300.0), util::celsius(38.0));
  EXPECT_GT(mild, 0.0);
  EXPECT_GT(severe, mild);
  EXPECT_LE(severe, 1.0);
}

TEST(Cooling, WaterGrowsWithTemperature) {
  const CoolingModel model;
  const util::Power cooling = util::kilowatts(60.0);
  const double cold = model.water_liters_per_hour(cooling, util::celsius(5.0));
  const double hot = model.water_liters_per_hour(cooling, util::celsius(30.0));
  EXPECT_GT(hot, cold);
  EXPECT_NEAR(cold, 60.0 * model.config().base_water_l_per_kwh, 1e-9);
}

TEST(Cooling, WeatherizationImprovesEverything) {
  const CoolingConfig base;
  const CoolingConfig invested = CoolingModel::weatherized(base, 1.0);
  EXPECT_LT(invested.max_overhead, base.max_overhead);
  EXPECT_GT(invested.cooling_capacity.watts(), base.cooling_capacity.watts());
  EXPECT_GT(invested.saturation_celsius, base.saturation_celsius);
  EXPECT_LT(invested.water_slope_l_per_kwh_per_c, base.water_slope_l_per_kwh_per_c);

  const CoolingModel raw(base);
  const CoolingModel upgraded(invested);
  const util::Power it = util::kilowatts(250.0);
  EXPECT_LT(upgraded.pue(it, util::celsius(35.0)), raw.pue(it, util::celsius(35.0)));
  EXPECT_LE(upgraded.throttle_fraction(it, util::celsius(38.0)),
            raw.throttle_fraction(it, util::celsius(38.0)));
}

// Weatherization level sweep: monotone improvement, no regression anywhere.
class WeatherizationSweep : public ::testing::TestWithParam<double> {};

TEST_P(WeatherizationSweep, PueNeverWorseThanUninvested) {
  const double level = GetParam();
  const CoolingModel base{CoolingConfig{}};
  const CoolingModel invested{CoolingModel::weatherized(CoolingConfig{}, level)};
  for (double t = -5.0; t <= 40.0; t += 5.0) {
    EXPECT_LE(invested.pue(util::kilowatts(220.0), util::celsius(t)),
              base.pue(util::kilowatts(220.0), util::celsius(t)) + 1e-9)
        << "temp " << t << " level " << level;
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, WeatherizationSweep, ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

TEST(Cooling, ConfigValidation) {
  CoolingConfig bad;
  bad.max_overhead = 0.05;  // below min
  EXPECT_THROW(CoolingModel{bad}, std::invalid_argument);
  bad = CoolingConfig{};
  bad.saturation_celsius = bad.free_cooling_celsius;
  EXPECT_THROW(CoolingModel{bad}, std::invalid_argument);
  EXPECT_THROW((void)CoolingModel::weatherized(CoolingConfig{}, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace greenhpc::thermal
