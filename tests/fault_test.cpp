// Fault injection and graceful degradation: plan parsing/validation, the
// seeded injector's determinism and window model, the cluster/datacenter
// kill-and-requeue path (banked progress conserved, double-resume rejected),
// routing/planning degradation under fault windows, and the FaultDeterminism
// bit-identity pins — the zero-fault path must match the pre-fault-layer
// binary exactly, and faulted runs must be identical serial vs sharded.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/datacenter.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "fleet/coordinator.hpp"
#include "fleet/region.hpp"
#include "fleet/routing.hpp"
#include "migrate/planner.hpp"
#include "util/thread_pool.hpp"

namespace greenhpc {
namespace {

using util::TimePoint;

// --- fault plan ---------------------------------------------------------------

TEST(FaultPlan, NamedPlans) {
  const auto off = fault::fault_plan_from_name("off");
  ASSERT_TRUE(off.has_value());
  EXPECT_FALSE(off->enabled);

  const auto def = fault::fault_plan_from_name("default");
  ASSERT_TRUE(def.has_value());
  EXPECT_TRUE(def->enabled);
  EXPECT_GT(def->node_fail_per_region_day, 0.0);
  EXPECT_GT(def->blackout_per_region_day, 0.0);
  EXPECT_GT(def->link_stall_prob, 0.0);
  def->validate();  // the shipped plan must pass its own validation

  EXPECT_FALSE(fault::fault_plan_from_name("nope").has_value());
  EXPECT_NE(std::string(fault::fault_plan_names()).find("default"), std::string::npos);
}

TEST(FaultPlan, ValidateRejectsBadValues) {
  fault::FaultPlan plan = *fault::fault_plan_from_name("default");
  plan.node_fail_per_region_day = -0.1;
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = *fault::fault_plan_from_name("default");
  plan.node_fail_fraction = 1.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = *fault::fault_plan_from_name("default");
  plan.link_fail_prob = 2.0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = *fault::fault_plan_from_name("default");
  plan.brownout_cap_fraction = 0.0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = *fault::fault_plan_from_name("default");
  plan.blackout_duration = util::hours(0);
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlan, ScaledMultipliesRatesAndClampsProbabilities) {
  const fault::FaultPlan base = *fault::fault_plan_from_name("default");
  const fault::FaultPlan doubled = base.scaled(2.0);
  EXPECT_DOUBLE_EQ(doubled.node_fail_per_region_day, 2.0 * base.node_fail_per_region_day);
  EXPECT_DOUBLE_EQ(doubled.blackout_per_region_day, 2.0 * base.blackout_per_region_day);
  EXPECT_LE(doubled.link_stall_prob, 1.0);
  // Durations and fractions are shape, not intensity: unscaled.
  EXPECT_DOUBLE_EQ(doubled.node_fail_fraction, base.node_fail_fraction);
  EXPECT_DOUBLE_EQ(doubled.blackout_duration.seconds(), base.blackout_duration.seconds());

  const fault::FaultPlan zero = base.scaled(0.0);
  EXPECT_DOUBLE_EQ(zero.node_fail_per_region_day, 0.0);
  EXPECT_DOUBLE_EQ(zero.link_fail_prob, 0.0);

  const fault::FaultPlan huge = base.scaled(1e6);
  EXPECT_LE(huge.link_stall_prob, 1.0);
  EXPECT_LE(huge.link_fail_prob, 1.0);
  huge.validate();
}

// --- injector -----------------------------------------------------------------

fault::FaultPlan hot_plan() {
  fault::FaultPlan plan = *fault::fault_plan_from_name("default");
  return plan.scaled(20.0);  // dense windows so short tests see every family
}

TEST(FaultInjector, DeterministicPerSeed) {
  const auto timeline = [](std::uint64_t seed) {
    fault::FaultInjector inj(hot_plan(), seed, {8, 8, 8});
    std::ostringstream out;
    TimePoint t = TimePoint::from_seconds(0.0);
    const util::Duration dt = util::minutes(5);
    for (int step = 0; step < 2000; ++step, t = t + dt) {
      const fault::FaultInjector::Events ev = inj.begin_step(t, dt);
      for (const auto& f : ev.node_failures) out << step << "n" << f.region << "x" << f.nodes_lost;
      for (const std::size_t r : ev.blackout_begins) out << step << "b" << r;
      for (const std::size_t r : ev.brownout_begins) out << step << "w" << r;
      for (const std::size_t r : ev.dropout_begins) out << step << "d" << r;
    }
    return out.str();
  };
  const std::string a = timeline(7);
  EXPECT_FALSE(a.empty()) << "hot plan produced no faults in 2000 steps";
  EXPECT_EQ(a, timeline(7));     // same seed, same timeline, bit for bit
  EXPECT_NE(a, timeline(8));     // distinct seeds diverge
}

TEST(FaultInjector, WindowsOpenCloseAndGateState) {
  fault::FaultPlan plan;  // only blackouts + dropouts, guaranteed to fire
  plan.enabled = true;
  plan.blackout_per_region_day = 1e6;
  plan.blackout_duration = util::hours(1);
  plan.dropout_per_region_day = 1e6;
  plan.dropout_duration = util::hours(2);
  fault::FaultInjector inj(plan, 42, {4, 4});

  TimePoint t = TimePoint::from_seconds(0.0);
  const util::Duration dt = util::minutes(30);
  const fault::FaultInjector::Events first = inj.begin_step(t, dt);
  ASSERT_EQ(first.blackout_begins.size(), 2u);  // certain at that rate
  ASSERT_EQ(first.dropout_begins.size(), 2u);
  EXPECT_FALSE(inj.admit_ok(0));
  EXPECT_FALSE(inj.telemetry_ok(1));
  EXPECT_EQ(inj.regions_blacked_out(), 2u);

  // At most one open window per family per region: no re-begin while open.
  t = t + dt;
  const fault::FaultInjector::Events second = inj.begin_step(t, dt);
  EXPECT_TRUE(second.blackout_begins.empty());

  // Past the blackout duration the window closes (and instantly re-opens at
  // this absurd rate — the end event still fires first).
  t = t + util::hours(1);
  const fault::FaultInjector::Events third = inj.begin_step(t, dt);
  EXPECT_EQ(third.blackout_ends.size(), 2u);
}

TEST(FaultInjector, SingleNodeRegionsNeverLoseTheirOnlyNode) {
  fault::FaultPlan plan;
  plan.enabled = true;
  plan.node_fail_per_region_day = 1e6;
  plan.node_fail_fraction = 1.0;
  fault::FaultInjector inj(plan, 42, {1, 8});
  TimePoint t = TimePoint::from_seconds(0.0);
  for (int step = 0; step < 100; ++step, t = t + util::minutes(30)) {
    (void)inj.begin_step(t, util::minutes(30));
    EXPECT_EQ(inj.nodes_down(0), 0) << "one-node region lost its node";
    // The multi-node region fails hard but always keeps at least one node.
    EXPECT_LT(inj.nodes_down(1), 8);
  }
  EXPECT_GT(inj.nodes_down(1), 0);
}

TEST(FaultInjector, RejectsInvalidConstruction) {
  fault::FaultPlan plan = hot_plan();
  EXPECT_THROW(fault::FaultInjector(plan, 42, {}), std::invalid_argument);
  EXPECT_THROW(fault::FaultInjector(plan, 42, {4, 0}), std::invalid_argument);
  plan.node_fail_fraction = -1.0;
  EXPECT_THROW(fault::FaultInjector(plan, 42, {4}), std::invalid_argument);
}

// --- cluster enabled-node validation (set_enabled_nodes contract) -------------

TEST(ClusterEnabledNodes, NegativeThrowsOverTotalClamps) {
  cluster::ClusterSpec spec;
  spec.node_count = 4;
  spec.gpus_per_node = 2;
  cluster::Cluster cluster(spec);
  EXPECT_THROW(cluster.set_enabled_nodes(-1), std::invalid_argument);
  cluster.set_enabled_nodes(1000);  // clamped, not rejected
  EXPECT_EQ(cluster.free_gpus(), 8);
  cluster.set_enabled_nodes(2);
  EXPECT_EQ(cluster.free_gpus(), 4);
  cluster.set_enabled_nodes(0);
  EXPECT_EQ(cluster.free_gpus(), 0);
}

// --- datacenter kill-and-requeue ----------------------------------------------

class GreedyScheduler final : public sched::Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "greedy_fcfs"; }
  [[nodiscard]] std::vector<cluster::JobId> select(const sched::SchedulerContext& ctx) override {
    std::vector<cluster::JobId> starts;
    int free = ctx.cluster->free_gpus();
    for (const cluster::JobId id : *ctx.queue) {
      const int gpus = ctx.jobs->get(id).request().gpus;
      if (gpus <= free) {
        starts.push_back(id);
        free -= gpus;
      }
    }
    return starts;
  }
};

TEST(DatacenterFaults, ResizeKillsRequeuesAndConservesBankedProgress) {
  core::DatacenterConfig config;
  config.reseed(7);
  core::Datacenter dc(config, std::make_unique<GreedyScheduler>());

  cluster::JobRequest request;
  request.gpus = dc.cluster_state().total_gpus();  // spans every node
  request.work_gpu_seconds = static_cast<double>(request.gpus) * 10.0 * 3600.0;  // 10 h
  (void)dc.submit(request);
  dc.run_until(TimePoint::from_seconds(0.0) + util::hours(3));
  ASSERT_EQ(dc.running_jobs().size(), 1u);
  const double done = dc.jobs().get(dc.running_jobs().front()).work_done();
  ASSERT_GT(done, 0.0);

  // Lose half the machine: the spanning job is killed and requeued from its
  // banked snapshot — but at half capacity it no longer fits, so it waits.
  const std::size_t requeued = dc.resize_enabled_nodes(dc.cluster_state().spec().node_count / 2);
  EXPECT_EQ(requeued, 1u);
  EXPECT_EQ(dc.jobs_requeued(), 1u);
  EXPECT_TRUE(dc.running_jobs().empty());

  // Repair and finish: the credited total must be the full job, with the
  // pre-kill progress banked (not lost, not double-counted).
  dc.resize_enabled_nodes(dc.cluster_state().spec().node_count);
  dc.run_until(TimePoint::from_seconds(0.0) + util::hours(16));
  EXPECT_NEAR(dc.summary().completed_gpu_hours, request.work_gpu_seconds / 3600.0, 1e-9);
}

TEST(DatacenterFaults, DoubleResumeOfSameSnapshotRejected) {
  core::DatacenterConfig config;
  config.reseed(7);
  core::Datacenter source(config, std::make_unique<GreedyScheduler>());
  core::Datacenter dest(config, std::make_unique<GreedyScheduler>());

  cluster::JobRequest request;
  request.gpus = 2;
  request.work_gpu_seconds = 2.0 * 8.0 * 3600.0;
  (void)source.submit(request);
  source.run_until(TimePoint::from_seconds(0.0) + util::hours(2));
  const core::Datacenter::PreemptedJob snapshot =
      source.preempt(source.running_jobs().front());
  ASSERT_NE(snapshot.snapshot_id, 0u);

  // Resuming the same banked progress twice at one site would double-spend
  // the lineage's GPU-hours; the second attempt must be rejected. (Cross-site
  // replay is prevented structurally: the coordinator's deliver and abandon
  // paths each consume the in-flight entry, so a snapshot reaches exactly
  // one resume call.)
  (void)dest.resume(snapshot);
  EXPECT_THROW((void)dest.resume(snapshot), std::invalid_argument);
}

TEST(DatacenterFaults, FaultPowerCapComposesWithScheduler) {
  core::DatacenterConfig config;
  config.reseed(7);
  core::Datacenter dc(config, std::make_unique<GreedyScheduler>());
  cluster::JobRequest request;
  request.gpus = 2;
  request.work_gpu_seconds = 2.0 * 24.0 * 3600.0;
  (void)dc.submit(request);

  dc.set_fault_power_cap(dc.cluster_state().spec().gpu.min_cap);
  dc.run_until(TimePoint::from_seconds(0.0) + util::hours(2));
  const double capped = dc.jobs().get(dc.running_jobs().front()).work_done();

  dc.set_fault_power_cap(std::nullopt);
  dc.run_until(TimePoint::from_seconds(0.0) + util::hours(4));
  const double after = dc.jobs().get(dc.running_jobs().front()).work_done();
  // Brownout-capped hours make strictly less progress than uncapped hours.
  EXPECT_LT(capped, (after - capped) * 0.95);
}

// --- routing degradation -------------------------------------------------------

fleet::RegionView healthy_view(std::size_t index, int free_gpus) {
  fleet::RegionView v;
  v.index = index;
  v.name = "r";
  v.total_gpus = 64;
  v.free_gpus = free_gpus;
  return v;
}

TEST(RoutingDegradation, RoutersAvoidBlackedOutRegions) {
  std::vector<fleet::RegionView> views{healthy_view(0, 64), healthy_view(1, 64),
                                       healthy_view(2, 64)};
  views[0].admit_ok = false;  // home region dark
  cluster::JobRequest request;
  request.gpus = 4;
  fleet::RoutingContext ctx;
  ctx.regions = views;

  for (const char* name : {"round_robin", "least_loaded", "carbon_greedy", "cost_greedy"}) {
    const auto router = fleet::make_router(name);
    for (int i = 0; i < 6; ++i) {
      EXPECT_NE(router->route(request, ctx), 0u) << name << " routed into a blackout";
    }
  }
}

TEST(RoutingDegradation, AllRegionsDarkStillRoutesSomewhere) {
  // Total fleet blackout: admission cannot stall the workload generator, so
  // the router degrades to its fault-free choice (the job queues and waits).
  std::vector<fleet::RegionView> views{healthy_view(0, 64), healthy_view(1, 64)};
  views[0].admit_ok = false;
  views[1].admit_ok = false;
  cluster::JobRequest request;
  request.gpus = 4;
  fleet::RoutingContext ctx;
  ctx.regions = views;
  for (const char* name : {"round_robin", "least_loaded", "carbon_greedy"}) {
    const auto router = fleet::make_router(name);
    EXPECT_LT(router->route(request, ctx), views.size()) << name;
  }
}

TEST(RoutingDegradation, PlannerNeverMigratesIntoBlackout) {
  migrate::MigrationConfig config;
  config.objective = migrate::MigrationObjective::kCarbon;
  migrate::MigrationPlanner planner(config);

  std::vector<fleet::RegionView> views{healthy_view(0, 0), healthy_view(1, 64)};
  views[0].carbon = util::g_per_kwh(800.0);  // dirty source
  views[1].carbon = util::g_per_kwh(20.0);   // clean dest...
  views[1].admit_ok = false;                                       // ...but dark
  views[0].busy_gpu_power = util::watts(250.0);
  views[1].busy_gpu_power = util::watts(250.0);

  migrate::MigrationCandidate candidate;
  candidate.region = 0;
  candidate.job = 1;
  candidate.gpus = 4;
  candidate.work_remaining_gpu_seconds = 4.0 * 12.0 * 3600.0;
  const auto decisions = planner.plan(TimePoint::from_seconds(0.0), views, {&candidate, 1},
                                      4, {});
  EXPECT_TRUE(decisions.empty()) << "planner shipped a checkpoint into a blackout";
}

TEST(MigrationPlanner, RetryBackoffDeterministicAndBounded) {
  migrate::MigrationConfig config;
  config.objective = migrate::MigrationObjective::kCarbon;
  config.retry_backoff = util::minutes(30);
  config.max_retry_attempts = 3;
  const migrate::MigrationPlanner planner(config);
  EXPECT_DOUBLE_EQ(planner.retry_delay(1).seconds(), util::minutes(30).seconds());
  EXPECT_DOUBLE_EQ(planner.retry_delay(2).seconds(), util::hours(1).seconds());
  EXPECT_DOUBLE_EQ(planner.retry_delay(3).seconds(), util::hours(2).seconds());
  EXPECT_TRUE(planner.should_retry(1));
  EXPECT_TRUE(planner.should_retry(3));
  EXPECT_FALSE(planner.should_retry(4));
  EXPECT_THROW((void)planner.retry_delay(0), std::invalid_argument);
}

// --- end-to-end degradation ----------------------------------------------------

std::unique_ptr<fleet::FleetCoordinator> faulted_fleet(std::size_t regions, double intensity,
                                                       std::size_t step_jobs = 1,
                                                       util::ThreadPool* pool = nullptr,
                                                       std::uint64_t seed = 42) {
  std::vector<fleet::RegionProfile> profiles = fleet::make_synthetic_fleet(regions);
  fleet::FleetConfig config;
  config.seed = seed;
  config.arrivals.base_rate_per_hour = fleet::scaled_fleet_rate(profiles, 14.0);
  config.step_jobs = step_jobs;
  config.step_pool = pool;
  config.migration.objective = *migrate::migration_objective_from_name("carbon");
  config.faults = fault::fault_plan_from_name("default")->scaled(intensity);
  return std::make_unique<fleet::FleetCoordinator>(std::move(config), std::move(profiles),
                                                   fleet::make_router("carbon_forecast"));
}

TEST(FaultedFleet, SurvivesAndRecordsRecovery) {
  const auto fleet = faulted_fleet(3, 4.0);
  fleet->run_until(fleet->now() + util::days(10));
  fleet->drain_migrations();

  const fault::FaultStats& fs = fleet->fault_stats();
  EXPECT_GT(fs.node_failures, 0u);
  EXPECT_GT(fs.jobs_requeued, 0u);
  EXPECT_GT(fs.capacity_gpu_hours_lost, 0.0);
  EXPECT_NEAR(fs.mttr_hours(), 8.0, 1e-9);  // plan repair window is fixed
  EXPECT_EQ(fleet->migrations_in_flight(), 0u);
  EXPECT_EQ(fleet->migrations_awaiting_retry(), 0u);

  // Work conservation under faults: submissions at the regions decompose
  // into routed arrivals, delivered checkpoints, abandoned-resumed
  // lineages, and node-loss requeues.
  const telemetry::FleetRunSummary s = fleet->summary();
  std::size_t submitted = 0, routed = 0, requeued = 0;
  for (const telemetry::RegionRunSummary& r : s.regions) {
    submitted += r.run.jobs_submitted;
    routed += r.jobs_routed;
  }
  for (std::size_t i = 0; i < fleet->region_count(); ++i) {
    requeued += fleet->region(i).jobs_requeued();
  }
  EXPECT_EQ(requeued, fs.jobs_requeued);
  EXPECT_EQ(submitted, routed + s.migration.delivered + s.migration.abandoned + requeued);
}

TEST(FaultedFleet, AbandonedLineagesResumeAtSource) {
  // Certain link failure + zero retries: every launched transfer must be
  // abandoned and resumed at its source; nothing may deliver.
  std::vector<fleet::RegionProfile> profiles = fleet::make_synthetic_fleet(3);
  fleet::FleetConfig config;
  config.seed = 42;
  config.arrivals.base_rate_per_hour = fleet::scaled_fleet_rate(profiles, 14.0);
  config.migration.objective = *migrate::migration_objective_from_name("carbon");
  config.migration.max_retry_attempts = 0;
  config.faults.enabled = true;
  config.faults.link_fail_prob = 1.0;
  const auto fleet = std::make_unique<fleet::FleetCoordinator>(
      std::move(config), std::move(profiles), fleet::make_router("carbon_forecast"));
  fleet->run_until(fleet->now() + util::days(10));
  fleet->drain_migrations();

  const telemetry::FleetRunSummary s = fleet->summary();
  ASSERT_GT(s.migration.started, 0u) << "window too calm to exercise migration";
  EXPECT_EQ(s.migration.delivered, 0u);
  EXPECT_EQ(s.migration.abandoned, s.migration.started);
  EXPECT_EQ(fleet->fault_stats().migrations_abandoned, s.migration.started);
}

// --- FaultDeterminism: bit-identity pins (determinism ctest label) -------------

/// Every load-bearing summary double in hexfloat: equal digests mean
/// bit-identical simulated results.
std::string digest(const telemetry::FleetRunSummary& s) {
  std::ostringstream out;
  out << std::hexfloat;
  const auto run = [&out](const core::RunSummary& r) {
    out << ' ' << r.jobs_submitted << ' ' << r.jobs_completed << ' ' << r.jobs_pending << ' '
        << r.jobs_migrated << ' ' << r.mean_queue_wait_hours << ' ' << r.completed_gpu_hours
        << ' ' << r.mean_utilization << ' ' << r.mean_pue << ' '
        << r.grid_totals.energy.joules() << ' ' << r.grid_totals.cost.dollars() << ' '
        << r.grid_totals.carbon.kilograms() << ' ' << r.grid_totals.water.liters();
  };
  run(s.total);
  out << ' ' << s.transfer.energy.joules() << ' ' << s.migration.started << ' '
      << s.migration.delivered;
  for (const telemetry::RegionRunSummary& r : s.regions) {
    out << ' ' << r.name << ' ' << r.jobs_routed << ' ' << r.jobs_migrated_in << ' '
        << r.jobs_migrated_out;
    run(r.run);
  }
  return out.str();
}

std::string faulted_digest(double intensity, std::size_t step_jobs, util::ThreadPool* pool,
                           std::uint64_t seed = 42) {
  const auto fleet = faulted_fleet(3, intensity, step_jobs, pool, seed);
  fleet->run_until(fleet->now() + util::days(10));
  fleet->drain_migrations();
  return digest(fleet->summary());
}

/// The zero-fault fleet digest captured from the pre-fault-layer binary
/// (3 synthetic regions, seed 42, 14 jobs/h/site, carbon migration on the
/// carbon_forecast router, 10 days + drain). The fault layer must not move
/// a single bit of this run while disabled.
constexpr const char* kPreFaultLayerDigest =
    " 14196 13523 246 193 0x1.9c51879bbfa5p-2 0x1.8aa1d099f04e1p+17 0x1.b5f212121211fp-1"
    " 0x1.3101d9da86e59p+0 0x1.27a7751a21496p+39 0x1.76df01e5c3a31p+12 0x1.6a3de6a7cae94p+15"
    " 0x1.36040d2610b8p+18 0x1.12623p+29 193 193 iso-ne 5656 107 69 5763 5477 117 69"
    " 0x1.c2275b51864d7p-2 0x1.6839ffce553d3p+16 0x1.d67dddddddddap-1 0x1.2e1c2b66442d3p+0"
    " 0x1.e8aae8fee8f65p+37 0x1.a26fecff0b13dp+11 0x1.40604e0750f48p+14 0x1.0033db7e84ec9p+17"
    " ercot 3409 0 124 3409 3144 65 124 0x1.2a4224bf14d2bp-2 0x1.a7d613ffb868ep+15"
    " 0x1.6aed27d27d27dp-1 0x1.34fab4384e0f5p+0 0x1.91857db2a76e2p+37 0x1.ad1295286709cp+10"
    " 0x1.45d05655d0856p+14 0x1.a50697e3fb24ep+16 columbia-hydro 4938 86 0 5024 4902 64 0"
    " 0x1.bb33333333333p-2 0x1.b23d2ecb5e551p+15 0x1.ed84ccccccccdp-1 0x1.30650d1900819p+0"
    " 0x1.246d6db6f4c11p+37 0x1.d31330e122b55p+9 0x1.392ca3c9d1628p+12 0x1.32a1e5b73de2p+16";

TEST(FaultDeterminism, ZeroFaultPathBitIdenticalToPreFaultLayerBinary) {
  std::vector<fleet::RegionProfile> profiles = fleet::make_synthetic_fleet(3);
  fleet::FleetConfig config;
  config.seed = 42;
  config.arrivals.base_rate_per_hour = fleet::scaled_fleet_rate(profiles, 14.0);
  config.migration.objective = *migrate::migration_objective_from_name("carbon");
  const auto fleet = std::make_unique<fleet::FleetCoordinator>(
      std::move(config), std::move(profiles), fleet::make_router("carbon_forecast"));
  fleet->run_until(fleet->now() + util::days(10));
  fleet->drain_migrations();
  EXPECT_EQ(digest(fleet->summary()), kPreFaultLayerDigest);
  EXPECT_EQ(fleet->fault_injector(), nullptr);
}

TEST(FaultDeterminism, FaultedSerialEqualsShardedAtEveryPoolSize) {
  const std::string serial = faulted_digest(4.0, 1, nullptr);
  util::ThreadPool pool1(1);
  util::ThreadPool pool3(3);
  EXPECT_EQ(faulted_digest(4.0, 2, &pool1), serial);  // 2 shards on 1 thread
  EXPECT_EQ(faulted_digest(4.0, 3, &pool3), serial);
  EXPECT_EQ(faulted_digest(4.0, 0, &pool3), serial);  // auto width
}

TEST(FaultDeterminism, SeedStableAndSeedSensitive) {
  const std::string a = faulted_digest(4.0, 1, nullptr, 7);
  EXPECT_EQ(a, faulted_digest(4.0, 1, nullptr, 7));
  EXPECT_NE(a, faulted_digest(4.0, 1, nullptr, 8));
}

}  // namespace
}  // namespace greenhpc
