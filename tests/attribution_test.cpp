// Unit tests for the carbon attribution ledger, run provenance manifests,
// and the cross-run comparison library (obs/attribution, obs/manifest,
// obs/run_compare).
//
// The load-bearing guarantees:
//   - conservation: direct + overhead == accountant + transfer, and
//     amortized + unattributed == grid - accountant, on both the single
//     twin and the flagship 4-region forecast+migration fleet;
//   - lineage continuity: a migrated job's footprint survives the move as
//     one lineage (segments fold, overhead billed to the root);
//   - bit-identity: attaching the attribution instrument changes nothing
//     about the simulated run;
//   - self-checking artifacts: the JSONL export re-validates its own
//     conservation identities, a perturbed line fails, and a schema
//     version bump is caught by --validate.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/datacenter.hpp"
#include "core/optimization.hpp"
#include "fleet/coordinator.hpp"
#include "fleet/region.hpp"
#include "fleet/routing.hpp"
#include "migrate/planner.hpp"
#include "obs/attribution.hpp"
#include "obs/manifest.hpp"
#include "obs/recorder.hpp"
#include "obs/run_compare.hpp"
#include "obs/trace_report.hpp"
#include "sched/scheduler.hpp"
#include "telemetry/fleet.hpp"

namespace greenhpc::obs {
namespace {

using util::TimePoint;

/// Relative closeness at the documented 1e-9 artifact tolerance.
void expect_close(double a, double b, const char* what) {
  const double tol = 1e-9 * std::max({1.0, std::fabs(a), std::fabs(b)});
  EXPECT_NEAR(a, b, tol) << what;
}

void expect_ledger_close(const grid::EnergyLedger& a, const grid::EnergyLedger& b,
                         const char* what) {
  expect_close(a.energy.joules(), b.energy.joules(), what);
  expect_close(a.cost.dollars(), b.cost.dollars(), what);
  expect_close(a.carbon.kilograms(), b.carbon.kilograms(), what);
  expect_close(a.water.liters(), b.water.liters(), what);
}

FlightRecorder attribution_recorder() {
  FlightRecorderConfig config;
  config.attribution = true;
  return FlightRecorder(config);
}

/// The flagship fleet: 4 reference regions, forecast router, carbon-objective
/// migration — the scenario the ISSUE's conservation bar names.
std::unique_ptr<fleet::FleetCoordinator> build_flagship_fleet(std::uint64_t seed) {
  std::vector<fleet::RegionProfile> profiles = fleet::make_reference_fleet();
  fleet::FleetConfig config;
  config.seed = seed;
  config.arrivals.base_rate_per_hour = fleet::scaled_fleet_rate(profiles, 14.0);
  config.migration.objective = migrate::MigrationObjective::kCarbon;
  return std::make_unique<fleet::FleetCoordinator>(
      std::move(config), std::move(profiles), fleet::make_router("carbon_forecast"),
      [] { return core::make_scheduler(core::PolicyKind::kForecastCarbon); });
}

// --- conservation ------------------------------------------------------------

TEST(Attribution, SingleSiteConservation) {
  FlightRecorder recorder = attribution_recorder();
  auto dc = core::make_reference_datacenter(std::make_unique<sched::EasyBackfillScheduler>(), 7);
  dc->set_recorder(&recorder);
  dc->run_until(TimePoint::from_seconds(5.0 * 86400.0));

  const RegionAttributionSink* sink = recorder.attribution().sink(0);
  ASSERT_NE(sink, nullptr);
  const grid::EnergyLedger accountant = dc->accountant().totals();
  const grid::EnergyLedger grid_meter = dc->summary().grid_totals;

  // Direct mirrors the accountant increment-for-increment: bit-for-bit.
  EXPECT_EQ(sink->direct_total().energy.joules(), accountant.energy.joules());
  EXPECT_EQ(sink->direct_total().cost.dollars(), accountant.cost.dollars());
  EXPECT_EQ(sink->direct_total().carbon.kilograms(), accountant.carbon.kilograms());
  EXPECT_EQ(sink->direct_total().water.liters(), accountant.water.liters());

  // Residual identity: amortized + unattributed covers grid minus accountant.
  grid::EnergyLedger residual = sink->amortized_total();
  residual += sink->unattributed();
  expect_close(residual.energy.joules(), grid_meter.energy.joules() - accountant.energy.joules(),
               "residual energy");
  expect_close(residual.carbon.kilograms(),
               grid_meter.carbon.kilograms() - accountant.carbon.kilograms(), "residual carbon");

  // And something real was attributed.
  EXPECT_GT(sink->records().size(), 100u);
  EXPECT_GT(sink->direct_total().energy.joules(), 0.0);
  EXPECT_GT(sink->amortized_total().energy.joules(), 0.0);
}

TEST(Attribution, FlagshipFleetConservation) {
  FlightRecorder recorder = attribution_recorder();
  auto fleet = build_flagship_fleet(21);
  fleet->set_recorder(&recorder);
  fleet->run_until(fleet->now() + util::days(14));
  fleet->drain_migrations();

  const AttributionLedger& ledger = recorder.attribution();
  const grid::EnergyLedger transfer = fleet->transfer_ledger();
  const telemetry::FleetRunSummary summary = fleet->summary();

  // Overhead mirrors charge_transfer increment-for-increment; the recomputed
  // transfer ledger sums per-region (a different addition order), so the
  // comparison is at the documented 1e-9 relative tolerance.
  expect_ledger_close(ledger.overhead_total(), transfer, "overhead vs transfer");
  EXPECT_GT(transfer.energy.joules(), 0.0);  // migrations actually happened

  grid::EnergyLedger accountant;
  grid::EnergyLedger grid_meter;
  for (std::size_t r = 0; r < 4; ++r) {
    accountant += fleet->region(r).accountant().totals();
    grid_meter += fleet->region(r).summary().grid_totals;
    // Per-region direct identity, bit-for-bit.
    const RegionAttributionSink* sink = ledger.sink(r);
    ASSERT_NE(sink, nullptr) << r;
    EXPECT_EQ(sink->direct_total().energy.joules(),
              fleet->region(r).accountant().totals().energy.joules())
        << r;
  }

  const AttributionReport report = ledger.report();

  // The headline identity: attributed == billed.
  grid::EnergyLedger attributed = report.direct_total;
  attributed += report.overhead_total;
  grid::EnergyLedger billed = accountant;
  billed += transfer;
  expect_ledger_close(attributed, billed, "direct+overhead vs accountant+transfer");

  // Residual identity fleet-wide: amortized + unattributed == grid - accountant.
  grid::EnergyLedger residual = report.amortized_total;
  residual += report.unattributed_total;
  expect_close(residual.energy.joules(),
               grid_meter.energy.joules() - accountant.energy.joules(), "fleet residual energy");
  expect_close(residual.carbon.kilograms(),
               grid_meter.carbon.kilograms() - accountant.carbon.kilograms(),
               "fleet residual carbon");

  // Internal consistency: user rows, region rows, and job rows each cover
  // the same totals.
  grid::EnergyLedger user_direct, user_overhead, user_amortized;
  for (const AttributionUserRow& u : report.users) {
    user_direct += u.direct;
    user_overhead += u.overhead;
    user_amortized += u.amortized;
  }
  expect_ledger_close(user_direct, report.direct_total, "user direct sum");
  expect_ledger_close(user_overhead, report.overhead_total, "user overhead sum");
  expect_ledger_close(user_amortized, report.amortized_total, "user amortized sum");

  ASSERT_EQ(report.regions.size(), 4u);
  grid::EnergyLedger region_direct;
  for (const AttributionRegionRow& r : report.regions) region_direct += r.direct;
  expect_ledger_close(region_direct, report.direct_total, "region direct sum");

  grid::EnergyLedger job_direct, job_overhead;
  for (const AttributionJobRow& j : report.jobs) {
    job_direct += j.direct;
    job_overhead += j.overhead;
  }
  expect_ledger_close(job_direct, report.direct_total, "job direct sum");
  expect_ledger_close(job_overhead, report.overhead_total, "job overhead sum");

  // summary() agreement: the reference ledgers the export embeds are the
  // ones the fleet reports.
  EXPECT_EQ(summary.transfer.energy.joules(), transfer.energy.joules());
}

// --- migrated-lineage continuity ---------------------------------------------

TEST(Attribution, MigratedLineageFoldsIntoOneRow) {
  FlightRecorder recorder = attribution_recorder();
  auto fleet = build_flagship_fleet(5);
  fleet->set_recorder(&recorder);
  fleet->run_until(fleet->now() + util::days(14));
  fleet->drain_migrations();
  ASSERT_GT(fleet->summary().migration.delivered, 0u);

  const AttributionReport report = recorder.attribution().report();
  std::size_t migrated_rows = 0;
  std::size_t folded_rows = 0;
  for (const AttributionJobRow& j : report.jobs) {
    EXPECT_EQ(j.region, j.key >> 40) << "origin region derives from the root key";
    if (j.migrations > 0) {
      ++migrated_rows;
      // The checkpoint move was billed to the lineage root.
      EXPECT_GT(j.overhead.energy.joules(), 0.0) << "lineage " << j.key;
      // A lineage charged at both its source and destination folded into one
      // row (segments counts per-region records; a job snapshotted before
      // its first charge legitimately shows one).
      if (j.segments >= 2) ++folded_rows;
    } else {
      // Folding only happens via migration; 0 segments is an overhead-only
      // row (admission billed, never charged — e.g. queued at run end).
      EXPECT_LE(j.segments, 1) << "unmigrated lineage " << j.key;
      if (j.segments == 0) {
        EXPECT_GT(j.overhead.energy.joules(), 0.0) << j.key;
      }
    }
  }
  EXPECT_GT(migrated_rows, 0u);
  EXPECT_GT(folded_rows, 0u);

  // Lineage folding must not double-count: distinct lineage keys only.
  for (std::size_t i = 1; i < report.jobs.size(); ++i) {
    EXPECT_LT(report.jobs[i - 1].key, report.jobs[i].key);
  }
}

// --- bit-identity ------------------------------------------------------------

TEST(Attribution, FleetRunIsBitIdenticalWithAttributionAttached) {
  const auto run = [](FlightRecorder* recorder) {
    auto fleet = build_flagship_fleet(17);
    if (recorder != nullptr) fleet->set_recorder(recorder);
    fleet->run_until(fleet->now() + util::days(10));
    fleet->drain_migrations();
    return fleet->summary();
  };
  const telemetry::FleetRunSummary plain = run(nullptr);
  FlightRecorder recorder = attribution_recorder();
  const telemetry::FleetRunSummary attributed = run(&recorder);

  EXPECT_EQ(plain.total.jobs_submitted, attributed.total.jobs_submitted);
  EXPECT_EQ(plain.total.jobs_completed, attributed.total.jobs_completed);
  EXPECT_EQ(plain.total.jobs_migrated, attributed.total.jobs_migrated);
  EXPECT_EQ(plain.total.completed_gpu_hours, attributed.total.completed_gpu_hours);
  EXPECT_EQ(plain.total.mean_queue_wait_hours, attributed.total.mean_queue_wait_hours);
  EXPECT_EQ(plain.total.grid_totals.energy.joules(),
            attributed.total.grid_totals.energy.joules());
  EXPECT_EQ(plain.total.grid_totals.cost.dollars(), attributed.total.grid_totals.cost.dollars());
  EXPECT_EQ(plain.total.grid_totals.carbon.kilograms(),
            attributed.total.grid_totals.carbon.kilograms());
  EXPECT_EQ(plain.migration.started, attributed.migration.started);
  EXPECT_EQ(plain.migration.delivered, attributed.migration.delivered);
  EXPECT_EQ(plain.transfer.energy.joules(), attributed.transfer.energy.joules());
  // The instrument observed the run it did not perturb.
  EXPECT_GT(recorder.attribution().report().jobs.size(), 100u);
}

// --- exports and validators --------------------------------------------------

/// A small but real attribution artifact: flagship fleet, short window.
std::string flagship_artifact(const RunManifest* manifest = nullptr) {
  FlightRecorder recorder = attribution_recorder();
  auto fleet = build_flagship_fleet(21);
  fleet->set_recorder(&recorder);
  fleet->run_until(fleet->now() + util::days(7));
  fleet->drain_migrations();
  AttributionReference reference;
  reference.transfer = fleet->transfer_ledger();
  for (std::size_t r = 0; r < 4; ++r) {
    reference.accountant += fleet->region(r).accountant().totals();
    reference.grid += fleet->region(r).summary().grid_totals;
  }
  return attribution_json(recorder.attribution().report(), reference, manifest);
}

TEST(Attribution, JsonExportValidatesAndPerturbationIsCaught) {
  const std::string text = flagship_artifact();
  {
    std::istringstream in(text);
    std::vector<std::string> warnings;
    const std::vector<std::string> errors = validate_attribution_jsonl(in, &warnings);
    EXPECT_TRUE(errors.empty()) << errors.front();
    // No manifest passed: the validator warns but does not fail.
    ASSERT_EQ(warnings.size(), 1u);
    EXPECT_NE(warnings.front().find("manifest"), std::string::npos);
  }
  // Perturb one digit of the direct total: conservation re-check must fail.
  const std::size_t pos = text.find("\"total\": \"direct\"");
  ASSERT_NE(pos, std::string::npos);
  std::string perturbed = text;
  const std::size_t digit = perturbed.find_first_of("123456789", pos);
  ASSERT_NE(digit, std::string::npos);
  perturbed[digit] = (perturbed[digit] == '9') ? '1' : perturbed[digit] + 1;
  std::istringstream in(perturbed);
  EXPECT_FALSE(validate_attribution_jsonl(in).empty());
}

TEST(Attribution, CsvExportCarriesManifestAndFullPrecision) {
  RunManifest manifest = make_manifest("greenhpc_tests");
  manifest.scenario = "unit/csv";
  FlightRecorder recorder = attribution_recorder();
  auto dc = core::make_reference_datacenter(std::make_unique<sched::EasyBackfillScheduler>(), 3);
  dc->set_recorder(&recorder);
  dc->run_until(TimePoint::from_seconds(2.0 * 86400.0));
  const std::string csv = attribution_csv(recorder.attribution().report(), &manifest);
  EXPECT_EQ(csv.rfind("# manifest: {", 0), 0u);
  EXPECT_NE(csv.find("key,region,user,job_class,segments,migrations"), std::string::npos);
  // 17-significant-digit serialization: a full double survives the round trip.
  EXPECT_NE(csv.find('.'), std::string::npos);
}

// --- manifests and schema versioning -----------------------------------------

TEST(Manifest, RoundTripsThroughTheValidator) {
  RunManifest manifest = make_manifest("greenhpc_tests");
  manifest.scenario = "unit/roundtrip";
  manifest.seed = 99;
  manifest.regions = 2;
  manifest.region_names = {"a", "b"};
  manifest.wall_seconds = 1.25;
  const std::string json = manifest.to_json();
  EXPECT_TRUE(validate_manifest_text(json).empty());

  std::string* fields[] = {&manifest.tool, &manifest.scenario};
  (void)fields;
  // The parsed form carries the provenance fields.
  std::string error;
  const std::optional<JsonValue> parsed = parse_json(json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->find("tool")->text, "greenhpc_tests");
  EXPECT_EQ(parsed->find("seed")->number, 99.0);
  EXPECT_EQ(parsed->find("schema_version")->number, static_cast<double>(kSchemaVersion));
}

TEST(Manifest, SchemaVersionBumpIsCaughtByValidators) {
  RunManifest manifest = make_manifest("greenhpc_tests");
  manifest.scenario = "unit/bump";
  // Simulate an artifact written by a future format: bump the version field.
  std::string bumped = manifest.to_json();
  const std::string needle = "\"schema_version\": " + std::to_string(kSchemaVersion);
  const std::size_t pos = bumped.find(needle);
  ASSERT_NE(pos, std::string::npos);
  bumped.replace(pos, needle.size(),
                 "\"schema_version\": " + std::to_string(kSchemaVersion + 1));
  EXPECT_FALSE(validate_manifest_text(bumped).empty());

  // And an attribution artifact whose header carries the bumped version
  // fails --validate end to end.
  std::string artifact = flagship_artifact(&manifest);
  EXPECT_TRUE([&] {
    std::istringstream in(artifact);
    return validate_attribution_jsonl(in).empty();
  }()) << "clean artifact must validate";
  const std::size_t hpos = artifact.find(needle);
  ASSERT_NE(hpos, std::string::npos);
  artifact.replace(hpos, needle.size(),
                   "\"schema_version\": " + std::to_string(kSchemaVersion + 1));
  std::istringstream in(artifact);
  EXPECT_FALSE(validate_attribution_jsonl(in).empty());
}

TEST(Manifest, ExtractFindsEmbeddedHeaders) {
  RunManifest manifest = make_manifest("greenhpc_tests");
  manifest.scenario = "unit/extract";
  const std::string json = manifest.to_json();
  // JSONL-style header line.
  EXPECT_EQ(extract_manifest_text("{\"manifest\": " + json + "}\n{\"kind\": \"x\"}\n"), json);
  // CSV comment style.
  EXPECT_EQ(extract_manifest_text("# manifest: " + json + "\nkey,region\n"), json);
  // Absent.
  EXPECT_TRUE(extract_manifest_text("{\"t_seconds\": 0}\n").empty());
}

// --- run_compare -------------------------------------------------------------

TEST(RunCompare, ParsesThisReposJson) {
  std::string error;
  const auto v = parse_json(R"({"a": 1.5, "b": [1, 2], "c": {"d": "x"}, "e": null})", &error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_DOUBLE_EQ(v->find("a")->number, 1.5);
  ASSERT_EQ(v->find("b")->array.size(), 2u);
  EXPECT_EQ(v->find("c")->find("d")->text, "x");
  EXPECT_EQ(v->find("e")->kind, JsonValue::Kind::Null);
  EXPECT_FALSE(parse_json("{\"a\": }", &error).has_value());
  EXPECT_FALSE(parse_json("[1, 2", &error).has_value());
}

TEST(RunCompare, LoadsAttributionArtifacts) {
  RunManifest manifest = make_manifest("greenhpc_tests");
  manifest.scenario = "unit/load";
  const std::string text = flagship_artifact(&manifest);
  std::istringstream in(text);
  const ArtifactData data = load_artifact(in);
  EXPECT_TRUE(data.ok()) << (data.errors.empty() ? "" : data.errors.front());
  EXPECT_EQ(data.kind, "attribution");
  ASSERT_TRUE(data.manifest.has_value());
  EXPECT_EQ(data.manifest->find("scenario")->text, "unit/load");
  EXPECT_GT(data.series.size(), 10u);

  // Identical artifacts: no regression at the tightest tolerance.
  std::istringstream in_a(text), in_b(text);
  const DiffReport same =
      diff_artifacts(load_artifact(in_a), load_artifact(in_b), DiffOptions{});
  EXPECT_FALSE(same.regression());
}

TEST(RunCompare, PairedCiAbsolvesNoiseAndCatchesShift) {
  const auto experiment = [](const std::vector<double>& values) {
    std::string text = R"({"scenario": "unit", "metrics": [{"name": "m", "mean": )";
    double sum = 0.0;
    for (const double v : values) sum += v;
    text += std::to_string(sum / static_cast<double>(values.size()));
    text += R"(, "values": [)";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) text += ", ";
      text += std::to_string(values[i]);
    }
    text += "]}]}";
    return text;
  };
  const auto load = [](const std::string& text) {
    std::istringstream in(text);
    return load_artifact(in);
  };
  DiffOptions options;
  options.rel_tol = 1e-3;

  // Anti-correlated noise: per-replica jitter, mean drift well inside the
  // paired CI — the CI must absolve it.
  const ArtifactData base = load(experiment({10.0, 20.0, 30.0, 40.0}));
  const ArtifactData noisy = load(experiment({10.4, 19.7, 30.2, 39.8}));
  const DiffReport absolved = diff_artifacts(base, noisy, options);
  ASSERT_EQ(absolved.deltas.size(), 1u);
  EXPECT_TRUE(absolved.deltas[0].paired);
  EXPECT_EQ(absolved.deltas[0].pairs, 4u);
  EXPECT_FALSE(absolved.regression());

  // A systematic shift of every replica: outside the paired CI — flagged.
  const ArtifactData shifted = load(experiment({11.0, 21.0, 31.0, 41.0}));
  const DiffReport caught = diff_artifacts(base, shifted, options);
  EXPECT_TRUE(caught.regression());
  EXPECT_TRUE(caught.deltas[0].flagged);

  // Missing series fails by default, passes with fail_on_missing off.
  const ArtifactData missing = load(R"({"scenario": "unit", "metrics": []})");
  EXPECT_TRUE(diff_artifacts(base, missing, options).regression());
  options.fail_on_missing = false;
  EXPECT_FALSE(diff_artifacts(base, missing, options).regression());
}

TEST(RunCompare, RendersVerdictsInBothFormats) {
  const auto load = [](const std::string& text) {
    std::istringstream in(text);
    return load_artifact(in);
  };
  const ArtifactData base = load(R"({"scenario": "u", "metrics": [{"name": "m", "mean": 1}]})");
  const ArtifactData cand = load(R"({"scenario": "u", "metrics": [{"name": "m", "mean": 2}]})");
  const DiffReport report = diff_artifacts(base, cand, DiffOptions{});
  EXPECT_TRUE(report.regression());
  const std::string markdown = render_diff_markdown(report);
  EXPECT_NE(markdown.find("REGRESSION"), std::string::npos);
  EXPECT_NE(markdown.find("| m |"), std::string::npos);
  const std::string json = render_diff_json(report);
  EXPECT_NE(json.find("\"regression\": true"), std::string::npos);
  std::string error;
  EXPECT_TRUE(parse_json(json, &error).has_value()) << error;
}

}  // namespace
}  // namespace greenhpc::obs
