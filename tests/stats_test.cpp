// Unit tests for greenhpc::stats.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "stats/regression.hpp"
#include "util/rng.hpp"

namespace greenhpc::stats {
namespace {

// --- descriptive ----------------------------------------------------------------

TEST(Descriptive, SumMeanBasics) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(sum(xs), 10.0);
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Descriptive, StudentTCriticalValues) {
  EXPECT_DOUBLE_EQ(t_critical_975(1), 12.706);
  EXPECT_DOUBLE_EQ(t_critical_975(4), 2.776);
  EXPECT_DOUBLE_EQ(t_critical_975(10), 2.228);
  EXPECT_DOUBLE_EQ(t_critical_975(30), 2.042);
  EXPECT_NEAR(t_critical_975(50), 2.0105, 1e-4);  // interpolated 40..60
  EXPECT_DOUBLE_EQ(t_critical_975(1000), 1.960);
  EXPECT_THROW((void)t_critical_975(0), std::invalid_argument);
  // Monotone non-increasing in dof.
  double prev = t_critical_975(1);
  for (std::size_t dof = 2; dof <= 200; ++dof) {
    const double t = t_critical_975(dof);
    EXPECT_LE(t, prev) << "dof " << dof;
    prev = t;
  }
}

TEST(Descriptive, Ci95HalfWidth) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  // s = 1.29099, n = 4, t_{0.975,3} = 3.182.
  EXPECT_NEAR(ci95_half_width(xs), 3.182 * stddev(xs) / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(ci95_half_width(std::vector<double>{5.0}), 0.0);  // point estimate
  EXPECT_THROW((void)ci95_half_width(std::vector<double>{}), std::invalid_argument);
  // Wider samples, wider interval.
  const std::vector<double> tight = {10.0, 10.1, 9.9, 10.0};
  const std::vector<double> loose = {5.0, 15.0, 0.0, 20.0};
  EXPECT_LT(ci95_half_width(tight), ci95_half_width(loose));
}

TEST(Descriptive, KahanSummationStaysExact) {
  // 1e16 + many 1.0s: naive left-to-right summation loses them entirely.
  std::vector<double> xs = {1e16};
  for (int i = 0; i < 10000; ++i) xs.push_back(1.0);
  EXPECT_DOUBLE_EQ(sum(xs), 1e16 + 10000.0);
}

TEST(Descriptive, VarianceAndStddev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(variance(xs), 4.571428, 1e-5);
  EXPECT_NEAR(stddev(xs), std::sqrt(4.571428), 1e-5);
}

TEST(Descriptive, MinMax) {
  const std::vector<double> xs = {3.0, -1.0, 7.0, 0.0};
  EXPECT_DOUBLE_EQ(min(xs), -1.0);
  EXPECT_DOUBLE_EQ(max(xs), 7.0);
}

TEST(Descriptive, QuantileInterpolation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
  // Unsorted input must still work.
  const std::vector<double> ys = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(ys), 2.5);
}

TEST(Descriptive, SummaryBundle) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Descriptive, EmptyInputThrows) {
  const std::vector<double> empty;
  EXPECT_THROW((void)mean(empty), std::invalid_argument);
  EXPECT_THROW((void)min(empty), std::invalid_argument);
  EXPECT_THROW((void)quantile(empty, 0.5), std::invalid_argument);
  EXPECT_THROW((void)variance(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Descriptive, CoefficientOfVariation) {
  const std::vector<double> xs = {10.0, 10.0, 10.0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(xs), 0.0);
  EXPECT_THROW((void)coefficient_of_variation(std::vector<double>{-1.0, 1.0}),
               std::invalid_argument);
}

// --- correlation ------------------------------------------------------------------

TEST(Correlation, PearsonPerfectLinear) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Correlation, PearsonRejectsDegenerate) {
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  EXPECT_THROW((void)pearson(xs, ys), std::invalid_argument);
  EXPECT_THROW((void)pearson(ys, std::vector<double>{1.0, 2.0}), std::invalid_argument);
}

TEST(Correlation, RanksWithTies) {
  const std::vector<double> xs = {10.0, 20.0, 20.0, 30.0};
  const std::vector<double> r = ranks(xs);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Correlation, SpearmanMonotoneNonlinear) {
  // y = x^3 is monotone but nonlinear: Spearman 1, Pearson < 1.
  std::vector<double> xs, ys;
  for (int i = -5; i <= 5; ++i) {
    xs.push_back(i);
    ys.push_back(std::pow(i, 3));
  }
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
  EXPECT_LT(pearson(xs, ys), 1.0);
}

TEST(Correlation, CrossCorrelationDetectsKnownLag) {
  // y is x delayed by 2 steps; x[t] matches y[t+2], so x leads at lag +2.
  std::vector<double> x(60), y(60, 0.0);
  for (int t = 0; t < 60; ++t) x[static_cast<std::size_t>(t)] = std::sin(t * 0.4);
  for (int t = 2; t < 60; ++t) y[static_cast<std::size_t>(t)] = x[static_cast<std::size_t>(t - 2)];
  const LagCorrelation best = best_lag(x, y, 4);
  EXPECT_EQ(best.lag, 2);
  EXPECT_GT(best.correlation, 0.95);
}

TEST(Correlation, CrossCorrelationWindowShape) {
  std::vector<double> x, y;
  for (int t = 0; t < 30; ++t) {
    x.push_back(std::sin(t * 0.7));
    y.push_back(std::cos(t * 0.7));
  }
  const auto all = cross_correlation(x, y, 3);
  EXPECT_EQ(all.size(), 7u);
  EXPECT_EQ(all.front().lag, -3);
  EXPECT_EQ(all.back().lag, 3);
}

TEST(Correlation, CrossCorrelationTooShortThrows) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  EXPECT_THROW((void)cross_correlation(x, x, 3), std::invalid_argument);
}

TEST(Correlation, Comonotonicity) {
  const std::vector<double> up = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> up2 = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(comonotonicity(up, up2), 1.0);
  const std::vector<double> down = {4.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(comonotonicity(up, down), 0.0);
}

// --- regression --------------------------------------------------------------------

TEST(Regression, ExactLineRecovery) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.0 * i);
  }
  const SimpleFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.predict(20.0), 43.0, 1e-9);
}

TEST(Regression, NoisyFitHasReasonableDiagnostics) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(1.0 + 0.5 * i + ((i % 2 == 0) ? 0.3 : -0.3));
  }
  const SimpleFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 0.01);
  EXPECT_GT(fit.r_squared, 0.99);
  EXPECT_GT(fit.residual_stddev, 0.0);
}

TEST(Regression, SolveLinearSystem) {
  // 2x + y = 5; x - y = 1  ->  x = 2, y = 1.
  const auto x = solve_linear_system({{2.0, 1.0}, {1.0, -1.0}}, {5.0, 1.0});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(Regression, SolveRequiresPivoting) {
  // Zero on the diagonal: fails without partial pivoting.
  const auto x = solve_linear_system({{0.0, 1.0}, {1.0, 0.0}}, {3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Regression, SolveSingularThrows) {
  EXPECT_THROW((void)solve_linear_system({{1.0, 2.0}, {2.0, 4.0}}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(Regression, MultipleFitRecoversPlane) {
  // y = 1 + 2a - 3b.
  std::vector<std::vector<double>> rows;
  std::vector<double> ys;
  for (int a = 0; a < 5; ++a) {
    for (int b = 0; b < 5; ++b) {
      rows.push_back({1.0, static_cast<double>(a), static_cast<double>(b)});
      ys.push_back(1.0 + 2.0 * a - 3.0 * b);
    }
  }
  const MultiFit fit = multiple_fit(rows, ys);
  ASSERT_EQ(fit.coefficients.size(), 3u);
  EXPECT_NEAR(fit.coefficients[0], 1.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], 2.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[2], -3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
  const std::vector<double> probe = {1.0, 10.0, 1.0};
  EXPECT_NEAR(fit.predict(probe), 18.0, 1e-6);
}

TEST(Regression, MultipleFitValidatesShape) {
  EXPECT_THROW((void)multiple_fit({}, std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW((void)multiple_fit({{1.0, 2.0}, {1.0}}, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(Regression, DoublingFitExact) {
  // y doubles every 2 time units.
  std::vector<double> ts, ys;
  for (int i = 0; i < 12; ++i) {
    ts.push_back(i);
    ys.push_back(std::exp2(static_cast<double>(i) / 2.0));
  }
  const DoublingFit fit = doubling_fit(ts, ys);
  EXPECT_NEAR(fit.doubling_time, 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
  EXPECT_NEAR(fit.predict(4.0), 4.0, 1e-6);
}

TEST(Regression, DoublingFitRejectsNonPositive) {
  EXPECT_THROW((void)doubling_fit(std::vector<double>{1.0, 2.0}, std::vector<double>{1.0, 0.0}),
               std::invalid_argument);
}

// Parameterized: doubling fit recovers planted rates across magnitudes
// (0.28 yr ~ the modern-era Fig. 1 rate; 24 mo ~ the Moore-era rate).
class DoublingRates : public ::testing::TestWithParam<double> {};

TEST_P(DoublingRates, RecoversPlantedDoublingTime) {
  const double planted = GetParam();
  std::vector<double> ts, ys;
  for (int i = 0; i < 20; ++i) {
    ts.push_back(i * 0.5);
    ys.push_back(1e-10 * std::exp2(i * 0.5 / planted));
  }
  EXPECT_NEAR(doubling_fit(ts, ys).doubling_time, planted, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Rates, DoublingRates, ::testing::Values(0.28, 1.0, 2.0, 24.0));

// --- histogram ----------------------------------------------------------------------

TEST(HistogramTest, BinningAndCounts) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.0);
  h.add(9.99);
  h.add(-1.0);  // underflow
  h.add(10.0);  // overflow (hi is exclusive)
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(HistogramTest, BinRangesAndFractions) {
  Histogram h(0.0, 1.0, 4);
  const auto [lo, hi] = h.bin_range(1);
  EXPECT_DOUBLE_EQ(lo, 0.25);
  EXPECT_DOUBLE_EQ(hi, 0.5);
  h.add_all(std::vector<double>{0.1, 0.3, 0.3, 0.9});
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
}

TEST(HistogramTest, RenderProducesBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('%'), std::string::npos);
}

TEST(HistogramTest, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// --- CholeskySolver ----------------------------------------------------------

namespace {

/// A well-conditioned SPD matrix in the upper-triangle-filled flat layout
/// CholeskySolver::factor reads (A(i,j) at a[min*n + max]).
std::vector<double> spd_from_rows(const std::vector<std::vector<double>>& rows, std::size_t n) {
  std::vector<double> a(n * n, 0.0);
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) a[i * n + j] += row[i] * row[j];
    }
  }
  return a;
}

std::vector<std::vector<double>> test_rows(std::size_t count, std::size_t n) {
  util::SplitMix64 rng(7);
  std::vector<std::vector<double>> rows(count, std::vector<double>(n));
  for (auto& row : rows) {
    for (double& v : row) v = static_cast<double>(rng.next() >> 11) * 0x1.0p-53 * 2.0 - 1.0;
  }
  return rows;
}

}  // namespace

TEST(CholeskySolver, SolveMatchesGaussianElimination) {
  constexpr std::size_t n = 6;
  const auto rows = test_rows(40, n);
  const std::vector<double> a = spd_from_rows(rows, n);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<double>(i) - 2.5;

  CholeskySolver chol;
  ASSERT_TRUE(chol.factor(a, n));
  std::vector<double> x;
  chol.solve_into(b, x);

  std::vector<std::vector<double>> dense(n, std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      dense[i][j] = a[std::min(i, j) * n + std::max(i, j)];
    }
  }
  const std::vector<double> want = solve_linear_system(dense, b);
  ASSERT_EQ(x.size(), want.size());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], want[i], 1e-9);
}

TEST(CholeskySolver, UpdateDowndateRoundTrips) {
  constexpr std::size_t n = 5;
  auto rows = test_rows(30, n);
  const std::vector<double> extra{0.4, -0.7, 1.1, 0.2, -0.3};

  // Factor A, rank-1 update with `extra`, then downdate it away: the solve
  // must return to the original solution (within rotation round-off).
  CholeskySolver chol;
  ASSERT_TRUE(chol.factor(spd_from_rows(rows, n), n));
  std::vector<double> b(n, 1.0), before, mid, after;
  chol.solve_into(b, before);
  chol.update(extra);
  chol.solve_into(b, mid);
  ASSERT_TRUE(chol.downdate(extra));
  chol.solve_into(b, after);

  // The update must actually change the system, and the downdate undo it.
  double moved = 0.0;
  for (std::size_t i = 0; i < n; ++i) moved += std::abs(mid[i] - before[i]);
  EXPECT_GT(moved, 1e-12);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(after[i], before[i], 1e-9);

  // Cross-check against factoring the updated matrix directly.
  rows.push_back(extra);
  CholeskySolver direct;
  ASSERT_TRUE(direct.factor(spd_from_rows(rows, n), n));
  std::vector<double> want;
  direct.solve_into(b, want);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(mid[i], want[i], 1e-9);
}

TEST(CholeskySolver, DowndateLosingDefinitenessInvalidates) {
  constexpr std::size_t n = 3;
  const auto rows = test_rows(10, n);
  CholeskySolver chol;
  ASSERT_TRUE(chol.factor(spd_from_rows(rows, n), n));
  // Removing a row that was never accumulated drives the matrix indefinite.
  const std::vector<double> huge{100.0, -50.0, 75.0};
  EXPECT_FALSE(chol.downdate(huge));
  EXPECT_FALSE(chol.valid());
}

TEST(CholeskySolver, RejectsNonPositiveDefinite) {
  const std::vector<double> a{1.0, 2.0, 2.0, 1.0};  // eigenvalues 3, -1
  CholeskySolver chol;
  EXPECT_FALSE(chol.factor(a, 2));
  EXPECT_FALSE(chol.valid());
}

}  // namespace
}  // namespace greenhpc::stats
