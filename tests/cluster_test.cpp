// Unit tests for greenhpc::cluster — jobs, registry, allocation, IT power.

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/job.hpp"

namespace greenhpc::cluster {
namespace {

using util::TimePoint;

TimePoint at(double s) { return TimePoint::from_seconds(s); }

JobRequest small_request(int gpus = 2, double work_gpu_seconds = 7200.0) {
  JobRequest req;
  req.gpus = gpus;
  req.work_gpu_seconds = work_gpu_seconds;
  return req;
}

// --- Job state machine ------------------------------------------------------------

TEST(JobTest, LifecycleHappyPath) {
  Job job(1, small_request(), at(100.0));
  EXPECT_EQ(job.state(), JobState::kQueued);
  job.start(at(200.0));
  EXPECT_EQ(job.state(), JobState::kRunning);
  EXPECT_DOUBLE_EQ(job.queue_wait().seconds(), 100.0);
  job.progress(7200.0, util::kilowatt_hours(1.0));
  EXPECT_DOUBLE_EQ(job.work_remaining(), 0.0);
  job.complete(at(3800.0));
  EXPECT_EQ(job.state(), JobState::kCompleted);
  EXPECT_DOUBLE_EQ(job.turnaround().seconds(), 3700.0);
  EXPECT_DOUBLE_EQ(job.energy().kilowatt_hours(), 1.0);
}

TEST(JobTest, IllegalTransitionsThrow) {
  Job job(1, small_request(), at(0.0));
  EXPECT_THROW(job.complete(at(1.0)), std::invalid_argument);  // not running
  EXPECT_THROW(job.progress(1.0, util::Energy{}), std::invalid_argument);
  job.start(at(1.0));
  EXPECT_THROW(job.start(at(2.0)), std::invalid_argument);  // already running
  job.complete(at(3.0));
  EXPECT_THROW(job.cancel(at(4.0)), std::invalid_argument);  // already done
  EXPECT_THROW((void)Job(2, small_request(), at(10.0)).turnaround(), std::invalid_argument);
}

TEST(JobTest, CancelFromQueuedAndRunning) {
  Job queued(1, small_request(), at(0.0));
  queued.cancel(at(5.0));
  EXPECT_EQ(queued.state(), JobState::kCancelled);

  Job running(2, small_request(), at(0.0));
  running.start(at(1.0));
  running.cancel(at(2.0));
  EXPECT_EQ(running.state(), JobState::kCancelled);
}

TEST(JobTest, RuntimeEstimates) {
  JobRequest req = small_request(4, 14400.0);  // 4 GPUs, 4 GPU-hours of work
  req.estimate_factor = 1.5;
  const Job job(1, req, at(0.0));
  EXPECT_DOUBLE_EQ(job.estimated_runtime(1.0).seconds(), 3600.0);
  EXPECT_DOUBLE_EQ(job.estimated_runtime(0.5).seconds(), 7200.0);
  EXPECT_DOUBLE_EQ(job.user_estimate(1.0).seconds(), 5400.0);
  EXPECT_THROW((void)job.estimated_runtime(0.0), std::invalid_argument);
}

TEST(JobTest, RequestValidation) {
  JobRequest bad = small_request(0);
  EXPECT_THROW(Job(1, bad, at(0.0)), std::invalid_argument);
  bad = small_request();
  bad.work_gpu_seconds = 0.0;
  EXPECT_THROW(Job(1, bad, at(0.0)), std::invalid_argument);
  bad = small_request();
  bad.deadline = at(0.0);  // not after submission
  EXPECT_THROW(Job(1, bad, at(10.0)), std::invalid_argument);
  bad = small_request();
  bad.estimate_factor = 0.8;
  EXPECT_THROW(Job(1, bad, at(0.0)), std::invalid_argument);
}

// Malformed sweep configs must fail fast at submission with an error that
// names the offending value — not corrupt ledgers three subsystems later.
TEST(JobTest, SubmissionRejectsMalformedRequestsWithClearErrors) {
  const auto message_of = [](const JobRequest& request, TimePoint now) -> std::string {
    try {
      validate_request(request, now);
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return "";
  };

  JobRequest bad = small_request(-3);
  EXPECT_NE(message_of(bad, at(0.0)).find("gpus"), std::string::npos);
  EXPECT_NE(message_of(bad, at(0.0)).find("-3"), std::string::npos);

  bad = small_request();
  bad.work_gpu_seconds = -60.0;
  EXPECT_NE(message_of(bad, at(0.0)).find("work_gpu_seconds"), std::string::npos);

  bad = small_request();
  bad.estimate_factor = 0.0;
  EXPECT_NE(message_of(bad, at(0.0)).find("estimate_factor"), std::string::npos);
  bad.estimate_factor = -2.0;
  EXPECT_NE(message_of(bad, at(0.0)).find("estimate_factor"), std::string::npos);

  bad = small_request();
  bad.deadline = at(50.0);  // before the submit time
  EXPECT_NE(message_of(bad, at(100.0)).find("deadline"), std::string::npos);

  // A clean request passes, and the registry enforces the same gate.
  EXPECT_NO_THROW(validate_request(small_request(), at(0.0)));
  JobRegistry registry;
  EXPECT_THROW((void)registry.submit(small_request(0), at(0.0)), std::invalid_argument);
  EXPECT_THROW(
      [&] {
        JobRequest late = small_request();
        late.deadline = at(5.0);
        (void)registry.submit(late, at(10.0));
      }(),
      std::invalid_argument);
  EXPECT_EQ(registry.size(), 0u);  // nothing half-submitted survives
  // Rejected submissions burned no ids and left no dangling index entries.
  EXPECT_EQ(registry.submit(small_request(), at(0.0)), 1u);
}

// --- migration state --------------------------------------------------------------

TEST(JobTest, MigrateOutIsTerminalAndRunningOnly) {
  Job job(1, small_request(), at(0.0));
  EXPECT_THROW(job.migrate_out(at(1.0)), std::invalid_argument);  // queued: no
  job.start(at(1.0));
  job.progress(3600.0, util::kilowatt_hours(1.0));
  job.migrate_out(at(2.0));
  EXPECT_EQ(job.state(), JobState::kMigrated);
  EXPECT_STREQ(job_state_name(JobState::kMigrated), "migrated");
  EXPECT_DOUBLE_EQ(job.work_done(), 3600.0);  // progress preserved
  // Terminal: no further transitions.
  EXPECT_THROW(job.migrate_out(at(3.0)), std::invalid_argument);
  EXPECT_THROW(job.complete(at(3.0)), std::invalid_argument);
  EXPECT_THROW(job.cancel(at(3.0)), std::invalid_argument);
}

TEST(JobTest, ClassAndStateNames) {
  EXPECT_STREQ(job_class_name(JobClass::kTraining), "training");
  EXPECT_STREQ(job_class_name(JobClass::kHyperparamSweep), "hp_sweep");
  EXPECT_STREQ(job_state_name(JobState::kQueued), "queued");
  EXPECT_STREQ(job_state_name(JobState::kCancelled), "cancelled");
}

// --- JobRegistry -------------------------------------------------------------------

TEST(Registry, SubmitAssignsSequentialIds) {
  JobRegistry registry;
  const JobId a = registry.submit(small_request(), at(0.0));
  const JobId b = registry.submit(small_request(), at(1.0));
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_TRUE(registry.contains(a));
  EXPECT_FALSE(registry.contains(999));
  EXPECT_THROW((void)registry.get(999), std::invalid_argument);
}

TEST(Registry, ReferencesStableAcrossManySubmissions) {
  JobRegistry registry;
  const JobId first = registry.submit(small_request(), at(0.0));
  Job* ptr = &registry.get(first);
  for (int i = 0; i < 2000; ++i) registry.submit(small_request(), at(i + 1.0));
  EXPECT_EQ(&registry.get(first), ptr);  // deque storage: no reallocation moves
}

TEST(Registry, InStateFilters) {
  JobRegistry registry;
  const JobId a = registry.submit(small_request(), at(0.0));
  const JobId b = registry.submit(small_request(), at(0.0));
  registry.submit(small_request(), at(0.0));
  registry.get(a).start(at(1.0));
  registry.get(b).start(at(1.0));
  registry.get(b).progress(7200.0, util::Energy{});
  registry.get(b).complete(at(2.0));
  EXPECT_EQ(registry.in_state(JobState::kQueued).size(), 1u);
  EXPECT_EQ(registry.in_state(JobState::kRunning).size(), 1u);
  EXPECT_EQ(registry.in_state(JobState::kCompleted), std::vector<JobId>{b});
}

// --- Cluster -----------------------------------------------------------------------

ClusterSpec tiny_spec() {
  ClusterSpec spec;
  spec.node_count = 4;
  spec.gpus_per_node = 2;
  return spec;
}

TEST(ClusterTest, CountsAndUtilization) {
  Cluster cluster(tiny_spec());
  EXPECT_EQ(cluster.total_gpus(), 8);
  EXPECT_EQ(cluster.free_gpus(), 8);
  EXPECT_DOUBLE_EQ(cluster.utilization(), 0.0);

  const auto alloc = cluster.allocate(1, 5);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ(alloc->total_gpus(), 5);
  EXPECT_EQ(cluster.busy_gpus(), 5);
  EXPECT_DOUBLE_EQ(cluster.utilization(), 5.0 / 8.0);
}

TEST(ClusterTest, AllocationSpansNodesFirstFit) {
  Cluster cluster(tiny_spec());
  const auto alloc = cluster.allocate(1, 3);
  ASSERT_TRUE(alloc.has_value());
  ASSERT_EQ(alloc->slices.size(), 2u);
  EXPECT_EQ(alloc->slices[0].node, 0);
  EXPECT_EQ(alloc->slices[0].gpus, 2);
  EXPECT_EQ(alloc->slices[1].node, 1);
  EXPECT_EQ(alloc->slices[1].gpus, 1);
}

TEST(ClusterTest, OversubscriptionFails) {
  Cluster cluster(tiny_spec());
  EXPECT_TRUE(cluster.allocate(1, 8).has_value());
  EXPECT_FALSE(cluster.allocate(2, 1).has_value());
  cluster.release(1);
  EXPECT_TRUE(cluster.allocate(2, 1).has_value());
}

TEST(ClusterTest, DoubleAllocationForSameJobThrows) {
  Cluster cluster(tiny_spec());
  (void)cluster.allocate(1, 2);
  EXPECT_THROW((void)cluster.allocate(1, 2), std::invalid_argument);
}

TEST(ClusterTest, ReleaseUnknownJobIsNoop) {
  Cluster cluster(tiny_spec());
  cluster.release(42);  // must not throw
  EXPECT_EQ(cluster.free_gpus(), 8);
}

TEST(ClusterTest, AllocationLookup) {
  Cluster cluster(tiny_spec());
  (void)cluster.allocate(7, 4);
  const auto found = cluster.allocation_of(7);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->total_gpus(), 4);
  EXPECT_FALSE(cluster.allocation_of(8).has_value());
  EXPECT_EQ(cluster.allocations().size(), 1u);
}

TEST(ClusterTest, PowerCapClampedToSpec) {
  Cluster cluster(tiny_spec());
  cluster.set_power_cap(util::watts(300.0));
  EXPECT_DOUBLE_EQ(cluster.power_cap().watts(), 250.0);
  cluster.set_power_cap(util::watts(50.0));
  EXPECT_DOUBLE_EQ(cluster.power_cap().watts(), 100.0);
  cluster.set_power_cap(util::watts(180.0));
  EXPECT_DOUBLE_EQ(cluster.power_cap().watts(), 180.0);
  EXPECT_LT(cluster.throughput_factor(), 1.0);
}

TEST(ClusterTest, ItPowerComposition) {
  ClusterSpec spec = tiny_spec();
  spec.node_base = util::watts(400.0);
  spec.fixed_infrastructure = util::kilowatts(1.0);
  Cluster cluster(spec);
  // Idle: fixed 1000 + 4*400 + 8*50 = 3000 W.
  EXPECT_NEAR(cluster.it_power().watts(), 3000.0, 1e-9);
  (void)cluster.allocate(1, 4);
  // 4 busy at 230, 4 idle at 50: 1000 + 1600 + 920 + 200 = 3720 W.
  EXPECT_NEAR(cluster.it_power().watts(), 3720.0, 1e-9);
}

TEST(ClusterTest, PowerCapLowersBusyPower) {
  Cluster cluster(tiny_spec());
  (void)cluster.allocate(1, 8);
  const double uncapped = cluster.it_power().watts();
  cluster.set_power_cap(util::watts(150.0));
  EXPECT_LT(cluster.it_power().watts(), uncapped);
  EXPECT_NEAR(cluster.busy_gpu_power().watts(), 150.0, 1e-9);
}

TEST(ClusterTest, NodeSupplyKnob) {
  Cluster cluster(tiny_spec());
  cluster.set_enabled_nodes(2);
  EXPECT_EQ(cluster.total_gpus(), 4);
  EXPECT_EQ(cluster.enabled_nodes(), 2);
  // Fewer enabled nodes draw less base power.
  const double low = cluster.it_power().watts();
  cluster.set_enabled_nodes(4);
  EXPECT_GT(cluster.it_power().watts(), low);
}

TEST(ClusterTest, CannotDisableBusyNodes) {
  Cluster cluster(tiny_spec());
  (void)cluster.allocate(1, 7);  // spans nodes 0-3
  EXPECT_THROW(cluster.set_enabled_nodes(2), std::invalid_argument);
  cluster.release(1);
  EXPECT_NO_THROW(cluster.set_enabled_nodes(2));
}

TEST(ClusterTest, DisabledNodesNotAllocated) {
  Cluster cluster(tiny_spec());
  cluster.set_enabled_nodes(1);
  EXPECT_FALSE(cluster.allocate(1, 3).has_value());  // only 2 GPUs enabled
  EXPECT_TRUE(cluster.allocate(1, 2).has_value());
}

TEST(ClusterTest, PerJobCapsComposeWithClusterCap) {
  Cluster cluster(tiny_spec());
  (void)cluster.allocate(1, 2);
  (void)cluster.allocate(2, 2);
  cluster.set_job_cap(1, util::watts(150.0));
  // Job 1 runs at its own cap; job 2 at the cluster cap.
  EXPECT_DOUBLE_EQ(cluster.effective_cap(1).watts(), 150.0);
  EXPECT_DOUBLE_EQ(cluster.effective_cap(2).watts(), 250.0);
  EXPECT_LT(cluster.job_throughput_factor(1), 1.0);
  EXPECT_DOUBLE_EQ(cluster.job_throughput_factor(2), 1.0);
  // The cluster-wide knob still dominates when stricter.
  cluster.set_power_cap(util::watts(125.0));
  EXPECT_DOUBLE_EQ(cluster.effective_cap(1).watts(), 125.0);
  EXPECT_DOUBLE_EQ(cluster.effective_cap(2).watts(), 125.0);
}

TEST(ClusterTest, PerJobCapLowersItPower) {
  Cluster cluster(tiny_spec());
  (void)cluster.allocate(1, 4);
  const double before = cluster.it_power().watts();
  cluster.set_job_cap(1, util::watts(150.0));
  EXPECT_LT(cluster.it_power().watts(), before);
  // Releasing clears the override.
  cluster.release(1);
  (void)cluster.allocate(1, 4);
  EXPECT_DOUBLE_EQ(cluster.effective_cap(1).watts(), 250.0);
}

TEST(ClusterTest, JobCapClampedToSettableRange) {
  Cluster cluster(tiny_spec());
  (void)cluster.allocate(1, 1);
  cluster.set_job_cap(1, util::watts(10.0));
  EXPECT_DOUBLE_EQ(cluster.effective_cap(1).watts(), 100.0);
  cluster.set_job_cap(1, util::watts(900.0));
  EXPECT_DOUBLE_EQ(cluster.effective_cap(1).watts(), 250.0);
}

TEST(ClusterTest, ReferenceScaleMatchesPaperCluster) {
  const Cluster cluster;  // defaults: 224 nodes x 2 V100
  EXPECT_EQ(cluster.total_gpus(), 448);
  // Idle IT power lands in the calibrated band (DESIGN.md: ~183 kW floor).
  EXPECT_GT(cluster.it_power().kilowatts(), 150.0);
  EXPECT_LT(cluster.it_power().kilowatts(), 220.0);
}

}  // namespace
}  // namespace greenhpc::cluster
