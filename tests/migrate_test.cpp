// Unit tests for greenhpc::migrate — the checkpoint cost model, the
// migration planner's scoring/constraints, and the coordinator's
// checkpoint-and-resume orchestration (preempt at the source, transfer-pipe
// occupancy, resume at the destination, ledger attribution).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/datacenter.hpp"
#include "fleet/coordinator.hpp"
#include "fleet/region.hpp"
#include "migrate/checkpoint.hpp"
#include "migrate/planner.hpp"
#include "sched/scheduler.hpp"
#include "telemetry/fleet.hpp"

namespace greenhpc::migrate {
namespace {

using util::TimePoint;

// --- checkpoint model --------------------------------------------------------

TEST(Checkpoint, SizeGrowsWithGpusAndScale) {
  CheckpointModel model;
  EXPECT_DOUBLE_EQ(model.size_gb(1), 12.0);
  EXPECT_DOUBLE_EQ(model.size_gb(8), 96.0);

  CheckpointConfig fat;
  fat.cost_scale = 2.5;
  EXPECT_DOUBLE_EQ(CheckpointModel(fat).size_gb(4), 12.0 * 4 * 2.5);
  EXPECT_THROW((void)model.size_gb(0), std::invalid_argument);
}

TEST(Checkpoint, StageTimesFollowBandwidths) {
  CheckpointConfig config;
  config.gb_per_gpu = 10.0;
  config.snapshot_gb_per_s = 2.0;
  config.ship_gb_per_s = 1.0;
  config.restore_gb_per_s = 5.0;
  const CheckpointModel model(config);
  EXPECT_DOUBLE_EQ(model.snapshot_time(2).seconds(), 10.0);   // 20 GB / 2
  EXPECT_DOUBLE_EQ(model.ship_time(2).seconds(), 20.0);       // 20 GB / 1
  EXPECT_DOUBLE_EQ(model.restore_time(2).seconds(), 4.0);     // 20 GB / 5
  EXPECT_DOUBLE_EQ(model.outage(2).seconds(), 34.0);
}

TEST(Checkpoint, EnergySplitsSourceAndDestination) {
  CheckpointConfig config;
  config.gb_per_gpu = 10.0;
  config.energy_kwh_per_gb = 0.01;
  const CheckpointModel model(config);
  // Snapshot touches the bytes once at the source; ship + restore touch them
  // twice at the destination side.
  EXPECT_DOUBLE_EQ(model.snapshot_energy(4).kilowatt_hours(), 0.4);
  EXPECT_DOUBLE_EQ(model.delivery_energy(4).kilowatt_hours(), 0.8);
  EXPECT_DOUBLE_EQ(model.total_energy(4).kilowatt_hours(), 1.2);
}

TEST(Checkpoint, RejectsBadConfigs) {
  CheckpointConfig bad;
  bad.gb_per_gpu = 0.0;
  EXPECT_THROW(CheckpointModel{bad}, std::invalid_argument);
  bad = CheckpointConfig{};
  bad.ship_gb_per_s = -1.0;
  EXPECT_THROW(CheckpointModel{bad}, std::invalid_argument);
  bad = CheckpointConfig{};
  bad.cost_scale = 0.0;
  EXPECT_THROW(CheckpointModel{bad}, std::invalid_argument);
}

// --- planner -----------------------------------------------------------------

fleet::RegionView view(std::size_t index, int free_gpus, double carbon_kg_per_kwh,
                       double price_usd_mwh = 30.0) {
  fleet::RegionView v;
  v.index = index;
  v.total_gpus = 64;
  v.free_gpus = free_gpus;
  v.busy_gpu_power = util::watts(300.0);
  v.price = util::usd_per_mwh(price_usd_mwh);
  v.carbon = util::kg_per_kwh(carbon_kg_per_kwh);
  return v;
}

MigrationCandidate candidate(std::size_t region, cluster::JobId job, int gpus,
                             double remaining_hours) {
  MigrationCandidate c;
  c.region = region;
  c.job = job;
  c.gpus = gpus;
  c.work_remaining_gpu_seconds = remaining_hours * 3600.0 * gpus;
  return c;
}

MigrationConfig carbon_config() {
  MigrationConfig config;
  config.objective = MigrationObjective::kCarbon;
  return config;
}

TEST(Planner, NamesRoundTrip) {
  for (const MigrationObjective o :
       {MigrationObjective::kOff, MigrationObjective::kCarbon, MigrationObjective::kCost}) {
    const auto parsed = migration_objective_from_name(migration_objective_name(o));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, o);
  }
  EXPECT_FALSE(migration_objective_from_name("teleport").has_value());
  EXPECT_NE(std::string(migration_policy_names()).find("carbon"), std::string::npos);
}

TEST(Planner, RejectsBadConfigs) {
  MigrationConfig bad = carbon_config();
  bad.hysteresis = 1.5;
  EXPECT_THROW(MigrationPlanner{bad}, std::invalid_argument);
  bad = carbon_config();
  bad.max_in_flight = 0;
  EXPECT_THROW(MigrationPlanner{bad}, std::invalid_argument);
  bad = carbon_config();
  bad.deadline_margin = 0.0;
  EXPECT_THROW(MigrationPlanner{bad}, std::invalid_argument);
  bad = carbon_config();
  bad.forecaster.model = "oracle";
  EXPECT_THROW(MigrationPlanner{bad}, std::invalid_argument);
}

TEST(Planner, MovesLongJobToDecisivelyGreenerRegion) {
  MigrationPlanner planner(carbon_config());
  const std::vector<fleet::RegionView> regions = {view(0, 8, 0.45), view(1, 16, 0.10)};
  const std::vector<MigrationCandidate> cands = {candidate(0, 7, 4, 10.0)};
  const auto decisions =
      planner.plan(TimePoint::from_seconds(0.0), regions, cands, /*slots=*/4);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].source, 0u);
  EXPECT_EQ(decisions[0].dest, 1u);
  EXPECT_EQ(decisions[0].job, 7u);
  EXPECT_GT(decisions[0].predicted_saving, 0.0);
  EXPECT_GT(decisions[0].relative_saving, planner.config().hysteresis);
}

TEST(Planner, HysteresisBlocksMarginalMoves) {
  // 0.30 vs 0.28 kg/kWh is a ~7% advantage — under the 15% default gate.
  MigrationPlanner planner(carbon_config());
  const std::vector<fleet::RegionView> regions = {view(0, 8, 0.30), view(1, 16, 0.28)};
  const std::vector<MigrationCandidate> cands = {candidate(0, 1, 4, 10.0)};
  EXPECT_TRUE(planner.plan(TimePoint::from_seconds(0.0), regions, cands, 4).empty());
}

TEST(Planner, OffObjectiveAndNoSlotsPlanNothing) {
  MigrationPlanner off;  // default objective kOff
  EXPECT_FALSE(off.enabled());
  const std::vector<fleet::RegionView> regions = {view(0, 8, 0.45), view(1, 16, 0.10)};
  const std::vector<MigrationCandidate> cands = {candidate(0, 1, 4, 10.0)};
  EXPECT_TRUE(off.plan(TimePoint::from_seconds(0.0), regions, cands, 4).empty());

  MigrationPlanner carbon(carbon_config());
  EXPECT_TRUE(carbon.plan(TimePoint::from_seconds(0.0), regions, cands, 0).empty());
}

TEST(Planner, RespectsBudgetCooldownAndMinRemaining) {
  MigrationConfig config = carbon_config();
  config.budget_per_job = 1;
  config.cooldown = util::hours(6);
  config.min_remaining = util::hours(2);
  MigrationPlanner planner(config);
  const std::vector<fleet::RegionView> regions = {view(0, 8, 0.45), view(1, 16, 0.10)};

  // Budget exhausted.
  std::vector<MigrationCandidate> cands = {candidate(0, 1, 4, 10.0)};
  cands[0].migrations_so_far = 1;
  EXPECT_TRUE(planner.plan(TimePoint::from_seconds(0.0), regions, cands, 4).empty());

  // Nearly done: not worth the checkpoint.
  cands = {candidate(0, 2, 4, 0.5)};
  EXPECT_TRUE(planner.plan(TimePoint::from_seconds(0.0), regions, cands, 4).empty());

  // Cooldown: a lineage that moved recently stays put even with budget left.
  config.budget_per_job = 3;
  MigrationPlanner roomy(config);
  cands = {candidate(0, 3, 4, 10.0)};
  cands[0].migrations_so_far = 1;
  cands[0].last_migration = util::hours(10.0) + TimePoint::from_seconds(0.0);
  EXPECT_TRUE(roomy.plan(TimePoint::from_seconds(0.0) + util::hours(12), regions, cands, 4)
                  .empty());
  EXPECT_EQ(roomy.plan(TimePoint::from_seconds(0.0) + util::hours(17), regions, cands, 4).size(),
            1u);
}

TEST(Planner, DeadlineJobsOnlyMoveWhenOutageFits) {
  MigrationPlanner planner(carbon_config());
  const std::vector<fleet::RegionView> regions = {view(0, 8, 0.45), view(1, 16, 0.10)};
  std::vector<MigrationCandidate> cands = {candidate(0, 1, 4, 10.0)};
  // 10 h of work left, deadline 10.5 h out: outage + remaining cannot fit
  // inside 90% of the slack.
  cands[0].deadline = TimePoint::from_seconds(0.0) + util::hours(10.5);
  EXPECT_TRUE(planner.plan(TimePoint::from_seconds(0.0), regions, cands, 4).empty());
  // A loose deadline clears the margin.
  cands[0].deadline = TimePoint::from_seconds(0.0) + util::hours(30.0);
  EXPECT_EQ(planner.plan(TimePoint::from_seconds(0.0), regions, cands, 4).size(), 1u);
}

TEST(Planner, DestinationBacklogIsNotCapacity) {
  MigrationPlanner planner(carbon_config());
  // Region 1 is far greener and shows free GPUs, but queued demand already
  // claims them — migrating there would trade intensity for queueing.
  std::vector<fleet::RegionView> regions = {view(0, 8, 0.45), view(1, 8, 0.10)};
  regions[1].queued_gpu_demand = 6;
  const std::vector<MigrationCandidate> cands = {candidate(0, 1, 4, 10.0)};
  EXPECT_TRUE(planner.plan(TimePoint::from_seconds(0.0), regions, cands, 4).empty());
  regions[1].queued_gpu_demand = 0;
  EXPECT_EQ(planner.plan(TimePoint::from_seconds(0.0), regions, cands, 4).size(), 1u);
}

TEST(Planner, SlotsAndDestinationCapacityBoundThePlan) {
  MigrationPlanner planner(carbon_config());
  const std::vector<fleet::RegionView> regions = {view(0, 0, 0.45), view(1, 6, 0.10)};
  // Three hungry jobs, one pipe slot: only the biggest saver moves.
  std::vector<MigrationCandidate> cands = {candidate(0, 1, 4, 4.0), candidate(0, 2, 4, 20.0),
                                           candidate(0, 3, 4, 8.0)};
  const auto one = planner.plan(TimePoint::from_seconds(0.0), regions, cands, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].job, 2u);  // longest remaining runtime = largest saving

  // Unlimited slots: destination capacity (6 free GPUs net of nothing)
  // admits only one 4-GPU move.
  const auto capped = planner.plan(TimePoint::from_seconds(0.0), regions, cands, 8);
  ASSERT_EQ(capped.size(), 1u);
  EXPECT_EQ(capped[0].job, 2u);
}

TEST(Planner, InFlightCheckpointsReserveDestinationCapacity) {
  // A checkpoint already on the pipe toward region 1 claims 4 of its 6 free
  // GPUs; a second 4-GPU move must not commit the same capacity.
  MigrationPlanner planner(carbon_config());
  const std::vector<fleet::RegionView> regions = {view(0, 8, 0.45), view(1, 6, 0.10)};
  const std::vector<MigrationCandidate> cands = {candidate(0, 1, 4, 10.0)};
  const std::vector<int> inbound = {0, 4};
  EXPECT_TRUE(planner.plan(TimePoint::from_seconds(0.0), regions, cands, 4, inbound).empty());
  // With the pipe clear the same move goes through.
  EXPECT_EQ(planner.plan(TimePoint::from_seconds(0.0), regions, cands, 4).size(), 1u);
}

TEST(Planner, CostObjectiveFollowsPrices) {
  MigrationConfig config = carbon_config();
  config.objective = MigrationObjective::kCost;
  MigrationPlanner planner(config);
  // Region 1 is dirtier but much cheaper: the cost planner moves there.
  const std::vector<fleet::RegionView> regions = {view(0, 8, 0.10, 60.0),
                                                  view(1, 16, 0.50, 15.0)};
  const std::vector<MigrationCandidate> cands = {candidate(0, 1, 4, 10.0)};
  const auto decisions = planner.plan(TimePoint::from_seconds(0.0), regions, cands, 4);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].dest, 1u);
}

TEST(Planner, CheckpointOverheadTiltsAgainstShortJobs) {
  // Make the checkpoint brutally expensive: a short job's saving cannot pay
  // for it, a long job's can.
  MigrationConfig config = carbon_config();
  config.checkpoint.energy_kwh_per_gb = 0.5;
  config.min_remaining = util::hours(1);
  MigrationPlanner planner(config);
  const std::vector<fleet::RegionView> regions = {view(0, 8, 0.45), view(1, 16, 0.10)};
  EXPECT_TRUE(planner
                  .plan(TimePoint::from_seconds(0.0), regions,
                        std::vector<MigrationCandidate>{candidate(0, 1, 4, 1.5)}, 4)
                  .empty());
  EXPECT_EQ(planner
                .plan(TimePoint::from_seconds(0.0), regions,
                      std::vector<MigrationCandidate>{candidate(0, 1, 4, 100.0)}, 4)
                .size(),
            1u);
}

// --- datacenter preempt/resume hooks ----------------------------------------

class ManualScheduler final : public sched::Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "manual_fcfs"; }
  [[nodiscard]] std::vector<cluster::JobId> select(const sched::SchedulerContext& ctx) override {
    std::vector<cluster::JobId> starts;
    int free = ctx.cluster->free_gpus();
    for (const cluster::JobId id : *ctx.queue) {
      const int gpus = ctx.jobs->get(id).request().gpus;
      if (gpus <= free) {
        starts.push_back(id);
        free -= gpus;
      }
    }
    return starts;
  }
};

TEST(PreemptResume, RoundTripPreservesProgress) {
  core::DatacenterConfig config;
  config.reseed(7);
  core::Datacenter source(config, std::make_unique<ManualScheduler>());
  core::Datacenter dest(config, std::make_unique<ManualScheduler>());

  cluster::JobRequest request;
  request.gpus = 4;
  request.work_gpu_seconds = 40.0 * 3600.0;  // 10 h on 4 GPUs
  request.flexible = true;
  const cluster::JobId id = source.submit(request);
  source.run_until(TimePoint::from_seconds(0.0) + util::hours(3));

  const cluster::Job& job = source.jobs().get(id);
  ASSERT_EQ(job.state(), cluster::JobState::kRunning);
  const double done = job.work_done();
  ASSERT_GT(done, 0.0);

  ASSERT_EQ(source.running_jobs(), std::vector<cluster::JobId>{id});
  const core::Datacenter::PreemptedJob snapshot = source.preempt(id);
  EXPECT_EQ(job.state(), cluster::JobState::kMigrated);
  EXPECT_EQ(source.cluster_state().free_gpus(), source.cluster_state().total_gpus());
  EXPECT_DOUBLE_EQ(snapshot.work_done_gpu_seconds, done);
  EXPECT_DOUBLE_EQ(snapshot.work_remaining_gpu_seconds, request.work_gpu_seconds - done);
  // No partial credit at preempt time: like an unmigrated running job, an
  // unfinished lineage has delivered nothing yet — crediting here would let
  // migration-on runs book work a migration-off baseline never could.
  EXPECT_DOUBLE_EQ(source.summary().completed_gpu_hours, 0.0);
  // A job can only be checkpointed while running.
  EXPECT_THROW((void)source.preempt(id), std::invalid_argument);

  dest.run_until(TimePoint::from_seconds(0.0) + util::hours(3));
  const cluster::JobId resumed = dest.resume(snapshot);
  dest.run_until(TimePoint::from_seconds(0.0) + util::hours(12));
  EXPECT_EQ(dest.jobs().get(resumed).state(), cluster::JobState::kCompleted);
  // When the lineage finishes, the whole job's work — the checkpointed
  // progress plus the remainder — is credited where it completed.
  EXPECT_NEAR(dest.summary().completed_gpu_hours, request.work_gpu_seconds / 3600.0, 1e-9);
  EXPECT_NEAR(source.summary().completed_gpu_hours + dest.summary().completed_gpu_hours,
              request.work_gpu_seconds / 3600.0, 1e-9);
}

TEST(PreemptResume, ExpiredDeadlineDropsInsteadOfCrashingIntake) {
  core::DatacenterConfig config;
  config.reseed(7);
  core::Datacenter source(config, std::make_unique<ManualScheduler>());
  core::Datacenter dest(config, std::make_unique<ManualScheduler>());

  cluster::JobRequest request;
  request.gpus = 2;
  request.work_gpu_seconds = 8.0 * 3600.0;
  request.deadline = TimePoint::from_seconds(0.0) + util::hours(5);
  (void)source.submit(request);
  source.run_until(TimePoint::from_seconds(0.0) + util::hours(1));
  const core::Datacenter::PreemptedJob snapshot =
      source.preempt(source.running_jobs().front());

  // The checkpoint "arrives" after the deadline passed in transit: resume
  // must run the remainder best-effort, not abort the whole simulation.
  dest.run_until(TimePoint::from_seconds(0.0) + util::hours(6));
  const cluster::JobId resumed = dest.resume(snapshot);
  EXPECT_FALSE(dest.jobs().get(resumed).request().deadline.has_value());
}

// --- coordinator orchestration ----------------------------------------------

std::unique_ptr<fleet::FleetCoordinator> migrating_fleet(std::uint64_t seed,
                                                         const char* policy = "carbon",
                                                         double rate = 14.0) {
  std::vector<fleet::RegionProfile> profiles = fleet::make_reference_fleet();
  fleet::FleetConfig config;
  config.seed = seed;
  config.arrivals.base_rate_per_hour =
      fleet::scaled_fleet_rate(profiles, rate);
  config.migration.objective = *migration_objective_from_name(policy);
  return std::make_unique<fleet::FleetCoordinator>(std::move(config), std::move(profiles),
                                                   fleet::make_router("carbon_forecast"));
}

TEST(Coordinator, MigrationConservesWorkAndFillsLedgers) {
  auto fleet = migrating_fleet(11);
  fleet->run_until(TimePoint::from_seconds(0.0) + util::days(10));
  const telemetry::FleetRunSummary summary = fleet->summary();

  ASSERT_GT(summary.migration.started, 0u) << "no migrations in 10 days at hot load";
  EXPECT_EQ(summary.migration.policy, "carbon");
  EXPECT_EQ(summary.migration.started,
            summary.migration.delivered + summary.migration.in_flight);
  EXPECT_GT(summary.migration.gpu_hours_moved, 0.0);
  EXPECT_GT(summary.migration.predicted_saving, 0.0);
  EXPECT_GT(summary.migration.overhead.energy.joules(), 0.0);
  EXPECT_GT(summary.migration.overhead.carbon.kilograms(), 0.0);

  // Per-region counts line up with the fleet ledger.
  std::size_t in = 0, out = 0;
  for (const telemetry::RegionRunSummary& r : summary.regions) {
    in += r.jobs_migrated_in;
    out += r.jobs_migrated_out;
  }
  EXPECT_EQ(out, summary.migration.started);
  EXPECT_EQ(in, summary.migration.delivered);

  // Migrated-out jobs are terminal at the source; each delivered checkpoint
  // became a fresh submission at its destination.
  std::size_t migrated_state = 0, submitted = 0, routed = 0;
  for (std::size_t i = 0; i < fleet->region_count(); ++i) {
    migrated_state +=
        fleet->region(i).jobs().in_state(cluster::JobState::kMigrated).size();
    submitted += fleet->region(i).summary().jobs_submitted;
    routed += fleet->jobs_routed()[i];
  }
  EXPECT_EQ(migrated_state, summary.migration.started);
  EXPECT_EQ(submitted, routed + summary.migration.delivered);
  // The aggregate count ledger reconciles: the summary reports exactly the
  // kMigrated terminal records, so submitted = arrivals + re-submissions
  // is explained in the totals table rather than looking like lost jobs.
  EXPECT_EQ(summary.total.jobs_migrated, summary.migration.started);
}

TEST(Coordinator, DrainMigrationsStrandsNoCheckpointAndConservesDeliveredWork) {
  // Closing the window with checkpoints still on the pipe used to drop the
  // snapshots — the lineage's banked GPU-hours vanished from every ledger.
  // drain_migrations() steps the closed fleet forward (arrivals and new
  // planning suspended) until every in-flight checkpoint is delivered.
  auto fleet = migrating_fleet(11);

  // Advance step by step until the window "closes" with work on the pipe.
  util::TimePoint t = util::TimePoint::from_seconds(0.0);
  const util::TimePoint give_up = t + util::days(10);
  while (fleet->migrations_in_flight() == 0 && fleet->now() < give_up) {
    t = t + util::minutes(15);
    fleet->run_until(t);
  }
  ASSERT_GT(fleet->migrations_in_flight(), 0u) << "no checkpoint in flight in 10 hot days";
  const telemetry::FleetRunSummary stranded = fleet->summary();
  EXPECT_LT(stranded.migration.delivered, stranded.migration.started);

  fleet->drain_migrations();
  EXPECT_EQ(fleet->migrations_in_flight(), 0u);
  const telemetry::FleetRunSummary drained = fleet->summary();
  // Every checkpoint taken was restored somewhere: the relocated GPU-hours
  // are conserved in the fleet's job ledger instead of evaporating.
  EXPECT_EQ(drained.migration.delivered, drained.migration.started);
  EXPECT_EQ(drained.migration.in_flight, 0u);
  std::size_t submitted = 0, routed = 0;
  for (std::size_t i = 0; i < fleet->region_count(); ++i) {
    submitted += fleet->region(i).summary().jobs_submitted;
    routed += fleet->jobs_routed()[i];
  }
  // The accounting identity a stranded pipe breaks: every submission is an
  // arrival or a delivered checkpoint, fleet-wide.
  EXPECT_EQ(submitted, routed + drained.migration.delivered);

  // Draining an empty pipe is a no-op: the clock must not move again.
  const util::TimePoint after = fleet->now();
  fleet->drain_migrations();
  EXPECT_EQ(fleet->now().seconds_since_epoch(), after.seconds_since_epoch());
}

TEST(Coordinator, DrainMigrationsIsANoOpWithMigrationOff) {
  std::vector<fleet::RegionProfile> profiles = fleet::make_reference_fleet();
  fleet::FleetConfig config;
  config.seed = 3;
  fleet::FleetCoordinator off(std::move(config), std::move(profiles),
                              fleet::make_router("carbon_greedy"));
  off.run_until(util::TimePoint::from_seconds(0.0) + util::days(2));
  const util::TimePoint before = off.now();
  off.drain_migrations();
  EXPECT_EQ(off.now().seconds_since_epoch(), before.seconds_since_epoch());
}

TEST(Coordinator, TransferLedgerSumsPerRegionAttribution) {
  // The satellite invariant: the fleet footprint equals the sum of the
  // per-region grid ledgers plus the per-region transfer ledgers — nothing
  // (admission transfers, checkpoint overheads) escapes attribution.
  std::vector<fleet::RegionProfile> profiles = fleet::make_reference_fleet();
  fleet::FleetConfig config;
  config.seed = 5;
  config.arrivals.base_rate_per_hour = fleet::scaled_fleet_rate(profiles, 14.0);
  config.transfer_energy_per_job = util::kilowatt_hours(5.0);
  config.migration.objective = MigrationObjective::kCarbon;
  fleet::FleetCoordinator fleet(config, std::move(profiles),
                                fleet::make_router("carbon_forecast"));
  fleet.run_until(TimePoint::from_seconds(0.0) + util::days(10));

  const telemetry::FleetRunSummary summary = fleet.summary();
  ASSERT_GT(summary.migration.started, 0u);
  ASSERT_GT(summary.transfer.energy.joules(), 0.0);

  grid::EnergyLedger per_region_sum;
  for (std::size_t i = 0; i < fleet.region_count(); ++i) {
    per_region_sum += fleet.region(i).summary().grid_totals;
    per_region_sum += fleet.region_transfer(i);
  }
  const grid::EnergyLedger footprint = summary.footprint();
  EXPECT_DOUBLE_EQ(footprint.energy.joules(), per_region_sum.energy.joules());
  EXPECT_DOUBLE_EQ(footprint.cost.dollars(), per_region_sum.cost.dollars());
  EXPECT_DOUBLE_EQ(footprint.carbon.kilograms(), per_region_sum.carbon.kilograms());
  EXPECT_DOUBLE_EQ(footprint.water.liters(), per_region_sum.water.liters());

  // And the summary's per-region transfer ledgers are the same attribution.
  grid::EnergyLedger summary_transfer;
  for (const telemetry::RegionRunSummary& r : summary.regions) summary_transfer += r.transfer;
  EXPECT_DOUBLE_EQ(summary_transfer.energy.joules(), summary.transfer.energy.joules());
  // The checkpoint overhead is part of the transfer ledger, not double
  // counted on top of it.
  EXPECT_LE(summary.migration.overhead.energy.joules(), summary.transfer.energy.joules());
}

TEST(Coordinator, MigrationRunsAreBitReproducible) {
  auto a = migrating_fleet(99);
  auto b = migrating_fleet(99);
  const TimePoint end = TimePoint::from_seconds(0.0) + util::days(7);
  a->run_until(end);
  b->run_until(end);
  const telemetry::FleetRunSummary sa = a->summary();
  const telemetry::FleetRunSummary sb = b->summary();
  EXPECT_EQ(sa.migration.started, sb.migration.started);
  EXPECT_EQ(sa.migration.delivered, sb.migration.delivered);
  EXPECT_DOUBLE_EQ(sa.migration.predicted_saving, sb.migration.predicted_saving);
  EXPECT_DOUBLE_EQ(sa.total.grid_totals.carbon.kilograms(),
                   sb.total.grid_totals.carbon.kilograms());
  EXPECT_DOUBLE_EQ(sa.transfer.energy.joules(), sb.transfer.energy.joules());
}

TEST(Coordinator, MigrationOffLeavesLedgersEmpty) {
  std::vector<fleet::RegionProfile> profiles = fleet::make_reference_fleet();
  fleet::FleetConfig config;
  config.seed = 3;
  config.arrivals.base_rate_per_hour = fleet::scaled_fleet_rate(profiles, 14.0);
  fleet::FleetCoordinator fleet(config, std::move(profiles),
                                fleet::make_router("carbon_forecast"));
  fleet.run_until(TimePoint::from_seconds(0.0) + util::days(5));
  EXPECT_EQ(fleet.planner(), nullptr);
  const telemetry::FleetRunSummary summary = fleet.summary();
  EXPECT_EQ(summary.migration.policy, "off");
  EXPECT_EQ(summary.migration.started, 0u);
  EXPECT_DOUBLE_EQ(summary.migration.overhead.energy.joules(), 0.0);
  for (const telemetry::RegionRunSummary& r : summary.regions) {
    EXPECT_EQ(r.jobs_migrated_in, 0u);
    EXPECT_EQ(r.jobs_migrated_out, 0u);
  }
}

}  // namespace
}  // namespace greenhpc::migrate
