// Unit tests for greenhpc::mechanism — queue self-selection and the
// two-part (cap-for-GPUs) mechanism.

#include <gtest/gtest.h>

#include "mechanism/queues.hpp"
#include "mechanism/two_part.hpp"

namespace greenhpc::mechanism {
namespace {

workload::UserPopulation make_population(std::size_t n = 300, double strategic = 0.3,
                                         std::uint64_t seed = 11) {
  util::Rng rng(seed);
  workload::PopulationConfig config;
  config.user_count = n;
  config.strategic_fraction = strategic;
  return workload::UserPopulation::generate(config, rng);
}

std::vector<QueueSpec> standard_queues() {
  return {{"fast", util::watts(250.0), 0.4, 0.0},
          {"standard", util::watts(205.0), 0.35, 0.5},
          {"green", util::watts(165.0), 0.25, 1.0}};
}

// --- queue choice -------------------------------------------------------------------

TEST(Queues, ConstructionValidatesShares) {
  auto queues = standard_queues();
  queues[0].resource_share = 0.9;  // shares no longer sum to 1
  EXPECT_THROW(QueueChoiceSimulator(queues, power::GpuPowerModel{}), std::invalid_argument);
  EXPECT_THROW(QueueChoiceSimulator({standard_queues()[0]}, power::GpuPowerModel{}),
               std::invalid_argument);
}

TEST(Queues, EquilibriumLoadsFormDistribution) {
  const QueueChoiceSimulator sim(standard_queues(), power::GpuPowerModel{});
  util::Rng rng(5);
  const SelectionResult result = sim.equilibrium(make_population(), rng);
  double total = 0.0;
  for (const QueueOutcome& q : result.queues) {
    EXPECT_GE(q.load_share, 0.0);
    total += q.load_share;
    EXPECT_GE(q.expected_wait, 0.0);
  }
  EXPECT_NEAR(total, 1.0, 0.02);
}

TEST(Queues, DeterministicForSameInputs) {
  const QueueChoiceSimulator sim(standard_queues(), power::GpuPowerModel{});
  const auto pop = make_population();
  util::Rng r1(5), r2(5);
  const SelectionResult a = sim.equilibrium(pop, r1);
  const SelectionResult b = sim.equilibrium(pop, r2);
  for (std::size_t q = 0; q < a.queues.size(); ++q)
    EXPECT_DOUBLE_EQ(a.queues[q].load_share, b.queues[q].load_share);
}

TEST(Queues, StrategicPopulationClogsFastQueue) {
  // The paper's adverse selection: strategic users pick the fastest queue,
  // raising its utilization and the fleet's energy per work.
  const QueueChoiceSimulator sim(standard_queues(), power::GpuPowerModel{});
  const auto pop = make_population(400, 0.35, 7);
  util::Rng rng(5);
  const SelectionResult honest = sim.equilibrium(pop, rng, /*honesty_override=*/1.0);
  const SelectionResult strategic = sim.equilibrium(pop, rng, /*honesty_override=*/0.0);
  EXPECT_GT(strategic.fast_queue_utilization, honest.fast_queue_utilization);
  EXPECT_GT(strategic.energy_per_work, honest.energy_per_work);
}

TEST(Queues, GreenScoreRaisesDemandPressureOnGreenQueue) {
  // Raising the green queue's advertised score pulls truthful demand toward
  // it. At equilibrium congestion pushes back, so the robust observable is
  // the queue's wait (demand pressure), not its clamped load share.
  auto low = standard_queues();
  low[2].green_score = 0.0;
  auto high = standard_queues();
  high[2].green_score = 1.0;
  const QueueChoiceSimulator sim_low(low, power::GpuPowerModel{});
  const QueueChoiceSimulator sim_high(high, power::GpuPowerModel{});
  const auto pop = make_population();
  util::Rng rng(5);
  const double wait_low = sim_low.equilibrium(pop, rng, 1.0).queues[2].expected_wait;
  const double wait_high = sim_high.equilibrium(pop, rng, 1.0).queues[2].expected_wait;
  EXPECT_GT(wait_high, wait_low);
}

TEST(Queues, EnergyPerWorkReflectsCapMix) {
  const QueueChoiceSimulator sim(standard_queues(), power::GpuPowerModel{});
  util::Rng rng(5);
  const SelectionResult result = sim.equilibrium(make_population(), rng, 1.0);
  // Bounded by the best and worst queue energy ratios.
  const power::GpuPowerModel model;
  EXPECT_LE(result.energy_per_work, 1.0 + 1e-9);
  EXPECT_GE(result.energy_per_work, model.relative_energy_per_work(util::watts(165.0)) - 1e-9);
}

// --- two-part mechanism ----------------------------------------------------------------

TEST(TwoPart, DefaultMenuIsIncentiveCompatible) {
  const power::GpuPowerModel model;
  const util::Power base = model.optimal_cap(0.03);
  const auto menu = TwoPartMechanism::default_menu(model, base);
  ASSERT_EQ(menu.size(), 3u);
  for (const CapOption& opt : menu) {
    EXPECT_LT(opt.cap.watts(), base.watts());
    // Accepting a deal must not slow the user down.
    const double speedup = opt.gpu_multiplier * model.throughput_factor(opt.cap) /
                           model.throughput_factor(base);
    EXPECT_GE(speedup, 1.0);
    // And must strictly cut energy per unit of work.
    EXPECT_LT(model.relative_energy_per_work(opt.cap), model.relative_energy_per_work(base));
  }
}

TEST(TwoPart, OutcomeBundleConsistency) {
  const power::GpuPowerModel model;
  const util::Power base = model.optimal_cap(0.03);
  const TwoPartMechanism mech(model, base, TwoPartMechanism::default_menu(model, base), 0.25);
  util::Rng rng(13);
  const MechanismOutcome out = mech.run(make_population(), rng);
  EXPECT_EQ(out.deals.size(), 300u);
  EXPECT_GE(out.participation_rate, 0.0);
  EXPECT_LE(out.participation_rate, 1.0);
  EXPECT_LE(out.headroom_used, 1.0 + 1e-9);
  EXPECT_GE(out.mean_speedup, 1.0);          // deals never slow users down
  EXPECT_LE(out.energy_vs_base, 1.0 + 1e-9);  // deals never raise energy
  EXPECT_LT(out.energy_vs_uncapped, 1.0);     // the fixed component alone wins
}

TEST(TwoPart, ZeroHeadroomMeansNoDeals) {
  const power::GpuPowerModel model;
  const util::Power base = model.optimal_cap(0.03);
  const TwoPartMechanism mech(model, base, TwoPartMechanism::default_menu(model, base), 0.0);
  util::Rng rng(13);
  const MechanismOutcome out = mech.run(make_population(), rng);
  EXPECT_DOUBLE_EQ(out.participation_rate, 0.0);
  EXPECT_DOUBLE_EQ(out.energy_vs_base, 1.0);
}

TEST(TwoPart, MoreHeadroomMoreParticipation) {
  const power::GpuPowerModel model;
  const util::Power base = model.optimal_cap(0.03);
  const auto menu = TwoPartMechanism::default_menu(model, base);
  util::Rng r1(13), r2(13);
  const MechanismOutcome small = TwoPartMechanism(model, base, menu, 0.05).run(make_population(), r1);
  const MechanismOutcome large = TwoPartMechanism(model, base, menu, 0.5).run(make_population(), r2);
  EXPECT_GE(large.participation_rate, small.participation_rate);
  EXPECT_LE(large.energy_vs_base, small.energy_vs_base + 1e-9);
}

TEST(TwoPart, HeadroomIsNeverExceeded) {
  const power::GpuPowerModel model;
  const util::Power base = model.optimal_cap(0.03);
  const auto menu = TwoPartMechanism::default_menu(model, base);
  const double headroom_fraction = 0.1;
  const TwoPartMechanism mech(model, base, menu, headroom_fraction);
  util::Rng rng(17);
  const auto pop = make_population(500);
  const MechanismOutcome out = mech.run(pop, rng);
  double spent = 0.0;
  for (const DealTaken& deal : out.deals) {
    if (deal.option >= 0)
      spent += menu[static_cast<std::size_t>(deal.option)].gpu_multiplier - 1.0;
  }
  EXPECT_LE(spent, headroom_fraction * 500.0 + 1e-9);
}

TEST(TwoPart, Validation) {
  const power::GpuPowerModel model;
  // Menu cap above base cap is invalid.
  EXPECT_THROW(TwoPartMechanism(model, util::watts(200.0),
                                {{util::watts(210.0), 1.2}}, 0.2),
               std::invalid_argument);
  // Multiplier below 1 is invalid.
  EXPECT_THROW(TwoPartMechanism(model, util::watts(200.0),
                                {{util::watts(150.0), 0.9}}, 0.2),
               std::invalid_argument);
}

}  // namespace
}  // namespace greenhpc::mechanism
